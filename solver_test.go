// Facade-level coverage of the solver registry and the local-search
// layer: method resolution, error paths, determinism of the search
// solvers, and the polish-never-worsens contract across the repro
// instance battery.
package microfab_test

import (
	"strings"
	"testing"

	microfab "microfab"
)

// solverInstances is the facade-level battery: chains and in-trees across
// regimes, the instances every contract below runs over.
func solverInstances(t testing.TB) []*microfab.Instance {
	t.Helper()
	var out []*microfab.Instance
	add := func(in *microfab.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	add(microfab.GenerateChain(microfab.CampaignParams(10, 3, 5), 1))
	add(microfab.GenerateChain(microfab.CampaignParams(25, 5, 10), 2))
	add(microfab.GenerateInTree(microfab.CampaignParams(18, 4, 8), 3, 3))
	hf := microfab.CampaignParams(20, 4, 8)
	hf.FMin, hf.FMax = 0, 0.10
	add(microfab.GenerateChain(hf, 4))
	return out
}

// TestSolversListsEverything: the registry enumeration contains the
// solvers and the heuristics, and every listed method actually solves.
func TestSolversListsEverything(t *testing.T) {
	names := microfab.Solvers()
	for _, want := range []string{"MIP", "exact", "oto-greedy", "ls", "anneal", "H1", "H2r", "H4w"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("Solvers() = %v, missing %q", names, want)
		}
	}
	// n <= m so the one-to-one solvers are feasible too.
	in, err := microfab.GenerateChain(microfab.CampaignParams(4, 2, 6), 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if name == "oto" {
			continue // needs task-only failures or a homogeneous chain
		}
		mp, err := microfab.Solve(in, name, 1)
		if err != nil {
			t.Fatalf("Solve(%q): %v", name, err)
		}
		if mp == nil || !mp.Complete() {
			t.Fatalf("Solve(%q) returned an incomplete mapping", name)
		}
	}
}

// TestSolveUnknownMethod: the error names the offender and lists what is
// available.
func TestSolveUnknownMethod(t *testing.T) {
	in, err := microfab.GenerateChain(microfab.CampaignParams(5, 2, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = microfab.Solve(in, "H9", 1)
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	if !strings.Contains(err.Error(), "H9") || !strings.Contains(err.Error(), "ls") {
		t.Fatalf("error %q neither names the method nor lists the registry", err)
	}
}

// TestSearchSolversDeterministic: Solve("ls") ignores the seed entirely;
// Solve("anneal", seed) reproduces itself for equal seeds.
func TestSearchSolversDeterministic(t *testing.T) {
	for k, in := range solverInstances(t) {
		a, err := microfab.Solve(in, "ls", 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := microfab.Solve(in, "ls", 999)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("inst%d: ls depends on the seed: %s vs %s", k, a, b)
		}
		s1, err := microfab.Solve(in, "anneal", 7)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := microfab.Solve(in, "anneal", 7)
		if err != nil {
			t.Fatal(err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("inst%d: anneal not deterministic for a fixed seed", k)
		}
	}
}

// TestSearchSolversRefineH4w: both search solvers return specialized
// mappings at least as good as their H4w seed on every instance.
func TestSearchSolversRefineH4w(t *testing.T) {
	for k, in := range solverInstances(t) {
		base, err := microfab.Solve(in, "H4w", 0)
		if err != nil {
			t.Fatal(err)
		}
		baseEv, err := microfab.Evaluate(in, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, method := range []string{"ls", "anneal"} {
			mp, err := microfab.Solve(in, method, 5)
			if err != nil {
				t.Fatal(err)
			}
			if err := mp.CheckRule(in.App, microfab.Specialized); err != nil {
				t.Fatalf("inst%d: %s broke the rule: %v", k, method, err)
			}
			ev, err := microfab.Evaluate(in, mp)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Period > baseEv.Period*(1+1e-12) {
				t.Fatalf("inst%d: %s period %v worse than H4w %v", k, method, ev.Period, baseEv.Period)
			}
		}
	}
}

// TestPolishNeverWorsens: polishing any solver's mapping — here every
// heuristic on every battery instance — must never increase the period,
// for both strategies.
func TestPolishNeverWorsens(t *testing.T) {
	for k, in := range solverInstances(t) {
		for _, method := range microfab.Heuristics() {
			seedMap, err := microfab.Solve(in, method, int64(k))
			if err != nil {
				t.Fatal(err)
			}
			before, err := microfab.Evaluate(in, seedMap)
			if err != nil {
				t.Fatal(err)
			}
			for _, strategy := range []string{"ls", "anneal"} {
				polished, err := microfab.Polish(in, seedMap, strategy, microfab.Specialized, 3, 800)
				if err != nil {
					t.Fatal(err)
				}
				after, err := microfab.Evaluate(in, polished)
				if err != nil {
					t.Fatal(err)
				}
				if after.Period > before.Period*(1+1e-12) {
					t.Fatalf("inst%d/%s/%s: polish worsened %v -> %v", k, method, strategy, before.Period, after.Period)
				}
			}
		}
	}
}

// TestPolishErrors: bad strategy names and rule-violating mappings are
// rejected.
func TestPolishErrors(t *testing.T) {
	in, err := microfab.GenerateChain(microfab.CampaignParams(6, 2, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := microfab.Solve(in, "H4w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := microfab.Polish(in, mp, "tabu", microfab.Specialized, 1, 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if err := mp.CheckRule(in.App, microfab.OneToOne); err != nil {
		// A specialized mapping that is not one-to-one must be rejected
		// when polished under the one-to-one rule.
		if _, err := microfab.Polish(in, mp, "ls", microfab.OneToOne, 1, 0); err == nil {
			t.Fatal("rule-violating seed accepted")
		}
	}
}

// TestSolveExactFacade: the full-control exact entry point — rule
// selection, worker fan-out, and the byte-identical contract between
// worker counts on a proven search.
func TestSolveExactFacade(t *testing.T) {
	in, err := microfab.GenerateChain(microfab.CampaignParams(9, 3, 4), 6)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := microfab.SolveExact(in, microfab.ExactOptions{Rule: microfab.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Proven {
		t.Fatalf("sequential search unproven after %d nodes", seq.Nodes)
	}
	par, err := microfab.SolveExact(in, microfab.ExactOptions{Rule: microfab.Specialized, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Proven || par.Period != seq.Period || par.Mapping.String() != seq.Mapping.String() {
		t.Fatalf("Workers=4 diverged: proven=%v period %v vs %v", par.Proven, par.Period, seq.Period)
	}
	if err := par.Mapping.CheckRule(in.App, microfab.Specialized); err != nil {
		t.Fatal(err)
	}
	// The general rule relaxes specialization, so its optimum can only be
	// at least as good.
	gen, err := microfab.SolveExact(in, microfab.ExactOptions{Rule: microfab.General, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Period > seq.Period+1e-9 {
		t.Fatalf("general-rule optimum %v worse than specialized %v", gen.Period, seq.Period)
	}
}
