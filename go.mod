module microfab

go 1.24
