// Integration tests at the facade level: end-to-end reproduction checks of
// the paper's qualitative claims (the "shape" of the evaluation), plus
// facade API coverage. Heavier statistical campaigns live in
// internal/experiments; these tests keep the repository-level contract.
package microfab_test

import (
	"math"
	"strings"
	"testing"
	"time"

	microfab "microfab"
	"microfab/internal/experiments"
	"microfab/internal/stats"
)

// TestClaimH4wBeatsBaselines reproduces the paper's Figure 5 conclusion:
// over the standard campaign, H1 and H4f are far behind H4w (the paper
// shows multiples, we require >= 1.5x on the mean).
func TestClaimH4wBeatsBaselines(t *testing.T) {
	var h1, h4f, h4w []float64
	for seed := int64(0); seed < 12; seed++ {
		in, err := microfab.GenerateChain(microfab.CampaignParams(100, 5, 50), seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []string{"H1", "H4f", "H4w"} {
			mp, err := microfab.Solve(in, h, seed)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := microfab.Evaluate(in, mp)
			if err != nil {
				t.Fatal(err)
			}
			switch h {
			case "H1":
				h1 = append(h1, ev.Period)
			case "H4f":
				h4f = append(h4f, ev.Period)
			case "H4w":
				h4w = append(h4w, ev.Period)
			}
		}
	}
	m1, mf, mw := stats.Mean(h1), stats.Mean(h4f), stats.Mean(h4w)
	if m1 < 1.5*mw {
		t.Fatalf("H1 mean %v not >= 1.5x H4w mean %v", m1, mw)
	}
	if mf < 1.5*mw {
		t.Fatalf("H4f mean %v not >= 1.5x H4w mean %v", mf, mw)
	}
}

// TestClaimHeuristicsWithinSmallFactorOfOptimum reproduces the Figure 10/11
// conclusion: on small instances the informed heuristics sit within a small
// factor of the proven optimum (the paper reports 1.33-1.73 averages; we
// allow 2x per instance for the reduced sample).
func TestClaimHeuristicsWithinSmallFactorOfOptimum(t *testing.T) {
	var ratios []float64
	for seed := int64(0); seed < 8; seed++ {
		in, err := microfab.GenerateChain(microfab.CampaignParams(8, 2, 5), seed)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := microfab.Solve(in, "exact", 0)
		if err != nil {
			t.Fatal(err)
		}
		evOpt, err := microfab.Evaluate(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for _, h := range []string{"H2", "H3", "H4", "H4w"} {
			mp, err := microfab.Solve(in, h, 0)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := microfab.Evaluate(in, mp)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Period < best {
				best = ev.Period
			}
		}
		ratios = append(ratios, best/evOpt.Period)
	}
	if m := stats.Mean(ratios); m > 1.5 {
		t.Fatalf("best-heuristic mean factor %v from optimum, want <= 1.5", m)
	}
	for _, r := range ratios {
		if r < 1-1e-9 {
			t.Fatalf("heuristic beat the optimum: ratio %v", r)
		}
		if r > 2 {
			t.Fatalf("heuristic factor %v exceeds 2 on a small instance", r)
		}
	}
}

// TestClaimMIPMatchesExactOnSmallInstances: the two independent exact
// paths (simplex+B&B vs DFS) agree — the repository's strongest internal
// consistency check, at facade level.
func TestClaimMIPMatchesExactOnSmallInstances(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		in, err := microfab.GenerateChain(microfab.CampaignParams(6, 2, 4), seed)
		if err != nil {
			t.Fatal(err)
		}
		mipMap, err := microfab.Solve(in, "MIP", 0)
		if err != nil {
			t.Fatal(err)
		}
		exactMap, err := microfab.Solve(in, "exact", 0)
		if err != nil {
			t.Fatal(err)
		}
		evM, _ := microfab.Evaluate(in, mipMap)
		evE, _ := microfab.Evaluate(in, exactMap)
		if math.Abs(evM.Period-evE.Period) > 1e-6*evE.Period {
			t.Fatalf("seed %d: MIP %v != exact %v", seed, evM.Period, evE.Period)
		}
	}
}

// TestClaimSimulatorAgreesWithAnalyticModel: the DES closes the loop on
// eq. (1) — empirical throughput ~ 1/period.
func TestClaimSimulatorAgreesWithAnalyticModel(t *testing.T) {
	in, err := microfab.GenerateChain(microfab.CampaignParams(10, 3, 5), 3)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := microfab.Solve(in, "H4w", 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := microfab.Evaluate(in, mp)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := microfab.MeasureThroughput(in, mp, 3000, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r := thr * ev.Period; r < 0.9 || r > 1.1 {
		t.Fatalf("simulated/analytic throughput ratio %v outside [0.9,1.1]", r)
	}
}

// TestClaimOneToOneOptimalityFigure9: the heuristics never beat the
// polynomial optimal one-to-one baseline in its regime.
func TestClaimOneToOneOptimalityFigure9(t *testing.T) {
	pr := microfab.CampaignParams(30, 10, 30)
	pr.TaskOnlyFailures = true
	in, err := microfab.GenerateChain(pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	oto, err := microfab.Solve(in, "oto", 0)
	if err != nil {
		t.Fatal(err)
	}
	evO, err := microfab.Evaluate(in, oto)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"H2", "H3", "H4w"} {
		mp, err := microfab.Solve(in, h, 0)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := microfab.Evaluate(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Period < evO.Period-1e-6 {
			t.Fatalf("%s beats the optimal one-to-one: %v < %v", h, ev.Period, evO.Period)
		}
	}
}

// TestFacadeEndToEnd drives the whole public API: build, generate, solve,
// split, plan, simulate, figure.
func TestFacadeEndToEnd(t *testing.T) {
	b := microfab.NewBuilder()
	first, last := b.AddChain(0, 1, 0)
	_ = first
	b.AddDep(b.AddTask(2, "side"), last) // side branch merging into the chain tail: a join
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if app.NumTasks() != 4 {
		t.Fatalf("n = %d", app.NumTasks())
	}

	in, err := microfab.GenerateInTree(microfab.CampaignParams(12, 3, 6), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(microfab.Heuristics()) < 7 {
		t.Fatal("heuristic registry too small")
	}
	mp, err := microfab.Solve(in, "H2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := microfab.PlanInputs(in, mp, 50); err != nil {
		t.Fatal(err)
	}
	sp, err := microfab.SolveSplit(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := microfab.EvaluateSplit(in, sp); err != nil {
		t.Fatal(err)
	}
	batches, err := microfab.PlanBatches(in, mp, 50, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := microfab.Simulate(in, mp, microfab.SimOptions{Inputs: batches, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Outputs == 0 {
		t.Fatal("simulation produced nothing")
	}
	if _, err := microfab.Solve(in, "no-such-method", 0); err == nil {
		t.Fatal("unknown method accepted")
	}

	r, err := microfab.Figure(6, microfab.ExpConfig{Draws: 2, Thin: 6, Seed: 1, MIPTimeLimit: time.Second, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out := microfab.RenderFigure(r); !strings.Contains(out, "FIG6") {
		t.Fatal("figure rendering broken")
	}
	if _, err := experiments.Figure(99, experiments.Config{}); err == nil {
		t.Fatal("bogus figure accepted")
	}
}
