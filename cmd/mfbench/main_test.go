package main

import "testing"

func TestBenchLineParsing(t *testing.T) {
	cases := []struct {
		line string
		name string
		ok   bool
	}{
		{"BenchmarkExactSolveEvaluator \t 253022 \t 9910 ns/op \t 5045648 nodes/s", "BenchmarkExactSolveEvaluator", true},
		{"BenchmarkSwapKernel/adjacent_n=120-8   179839   3301 ns/op   0 B/op   0 allocs/op", "BenchmarkSwapKernel/adjacent_n=120", true},
		{"ok  \tmicrofab/internal/core\t9.262s", "", false},
		{"PASS", "", false},
		{"goos: linux", "", false},
	}
	for _, c := range cases {
		m := benchLine.FindStringSubmatch(c.line)
		if (m != nil) != c.ok {
			t.Fatalf("%q: matched=%v, want %v", c.line, m != nil, c.ok)
		}
		if m == nil {
			continue
		}
		if m[1] != c.name {
			t.Fatalf("%q: name %q, want %q", c.line, m[1], c.name)
		}
		metrics := parseMetrics(m[3])
		if len(metrics) == 0 {
			t.Fatalf("%q: no metrics parsed", c.line)
		}
		if _, ok := metrics["ns/op"]; !ok {
			t.Fatalf("%q: ns/op missing from %v", c.line, metrics)
		}
	}
	// The GOMAXPROCS suffix must be stripped but an inline -8 in a
	// subbenchmark name must survive.
	m := benchLine.FindStringSubmatch("BenchmarkX/m=-8/case-16  10  5 ns/op")
	if m == nil || m[1] != "BenchmarkX/m=-8/case" {
		t.Fatalf("suffix handling broke: %v", m)
	}
	if got := parseMetrics("12 ns/op garbage"); got == nil || len(got) != 1 {
		t.Fatalf("odd-field tail should keep complete pairs, got %v", got)
	}
	if got := parseMetrics("not-a-number ns/op"); got != nil {
		t.Fatalf("malformed tail accepted: %v", got)
	}
}
