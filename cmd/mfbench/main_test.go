package main

import (
	"strings"
	"testing"
)

func TestBenchLineParsing(t *testing.T) {
	cases := []struct {
		line string
		name string
		ok   bool
	}{
		{"BenchmarkExactSolveEvaluator \t 253022 \t 9910 ns/op \t 5045648 nodes/s", "BenchmarkExactSolveEvaluator", true},
		{"BenchmarkSwapKernel/adjacent_n=120-8   179839   3301 ns/op   0 B/op   0 allocs/op", "BenchmarkSwapKernel/adjacent_n=120", true},
		{"ok  \tmicrofab/internal/core\t9.262s", "", false},
		{"PASS", "", false},
		{"goos: linux", "", false},
	}
	for _, c := range cases {
		m := benchLine.FindStringSubmatch(c.line)
		if (m != nil) != c.ok {
			t.Fatalf("%q: matched=%v, want %v", c.line, m != nil, c.ok)
		}
		if m == nil {
			continue
		}
		if m[1] != c.name {
			t.Fatalf("%q: name %q, want %q", c.line, m[1], c.name)
		}
		metrics := parseMetrics(m[3])
		if len(metrics) == 0 {
			t.Fatalf("%q: no metrics parsed", c.line)
		}
		if _, ok := metrics["ns/op"]; !ok {
			t.Fatalf("%q: ns/op missing from %v", c.line, metrics)
		}
	}
	// The GOMAXPROCS suffix must be stripped but an inline -8 in a
	// subbenchmark name must survive.
	m := benchLine.FindStringSubmatch("BenchmarkX/m=-8/case-16  10  5 ns/op")
	if m == nil || m[1] != "BenchmarkX/m=-8/case" {
		t.Fatalf("suffix handling broke: %v", m)
	}
	if got := parseMetrics("12 ns/op garbage"); got == nil || len(got) != 1 {
		t.Fatalf("odd-field tail should keep complete pairs, got %v", got)
	}
	if got := parseMetrics("not-a-number ns/op"); got != nil {
		t.Fatalf("malformed tail accepted: %v", got)
	}
}

// report builds a one-metric-map-per-name Report for compare tests.
func report(entries ...Entry) Report {
	return Report{Schema: "microfab-bench/v1", Benchmarks: entries}
}

func entry(name string, metrics map[string]float64) Entry {
	return Entry{Name: name, Iters: 1, Metrics: metrics}
}

func TestCompareReports(t *testing.T) {
	base := report(
		entry("BenchmarkA", map[string]float64{"ns/op": 100}),
		entry("BenchmarkB", map[string]float64{"ns/op": 1000, "nodes/s": 5e6}),
		entry("BenchmarkGone", map[string]float64{"ns/op": 50}),
	)

	// Within threshold on every shared benchmark: clean gate over 2 entries.
	cur := report(
		entry("BenchmarkA", map[string]float64{"ns/op": 115}),
		entry("BenchmarkB", map[string]float64{"ns/op": 900, "nodes/s": 4.5e6}),
		entry("BenchmarkNew", map[string]float64{"ns/op": 1e9}), // not in baseline: never gated
	)
	regs, gated, err := compareReports(base, cur, 20)
	if err != nil || len(regs) != 0 || gated != 2 {
		t.Fatalf("clean run flagged: regs=%v gated=%d err=%v", regs, gated, err)
	}

	// ns/op growth beyond the threshold must be flagged.
	cur = report(entry("BenchmarkA", map[string]float64{"ns/op": 130}))
	regs, gated, _ = compareReports(base, cur, 20)
	if len(regs) != 1 || gated != 1 || !strings.Contains(regs[0], "BenchmarkA") {
		t.Fatalf("30%% ns/op growth not flagged: regs=%v gated=%d", regs, gated)
	}

	// A throughput drop is a regression even when ns/op looks fine.
	cur = report(entry("BenchmarkB", map[string]float64{"ns/op": 1000, "nodes/s": 3e6}))
	regs, _, _ = compareReports(base, cur, 20)
	if len(regs) != 1 || !strings.Contains(regs[0], "nodes/s") {
		t.Fatalf("40%% nodes/s drop not flagged: %v", regs)
	}

	// Throughput growth and ns/op shrink never trip the gate.
	cur = report(entry("BenchmarkB", map[string]float64{"ns/op": 10, "nodes/s": 5e8}))
	if regs, _, _ = compareReports(base, cur, 20); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}

	// Exactly at the limit passes; a hair over fails.
	cur = report(entry("BenchmarkA", map[string]float64{"ns/op": 120}))
	if regs, _, _ = compareReports(base, cur, 20); len(regs) != 0 {
		t.Fatalf("exactly +20%% flagged: %v", regs)
	}
	cur = report(entry("BenchmarkA", map[string]float64{"ns/op": 120.2}))
	if regs, _, _ = compareReports(base, cur, 20); len(regs) != 1 {
		t.Fatalf("+20.2%% not flagged: %v", regs)
	}

	// Disjoint reports (the post-rename shape) are a hard error with a
	// diagnostic naming both sides — never a clean zero-value diff.
	regs, gated, err = compareReports(base, report(entry("BenchmarkOther", map[string]float64{"ns/op": 1})), 20)
	if err == nil || len(regs) != 0 || gated != 0 {
		t.Fatalf("disjoint compare not rejected: regs=%v gated=%d err=%v", regs, gated, err)
	}
	for _, want := range []string{"BenchmarkA", "BenchmarkOther", "baseline"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("disjoint diagnostic %q does not mention %q", err, want)
		}
	}
	// Same failure when names overlap but none carries a gateable metric.
	_, _, err = compareReports(base, report(entry("BenchmarkA", map[string]float64{"B/op": 12})), 20)
	if err == nil {
		t.Fatal("metric-free overlap passed the gate")
	}

	// -count>1 duplicate lines: only the first measurement is gated.
	cur = Report{Schema: "microfab-bench/v1", Benchmarks: []Entry{
		entry("BenchmarkA", map[string]float64{"ns/op": 110}),
		entry("BenchmarkA", map[string]float64{"ns/op": 990}),
	}}
	if regs, _, _ = compareReports(base, cur, 20); len(regs) != 0 {
		t.Fatalf("duplicate rerun gated: %v", regs)
	}
}

func TestParseBenchRoundTrip(t *testing.T) {
	text := `goos: linux
BenchmarkTrialAll/m8/batch-8   887908   347.0 ns/op
BenchmarkTrialAll/m8/loop-8    244735   1350 ns/op
BenchmarkExactSolvePricer      253022   9910 ns/op   5045648 nodes/s
PASS
ok  	microfab/internal/core	9.262s
`
	rep := parseBench(strings.NewReader(text), "t")
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	if rep.Benchmarks[2].Metrics["nodes/s"] != 5045648 {
		t.Fatalf("nodes/s lost: %+v", rep.Benchmarks[2])
	}
	if regs, gated, err := compareReports(rep, rep, 20); err != nil || len(regs) != 0 || gated != 3 {
		t.Fatalf("self-compare: regs=%v gated=%d err=%v", regs, gated, err)
	}
}
