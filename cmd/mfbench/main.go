// Command mfbench converts `go test -bench` text output into a
// machine-readable JSON report, so CI can archive the performance
// trajectory of the hot loops (core Assign/Swap pricing, exact-solver
// nodes/s, search probes/s) as a build artifact instead of a log line
// humans have to diff by eye. With -compare it doubles as the regression
// gate: the fresh run is diffed against a committed baseline report and
// the exit status says whether any hot loop regressed.
//
// Usage:
//
//	go test -run='^$' -bench . -benchtime 1x ./... | mfbench -out BENCH.json
//	mfbench < bench.txt                  # JSON on stdout
//	mfbench -label pr5 < bench.txt
//	mfbench -compare bench/baseline.json -threshold 20 < bench.txt
//
// Every `BenchmarkName-P  N  <value> <unit> ...` line becomes one entry
// with the iteration count and a unit -> value map covering ns/op, B/op,
// allocs/op and any custom testing.B ReportMetric units (nodes/s,
// probes/s, ...). Non-benchmark lines are ignored, so the whole `go test`
// stream can be piped through verbatim. Exits non-zero when no benchmark
// lines were found — an empty artifact means the bench step silently
// broke.
//
// Compare mode gates only the benchmarks present in BOTH reports (new
// benchmarks pass by default, renamed ones silently leave the gate — keep
// the baseline fresh): ns/op may not grow by more than the threshold, and
// throughput ("/s") metrics may not drop by more than it. Everything else
// (B/op, allocs/op, iteration counts) is archived but not gated, because
// those are exact and the dedicated allocation tests already pin them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the benchmark (sub)name with the -P GOMAXPROCS suffix
	// stripped: "BenchmarkSwapKernel/adjacent_n=120".
	Name string `json:"name"`
	// Iters is the measured iteration count.
	Iters int64 `json:"iters"`
	// Metrics maps unit -> value: {"ns/op": 3301, "nodes/s": 5.6e6}.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the artifact schema.
type Report struct {
	Schema string `json:"schema"`
	// Label tags the run (e.g. a PR number or git ref); -label sets it.
	Label string `json:"label,omitempty"`
	// GeneratedAt is the RFC 3339 build time.
	GeneratedAt string  `json:"generated_at"`
	Benchmarks  []Entry `json:"benchmarks"`
}

// benchLine matches "BenchmarkX/sub-8   123   456 ns/op   7 B/op ...":
// name, iterations, then the metric tail.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	label := flag.String("label", "", "optional run label recorded in the report")
	baselinePath := flag.String("compare", "", "baseline report to gate against; regressions beyond -threshold exit non-zero")
	threshold := flag.Float64("threshold", 20, "regression threshold in percent for -compare (ns/op growth, '/s' drop)")
	flag.Parse()

	report := parseBench(os.Stdin, *label)
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "mfbench: no benchmark lines on stdin (did the bench step run with -bench?)")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" && *baselinePath == "" {
		os.Stdout.Write(buf)
		return
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mfbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mfbench: %d benchmarks -> %s\n", len(report.Benchmarks), *out)
	}
	if *baselinePath == "" {
		return
	}
	base, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbench:", err)
		os.Exit(1)
	}
	regressions, gated, err := compareReports(base, report, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbench:", err)
		os.Exit(1)
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "mfbench: REGRESSION:", r)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "mfbench: %d of %d gated benchmarks regressed beyond %.0f%%\n", len(regressions), gated, *threshold)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mfbench: gate passed: %d benchmarks within %.0f%% of %s\n", gated, *threshold, *baselinePath)
}

// parseBench reads a `go test -bench` text stream into a Report.
func parseBench(r io.Reader, label string) Report {
	report := Report{
		Schema:      "microfab-bench/v1",
		Label:       label,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		metrics := parseMetrics(m[3])
		if len(metrics) == 0 {
			continue
		}
		report.Benchmarks = append(report.Benchmarks, Entry{
			Name:    m[1],
			Iters:   iters,
			Metrics: metrics,
		})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "mfbench: read input:", err)
		os.Exit(1)
	}
	return report
}

// readReport loads a JSON report written by a previous run.
func readReport(path string) (Report, error) {
	var rep Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != "microfab-bench/v1" {
		return rep, fmt.Errorf("%s: schema %q, want microfab-bench/v1", path, rep.Schema)
	}
	return rep, nil
}

// compareReports diffs the current run against the baseline over the
// benchmarks present in both (matched by name). A benchmark regresses when
// its ns/op grew by more than threshold percent, or any of its throughput
// metrics (unit ending in "/s") dropped by more than threshold percent.
// It returns the regression descriptions (deterministic order) and how
// many benchmarks the gate actually covered. A gate that covered nothing
// is an error, not a clean zero-value diff: after a benchmark rename the
// two reports share no names and a silent pass would retire the gate —
// the diagnostic names both sides so the rename is obvious.
func compareReports(base, cur Report, threshold float64) (regressions []string, gated int, err error) {
	baseByName := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseByName[e.Name] = e
	}
	names := make([]string, 0, len(cur.Benchmarks))
	curByName := make(map[string]Entry, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		if _, dup := curByName[e.Name]; dup {
			continue // -count>1 reruns: gate on the first measurement
		}
		curByName[e.Name] = e
		names = append(names, e.Name)
	}
	sort.Strings(names)
	frac := threshold / 100
	for _, name := range names {
		b, ok := baseByName[name]
		if !ok {
			continue
		}
		c := curByName[name]
		covered := false
		if bn, cn := b.Metrics["ns/op"], c.Metrics["ns/op"]; bn > 0 && cn > 0 {
			covered = true
			if cn > bn*(1+frac) {
				regressions = append(regressions,
					fmt.Sprintf("%s: ns/op %.4g -> %.4g (+%.1f%%, limit %.0f%%)", name, bn, cn, 100*(cn/bn-1), threshold))
			}
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			if strings.HasSuffix(unit, "/s") {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			bv, cv := b.Metrics[unit], c.Metrics[unit]
			if bv <= 0 || cv <= 0 {
				continue
			}
			covered = true
			if cv < bv*(1-frac) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.4g -> %.4g (-%.1f%%, limit %.0f%%)", name, unit, bv, cv, 100*(1-cv/bv), threshold))
			}
		}
		if covered {
			gated++
		}
	}
	if gated == 0 {
		return nil, 0, fmt.Errorf(
			"baseline shares no gateable benchmark names with this run — the gate would check nothing (renamed benchmarks? regenerate the baseline)\n  baseline has: %s\n  this run has: %s",
			sampleNames(base), sampleNames(cur))
	}
	return regressions, gated, nil
}

// sampleNames lists up to five benchmark names of a report for the
// no-overlap diagnostic.
func sampleNames(r Report) string {
	if len(r.Benchmarks) == 0 {
		return "(no benchmarks)"
	}
	names := make([]string, 0, 5)
	for _, e := range r.Benchmarks {
		names = append(names, e.Name)
		if len(names) == 5 {
			break
		}
	}
	s := strings.Join(names, ", ")
	if len(r.Benchmarks) > 5 {
		s += fmt.Sprintf(", … (%d total)", len(r.Benchmarks))
	}
	return s
}

// parseMetrics reads the "<value> <unit>" pairs of a benchmark line tail.
func parseMetrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	metrics := make(map[string]float64, len(fields)/2)
	for k := 0; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k], 64)
		if err != nil {
			return nil // malformed tail: not a benchmark line after all
		}
		metrics[fields[k+1]] = v
	}
	return metrics
}
