// Command mfbench converts `go test -bench` text output into a
// machine-readable JSON report, so CI can archive the performance
// trajectory of the hot loops (core Assign/Swap pricing, exact-solver
// nodes/s, search probes/s) as a build artifact instead of a log line
// humans have to diff by eye.
//
// Usage:
//
//	go test -run='^$' -bench . -benchtime 1x ./... | mfbench -out BENCH.json
//	mfbench < bench.txt                  # JSON on stdout
//	mfbench -label pr5 < bench.txt
//
// Every `BenchmarkName-P  N  <value> <unit> ...` line becomes one entry
// with the iteration count and a unit -> value map covering ns/op, B/op,
// allocs/op and any custom testing.B ReportMetric units (nodes/s,
// probes/s, ...). Non-benchmark lines are ignored, so the whole `go test`
// stream can be piped through verbatim. Exits non-zero when no benchmark
// lines were found — an empty artifact means the bench step silently
// broke.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the benchmark (sub)name with the -P GOMAXPROCS suffix
	// stripped: "BenchmarkSwapKernel/adjacent_n=120".
	Name string `json:"name"`
	// Iters is the measured iteration count.
	Iters int64 `json:"iters"`
	// Metrics maps unit -> value: {"ns/op": 3301, "nodes/s": 5.6e6}.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the artifact schema.
type Report struct {
	Schema string `json:"schema"`
	// Label tags the run (e.g. a PR number or git ref); -label sets it.
	Label string `json:"label,omitempty"`
	// GeneratedAt is the RFC 3339 build time.
	GeneratedAt string  `json:"generated_at"`
	Benchmarks  []Entry `json:"benchmarks"`
}

// benchLine matches "BenchmarkX/sub-8   123   456 ns/op   7 B/op ...":
// name, iterations, then the metric tail.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	label := flag.String("label", "", "optional run label recorded in the report")
	flag.Parse()

	report := Report{
		Schema:      "microfab-bench/v1",
		Label:       *label,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		metrics := parseMetrics(m[3])
		if len(metrics) == 0 {
			continue
		}
		report.Benchmarks = append(report.Benchmarks, Entry{
			Name:    m[1],
			Iters:   iters,
			Metrics: metrics,
		})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "mfbench: read stdin:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "mfbench: no benchmark lines on stdin (did the bench step run with -bench?)")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mfbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mfbench: %d benchmarks -> %s\n", len(report.Benchmarks), *out)
}

// parseMetrics reads the "<value> <unit>" pairs of a benchmark line tail.
func parseMetrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	metrics := make(map[string]float64, len(fields)/2)
	for k := 0; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k], 64)
		if err != nil {
			return nil // malformed tail: not a benchmark line after all
		}
		metrics[fields[k+1]] = v
	}
	return metrics
}
