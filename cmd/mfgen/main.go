// Command mfgen generates random problem instances with the paper's
// campaign parameters and writes them as JSON for cmd/microfab and
// cmd/mfsim.
//
// Usage:
//
//	mfgen -n 20 -p 4 -m 10 [-seed 1] [-fmin 0.005 -fmax 0.02]
//	      [-wmin 100 -wmax 1000] [-task-only] [-branches 0] [-out inst.json]
//
// With -branches >= 2 an in-tree with that many branches is generated
// instead of a linear chain.
package main

import (
	"flag"
	"fmt"
	"os"

	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/instance"
)

func main() {
	var (
		n        = flag.Int("n", 20, "number of tasks")
		p        = flag.Int("p", 4, "number of task types")
		m        = flag.Int("m", 10, "number of machines")
		seed     = flag.Int64("seed", 1, "random seed")
		wmin     = flag.Float64("wmin", 100, "minimum execution time (ms)")
		wmax     = flag.Float64("wmax", 1000, "maximum execution time (ms)")
		fmin     = flag.Float64("fmin", 0.005, "minimum failure rate")
		fmax     = flag.Float64("fmax", 0.02, "maximum failure rate")
		taskOnly = flag.Bool("task-only", false, "failures depend on the task only (f[i][u] = f[i])")
		cyclic   = flag.Bool("cyclic", false, "lay types cyclically along the chain instead of randomly")
		branches = flag.Int("branches", 0, "if >= 2, generate an in-tree with this many branches")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*n, *p, *m, *seed, *wmin, *wmax, *fmin, *fmax, *taskOnly, *cyclic, *branches, *out); err != nil {
		fmt.Fprintln(os.Stderr, "mfgen:", err)
		os.Exit(1)
	}
}

func run(n, p, m int, seed int64, wmin, wmax, fmin, fmax float64, taskOnly, cyclic bool, branches int, out string) error {
	pr := gen.Params{
		N: n, P: p, M: m,
		WMin: wmin, WMax: wmax,
		FMin: fmin, FMax: fmax,
		TaskOnlyFailures: taskOnly,
	}
	if cyclic {
		pr.TypeAssignment = gen.CyclicTypes
	}
	comment := fmt.Sprintf("mfgen -n %d -p %d -m %d -seed %d -wmin %g -wmax %g -fmin %g -fmax %g",
		n, p, m, seed, wmin, wmax, fmin, fmax)
	rng := gen.RNG(seed)
	var (
		in  *core.Instance
		err error
	)
	if branches >= 2 {
		in, err = gen.InTree(pr, branches, rng)
		comment += fmt.Sprintf(" -branches %d", branches)
	} else {
		in, err = gen.Chain(pr, rng)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return instance.FromInstance(in, comment).Write(w)
}
