// Command mfexp regenerates the paper's evaluation figures (5..12) as text
// tables: one row per x-axis point, one column per heuristic/solver series
// (mean period over the random draws, or mean ratio for Figure 11).
//
// Usage:
//
//	mfexp -fig 5            # one figure, paper-scale draws
//	mfexp -all -draws 5     # all figures, 5 draws per point (quick)
//	mfexp -fig 10 -mip-time 5s
//
// Campaigns are deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"microfab/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number (5..12)")
		all     = flag.Bool("all", false, "run every figure")
		draws   = flag.Int("draws", 0, "random draws per point (0 = the paper's count)")
		thin    = flag.Int("thin", 0, "keep every k-th x point (0 = all)")
		seed    = flag.Int64("seed", 1, "campaign seed")
		mipTime = flag.Duration("mip-time", 10*time.Second, "time budget per exact MIP solve")
	)
	flag.Parse()
	cfg := experiments.Config{
		Draws: *draws, Thin: *thin, Seed: *seed, MIPTimeLimit: *mipTime,
	}
	var figs []int
	switch {
	case *all:
		figs = experiments.Numbers()
	case *fig != 0:
		figs = []int{*fig}
	default:
		flag.Usage()
		os.Exit(2)
	}
	for _, n := range figs {
		start := time.Now()
		r, err := experiments.Figure(n, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfexp:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.Render(r))
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
