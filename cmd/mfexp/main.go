// Command mfexp regenerates the paper's evaluation figures (5..12) as text
// tables: one row per x-axis point, one column per heuristic/solver series
// (mean period over the random draws, or mean ratio for Figure 11).
//
// Usage:
//
//	mfexp -fig 5            # one figure, paper-scale draws
//	mfexp -all -draws 5     # all figures, 5 draws per point (quick)
//	mfexp -fig 10 -mip-time 5s
//	mfexp -fig 9 -workers 8 -progress
//	mfexp -fig 12 -exact-workers 4   # parallel DFS burst per draw
//	mfexp -fig 8 -polish ls # hill-climb post-pass on every draw
//
// -polish refines every heuristic mapping with a bounded local-search
// post-pass (ls = hill climbing, anneal = simulated annealing) before the
// series are priced; -polish-budget bounds each pass. Annealing auto-tunes
// its starting temperature from each draw's own period scale (acceptance-
// ratio targeting), so the same -polish anneal flags work across figures
// whose periods differ by orders of magnitude — no per-figure tweaking.
//
// Campaigns are deterministic for a given -seed, whatever -workers is —
// including polished campaigns, which derive one RNG stream per (draw,
// series) pair (for the MIP figures 10..12 this additionally needs the
// node budget, not the -mip-time wall clock, to be the binding solver
// limit); Ctrl-C cancels at the next draw boundary.
//
// -coord http://host:9344 runs the campaign on a solve fabric (cmd/mfcoord
// + cmd/mfworker) instead of locally. The merged figure is byte-identical
// to the local run for any fleet size; -workers and -progress are local
// knobs and do not apply.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"microfab/internal/experiments"
	"microfab/internal/fabric"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure number (5..12)")
		all      = flag.Bool("all", false, "run every figure")
		draws    = flag.Int("draws", 0, "random draws per point (0 = the paper's count)")
		thin     = flag.Int("thin", 0, "keep every k-th x point (0 = all)")
		seed     = flag.Int64("seed", 1, "campaign seed")
		mipTime  = flag.Duration("mip-time", 10*time.Second, "time budget per exact MIP solve")
		workers  = flag.Int("workers", 0, "concurrent draw workers (0 = all CPUs, 1 = sequential)")
		exactW   = flag.Int("exact-workers", 0, "workers of each draw's exact DFS burst (0/1 = sequential; figures 10..12)")
		exactNR  = flag.Bool("exact-no-relax", false, "disable the exact burst's relaxation bound tiers (ablation; figures 10..12)")
		exactNIB = flag.Bool("exact-no-inc-bound", false, "force the exact burst's bound onto from-scratch recomputation (ablation; results are byte-identical)")
		polish   = flag.String("polish", "", "local-search post-pass per draw: ls | anneal")
		pBudget  = flag.Int("polish-budget", 0, "post-pass budget per mapping (0 = default)")
		progress = flag.Bool("progress", false, "report draw progress on stderr")
		coord    = flag.String("coord", "", "run on a solve fabric: coordinator base URL (e.g. http://host:9344)")
	)
	flag.Parse()
	cfg := experiments.Config{
		Draws: *draws, Thin: *thin, Seed: *seed, MIPTimeLimit: *mipTime,
		Workers: *workers, ExactWorkers: *exactW, ExactNoRelax: *exactNR,
		ExactNoIncBound: *exactNIB,
		Polish:          *polish, PolishBudget: *pBudget,
	}
	if *progress {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d draws", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var figs []int
	switch {
	case *all:
		figs = experiments.Numbers()
	case *fig != 0:
		figs = []int{*fig}
	default:
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	for _, n := range figs {
		start := time.Now()
		var r *experiments.Result
		var err error
		if *coord != "" {
			r, err = fabric.SubmitCampaign(ctx, nil, *coord, fabric.CampaignSpec{
				Figure: n, Draws: *draws, Seed: *seed, Thin: *thin,
				MIPTimeLimitMs: mipTime.Milliseconds(), ExactWorkers: *exactW,
				ExactNoRelax: *exactNR, ExactNoIncB: *exactNIB,
				Polish: *polish, PolishBudget: *pBudget,
			})
		} else {
			r, err = experiments.FigureCtx(ctx, n, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfexp:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.Render(r))
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
