// Command mfserve runs the mapping-as-a-service daemon: POST problem
// instances to /solve and get mappings back, with isomorphic repeats
// served from the canonical-hash solution cache.
//
// Usage:
//
//	mfserve -addr :8344
//	curl -s localhost:8344/solve -d '{"instance": {...}, "solver": "exact"}'
//	curl -s localhost:8344/stats
//
// Endpoints: POST /solve (add "stream": true for incumbent-streaming JSON
// lines), POST /solve/batch (a list of instances in one request, per-item
// results in order), POST /evaluate, GET /stats, GET /healthz. See
// internal/serve for the request and response schemas.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"microfab/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", 0, "solve worker pool size (0 = all CPUs)")
	queue := flag.Int("queue", 0, "pending-solve queue depth (0 = 4x workers)")
	cacheSize := flag.Int("cache", 0, "solution cache entries (0 = 1024)")
	maxNodes := flag.Int64("max-nodes", 0, "cap and default for per-request exact node budgets (0 = 2e6)")
	maxTime := flag.Duration("max-time", 0, "cap and default for per-request wall budgets (0 = 10s)")
	maxTasks := flag.Int("max-tasks", 0, "largest accepted instance (0 = 512 tasks)")
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
		MaxNodes:   *maxNodes,
		MaxTime:    *maxTime,
		MaxTasks:   *maxTasks,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mfserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mfserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mfserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mfserve: shutdown:", err)
	}
	srv.Close()
}
