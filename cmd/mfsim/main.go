// Command mfsim runs the discrete-event micro-factory simulator on a
// mapped instance: products flow through the machines, are lost with the
// modelled failure rates, and the empirical throughput is compared with
// the analytic 1/period.
//
// Usage:
//
//	mfsim -in instance.json [-map mapping.json] [-method H4w]
//	      [-xout 1000] [-margin 1.2] [-seed 1] [-policy downstream]
//
// Without -map the instance is first solved with -method.
package main

import (
	"flag"
	"fmt"
	"os"

	microfab "microfab"
	"microfab/internal/core"
	"microfab/internal/instance"
	"microfab/internal/platform"
	"microfab/internal/sim"
)

func main() {
	var (
		inPath  = flag.String("in", "", "instance JSON file (required)")
		mapPath = flag.String("map", "", "mapping JSON file (default: solve with -method)")
		method  = flag.String("method", "H4w", "solver when no -map is given")
		xout    = flag.Float64("xout", 1000, "target finished products")
		margin  = flag.Float64("margin", 1.2, "raw-product batch safety margin")
		seed    = flag.Int64("seed", 1, "simulation seed")
		policy  = flag.String("policy", "downstream", "machine service policy: downstream | roundrobin")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *mapPath, *method, *xout, *margin, *seed, *policy); err != nil {
		fmt.Fprintln(os.Stderr, "mfsim:", err)
		os.Exit(1)
	}
}

func run(inPath, mapPath, method string, xout, margin float64, seed int64, policy string) error {
	in, err := instance.Load(inPath)
	if err != nil {
		return err
	}
	var mp *core.Mapping
	if mapPath != "" {
		f, err := os.Open(mapPath)
		if err != nil {
			return err
		}
		mp, err = instance.ReadMapping(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		mp, err = microfab.Solve(in, method, seed)
		if err != nil {
			return err
		}
	}
	ev, err := microfab.Evaluate(in, mp)
	if err != nil {
		return err
	}
	batches, err := microfab.PlanBatches(in, mp, xout, margin)
	if err != nil {
		return err
	}
	opt := sim.Options{Inputs: batches, Seed: seed}
	switch policy {
	case "downstream":
		opt.Policy = sim.DownstreamFirst
	case "roundrobin":
		opt.Policy = sim.RoundRobin
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}
	st, err := microfab.Simulate(in, mp, opt)
	if err != nil {
		return err
	}

	fmt.Printf("instance   : %s on %d machines\n", in.App, in.M())
	fmt.Printf("mapping    : %s\n", mp)
	fmt.Printf("analytic   : period %.2f ms, throughput %.6f/ms\n", ev.Period, ev.Throughput)
	fmt.Printf("batches    : %v raw products (margin %.2f)\n", batches, margin)
	fmt.Printf("simulated  : %d outputs in %.0f ms -> throughput %.6f/ms (%.1f%% of analytic)\n",
		st.Outputs, st.Time, st.Throughput, 100*st.Throughput*ev.Period)
	fmt.Printf("events     : %d, drained: %v\n", st.Events, st.Drained)
	var losses int64
	for _, l := range st.LossesPerTask {
		losses += l
	}
	fmt.Printf("losses     : %d products destroyed\n", losses)
	for u := 0; u < in.M(); u++ {
		mu := platform.MachineID(u)
		if st.BusyTime[u] == 0 {
			continue
		}
		fmt.Printf("  %-6s busy %6.1f%%\n", in.Platform.Name(mu), 100*st.Utilization(mu))
	}
	return nil
}
