// Command mfcoord runs the solve-fabric coordinator: it accepts blocking
// campaign and exact jobs, shards them into leased chunks, and merges
// worker reports back into results that are byte-identical to a local
// single-process run.
//
// Usage:
//
//	mfcoord -addr :9344
//	mfworker -coord http://host:9344        # one or more, anywhere
//	mfexp -fig 5 -coord http://host:9344    # distributed campaign
//	curl -s host:9344/status                # fleet and job health
//
// Endpoints: POST /campaign and /exact (blocking job submission), POST
// /lease, /complete, /heartbeat (worker protocol), GET /job/{id}, /status,
// /healthz. See internal/fabric for schemas and determinism guarantees.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"microfab/internal/fabric"
)

func main() {
	addr := flag.String("addr", ":9344", "listen address")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "chunk lease TTL; an unheartbeated chunk re-queues after this")
	chunkDraws := flag.Int("chunk-draws", 0, "draws per campaign chunk (0 = 8)")
	subtrees := flag.Int("subtrees", 0, "default exact frontier width (0 = 32)")
	flag.Parse()

	coord := fabric.NewCoordinator(fabric.CoordConfig{
		LeaseTTL:   *leaseTTL,
		ChunkDraws: *chunkDraws,
		Subtrees:   *subtrees,
	})
	hs := &http.Server{Addr: *addr, Handler: coord.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "mfcoord: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mfcoord:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mfcoord: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mfcoord: shutdown:", err)
	}
}
