// Command mfworker runs one solve-fabric worker: it leases chunks from a
// coordinator (see cmd/mfcoord), computes them with the same engines a
// local run uses, and reports results back. Add workers to scale a
// campaign or exact solve out; kill them freely — leases expire and chunks
// re-run elsewhere with bit-identical results.
//
// Usage:
//
//	mfworker -coord http://host:9344
//	mfworker -coord http://host:9344 -name rack7-3
//
// The first SIGTERM or Ctrl-C drains the worker: the chunk in flight
// finishes and is reported, then the process exits cleanly. A second
// signal kills it immediately (the chunk's lease expires on the
// coordinator and the work is reassigned).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"microfab/internal/fabric"
)

func main() {
	coord := flag.String("coord", "", "coordinator base URL (required), e.g. http://host:9344")
	name := flag.String("name", "", "worker name in leases and /status (default host-pid)")
	poll := flag.Duration("poll", 100*time.Millisecond, "idle re-poll interval")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "in-chunk heartbeat period (keep well under the coordinator's -lease-ttl)")
	flag.Parse()
	if *coord == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	w := &fabric.Worker{
		Base:           *coord,
		Name:           *name,
		Poll:           *poll,
		HeartbeatEvery: *heartbeat,
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "mfworker: draining (signal again to kill)")
		w.Drain()
		<-sigc
		fmt.Fprintln(os.Stderr, "mfworker: killed")
		cancel()
	}()

	fmt.Fprintf(os.Stderr, "mfworker: %s leasing from %s\n", *name, *coord)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "mfworker:", err)
		os.Exit(1)
	}
}
