// Command microfab solves a mapping problem instance: it reads an instance
// JSON file (see cmd/mfgen to create one), runs the requested method, and
// prints the mapping, per-machine periods and throughput. The mapping can
// also be written to a JSON file for cmd/mfsim.
//
// Usage:
//
//	microfab -in instance.json [-method H4w] [-rule specialized]
//	         [-seed 1] [-out mapping.json]
//	microfab -fig 5 [-draws 5] [-thin 2] [-workers 8] [-seed 1]
//
// Methods: H1 H2 H2r H3 H4 H4w H4f MIP exact oto oto-greedy
// (see package microfab's Solve for their meaning).
//
// With -fig the instance flags are ignored and the paper's evaluation
// figure is regenerated through the facade instead, fanning draws out
// over -workers goroutines (see cmd/mfexp for the full campaign CLI).
package main

import (
	"flag"
	"fmt"
	"os"

	microfab "microfab"
	"microfab/internal/core"
	"microfab/internal/instance"
	"microfab/internal/platform"
)

func main() {
	var (
		inPath  = flag.String("in", "", "instance JSON file (required unless -fig)")
		method  = flag.String("method", "H4w", "solving method (H1 H2 H2r H3 H4 H4w H4f MIP exact oto oto-greedy)")
		rule    = flag.String("rule", "specialized", "rule to validate the result against: one-to-one | specialized | general")
		seed    = flag.Int64("seed", 1, "random seed (H1 only; campaign seed with -fig)")
		outPath = flag.String("out", "", "write the mapping as JSON to this file")
		xout    = flag.Float64("xout", 0, "if > 0, also print the input plan for this many finished products")
		fig     = flag.Int("fig", 0, "regenerate this evaluation figure (5..12) instead of solving an instance")
		draws   = flag.Int("draws", 0, "with -fig: random draws per point (0 = the paper's count)")
		thin    = flag.Int("thin", 0, "with -fig: keep every k-th x point (0 = all)")
		workers = flag.Int("workers", 0, "with -fig: concurrent draw workers (0 = all CPUs, 1 = sequential)")
	)
	flag.Parse()
	if *fig != 0 {
		if err := runFigure(*fig, *draws, *thin, *workers, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "microfab:", err)
			os.Exit(1)
		}
		return
	}
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *method, *rule, *seed, *outPath, *xout); err != nil {
		fmt.Fprintln(os.Stderr, "microfab:", err)
		os.Exit(1)
	}
}

func runFigure(fig, draws, thin, workers int, seed int64) error {
	r, err := microfab.Figure(fig, microfab.ExpConfig{
		Draws: draws, Thin: thin, Seed: seed, Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(microfab.RenderFigure(r))
	return nil
}

func run(inPath, method, ruleName string, seed int64, outPath string, xout float64) error {
	in, err := instance.Load(inPath)
	if err != nil {
		return err
	}
	var rule core.Rule
	switch ruleName {
	case "one-to-one":
		rule = core.OneToOne
	case "specialized":
		rule = core.Specialized
	case "general":
		rule = core.GeneralRule
	default:
		return fmt.Errorf("unknown rule %q", ruleName)
	}

	mp, err := microfab.Solve(in, method, seed)
	if err != nil {
		return err
	}
	if err := mp.CheckRule(in.App, rule); err != nil {
		return fmt.Errorf("%s produced a mapping outside rule %s: %w", method, ruleName, err)
	}
	ev, err := microfab.Evaluate(in, mp)
	if err != nil {
		return err
	}

	fmt.Printf("instance : %s on %d machines\n", in.App, in.M())
	fmt.Printf("method   : %s (rule %s)\n", method, ruleName)
	fmt.Printf("mapping  : %s\n", mp)
	fmt.Printf("period   : %.2f ms (critical machine %s)\n", ev.Period, in.Platform.Name(ev.Critical))
	fmt.Printf("throughput: %.6f products/ms\n", ev.Throughput)
	for u, p := range ev.MachinePeriods {
		if p == 0 {
			continue
		}
		mu := platform.MachineID(u)
		fmt.Printf("  %-6s %10.2f ms  tasks %v\n", in.Platform.Name(mu), p, mp.TasksOn(mu))
	}
	if xout > 0 {
		plan, err := microfab.PlanInputs(in, mp, xout)
		if err != nil {
			return err
		}
		fmt.Printf("inputs for %.0f products: %.1f raw products total\n", xout, plan.Total)
		for k, v := range plan.PerSource {
			fmt.Printf("  source %d: %.1f\n", k, v)
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := instance.WriteMapping(f, mp, "produced by cmd/microfab -method "+method); err != nil {
			return err
		}
		fmt.Printf("mapping written to %s\n", outPath)
	}
	return nil
}
