// Command microfab solves a mapping problem instance: it reads an instance
// JSON file (see cmd/mfgen to create one), runs the requested method, and
// prints the mapping, per-machine periods and throughput. The mapping can
// also be written to a JSON file for cmd/mfsim.
//
// Usage:
//
//	microfab -in instance.json [-solver H4w] [-rule specialized]
//	         [-polish ls|anneal] [-polish-budget N]
//	         [-seed 1] [-out mapping.json]
//	microfab -in instance.json -solver exact [-rule general] [-workers 8]
//	         [-warm=false]
//	microfab -fig 5 [-draws 5] [-thin 2] [-workers 8] [-seed 1]
//	         [-polish ls|anneal]
//
// Solvers: H1 H2 H2r H3 H4 H4w H4f MIP exact oto oto-greedy ls anneal
// (see package microfab's Solve for their meaning; -method is an alias
// kept for compatibility). -polish refines the solver's mapping with a
// bounded local-search post-pass before reporting.
//
// With -solver exact the branch and bound honors -rule directly and fans
// its root split out over -workers goroutines (0 = all CPUs); proven
// results are byte-identical for any worker count. -warm (default true)
// seeds the incumbent with the H4w heuristic on top of the search's own
// greedy restart dive, so interrupted runs report near-optimal mappings;
// -warm=false runs the search cold.
//
// With -fig the instance flags are ignored and the paper's evaluation
// figure is regenerated through the facade instead, fanning draws out
// over -workers goroutines; -polish then applies the post-pass to every
// draw of the campaign (see cmd/mfexp for the full campaign CLI).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	microfab "microfab"
	"microfab/internal/core"
	"microfab/internal/instance"
	"microfab/internal/platform"
)

func main() {
	var (
		inPath  = flag.String("in", "", "instance JSON file (required unless -fig)")
		solver  = flag.String("solver", "", "solving method (H1 H2 H2r H3 H4 H4w H4f MIP exact oto oto-greedy ls anneal)")
		method  = flag.String("method", "", "alias of -solver")
		rule    = flag.String("rule", "specialized", "rule to validate the result against: one-to-one | specialized | general")
		seed    = flag.Int64("seed", 1, "random seed (H1/anneal/polish; campaign seed with -fig)")
		polish  = flag.String("polish", "", "local-search post-pass on the solver's mapping: ls | anneal")
		pBudget = flag.Int("polish-budget", 0, "post-pass budget: moves priced (ls) or proposals (anneal); 0 = default")
		outPath = flag.String("out", "", "write the mapping as JSON to this file")
		xout    = flag.Float64("xout", 0, "if > 0, also print the input plan for this many finished products")
		fig     = flag.Int("fig", 0, "regenerate this evaluation figure (5..12) instead of solving an instance")
		draws   = flag.Int("draws", 0, "with -fig: random draws per point (0 = the paper's count)")
		thin    = flag.Int("thin", 0, "with -fig: keep every k-th x point (0 = all)")
		workers = flag.Int("workers", 0, "concurrent workers: draw workers with -fig, root-split workers with -solver exact (0 = all CPUs, 1 = sequential)")
		warm    = flag.Bool("warm", true, "with -solver exact: seed the incumbent with the H4w heuristic")
		noAB    = flag.Bool("no-assign-bound", false, "with -solver exact: disable the bottleneck-assignment bound tier (ablation; the optimum is unaffected)")
		noLPB   = flag.Bool("no-lp-bound", false, "with -solver exact: disable the LP relaxation bound tier (ablation; the optimum is unaffected)")
		noIncB  = flag.Bool("no-inc-bound", false, "with -solver exact: recompute the per-node bound from scratch instead of the delta-maintained cache (ablation; results are byte-identical)")
	)
	flag.Parse()
	if *solver != "" && *method != "" && *solver != *method {
		fmt.Fprintf(os.Stderr, "microfab: -solver %s and -method %s conflict; pass one\n", *solver, *method)
		os.Exit(2)
	}
	name := *solver
	if name == "" {
		name = *method
	}
	if name == "" {
		name = "H4w"
	}
	if *fig != 0 {
		if err := runFigure(*fig, *draws, *thin, *workers, *seed, *polish, *pBudget); err != nil {
			fmt.Fprintln(os.Stderr, "microfab:", err)
			os.Exit(1)
		}
		return
	}
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, name, *rule, *seed, *outPath, *xout, *polish, *pBudget, *workers, *warm, *noAB, *noLPB, *noIncB); err != nil {
		fmt.Fprintln(os.Stderr, "microfab:", err)
		os.Exit(1)
	}
}

func runFigure(fig, draws, thin, workers int, seed int64, polish string, polishBudget int) error {
	r, err := microfab.Figure(fig, microfab.ExpConfig{
		Draws: draws, Thin: thin, Seed: seed, Workers: workers,
		Polish: polish, PolishBudget: polishBudget,
	})
	if err != nil {
		return err
	}
	fmt.Print(microfab.RenderFigure(r))
	return nil
}

func run(inPath, method, ruleName string, seed int64, outPath string, xout float64, polish string, polishBudget int, workers int, warm, noAssignBound, noLPBound, noIncBound bool) error {
	in, err := instance.Load(inPath)
	if err != nil {
		return err
	}
	var rule core.Rule
	switch ruleName {
	case "one-to-one":
		rule = core.OneToOne
	case "specialized":
		rule = core.Specialized
	case "general":
		rule = core.GeneralRule
	default:
		return fmt.Errorf("unknown rule %q", ruleName)
	}

	var mp *core.Mapping
	var exactRes *microfab.ExactResult
	if method == "exact" {
		// The exact path honors -rule and -workers directly: the DFS
		// branch and bound solves any of the three rules, and its root
		// split fans out over the worker pool (proven results are
		// byte-identical for any worker count).
		w := workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		var err error
		exactRes, err = microfab.SolveExact(in, microfab.ExactOptions{
			Rule:                    rule,
			TimeLimit:               30 * time.Second,
			Workers:                 w,
			WarmStart:               warm,
			DisableAssignBound:      noAssignBound,
			DisableLPBound:          noLPBound,
			DisableIncrementalBound: noIncBound,
		})
		if err != nil {
			return err
		}
		mp = exactRes.Mapping
	} else {
		var err error
		mp, err = microfab.Solve(in, method, seed)
		if err != nil {
			return err
		}
	}
	if err := mp.CheckRule(in.App, rule); err != nil {
		return fmt.Errorf("%s produced a mapping outside rule %s: %w", method, ruleName, err)
	}
	if polish != "" {
		polished, err := microfab.Polish(in, mp, polish, rule, seed, polishBudget)
		if err != nil {
			return fmt.Errorf("polish %s: %w", polish, err)
		}
		mp = polished
	}
	ev, err := microfab.Evaluate(in, mp)
	if err != nil {
		return err
	}

	fmt.Printf("instance : %s on %d machines\n", in.App, in.M())
	if polish != "" {
		fmt.Printf("method   : %s + %s polish (rule %s)\n", method, polish, ruleName)
	} else {
		fmt.Printf("method   : %s (rule %s)\n", method, ruleName)
	}
	fmt.Printf("mapping  : %s\n", mp)
	if exactRes != nil {
		fmt.Printf("search   : proven=%v, %d nodes\n", exactRes.Proven, exactRes.Nodes)
	}
	fmt.Printf("period   : %.2f ms (critical machine %s)\n", ev.Period, in.Platform.Name(ev.Critical))
	fmt.Printf("throughput: %.6f products/ms\n", ev.Throughput)
	for u, p := range ev.MachinePeriods {
		if p == 0 {
			continue
		}
		mu := platform.MachineID(u)
		fmt.Printf("  %-6s %10.2f ms  tasks %v\n", in.Platform.Name(mu), p, mp.TasksOn(mu))
	}
	if xout > 0 {
		plan, err := microfab.PlanInputs(in, mp, xout)
		if err != nil {
			return err
		}
		fmt.Printf("inputs for %.0f products: %.1f raw products total\n", xout, plan.Total)
		for k, v := range plan.PerSource {
			fmt.Printf("  source %d: %.1f\n", k, v)
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := instance.WriteMapping(f, mp, "produced by cmd/microfab -solver "+method); err != nil {
			return err
		}
		fmt.Printf("mapping written to %s\n", outPath)
	}
	return nil
}
