// Request-facing error-path coverage of the facade: every registered
// solver string must return a mapping or an error — never both nil, never
// an incomplete mapping with a nil error — and the failure modes a
// long-lived daemon hits on every malformed request (unknown solver,
// negative budgets, starved exact runs) must be typed.
package microfab_test

import (
	"errors"
	"testing"
	"time"

	microfab "microfab"
)

// TestSolveEverySolverString: the table test over the full registry — each
// listed method, the "mip" alias, and a batch of junk names.
func TestSolveEverySolverString(t *testing.T) {
	// n <= m with >= 2 types: every rule (incl. one-to-one solvers) is
	// feasible; "oto" still needs task-only failures, so it may error —
	// the invariant under test is mapping XOR error, not success.
	in, err := microfab.GenerateChain(microfab.CampaignParams(5, 2, 6), 17)
	if err != nil {
		t.Fatal(err)
	}
	methods := append(microfab.Solvers(), "mip")
	for _, method := range methods {
		mp, err := microfab.Solve(in, method, 1)
		if (mp == nil) == (err == nil) {
			t.Fatalf("Solve(%q): mapping=%v err=%v — want exactly one of the two", method, mp, err)
		}
		if err != nil {
			if errors.Is(err, microfab.ErrUnknownSolver) {
				t.Fatalf("Solve(%q) is registered but reported ErrUnknownSolver: %v", method, err)
			}
			continue
		}
		if !mp.Complete() {
			t.Fatalf("Solve(%q): incomplete mapping with nil error", method)
		}
		if _, err := microfab.Evaluate(in, mp); err != nil {
			t.Fatalf("Solve(%q): mapping does not evaluate: %v", method, err)
		}
	}
	for _, junk := range []string{"", "H9", "Exact", "EXACT", "ls ", "anneal2", "oto\x00"} {
		mp, err := microfab.Solve(in, junk, 1)
		if mp != nil || !errors.Is(err, microfab.ErrUnknownSolver) {
			t.Fatalf("Solve(%q): mapping=%v err=%v, want ErrUnknownSolver", junk, mp, err)
		}
	}
}

// TestSolveExactBudgetErrors: negative budgets are typed rejections;
// starved-but-warm searches return a usable incumbent; starved cold
// searches return the typed exhaustion error — never nil/nil.
func TestSolveExactBudgetErrors(t *testing.T) {
	in, err := microfab.GenerateChain(microfab.CampaignParams(12, 3, 6), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []microfab.ExactOptions{
		{Rule: microfab.Specialized, MaxNodes: -5},
		{Rule: microfab.Specialized, TimeLimit: -time.Millisecond},
		{Rule: microfab.Specialized, Workers: -1},
	} {
		res, err := microfab.SolveExact(in, opts)
		if res != nil || !errors.Is(err, microfab.ErrBadBudget) {
			t.Fatalf("opts %+v: res=%v err=%v, want ErrBadBudget", opts, res, err)
		}
	}
	// One node of budget, but the greedy dive still seeds an incumbent:
	// a usable (complete, rule-respecting) mapping with Proven=false.
	res, err := microfab.SolveExact(in, microfab.ExactOptions{Rule: microfab.Specialized, MaxNodes: 1})
	if err != nil {
		t.Fatalf("starved warm search errored: %v", err)
	}
	if res.Proven || res.Mapping == nil || !res.Mapping.Complete() {
		t.Fatalf("starved warm search: proven=%v mapping=%v", res.Proven, res.Mapping)
	}
	if err := res.Mapping.CheckRule(in.App, microfab.Specialized); err != nil {
		t.Fatalf("starved incumbent breaks the rule: %v", err)
	}
	// Cold (dive and warm start disabled) and starved: the typed error.
	res, err = microfab.SolveExact(in, microfab.ExactOptions{
		Rule: microfab.Specialized, MaxNodes: 1, DisableOrder: true,
	})
	if res != nil || !errors.Is(err, microfab.ErrBudgetExhausted) {
		t.Fatalf("starved cold search: res=%v err=%v, want ErrBudgetExhausted", res, err)
	}
}
