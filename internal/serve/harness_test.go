// Shared test harness: generated instances in their File form, and the
// isomorphism generator — random task relabelings (in-tree preserving by
// construction: edges are relabeled with their endpoints), type
// relabelings and machine permutations.
package serve

import (
	"math/rand"
	"testing"

	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/instance"
)

// genFileErr draws a random instance and returns its interchange form,
// passing generator rejections (impossible n/p/m/branches combinations)
// through to the caller. branches = 0 draws a chain, > 0 an in-tree.
func genFileErr(n, p, m int, branches int, seed int64) (*instance.File, error) {
	var (
		in  *core.Instance
		err error
	)
	if branches > 0 {
		in, err = gen.InTree(gen.Default(n, p, m), branches, gen.RNG(seed))
	} else {
		in, err = gen.Chain(gen.Default(n, p, m), gen.RNG(seed))
	}
	if err != nil {
		return nil, err
	}
	return instance.FromInstance(in, ""), nil
}

// genFile is genFileErr for parameter sets the caller knows are valid.
func genFile(tb testing.TB, n, p, m int, branches int, seed int64) *instance.File {
	tb.Helper()
	f, err := genFileErr(n, p, m, branches, seed)
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

func toInstance(tb testing.TB, f *instance.File) *core.Instance {
	tb.Helper()
	in, err := f.ToInstance()
	if err != nil {
		tb.Fatal(err)
	}
	return in
}

// randPerm returns a permutation of [0, n) drawn from rng.
func randPerm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// permuteFile returns the isomorphic instance obtained by relabeling task
// i to tp[i], machine u to mp[u] and type t to yp[t]. Machine names are
// dropped (the hash ignores them anyway).
func permuteFile(f *instance.File, tp, mp, yp []int) *instance.File {
	n, m := len(f.Tasks), len(f.Times[0])
	out := &instance.File{Comment: "permuted"}
	for _, t := range f.Tasks {
		out.Tasks = append(out.Tasks, instance.TaskJSON{ID: tp[t.ID], Type: yp[t.Type]})
	}
	for _, d := range f.Deps {
		out.Deps = append(out.Deps, instance.DepJSON{From: tp[d.From], To: tp[d.To]})
	}
	out.Times = make([][]float64, n)
	out.Failures = make([][]float64, n)
	for i := range out.Times {
		out.Times[i] = make([]float64, m)
		out.Failures[i] = make([]float64, m)
	}
	for _, t := range f.Tasks {
		i := t.ID
		for u := 0; u < m; u++ {
			out.Times[tp[i]][mp[u]] = f.Times[i][u]
			out.Failures[tp[i]][mp[u]] = f.Failures[i][u]
		}
	}
	return out
}

// identity returns the identity permutation of [0, n).
func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// copyFile deep-copies the matrices (shallow elsewhere) so perturbation
// tests can mutate one entry.
func copyFile(f *instance.File) *instance.File {
	out := *f
	out.Times = make([][]float64, len(f.Times))
	out.Failures = make([][]float64, len(f.Failures))
	for i := range f.Times {
		out.Times[i] = append([]float64(nil), f.Times[i]...)
		out.Failures[i] = append([]float64(nil), f.Failures[i]...)
	}
	return &out
}
