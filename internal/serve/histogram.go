// Lock-free latency histogram with power-of-two microsecond buckets.
// observe is a handful of atomic adds (safe from every request goroutine);
// snapshot derives mean and p50/p90/p99 for the stats endpoint and the
// serve benchmarks. Quantiles are read as the upper bound of the bucket
// containing the rank — coarse (factor-of-two) but monotone, allocation-
// free and plenty to spot a latency regression in CI.
package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers [1 µs, ~2^27 µs ≈ 134 s); the last bucket absorbs
// everything slower.
const histBuckets = 28

type latencyHist struct {
	buckets   [histBuckets]atomic.Int64 // bucket b counts latencies in [2^(b-1), 2^b) µs
	count     atomic.Int64
	sumMicros atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 0 µs -> bucket 0
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(us)
}

// HistBucket is one non-empty histogram bucket: Count latencies were at
// most LeUs microseconds (and above the previous bucket's bound).
type HistBucket struct {
	LeUs  int64 `json:"leUs"`
	Count int64 `json:"count"`
}

// LatencySnapshot is the JSON form of the histogram.
type LatencySnapshot struct {
	Count  int64        `json:"count"`
	MeanUs float64      `json:"meanUs"`
	P50Us  float64      `json:"p50Us"`
	P90Us  float64      `json:"p90Us"`
	P99Us  float64      `json:"p99Us"`
	Bucket []HistBucket `json:"buckets,omitempty"`
}

// snapshot reads the histogram. Concurrent observes may straddle the read;
// the snapshot is still internally consistent enough for monitoring (each
// counter is read once, in bucket order).
func (h *latencyHist) snapshot() LatencySnapshot {
	var counts [histBuckets]int64
	var total, sum int64
	for b := range counts {
		counts[b] = h.buckets[b].Load()
		total += counts[b]
	}
	sum = h.sumMicros.Load()
	s := LatencySnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.MeanUs = float64(sum) / float64(total)
	s.P50Us = quantile(&counts, total, 0.50)
	s.P90Us = quantile(&counts, total, 0.90)
	s.P99Us = quantile(&counts, total, 0.99)
	for b, n := range counts {
		if n > 0 {
			s.Bucket = append(s.Bucket, HistBucket{LeUs: bucketBound(b), Count: n})
		}
	}
	return s
}

// bucketBound is the inclusive upper bound of bucket b in microseconds.
func bucketBound(b int) int64 {
	if b == 0 {
		return 0
	}
	return int64(1)<<b - 1
}

// quantile returns the upper bound of the bucket holding the q-th rank.
func quantile(counts *[histBuckets]int64, total int64, q float64) float64 {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for b, n := range counts {
		seen += n
		if seen > rank {
			return float64(bucketBound(b))
		}
	}
	return float64(bucketBound(histBuckets - 1))
}
