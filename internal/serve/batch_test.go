package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postBatch(t *testing.T, h http.Handler, req BatchRequest) (*httptest.ResponseRecorder, *BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/solve/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch response: %v\n%s", err, rec.Body.Bytes())
	}
	return rec, &resp
}

// TestBatchCacheHitMix: one batch mixing exact repeats, an isomorphic
// repeat, fresh instances and malformed items — per-item results in
// request order, hits answered from cache, errors isolated to their item.
func TestBatchCacheHitMix(t *testing.T) {
	s := NewServer(Config{Workers: 2, CacheSize: 64})
	defer s.Close()
	h := s.Handler()

	seedFile := genFile(t, 8, 2, 3, 0, 41)
	// Solve once through /solve so the batch's repeat items can hit.
	body, _ := json.Marshal(SolveRequest{Instance: *seedFile})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("seed solve: HTTP %d: %s", rec.Code, rec.Body.Bytes())
	}
	var seeded SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &seeded); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	iso := permuteFile(seedFile, randPerm(rng, 8), randPerm(rng, 3), randPerm(rng, 2))
	fresh := genFile(t, 9, 2, 3, 2, 99)
	bad := copyFile(seedFile)
	bad.Times = bad.Times[:3] // malformed: matrix shorter than tasks

	hits0 := s.cache.hits.Load()
	_, resp := postBatch(t, h, BatchRequest{Items: []SolveRequest{
		{Instance: *seedFile},                 // 0: exact repeat -> hit
		{Instance: *iso},                      // 1: isomorphic repeat -> hit
		{Instance: *fresh},                    // 2: fresh -> solved
		{Instance: *bad},                      // 3: malformed -> item error
		{Instance: *seedFile, Solver: "nope"}, // 4: unknown solver -> item error
		{Instance: *seedFile, Stream: true},   // 5: stream in batch -> item error
		{Instance: *seedFile, Solver: "H4w"},  // 6: other solver, same instance -> solved
	}})
	if resp == nil {
		t.Fatal("batch rejected")
	}
	if len(resp.Items) != 7 {
		t.Fatalf("%d items, want 7", len(resp.Items))
	}
	for i, wantHit := range map[int]bool{0: true, 1: true} {
		it := resp.Items[i]
		if it.Result == nil || !it.Result.Cached || !wantHit {
			t.Fatalf("item %d: want cache hit, got %+v", i, it)
		}
		if it.Result.Period != seeded.Period {
			t.Fatalf("item %d: period %v != seeded %v", i, it.Result.Period, seeded.Period)
		}
	}
	if it := resp.Items[2]; it.Result == nil || it.Result.Cached {
		t.Fatalf("item 2: want fresh solve, got %+v", it)
	}
	for i, code := range map[int]string{3: "bad-instance", 4: "unknown-solver", 5: "bad-request"} {
		if it := resp.Items[i]; it.Error == nil || it.Error.Error != code {
			t.Fatalf("item %d: want error %q, got %+v", i, code, it)
		}
	}
	if it := resp.Items[6]; it.Result == nil || it.Result.Cached || it.Result.Solver != "H4w" {
		t.Fatalf("item 6: want fresh H4w solve, got %+v", it)
	}
	if resp.CacheHits != 2 || resp.Solved != 2 {
		t.Fatalf("batch counters: hits=%d solved=%d, want 2/2", resp.CacheHits, resp.Solved)
	}
	if got := s.cache.hits.Load() - hits0; got != 2 {
		t.Fatalf("server cache hits moved by %d, want 2", got)
	}

	// The batch's solves are themselves cached: re-sending the same batch
	// answers every solvable item from cache.
	_, resp2 := postBatch(t, h, BatchRequest{Items: []SolveRequest{
		{Instance: *seedFile}, {Instance: *iso}, {Instance: *fresh}, {Instance: *seedFile, Solver: "H4w"},
	}})
	if resp2.CacheHits != 4 || resp2.Solved != 0 {
		t.Fatalf("repeat batch: hits=%d solved=%d, want 4/0", resp2.CacheHits, resp2.Solved)
	}
}

// TestBatchRejections: empty and oversized batches, and wrong methods, are
// whole-request typed errors.
func TestBatchRejections(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	defer s.Close()
	h := s.Handler()

	rec, _ := postBatch(t, h, BatchRequest{})
	if rec.Code != http.StatusBadRequest || !bytes.Contains(rec.Body.Bytes(), []byte("empty-batch")) {
		t.Fatalf("empty batch: HTTP %d %s", rec.Code, rec.Body.Bytes())
	}

	over := BatchRequest{Items: make([]SolveRequest, maxBatchItems+1)}
	f := genFile(t, 4, 2, 2, 0, 7)
	for i := range over.Items {
		over.Items[i] = SolveRequest{Instance: *f}
	}
	rec, _ = postBatch(t, h, over)
	if rec.Code != http.StatusBadRequest || !bytes.Contains(rec.Body.Bytes(), []byte("batch-too-large")) {
		t.Fatalf("oversized batch: HTTP %d %s", rec.Code, rec.Body.Bytes())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/solve/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch: HTTP %d", rec.Code)
	}
}
