// Package serve implements mapping-as-a-service: a long-lived daemon that
// accepts problem instances over HTTP/JSON, solves them on a bounded
// worker pool, and answers repeat (and isomorphic-repeat) requests from a
// canonical-hash solution cache without solving at all.
//
// The request path is built for thousands of small solves per second:
//
//   - the cache key is the canonical instance digest (hash.go), so two
//     requests that differ only by task/type relabeling or a machine
//     permutation share one entry, and a hit costs one canonicalisation +
//     one map lookup — zero heap allocations on the steady state;
//   - pricing engines are recycled through per-(n, m) sync.Pools and
//     repointed at each request's instance via Rebind (pool.go);
//   - admission control rejects malformed or oversized requests with
//     typed error codes before any work queues, and the queue itself is
//     bounded (429 when full) — the same backpressure discipline as the
//     experiment campaign's worker pool;
//   - request contexts propagate into the exact solver's node loop, so a
//     disconnected client stops burning CPU within one node batch per
//     worker;
//   - every completed solve lands in a lock-free latency histogram
//     exposed on /stats next to the cache hit/miss counters.
//
// Endpoints: POST /solve (set "stream": true for incumbent-streaming
// JSON lines), POST /solve/batch (many instances, one round trip, per-item
// results in order), POST /evaluate, GET /stats, GET /healthz.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	microfab "microfab"
	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/instance"
	"microfab/internal/platform"
)

// Config sizes the daemon. The zero value serves with sane defaults.
type Config struct {
	// Workers is the solve worker-pool size (0 = GOMAXPROCS). Negative
	// starts no workers at all — every cache miss queues until rejected —
	// which is how the admission tests isolate the request path from the
	// solvers.
	Workers int
	// QueueDepth bounds the pending-job queue (0 = 4x workers, min 16).
	// A full queue answers 429 instead of queueing unboundedly.
	QueueDepth int
	// CacheSize bounds the solution LRU in entries (0 = 1024).
	CacheSize int
	// MaxNodes is both the default and the cap for a request's exact-search
	// node budget (0 = 2 million). Requests asking for more are rejected,
	// not clamped: the client should know its answer will be cheaper than
	// it asked for.
	MaxNodes int64
	// MaxTime is the default and cap for a request's wall-clock budget
	// (0 = 10s).
	MaxTime time.Duration
	// MaxTasks caps the instance size (0 = 512 tasks).
	MaxTasks int
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
		if c.QueueDepth < 16 {
			c.QueueDepth = 16
		}
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 2_000_000
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 10 * time.Second
	}
	if c.MaxTasks <= 0 {
		c.MaxTasks = 512
	}
	return c
}

// SolveRequest is the POST /solve body. Budgets and Workers apply to the
// "exact" solver; Seed to the seeded solvers ("H1", "anneal").
type SolveRequest struct {
	Instance instance.File `json:"instance"`
	// Solver is any name microfab.Solve accepts (default "exact").
	Solver string `json:"solver,omitempty"`
	// Rule is "specialized" (default), "one-to-one" or "general"; only
	// the exact solver honors a non-default rule.
	Rule        string `json:"rule,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	MaxNodes    int64  `json:"maxNodes,omitempty"`
	TimeLimitMs int64  `json:"timeLimitMs,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	// Stream switches the response to JSON lines: one "incumbent" line
	// per improvement found, then the final "result" line.
	Stream bool `json:"stream,omitempty"`
	// NoCache bypasses the solution cache in both directions.
	NoCache bool `json:"noCache,omitempty"`
}

// SolveResponse is the POST /solve result (also the "result" stream line).
type SolveResponse struct {
	Type   string `json:"type,omitempty"` // "result" on stream lines
	Solver string `json:"solver"`
	// Assign[i] is the machine index of task i, in the request's labels.
	Assign     []int   `json:"assign"`
	Period     float64 `json:"period"`
	Throughput float64 `json:"throughput"`
	// Proven is present for exact-family solves only.
	Proven    *bool   `json:"proven,omitempty"`
	Nodes     int64   `json:"nodes,omitempty"`
	Cached    bool    `json:"cached"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// IncumbentLine is one streamed improvement.
type IncumbentLine struct {
	Type      string  `json:"type"` // "incumbent"
	Period    float64 `json:"period"`
	Assign    []int   `json:"assign"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// ErrorResponse carries a stable machine-readable code plus a human
// detail string.
type ErrorResponse struct {
	Type   string `json:"type,omitempty"` // "error" on stream lines
	Error  string `json:"error"`
	Detail string `json:"detail,omitempty"`
}

// EvaluateRequest is the POST /evaluate body: price a complete mapping
// without solving.
type EvaluateRequest struct {
	Instance instance.File `json:"instance"`
	Assign   []int         `json:"assign"`
}

// EvaluateResponse is the POST /evaluate result.
type EvaluateResponse struct {
	Period         float64   `json:"period"`
	Throughput     float64   `json:"throughput"`
	Critical       int       `json:"critical"`
	MachinePeriods []float64 `json:"machinePeriods"`
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	UptimeMs     float64         `json:"uptimeMs"`
	Workers      int             `json:"workers"`
	QueueLen     int             `json:"queueLen"`
	Requests     int64           `json:"requests"`
	Rejected     int64           `json:"rejected"`
	Solved       int64           `json:"solved"`
	SolveErrors  int64           `json:"solveErrors"`
	Inflight     int64           `json:"inflight"`
	CacheHits    int64           `json:"cacheHits"`
	CacheMisses  int64           `json:"cacheMisses"`
	CacheEntries int             `json:"cacheEntries"`
	Latency      LatencySnapshot `json:"latency"`
}

// Server is the solve daemon. Create with NewServer, mount Handler on any
// http.Server, Close to drain.
type Server struct {
	cfg    Config
	cache  *solutionCache
	pools  *enginePools
	hist   latencyHist
	stats  serverStats
	known  map[string]bool // registered solver names
	mux    *http.ServeMux
	start  time.Time
	jobs   chan *job
	wg     sync.WaitGroup
	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool
}

type serverStats struct {
	requests    atomic.Int64
	rejected    atomic.Int64
	solved      atomic.Int64
	solveErrors atomic.Int64
	inflight    atomic.Int64
}

// NewServer starts the worker pool and returns the daemon.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newSolutionCache(cfg.CacheSize),
		pools: newEnginePools(),
		known: map[string]bool{"mip": true},
		start: time.Now(),
		jobs:  make(chan *job, cfg.QueueDepth),
	}
	for _, name := range microfab.Solvers() {
		s.known[name] = true
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/solve/batch", s.handleBatch)
	s.mux.HandleFunc("/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	workers := cfg.Workers
	if workers < 0 {
		workers = 0
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP mux of the daemon's endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops accepting jobs and waits for in-flight solves to finish.
// In-flight HTTP requests racing Close get 429s, never a panic.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

// parsedReq is an admitted solve request: validated, defaulted, with the
// instance built.
type parsedReq struct {
	in        *core.Instance
	solver    string
	rule      core.Rule
	seed      int64
	maxNodes  int64
	timeLimit time.Duration
	workers   int
	stream    bool
	noCache   bool
}

// key builds the cache key for this request over the canonical digest.
// Budget and worker count only key exact-family solves (a budget-stopped
// incumbent depends on both); the other solvers are budget-free.
func (p *parsedReq) key(digest [32]byte) cacheKey {
	k := cacheKey{digest: digest, solver: p.solver, rule: p.rule, seed: p.seed}
	if p.solver == "exact" {
		k.maxNodes = p.maxNodes
		k.workers = int32(p.workers)
	}
	return k
}

type httpErr struct {
	status int
	code   string
	detail string
}

// admit validates and defaults a request. Every rejection is typed: the
// body carries a stable "error" code a client can switch on.
func (s *Server) admit(req *SolveRequest) (parsedReq, *httpErr) {
	var p parsedReq
	in, err := req.Instance.ToInstance()
	if err != nil {
		return p, &httpErr{http.StatusBadRequest, "bad-instance", err.Error()}
	}
	if in.N() > s.cfg.MaxTasks {
		return p, &httpErr{http.StatusBadRequest, "too-large",
			fmt.Sprintf("%d tasks exceeds the server cap of %d", in.N(), s.cfg.MaxTasks)}
	}
	p.in = in
	p.solver = req.Solver
	if p.solver == "" {
		p.solver = "exact"
	}
	if p.solver == "mip" {
		p.solver = "MIP" // fold the facade alias so both share cache entries
	}
	if !s.known[p.solver] {
		return p, &httpErr{http.StatusBadRequest, "unknown-solver",
			fmt.Sprintf("%v %q (have %v)", microfab.ErrUnknownSolver, req.Solver, microfab.Solvers())}
	}
	switch req.Rule {
	case "", "specialized":
		p.rule = core.Specialized
	case "one-to-one", "oto":
		p.rule = core.OneToOne
	case "general":
		p.rule = core.GeneralRule
	default:
		return p, &httpErr{http.StatusBadRequest, "bad-rule",
			fmt.Sprintf("unknown rule %q (have specialized, one-to-one, general)", req.Rule)}
	}
	if p.rule != core.Specialized && p.solver != "exact" {
		return p, &httpErr{http.StatusBadRequest, "bad-rule",
			fmt.Sprintf("solver %q only serves the specialized rule; use \"exact\" for %q", p.solver, req.Rule)}
	}
	if req.MaxNodes < 0 || req.TimeLimitMs < 0 || req.Workers < 0 {
		return p, &httpErr{http.StatusBadRequest, "bad-budget",
			fmt.Sprintf("%v: maxNodes=%d timeLimitMs=%d workers=%d", microfab.ErrBadBudget,
				req.MaxNodes, req.TimeLimitMs, req.Workers)}
	}
	p.maxNodes = req.MaxNodes
	if p.maxNodes == 0 {
		p.maxNodes = s.cfg.MaxNodes
	} else if p.maxNodes > s.cfg.MaxNodes {
		return p, &httpErr{http.StatusBadRequest, "budget-too-large",
			fmt.Sprintf("maxNodes %d exceeds the server cap of %d", p.maxNodes, s.cfg.MaxNodes)}
	}
	p.timeLimit = time.Duration(req.TimeLimitMs) * time.Millisecond
	if p.timeLimit == 0 {
		p.timeLimit = s.cfg.MaxTime
	} else if p.timeLimit > s.cfg.MaxTime {
		return p, &httpErr{http.StatusBadRequest, "budget-too-large",
			fmt.Sprintf("timeLimitMs %d exceeds the server cap of %dms", req.TimeLimitMs, s.cfg.MaxTime.Milliseconds())}
	}
	p.workers = req.Workers
	if p.workers == 0 {
		p.workers = 1
	}
	if max := runtime.GOMAXPROCS(0); p.workers > max {
		p.workers = max
	}
	p.seed = req.Seed
	p.stream = req.Stream
	p.noCache = req.NoCache
	return p, nil
}

// lookup answers a request from the cache: canonicalise, probe, and on a
// hit translate the canonical-space assignment into the request's own
// task/machine labels. Zero heap allocations on the steady state — the
// canonicalizer is pooled and resp.Assign is reused when its capacity
// allows — which is what keeps the hit path at memory-bandwidth speed
// under load (pinned by TestCacheHitZeroAlloc).
func (s *Server) lookup(p *parsedReq, resp *SolveResponse) bool {
	c := canonPool.Get().(*canonicalizer)
	digest := c.canonicalize(p.in)
	e := s.cache.get(p.key(digest))
	if e == nil {
		canonPool.Put(c)
		return false
	}
	n := len(e.canonAssign)
	if cap(resp.Assign) < n {
		resp.Assign = make([]int, n)
	}
	resp.Assign = resp.Assign[:n]
	c.decodeAssign(e.canonAssign, resp.Assign)
	canonPool.Put(c)
	resp.Solver = e.solver
	resp.Period = e.period
	resp.Throughput = 1 / e.period
	if e.hasProven {
		resp.Proven = &e.proven
	} else {
		resp.Proven = nil
	}
	resp.Nodes = e.nodes
	resp.Cached = true
	return true
}

// job is one queued solve.
type job struct {
	ctx        context.Context
	p          parsedReq
	start      time.Time
	incumbents chan IncumbentLine // nil unless streaming
	done       chan solveOutcome  // buffered 1: the worker never blocks
}

type solveOutcome struct {
	mapping   *core.Mapping
	period    float64
	nodes     int64
	proven    bool
	provenSet bool
	err       error
	status    int
	code      string
}

// enqueue offers the job to the worker pool without blocking. False means
// the queue is full or the server is closing — the caller answers 429.
func (s *Server) enqueue(j *job) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	select {
	case s.jobs <- j:
		return true
	default:
		return false
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		s.stats.inflight.Add(1)
		res := s.runJob(j)
		s.stats.inflight.Add(-1)
		if res.err != nil {
			s.stats.solveErrors.Add(1)
		} else {
			s.stats.solved.Add(1)
		}
		if j.incumbents != nil {
			close(j.incumbents) // the solver returned; no more callbacks
		}
		j.done <- res
	}
}

// runJob solves one admitted request and stores the result in the cache
// when it is reproducible (see cacheable).
func (s *Server) runJob(j *job) solveOutcome {
	p := &j.p
	if j.ctx != nil && j.ctx.Err() != nil {
		return solveOutcome{err: j.ctx.Err(), status: http.StatusRequestTimeout, code: "cancelled"}
	}
	var out solveOutcome
	if p.solver == "exact" {
		var cb func(float64, *core.Mapping)
		if j.incumbents != nil {
			ch, start := j.incumbents, j.start
			cb = func(per float64, m *core.Mapping) {
				line := IncumbentLine{
					Type: "incumbent", Period: per, Assign: assignInts(m),
					ElapsedMs: float64(time.Since(start).Microseconds()) / 1e3,
				}
				select { // never block the solver on a slow client
				case ch <- line:
				default:
				}
			}
		}
		res, err := exact.Solve(p.in, exact.Options{
			Rule: p.rule, Ctx: j.ctx, OnImprove: cb,
			MaxNodes: p.maxNodes, TimeLimit: p.timeLimit,
			Workers: p.workers, WarmStart: true,
		})
		if err != nil {
			return classify(err)
		}
		out = solveOutcome{
			mapping: res.Mapping, period: res.Period, nodes: res.Nodes,
			proven: res.Proven, provenSet: true,
		}
	} else {
		mp, err := microfab.Solve(p.in, p.solver, p.seed)
		if err != nil {
			return classify(err)
		}
		period, err := s.price(p.in, mp)
		if err != nil {
			return classify(err)
		}
		out = solveOutcome{mapping: mp, period: period}
	}
	if !p.noCache && cacheable(p, &out) {
		s.store(p, &out)
	}
	return out
}

// price computes the period of a complete mapping through a pooled Pricer
// (root-first assignment over the reverse-topological order).
func (s *Server) price(in *core.Instance, mp *core.Mapping) (float64, error) {
	pr := s.pools.pricer(in)
	for _, i := range in.App.ReverseTopological() {
		if err := pr.Assign(i, mp.Machine(i)); err != nil {
			s.pools.putPricer(pr)
			return 0, err
		}
	}
	period := pr.Max()
	s.pools.putPricer(pr)
	return period, nil
}

// cacheable reports whether the outcome is reproducible enough to serve
// to a future isomorphic request: everything except a wall-clock-stopped
// exact incumbent (timing-dependent; a node-budget stop is keyed by its
// budget and worker count and kept).
func cacheable(p *parsedReq, out *solveOutcome) bool {
	if !out.provenSet {
		return true
	}
	return out.proven || out.nodes >= p.maxNodes
}

// store writes the outcome into the cache in canonical space.
func (s *Server) store(p *parsedReq, out *solveOutcome) {
	c := canonPool.Get().(*canonicalizer)
	digest := c.canonicalize(p.in)
	e := &cacheEntry{
		canonAssign: make([]int32, p.in.N()),
		period:      out.period,
		proven:      out.proven,
		hasProven:   out.provenSet,
		nodes:       out.nodes,
		solver:      p.solver,
	}
	c.encodeMapping(out.mapping, e.canonAssign)
	s.cache.put(p.key(digest), e)
	canonPool.Put(c)
}

// classify maps a solver error to its transport form via the facade's
// typed errors.
func classify(err error) solveOutcome {
	out := solveOutcome{err: err, status: http.StatusUnprocessableEntity, code: "solve-failed"}
	switch {
	case errors.Is(err, microfab.ErrBadBudget):
		out.status, out.code = http.StatusBadRequest, "bad-budget"
	case errors.Is(err, microfab.ErrBudgetExhausted):
		out.code = "budget-exhausted"
	case errors.Is(err, microfab.ErrInfeasible):
		out.code = "infeasible"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		out.status, out.code = http.StatusRequestTimeout, "cancelled"
	}
	return out
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method-not-allowed", "POST a SolveRequest")
		return
	}
	s.stats.requests.Add(1)
	t0 := time.Now()
	var req SolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	p, herr := s.admit(&req)
	if herr != nil {
		writeErr(w, herr.status, herr.code, herr.detail)
		return
	}
	if !p.noCache {
		var resp SolveResponse
		if s.lookup(&p, &resp) {
			resp.ElapsedMs = elapsedMs(t0)
			s.hist.observe(time.Since(t0))
			if p.stream {
				resp.Type = "result"
			}
			writeJSON(w, http.StatusOK, &resp)
			return
		}
	}
	j := &job{ctx: r.Context(), p: p, start: t0, done: make(chan solveOutcome, 1)}
	if p.stream {
		j.incumbents = make(chan IncumbentLine, 32)
	}
	if !s.enqueue(j) {
		s.stats.rejected.Add(1)
		writeErr(w, http.StatusTooManyRequests, "overloaded", "solve queue full; retry later")
		return
	}
	if p.stream {
		s.streamSolve(w, j, t0)
		return
	}
	select {
	case out := <-j.done:
		s.writeOutcome(w, &j.p, &out, t0)
	case <-r.Context().Done():
		// Client gone: the context reaches the solver's node loop, the
		// worker drops the outcome into the buffered done channel, and
		// there is nobody left to write to.
	}
}

// streamSolve writes JSON lines: incumbents as they are found, then the
// final result (or error) line.
func (s *Server) streamSolve(w http.ResponseWriter, j *job, t0 time.Time) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for line := range j.incumbents {
		if enc.Encode(line) == nil && flusher != nil {
			flusher.Flush()
		}
	}
	out := <-j.done
	if out.err != nil {
		enc.Encode(ErrorResponse{Type: "error", Error: out.code, Detail: out.err.Error()})
		return
	}
	resp := s.buildResponse(&j.p, &out, t0)
	resp.Type = "result"
	enc.Encode(resp)
	s.hist.observe(time.Since(t0))
}

func (s *Server) writeOutcome(w http.ResponseWriter, p *parsedReq, out *solveOutcome, t0 time.Time) {
	if out.err != nil {
		writeErr(w, out.status, out.code, out.err.Error())
		return
	}
	resp := s.buildResponse(p, out, t0)
	s.hist.observe(time.Since(t0))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) buildResponse(p *parsedReq, out *solveOutcome, t0 time.Time) *SolveResponse {
	resp := &SolveResponse{
		Solver:     p.solver,
		Assign:     assignInts(out.mapping),
		Period:     out.period,
		Throughput: 1 / out.period,
		Nodes:      out.nodes,
		ElapsedMs:  elapsedMs(t0),
	}
	if out.provenSet {
		resp.Proven = &out.proven
	}
	return resp
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method-not-allowed", "POST an EvaluateRequest")
		return
	}
	var req EvaluateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	in, err := req.Instance.ToInstance()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-instance", err.Error())
		return
	}
	if len(req.Assign) != in.N() {
		writeErr(w, http.StatusBadRequest, "bad-mapping",
			fmt.Sprintf("assign has %d entries, instance has %d tasks", len(req.Assign), in.N()))
		return
	}
	for i, u := range req.Assign {
		if u < 0 || u >= in.M() {
			writeErr(w, http.StatusBadRequest, "bad-mapping",
				fmt.Sprintf("task %d mapped to machine %d, platform has %d", i, u, in.M()))
			return
		}
	}
	e := s.pools.evaluator(in)
	for i, u := range req.Assign {
		if err := e.Assign(app.TaskID(i), platform.MachineID(u)); err != nil {
			s.pools.putEvaluator(e)
			writeErr(w, http.StatusBadRequest, "bad-mapping", err.Error())
			return
		}
	}
	period, critical := e.Best()
	resp := EvaluateResponse{
		Period:         period,
		Throughput:     1 / period,
		Critical:       int(critical),
		MachinePeriods: e.MachinePeriods(),
	}
	s.pools.putEvaluator(e)
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeMs:     elapsedMs(s.start),
		Workers:      s.cfg.Workers,
		QueueLen:     len(s.jobs),
		Requests:     s.stats.requests.Load(),
		Rejected:     s.stats.rejected.Load(),
		Solved:       s.stats.solved.Load(),
		SolveErrors:  s.stats.solveErrors.Load(),
		Inflight:     s.stats.inflight.Load(),
		CacheHits:    s.cache.hits.Load(),
		CacheMisses:  s.cache.misses.Load(),
		CacheEntries: s.cache.len(),
		Latency:      s.hist.snapshot(),
	}
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func assignInts(m *core.Mapping) []int {
	out := make([]int, m.Len())
	for i := range out {
		out[i] = int(m.Machine(app.TaskID(i)))
	}
	return out
}

func elapsedMs(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1e3
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, &ErrorResponse{Error: code, Detail: detail})
}
