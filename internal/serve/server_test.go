// Daemon contract: solve requests answer with usable mappings or typed
// error codes, isomorphic repeats hit the canonical-hash cache (counter
// asserted), the cache-hit path allocates nothing, client disconnects
// drain, and the stats endpoint reflects all of it.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/instance"
	"microfab/internal/platform"
)

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func solveBody(t testing.TB, f *instance.File, mutate func(*SolveRequest)) []byte {
	t.Helper()
	req := SolveRequest{Instance: *f, Solver: "exact"}
	if mutate != nil {
		mutate(&req)
	}
	buf, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func postJSON(t testing.TB, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

func decodeSolve(t testing.TB, body []byte) SolveResponse {
	t.Helper()
	var resp SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	return resp
}

func getStats(t testing.TB, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// mappingOf rebuilds a core.Mapping from a response assignment.
func mappingOf(assign []int) *core.Mapping {
	m := core.NewMapping(len(assign))
	for i, u := range assign {
		m.Assign(app.TaskID(i), platform.MachineID(u))
	}
	return m
}

// TestServeSmoke: one exact solve end to end, cross-checked against the
// evaluate endpoint, plus healthz and the stats shape.
func TestServeSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	f := genFile(t, 10, 3, 4, 0, 42)

	code, body := postJSON(t, ts.URL+"/solve", solveBody(t, f, nil))
	if code != http.StatusOK {
		t.Fatalf("solve: status %d body %s", code, body)
	}
	resp := decodeSolve(t, body)
	if resp.Proven == nil || !*resp.Proven {
		t.Fatalf("small exact solve not proven: %+v", resp)
	}
	if len(resp.Assign) != 10 || resp.Period <= 0 {
		t.Fatalf("malformed response: %+v", resp)
	}
	in := toInstance(t, f)
	ev, err := core.Evaluate(in, mappingOf(resp.Assign))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Period-resp.Period) > 1e-9*resp.Period {
		t.Fatalf("response period %v, Evaluate %v", resp.Period, ev.Period)
	}

	// The evaluate endpoint agrees on the returned mapping.
	evReq, _ := json.Marshal(&EvaluateRequest{Instance: *f, Assign: resp.Assign})
	code, body = postJSON(t, ts.URL+"/evaluate", evReq)
	if code != http.StatusOK {
		t.Fatalf("evaluate: status %d body %s", code, body)
	}
	var evResp EvaluateResponse
	if err := json.Unmarshal(body, &evResp); err != nil {
		t.Fatal(err)
	}
	if math.Abs(evResp.Period-resp.Period) > 1e-9*resp.Period {
		t.Fatalf("evaluate period %v, solve period %v", evResp.Period, resp.Period)
	}
	if len(evResp.MachinePeriods) != 4 {
		t.Fatalf("machine periods: %v", evResp.MachinePeriods)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hz, err)
	}
	hz.Body.Close()
	st := getStats(t, ts)
	if st.Requests < 1 || st.Solved < 1 || st.Latency.Count < 1 {
		t.Fatalf("stats did not count the solve: %+v", st)
	}
}

// TestServeCacheHit: a byte-identical repeat is served from the cache —
// hit counter asserted — and NoCache bypasses it.
func TestServeCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	f := genFile(t, 12, 3, 5, 0, 7)
	body := solveBody(t, f, nil)

	_, first := postJSON(t, ts.URL+"/solve", body)
	r1 := decodeSolve(t, first)
	if r1.Cached {
		t.Fatal("first solve claims to be cached")
	}
	_, second := postJSON(t, ts.URL+"/solve", body)
	r2 := decodeSolve(t, second)
	if !r2.Cached {
		t.Fatal("repeat solve missed the cache")
	}
	if r2.Period != r1.Period {
		t.Fatalf("cached period %v, solved %v", r2.Period, r1.Period)
	}
	st := getStats(t, ts)
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Fatalf("cache counters: %+v", st)
	}

	_, third := postJSON(t, ts.URL+"/solve", solveBody(t, f, func(r *SolveRequest) { r.NoCache = true }))
	if decodeSolve(t, third).Cached {
		t.Fatal("NoCache request served from cache")
	}
	if st := getStats(t, ts); st.CacheHits != 1 {
		t.Fatalf("NoCache request touched the hit counter: %+v", st)
	}
}

// TestServeIsomorphicHit: a task-relabeled, type-relabeled,
// machine-permuted copy of a solved instance is answered from the cache,
// with the mapping translated into the copy's own labels.
func TestServeIsomorphicHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	f := genFile(t, 14, 4, 5, 3, 19)
	_, first := postJSON(t, ts.URL+"/solve", solveBody(t, f, nil))
	r1 := decodeSolve(t, first)

	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		iso := permuteFile(f, randPerm(rng, 14), randPerm(rng, 5), randPerm(rng, 4))
		_, body := postJSON(t, ts.URL+"/solve", solveBody(t, iso, nil))
		r2 := decodeSolve(t, body)
		if !r2.Cached {
			t.Fatalf("trial %d: isomorphic request missed the cache", trial)
		}
		// The translated mapping must be valid *for the permuted labels*:
		// re-evaluating it on the permuted instance reproduces the cached
		// period.
		ev, err := core.Evaluate(toInstance(t, iso), mappingOf(r2.Assign))
		if err != nil {
			t.Fatalf("trial %d: translated mapping does not evaluate: %v", trial, err)
		}
		if math.Abs(ev.Period-r1.Period) > 1e-9*r1.Period {
			t.Fatalf("trial %d: translated mapping period %v, cached %v", trial, ev.Period, r1.Period)
		}
	}
	if st := getStats(t, ts); st.CacheHits != 3 {
		t.Fatalf("expected 3 isomorphic hits, stats: %+v", st)
	}
}

// TestServeErrorPaths: every admission failure is a typed 4xx, solver
// failures are typed 422s, and a full queue answers 429.
func TestServeErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxTasks: 64})
	f := genFile(t, 6, 2, 3, 0, 1)
	cases := []struct {
		name   string
		body   []byte
		status int
		code   string
	}{
		{"bad json", []byte("{"), http.StatusBadRequest, "bad-request"},
		{"bad instance", []byte(`{"instance":{"tasks":[],"deps":[],"times":[],"failures":[]}}`), http.StatusBadRequest, "bad-instance"},
		{"unknown solver", solveBody(t, f, func(r *SolveRequest) { r.Solver = "simplex" }), http.StatusBadRequest, "unknown-solver"},
		{"bad rule", solveBody(t, f, func(r *SolveRequest) { r.Rule = "fastest" }), http.StatusBadRequest, "bad-rule"},
		{"rule on heuristic", solveBody(t, f, func(r *SolveRequest) { r.Solver = "H4w"; r.Rule = "general" }), http.StatusBadRequest, "bad-rule"},
		{"negative nodes", solveBody(t, f, func(r *SolveRequest) { r.MaxNodes = -1 }), http.StatusBadRequest, "bad-budget"},
		{"negative time", solveBody(t, f, func(r *SolveRequest) { r.TimeLimitMs = -5 }), http.StatusBadRequest, "bad-budget"},
		{"negative workers", solveBody(t, f, func(r *SolveRequest) { r.Workers = -2 }), http.StatusBadRequest, "bad-budget"},
		{"nodes over cap", solveBody(t, f, func(r *SolveRequest) { r.MaxNodes = 1 << 40 }), http.StatusBadRequest, "budget-too-large"},
		{"time over cap", solveBody(t, f, func(r *SolveRequest) { r.TimeLimitMs = 3_600_000 }), http.StatusBadRequest, "budget-too-large"},
		{"infeasible", solveBody(t, genFile(t, 5, 2, 3, 0, 2), func(r *SolveRequest) { r.Rule = "one-to-one" }), http.StatusUnprocessableEntity, "infeasible"},
		{"solver cannot", solveBody(t, f, func(r *SolveRequest) { r.Solver = "oto" }), http.StatusUnprocessableEntity, "solve-failed"},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+"/solve", tc.body)
		if code != tc.status {
			t.Fatalf("%s: status %d (want %d), body %s", tc.name, code, tc.status, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error != tc.code {
			t.Fatalf("%s: error code %q (want %q), body %s", tc.name, er.Error, tc.code, body)
		}
	}
	oversize := genFile(t, 80, 4, 8, 0, 3)
	code, body := postJSON(t, ts.URL+"/solve", solveBody(t, oversize, nil))
	var er ErrorResponse
	json.Unmarshal(body, &er)
	if code != http.StatusBadRequest || er.Error != "too-large" {
		t.Fatalf("oversize instance: status %d code %q", code, er.Error)
	}
}

// TestServeQueueFull: with no workers and a one-slot queue, the second
// concurrent request is shed with a typed 429.
func TestServeQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: -1, QueueDepth: 1})
	f := genFile(t, 6, 2, 3, 0, 1)
	body := solveBody(t, f, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/solve", bytes.NewReader(body))
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait for the first request to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := getStats(t, ts); st.QueueLen >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, rbody := postJSON(t, ts.URL+"/solve", body)
	var er ErrorResponse
	json.Unmarshal(rbody, &er)
	if code != http.StatusTooManyRequests || er.Error != "overloaded" {
		t.Fatalf("queue-full request: status %d code %q", code, er.Error)
	}
	if st := getStats(t, ts); st.Rejected != 1 {
		t.Fatalf("rejected counter: %+v", st)
	}
	cancel()
	<-firstDone
}

// TestServeStream: incumbent-streaming responses end with a result line
// that matches the non-streaming answer, and any incumbents strictly
// improve.
func TestServeStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	f := genFile(t, 14, 4, 5, 0, 77)

	_, plain := postJSON(t, ts.URL+"/solve", solveBody(t, f, func(r *SolveRequest) { r.NoCache = true }))
	want := decodeSolve(t, plain)

	resp, err := http.Post(ts.URL+"/solve", "application/json",
		bytes.NewReader(solveBody(t, f, func(r *SolveRequest) { r.Stream = true; r.NoCache = true })))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var (
		lines  int
		last   float64 = math.Inf(1)
		result *SolveResponse
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		var probe struct {
			Type   string  `json:"type"`
			Period float64 `json:"period"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("line %d: %v: %s", lines, err, sc.Text())
		}
		switch probe.Type {
		case "incumbent":
			if result != nil {
				t.Fatal("incumbent after the result line")
			}
			if probe.Period >= last {
				t.Fatalf("incumbent period %v did not improve on %v", probe.Period, last)
			}
			last = probe.Period
		case "result":
			r := decodeSolve(t, sc.Bytes())
			result = &r
		default:
			t.Fatalf("unexpected stream line type %q", probe.Type)
		}
	}
	if sc.Err() != nil || result == nil {
		t.Fatalf("stream ended without a result line (err %v)", sc.Err())
	}
	if result.Period != want.Period {
		t.Fatalf("streamed result period %v, plain %v", result.Period, want.Period)
	}
}

// TestServeStreamCachedResult: a streaming request that hits the cache
// still answers in stream form — a single result line.
func TestServeStreamCachedResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	f := genFile(t, 10, 3, 4, 0, 5)
	postJSON(t, ts.URL+"/solve", solveBody(t, f, nil))
	_, body := postJSON(t, ts.URL+"/solve", solveBody(t, f, func(r *SolveRequest) { r.Stream = true }))
	line := strings.TrimSpace(string(body))
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("cached stream answered more than one line: %q", line)
	}
	r := decodeSolve(t, []byte(line))
	if r.Type != "result" || !r.Cached {
		t.Fatalf("cached stream line: %+v", r)
	}
}

// TestServeCancelDrains: a client that disconnects mid-solve stops the
// search (the context reaches the exact solver's node loop) and the
// server drains back to idle and keeps serving.
func TestServeCancelDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxNodes: 1 << 30, MaxTime: time.Minute})
	// Large enough that a 1<<30-node proof takes far longer than the
	// drain deadline: only cancellation explains a prompt drain.
	hard := genFile(t, 30, 5, 10, 0, 99)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/solve",
		bytes.NewReader(solveBody(t, hard, func(r *SolveRequest) { r.NoCache = true })))
	if resp, err := ts.Client().Do(req); err == nil {
		resp.Body.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.stats.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve did not drain after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, body := postJSON(t, ts.URL+"/solve", solveBody(t, genFile(t, 8, 3, 4, 0, 4), nil))
	if code != http.StatusOK {
		t.Fatalf("server unhealthy after cancel: %d %s", code, body)
	}
}

// TestCacheHitZeroAlloc: the steady-state cache-hit path — canonicalise,
// probe, translate — performs zero heap allocations. GC is paused so a
// mid-measurement collection cannot empty the sync.Pools under us.
func TestCacheHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	s := NewServer(Config{Workers: 1})
	defer s.Close()
	f := genFile(t, 12, 3, 5, 0, 7)
	var req SolveRequest
	req.Instance = *f
	p, herr := s.admit(&req)
	if herr != nil {
		t.Fatalf("admit: %+v", herr)
	}
	out := s.runJob(&job{ctx: context.Background(), p: p})
	if out.err != nil {
		t.Fatal(out.err)
	}
	var resp SolveResponse
	if !s.lookup(&p, &resp) {
		t.Fatal("prime lookup missed")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(200, func() {
		if !s.lookup(&p, &resp) {
			t.Fatal("lookup missed mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit path allocates %.2f times per op", allocs)
	}
}

// TestLoadThroughput: the acceptance load test — concurrent small solves
// (a warm cache-hit majority plus fresh heuristic solves) must sustain at
// least 1000 requests/second in-process.
func TestLoadThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	s, _ := newTestServer(t, Config{Workers: runtime.GOMAXPROCS(0), CacheSize: 4096})
	mux := s.Handler()

	// Pre-encode the request bodies: one exact instance served warm from
	// the cache, plus distinct H4w instances solved fresh on every call.
	warm := solveBody(t, genFile(t, 12, 3, 5, 0, 7), nil)
	code, body := drive(mux, warm)
	if code != http.StatusOK {
		t.Fatalf("warmup: %d %s", code, body)
	}
	var fresh [][]byte
	for seed := int64(0); seed < 16; seed++ {
		fresh = append(fresh, solveBody(t, genFile(t, 10, 3, 4, 0, 100+seed),
			func(r *SolveRequest) { r.Solver = "H4w"; r.NoCache = true }))
	}

	const (
		goroutines = 8
		perG       = 500
	)
	errc := make(chan error, goroutines)
	t0 := time.Now()
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for k := 0; k < perG; k++ {
				req := warm
				if k%4 == 3 { // 25% fresh solves, 75% cache hits
					req = fresh[(g*perG+k)%len(fresh)]
				}
				if code, body := drive(mux, req); code != http.StatusOK {
					errc <- fmt.Errorf("goroutine %d request %d: %d %s", g, k, code, body)
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(t0)
	rate := float64(goroutines*perG) / elapsed.Seconds()
	t.Logf("served %d requests in %v (%.0f req/s)", goroutines*perG, elapsed, rate)
	if rate < 1000 {
		t.Fatalf("throughput %.0f req/s, want >= 1000", rate)
	}
	if st := s.cache.hits.Load(); st < int64(goroutines*perG/2) {
		t.Fatalf("cache hits %d, expected a warm majority of %d requests", st, goroutines*perG)
	}
}

// drive sends one in-process request through the mux.
func drive(mux http.Handler, body []byte) (int, []byte) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// BenchmarkServeCacheHit is the baseline-gated steady-state number: one
// canonicalisation + cache probe + label translation, zero allocations.
func BenchmarkServeCacheHit(b *testing.B) {
	s := NewServer(Config{Workers: 1})
	defer s.Close()
	f := genFile(b, 12, 3, 5, 0, 7)
	var req SolveRequest
	req.Instance = *f
	p, herr := s.admit(&req)
	if herr != nil {
		b.Fatalf("admit: %+v", herr)
	}
	if out := s.runJob(&job{ctx: context.Background(), p: p}); out.err != nil {
		b.Fatal(out.err)
	}
	var resp SolveResponse
	if !s.lookup(&p, &resp) {
		b.Fatal("prime lookup missed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if !s.lookup(&p, &resp) {
			b.Fatal("lookup missed")
		}
	}
}

// BenchmarkServeLoad drives the full HTTP request path (JSON decode,
// admission, cache, JSON encode) in parallel and reports the request rate
// and the server-observed latency quantiles. Not baseline-gated: the
// numbers carry scheduler noise; the artifact archives them.
func BenchmarkServeLoad(b *testing.B) {
	s := NewServer(Config{Workers: runtime.GOMAXPROCS(0), CacheSize: 4096})
	defer s.Close()
	mux := s.Handler()
	warm := solveBody(b, genFile(b, 12, 3, 5, 0, 7), nil)
	if code, body := drive(mux, warm); code != http.StatusOK {
		b.Fatalf("warmup: %d %s", code, body)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if code, _ := drive(mux, warm); code != http.StatusOK {
				b.Fatal("request failed")
			}
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "req/s")
	}
	snap := s.hist.snapshot()
	b.ReportMetric(snap.P50Us, "p50-us")
	b.ReportMetric(snap.P99Us, "p99-us")
}
