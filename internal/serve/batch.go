// POST /solve/batch: many instances in one request. Each item runs the
// same admission → cache lookup → worker-pool path as a lone /solve; the
// wins over N separate posts are one HTTP round trip and full pool
// parallelism across the items (all cache misses enqueue before the first
// result is awaited). Items succeed and fail independently — the response
// carries per-item results in request order, never a partial list.
package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// maxBatchItems caps one batch request; larger batches are rejected with
// "batch-too-large" (split client-side, the cap is per round trip).
const maxBatchItems = 256

// BatchRequest is the POST /solve/batch body. Item streaming is not
// supported: a batch answers once, with every item settled.
type BatchRequest struct {
	Items []SolveRequest `json:"items"`
}

// BatchItem is one item's outcome: exactly one of Result and Error is set.
type BatchItem struct {
	Result *SolveResponse `json:"result,omitempty"`
	Error  *ErrorResponse `json:"error,omitempty"`
}

// BatchResponse answers a batch in request order.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
	// CacheHits counts the items answered from the solution cache;
	// Solved counts the items that went through the worker pool.
	CacheHits int     `json:"cacheHits"`
	Solved    int     `json:"solved"`
	ElapsedMs float64 `json:"elapsedMs"`
}

func itemErr(code, detail string) BatchItem {
	return BatchItem{Error: &ErrorResponse{Error: code, Detail: detail}}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method-not-allowed", "POST a BatchRequest")
		return
	}
	t0 := time.Now()
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad-request", err.Error())
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, http.StatusBadRequest, "empty-batch", "items is empty")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeErr(w, http.StatusBadRequest, "batch-too-large",
			"batch exceeds the server cap; split it client-side")
		return
	}

	resp := BatchResponse{Items: make([]BatchItem, len(req.Items))}
	// Phase 1: admit, probe the cache, and enqueue every miss — so the
	// pool works the whole batch concurrently, not item by item.
	jobs := make([]*job, len(req.Items))
	for i := range req.Items {
		item := &req.Items[i]
		s.stats.requests.Add(1)
		if item.Stream {
			resp.Items[i] = itemErr("bad-request", "stream is not supported inside a batch")
			continue
		}
		p, herr := s.admit(item)
		if herr != nil {
			resp.Items[i] = itemErr(herr.code, herr.detail)
			continue
		}
		if !p.noCache {
			var hit SolveResponse
			if s.lookup(&p, &hit) {
				hit.ElapsedMs = elapsedMs(t0)
				s.hist.observe(time.Since(t0))
				resp.Items[i] = BatchItem{Result: &hit}
				resp.CacheHits++
				continue
			}
		}
		j := &job{ctx: r.Context(), p: p, start: t0, done: make(chan solveOutcome, 1)}
		if !s.enqueue(j) {
			s.stats.rejected.Add(1)
			resp.Items[i] = itemErr("overloaded", "solve queue full; retry later")
			continue
		}
		jobs[i] = j
	}
	// Phase 2: settle the enqueued items in request order. Every enqueued
	// job gets exactly one outcome (the done channel is buffered, workers
	// never block on it), so this drains even if the client hung up.
	for i, j := range jobs {
		if j == nil {
			continue
		}
		out := <-j.done
		if out.err != nil {
			resp.Items[i] = itemErr(out.code, out.err.Error())
			continue
		}
		br := s.buildResponse(&j.p, &out, t0)
		s.hist.observe(time.Since(t0))
		resp.Items[i] = BatchItem{Result: br}
		resp.Solved++
	}
	resp.ElapsedMs = elapsedMs(t0)
	writeJSON(w, http.StatusOK, &resp)
}
