// Canonical instance hashing: the cache key that makes the solve daemon
// recognise a problem it has already solved, no matter how the request
// labels it. Two instances receive the same digest exactly when they are
// isomorphic — equal up to a relabeling of tasks (that respects the
// in-tree), a relabeling of task types, and a permutation of machines.
// Machine *names* are cosmetic and ignored.
//
// The construction is canonical-form hashing, not feature hashing: the
// instance is rewritten into a canonical byte encoding (canonical task
// order, canonical type labels, canonical machine order) and that encoding
// is SHA-256'd. Collisions between non-isomorphic instances therefore
// require either a SHA-256 collision or a signature tie during
// canonicalisation — and a signature tie can only cause two isomorphic-in-
// structure-but-different-in-data orderings to encode differently, i.e. a
// false cache MISS, never a false hit: the encoding always contains every
// w and f bit, so equal digests mean equal canonical instances.
//
// Canonicalisation proceeds in four steps, all allocation-free after
// warm-up (the canonicalizer is pooled and reused across requests):
//
//  1. per-task row signature: the multiset of (w[i][u], f[i][u]) pairs,
//     insertion-sorted and FNV-mixed — machine-order-insensitive;
//  2. bottom-up subtree signatures over Topological() (leaves first):
//     each task mixes its row signature with its children's sorted
//     signatures, so sig(i) identifies i's subtree up to isomorphism;
//  3. canonical task order: pre-order DFS from the root visiting children
//     in ascending signature order; canonical type labels by first
//     occurrence along that order;
//  4. canonical machine order: machines sorted lexicographically by their
//     (w, f) column read in canonical task order. Ties are genuinely
//     interchangeable columns (the exact solver's dominance classes), so
//     any tie order yields the same encoding.
//
// Besides the digest, canonicalisation keeps the two permutations it
// discovered — canonical position -> original task, canonical machine
// position -> original machine — so the cache can store mappings in
// canonical space and translate them into each isomorphic instance's own
// labels on a hit (see cache.go).
package serve

import (
	"crypto/sha256"
	"math"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// fnv-1a, mixed 8 bytes at a time by hand: the stdlib hash/fnv works on
// []byte and would force an encode step per mix.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mix64(h, v uint64) uint64 {
	for b := 0; b < 8; b++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// canonicalizer owns every scratch slice canonicalisation needs, so a
// pooled instance hashes a stream of requests without allocating. Not safe
// for concurrent use; ord/mperm/pos/minv stay valid until the next
// canonicalize call.
type canonicalizer struct {
	buf []byte // canonical encoding, digested at the end

	rowW, rowF []uint64     // one task's (w, f) bit pairs, sorted
	sig        []uint64     // per-task subtree signature
	sigArena   []uint64     // children signatures while sorting
	arena      []app.TaskID // children, sig-sorted, one segment per node

	ord     []app.TaskID // canonical position -> original task (pre-order)
	pos     []int32      // original task -> canonical position
	typeOf  []int32      // canonical position -> canonical type label
	typeMap []int32      // original type -> canonical label, -1 = unseen

	mperm []platform.MachineID // canonical machine position -> original machine
	minv  []int32              // original machine -> canonical machine position
}

// ensure sizes the scratch state for an (n, m, p) instance.
func (c *canonicalizer) ensure(n, m, p int) {
	if cap(c.sig) < n {
		c.sig = make([]uint64, n)
		c.pos = make([]int32, n)
		c.typeOf = make([]int32, n)
		c.ord = make([]app.TaskID, 0, n)
		c.arena = make([]app.TaskID, 0, n)
		c.sigArena = make([]uint64, 0, n)
	}
	c.sig = c.sig[:n]
	c.pos = c.pos[:n]
	c.typeOf = c.typeOf[:n]
	if cap(c.rowW) < m {
		c.rowW = make([]uint64, 0, m)
		c.rowF = make([]uint64, 0, m)
		c.mperm = make([]platform.MachineID, m)
		c.minv = make([]int32, m)
	}
	c.mperm = c.mperm[:m]
	c.minv = c.minv[:m]
	if cap(c.typeMap) < p {
		c.typeMap = make([]int32, p)
	}
	c.typeMap = c.typeMap[:p]
}

// canonicalize rewrites the instance into canonical form and returns its
// digest. After it returns, c.ord, c.pos, c.mperm and c.minv hold the
// task/machine translations between the instance's labels and canonical
// space.
func (c *canonicalizer) canonicalize(in *core.Instance) [32]byte {
	n, m, p := in.N(), in.M(), in.P()
	c.ensure(n, m, p)
	c.subtreeSigs(in)
	c.canonOrder(in.App)
	c.canonTypes(in.App)
	c.canonMachines(in)
	return sha256.Sum256(c.encode(in))
}

// rowSig hashes the multiset of (w, f) pairs of one task's machine row.
// Sorting by raw float bits is sound here: w > 0 and f in [0, 1), so the
// bit order matches the value order — and any deterministic,
// permutation-invariant order would do.
func (c *canonicalizer) rowSig(in *core.Instance, i app.TaskID) uint64 {
	w := in.Platform.Row(i)
	f := in.Failures.Row(i)
	rw, rf := c.rowW[:0], c.rowF[:0]
	for u := range w {
		wb, fb := math.Float64bits(w[u]), math.Float64bits(f[u])
		j := len(rw)
		rw = append(rw, 0)
		rf = append(rf, 0)
		for j > 0 && (wb < rw[j-1] || (wb == rw[j-1] && fb < rf[j-1])) {
			rw[j], rf[j] = rw[j-1], rf[j-1]
			j--
		}
		rw[j], rf[j] = wb, fb
	}
	c.rowW, c.rowF = rw, rf // keep the grown capacity
	h := fnvOffset
	for u := range rw {
		h = mix64(h, rw[u])
		h = mix64(h, rf[u])
	}
	return h
}

// subtreeSigs fills c.sig bottom-up: Topological() is leaves-first, so
// every child signature is final when its parent mixes it in. Task types
// are deliberately left out (type labels are canonicalised separately);
// the children's signatures enter sorted, making sig invariant under any
// reordering of the predecessor lists.
func (c *canonicalizer) subtreeSigs(in *core.Instance) {
	a := in.App
	for _, i := range a.Topological() {
		h := mix64(c.rowSig(in, i), 0x9e3779b97f4a7c15)
		preds := a.Predecessors(i)
		seg := c.sigArena[:0]
		for _, k := range preds {
			s := c.sig[k]
			j := len(seg)
			seg = append(seg, 0)
			for j > 0 && s < seg[j-1] {
				seg[j] = seg[j-1]
				j--
			}
			seg[j] = s
		}
		c.sigArena = seg
		h = mix64(h, uint64(len(preds)))
		for _, s := range seg {
			h = mix64(h, s)
		}
		c.sig[i] = h
	}
}

// canonOrder fills c.ord with the pre-order DFS from the root, visiting
// children in ascending subtree-signature order, and c.pos with its
// inverse. Equal-signature children keep their predecessor-list order;
// that tie is either two interchangeable subtrees (same encoding either
// way) or a signature collision (false miss at worst).
func (c *canonicalizer) canonOrder(a *app.Application) {
	c.ord = c.ord[:0]
	c.arena = c.arena[:0]
	c.visit(a, a.Root())
}

func (c *canonicalizer) visit(a *app.Application, i app.TaskID) {
	c.pos[i] = int32(len(c.ord))
	c.ord = append(c.ord, i)
	preds := a.Predecessors(i)
	if len(preds) == 0 {
		return
	}
	lo := len(c.arena)
	c.arena = append(c.arena, preds...)
	// kids aliases the arena segment reserved above; deeper visits only
	// append past it (a growth reallocation strands kids on the old
	// backing array, which is fine: its contents are final by then).
	kids := c.arena[lo : lo+len(preds)]
	for x := 1; x < len(kids); x++ {
		k := kids[x]
		j := x - 1
		for j >= 0 && c.sig[k] < c.sig[kids[j]] {
			kids[j+1] = kids[j]
			j--
		}
		kids[j+1] = k
	}
	for _, k := range kids {
		c.visit(a, k)
	}
}

// canonTypes labels types by first occurrence along the canonical order.
func (c *canonicalizer) canonTypes(a *app.Application) {
	for t := range c.typeMap {
		c.typeMap[t] = -1
	}
	next := int32(0)
	for k, i := range c.ord {
		t := a.Type(i)
		if c.typeMap[t] < 0 {
			c.typeMap[t] = next
			next++
		}
		c.typeOf[k] = c.typeMap[t]
	}
}

// canonMachines insertion-sorts the machine indices by their (w, f)
// column read in canonical task order and fills mperm/minv.
func (c *canonicalizer) canonMachines(in *core.Instance) {
	for u := range c.mperm {
		c.mperm[u] = platform.MachineID(u)
	}
	for x := 1; x < len(c.mperm); x++ {
		u := c.mperm[x]
		j := x - 1
		for j >= 0 && c.columnLess(in, u, c.mperm[j]) {
			c.mperm[j+1] = c.mperm[j]
			j--
		}
		c.mperm[j+1] = u
	}
	for j, u := range c.mperm {
		c.minv[u] = int32(j)
	}
}

// columnLess compares two machine columns lexicographically over the
// canonical task order, (w bits, f bits) per task.
func (c *canonicalizer) columnLess(in *core.Instance, u, v platform.MachineID) bool {
	for _, i := range c.ord {
		w := in.Platform.Row(i)
		wu, wv := math.Float64bits(w[u]), math.Float64bits(w[v])
		if wu != wv {
			return wu < wv
		}
		f := in.Failures.Row(i)
		fu, fv := math.Float64bits(f[u]), math.Float64bits(f[v])
		if fu != fv {
			return fu < fv
		}
	}
	return false
}

// encode serialises the canonical form into c.buf: header, the tree shape
// (each task's canonical parent position and canonical type), then the
// full w and f matrices in canonical (task, machine) order. Every data bit
// lands in the buffer — that is what makes equal digests mean equal
// canonical instances.
func (c *canonicalizer) encode(in *core.Instance) []byte {
	a := in.App
	buf := append(c.buf[:0], "mfcanon1"...)
	buf = appendU64(buf, uint64(len(c.ord)))
	buf = appendU64(buf, uint64(len(c.mperm)))
	for k, i := range c.ord {
		parent := uint64(math.MaxUint64) // root marker
		if s := a.Successor(i); s != app.NoTask {
			parent = uint64(c.pos[s]) // pre-order: always already visited
		}
		buf = appendU64(buf, parent)
		buf = appendU64(buf, uint64(c.typeOf[k]))
	}
	for _, i := range c.ord {
		w := in.Platform.Row(i)
		f := in.Failures.Row(i)
		for _, u := range c.mperm {
			buf = appendU64(buf, math.Float64bits(w[u]))
			buf = appendU64(buf, math.Float64bits(f[u]))
		}
	}
	c.buf = buf
	return buf
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// encodeMapping writes the canonical-space image of a complete mapping:
// dst[k] = canonical machine of the machine running canonical task k.
// dst must have length n.
func (c *canonicalizer) encodeMapping(m *core.Mapping, dst []int32) {
	for k, i := range c.ord {
		dst[k] = c.minv[m.Machine(i)]
	}
}

// decodeAssign translates a canonical-space mapping into this instance's
// labels: dst[task] = machine index. dst must have length n.
func (c *canonicalizer) decodeAssign(canon []int32, dst []int) {
	for k, i := range c.ord {
		dst[i] = int(c.mperm[canon[k]])
	}
}

// CanonicalHash returns the canonical digest of the instance. Two
// instances share a digest exactly when one can be rewritten into the
// other by relabeling tasks (preserving the in-tree), relabeling types,
// and permuting machines; machine names are ignored.
func CanonicalHash(in *core.Instance) [32]byte {
	c := canonPool.Get().(*canonicalizer)
	h := c.canonicalize(in)
	canonPool.Put(c)
	return h
}
