// Canonical-hash contract: isomorphic instances collide, near-misses do
// not, and the kept permutations translate mappings across isomorphic
// instances without changing their period.
package serve

import (
	"math/rand"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// TestCanonicalHashIsomorphism: any composition of task relabeling, type
// relabeling and machine permutation leaves the digest unchanged, on
// chains and on in-trees.
func TestCanonicalHashIsomorphism(t *testing.T) {
	for _, tc := range []struct{ n, p, m, branches int }{
		{1, 1, 1, 0},
		{8, 3, 4, 0},
		{15, 4, 6, 0},
		{14, 4, 5, 3},
		{20, 5, 7, 4},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			f := genFile(t, tc.n, tc.p, tc.m, tc.branches, seed)
			in := toInstance(t, f)
			want := CanonicalHash(in)
			rng := rand.New(rand.NewSource(seed * 977))
			for trial := 0; trial < 4; trial++ {
				g := permuteFile(f,
					randPerm(rng, tc.n), randPerm(rng, tc.m), randPerm(rng, tc.p))
				got := CanonicalHash(toInstance(t, g))
				if got != want {
					t.Fatalf("n=%d m=%d branches=%d seed=%d trial=%d: isomorphic instances hash differently",
						tc.n, tc.m, tc.branches, seed, trial)
				}
			}
		}
	}
}

// TestCanonicalHashNearMiss: perturbing a single matrix entry by one part
// in 1e12, or retyping a single task, changes the digest — the canonical
// encoding carries every bit.
func TestCanonicalHashNearMiss(t *testing.T) {
	f := genFile(t, 12, 3, 5, 0, 7)
	want := CanonicalHash(toInstance(t, f))

	g := copyFile(f)
	g.Failures[4][2] *= 1 + 1e-12
	if CanonicalHash(toInstance(t, g)) == want {
		t.Fatal("perturbed failure rate collided")
	}
	// Execution times are typed (same-type tasks share a w row), so the
	// perturbation must hit the whole type class to stay a valid instance.
	g = copyFile(f)
	ty := g.Tasks[7].Type
	for _, task := range g.Tasks {
		if task.Type == ty {
			g.Times[task.ID][1] *= 1 + 1e-12
		}
	}
	if CanonicalHash(toInstance(t, g)) == want {
		t.Fatal("perturbed execution time collided")
	}
	// Move one task to another existing type: the type partition changes
	// even though the type *set* does not. The w rows of this generator
	// depend only on the type, so keep them consistent by borrowing a row
	// from the target type.
	g = copyFile(f)
	var donor int = -1
	for _, task := range g.Tasks {
		if task.ID != g.Tasks[0].ID && task.Type != g.Tasks[0].Type {
			donor = task.ID
			break
		}
	}
	if donor < 0 {
		t.Fatal("generator produced a single-type chain")
	}
	g.Tasks[0].Type = g.Tasks[donor].Type
	copy(g.Times[g.Tasks[0].ID], g.Times[donor])
	if CanonicalHash(toInstance(t, g)) == want {
		t.Fatal("retyped task collided")
	}
}

// TestCanonicalHashNamesIgnored: machine names are cosmetic.
func TestCanonicalHashNamesIgnored(t *testing.T) {
	f := genFile(t, 9, 3, 4, 0, 11)
	want := CanonicalHash(toInstance(t, f))
	g := copyFile(f)
	g.MachineNames = []string{"east", "west", "north", "south"}
	if CanonicalHash(toInstance(t, g)) != want {
		t.Fatal("machine names changed the digest")
	}
}

// TestCanonicalHashStructure: a chain and an in-tree over identical task
// multisets must not collide (the encoding carries the tree shape).
func TestCanonicalHashStructure(t *testing.T) {
	chain := genFile(t, 12, 3, 5, 0, 3)
	tree := genFile(t, 12, 3, 5, 3, 3)
	if CanonicalHash(toInstance(t, chain)) == CanonicalHash(toInstance(t, tree)) {
		t.Fatal("chain and in-tree collided")
	}
}

// TestCanonicalMappingTranslation: a mapping encoded into canonical space
// against one instance and decoded against an isomorphic one must keep
// its period exactly (machine loads are label-invariant).
func TestCanonicalMappingTranslation(t *testing.T) {
	f := genFile(t, 14, 4, 5, 3, 19)
	in := toInstance(t, f)
	rng := rand.New(rand.NewSource(55))
	tp, mp, yp := randPerm(rng, 14), randPerm(rng, 5), randPerm(rng, 4)
	iso := toInstance(t, permuteFile(f, tp, mp, yp))

	// Any complete mapping will do; i%m keeps it deterministic.
	m := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		m.Assign(app.TaskID(i), platform.MachineID(i%in.M()))
	}
	evWant, err := core.Evaluate(in, m)
	if err != nil {
		t.Fatal(err)
	}

	var ca, cb canonicalizer
	if ca.canonicalize(in) != cb.canonicalize(iso) {
		t.Fatal("isomorphic instances hash differently")
	}
	canon := make([]int32, in.N())
	ca.encodeMapping(m, canon)
	assign := make([]int, in.N())
	cb.decodeAssign(canon, assign)
	iso2 := core.NewMapping(in.N())
	for i, u := range assign {
		iso2.Assign(app.TaskID(i), platform.MachineID(u))
	}
	evGot, err := core.Evaluate(iso, iso2)
	if err != nil {
		t.Fatal(err)
	}
	if evGot.Period != evWant.Period {
		t.Fatalf("translated mapping period %v, original %v", evGot.Period, evWant.Period)
	}
}

// TestCanonicalHashDeterministic: repeated hashing of the same instance
// through the pooled canonicalizers is stable.
func TestCanonicalHashDeterministic(t *testing.T) {
	f := genFile(t, 10, 3, 4, 2, 23)
	in := toInstance(t, f)
	want := CanonicalHash(in)
	for k := 0; k < 10; k++ {
		if CanonicalHash(toInstance(t, f)) != want {
			t.Fatal("digest not deterministic across parses")
		}
	}
}

// FuzzCanonicalHash drives random (instance, permutation) pairs through
// the two contract halves: isomorphic copies collide, one-ulp
// perturbations do not.
func FuzzCanonicalHash(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(8), uint8(3), uint8(4), uint8(0))
	f.Add(int64(3), int64(4), uint8(15), uint8(4), uint8(6), uint8(3))
	f.Add(int64(9), int64(8), uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(int64(7), int64(5), uint8(20), uint8(5), uint8(7), uint8(4))
	f.Fuzz(func(t *testing.T, seed, permSeed int64, n8, p8, m8, branches8 uint8) {
		n := 1 + int(n8)%24
		p := 1 + int(p8)%6
		m := 1 + int(m8)%8
		branches := int(branches8) % 5
		file, err := genFileErr(n, p, m, branches, seed)
		if err != nil {
			t.Skip("generator rejected the parameter draw:", err)
		}
		in := toInstance(t, file)
		want := CanonicalHash(in)
		rng := rand.New(rand.NewSource(permSeed))
		iso := permuteFile(file, randPerm(rng, n), randPerm(rng, m), randPerm(rng, p))
		if CanonicalHash(toInstance(t, iso)) != want {
			t.Fatalf("isomorphic instances hash differently (n=%d p=%d m=%d branches=%d)", n, p, m, branches)
		}
		mut := copyFile(file)
		i := int(rng.Int31n(int32(n)))
		u := int(rng.Int31n(int32(m)))
		mut.Failures[i][u] = mut.Failures[i][u]*(1+1e-12) + 1e-15
		if CanonicalHash(toInstance(t, mut)) == want {
			t.Fatalf("perturbed f[%d][%d] collided", i, u)
		}
	})
}
