// Pooled pricing engines. A daemon serving thousands of small solves per
// second cannot afford a fresh Evaluator/Pricer allocation per request, so
// engines are kept in sync.Pools keyed by (n, m) shape class and repointed
// at each request's instance via the engines' Rebind — same allocated
// state, different same-shape instance, bit-identical pricing (pinned by
// internal/core's rebind tests).
package serve

import (
	"sync"

	"microfab/internal/core"
)

type dims struct{ n, m int }

// enginePools holds one sync.Pool of Evaluators and one of Pricers per
// (n, m) class. The class map itself is append-only and tiny (one entry
// per distinct shape seen), guarded by a mutex on the slow path only.
type enginePools struct {
	mu      sync.Mutex
	evals   map[dims]*sync.Pool
	pricers map[dims]*sync.Pool
}

func newEnginePools() *enginePools {
	return &enginePools{
		evals:   make(map[dims]*sync.Pool),
		pricers: make(map[dims]*sync.Pool),
	}
}

func (p *enginePools) class(m map[dims]*sync.Pool, d dims) *sync.Pool {
	p.mu.Lock()
	pool := m[d]
	if pool == nil {
		pool = &sync.Pool{}
		m[d] = pool
	}
	p.mu.Unlock()
	return pool
}

// evaluator returns a pooled Evaluator rebound to in, or a fresh one when
// the pool is empty. Release with putEvaluator.
func (p *enginePools) evaluator(in *core.Instance) *core.Evaluator {
	pool := p.class(p.evals, dims{in.N(), in.M()})
	if v := pool.Get(); v != nil {
		if e := v.(*core.Evaluator); e.Rebind(in) {
			return e
		}
	}
	return core.NewEvaluator(in)
}

func (p *enginePools) putEvaluator(e *core.Evaluator) {
	p.class(p.evals, dims{e.Len(), e.M()}).Put(e)
}

// pricer returns a pooled Pricer rebound to in, or a fresh one when the
// pool is empty. Release with putPricer.
func (p *enginePools) pricer(in *core.Instance) *core.Pricer {
	pool := p.class(p.pricers, dims{in.N(), in.M()})
	if v := pool.Get(); v != nil {
		if pr := v.(*core.Pricer); pr.Rebind(in) {
			return pr
		}
	}
	return core.NewPricer(in)
}

func (p *enginePools) putPricer(pr *core.Pricer) {
	p.class(p.pricers, dims{pr.Len(), pr.M()}).Put(pr)
}
