// LRU mechanics of the solution cache: capacity boundary, eviction order,
// and the /stats entry count across an evict + re-insert cycle.
package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func ck(i int) cacheKey {
	var k cacheKey
	k.digest[0] = byte(i)
	k.digest[1] = byte(i >> 8)
	return k
}

func ce(i int) *cacheEntry {
	return &cacheEntry{canonAssign: []int32{int32(i)}, period: float64(i)}
}

// TestCacheCapacityBoundary: a cache at capacity holds exactly capacity
// entries; the next distinct put evicts exactly one.
func TestCacheCapacityBoundary(t *testing.T) {
	const cap = 4
	c := newSolutionCache(cap)
	for i := 0; i < cap; i++ {
		c.put(ck(i), ce(i))
	}
	if c.len() != cap {
		t.Fatalf("at capacity: len %d, want %d", c.len(), cap)
	}
	for i := 0; i < cap; i++ {
		if c.get(ck(i)) == nil {
			t.Fatalf("entry %d missing at capacity", i)
		}
	}
	c.put(ck(cap), ce(cap))
	if c.len() != cap {
		t.Fatalf("beyond capacity: len %d, want %d", c.len(), cap)
	}
	// Re-putting an existing key replaces in place — no eviction.
	c.put(ck(cap), ce(99))
	if c.len() != cap {
		t.Fatalf("refresh grew the cache: len %d, want %d", c.len(), cap)
	}
	if e := c.get(ck(cap)); e == nil || e.period != 99 {
		t.Fatalf("refresh did not replace the entry: %+v", e)
	}
}

// TestCacheEvictionOrder: eviction removes the least recently *used*
// entry, where both get and put refresh recency.
func TestCacheEvictionOrder(t *testing.T) {
	c := newSolutionCache(3)
	c.put(ck(0), ce(0))
	c.put(ck(1), ce(1))
	c.put(ck(2), ce(2))
	// Touch 0 (the oldest) via get: 1 becomes the LRU.
	if c.get(ck(0)) == nil {
		t.Fatal("warm entry 0 missing")
	}
	c.put(ck(3), ce(3)) // must evict 1
	if c.get(ck(1)) != nil {
		t.Fatal("entry 1 survived; eviction ignored get-recency")
	}
	for _, i := range []int{0, 2, 3} {
		if c.get(ck(i)) == nil {
			t.Fatalf("entry %d evicted out of order", i)
		}
	}
	// Refresh 2 via put, then push one more: 0 is now the LRU.
	c.put(ck(2), ce(22))
	c.put(ck(4), ce(4)) // must evict 0
	if c.get(ck(0)) != nil {
		t.Fatal("entry 0 survived; eviction ignored put-recency")
	}
	for _, i := range []int{2, 3, 4} {
		if c.get(ck(i)) == nil {
			t.Fatalf("entry %d evicted out of order after refresh", i)
		}
	}
}

// TestCacheEvictReinsertStats: /stats cacheEntries tracks the live count
// across fill, eviction and re-insert-after-evict — an evicted key that
// returns is a fresh entry (a miss then a recount), never a double count.
func TestCacheEvictReinsertStats(t *testing.T) {
	s := NewServer(Config{Workers: 1, CacheSize: 2})
	defer s.Close()
	h := s.Handler()

	readStats := func() StatsResponse {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
		var st StatsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	solve := func(seed int64) {
		body, _ := json.Marshal(SolveRequest{Instance: *genFile(t, 6, 2, 2, 0, seed)})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("solve(%d): HTTP %d: %s", seed, rec.Code, rec.Body.Bytes())
		}
	}

	for i, want := range []int{1, 2, 2} { // third distinct instance evicts
		solve(int64(100 + i))
		if got := readStats().CacheEntries; got != want {
			t.Fatalf("after %d solves: cacheEntries %d, want %d", i+1, got, want)
		}
	}
	st0 := readStats()
	// Instance 100 was evicted by 102 (LRU). Re-solving it must MISS (a
	// fresh solve, not a stale hit), re-insert it, and keep the count at
	// capacity.
	solve(100)
	st1 := readStats()
	if st1.CacheMisses != st0.CacheMisses+1 {
		t.Fatalf("re-solve of evicted instance hit the cache (misses %d -> %d)", st0.CacheMisses, st1.CacheMisses)
	}
	if st1.CacheEntries != 2 {
		t.Fatalf("after re-insert: cacheEntries %d, want 2", st1.CacheEntries)
	}
	// And now it hits again.
	hits0 := st1.CacheHits
	solve(100)
	if st := readStats(); st.CacheHits != hits0+1 || st.CacheEntries != 2 {
		t.Fatalf("re-inserted entry does not serve hits: %+v", st)
	}

	// Guard the arithmetic: entries never exceeds CacheSize however many
	// distinct instances pass through.
	for i := 0; i < 5; i++ {
		solve(int64(200 + i))
	}
	if got := readStats().CacheEntries; got != 2 {
		t.Fatalf("cacheEntries %d after churn, want 2", got)
	}
}
