//go:build race

package serve

// raceEnabled skips the allocation pins under -race: the detector's
// instrumentation allocates on paths that are allocation-free in a real
// build.
const raceEnabled = true
