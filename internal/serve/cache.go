// The solution cache: canonical digest + solve parameters -> a mapping
// stored in canonical space. Storing canonically is what makes the cache
// serve *isomorphic* requests, not just byte-identical ones: a hit
// translates the canonical assignment through the requesting instance's
// own (task, machine) permutations, so every client gets the answer in its
// own labels. The period is label-invariant (machine loads are a function
// of which column runs which subtree), so it is stored as-is.
package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"microfab/internal/core"
)

// canonPool recycles canonicalizers across requests; a Get on the steady
// state allocates nothing.
var canonPool = sync.Pool{New: func() any { return new(canonicalizer) }}

// cacheKey identifies one cached solve. Everything that can change the
// answer is in the key: the canonical instance digest plus the solve
// parameters (solver, rule, seed for the seeded solvers, node budget and
// worker count for the exact search — a budget-stopped incumbent depends
// on both).
type cacheKey struct {
	digest   [32]byte
	solver   string
	rule     core.Rule
	seed     int64
	maxNodes int64
	workers  int32
}

// cacheEntry is one cached result. canonAssign[k] is the canonical
// machine position running canonical task k.
type cacheEntry struct {
	canonAssign []int32
	period      float64
	proven      bool
	hasProven   bool // exact-family solvers only
	nodes       int64
	solver      string
}

// solutionCache is a mutex-guarded LRU over cacheKey. Hit/miss counters
// are atomics so the stats endpoint reads them without the lock.
type solutionCache struct {
	mu       sync.Mutex
	capacity int
	ll       list.List // front = most recently used; values are *lruItem
	items    map[cacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type lruItem struct {
	key   cacheKey
	entry *cacheEntry
}

func newSolutionCache(capacity int) *solutionCache {
	c := &solutionCache{
		capacity: capacity,
		items:    make(map[cacheKey]*list.Element, capacity),
	}
	c.ll.Init()
	return c
}

// get returns the cached entry (nil on miss) and counts the outcome. The
// returned entry is immutable after put; callers only read it.
func (c *solutionCache) get(k cacheKey) *cacheEntry {
	c.mu.Lock()
	el, ok := c.items[k]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return el.Value.(*lruItem).entry
}

// put inserts (or refreshes) an entry, evicting the least recently used
// one beyond capacity.
func (c *solutionCache) put(k cacheKey, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruItem).entry = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&lruItem{key: k, entry: e})
	for len(c.items) > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruItem).key)
	}
}

func (c *solutionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
