package experiments

import (
	"fmt"
	"strings"
)

// Render formats a Result as an aligned text table: one row per x value,
// one column per series (mean over the draws), mirroring the paper's plot
// series.
func Render(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(r.ID), r.Title)
	fmt.Fprintf(&b, "y: %s; %d draws per point; seed %d\n", r.YLabel, r.Draws, r.Seed)

	header := []string{r.XLabel}
	header = append(header, r.SeriesOrder...)
	withSolved := false
	for _, pt := range r.Points {
		if pt.Solved > 0 {
			withSolved = true
			break
		}
	}
	if withSolved {
		header = append(header, "solved")
	}
	rows := [][]string{header}
	for _, pt := range r.Points {
		row := []string{fmt.Sprintf("%d", pt.X)}
		for _, name := range r.SeriesOrder {
			s := pt.Series[name]
			if s.N == 0 {
				row = append(row, "-")
			} else if r.Normalized {
				row = append(row, fmt.Sprintf("%.2f", s.Mean))
			} else {
				row = append(row, fmt.Sprintf("%.0f", s.Mean))
			}
		}
		if withSolved {
			row = append(row, fmt.Sprintf("%d/%d", pt.Solved, r.Draws))
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for i, row := range rows {
		for c, cell := range row {
			fmt.Fprintf(&b, "%*s", widths[c]+2, cell)
		}
		b.WriteByte('\n')
		if i == 0 {
			for c := range row {
				fmt.Fprintf(&b, "%*s", widths[c]+2, strings.Repeat("-", widths[c]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// MeanRatio returns, for a normalized figure (Fig11-style), the average
// over all points of a series' mean ratio — the paper's single-number
// "factor from the optimal".
func MeanRatio(r *Result, series string) float64 {
	var sum float64
	var k int
	for _, pt := range r.Points {
		s, ok := pt.Series[series]
		if !ok || s.N == 0 {
			continue
		}
		sum += s.Mean
		k++
	}
	if k == 0 {
		return 0
	}
	return sum / float64(k)
}
