package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestParallelMatchesSequentialFig5: the engine's determinism contract —
// Workers=1 and Workers=8 produce byte-identical series for the same seed.
func TestParallelMatchesSequentialFig5(t *testing.T) {
	base := Config{Draws: 4, Thin: 3, Seed: 17}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8

	a, err := Fig5(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Workers=1 and Workers=8 diverge:\n%s\nvs\n%s", Render(a), Render(b))
	}
	if Render(a) != Render(b) {
		t.Fatal("rendered output differs between worker counts")
	}
}

// TestParallelMatchesSequentialFig11 covers the MIP path. Wall-clock
// budgets are nondeterministic, so the config makes the node budget the
// binding one: a generous time limit with a modest MIPMaxNodes.
func TestParallelMatchesSequentialFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("exact solves are slow; skipped with -short")
	}
	base := Config{
		Draws: 2, Thin: 8, Seed: 5,
		MIPTimeLimit: 60 * time.Second, MIPMaxNodes: 100,
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8

	a, err := Fig11(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Workers=1 and Workers=8 diverge:\n%s\nvs\n%s", Render(a), Render(b))
	}
}

// TestCancellation: cancelling the context mid-campaign stops the engine
// at the next draw boundary and surfaces context.Canceled.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg := Config{
		Draws: 30, Seed: 1, Workers: 2,
		Progress: func(done, total int) {
			if done >= 3 {
				once.Do(cancel)
			}
		},
	}
	r, err := FigureCtx(ctx, 5, cfg)
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if r != nil {
		t.Fatal("cancelled campaign returned a partial result")
	}
}

// TestAlreadyCancelled: a context cancelled before the campaign starts
// yields no work at all.
func TestAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	cfg := Config{Draws: 2, Thin: 4, Seed: 1,
		Progress: func(done, total int) { ran = true }}
	if _, err := FigureCtx(ctx, 6, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("draws ran under a dead context")
	}
}

// TestProgressReporting: the callback sees every draw exactly once, with a
// monotonically increasing counter ending at the campaign total.
func TestProgressReporting(t *testing.T) {
	var calls []int
	var total int
	cfg := Config{
		Draws: 3, Thin: 6, Seed: 2, Workers: 4,
		Progress: func(done, tot int) {
			calls = append(calls, done)
			total = tot
		},
	}
	r, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(r.Points) * r.Draws
	if total != want {
		t.Fatalf("reported total %d, want %d", total, want)
	}
	if len(calls) != want {
		t.Fatalf("%d progress calls, want %d", len(calls), want)
	}
	for i, c := range calls {
		if c != i+1 {
			t.Fatalf("progress not monotonic: call %d reported %d", i, c)
		}
	}
}

// TestWorkersExceedItems: a pool larger than the work list still completes
// (workers are clamped to the item count).
func TestWorkersExceedItems(t *testing.T) {
	r, err := Fig6(Config{Draws: 1, Thin: 10, Seed: 3, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
}

// TestExactWorkersDeterministic: the per-draw exact DFS burst may fan out
// over ExactWorkers goroutines; as long as the burst proves within its
// node budget, the campaign must stay byte-identical to the sequential
// burst for any worker count.
func TestExactWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("exact solves are slow; skipped with -short")
	}
	// Thin keeps only the smallest x point so both the DFS burst and the
	// MIP prove within the node budget — the regime where the determinism
	// contract holds (a budget-stopped parallel burst may stop at a
	// different incumbent; see Config.MIPMaxNodes).
	base := Config{
		Draws: 4, Thin: 14, Seed: 5,
		MIPTimeLimit: 60 * time.Second, MIPMaxNodes: 5000,
	}
	seq := base
	seq.ExactWorkers = 1
	par := base
	par.ExactWorkers = 4

	a, err := Fig11(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ExactWorkers=1 and ExactWorkers=4 diverge:\n%s\nvs\n%s", Render(a), Render(b))
	}
}
