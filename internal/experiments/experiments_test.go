package experiments

import (
	"strings"
	"testing"
	"time"
)

func quickCfg() Config {
	return Config{Draws: 3, Thin: 4, Seed: 7, MIPTimeLimit: 10 * time.Second}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range r.Points {
		// The paper's headline comparison: the naive baselines H1 and
		// H4f trail the informed heuristics.
		h4w := pt.Series["H4w"].Mean
		if pt.Series["H1"].Mean <= h4w {
			t.Fatalf("n=%d: H1 (%v) not worse than H4w (%v)", pt.X, pt.Series["H1"].Mean, h4w)
		}
		if pt.Series["H4f"].Mean <= h4w {
			t.Fatalf("n=%d: H4f (%v) not worse than H4w (%v)", pt.X, pt.Series["H4f"].Mean, h4w)
		}
		for _, name := range r.SeriesOrder {
			if pt.Series[name].Mean <= 0 {
				t.Fatalf("n=%d: %s has nonpositive period", pt.X, name)
			}
		}
	}
}

func TestFig5PeriodGrowsWithTasks(t *testing.T) {
	r, err := Fig5(Config{Draws: 5, Thin: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 2 {
		t.Skip("not enough points after thinning")
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	for _, name := range r.SeriesOrder {
		if last.Series[name].Mean <= first.Series[name].Mean {
			t.Fatalf("%s: period did not grow with n (%v -> %v)",
				name, first.Series[name].Mean, last.Series[name].Mean)
		}
	}
}

func TestFig9OtoDominates(t *testing.T) {
	r, err := Fig9(Config{Draws: 3, Thin: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		oto := pt.Series["OtO"].Mean
		for _, name := range []string{"H2", "H3", "H4w"} {
			if pt.Series[name].Mean < oto-1e-6 {
				t.Fatalf("p=%d: %s (%v) beats the optimal one-to-one (%v)",
					pt.X, name, pt.Series[name].Mean, oto)
			}
		}
	}
}

func TestFig10MIPDominatesHeuristics(t *testing.T) {
	if testing.Short() {
		t.Skip("exact solves are slow; skipped with -short")
	}
	// The node budget binds before the time limit: cheap and deterministic.
	// Large-n draws are dropped as unproven; n=2 always solves.
	cfg := Config{Draws: 1, Thin: 5, Seed: 11, MIPTimeLimit: 15 * time.Second, MIPMaxNodes: 200}
	r, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	solvedSomething := false
	for _, pt := range r.Points {
		if pt.Solved == 0 {
			continue
		}
		solvedSomething = true
		mip := pt.Series["MIP"].Mean
		for _, name := range []string{"H1", "H2", "H3", "H4", "H4w", "H4f"} {
			if pt.Series[name].Mean < mip-1e-6 {
				t.Fatalf("n=%d: %s (%v) beats the proven optimum (%v)",
					pt.X, name, pt.Series[name].Mean, mip)
			}
		}
	}
	if !solvedSomething {
		t.Fatal("MIP never solved any draw; budgets far too small")
	}
}

func TestFig11RatiosAtLeastOne(t *testing.T) {
	if testing.Short() {
		t.Skip("exact solves are slow; skipped with -short")
	}
	cfg := Config{Draws: 1, Thin: 5, Seed: 13, MIPTimeLimit: 15 * time.Second, MIPMaxNodes: 200}
	r, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		for name, s := range pt.Series {
			if s.N > 0 && s.Mean < 1-1e-6 {
				t.Fatalf("n=%d: %s ratio %v below 1", pt.X, name, s.Mean)
			}
		}
	}
	if mr := MeanRatio(r, "H4w"); mr != 0 && mr < 1 {
		t.Fatalf("H4w mean ratio %v below 1", mr)
	}
}

func TestFigureDispatch(t *testing.T) {
	if _, err := Figure(4, quickCfg()); err == nil {
		t.Fatal("figure 4 accepted")
	}
	for _, n := range Numbers() {
		if n < 5 || n > 12 {
			t.Fatalf("unexpected figure number %d", n)
		}
	}
}

func TestRenderContainsSeries(t *testing.T) {
	r, err := Fig6(Config{Draws: 2, Thin: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := Render(r)
	for _, name := range r.SeriesOrder {
		if !strings.Contains(out, name) {
			t.Fatalf("render lacks series %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "FIG6") {
		t.Fatal("render lacks the figure id")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Fig7(Config{Draws: 2, Thin: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(Config{Draws: 2, Thin: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if Render(a) != Render(b) {
		t.Fatal("same seed produced different campaigns")
	}
}

func TestFig8HighFailureBlowup(t *testing.T) {
	r, err := Fig8(Config{Draws: 3, Thin: 9, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 2 {
		t.Skip("too thin")
	}
	// The paper's observation: periods increase dramatically with n in
	// the high-failure regime — superlinear growth for every series.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	ratioN := float64(last.X) / float64(first.X)
	for _, name := range r.SeriesOrder {
		growth := last.Series[name].Mean / first.Series[name].Mean
		if growth < ratioN {
			t.Fatalf("%s grew only %.1fx over a %.1fx task increase", name, growth, ratioN)
		}
	}
}
