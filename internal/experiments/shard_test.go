package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// TestShardedAssembleMatchesLocal: computing a campaign as scattered
// (point, draw-range) chunks — through a JSON round trip, like the fabric
// ships them — and assembling reproduces the local engine byte for byte.
func TestShardedAssembleMatchesLocal(t *testing.T) {
	cfg := Config{Draws: 4, Thin: 3, Seed: 17, Workers: 1}
	local, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := FigurePlan(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Draws != 4 || len(plan.Xs) == 0 {
		t.Fatalf("unexpected plan %+v", plan)
	}
	out := make([][]DrawResult, len(plan.Xs))
	ctx := context.Background()
	// Deliberately uneven chunking: [0,1), [1,4) per point.
	for xi, x := range plan.Xs {
		out[xi] = make([]DrawResult, plan.Draws)
		for _, rng := range [][2]int{{0, 1}, {1, plan.Draws}} {
			part, err := RunDraws(ctx, 5, cfg, x, rng[0], rng[1])
			if err != nil {
				t.Fatal(err)
			}
			// JSON round trip: what the wire does to the values.
			var back []DrawResult
			b, err := json.Marshal(part)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(b, &back); err != nil {
				t.Fatal(err)
			}
			copy(out[xi][rng[0]:rng[1]], back)
		}
	}
	merged, err := Assemble(5, cfg, out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, merged) {
		t.Fatalf("sharded result diverges from local:\n%s\nvs\n%s", Render(local), Render(merged))
	}
	lb, _ := json.Marshal(local)
	mb, _ := json.Marshal(merged)
	if !bytes.Equal(lb, mb) {
		t.Fatal("sharded result not byte-identical to local")
	}
}

// TestAssembleRejectsBadDims: a merge hole (missing point or short draw
// column) is an error, not a silent drop.
func TestAssembleRejectsBadDims(t *testing.T) {
	cfg := Config{Draws: 2, Thin: 4, Seed: 1}
	plan, err := FigurePlan(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(5, cfg, make([][]DrawResult, len(plan.Xs)-1)); err == nil {
		t.Fatal("short point axis accepted")
	}
	out := make([][]DrawResult, len(plan.Xs))
	for i := range out {
		out[i] = make([]DrawResult, plan.Draws)
	}
	out[0] = out[0][:1]
	if _, err := Assemble(5, cfg, out); err == nil {
		t.Fatal("short draw column accepted")
	}
}

// TestRunDrawsBadRange: negative or inverted ranges are rejected.
func TestRunDrawsBadRange(t *testing.T) {
	if _, err := RunDraws(context.Background(), 5, Config{Draws: 2}, 50, 2, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := RunDraws(context.Background(), 99, Config{Draws: 2}, 50, 0, 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
