// Sharding API: the experiment engine's campaigns decompose into
// independent (point, draw) items whose values are pure functions of
// (Config.Seed, figure, point, draw) — the per-draw RNG streams of
// gen.DeriveRNG. This file exposes that decomposition so a distributed
// runner (internal/fabric) can compute disjoint draw ranges in separate
// processes and merge them back byte-identically: FigurePlan names the
// item grid, RunDraws computes one contiguous range of it, and Assemble
// performs the same deterministic reduction a local run ends with.
package experiments

import (
	"context"
	"fmt"

	"microfab/internal/gen"
)

// Plan is the shardable shape of one figure's campaign: the thinned x-axis
// grid and the number of draws per point. The item space is the cross
// product Xs × [0, Draws); any partition of it into (point, draw-range)
// chunks reassembles into the same Result.
type Plan struct {
	Figure int   `json:"figure"`
	Xs     []int `json:"xs"`
	Draws  int   `json:"draws"`
}

// FigurePlan returns the item grid of figure num under cfg.
func FigurePlan(num int, cfg Config) (Plan, error) {
	c, err := figureCampaign(num, cfg)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Figure: num,
		Xs:     append([]int(nil), cfg.thin(c.xs)...),
		Draws:  cfg.draws(c.paperDraws),
	}, nil
}

// RunDraws computes draws [d0, d1) of the point at x-axis value x of
// figure num. Each draw derives its private RNG streams from
// (cfg.Seed, figure, x, d) exactly as the local engine does, so the
// returned values are independent of which process (or worker, or chunk
// split) computes them. The one scratch worker state is shared across the
// range, like one local pool goroutine would.
func RunDraws(ctx context.Context, num int, cfg Config, x, d0, d1 int) ([]DrawResult, error) {
	if d0 < 0 || d1 < d0 {
		return nil, fmt.Errorf("experiments: bad draw range [%d, %d)", d0, d1)
	}
	c, err := figureCampaign(num, cfg)
	if err != nil {
		return nil, err
	}
	figKey := gen.StringSeed(c.id)
	w := &worker{}
	out := make([]DrawResult, 0, d1-d0)
	for d := d0; d < d1; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sub := gen.SubSeed(cfg.seed(), figKey, int64(x), int64(d))
		vals, ok, err := c.run(ctx, x, sub, w)
		if err != nil {
			return nil, fmt.Errorf("%s: x=%d draw=%d: %w", c.id, x, d, err)
		}
		out = append(out, DrawResult{Values: vals, OK: ok})
	}
	return out, nil
}

// Assemble reduces a fully-populated outcome matrix — out[xi][d] holds the
// draw d of point Plan.Xs[xi] — into the figure Result, running the exact
// reduction a local campaign ends with. A matrix whose dimensions disagree
// with the figure's plan under cfg is rejected (a merge hole would
// otherwise silently drop draws).
func Assemble(num int, cfg Config, out [][]DrawResult) (*Result, error) {
	c, err := figureCampaign(num, cfg)
	if err != nil {
		return nil, err
	}
	xs := cfg.thin(c.xs)
	draws := cfg.draws(c.paperDraws)
	if len(out) != len(xs) {
		return nil, fmt.Errorf("experiments: assemble: %d points, plan has %d", len(out), len(xs))
	}
	for xi := range out {
		if len(out[xi]) != draws {
			return nil, fmt.Errorf("experiments: assemble: point %d has %d draws, plan has %d", xi, len(out[xi]), draws)
		}
	}
	return c.reduce(cfg, xs, out), nil
}
