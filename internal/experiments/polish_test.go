package experiments

import (
	"reflect"
	"testing"
)

// TestPolishedParallelMatchesSequential extends the determinism contract
// to polished campaigns: with a post-pass enabled, Workers=1 and
// Workers=8 must still produce byte-identical figures, because every
// (draw, series) pair derives its own polish RNG stream.
func TestPolishedParallelMatchesSequential(t *testing.T) {
	for _, strategy := range []string{"ls", "anneal"} {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			base := Config{Draws: 3, Thin: 4, Seed: 23, Polish: strategy, PolishBudget: 300}
			seq := base
			seq.Workers = 1
			par := base
			par.Workers = 8

			a, err := Fig6(seq)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Fig6(par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("polished Workers=1 and Workers=8 diverge:\n%s\nvs\n%s", Render(a), Render(b))
			}
		})
	}
}

// TestPolishNeverWorsensCampaign compares a polished campaign against the
// plain one, point by point and series by series: the post-pass only
// accepts improving moves (or returns the best-ever mapping), so every
// polished mean period must be <= the unpolished one.
func TestPolishNeverWorsensCampaign(t *testing.T) {
	base := Config{Draws: 3, Thin: 4, Seed: 41, Workers: 4}
	plain, err := Fig8(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{"ls", "anneal"} {
		polished := base
		polished.Polish = strategy
		polished.PolishBudget = 500
		got, err := Fig8(polished)
		if err != nil {
			t.Fatal(err)
		}
		improvedSomewhere := false
		for pi, pt := range got.Points {
			ref := plain.Points[pi]
			for _, name := range got.SeriesOrder {
				p, r := pt.Series[name], ref.Series[name]
				if p.N != r.N {
					t.Fatalf("%s: point %d series %s: %d draws vs %d", strategy, pt.X, name, p.N, r.N)
				}
				if p.Mean > r.Mean*(1+1e-12) {
					t.Fatalf("%s: point %d series %s: polished mean %v worse than plain %v",
						strategy, pt.X, name, p.Mean, r.Mean)
				}
				if p.Mean < r.Mean*(1-1e-9) {
					improvedSomewhere = true
				}
			}
		}
		if !improvedSomewhere {
			t.Fatalf("%s: polish changed nothing across the whole campaign (suspicious: H1 seeds are far from local optima)", strategy)
		}
	}
}

// TestPolishUnknownStrategy: a bad Config.Polish fails the campaign with
// a descriptive error instead of silently skipping the pass.
func TestPolishUnknownStrategy(t *testing.T) {
	_, err := Fig6(Config{Draws: 1, Thin: 10, Seed: 1, Polish: "tabu"})
	if err == nil {
		t.Fatal("unknown polish strategy accepted")
	}
}
