// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each FigN function reproduces one plot: it draws random
// campaigns with the paper's parameters, runs the heuristics (and, where
// the paper does, the exact MIP or the optimal one-to-one solver), and
// returns the series of mean periods the paper charts.
//
// The paper's campaigns average 30 random draws per point (100 for
// Figure 9); Config.Draws scales this down for quick runs.
//
// Campaigns execute on a worker pool: every (point, draw) pair is an
// independent work item fanned out across Config.Workers goroutines. Each
// worker owns a scratch state (one incremental core.Evaluator, rebuilt per
// instance and reset per mapping), so finished mappings are priced through
// the incremental engine instead of fresh from-scratch evaluations.
// Determinism is preserved by construction — each item derives a private
// RNG stream from (Config.Seed, figure, point, draw) via gen.DeriveRNG,
// and the reduction walks items in sequential order — so Workers=1 and
// Workers=N produce byte-identical results for the same Config.Seed.
// One caveat: the MIP figures (10..12) bound their exact solves by
// wall-clock time as well as node count, and a deadline that fires at a
// different node under CPU contention can flip a draw between proven and
// dropped. For byte-identical MIP campaigns set MIPMaxNodes low enough
// (or MIPTimeLimit high enough) that the node budget binds first.
//
// With Config.Polish set, every heuristic mapping is refined by a bounded
// local-search post-pass (internal/search) before pricing: the series then
// chart the polished periods. Each (draw, series) pair derives its own
// polish RNG stream, so polished campaigns keep the byte-identical
// determinism contract for any worker count.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/milp"
	"microfab/internal/oto"
	"microfab/internal/platform"
	"microfab/internal/search"
	"microfab/internal/stats"
)

// Config scales a campaign.
type Config struct {
	// Draws is the number of random instances per point (0 = the paper's
	// count for that figure).
	Draws int
	// Seed drives all random draws (0 = 1).
	Seed int64
	// Thin keeps every k-th x-axis point (0 or 1 = all points).
	Thin int
	// MIPTimeLimit bounds each exact solve (0 = 10s).
	MIPTimeLimit time.Duration
	// MIPMaxNodes bounds each exact solve's search (0 = 100000). Unlike
	// the wall-clock limit, a binding node budget is deterministic for a
	// sequential solve; with ExactWorkers > 1 a *binding* node budget may
	// stop the DFS burst at a different incumbent per run (proven bursts
	// stay byte-identical for any worker count).
	MIPMaxNodes int
	// ExactWorkers is the worker count of each draw's exact DFS burst
	// (0 or 1 = sequential). The campaign already fans draws out over
	// Workers goroutines, so raising this mainly helps campaigns whose
	// draw count is small next to the CPU count — exact campaigns pushing
	// single large instances past the paper's n <= 15 regime.
	ExactWorkers int
	// ExactNoRelax disables the exact DFS burst's relaxation bound tiers
	// (exact.Options.DisableAssignBound + DisableLPBound), reproducing
	// pre-relaxation campaigns. Proven bursts are byte-identical either
	// way; a binding node budget may stop an unproven burst at a
	// different incumbent, exactly as ExactWorkers already warns.
	ExactNoRelax bool
	// ExactNoIncBound forces the exact burst's per-node bound onto the
	// from-scratch recomputation instead of the delta-maintained cache
	// (exact.Options.DisableIncrementalBound). The two paths compute
	// bit-identical bounds, so any campaign — proven or budget-stopped —
	// is byte-identical either way; the flag exists for ablation timings
	// and cross-checks.
	ExactNoIncBound bool
	// Workers is the number of goroutines computing draws concurrently
	// (0 = runtime.GOMAXPROCS(0); 1 = sequential). Any value yields the
	// same series for the same Seed, except when a wall-clock solver
	// budget binds on the MIP figures (see the package comment).
	Workers int
	// Polish selects a local-search post-pass applied to every heuristic
	// mapping before pricing: "" = none, "ls" = first-improvement hill
	// climbing, "anneal" = simulated annealing (see internal/search). The
	// MIP figures feed the polished incumbent to the exact solvers as a
	// stronger warm start.
	Polish string
	// PolishBudget bounds each post-pass — probes for "ls", proposals for
	// "anneal" (0 = the search package's campaign default).
	PolishBudget int
	// Progress, when non-nil, is called after every completed draw with
	// the number of draws finished so far and the campaign total. Calls
	// are serialized across workers; keep the callback fast.
	Progress func(done, total int)
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) draws(paper int) int {
	if c.Draws > 0 {
		return c.Draws
	}
	return paper
}

func (c Config) thin(xs []int) []int {
	if c.Thin <= 1 {
		return xs
	}
	var out []int
	for i := 0; i < len(xs); i += c.Thin {
		out = append(out, xs[i])
	}
	return out
}

func (c Config) mipTime() time.Duration {
	if c.MIPTimeLimit > 0 {
		return c.MIPTimeLimit
	}
	return 10 * time.Second
}

func (c Config) mipNodes() int {
	if c.MIPMaxNodes > 0 {
		return c.MIPMaxNodes
	}
	return 100000
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// polishMapping runs the configured post-pass on one heuristic mapping.
// k indexes the series within its draw, so every (draw, series) pair owns
// a private RNG stream and polished campaigns stay deterministic for any
// worker count. The result is never worse than the input mapping.
func (c Config) polishMapping(in *core.Instance, mp *core.Mapping, sub int64, k int) (*core.Mapping, error) {
	if c.Polish == "" {
		return mp, nil
	}
	res, err := search.Polish(in, mp, c.Polish, core.Specialized, gen.DeriveRNG(sub, streamPolish, int64(k)), c.PolishBudget)
	if err != nil {
		return nil, fmt.Errorf("polish %q: %w", c.Polish, err)
	}
	return res.Mapping, nil
}

// Point is one x-axis position of a figure.
type Point struct {
	X int
	// Series maps a series name (heuristic, "MIP", "OtO") to the summary
	// of its periods (or ratios, for Figure 11) over the draws.
	Series map[string]stats.Summary
	// Solved counts exact solves that proved optimality at this point
	// (MIP figures only).
	Solved int
}

// Result is one regenerated figure.
type Result struct {
	ID, Title   string
	XLabel      string
	YLabel      string
	SeriesOrder []string
	Points      []Point
	Draws       int
	Seed        int64
	// Normalized marks per-draw ratio series (Figure 11) rather than raw
	// periods.
	Normalized bool
}

// Per-draw stream indices: every consumer of randomness inside one draw
// derives its own child stream from the draw's sub-seed, so adding a
// consumer never perturbs the others.
const (
	streamInstance  int64 = 0
	streamHeuristic int64 = 999
	streamPolish    int64 = 1999
)

// worker is the per-goroutine scratch state of a campaign: one incremental
// evaluator plus the instance's pricing order, rebuilt when the instance
// changes and reset per mapping, so a draw prices its (often many)
// finished mappings without re-allocating the evaluation state or
// re-walking matrices from scratch.
type worker struct {
	in    *core.Instance
	ev    *core.Evaluator
	order []app.TaskID // cached ReverseTopological of w.in
}

// evaluatorFor returns the worker's evaluator bound to in, reset to the
// all-unassigned state.
func (w *worker) evaluatorFor(in *core.Instance) *core.Evaluator {
	if w.in != in {
		w.in = in
		w.ev = core.NewEvaluator(in)
		w.order = in.App.ReverseTopological()
	} else {
		w.ev.Reset()
	}
	return w.ev
}

// price evaluates a complete mapping through the worker's incremental
// evaluator (the campaign replacement for fresh core.PeriodE calls).
func (w *worker) price(in *core.Instance, mp *core.Mapping) (float64, error) {
	if mp.Len() != in.N() {
		return 0, fmt.Errorf("experiments: mapping covers %d tasks, instance has %d", mp.Len(), in.N())
	}
	ev := w.evaluatorFor(in)
	for _, i := range w.order {
		u := mp.Machine(i)
		if u == platform.NoMachine {
			return 0, fmt.Errorf("experiments: task T%d unassigned: %w", int(i)+1, core.ErrIncompleteMapping)
		}
		if err := ev.Assign(i, u); err != nil {
			return 0, err
		}
	}
	return ev.Period(), nil
}

// campaign describes one figure: its metadata, x-axis grid, and the
// function computing every series value of a single draw.
type campaign struct {
	id, title, xlabel, ylabel string
	// order lists the series a draw emits, in render order.
	order      []string
	paperDraws int
	xs         []int
	normalized bool
	// countSolved makes the reduction tally kept draws into Point.Solved
	// (MIP figures).
	countSolved bool
	// run computes one draw at x-axis value x. sub seeds the draw's
	// private random streams (derive children with gen.DeriveRNG /
	// gen.SubSeed, never share an RNG across draws); w is the executing
	// worker's scratch state. ok=false drops the draw (exact budget
	// exhausted), mirroring the paper's rule.
	run func(ctx context.Context, x int, sub int64, w *worker) (map[string]float64, bool, error)
}

// DrawResult is the outcome of one (point, draw) work item — the unit of
// work a distributed campaign ships across the solve fabric. Values maps
// each series the draw emits to its value; OK=false drops the draw from
// the reduction (exact budget exhausted), mirroring the paper's rule.
// Both fields survive a JSON round trip bit-exactly (finite float64s
// re-parse to the same bits), which is what lets a remotely-computed draw
// merge byte-identically with locally-computed ones.
type DrawResult struct {
	Values map[string]float64 `json:"values,omitempty"`
	OK     bool               `json:"ok"`
}

// runCampaign is the concurrent engine shared by every figure. It fans the
// campaign's (point, draw) items out over cfg.Workers goroutines (each
// owning one scratch worker state), cancels the fleet on the first error
// or parent-context cancellation, and reduces the per-draw outputs in
// deterministic sequential order.
func runCampaign(ctx context.Context, cfg Config, c campaign) (*Result, error) {
	draws := cfg.draws(c.paperDraws)
	xs := cfg.thin(c.xs)
	figKey := gen.StringSeed(c.id)
	total := len(xs) * draws

	out := make([][]DrawResult, len(xs))
	for i := range out {
		out[i] = make([]DrawResult, draws)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type item struct{ xi, x, d int }
	jobs := make(chan item)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	workers := cfg.workers()
	if workers > total {
		workers = total
	}
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &worker{}
			for it := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain remaining items
				}
				sub := gen.SubSeed(cfg.seed(), figKey, int64(it.x), int64(it.d))
				vals, ok, err := c.run(ctx, it.x, sub, w)
				if err != nil {
					fail(fmt.Errorf("%s: x=%d draw=%d: %w", c.id, it.x, it.d, err))
					continue
				}
				mu.Lock()
				out[it.xi][it.d] = DrawResult{Values: vals, OK: ok}
				done++
				if cfg.Progress != nil {
					cfg.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for xi, x := range xs {
		for d := 0; d < draws; d++ {
			select {
			case jobs <- item{xi, x, d}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", c.id, err)
	}
	return c.reduce(cfg, xs, out), nil
}

// reduce folds a fully-populated (point, draw) outcome matrix into the
// figure Result, walking items in (point, draw) order — identical to what
// a sequential run appends, whatever order (or process) the items were
// computed in. It is the one reduction shared by the in-process engine and
// the distributed fabric's merge (Assemble), which is what makes a
// distributed campaign byte-identical to a local one.
func (c campaign) reduce(cfg Config, xs []int, out [][]DrawResult) *Result {
	res := &Result{
		ID: c.id, Title: c.title, XLabel: c.xlabel, YLabel: c.ylabel,
		SeriesOrder: c.order, Draws: cfg.draws(c.paperDraws), Seed: cfg.seed(),
		Normalized: c.normalized,
	}
	for xi, x := range xs {
		pt := Point{X: x, Series: map[string]stats.Summary{}}
		samples := map[string][]float64{}
		for d := 0; d < res.Draws; d++ {
			o := out[xi][d]
			if !o.OK {
				continue
			}
			if c.countSolved {
				pt.Solved++
			}
			for _, name := range c.order {
				if v, present := o.Values[name]; present {
					samples[name] = append(samples[name], v)
				}
			}
		}
		for _, name := range c.order {
			pt.Series[name] = stats.Summarize(samples[name])
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// runHeuristic names a heuristic and produces its mapping on an instance.
func runHeuristic(name string, in *core.Instance, seed int64) (*core.Mapping, error) {
	h, err := heuristics.Get(name)
	if err != nil {
		return nil, err
	}
	return h.Fn(in, gen.RNG(seed), heuristics.Options{})
}

// sweepCampaign builds a heuristic-only campaign over x-axis values.
func sweepCampaign(cfg Config, id, title, xlabel string, xs []int, names []string, paperDraws int,
	draw func(x int, rng *rand.Rand) (*core.Instance, error)) campaign {
	return campaign{
		id: id, title: title, xlabel: xlabel, ylabel: "period (ms)",
		order: names, paperDraws: paperDraws, xs: xs,
		run: func(_ context.Context, x int, sub int64, w *worker) (map[string]float64, bool, error) {
			in, err := draw(x, gen.DeriveRNG(sub, streamInstance))
			if err != nil {
				return nil, false, err
			}
			vals := make(map[string]float64, len(names))
			for k, name := range names {
				mp, err := runHeuristic(name, in, gen.SubSeed(sub, streamHeuristic))
				if err != nil {
					return nil, false, fmt.Errorf("%s: %w", name, err)
				}
				if mp, err = cfg.polishMapping(in, mp, sub, k); err != nil {
					return nil, false, fmt.Errorf("%s: %w", name, err)
				}
				p, err := w.price(in, mp)
				if err != nil {
					return nil, false, fmt.Errorf("%s: %w", name, err)
				}
				vals[name] = p
			}
			return vals, true, nil
		},
	}
}

func rangeInts(lo, hi, step int) []int {
	var out []int
	for x := lo; x <= hi; x += step {
		out = append(out, x)
	}
	return out
}

// fig5Campaign — specialized mappings, m=50 machines, p=5 types,
// n=50..150 tasks; all six heuristics. Paper finding: H1 and H4f are far
// behind the rest.
func fig5Campaign(cfg Config) campaign {
	return sweepCampaign(cfg, "fig5", "Specialized mappings, m=50, p=5", "number of tasks",
		rangeInts(50, 150, 10),
		[]string{"H1", "H2", "H3", "H4", "H4w", "H4f"}, 30,
		func(n int, rng *rand.Rand) (*core.Instance, error) {
			return gen.Chain(gen.Default(n, 5, 50), rng)
		})
}

// fig6Campaign — specialized mappings, m=10, p=2, n=10..100; H2, H3, H4,
// H4w. Paper finding: H4 sits slightly under the others (its f factor).
func fig6Campaign(cfg Config) campaign {
	return sweepCampaign(cfg, "fig6", "Specialized mappings, m=10, p=2", "number of tasks",
		rangeInts(10, 100, 10),
		[]string{"H2", "H3", "H4", "H4w"}, 30,
		func(n int, rng *rand.Rand) (*core.Instance, error) {
			return gen.Chain(gen.Default(n, 2, 10), rng)
		})
}

// fig7Campaign — specialized mappings on a large platform, m=100, p=5,
// n=100..200; H2, H3, H4w. Paper finding: H4w is the best.
func fig7Campaign(cfg Config) campaign {
	return sweepCampaign(cfg, "fig7", "Specialized mappings, m=100, p=5", "number of tasks",
		rangeInts(100, 200, 10),
		[]string{"H2", "H3", "H4w"}, 30,
		func(n int, rng *rand.Rand) (*core.Instance, error) {
			return gen.Chain(gen.Default(n, 5, 100), rng)
		})
}

// fig8Campaign — high-failure campaign: m=10, p=5, f in [0, 0.1],
// n=10..100, all heuristics. Paper finding: periods blow up with n and
// only H2 resists.
func fig8Campaign(cfg Config) campaign {
	return sweepCampaign(cfg, "fig8", "High failure rates (f <= 10%), m=10, p=5", "number of tasks",
		rangeInts(10, 100, 10),
		[]string{"H1", "H2", "H3", "H4", "H4w", "H4f"}, 30,
		func(n int, rng *rand.Rand) (*core.Instance, error) {
			pr := gen.Default(n, 5, 10)
			pr.FMin, pr.FMax = 0, 0.1
			return gen.Chain(pr, rng)
		})
}

// fig9Campaign — one-to-one regime: m=100 machines, n=100 tasks, task-only
// failures (f[i][u] = f[i]); the x axis is the number of types
// p = 20..100. Series: H2, H3, H4w and the optimal one-to-one mapping
// (bottleneck assignment; "OtO"). Paper findings: H4w is closest to
// optimal (factor ~1.28 on average) and all heuristics converge as p → m.
func fig9Campaign(cfg Config) campaign {
	names := []string{"H2", "H3", "H4w"}
	return campaign{
		id: "fig9", title: "One-to-one regime, m=100, n=100, f[i][u]=f[i]",
		xlabel: "number of types", ylabel: "period (ms)",
		order:      append(append([]string{}, names...), "OtO"),
		paperDraws: 100, xs: rangeInts(20, 100, 10),
		run: func(_ context.Context, p int, sub int64, w *worker) (map[string]float64, bool, error) {
			pr := gen.Default(100, p, 100)
			pr.TaskOnlyFailures = true
			in, err := gen.Chain(pr, gen.DeriveRNG(sub, streamInstance))
			if err != nil {
				return nil, false, err
			}
			vals := make(map[string]float64, len(names)+1)
			for k, name := range names {
				mp, err := runHeuristic(name, in, gen.SubSeed(sub, streamHeuristic))
				if err != nil {
					return nil, false, err
				}
				if mp, err = cfg.polishMapping(in, mp, sub, k); err != nil {
					return nil, false, err
				}
				v, err := w.price(in, mp)
				if err != nil {
					return nil, false, err
				}
				vals[name] = v
			}
			mp, err := oto.OptimalTaskOnly(in)
			if err != nil {
				return nil, false, err
			}
			otoPeriod, err := w.price(in, mp)
			if err != nil {
				return nil, false, err
			}
			vals["OtO"] = otoPeriod
			return vals, true, nil
		},
	}
}

// mipCampaign shares the Figure 10/11/12 logic: heuristics plus the exact
// MIP (warm-started with the best heuristic mapping — the best polished
// one when Config.Polish is set). When normalize is true the series hold
// per-draw heuristic/MIP period ratios (Figure 11); otherwise raw periods.
// Draws where the MIP fails to prove optimality within its budget are
// dropped, mirroring the paper's "results reported only if enough
// successful MIP runs" rule; Point.Solved counts successes.
func mipCampaign(cfg Config, id, title string, xs []int, m, p int, names []string, normalize bool) campaign {
	ylabel := "period (ms)"
	if normalize {
		ylabel = "period / MIP period"
	}
	order := append(append([]string{}, names...), "MIP")
	if normalize {
		order = names
	}
	return campaign{
		id: id, title: title, xlabel: "number of tasks", ylabel: ylabel,
		order: order, paperDraws: 30, xs: xs,
		normalized: normalize, countSolved: true,
		run: func(_ context.Context, n int, sub int64, w *worker) (map[string]float64, bool, error) {
			in, err := gen.Chain(gen.Default(n, p, m), gen.DeriveRNG(sub, streamInstance))
			if err != nil {
				return nil, false, err
			}
			periods := map[string]float64{}
			var warm *core.Mapping
			warmPeriod := math.Inf(1)
			for k, name := range names {
				h, err := heuristics.Get(name)
				if err != nil {
					return nil, false, err
				}
				mp, err := h.Fn(in, gen.DeriveRNG(sub, streamHeuristic), heuristics.Options{})
				if err != nil {
					return nil, false, err
				}
				if mp, err = cfg.polishMapping(in, mp, sub, k); err != nil {
					return nil, false, err
				}
				v, err := w.price(in, mp)
				if err != nil {
					return nil, false, err
				}
				periods[name] = v
				if v < warmPeriod {
					warmPeriod = v
					warm = mp
				}
			}
			// Strengthen the incumbent with a short DFS burst (the
			// independent exact solver); a near-optimal warm start lets
			// the branch and bound spend its budget proving the bound
			// instead of hunting for solutions. The burst is node-bounded
			// so a binding budget stays deterministic.
			if eres, err := exact.Solve(in, exact.Options{
				Rule:                    core.Specialized,
				Incumbent:               warm,
				MaxNodes:                int64(cfg.mipNodes()),
				TimeLimit:               cfg.mipTime() / 5,
				Workers:                 cfg.ExactWorkers,
				DisableAssignBound:      cfg.ExactNoRelax,
				DisableLPBound:          cfg.ExactNoRelax,
				DisableIncrementalBound: cfg.ExactNoIncBound,
			}); err == nil && eres.Period < warmPeriod {
				warm, warmPeriod = eres.Mapping, eres.Period
			}
			mres, err := milp.Solve(in, milp.Options{
				Rule:      core.Specialized,
				WarmStart: warm,
				TimeLimit: cfg.mipTime(),
				MaxNodes:  cfg.mipNodes(),
			})
			if err != nil {
				return nil, false, err
			}
			if !mres.Proven || mres.Mapping == nil {
				return nil, false, nil // budget exceeded: the paper drops such draws too
			}
			vals := make(map[string]float64, len(names)+1)
			for _, name := range names {
				v := periods[name]
				if normalize {
					v /= mres.Period
				}
				vals[name] = v
			}
			if !normalize {
				vals["MIP"] = mres.Period
			}
			return vals, true, nil
		},
	}
}

// Fig5 reproduces Figure 5; see fig5Campaign.
func Fig5(cfg Config) (*Result, error) {
	return runCampaign(context.Background(), cfg, fig5Campaign(cfg))
}

// Fig6 reproduces Figure 6; see fig6Campaign.
func Fig6(cfg Config) (*Result, error) {
	return runCampaign(context.Background(), cfg, fig6Campaign(cfg))
}

// Fig7 reproduces Figure 7; see fig7Campaign.
func Fig7(cfg Config) (*Result, error) {
	return runCampaign(context.Background(), cfg, fig7Campaign(cfg))
}

// Fig8 reproduces Figure 8; see fig8Campaign.
func Fig8(cfg Config) (*Result, error) {
	return runCampaign(context.Background(), cfg, fig8Campaign(cfg))
}

// Fig9 reproduces Figure 9; see fig9Campaign.
func Fig9(cfg Config) (*Result, error) {
	return runCampaign(context.Background(), cfg, fig9Campaign(cfg))
}

// fig10Campaign — small instances, m=5 machines, p=2 types, n=2..15 tasks,
// all six heuristics against the exact MIP optimum. Paper finding: H4w is
// again the best heuristic; H2 and H4 are close.
func fig10Campaign(cfg Config) campaign {
	return mipCampaign(cfg, "fig10", "Heuristics vs MIP, m=5, p=2",
		rangeInts(2, 15, 1), 5, 2,
		[]string{"H1", "H2", "H3", "H4", "H4w", "H4f"}, false)
}

// fig11Campaign — the Figure 10 campaign normalized per draw by the MIP
// optimum. Paper finding: H2, H3 and H4w end up at average factors of
// roughly 1.73, 1.58 and 1.33 from the optimal.
func fig11Campaign(cfg Config) campaign {
	return mipCampaign(cfg, "fig11", "Normalization against the MIP, m=5, p=2",
		rangeInts(2, 15, 1), 5, 2,
		[]string{"H1", "H2", "H3", "H4", "H4w", "H4f"}, true)
}

// fig12Campaign — larger exact campaign, m=9, p=4, n=5..20; H2, H3, H4,
// H4w vs MIP. Paper finding: past ~15 tasks the MIP stops finding
// (proving) solutions — visible here as Solved dropping to 0 under the
// node/time budgets.
func fig12Campaign(cfg Config) campaign {
	return mipCampaign(cfg, "fig12", "Heuristics vs MIP, m=9, p=4",
		rangeInts(5, 20, 1), 9, 4,
		[]string{"H2", "H3", "H4", "H4w"}, false)
}

// Fig10 reproduces Figure 10; see fig10Campaign.
func Fig10(cfg Config) (*Result, error) {
	return runCampaign(context.Background(), cfg, fig10Campaign(cfg))
}

// Fig11 reproduces Figure 11; see fig11Campaign.
func Fig11(cfg Config) (*Result, error) {
	return runCampaign(context.Background(), cfg, fig11Campaign(cfg))
}

// Fig12 reproduces Figure 12; see fig12Campaign.
func Fig12(cfg Config) (*Result, error) {
	return runCampaign(context.Background(), cfg, fig12Campaign(cfg))
}

// figureCampaign maps a figure number to its campaign description.
func figureCampaign(num int, cfg Config) (campaign, error) {
	switch num {
	case 5:
		return fig5Campaign(cfg), nil
	case 6:
		return fig6Campaign(cfg), nil
	case 7:
		return fig7Campaign(cfg), nil
	case 8:
		return fig8Campaign(cfg), nil
	case 9:
		return fig9Campaign(cfg), nil
	case 10:
		return fig10Campaign(cfg), nil
	case 11:
		return fig11Campaign(cfg), nil
	case 12:
		return fig12Campaign(cfg), nil
	}
	return campaign{}, fmt.Errorf("experiments: no figure %d (have 5..12)", num)
}

// Figure runs one figure by number (5..12).
func Figure(num int, cfg Config) (*Result, error) {
	return FigureCtx(context.Background(), num, cfg)
}

// FigureCtx is Figure with cancellation: the campaign stops at the next
// draw boundary once ctx is done and returns the context's error.
func FigureCtx(ctx context.Context, num int, cfg Config) (*Result, error) {
	c, err := figureCampaign(num, cfg)
	if err != nil {
		return nil, err
	}
	return runCampaign(ctx, cfg, c)
}

// Numbers lists the reproducible figures.
func Numbers() []int { return []int{5, 6, 7, 8, 9, 10, 11, 12} }
