// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each FigN function reproduces one plot: it draws random
// campaigns with the paper's parameters, runs the heuristics (and, where
// the paper does, the exact MIP or the optimal one-to-one solver), and
// returns the series of mean periods the paper charts.
//
// The paper's campaigns average 30 random draws per point (100 for
// Figure 9); Config.Draws scales this down for quick runs. Everything is
// deterministic given Config.Seed.
package experiments

import (
	"fmt"
	"math"
	"time"

	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/milp"
	"microfab/internal/oto"
	"microfab/internal/stats"
)

// Config scales a campaign.
type Config struct {
	// Draws is the number of random instances per point (0 = the paper's
	// count for that figure).
	Draws int
	// Seed drives all random draws (0 = 1).
	Seed int64
	// Thin keeps every k-th x-axis point (0 or 1 = all points).
	Thin int
	// MIPTimeLimit bounds each exact solve (0 = 10s).
	MIPTimeLimit time.Duration
	// MIPMaxNodes bounds each exact solve's search (0 = 100000).
	MIPMaxNodes int
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) draws(paper int) int {
	if c.Draws > 0 {
		return c.Draws
	}
	return paper
}

func (c Config) thin(xs []int) []int {
	if c.Thin <= 1 {
		return xs
	}
	var out []int
	for i := 0; i < len(xs); i += c.Thin {
		out = append(out, xs[i])
	}
	return out
}

func (c Config) mipTime() time.Duration {
	if c.MIPTimeLimit > 0 {
		return c.MIPTimeLimit
	}
	return 10 * time.Second
}

func (c Config) mipNodes() int {
	if c.MIPMaxNodes > 0 {
		return c.MIPMaxNodes
	}
	return 100000
}

// Point is one x-axis position of a figure.
type Point struct {
	X int
	// Series maps a series name (heuristic, "MIP", "OtO") to the summary
	// of its periods (or ratios, for Figure 11) over the draws.
	Series map[string]stats.Summary
	// Solved counts exact solves that proved optimality at this point
	// (MIP figures only).
	Solved int
}

// Result is one regenerated figure.
type Result struct {
	ID, Title   string
	XLabel      string
	YLabel      string
	SeriesOrder []string
	Points      []Point
	Draws       int
	Seed        int64
}

// runHeuristic names a heuristic and produces its period on an instance.
func runHeuristic(name string, in *core.Instance, seed int64) (float64, error) {
	h, err := heuristics.Get(name)
	if err != nil {
		return 0, err
	}
	mp, err := h.Fn(in, gen.RNG(seed), heuristics.Options{})
	if err != nil {
		return 0, err
	}
	return core.Period(in, mp), nil
}

// sweep runs a heuristic-only campaign over x-axis values.
func sweep(cfg Config, id, title, xlabel string, xs []int, names []string, paperDraws int,
	draw func(x int, rng int64) (*core.Instance, error)) (*Result, error) {
	res := &Result{
		ID: id, Title: title, XLabel: xlabel, YLabel: "period (ms)",
		SeriesOrder: names, Draws: cfg.draws(paperDraws), Seed: cfg.seed(),
	}
	for _, x := range cfg.thin(xs) {
		pt := Point{X: x, Series: map[string]stats.Summary{}}
		samples := map[string][]float64{}
		for d := 0; d < res.Draws; d++ {
			sub := gen.SubSeed(res.Seed, int64(x), int64(d))
			in, err := draw(x, sub)
			if err != nil {
				return nil, fmt.Errorf("%s: x=%d draw=%d: %w", id, x, d, err)
			}
			for _, name := range names {
				p, err := runHeuristic(name, in, gen.SubSeed(sub, 999))
				if err != nil {
					return nil, fmt.Errorf("%s: %s: %w", id, name, err)
				}
				samples[name] = append(samples[name], p)
			}
		}
		for _, name := range names {
			pt.Series[name] = stats.Summarize(samples[name])
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func rangeInts(lo, hi, step int) []int {
	var out []int
	for x := lo; x <= hi; x += step {
		out = append(out, x)
	}
	return out
}

// Fig5 — specialized mappings, m=50 machines, p=5 types, n=50..150 tasks;
// all six heuristics. Paper finding: H1 and H4f are far behind the rest.
func Fig5(cfg Config) (*Result, error) {
	return sweep(cfg, "fig5", "Specialized mappings, m=50, p=5", "number of tasks",
		rangeInts(50, 150, 10),
		[]string{"H1", "H2", "H3", "H4", "H4w", "H4f"}, 30,
		func(n int, seed int64) (*core.Instance, error) {
			return gen.Chain(gen.Default(n, 5, 50), gen.RNG(seed))
		})
}

// Fig6 — specialized mappings, m=10, p=2, n=10..100; H2, H3, H4, H4w.
// Paper finding: H4 sits slightly under the others (its f factor).
func Fig6(cfg Config) (*Result, error) {
	return sweep(cfg, "fig6", "Specialized mappings, m=10, p=2", "number of tasks",
		rangeInts(10, 100, 10),
		[]string{"H2", "H3", "H4", "H4w"}, 30,
		func(n int, seed int64) (*core.Instance, error) {
			return gen.Chain(gen.Default(n, 2, 10), gen.RNG(seed))
		})
}

// Fig7 — specialized mappings on a large platform, m=100, p=5, n=100..200;
// H2, H3, H4w. Paper finding: H4w is the best.
func Fig7(cfg Config) (*Result, error) {
	return sweep(cfg, "fig7", "Specialized mappings, m=100, p=5", "number of tasks",
		rangeInts(100, 200, 10),
		[]string{"H2", "H3", "H4w"}, 30,
		func(n int, seed int64) (*core.Instance, error) {
			return gen.Chain(gen.Default(n, 5, 100), gen.RNG(seed))
		})
}

// Fig8 — high-failure campaign: m=10, p=5, f in [0, 0.1], n=10..100, all
// heuristics. Paper finding: periods blow up with n and only H2 resists.
func Fig8(cfg Config) (*Result, error) {
	return sweep(cfg, "fig8", "High failure rates (f <= 10%), m=10, p=5", "number of tasks",
		rangeInts(10, 100, 10),
		[]string{"H1", "H2", "H3", "H4", "H4w", "H4f"}, 30,
		func(n int, seed int64) (*core.Instance, error) {
			pr := gen.Default(n, 5, 10)
			pr.FMin, pr.FMax = 0, 0.1
			return gen.Chain(pr, gen.RNG(seed))
		})
}

// Fig9 — one-to-one regime: m=100 machines, n=100 tasks, task-only
// failures (f[i][u] = f[i]); the x axis is the number of types
// p = 20..100. Series: H2, H3, H4w and the optimal one-to-one mapping
// (bottleneck assignment; "OtO"). Paper findings: H4w is closest to
// optimal (factor ~1.28 on average) and all heuristics converge as p → m.
func Fig9(cfg Config) (*Result, error) {
	names := []string{"H2", "H3", "H4w"}
	res := &Result{
		ID: "fig9", Title: "One-to-one regime, m=100, n=100, f[i][u]=f[i]",
		XLabel: "number of types", YLabel: "period (ms)",
		SeriesOrder: append(append([]string{}, names...), "OtO"),
		Draws:       cfg.draws(100), Seed: cfg.seed(),
	}
	for _, p := range cfg.thin(rangeInts(20, 100, 10)) {
		pt := Point{X: p, Series: map[string]stats.Summary{}}
		samples := map[string][]float64{}
		for d := 0; d < res.Draws; d++ {
			sub := gen.SubSeed(res.Seed, int64(p), int64(d))
			pr := gen.Default(100, p, 100)
			pr.TaskOnlyFailures = true
			in, err := gen.Chain(pr, gen.RNG(sub))
			if err != nil {
				return nil, err
			}
			for _, name := range names {
				v, err := runHeuristic(name, in, gen.SubSeed(sub, 999))
				if err != nil {
					return nil, err
				}
				samples[name] = append(samples[name], v)
			}
			mp, err := oto.OptimalTaskOnly(in)
			if err != nil {
				return nil, err
			}
			samples["OtO"] = append(samples["OtO"], core.Period(in, mp))
		}
		for _, name := range res.SeriesOrder {
			pt.Series[name] = stats.Summarize(samples[name])
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// mipSweep shares the Figure 10/11/12 logic: heuristics plus the exact MIP
// (warm-started with the best heuristic mapping). When normalize is true
// the series hold per-draw heuristic/MIP period ratios (Figure 11);
// otherwise raw periods. Draws where the MIP fails to prove optimality
// within its budget are dropped, mirroring the paper's "results reported
// only if enough successful MIP runs" rule; Point.Solved counts successes.
func mipSweep(cfg Config, id, title string, xs []int, m, p int, names []string, normalize bool) (*Result, error) {
	ylabel := "period (ms)"
	if normalize {
		ylabel = "period / MIP period"
	}
	order := append(append([]string{}, names...), "MIP")
	if normalize {
		order = names
	}
	res := &Result{
		ID: id, Title: title, XLabel: "number of tasks", YLabel: ylabel,
		SeriesOrder: order, Draws: cfg.draws(30), Seed: cfg.seed(),
	}
	for _, n := range cfg.thin(xs) {
		pt := Point{X: n, Series: map[string]stats.Summary{}}
		samples := map[string][]float64{}
		for d := 0; d < res.Draws; d++ {
			sub := gen.SubSeed(res.Seed, int64(n), int64(d))
			in, err := gen.Chain(gen.Default(n, p, m), gen.RNG(sub))
			if err != nil {
				return nil, err
			}
			periods := map[string]float64{}
			var warm *core.Mapping
			warmPeriod := math.Inf(1)
			for _, name := range names {
				h, err := heuristics.Get(name)
				if err != nil {
					return nil, err
				}
				mp, err := h.Fn(in, gen.RNG(gen.SubSeed(sub, 999)), heuristics.Options{})
				if err != nil {
					return nil, err
				}
				v := core.Period(in, mp)
				periods[name] = v
				if v < warmPeriod {
					warmPeriod = v
					warm = mp
				}
			}
			// Strengthen the incumbent with a short DFS burst (the
			// independent exact solver); a near-optimal warm start
			// lets the branch and bound spend its budget proving the
			// bound instead of hunting for solutions.
			if eres, err := exact.Solve(in, exact.Options{
				Rule:      core.Specialized,
				Incumbent: warm,
				TimeLimit: cfg.mipTime() / 5,
			}); err == nil && eres.Period < warmPeriod {
				warm, warmPeriod = eres.Mapping, eres.Period
			}
			mres, err := milp.Solve(in, milp.Options{
				Rule:      core.Specialized,
				WarmStart: warm,
				TimeLimit: cfg.mipTime(),
				MaxNodes:  cfg.mipNodes(),
			})
			if err != nil {
				return nil, fmt.Errorf("%s: n=%d draw=%d: %w", id, n, d, err)
			}
			if !mres.Proven || mres.Mapping == nil {
				continue // budget exceeded: the paper drops such draws too
			}
			pt.Solved++
			for _, name := range names {
				v := periods[name]
				if normalize {
					v /= mres.Period
				}
				samples[name] = append(samples[name], v)
			}
			if !normalize {
				samples["MIP"] = append(samples["MIP"], mres.Period)
			}
		}
		for _, name := range res.SeriesOrder {
			pt.Series[name] = stats.Summarize(samples[name])
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Fig10 — small instances, m=5 machines, p=2 types, n=2..15 tasks, all six
// heuristics against the exact MIP optimum. Paper finding: H4w is again
// the best heuristic; H2 and H4 are close.
func Fig10(cfg Config) (*Result, error) {
	return mipSweep(cfg, "fig10", "Heuristics vs MIP, m=5, p=2",
		rangeInts(2, 15, 1), 5, 2,
		[]string{"H1", "H2", "H3", "H4", "H4w", "H4f"}, false)
}

// Fig11 — the Figure 10 campaign normalized per draw by the MIP optimum.
// Paper finding: H2, H3 and H4w end up at average factors of roughly 1.73,
// 1.58 and 1.33 from the optimal.
func Fig11(cfg Config) (*Result, error) {
	return mipSweep(cfg, "fig11", "Normalization against the MIP, m=5, p=2",
		rangeInts(2, 15, 1), 5, 2,
		[]string{"H1", "H2", "H3", "H4", "H4w", "H4f"}, true)
}

// Fig12 — larger exact campaign, m=9, p=4, n=5..20; H2, H3, H4, H4w vs
// MIP. Paper finding: past ~15 tasks the MIP stops finding (proving)
// solutions — visible here as Solved dropping to 0 under the node/time
// budgets.
func Fig12(cfg Config) (*Result, error) {
	return mipSweep(cfg, "fig12", "Heuristics vs MIP, m=9, p=4",
		rangeInts(5, 20, 1), 9, 4,
		[]string{"H2", "H3", "H4", "H4w"}, false)
}

// Figure runs one figure by number (5..12).
func Figure(num int, cfg Config) (*Result, error) {
	switch num {
	case 5:
		return Fig5(cfg)
	case 6:
		return Fig6(cfg)
	case 7:
		return Fig7(cfg)
	case 8:
		return Fig8(cfg)
	case 9:
		return Fig9(cfg)
	case 10:
		return Fig10(cfg)
	case 11:
		return Fig11(cfg)
	case 12:
		return Fig12(cfg)
	}
	return nil, fmt.Errorf("experiments: no figure %d (have 5..12)", num)
}

// Numbers lists the reproducible figures.
func Numbers() []int { return []int{5, 6, 7, 8, 9, 10, 11, 12} }
