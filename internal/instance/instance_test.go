package instance

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
)

func TestRoundTripThroughJSON(t *testing.T) {
	in, err := gen.Chain(gen.Default(6, 2, 3), gen.RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FromInstance(in, "round trip").Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Comment != "round trip" {
		t.Fatalf("comment = %q", f.Comment)
	}
	back, err := f.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() || back.M() != in.M() || back.P() != in.P() {
		t.Fatalf("dims changed: %d/%d/%d", back.N(), back.M(), back.P())
	}
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		if back.App.Type(id) != in.App.Type(id) {
			t.Fatal("types changed")
		}
		if back.App.Successor(id) != in.App.Successor(id) {
			t.Fatal("deps changed")
		}
		for u := 0; u < in.M(); u++ {
			if back.Platform.Row(id)[u] != in.Platform.Row(id)[u] {
				t.Fatal("times changed")
			}
			if back.Failures.Row(id)[u] != in.Failures.Row(id)[u] {
				t.Fatal("failures changed")
			}
		}
	}
}

func TestInTreeRoundTrip(t *testing.T) {
	in, err := gen.InTree(gen.Default(9, 2, 3), 2, gen.RNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FromInstance(in, "").Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	if back.App.IsChain() {
		t.Fatal("in-tree flattened to a chain")
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	in, err := gen.Chain(gen.Default(4, 2, 3), gen.RNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, in, "disk"); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 {
		t.Fatalf("n = %d", back.N())
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

func TestBadFileRejectedAtToInstance(t *testing.T) {
	f := &File{
		Tasks:    []TaskJSON{{ID: 0, Type: 0}},
		Times:    [][]float64{{-5}}, // invalid time
		Failures: [][]float64{{0.1}},
	}
	if _, err := f.ToInstance(); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestMappingRoundTrip(t *testing.T) {
	m := core.NewMapping(3)
	m.Assign(0, 2)
	m.Assign(1, 0)
	m.Assign(2, 1)
	var buf bytes.Buffer
	if err := WriteMapping(&buf, m, "map"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != m.String() {
		t.Fatalf("mapping changed: %v vs %v", back, m)
	}
	if _, err := ReadMapping(strings.NewReader("[")); err == nil {
		t.Fatal("garbage mapping accepted")
	}
}

func TestMachineNamesSurvive(t *testing.T) {
	in, err := gen.Chain(gen.Default(3, 2, 2), gen.RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	in.Platform.SetName(0, "press")
	f := FromInstance(in, "")
	back, err := f.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	if back.Platform.Name(0) != "press" {
		t.Fatalf("name = %q", back.Platform.Name(0))
	}
}
