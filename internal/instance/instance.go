// Package instance provides a JSON interchange format for problem instances
// (application + platform + failure matrix), so that the CLI tools can read
// and write problems and mappings as files.
package instance

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/platform"
)

// TaskJSON is one task in the file format.
type TaskJSON struct {
	ID   int    `json:"id"`
	Type int    `json:"type"`
	Name string `json:"name,omitempty"`
}

// DepJSON is one precedence edge.
type DepJSON struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// File is the on-disk representation of an instance.
type File struct {
	// Comment is free text (provenance, generator seed, ...).
	Comment string     `json:"comment,omitempty"`
	Tasks   []TaskJSON `json:"tasks"`
	Deps    []DepJSON  `json:"deps"`
	// Times[i][u] is w[i][u] in ms.
	Times [][]float64 `json:"times"`
	// Failures[i][u] is f[i][u] in [0,1).
	Failures [][]float64 `json:"failures"`
	// MachineNames optionally labels machines.
	MachineNames []string `json:"machineNames,omitempty"`
}

// FromInstance converts a core.Instance into its file form.
func FromInstance(in *core.Instance, comment string) *File {
	n, m := in.N(), in.M()
	f := &File{Comment: comment}
	for i := 0; i < n; i++ {
		t := in.App.Task(app.TaskID(i))
		f.Tasks = append(f.Tasks, TaskJSON{ID: int(t.ID), Type: int(t.Type), Name: t.Name})
		if s := in.App.Successor(t.ID); s != app.NoTask {
			f.Deps = append(f.Deps, DepJSON{From: i, To: int(s)})
		}
	}
	f.Times = make([][]float64, n)
	f.Failures = make([][]float64, n)
	for i := 0; i < n; i++ {
		f.Times[i] = append([]float64(nil), in.Platform.Row(app.TaskID(i))...)
		f.Failures[i] = append([]float64(nil), in.Failures.Row(app.TaskID(i))...)
	}
	f.MachineNames = make([]string, m)
	for u := 0; u < m; u++ {
		f.MachineNames[u] = in.Platform.Name(platform.MachineID(u))
	}
	return f
}

// ToInstance validates the file and builds the core.Instance.
func (f *File) ToInstance() (*core.Instance, error) {
	tasks := make([]app.Task, len(f.Tasks))
	for i, t := range f.Tasks {
		tasks[i] = app.Task{ID: app.TaskID(t.ID), Type: app.TypeID(t.Type), Name: t.Name}
	}
	deps := make([]app.Dep, len(f.Deps))
	for i, d := range f.Deps {
		deps[i] = app.Dep{From: app.TaskID(d.From), To: app.TaskID(d.To)}
	}
	a, err := app.New(tasks, deps)
	if err != nil {
		return nil, err
	}
	p, err := platform.New(f.Times)
	if err != nil {
		return nil, err
	}
	for u, name := range f.MachineNames {
		if u < p.NumMachines() && name != "" {
			p.SetName(platform.MachineID(u), name)
		}
	}
	fm, err := failure.New(f.Failures)
	if err != nil {
		return nil, err
	}
	return core.NewInstance(a, p, fm)
}

// Write encodes the file as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read decodes a file from JSON.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("instance: decode: %w", err)
	}
	return &f, nil
}

// Load reads and validates an instance from a JSON file on disk.
func Load(path string) (*core.Instance, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	f, err := Read(fd)
	if err != nil {
		return nil, fmt.Errorf("instance: %s: %w", path, err)
	}
	return f.ToInstance()
}

// Save writes an instance to a JSON file on disk.
func Save(path string, in *core.Instance, comment string) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	return FromInstance(in, comment).Write(fd)
}

// MappingJSON serialises an allocation.
type MappingJSON struct {
	Comment string `json:"comment,omitempty"`
	// Assign[i] is the machine index of task i.
	Assign []int `json:"assign"`
}

// FromMapping converts a mapping to its file form.
func FromMapping(m *core.Mapping, comment string) *MappingJSON {
	mj := &MappingJSON{Comment: comment, Assign: make([]int, m.Len())}
	for i := 0; i < m.Len(); i++ {
		mj.Assign[i] = int(m.Machine(app.TaskID(i)))
	}
	return mj
}

// ToMapping rebuilds the core.Mapping.
func (mj *MappingJSON) ToMapping() *core.Mapping {
	m := core.NewMapping(len(mj.Assign))
	for i, u := range mj.Assign {
		m.Assign(app.TaskID(i), platform.MachineID(u))
	}
	return m
}

// WriteMapping encodes a mapping as indented JSON.
func WriteMapping(w io.Writer, m *core.Mapping, comment string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromMapping(m, comment))
}

// ReadMapping decodes a mapping from JSON.
func ReadMapping(r io.Reader) (*core.Mapping, error) {
	var mj MappingJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("instance: decode mapping: %w", err)
	}
	return mj.ToMapping(), nil
}
