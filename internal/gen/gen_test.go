package gen

import (
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
)

func TestChainReproducible(t *testing.T) {
	pr := Default(10, 3, 5)
	a, err := Chain(pr, RNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chain(pr, RNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		id := app.TaskID(i)
		if a.App.Type(id) != b.App.Type(id) {
			t.Fatal("types differ between equal seeds")
		}
		for u := 0; u < a.M(); u++ {
			if a.Platform.Row(id)[u] != b.Platform.Row(id)[u] {
				t.Fatal("times differ between equal seeds")
			}
			if a.Failures.Row(id)[u] != b.Failures.Row(id)[u] {
				t.Fatal("failures differ between equal seeds")
			}
		}
	}
	c, err := Chain(pr, RNG(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.N() && same; i++ {
		for u := 0; u < a.M(); u++ {
			if a.Platform.Row(app.TaskID(i))[u] != c.Platform.Row(app.TaskID(i))[u] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical platforms")
	}
}

func TestChainRespectsRanges(t *testing.T) {
	pr := Default(20, 4, 6)
	in, err := Chain(pr, RNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		for u := 0; u < in.M(); u++ {
			w := in.Platform.Row(id)[u]
			if w < pr.WMin || w > pr.WMax {
				t.Fatalf("w[%d][%d]=%v outside [%v,%v]", i, u, w, pr.WMin, pr.WMax)
			}
			f := in.Failures.Row(id)[u]
			if f < pr.FMin || f > pr.FMax {
				t.Fatalf("f[%d][%d]=%v outside [%v,%v]", i, u, f, pr.FMin, pr.FMax)
			}
		}
	}
}

func TestChainAllTypesPresent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in, err := Chain(Default(10, 5, 6), RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		for ty, c := range in.App.TypeCounts() {
			if c == 0 {
				t.Fatalf("seed %d: type %d absent", seed, ty)
			}
		}
	}
}

func TestChainTypedTimesHold(t *testing.T) {
	// core.NewInstance would reject typed-time violations, so success
	// implies the invariant; check explicitly anyway.
	in, err := Chain(Default(30, 3, 5), RNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Platform.CheckTypedTimes(in.App); err != nil {
		t.Fatal(err)
	}
}

func TestTaskOnlyFailures(t *testing.T) {
	pr := Default(8, 2, 4)
	pr.TaskOnlyFailures = true
	in, err := Chain(pr, RNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cls := in.Failures.Classify()
	if cls.String() != "task-only" && cls.String() != "uniform" {
		t.Fatalf("classify = %v", cls)
	}
}

func TestCyclicTypesLayout(t *testing.T) {
	pr := Default(6, 3, 4)
	pr.TypeAssignment = CyclicTypes
	in, err := Chain(pr, RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if int(in.App.Type(app.TaskID(i))) != i%3 {
			t.Fatalf("cyclic layout broken at %d", i)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 0, P: 1, M: 1, WMin: 1, WMax: 2},
		{N: 2, P: 3, M: 5, WMin: 1, WMax: 2},            // p > n
		{N: 5, P: 3, M: 2, WMin: 1, WMax: 2},            // p > m
		{N: 5, P: 2, M: 3, WMin: 0, WMax: 2},            // WMin 0
		{N: 5, P: 2, M: 3, WMin: 5, WMax: 2},            // reversed
		{N: 5, P: 2, M: 3, WMin: 1, WMax: 2, FMax: 1.0}, // f = 1
	}
	for k, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", k, pr)
		}
	}
	if err := Default(5, 2, 3).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInTree(t *testing.T) {
	in, err := InTree(Default(13, 3, 5), 3, RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if in.App.IsChain() {
		t.Fatal("in-tree came out as a chain")
	}
	if in.N() != 13 {
		t.Fatalf("n = %d, want 13", in.N())
	}
	if got := len(in.App.Sources()); got != 3 {
		t.Fatalf("%d sources, want 3", got)
	}
	if _, err := InTree(Default(13, 3, 5), 1, RNG(5)); err == nil {
		t.Fatal("single-branch in-tree accepted")
	}
	if _, err := InTree(Default(3, 2, 5), 3, RNG(5)); err == nil {
		t.Fatal("too-small in-tree accepted")
	}
}

func TestSubSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 100; i++ {
		s := SubSeed(1, i)
		if s < 0 {
			t.Fatalf("negative subseed %d", s)
		}
		if seen[s] {
			t.Fatalf("subseed collision at %d", i)
		}
		seen[s] = true
	}
	if SubSeed(1, 2, 3) == SubSeed(1, 3, 2) {
		t.Fatal("subseed ignores index order")
	}
}

func TestDeriveRNGMatchesSubSeed(t *testing.T) {
	a := DeriveRNG(7, 3, 11)
	b := RNG(SubSeed(7, 3, 11))
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("DeriveRNG diverges from RNG(SubSeed(...))")
		}
	}
	c := DeriveRNG(7, 3, 12)
	d := DeriveRNG(7, 3, 11)
	same := true
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("sibling streams are identical")
	}
}

func TestStringSeed(t *testing.T) {
	if StringSeed("fig5") != StringSeed("fig5") {
		t.Fatal("StringSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		s := StringSeed(id)
		if s < 0 {
			t.Fatalf("negative seed for %q", id)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("%q and %q collide", id, prev)
		}
		seen[s] = id
	}
}

func TestGeneratedInstanceIsSolvable(t *testing.T) {
	in, err := Chain(Default(12, 3, 5), RNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if in.P() > in.M() {
		t.Fatal("generator violated p <= m")
	}
	var _ = core.Rule(0) // the instance plugs into core solvers
}
