// Package gen generates random problem instances reproducing the paper's
// experimental campaigns (§7): linear chains of n tasks over p types mapped
// to m machines, with execution times w[i][u] drawn uniformly in
// [100,1000] ms and failure rates f[i][u] uniform in [0.5%, 2%] (or [0,10%]
// for the high-failure campaign of Figure 8).
//
// Generation is fully deterministic given a seed, so every experiment run is
// reproducible.
package gen

import (
	"fmt"
	"math/rand"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/platform"
)

// Params configures one random instance draw.
type Params struct {
	N int // number of tasks
	P int // number of task types (p <= n and p <= m required for feasibility)
	M int // number of machines

	// WMin, WMax bound the uniform execution-time draw in ms
	// (paper: 100..1000).
	WMin, WMax float64
	// FMin, FMax bound the uniform failure-rate draw
	// (paper: 0.005..0.02; Figure 8 uses 0..0.1).
	FMin, FMax float64

	// TaskOnlyFailures draws one rate per *task* and copies it across
	// machines (f[i][u] = f[i]); this is the Figure 9 regime where the
	// optimal one-to-one mapping is computable.
	TaskOnlyFailures bool

	// TypeAssignment picks how task types are laid on the chain.
	TypeAssignment TypeAssignment
}

// TypeAssignment selects the task-type layout along the chain.
type TypeAssignment int

const (
	// RandomTypes draws each task's type uniformly, then patches the
	// first p tasks to guarantee every type appears at least once.
	RandomTypes TypeAssignment = iota
	// CyclicTypes lays types 0,1,...,p-1,0,1,... along the chain.
	CyclicTypes
)

// Default returns the paper's standard campaign parameters for given sizes.
func Default(n, p, m int) Params {
	return Params{
		N: n, P: p, M: m,
		WMin: 100, WMax: 1000,
		FMin: 0.005, FMax: 0.02,
	}
}

// Validate checks structural feasibility (p <= n, p <= m, bounds ordered).
func (pr Params) Validate() error {
	if pr.N <= 0 || pr.P <= 0 || pr.M <= 0 {
		return fmt.Errorf("gen: sizes must be positive (n=%d p=%d m=%d)", pr.N, pr.P, pr.M)
	}
	if pr.P > pr.N {
		return fmt.Errorf("gen: p=%d types exceed n=%d tasks", pr.P, pr.N)
	}
	if pr.P > pr.M {
		return fmt.Errorf("gen: p=%d types exceed m=%d machines; no specialized mapping exists", pr.P, pr.M)
	}
	if !(pr.WMin > 0) || pr.WMax < pr.WMin {
		return fmt.Errorf("gen: bad execution-time range [%v,%v]", pr.WMin, pr.WMax)
	}
	if pr.FMin < 0 || pr.FMax >= 1 || pr.FMax < pr.FMin {
		return fmt.Errorf("gen: bad failure range [%v,%v]", pr.FMin, pr.FMax)
	}
	return nil
}

// Chain draws one random linear-chain instance.
func Chain(pr Params, rng *rand.Rand) (*core.Instance, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	types := drawTypes(pr, rng)
	a, err := app.NewChain(types)
	if err != nil {
		return nil, err
	}
	return fill(pr, a, rng)
}

// InTree draws a random in-tree instance: `branches` chains of roughly equal
// length joined into a final assembly chain. Exercises the join machinery
// the chain campaigns never touch.
func InTree(pr Params, branches int, rng *rand.Rand) (*core.Instance, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if branches < 2 {
		return nil, fmt.Errorf("gen: in-tree needs >= 2 branches, got %d", branches)
	}
	if pr.N < branches+1 {
		return nil, fmt.Errorf("gen: n=%d too small for %d branches plus a join", pr.N, branches)
	}
	types := drawTypes(pr, rng)
	b := app.NewBuilder()
	// Reserve one task for the join root; split the rest across branches.
	rest := pr.N - 1
	var tips []app.TaskID
	k := 0
	for br := 0; br < branches; br++ {
		size := rest / branches
		if br < rest%branches {
			size++
		}
		if size == 0 {
			continue
		}
		_, last := b.AddChain(types[k : k+size]...)
		tips = append(tips, last)
		k += size
	}
	b.Join(types[pr.N-1], "assemble", tips...)
	a, err := b.Build()
	if err != nil {
		return nil, err
	}
	return fill(pr, a, rng)
}

func drawTypes(pr Params, rng *rand.Rand) []app.TypeID {
	types := make([]app.TypeID, pr.N)
	switch pr.TypeAssignment {
	case CyclicTypes:
		copy(types, app.CyclicTypes(pr.N, pr.P))
	default:
		for i := range types {
			types[i] = app.TypeID(rng.Intn(pr.P))
		}
		// Guarantee every type is represented (the paper's instances
		// always have exactly p types in play).
		perm := rng.Perm(pr.N)
		for ty := 0; ty < pr.P; ty++ {
			types[perm[ty]] = app.TypeID(ty)
		}
	}
	return types
}

// fill draws w and f honouring the typed-time constraint: times are drawn
// per (type, machine) and shared by all tasks of the type. Failure rates are
// attached to the (task, machine) couple as in the paper's model. (Rates per
// task are legal: the paper constrains only execution times by type.)
func fill(pr Params, a *app.Application, rng *rand.Rand) (*core.Instance, error) {
	n, m := a.NumTasks(), pr.M
	wByType := make([][]float64, a.NumTypes())
	for ty := range wByType {
		row := make([]float64, m)
		for u := range row {
			row[u] = pr.WMin + rng.Float64()*(pr.WMax-pr.WMin)
		}
		wByType[ty] = row
	}
	w := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = append([]float64(nil), wByType[a.Type(app.TaskID(i))]...)
	}
	p, err := platform.New(w)
	if err != nil {
		return nil, err
	}

	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		f[i] = make([]float64, m)
		if pr.TaskOnlyFailures {
			fi := pr.FMin + rng.Float64()*(pr.FMax-pr.FMin)
			for u := range f[i] {
				f[i][u] = fi
			}
		} else {
			for u := range f[i] {
				f[i][u] = pr.FMin + rng.Float64()*(pr.FMax-pr.FMin)
			}
		}
	}
	fm, err := failure.New(f)
	if err != nil {
		return nil, err
	}
	return core.NewInstance(a, p, fm)
}

// RNG returns a deterministic generator for the given seed. Experiments
// derive one sub-seed per (point, draw) so that adding series never shifts
// the random stream of existing ones.
func RNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// DeriveRNG returns the deterministic generator of the child stream
// (parent, idx...): RNG over the SubSeed-derived seed. The experiment
// engine gives every (figure, point, draw) its own stream this way, so
// draws can execute on any worker in any order and still produce the
// byte-identical series a sequential run would.
func DeriveRNG(parent int64, idx ...int64) *rand.Rand {
	return RNG(SubSeed(parent, idx...))
}

// StringSeed folds an identifier (e.g. a figure name) into a seed index
// (FNV-1a) so textual ids can participate in SubSeed derivations.
func StringSeed(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// SubSeed derives a reproducible child seed from a parent seed and indices
// (a simple SplitMix64-style mix; no external dependency).
func SubSeed(parent int64, idx ...int64) int64 {
	z := uint64(parent)
	for _, v := range idx {
		z += 0x9e3779b97f4a7c15 ^ uint64(v)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z & 0x7fffffffffffffff)
}
