package failure

import (
	"math"
	"testing"
	"testing/quick"

	"microfab/internal/app"
)

func TestNewRate(t *testing.T) {
	r, err := NewRate(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Float() != 0.005 {
		t.Fatalf("Float = %v, want 0.005", r.Float())
	}
	if r.String() != "1/200" {
		t.Fatalf("String = %q", r.String())
	}
	if _, err := NewRate(-1, 10); err == nil {
		t.Fatal("negative lost accepted")
	}
	if _, err := NewRate(11, 10); err == nil {
		t.Fatal("lost > per accepted")
	}
	if _, err := NewRate(0, 0); err == nil {
		t.Fatal("zero denominator accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := New([][]float64{{0.5, 0.5}, {0.5}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := New([][]float64{{1.0}}); err == nil {
		t.Fatal("rate 1 accepted (would make x infinite)")
	}
	if _, err := New([][]float64{{-0.1}}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestInflationAndSurvival(t *testing.T) {
	m, err := New([][]float64{{0.5, 0.0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Survival(0, 0) != 0.5 || m.Survival(0, 1) != 1 {
		t.Fatalf("survival wrong")
	}
	if m.Inflation(0, 0) != 2 || m.Inflation(0, 1) != 1 {
		t.Fatalf("inflation wrong: %v %v", m.Inflation(0, 0), m.Inflation(0, 1))
	}
}

func TestClassify(t *testing.T) {
	u, _ := NewUniform(2, 3, 0.01)
	if got := u.Classify(); got != Uniform {
		t.Fatalf("uniform classified as %v", got)
	}
	ta, _ := NewTaskOnly([]float64{0.01, 0.02}, 3)
	if got := ta.Classify(); got != TaskOnly {
		t.Fatalf("task-only classified as %v", got)
	}
	ma, _ := NewMachineOnly([]float64{0.01, 0.02, 0.03}, 2)
	if got := ma.Classify(); got != MachineOnly {
		t.Fatalf("machine-only classified as %v", got)
	}
	g, _ := New([][]float64{{0.01, 0.02}, {0.03, 0.01}})
	if got := g.Classify(); got != General {
		t.Fatalf("general classified as %v", got)
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		General: "general", TaskOnly: "task-only",
		MachineOnly: "machine-only", Uniform: "uniform",
	} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestWorstBestRate(t *testing.T) {
	m, _ := New([][]float64{{0.01, 0.05, 0.02}})
	if m.WorstRate(0) != 0.05 || m.BestRate(0) != 0.01 {
		t.Fatalf("worst/best = %v/%v", m.WorstRate(0), m.BestRate(0))
	}
}

func TestNewFromRates(t *testing.T) {
	m, err := NewFromRates([][]Rate{{{Lost: 1, Per: 2}, {Lost: 1, Per: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rate(0, 0) != 0.5 || m.Rate(0, 1) != 0.25 {
		t.Fatalf("rates = %v %v", m.Rate(0, 0), m.Rate(0, 1))
	}
}

func TestMaxInflationProduct(t *testing.T) {
	// Chain of 2 tasks; worst rates 0.5 and 0.2 → MAXx = (2·1.25, 1.25).
	m, _ := New([][]float64{{0.5, 0.1}, {0.2, 0.1}})
	chain := []app.TaskID{0, 1}
	got := m.MaxInflationProduct(chain)
	if math.Abs(got[1]-1.25) > 1e-12 {
		t.Fatalf("MAXx[1] = %v, want 1.25", got[1])
	}
	if math.Abs(got[0]-2.5) > 1e-12 {
		t.Fatalf("MAXx[0] = %v, want 2.5", got[0])
	}
}

func TestQuickInflationConsistency(t *testing.T) {
	// Property: Survival·Inflation == 1 for any valid rate.
	f := func(raw uint16) bool {
		r := float64(raw) / 65536 * 0.99
		m, err := NewUniform(1, 1, r)
		if err != nil {
			return false
		}
		return math.Abs(m.Survival(0, 0)*m.Inflation(0, 0)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
