// Package failure models the paper's transient failure model: the product
// being processed by task Ti on machine Mu is lost with probability
// f[i][u] = l[i][u] / b[i][u]. Failures are attached to the (task, machine)
// couple — neither pure machine failures nor pure task failures, although
// both appear as degenerate model classes below.
//
// Failures are transient ([6] in the paper): a loss destroys one product but
// never the machine, so production continues with the next product.
package failure

import (
	"fmt"
	"math"

	"microfab/internal/app"
	"microfab/internal/platform"
)

// Rate is an exact failure ratio l/b: l products lost out of every b
// processed. The paper specifies rates this way (e.g. 1/200 .. 1/50) so we
// keep the rational form; Float converts when real arithmetic is needed.
type Rate struct {
	Lost, Per int64
}

// NewRate returns the rate l/b after validating 0 <= l <= b, b > 0.
func NewRate(lost, per int64) (Rate, error) {
	if per <= 0 {
		return Rate{}, fmt.Errorf("failure: denominator must be positive, got %d", per)
	}
	if lost < 0 || lost > per {
		return Rate{}, fmt.Errorf("failure: need 0 <= lost <= per, got %d/%d", lost, per)
	}
	return Rate{Lost: lost, Per: per}, nil
}

// Float returns the probability l/b as a float64.
func (r Rate) Float() float64 {
	if r.Per == 0 {
		return 0
	}
	return float64(r.Lost) / float64(r.Per)
}

// String formats the rate as "l/b".
func (r Rate) String() string { return fmt.Sprintf("%d/%d", r.Lost, r.Per) }

// Class describes the structure of a failure matrix; the paper's complexity
// results split on it.
type Class int

const (
	// General: f depends on both the task and the machine (this paper).
	General Class = iota
	// TaskOnly: f[i][u] = f[i] (the companion paper [1]; Figure 9 regime).
	TaskOnly
	// MachineOnly: f[i][u] = f[u] (Theorem 2's reduction regime).
	MachineOnly
	// Uniform: one constant rate everywhere.
	Uniform
)

// String names the class.
func (c Class) String() string {
	switch c {
	case General:
		return "general"
	case TaskOnly:
		return "task-only"
	case MachineOnly:
		return "machine-only"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Matrix is an immutable failure-probability matrix f[i][u] in [0,1).
type Matrix struct {
	f [][]float64
}

// New builds a failure matrix; every entry must lie in [0,1) — a rate of 1
// would make the task impossible and every x[i] infinite.
func New(f [][]float64) (*Matrix, error) {
	if len(f) == 0 || len(f[0]) == 0 {
		return nil, fmt.Errorf("failure: empty matrix")
	}
	m := len(f[0])
	cp := make([][]float64, len(f))
	for i, row := range f {
		if len(row) != m {
			return nil, fmt.Errorf("failure: row %d has %d machines, want %d", i, len(row), m)
		}
		cp[i] = make([]float64, m)
		for u, v := range row {
			if math.IsNaN(v) || v < 0 || v >= 1 {
				return nil, fmt.Errorf("failure: f[%d][%d]=%v must be in [0,1)", i, u, v)
			}
			cp[i][u] = v
		}
	}
	return &Matrix{f: cp}, nil
}

// NewFromRates builds a matrix from exact l/b rates.
func NewFromRates(r [][]Rate) (*Matrix, error) {
	f := make([][]float64, len(r))
	for i, row := range r {
		f[i] = make([]float64, len(row))
		for u, rate := range row {
			f[i][u] = rate.Float()
		}
	}
	return New(f)
}

// NewTaskOnly builds a TaskOnly matrix f[i][u] = fi[i] for m machines.
func NewTaskOnly(fi []float64, m int) (*Matrix, error) {
	rows := make([][]float64, len(fi))
	for i, v := range fi {
		row := make([]float64, m)
		for u := range row {
			row[u] = v
		}
		rows[i] = row
	}
	return New(rows)
}

// NewMachineOnly builds a MachineOnly matrix f[i][u] = fu[u] for n tasks.
func NewMachineOnly(fu []float64, n int) (*Matrix, error) {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, len(fu))
		copy(row, fu)
		rows[i] = row
	}
	return New(rows)
}

// NewUniform builds an n×m matrix with the single rate f.
func NewUniform(n, m int, f float64) (*Matrix, error) {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, m)
		for u := range row {
			row[u] = f
		}
		rows[i] = row
	}
	return New(rows)
}

// NumTasks returns the number of task rows.
func (mx *Matrix) NumTasks() int { return len(mx.f) }

// NumMachines returns the number of machine columns.
func (mx *Matrix) NumMachines() int { return len(mx.f[0]) }

// Rate returns f[i][u], the probability that task i on machine u loses the
// product it is processing.
func (mx *Matrix) Rate(i app.TaskID, u platform.MachineID) float64 { return mx.f[i][u] }

// Survival returns 1 - f[i][u].
func (mx *Matrix) Survival(i app.TaskID, u platform.MachineID) float64 { return 1 - mx.f[i][u] }

// Inflation returns F(i,u) = 1/(1-f[i][u]): the expected number of attempts
// per successful product (the paper's Fi notation).
func (mx *Matrix) Inflation(i app.TaskID, u platform.MachineID) float64 {
	return 1 / (1 - mx.f[i][u])
}

// Row returns task i's failure rates across machines. Must not be modified.
func (mx *Matrix) Row(i app.TaskID) []float64 { return mx.f[i] }

// WorstRate returns max_u f[i][u] for task i; used to bound x[i] in the MIP
// (the paper's MAXx_i uses the worst machine per stage).
func (mx *Matrix) WorstRate(i app.TaskID) float64 {
	worst := 0.0
	for _, v := range mx.f[i] {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// BestRate returns min_u f[i][u] for task i.
func (mx *Matrix) BestRate(i app.TaskID) float64 {
	best := mx.f[i][0]
	for _, v := range mx.f[i] {
		if v < best {
			best = v
		}
	}
	return best
}

// Classify detects the tightest Class the matrix belongs to.
func (mx *Matrix) Classify() Class {
	taskOnly, machineOnly := true, true
	for i, row := range mx.f {
		for u, v := range row {
			if v != row[0] {
				taskOnly = false
			}
			if v != mx.f[0][u] {
				machineOnly = false
			}
		}
		_ = i
	}
	switch {
	case taskOnly && machineOnly:
		return Uniform
	case taskOnly:
		return TaskOnly
	case machineOnly:
		return MachineOnly
	}
	return General
}

// MaxInflationProduct returns, for a chain application in task order, the
// upper bounds MAXx_i = prod_{j>=i} 1/(1-max_u f[j][u]) used to linearise
// the MIP's big-M constraints.
func (mx *Matrix) MaxInflationProduct(chain []app.TaskID) []float64 {
	n := len(chain)
	out := make([]float64, n)
	acc := 1.0
	for k := n - 1; k >= 0; k-- {
		acc *= 1 / (1 - mx.WorstRate(chain[k]))
		out[k] = acc
	}
	return out
}
