package oto

import (
	"math"
	"math/rand"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// chainHomogeneous builds a chain instance on homogeneous machines with
// per-(task,machine) failures.
func chainHomogeneous(rng *rand.Rand, n, m int, w float64) *core.Instance {
	types := make([]app.TypeID, n)
	for i := range types {
		types[i] = app.TypeID(i)
	}
	a := app.MustChain(types)
	p, err := platform.NewHomogeneous(n, m, w)
	if err != nil {
		panic(err)
	}
	f := make([][]float64, n)
	for i := range f {
		f[i] = make([]float64, m)
		for u := range f[i] {
			f[i][u] = rng.Float64() * 0.3
		}
	}
	fm, err := failure.New(f)
	if err != nil {
		panic(err)
	}
	in, err := core.NewInstance(a, p, fm)
	if err != nil {
		panic(err)
	}
	return in
}

func TestOptimalChainHomogeneousMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		m := n + rng.Intn(3)
		in := chainHomogeneous(rng, n, m, 100)
		opt, err := OptimalChainHomogeneous(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.CheckRule(in.App, core.OneToOne); err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		po, pb := core.Period(in, opt), core.Period(in, bf)
		if math.Abs(po-pb) > 1e-6*pb {
			t.Fatalf("trial %d: theorem-1 period %v != brute force %v", trial, po, pb)
		}
	}
}

func TestOptimalChainHomogeneousPreconditions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := chainHomogeneous(rng, 4, 3, 100) // n > m
	if _, err := OptimalChainHomogeneous(in); err == nil {
		t.Fatal("n > m accepted")
	}
	// Heterogeneous machines rejected.
	het, err := gen.Chain(gen.Default(3, 3, 5), gen.RNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalChainHomogeneous(het); err == nil {
		t.Fatal("heterogeneous platform accepted")
	}
}

func TestOptimalTaskOnlyMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		pr := gen.Default(5, 3, 6)
		pr.TaskOnlyFailures = true
		in, err := gen.Chain(pr, gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalTaskOnly(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.CheckRule(in.App, core.OneToOne); err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		po, pb := core.Period(in, opt), core.Period(in, bf)
		if math.Abs(po-pb) > 1e-6*pb {
			t.Fatalf("seed %d: bottleneck period %v != brute force %v", seed, po, pb)
		}
	}
}

func TestOptimalTaskOnlyRejectsGeneralFailures(t *testing.T) {
	in, err := gen.Chain(gen.Default(4, 2, 5), gen.RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimalTaskOnly(in); err == nil {
		t.Fatal("general failure matrix accepted by the task-only solver")
	}
}

func TestMappingFreeCounts(t *testing.T) {
	a := app.MustChain([]app.TypeID{0, 1})
	p, _ := platform.NewHomogeneous(2, 2, 100)
	f, _ := failure.NewTaskOnly([]float64{0.5, 0.2}, 2)
	in, err := core.NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	x, err := MappingFreeCounts(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[1]-1.25) > 1e-12 || math.Abs(x[0]-2.5) > 1e-12 {
		t.Fatalf("x = %v, want [2.5 1.25]", x)
	}
}

func TestGreedyValidOneToOne(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in, err := gen.Chain(gen.Default(6, 3, 8), gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		mp, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := mp.CheckRule(in.App, core.OneToOne); err != nil {
			t.Fatal(err)
		}
		// Sanity: greedy is never better than brute force.
		bf, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		if core.Period(in, mp) < core.Period(in, bf)-1e-9 {
			t.Fatalf("seed %d: greedy beats brute force — impossible", seed)
		}
	}
}

func TestBruteForceGuards(t *testing.T) {
	in, err := gen.Chain(gen.Default(11, 3, 12), gen.RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForce(in); err == nil {
		t.Fatal("oversized brute force accepted")
	}
	small, err := gen.Chain(gen.Default(5, 2, 4), gen.RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForce(small); err == nil {
		t.Fatal("n > m brute force accepted")
	}
}

func TestTheorem1BottleneckIsFirstTask(t *testing.T) {
	// On a homogeneous chain, the period is always carried by the
	// machine of T1 (x[0] is the largest since every F >= 1).
	rng := rand.New(rand.NewSource(77))
	in := chainHomogeneous(rng, 4, 6, 100)
	opt, err := OptimalChainHomogeneous(in)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Critical != opt.Machine(0) {
		t.Fatalf("critical machine M%d is not T1's machine M%d", ev.Critical+1, opt.Machine(0)+1)
	}
}
