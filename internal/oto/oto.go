// Package oto solves one-to-one mapping problems (each machine runs at most
// one task, so n <= m is required).
//
// Solvers:
//
//   - OptimalChainHomogeneous — Theorem 1: on a linear chain with
//     homogeneous machines (w[i][u] = w) the optimum is a minimum-weight
//     bipartite matching with edge costs -log(1 - f[i][u]);
//   - OptimalTaskOnly — the Figure 9 baseline: when failures depend only on
//     the task (f[i][u] = f[i]) the product counts x[i] are
//     mapping-independent, so minimizing the period max_i x[i]·w[i][a(i)]
//     is a bottleneck assignment problem, polynomial for any application
//     shape and heterogeneous machines;
//   - BruteForce — exhaustive search for cross-checking on tiny instances
//     (NP-hard in general, Theorem 2);
//   - Greedy — a fast fallback for instances none of the polynomial cases
//     cover.
package oto

import (
	"fmt"
	"math"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/hungarian"
	"microfab/internal/platform"
)

// check validates the one-to-one size precondition.
func check(in *core.Instance) error {
	if in.N() > in.M() {
		return fmt.Errorf("oto: %d tasks exceed %d machines; one-to-one mapping impossible", in.N(), in.M())
	}
	return nil
}

// OptimalChainHomogeneous computes the optimal one-to-one mapping for a
// linear chain on homogeneous machines (Theorem 1). The period is
// constrained by the machine of the first task, whose product count is
// x[0] = Π_j F(j,a(j)); minimizing the period is minimizing Σ_j
// -log(1 - f[j][a(j)]), a min-cost assignment.
func OptimalChainHomogeneous(in *core.Instance) (*core.Mapping, error) {
	if err := check(in); err != nil {
		return nil, err
	}
	if !in.App.IsChain() {
		return nil, fmt.Errorf("oto: Theorem 1 requires a linear chain application")
	}
	if !in.Platform.IsHomogeneous() {
		return nil, fmt.Errorf("oto: Theorem 1 requires homogeneous machines")
	}
	n, m := in.N(), in.M()
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, m)
		for u := 0; u < m; u++ {
			cost[i][u] = -math.Log(in.Failures.Survival(app.TaskID(i), platform.MachineID(u)))
		}
	}
	assign, _, err := hungarian.Solve(cost)
	if err != nil {
		return nil, err
	}
	mp := core.NewMapping(n)
	for i, u := range assign {
		mp.Assign(app.TaskID(i), platform.MachineID(u))
	}
	return mp, nil
}

// MappingFreeCounts returns the x[i] values when failures are task-only:
// x[i] = Π over the path from i to the root of 1/(1-f[j]), independent of
// any mapping. It errors if the failure matrix is not task-only.
func MappingFreeCounts(in *core.Instance) ([]float64, error) {
	cls := in.Failures.Classify()
	if cls != failure.TaskOnly && cls != failure.Uniform {
		return nil, fmt.Errorf("oto: failures are %v, not task-only; x[i] depends on the mapping", cls)
	}
	n := in.N()
	x := make([]float64, n)
	for _, i := range in.App.ReverseTopological() {
		demand := 1.0
		if s := in.App.Successor(i); s != app.NoTask {
			demand = x[s]
		}
		// Any machine column works: rates are equal across machines.
		x[i] = demand / (1 - in.Failures.Rate(i, 0))
	}
	return x, nil
}

// OptimalTaskOnly computes the optimal one-to-one mapping when failure
// rates are task-only (f[i][u] = f[i]), for any application shape and fully
// heterogeneous machines. With x[i] fixed, period(Mu) = x[i]·w[i][u] for
// the single task on u, so the optimum is the bottleneck assignment over
// costs x[i]·w[i][u].
func OptimalTaskOnly(in *core.Instance) (*core.Mapping, error) {
	if err := check(in); err != nil {
		return nil, err
	}
	x, err := MappingFreeCounts(in)
	if err != nil {
		return nil, err
	}
	n, m := in.N(), in.M()
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, m)
		for u := 0; u < m; u++ {
			cost[i][u] = x[i] * in.Platform.Time(app.TaskID(i), platform.MachineID(u))
		}
	}
	assign, _, err := hungarian.Bottleneck(cost)
	if err != nil {
		return nil, err
	}
	mp := core.NewMapping(n)
	for i, u := range assign {
		mp.Assign(app.TaskID(i), platform.MachineID(u))
	}
	return mp, nil
}

// BruteForce enumerates every injective task->machine assignment and
// returns one with the minimum period. The walk is root-first on a
// core.Evaluator, so each node prices its task incrementally and branches
// whose machine load already reaches the best period are cut; results are
// identical to the unpruned enumeration. Exponential: use only when m^n is
// tiny (it guards n <= 10 and m <= 10).
func BruteForce(in *core.Instance) (*core.Mapping, error) {
	if err := check(in); err != nil {
		return nil, err
	}
	n, m := in.N(), in.M()
	if n > 10 || m > 10 {
		return nil, fmt.Errorf("oto: brute force refused for n=%d, m=%d (too large)", n, m)
	}
	order := in.App.ReverseTopological()
	ev := core.NewEvaluator(in)
	used := make([]bool, m)
	trial := make([]float64, n*m) // depth k owns trial[k·m : (k+1)·m]
	var best *core.Mapping
	bestPeriod := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if p, _ := ev.Best(); p < bestPeriod {
				bestPeriod = p
				best = ev.Mapping()
			}
			return
		}
		i := order[k]
		// One batch pass prices every landing of i; per-depth rows keep the
		// values valid across the recursive calls below.
		row := trial[k*m : (k+1)*m]
		ok := ev.TrialAll(i, row)
		for u := 0; u < m; u++ {
			if used[u] {
				continue
			}
			mu := platform.MachineID(u)
			if ok && row[u] >= bestPeriod {
				continue // loads only grow down the branch
			}
			used[u] = true
			_ = ev.Assign(i, mu)
			rec(k + 1)
			ev.Unassign(i)
			used[u] = false
		}
	}
	rec(0)
	if best == nil {
		return nil, fmt.Errorf("oto: brute force found no assignment")
	}
	return best, nil
}

// Greedy assigns tasks root-first, each to the unused machine minimizing
// the task's priced cost x[i]·w[i][u]. Polynomial fallback with no
// optimality guarantee (the general problem is NP-hard, Theorem 2).
func Greedy(in *core.Instance) (*core.Mapping, error) {
	if err := check(in); err != nil {
		return nil, err
	}
	n, m := in.N(), in.M()
	mp := core.NewMapping(n)
	used := make([]bool, m)
	x := make([]float64, n)
	for _, i := range in.App.ReverseTopological() {
		demand := 1.0
		if s := in.App.Successor(i); s != app.NoTask {
			demand = x[s]
		}
		best := platform.NoMachine
		bestCost := math.Inf(1)
		for u := 0; u < m; u++ {
			if used[u] {
				continue
			}
			mu := platform.MachineID(u)
			c := demand * in.Failures.Inflation(i, mu) * in.Platform.Time(i, mu)
			if c < bestCost {
				bestCost = c
				best = mu
			}
		}
		if best == platform.NoMachine {
			return nil, fmt.Errorf("oto: ran out of machines at task T%d", int(i)+1)
		}
		used[best] = true
		x[i] = demand * in.Failures.Inflation(i, best)
		mp.Assign(i, best)
	}
	return mp, nil
}
