package exact

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// mergeSubtrees reduces subtree outcomes in frontier order, exactly like a
// coordinator does: warm start first, then the first strict improvement
// chain (the same loop as solveParallel's report reduction).
func mergeSubtrees(t *testing.T, in *core.Instance, front *FrontierInfo, outs []*SubtreeOutcome) (float64, []int, bool) {
	t.Helper()
	bestPeriod := math.Inf(1)
	bestAssign := front.WarmAssign
	if bestAssign != nil {
		bestPeriod = front.WarmPeriod
	}
	proven := !front.Stopped
	for _, o := range outs {
		if o.Stopped {
			proven = false
		}
		if o.Found && o.Period < bestPeriod {
			bestPeriod, bestAssign = o.Period, o.Assign
		}
	}
	if bestAssign == nil {
		t.Fatal("merge found no mapping")
	}
	mp := core.NewMapping(in.N())
	for i, u := range bestAssign {
		mp.Assign(app.TaskID(i), platform.MachineID(u))
	}
	return core.Period(in, mp), bestAssign, proven
}

// TestSubtreeMergeMatchesSolve: Frontier + SolveSubtree per prefix,
// reduced in frontier order, reproduces Solve bit for bit — with and
// without an injected external bound equal to the optimum (the strongest
// safe injection).
func TestSubtreeMergeMatchesSolve(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		in, err := gen.Chain(gen.Default(11, 3, 5), gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Rule: core.Specialized, WarmStart: true}
		ref, err := Solve(in, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Proven {
			t.Fatal("reference not proven")
		}

		front, err := Frontier(in, opts, 16)
		if err != nil {
			t.Fatal(err)
		}
		if front.Stopped {
			t.Fatal("frontier enumeration stopped")
		}
		for _, inject := range []bool{false, true} {
			outs := make([]*SubtreeOutcome, len(front.Prefixes))
			for j, prefix := range front.Prefixes {
				o := opts
				if inject {
					// The sharpest valid external bound: the optimum
					// itself, injected the moment the search starts.
					o.BoundInjector = func(fn func(float64)) { fn(ref.Period) }
				}
				out, err := SolveSubtree(in, o, prefix)
				if err != nil {
					t.Fatal(err)
				}
				if out.WarmPeriod != front.WarmPeriod {
					t.Fatalf("subtree warm %v != frontier warm %v", out.WarmPeriod, front.WarmPeriod)
				}
				outs[j] = out
			}
			period, assign, proven := mergeSubtrees(t, in, front, outs)
			if !proven {
				t.Fatalf("inject=%v: merge not proven", inject)
			}
			if period != ref.Period {
				t.Fatalf("inject=%v: merged period %v != %v", inject, period, ref.Period)
			}
			for i, u := range assign {
				if platform.MachineID(u) != ref.Mapping.Machine(app.TaskID(i)) {
					t.Fatalf("inject=%v seed=%d: merged mapping diverges at task %d", inject, seed, i)
				}
			}
		}
	}
}

// TestFrontierExhausted: an instance whose warm start is already optimal
// can enumerate an empty frontier; the info must say so rather than lie
// with prefixes.
func TestFrontierExhausted(t *testing.T) {
	in, err := gen.Chain(gen.Default(2, 1, 1), gen.RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	front, err := Frontier(in, Options{Rule: core.Specialized, WarmStart: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if front.Stopped {
		t.Fatal("stopped on a trivial instance")
	}
	if front.WarmAssign == nil {
		t.Fatal("no warm start on a trivial instance")
	}
	// With one machine the warm start is optimal; whatever the frontier
	// shape, solving every prefix must not beat it.
	for _, prefix := range front.Prefixes {
		out, err := SolveSubtree(in, Options{Rule: core.Specialized, WarmStart: true}, prefix)
		if err != nil {
			t.Fatal(err)
		}
		if out.Found && out.Period < front.WarmPeriod {
			t.Fatalf("subtree beat a provably optimal warm start: %v < %v", out.Period, front.WarmPeriod)
		}
	}
}

// TestSolveSubtreeRejectsBadPrefix: malformed prefixes are typed errors,
// not panics.
func TestSolveSubtreeRejectsBadPrefix(t *testing.T) {
	in, err := gen.Chain(gen.Default(5, 2, 3), gen.RNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveSubtree(in, Options{}, []int{0, 1, 2, 0, 1}); err == nil {
		t.Fatal("full-length prefix accepted")
	}
	if _, err := SolveSubtree(in, Options{}, []int{7}); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
}

// TestBoundInjectorSequential: injecting the known optimum into a plain
// sequential Solve must not change the proven result (strict pruning), and
// must not inflate the node count.
func TestBoundInjectorSequential(t *testing.T) {
	in, err := gen.Chain(gen.Default(10, 2, 4), gen.RNG(13))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{
		Rule:          core.Specialized,
		BoundInjector: func(fn func(float64)) { fn(ref.Period) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || res.Period != ref.Period {
		t.Fatalf("injected solve diverged: period %v (proven %v) vs %v", res.Period, res.Proven, ref.Period)
	}
	for i := 0; i < in.N(); i++ {
		if res.Mapping.Machine(app.TaskID(i)) != ref.Mapping.Machine(app.TaskID(i)) {
			t.Fatalf("injected solve changed the mapping at task %d", i)
		}
	}
	if res.Nodes > ref.Nodes {
		t.Fatalf("injection inflated nodes: %d > %d", res.Nodes, ref.Nodes)
	}
}
