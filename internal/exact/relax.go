// Tiered relaxation bounds for the branch and bound: when the cheap
// combinatorial bound (bound.go) lands close to the pruning threshold but
// not over it, the node is worth a stronger — and costlier — relaxation
// before its subtree is expanded.
//
//	tier 1  combinatorial      O((n-k)·m)          every node (bound.go)
//	tier 2  bottleneck assign  O((n-k)·m·√ + sort)  rule-constrained nodes
//	tier 3  LP relaxation      simplex, warm-started within a tree level
//
// Tier 2 prices every unplaced task's feasible landings off the Pricer's
// SoA rows and solves a min-max one-to-one relaxation with
// internal/hungarian: under the one-to-one rule the unplaced tasks really
// do occupy pairwise-distinct (still-free) machines, so the bottleneck
// assignment value is a valid lower bound on any completion's period;
// under the Specialized rule the same holds for one representative task
// per remaining type (distinct types occupy distinct machines), with the
// representative chosen — deterministically — as the type's hardest task,
// the one whose cheapest feasible landing is largest. Under the general
// rule there is no injectivity to exploit and the tier is skipped.
//
// Tier 3 solves the fractional assignment LP
//
//	min T   s.t.  Σ_u y[i,u] = 1                    (each unplaced task lands)
//	              load(u) + Σ_i c(i,u)·y[i,u] <= T  (per machine)
//	              Σ_i y[i,u] <= 1                   (one-to-one capacity)
//	              y >= 0, infeasible pairs fixed to 0
//
// with c(i,u) = (dlb(i)·F(i,u))·w(i,u), the exact landing increment the
// DFS itself would pay at demand lower bound dlb. Any completion induces an
// integral feasible y, so the LP optimum never exceeds the true optimum;
// the reported objective is deflated by lpSlack to absorb simplex
// round-off, and any non-Optimal LP status yields no bound at all
// (admissibility over speed — a half-converged tableau proves nothing).
// Sibling nodes share a tableau shape, so the per-searcher lp.Workspace
// warm-starts most solves from the previous sibling's basis.
//
// Both tiers are admissibility-fuzzed against the exhaustive completion
// oracle (FuzzAssignmentBound, FuzzLPBound) exactly like the combinatorial
// bound.
//
// Activation is gated three ways, because a relaxation only pays when its
// cost is smaller than the subtree it might cut:
//
//   - strength: a tier runs only when the combinatorial bound already
//     reached a fraction (the tier's gate) of the pruning threshold, and
//     each searcher adapts that fraction with an amortized controller —
//     every gateWindow attempts, a tier that almost never converts into a
//     prune is throttled (gate up), one that converts often is let loose
//     (gate down);
//   - collision (tier 2): the bottleneck value exceeds tier 1's
//     cheapest-landing maximum *iff* the min-landing assignment is not
//     itself a matching, i.e. two relevant tasks share an argmin machine.
//     lowerBound's main loop records each task's argmin for free, so the
//     matcher runs only after an O(n-k) duplicate scan finds a collision —
//     a lossless filter, not a heuristic;
//   - depth (tier 3): a prune at depth k cuts a subtree exponential in
//     n-k, while the simplex costs the same everywhere, so the LP runs
//     only in the top third of the tree (rem*3 >= 2n) where a conversion
//     pays for hundreds of misses.
//
// A per-searcher warmup (relaxWarmup nodes) on top of all three keeps easy
// searches on the pure combinatorial bound.
//
// The gates and the warmup make bound *values* history-dependent — under a
// parallel root split even timing-dependent, since a worker's node count
// depends on which subtrees it happened to draw. That is
// deliberately safe: every value any gate state produces is admissible, and
// the proven result of the search is invariant under swapping one
// admissible bound for another — ancestors of the first optimum-attaining
// leaf in DFS order satisfy lb <= P* for every admissible lb, so neither
// the >=-test against the (deterministically evolving) local incumbent nor
// the strict test against the shared one can prune them; only node counts
// move. TestExactParallelDifferential and TestExactDistributedMatchesLocal
// pin exactly this: byte-equal proofs with the tiers on or off, for any
// worker count.
package exact

import (
	"errors"
	"math"

	"microfab/internal/core"
	"microfab/internal/hungarian"
	"microfab/internal/lp"
	"microfab/internal/platform"
)

// relaxWarmup: nodes a searcher must have expanded before the tiers
// activate. A search that finishes in a few thousand nodes is cheaper
// than the relaxations it would run — the tiers exist for searches in
// the millions, and those pass the warmup in microseconds. A variable so
// the admissibility and dominance tests can force activation on small
// instances; production code never writes it.
var relaxWarmup = int64(4096)

const (
	// assignMinRem / lpMinRem: minimum unplaced-task counts for a tier to
	// beat tier 1. One remaining task's bottleneck is its cheapest landing
	// — tier 1 already has it; tiny LPs prune almost nothing tier 2 missed.
	assignMinRem = 2
	lpMinRem     = 4

	// Initial gates: run a tier only when tier 1 reached this fraction of
	// the pruning threshold. Tuned from there by the controller.
	assignGate0 = 0.80
	lpGate0     = 0.80

	// Controller: every gateWindow attempts per tier, move the gate by
	// gateStep — up (throttle) when fewer than 2% of attempts pruned, down
	// (spend more) when more than 25% did — within [floor, ceiling].
	gateWindow      = 256
	gateStep        = 0.05
	assignGateFloor = 0.30
	assignGateCeil  = 0.95
	lpGateFloor     = 0.40
	lpGateCeil      = 0.97

	// lpIterCap bounds per-node simplex pivots; the bound LPs have
	// O(n + 2m) rows, so hundreds of pivots means numerical trouble, and a
	// capped solve correctly reports no bound.
	lpIterCap = 600

	// lpSlack deflates the LP objective before it is used as a bound: the
	// simplex works at 1e-7/1e-9 tolerances and its objective can overshoot
	// the exact LP optimum by round-off, and the LP's real-arithmetic sums
	// associate differently from any machine's float load sum. 1e-6
	// relative slack buries both effects; the pruning power lost is
	// invisible next to sumSlack's reasoning in bound.go.
	lpSlack = 1 - 1e-6
)

// relaxer is one searcher's relaxation-tier state: the reusable hungarian
// and LP workspaces, flat scratch, and the adaptive gate controller. All
// private to the owning goroutine, like the rest of the searcher.
type relaxer struct {
	hs    *hungarian.Solver
	lw    *lp.Workspace
	model *lp.Model

	// Shared read-only SoA tables (see core.InflationTable).
	infl, tim []float64

	cost    []float64 // flat landing matrix for the bottleneck tier
	cols    []int     // column -> machine id
	repTask []int     // per-type representative (order position; -1 none)
	coefs   []lp.Coef // row-building scratch (AddRow copies)

	// seen/stamp: O(1)-reset machine marks for the argmin-collision scan.
	seen  []int
	stamp int

	noAssign, noLP bool

	assignGate, lpGate           float64
	aTries, aHits, lTries, lHits int
}

func newRelaxer(in *core.Instance, noAssign, noLP bool) *relaxer {
	return &relaxer{
		hs:         hungarian.NewSolver(),
		lw:         lp.NewWorkspace(),
		model:      lp.NewModel(0),
		infl:       core.InflationTable(in),
		tim:        core.TimeTable(in),
		cols:       make([]int, in.M()),
		repTask:    make([]int, in.P()),
		seen:       make([]int, in.M()),
		noAssign:   noAssign,
		noLP:       noLP,
		assignGate: assignGate0,
		lpGate:     lpGate0,
	}
}

// strengthen runs the relaxation tiers on a node the combinatorial bound
// (lb) failed to prune, returning a possibly-raised admissible bound. It
// requires lowerBound's main loop to have completed for depth k, so
// s.dlb[k..n) holds the node's demand lower bounds.
func (s *searcher) strengthen(k int, lb, localBest, sharedP float64) float64 {
	rx := s.rx
	thr := localBest
	if sharedP < thr {
		thr = sharedP
	}
	if math.IsInf(thr, 1) {
		// No incumbent to prune against: a stronger bound changes nothing.
		return lb
	}
	rem := len(s.order) - k
	if !rx.noAssign && s.rule != core.GeneralRule && rem >= assignMinRem && lb >= rx.assignGate*thr {
		ab, ok, tried := s.assignmentBound(k)
		if tried {
			// Collision-skips stay out of the controller's stats: they cost
			// one linear scan, not a matching, and throttling on them would
			// starve the tier on instances with rare-but-deep collisions.
			rx.aTries++
			if ok && ab > lb {
				lb = ab
			}
			if lb >= localBest || lb > sharedP {
				rx.aHits++
				rx.tune()
				return lb
			}
			rx.tune()
		}
	}
	if !rx.noLP && rem >= lpMinRem && rem*3 >= len(s.order)*2 && lb >= rx.lpGate*thr {
		rx.lTries++
		if v, ok := s.lpBound(k); ok && v > lb {
			lb = v
		}
		if lb >= localBest || lb > sharedP {
			rx.lHits++
		}
		rx.tune()
	}
	return lb
}

// tune is the amortized gate controller (see the package comment). It runs
// after every tier attempt but only moves a gate once per gateWindow
// attempts of that tier.
func (rx *relaxer) tune() {
	if rx.aTries >= gateWindow {
		switch {
		case rx.aHits*50 < rx.aTries: // < 2% conversions: throttle
			rx.assignGate = math.Min(rx.assignGate+gateStep, assignGateCeil)
		case rx.aHits*4 > rx.aTries: // > 25%: the tier is earning; widen
			rx.assignGate = math.Max(rx.assignGate-gateStep, assignGateFloor)
		}
		rx.aTries, rx.aHits = 0, 0
	}
	if rx.lTries >= gateWindow {
		switch {
		case rx.lHits*50 < rx.lTries:
			rx.lpGate = math.Min(rx.lpGate+gateStep, lpGateCeil)
		case rx.lHits*4 > rx.lTries:
			rx.lpGate = math.Max(rx.lpGate-gateStep, lpGateFloor)
		}
		rx.lTries, rx.lHits = 0, 0
	}
}

// markCollision stamps machine u in the collision scan; true once two
// stamped tasks share a machine. u < 0 (a task with no feasible landing)
// counts as a collision so the matcher runs and proves +Inf.
func (rx *relaxer) markCollision(u int) bool {
	if u < 0 || rx.seen[u] == rx.stamp {
		return true
	}
	rx.seen[u] = rx.stamp
	return false
}

// assignmentBound is the bottleneck tier. It returns (bound, ok, tried):
// ok=false when the rule offers no injectivity here, and tried=false is
// the zero-cost exit — the relevant tasks' cheapest-landing machines are
// pairwise distinct, so the min-landing assignment is itself a feasible
// matching, the bottleneck value equals tier 1's cheapest-landing maximum
// exactly, and running the matcher could not raise the bound. +Inf (with
// ok) proves the node infeasible — more tasks or task types than machines
// can carry them, or no perfect matching at all. Requires s.dlb, s.minLand
// and s.landArg filled for depth k (lowerBound's main loop).
func (s *searcher) assignmentBound(k int) (float64, bool, bool) {
	rx := s.rx
	n := len(s.order)
	switch s.rule {
	case core.OneToOne:
		// Every unplaced task occupies its own still-free machine, so the
		// min-max perfect assignment of tasks to free machines — each cell
		// the exact landing price at the task's demand lower bound — bounds
		// every completion from below.
		cols := rx.cols[:0]
		for u := 0; u < s.m; u++ {
			if !s.used[u] {
				cols = append(cols, u)
			}
		}
		nr, nc := n-k, len(cols)
		if nr > nc {
			return math.Inf(1), true, true
		}
		rx.stamp++
		collide := false
		for j := k; j < n && !collide; j++ {
			collide = rx.markCollision(s.landArg[j])
		}
		if !collide {
			return 0, false, false
		}
		if cap(rx.cost) < nr*nc {
			rx.cost = make([]float64, nr*nc)
		}
		cost := rx.cost[:nr*nc]
		for r := 0; r < nr; r++ {
			j := k + r
			s.pr.PriceAllAt(s.order[j], s.dlb[j], s.land)
			row := cost[r*nc:]
			for c, u := range cols {
				row[c] = s.land[u]
			}
		}
		_, b, err := rx.hs.Bottleneck(cost, nr, nc)
		if err != nil {
			if errors.Is(err, hungarian.ErrNoPerfectMatching) {
				return math.Inf(1), true, true
			}
			return 0, false, true
		}
		return b, true, true

	case core.Specialized:
		// Distinct remaining types end up on distinct machines (each type
		// on machines dedicated to it), so one representative task per
		// remaining type forms a one-to-one sub-problem over all machines.
		// The representative is the type's hardest unplaced task — largest
		// cheapest-feasible-landing — a pure function of the node (ties
		// keep the earliest order position).
		for t := range rx.repTask {
			rx.repTask[t] = -1
		}
		nr := 0
		for j := k; j < n; j++ {
			ty := int(s.in.App.Type(s.order[j]))
			if r := rx.repTask[ty]; r < 0 {
				rx.repTask[ty] = j
				nr++
			} else if s.minLand[j] > s.minLand[r] {
				rx.repTask[ty] = j
			}
		}
		if nr > s.m {
			return math.Inf(1), true, true
		}
		if nr < 2 {
			// A single remaining type's bottleneck is its representative's
			// cheapest landing; tier 1's maxTask already saw it.
			return 0, false, false
		}
		rx.stamp++
		collide := false
		for t := range rx.repTask {
			if j := rx.repTask[t]; j >= 0 && rx.markCollision(s.landArg[j]) {
				collide = true
				break
			}
		}
		if !collide {
			return 0, false, false
		}
		nc := s.m
		if cap(rx.cost) < nr*nc {
			rx.cost = make([]float64, nr*nc)
		}
		cost := rx.cost[:nr*nc]
		r := 0
		for t := range rx.repTask {
			j := rx.repTask[t]
			if j < 0 {
				continue
			}
			i := s.order[j]
			ty := s.in.App.Type(i)
			s.pr.PriceAllAt(i, s.dlb[j], s.land)
			row := cost[r*nc:]
			for u := 0; u < nc; u++ {
				if s.feasible(u, ty) {
					row[u] = s.land[u]
				} else {
					row[u] = math.Inf(1)
				}
			}
			r++
		}
		_, b, err := rx.hs.Bottleneck(cost, nr, nc)
		if err != nil {
			if errors.Is(err, hungarian.ErrNoPerfectMatching) {
				return math.Inf(1), true, true
			}
			return 0, false, true
		}
		return b, true, true
	}
	return 0, false, false
}

// lpBound is the LP tier (see the package comment for the model). It
// returns an admissible bound and true, or (0, false) when the LP did not
// reach Optimal within lpIterCap pivots — a half-converged tableau proves
// nothing, so it contributes nothing. Requires s.dlb filled for depth k.
func (s *searcher) lpBound(k int) (float64, bool) {
	rx := s.rx
	n := len(s.order)
	rem := n - k
	md := rx.model
	md.Reset(1 + rem*s.m)
	md.SetObj(0, 1)

	// Convexity rows; infeasible pairs are fixed to zero so standardization
	// substitutes them away before the tableau is built.
	for r := 0; r < rem; r++ {
		j := k + r
		i := s.order[j]
		ty := s.in.App.Type(i)
		coefs := rx.coefs[:0]
		for u := 0; u < s.m; u++ {
			v := 1 + r*s.m + u
			if s.feasible(u, ty) {
				coefs = append(coefs, lp.Coef{Var: v, Val: 1})
			} else {
				md.SetBounds(v, 0, 0)
			}
		}
		if len(coefs) == 0 {
			// No feasible landing at all: the node is infeasible. (tier 1
			// already returned +Inf for this node, so this is belt and
			// braces.)
			return math.Inf(1), true
		}
		md.AddRow(coefs, lp.EQ, 1)
		rx.coefs = coefs[:0]
	}
	// Machine rows: load(u) + Σ c(i,u)·y[i,u] <= T.
	for u := 0; u < s.m; u++ {
		coefs := append(rx.coefs[:0], lp.Coef{Var: 0, Val: -1})
		for r := 0; r < rem; r++ {
			j := k + r
			i := s.order[j]
			if !s.feasible(u, s.in.App.Type(i)) {
				continue
			}
			c := (s.dlb[j] * rx.infl[int(i)*s.m+u]) * rx.tim[int(i)*s.m+u]
			coefs = append(coefs, lp.Coef{Var: 1 + r*s.m + u, Val: c})
		}
		md.AddRow(coefs, lp.LE, -s.pr.Load(platform.MachineID(u)))
		rx.coefs = coefs[:0]
	}
	if s.rule == core.OneToOne {
		for u := 0; u < s.m; u++ {
			if s.used[u] {
				continue
			}
			coefs := rx.coefs[:0]
			for r := 0; r < rem; r++ {
				coefs = append(coefs, lp.Coef{Var: 1 + r*s.m + u, Val: 1})
			}
			md.AddRow(coefs, lp.LE, 1)
			rx.coefs = coefs[:0]
		}
	}
	sol, err := rx.lw.SolveWithLimit(md, lpIterCap)
	if err != nil || sol.Status != lp.Optimal {
		return 0, false
	}
	v := sol.Objective * lpSlack
	if v < 0 {
		return 0, false
	}
	return v, true
}
