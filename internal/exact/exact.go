// Package exact solves small mapping instances to optimality by
// depth-first branch and bound over task-to-machine assignments. It is
// independent of the MIP path (package milp), so the two exact solvers
// cross-validate each other in tests; heuristics are benchmarked against
// either.
//
// The search walks tasks root-first (so x[i] is priced exactly as tasks are
// placed, exactly like the heuristics) and prunes a branch as soon as the
// maximum machine load reaches the incumbent period. Candidate pricing,
// machine loads and the running maximum all live in a core.Evaluator, whose
// Assign/Unassign push/pop keeps the per-node cost at O(log m) instead of a
// full O(n·m) re-evaluation. Worst-case cost is m^n; with pruning it
// handles the paper's MIP-scale instances (n <= 15, m <= 9) comfortably.
package exact

import (
	"errors"
	"fmt"
	"math"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// Options bounds the search.
type Options struct {
	// Rule defaults to Specialized.
	Rule core.Rule
	// MaxNodes caps explored partial assignments (0 = 50 million).
	MaxNodes int64
	// TimeLimit stops the search (0 = none). On stop the best incumbent
	// so far is returned with Proven=false.
	TimeLimit time.Duration
	// Incumbent optionally warm-starts the bound.
	Incumbent *core.Mapping
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 50_000_000
}

// Result is the search outcome.
type Result struct {
	Mapping *core.Mapping
	Period  float64
	// Proven is true when the search space was exhausted.
	Proven bool
	Nodes  int64
}

type searcher struct {
	in    *core.Instance
	rule  core.Rule
	order []app.TaskID
	m     int

	spec []app.TypeID // Specialized bookkeeping (-1 free)
	used []bool       // OneToOne bookkeeping
	ev   *core.Evaluator

	best       *core.Mapping
	bestPeriod float64
	nodes      int64
	maxNodes   int64
	deadline   time.Time
	stopped    bool
}

const noType app.TypeID = -1

// Solve finds an optimal mapping under the rule, or the best incumbent when
// a budget interrupts the search.
func Solve(in *core.Instance, opts Options) (*Result, error) {
	if in.N() == 0 {
		return nil, fmt.Errorf("exact: empty instance")
	}
	if opts.Rule == core.OneToOne && in.N() > in.M() {
		return nil, fmt.Errorf("exact: one-to-one impossible with n=%d > m=%d", in.N(), in.M())
	}
	s := &searcher{
		in:         in,
		rule:       opts.Rule,
		order:      in.App.ReverseTopological(),
		m:          in.M(),
		spec:       make([]app.TypeID, in.M()),
		used:       make([]bool, in.M()),
		ev:         core.NewEvaluator(in),
		bestPeriod: math.Inf(1),
		maxNodes:   opts.maxNodes(),
	}
	for u := range s.spec {
		s.spec[u] = noType
	}
	if opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(opts.TimeLimit)
	}
	if opts.Incumbent != nil {
		if err := opts.Incumbent.CheckRule(in.App, opts.Rule); err == nil {
			p, err := core.PeriodE(in, opts.Incumbent)
			switch {
			case err == nil:
				if p < s.bestPeriod {
					s.bestPeriod = p
					s.best = opts.Incumbent.Clone()
				}
			case errors.Is(err, core.ErrIncompleteMapping):
				// A partial incumbent cannot bound the search; ignore it.
			default:
				return nil, fmt.Errorf("exact: incumbent does not evaluate: %w", err)
			}
		}
	}
	s.dfs(0)
	if s.best == nil {
		return nil, fmt.Errorf("exact: no feasible mapping under rule %v", opts.Rule)
	}
	return &Result{
		Mapping: s.best,
		Period:  s.bestPeriod,
		Proven:  !s.stopped,
		Nodes:   s.nodes,
	}, nil
}

func (s *searcher) dfs(k int) {
	if s.stopped {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes || (!s.deadline.IsZero() && s.nodes%4096 == 0 && time.Now().After(s.deadline)) {
		s.stopped = true
		return
	}
	if k == len(s.order) {
		if p, _ := s.ev.Best(); p < s.bestPeriod {
			s.bestPeriod = p
			s.best = s.ev.Mapping()
		}
		return
	}
	i := s.order[k]
	ty := s.in.App.Type(i)
	// Root-first order guarantees i's demand is priced, so it is hoisted
	// out of the candidate loop.
	demand, _ := s.ev.Demand(i)
	// Symmetry note: free machines are NOT interchangeable (heterogeneous
	// w and f), so all are tried.
	for u := 0; u < s.m; u++ {
		mu := platform.MachineID(u)
		switch s.rule {
		case core.OneToOne:
			if s.used[u] {
				continue
			}
		case core.Specialized:
			if s.spec[u] != noType && s.spec[u] != ty {
				continue
			}
		}
		xi := demand * s.in.Failures.Inflation(i, mu)
		newLoad := s.ev.MachinePeriod(mu) + xi*s.in.Platform.Time(i, mu)
		if newLoad >= s.bestPeriod {
			continue // this branch can only tie or worsen the incumbent
		}
		// Apply.
		prevSpec, prevUsed := s.spec[u], s.used[u]
		s.spec[u] = ty
		s.used[u] = true
		_ = s.ev.Assign(i, mu)

		s.dfs(k + 1)

		// Revert.
		s.ev.Unassign(i)
		s.spec[u], s.used[u] = prevSpec, prevUsed
		if s.stopped {
			return
		}
	}
}
