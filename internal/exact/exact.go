// Package exact solves small mapping instances to optimality by
// depth-first branch and bound over task-to-machine assignments. It is
// independent of the MIP path (package milp), so the two exact solvers
// cross-validate each other in tests; heuristics are benchmarked against
// either.
//
// The search walks tasks root-first (so x[i] is priced exactly as tasks are
// placed, exactly like the heuristics) and prunes a branch as soon as the
// maximum machine load reaches the incumbent period. Candidate pricing
// lives in a core.Evaluator, whose Assign/Unassign push/pop keeps the
// per-node cost at O(log m) instead of a full O(n·m) re-evaluation;
// per-machine loads are additionally kept in a snapshot/restore array so
// that every load is a pure function of the current partial assignment
// (bit-exact across search orders — see searcher.load).
//
// Two pruning rules shrink the tree beyond the incumbent test:
//
//   - A dominance rule breaks machine symmetry: machines with identical
//     execution-time and failure columns (w[·][u] == w[·][v] and
//     f[·][u] == f[·][v]) are interchangeable while both are still empty, so
//     at every node the search branches on only the first currently-empty
//     machine of each symmetry class (Options.DisableDominance ablates).
//   - An admissible per-node lower bound (bound.go): the cheapest possible
//     remaining work of the unplaced tasks, aggregated per machine count —
//     with a type-count water-filling refinement under the Specialized rule
//     — never exceeds the best completion of the node, so a node whose
//     bound reaches the incumbent is pruned without visiting its subtree
//     (Options.DisableBound ablates).
//
// Options.Workers > 1 runs the search as a parallel root split
// (parallel.go): the assignment frontier is enumerated to a small depth and
// the subtrees fan out over a worker pool sharing one atomic incumbent and
// one atomic node budget, each worker owning a cloned core.Evaluator.
// Proven results are byte-identical for any worker count; only Result.Nodes
// varies.
package exact

import (
	"errors"
	"fmt"
	"math"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// Options bounds the search.
type Options struct {
	// Rule defaults to Specialized.
	Rule core.Rule
	// MaxNodes caps explored partial assignments (0 = 50 million). The cap
	// is global: a parallel search shares one atomic node pool across its
	// workers, so Workers=N never explores more nodes than Workers=1.
	MaxNodes int64
	// TimeLimit stops the search (0 = none). On stop the best incumbent
	// so far is returned with Proven=false.
	TimeLimit time.Duration
	// Incumbent optionally warm-starts the bound.
	Incumbent *core.Mapping
	// DisableDominance turns the machine-symmetry dominance rule off
	// (identical w/f columns), for ablations and node-count tests. The
	// optimum is unaffected either way.
	DisableDominance bool
	// DisableBound turns the admissible per-node lower bound off, for
	// ablations and node-count tests. The optimum is unaffected either way.
	DisableBound bool
	// Workers fans the search out over a pool of goroutines via a root
	// split (0 or 1 = sequential; see parallel.go). Proven results are
	// byte-identical for any worker count. A search stopped by MaxNodes
	// keeps the global budget but may stop at a different incumbent than a
	// sequential run; a search stopped by TimeLimit is wall-clock-dependent
	// either way.
	Workers int
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 50_000_000
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// Result is the search outcome.
type Result struct {
	Mapping *core.Mapping
	Period  float64
	// Proven is true when the search space was exhausted.
	Proven bool
	Nodes  int64
}

// solver is the shared setup of one Solve call: the instance-wide
// read-only tables (task order, symmetry classes, bound ingredients), the
// global budget, and the warm-start incumbent. The sequential search runs
// one searcher over it; the parallel root split shares it across workers.
type solver struct {
	in      *core.Instance
	rule    core.Rule
	order   []app.TaskID
	classOf []int
	noSym   bool
	bnd     *bounder
	bud     *budget
	baseEv  *core.Evaluator

	warmPeriod float64
	warm       *core.Mapping
}

// searcher is one goroutine's search state. All fields are private to the
// owning goroutine; cross-worker coordination happens only through the
// shared budget and incumbent.
type searcher struct {
	in    *core.Instance
	rule  core.Rule
	order []app.TaskID
	m     int

	spec []app.TypeID // Specialized bookkeeping (-1 free)
	used []bool       // OneToOne bookkeeping
	ev   *core.Evaluator

	// Machine-symmetry dominance: classOf[u] indexes u's equal-column
	// class; nOn counts tasks per machine on the current search path.
	classOf []int
	nOn     []int
	noSym   bool

	// load[u] is the current period of machine u, maintained by saving the
	// touched machine's previous value in the recursion frame and restoring
	// it bit-exactly on unwind. Unlike the evaluator's compensated ledger
	// sums (whose last ulp depends on the charge/discharge history), these
	// loads are a pure function of the current partial assignment — the
	// property that makes parallel and sequential searches byte-identical.
	load []float64
	// frames backs push/pop prefix replays (parallel root split).
	frames []frame

	bnd *bounder // nil = bound pruning disabled
	// bound scratch (see lowerBound): demand lower bounds per order
	// position, per-type work, dedicated-machine counts, water-filling
	// allocation.
	dlb   []float64
	typeW []float64
	ded   []int
	alloc []int

	// shared is the cross-worker incumbent (nil in a sequential search).
	shared *incumbent

	best       *core.Mapping
	bestPeriod float64

	meter nodeMeter
}

// frame saves the bookkeeping a prefix replay overwrites.
type frame struct {
	spec app.TypeID
	used bool
	load float64
}

const noType app.TypeID = -1

// Solve finds an optimal mapping under the rule, or the best incumbent when
// a budget interrupts the search.
func Solve(in *core.Instance, opts Options) (*Result, error) {
	sv, err := newSolver(in, opts)
	if err != nil {
		return nil, err
	}
	if w := opts.workers(); w > 1 {
		return sv.solveParallel(w)
	}
	s := sv.newSearcher(nil)
	s.best = sv.warm
	s.bestPeriod = sv.warmPeriod
	s.dfs(0)
	s.meter.release()
	return sv.finish(s.best, s.bestPeriod)
}

// newSolver validates the instance and assembles the shared search setup.
func newSolver(in *core.Instance, opts Options) (*solver, error) {
	if in.N() == 0 {
		return nil, fmt.Errorf("exact: empty instance")
	}
	if opts.Rule == core.OneToOne && in.N() > in.M() {
		return nil, fmt.Errorf("exact: one-to-one impossible with n=%d > m=%d", in.N(), in.M())
	}
	sv := &solver{
		in:         in,
		rule:       opts.Rule,
		order:      in.App.ReverseTopological(),
		classOf:    machineClasses(in),
		noSym:      opts.DisableDominance,
		bud:        newBudget(opts),
		baseEv:     core.NewEvaluator(in),
		warmPeriod: math.Inf(1),
	}
	if !opts.DisableBound {
		sv.bnd = newBounder(in, sv.order)
	}
	if opts.Incumbent != nil {
		if err := opts.Incumbent.CheckRule(in.App, opts.Rule); err == nil {
			p, err := core.PeriodE(in, opts.Incumbent)
			switch {
			case err == nil:
				if p < sv.warmPeriod {
					sv.warmPeriod = p
					sv.warm = opts.Incumbent.Clone()
				}
			case errors.Is(err, core.ErrIncompleteMapping):
				// A partial incumbent cannot bound the search; ignore it.
			default:
				return nil, fmt.Errorf("exact: incumbent does not evaluate: %w", err)
			}
		}
	}
	return sv, nil
}

// finish packages a search outcome, mapping "nothing found" to the
// no-feasible-mapping error exactly like the pre-parallel solver did.
func (sv *solver) finish(best *core.Mapping, period float64) (*Result, error) {
	if best == nil {
		return nil, fmt.Errorf("exact: no feasible mapping under rule %v", sv.rule)
	}
	return &Result{
		Mapping: best,
		Period:  period,
		Proven:  !sv.bud.stop.Load(),
		Nodes:   sv.bud.reserved.Load(),
	}, nil
}

// newSearcher allocates one goroutine's search state over the solver's
// shared tables, cloning the base evaluator (workers never share one).
func (sv *solver) newSearcher(shared *incumbent) *searcher {
	n, m := sv.in.N(), sv.in.M()
	s := &searcher{
		in:         sv.in,
		rule:       sv.rule,
		order:      sv.order,
		m:          m,
		spec:       make([]app.TypeID, m),
		used:       make([]bool, m),
		ev:         sv.baseEv.Clone(),
		classOf:    sv.classOf,
		nOn:        make([]int, m),
		noSym:      sv.noSym,
		load:       make([]float64, m),
		frames:     make([]frame, n),
		bnd:        sv.bnd,
		shared:     shared,
		bestPeriod: math.Inf(1),
		meter:      nodeMeter{bud: sv.bud},
	}
	for u := range s.spec {
		s.spec[u] = noType
	}
	if s.bnd != nil {
		s.dlb = make([]float64, n)
		s.typeW = make([]float64, sv.in.P())
		s.ded = make([]int, sv.in.P())
		s.alloc = make([]int, sv.in.P())
	}
	return s
}

func (s *searcher) dfs(k int) {
	if !s.meter.step() {
		return
	}
	if k == len(s.order) {
		if p := s.maxLoad(); p < s.bestPeriod {
			s.bestPeriod = p
			s.best = s.ev.Mapping()
			if s.shared != nil {
				s.shared.offer(p, s.best)
			}
		}
		return
	}
	sharedP := math.Inf(1)
	if s.shared != nil {
		sharedP = s.shared.load()
	}
	if s.bnd != nil {
		// Prune strictly against the shared incumbent but non-strictly
		// against the local one: an optimal subtree (bound <= optimum <=
		// shared) is then never lost to another worker's find, which keeps
		// the parallel result deterministic (see parallel.go).
		if lb := s.lowerBound(k); lb >= s.bestPeriod || lb > sharedP {
			return
		}
	}
	i := s.order[k]
	ty := s.in.App.Type(i)
	// Root-first order guarantees i's demand is priced, so it is hoisted
	// out of the candidate loop.
	demand, _ := s.ev.Demand(i)
	for u := 0; u < s.m; u++ {
		mu := platform.MachineID(u)
		if !s.feasible(u, ty) || s.dominated(u) {
			continue
		}
		xi := demand * s.in.Failures.Inflation(i, mu)
		newLoad := s.load[u] + xi*s.in.Platform.Time(i, mu)
		if newLoad >= s.bestPeriod || newLoad > sharedP {
			continue // this branch can only tie or worsen the incumbent
		}
		// Apply.
		prevSpec, prevUsed, prevLoad := s.spec[u], s.used[u], s.load[u]
		s.spec[u] = ty
		s.used[u] = true
		s.nOn[u]++
		s.load[u] = newLoad
		_ = s.ev.Assign(i, mu)

		s.dfs(k + 1)

		// Revert (prevLoad restores the exact bits, keeping loads a pure
		// function of the partial assignment).
		s.ev.Unassign(i)
		s.load[u] = prevLoad
		s.nOn[u]--
		s.spec[u], s.used[u] = prevSpec, prevUsed
		if s.meter.stopped() {
			return
		}
	}
}

// feasible reports whether machine u may take a task of type ty under the
// rule, given the current dedications. The one candidate filter shared by
// the DFS, the frontier enumeration and the lower bound: the root split's
// subtrees partition exactly the node set a sequential search visits
// because all three call this same test.
func (s *searcher) feasible(u int, ty app.TypeID) bool {
	switch s.rule {
	case core.OneToOne:
		if s.used[u] {
			return false
		}
	case core.Specialized:
		if s.spec[u] != noType && s.spec[u] != ty {
			return false
		}
	}
	return true
}

// dominated reports whether branching on machine u is covered by an
// earlier machine: two still-empty machines with identical w/f columns are
// interchangeable, so branching on any but the first empty machine of a
// class can only revisit (a relabeling of) subtrees the first already
// covered. Emptiness is stable while a candidate loop iterates —
// recursions restore nOn before returning — so the "an earlier same-class
// machine is also empty" test is exact.
func (s *searcher) dominated(u int) bool {
	if s.noSym || s.nOn[u] != 0 {
		return false
	}
	for v := 0; v < u; v++ {
		if s.nOn[v] == 0 && s.classOf[v] == s.classOf[u] {
			return true
		}
	}
	return false
}

// maxLoad returns the current maximum machine load.
func (s *searcher) maxLoad() float64 {
	worst := 0.0
	for _, l := range s.load {
		if l > worst {
			worst = l
		}
	}
	return worst
}

// push replays a frontier prefix (machines for order[0..len(prefix))) onto
// the searcher. The load update mirrors the dfs expression term for term so
// replayed and descended states are bit-identical.
func (s *searcher) push(prefix []platform.MachineID) {
	for j, mu := range prefix {
		i := s.order[j]
		u := int(mu)
		s.frames[j] = frame{spec: s.spec[u], used: s.used[u], load: s.load[u]}
		demand, _ := s.ev.Demand(i)
		xi := demand * s.in.Failures.Inflation(i, mu)
		s.load[u] = s.load[u] + xi*s.in.Platform.Time(i, mu)
		s.spec[u] = s.in.App.Type(i)
		s.used[u] = true
		s.nOn[u]++
		_ = s.ev.Assign(i, mu)
	}
}

// pop reverts a push, restoring the saved bookkeeping bit-exactly.
func (s *searcher) pop(prefix []platform.MachineID) {
	for j := len(prefix) - 1; j >= 0; j-- {
		mu := prefix[j]
		u := int(mu)
		s.ev.Unassign(s.order[j])
		s.nOn[u]--
		f := s.frames[j]
		s.spec[u], s.used[u], s.load[u] = f.spec, f.used, f.load
	}
}

// machineClasses partitions the machines into symmetry classes: u and v
// share a class iff their execution-time and failure columns are
// identical across every task.
func machineClasses(in *core.Instance) []int {
	m := in.M()
	classOf := make([]int, m)
	var reps []platform.MachineID
	for u := 0; u < m; u++ {
		mu := platform.MachineID(u)
		assigned := false
		for c, rep := range reps {
			if machineColumnsEqual(in, mu, rep) {
				classOf[u] = c
				assigned = true
				break
			}
		}
		if !assigned {
			classOf[u] = len(reps)
			reps = append(reps, mu)
		}
	}
	return classOf
}

func machineColumnsEqual(in *core.Instance, u, v platform.MachineID) bool {
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		if in.Platform.Time(id, u) != in.Platform.Time(id, v) ||
			in.Failures.Rate(id, u) != in.Failures.Rate(id, v) {
			return false
		}
	}
	return true
}
