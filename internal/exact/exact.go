// Package exact solves small mapping instances to optimality by
// depth-first branch and bound over task-to-machine assignments. It is
// independent of the MIP path (package milp), so the two exact solvers
// cross-validate each other in tests; heuristics are benchmarked against
// either.
//
// The search walks tasks root-first (so x[i] is priced exactly as tasks are
// placed, exactly like the heuristics) and prunes a branch as soon as the
// maximum machine load reaches the incumbent period. Candidate pricing
// lives in a core.Pricer — the pricing-only evaluation mode built for
// exactly this access pattern: per-machine loads and the running maximum
// are maintained in O(1) per Assign/Unassign by saving and restoring the
// previous bits, so every load is a pure function of the current partial
// assignment (bit-exact across search orders — the property the parallel
// root split's determinism proof rests on) and the per-node cost carries
// none of the full Evaluator's ledger or tournament-tree machinery.
//
// Three pruning/ordering rules shrink the tree beyond the incumbent test:
//
//   - A dominance rule breaks machine symmetry: machines with identical
//     execution-time and failure columns (w[·][u] == w[·][v] and
//     f[·][u] == f[·][v]) are interchangeable while both are still empty, so
//     at every node the search branches on only the first currently-empty
//     machine of each symmetry class (Options.DisableDominance ablates).
//   - An admissible per-node lower bound (bound.go): the cheapest possible
//     remaining work of the unplaced tasks, aggregated per machine count —
//     with a type-count water-filling refinement under the Specialized rule
//     — never exceeds the best completion of the node, so a node whose
//     bound reaches the incumbent is pruned without visiting its subtree
//     (Options.DisableBound ablates).
//   - A best-first child order plus a greedy restart dive: before the
//     systematic pass, one un-metered greedy descent (take the feasible
//     machine with the smallest resulting load at every depth — the H4
//     greedy run inside the search's own pruning rules) seeds the
//     incumbent, so even a budget-starved cold search returns a
//     near-optimal mapping; the search itself then visits every node's
//     surviving children loaded-machines-first by ascending would-be load
//     (each child's load is an admissible bound on its subtree), deferring
//     the still-empty machines whose subtrees are refuted last. The order
//     is a pure function of the node, so it composes with the parallel
//     determinism argument below (Options.DisableOrder ablates;
//     Options.WarmStart additionally seeds the incumbent with the H4w
//     heuristic).
//
// Options.Workers > 1 runs the search as a parallel root split
// (parallel.go): the assignment frontier is enumerated to a small depth and
// the subtrees fan out over a worker pool sharing one atomic incumbent and
// one atomic node budget, each worker owning a private core.Pricer.
// Proven results are byte-identical for any worker count; only Result.Nodes
// varies.
package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/heuristics"
	"microfab/internal/platform"
)

// Typed request-facing errors. A long-lived caller (the serve daemon) keys
// its status codes off these with errors.Is, so Solve never signals a
// malformed or exhausted request through a bare formatted string — and
// never through a nil mapping with a nil error.
var (
	// ErrBadBudget rejects a negative node budget, time limit or worker
	// count before the search starts.
	ErrBadBudget = errors.New("negative budget")
	// ErrInfeasible means the search space was exhausted without finding
	// any rule-feasible mapping: the instance itself admits none.
	ErrInfeasible = errors.New("no feasible mapping")
	// ErrBudgetExhausted means the budget (nodes, deadline or context)
	// stopped the search before any feasible mapping was found. A warm
	// start or the greedy restart dive almost always provides an incumbent,
	// so this surfaces only on searches that were both cold and starved.
	ErrBudgetExhausted = errors.New("budget exhausted before any feasible mapping")
)

// Options bounds the search.
type Options struct {
	// Rule defaults to Specialized.
	Rule core.Rule
	// Ctx cancels the search (nil = never). Workers observe cancellation
	// when they reserve their next node batch from the shared budget, so a
	// cancelled search stops within nodeBatch nodes per worker and returns
	// its best incumbent with Proven=false.
	Ctx context.Context
	// OnImprove, when non-nil, is invoked every time the best-known
	// complete solution improves — the serving layer streams incumbents to
	// clients through it. It is called under an internal lock (keep it
	// cheap and non-blocking) and the mapping must not be mutated. The
	// callback does not fire for the initial warm start; read that off the
	// final Result (or pre-compute it) instead. The streamed period is the
	// search's own price of the mapping, which can differ from the
	// Evaluate-normalised Result.Period in the last ulp. Enabling the
	// callback never changes the nodes explored or the result.
	OnImprove func(period float64, m *core.Mapping)
	// BoundInjector, when non-nil, is called once at search start with an
	// inject function. Calling inject(p) from any goroutine while the
	// search runs lowers the shared pruning bound to p when p improves on
	// it — the lever a distributed coordinator uses to feed one worker's
	// incumbent into another worker's running search (incumbent exchange).
	// The search prunes strictly (>) against injected bounds, so any p
	// that is the period of some feasible mapping of the instance — i.e.
	// an upper bound on the optimum — never prunes away an optimal
	// subtree: proven results are unchanged by injection, only the node
	// count shrinks. Injecting a value below the optimum voids that
	// guarantee.
	BoundInjector func(inject func(period float64))
	// MaxNodes caps explored partial assignments (0 = 50 million). The cap
	// is global: a parallel search shares one atomic node pool across its
	// workers, so Workers=N never explores more nodes than Workers=1.
	MaxNodes int64
	// TimeLimit stops the search (0 = none). On stop the best incumbent
	// so far is returned with Proven=false.
	TimeLimit time.Duration
	// Incumbent optionally warm-starts the bound.
	Incumbent *core.Mapping
	// WarmStart seeds the incumbent with the H4w heuristic when its
	// mapping satisfies the rule (it always does under Specialized and
	// General), so a budgeted cold search returns a near-optimal
	// incumbent even when interrupted early. Composes with Incumbent:
	// the better of the two bounds the search.
	WarmStart bool
	// DisableDominance turns the machine-symmetry dominance rule off
	// (identical w/f columns), for ablations and node-count tests. The
	// optimum is unaffected either way.
	DisableDominance bool
	// DisableBound turns the admissible per-node lower bound off, for
	// ablations and node-count tests. The optimum is unaffected either way.
	DisableBound bool
	// DisableAssignBound turns the bottleneck-assignment relaxation tier
	// off (relax.go), leaving the combinatorial bound (and the LP tier)
	// alone, for ablations. The optimum is unaffected either way.
	DisableAssignBound bool
	// DisableLPBound turns the LP relaxation tier off (relax.go), for
	// ablations. The optimum is unaffected either way.
	DisableLPBound bool
	// DisableIncrementalBound makes every node recompute the lower bound's
	// demand and landing ingredients from scratch instead of maintaining
	// them as deltas under each assign/unassign (bound.go). The search is
	// node-for-node identical either way — the incremental state reproduces
	// the from-scratch values bit for bit — so this exists purely as the
	// ablation lever and the differential-test oracle.
	DisableIncrementalBound bool
	// DisableOrder turns the best-first child order and the greedy restart
	// dive off — children branch in ascending machine order like the
	// pre-ordering solver and the first incumbent is whatever the first
	// DFS leaf happens to be — for ablations and node-count tests. The
	// optimum is unaffected either way.
	DisableOrder bool
	// Workers fans the search out over a pool of goroutines via a root
	// split (0 or 1 = sequential; see parallel.go). Proven results are
	// byte-identical for any worker count. A search stopped by MaxNodes
	// keeps the global budget but may stop at a different incumbent than a
	// sequential run; a search stopped by TimeLimit is wall-clock-dependent
	// either way.
	Workers int
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 50_000_000
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// Result is the search outcome.
type Result struct {
	Mapping *core.Mapping
	Period  float64
	// Proven is true when the search space was exhausted.
	Proven bool
	Nodes  int64
}

// solver is the shared setup of one Solve call: the instance-wide
// read-only tables (task order, symmetry classes, bound ingredients), the
// global budget, and the warm-start incumbent. The sequential search runs
// one searcher over it; the parallel root split shares it across workers.
type solver struct {
	in       *core.Instance
	rule     core.Rule
	order    []app.TaskID
	classOf  []int
	noSym    bool
	noOrder  bool
	noAssign bool
	noLP     bool
	noInc    bool
	bnd      *bounder
	bud      *budget

	onImprove func(float64, *core.Mapping)
	injector  func(inject func(float64))

	warmPeriod float64
	warm       *core.Mapping

	// spare is the greedy dive's searcher, unwound to pristine and donated
	// to the next makeSearcher call (always on the constructing goroutine —
	// the dive and the enum/sequential searcher both precede any worker).
	spare *searcher
}

// searcher is one goroutine's search state. All fields are private to the
// owning goroutine; cross-worker coordination happens only through the
// shared budget and incumbent.
type searcher struct {
	in    *core.Instance
	rule  core.Rule
	order []app.TaskID
	m     int

	spec []app.TypeID // Specialized bookkeeping (-1 free)
	used []bool       // OneToOne bookkeeping

	// pr prices the partial assignment: per-machine loads and the running
	// maximum, O(1) per push/pop, every value a pure function of the
	// current partial assignment (bit-exact across search orders — the
	// property that makes parallel and sequential searches byte-identical).
	pr *core.Pricer

	// Machine-symmetry dominance: classOf[u] indexes u's equal-column
	// class; nOn counts tasks per machine on the current search path;
	// firstEmpty[c] is the smallest still-empty machine of class c (m when
	// none), maintained by occupy/vacate so the dominance test is O(1).
	classOf    []int
	nOn        []int
	firstEmpty []int
	noSym      bool

	// cand backs the per-depth child gathering (depth k owns the slice
	// cand[k·m : (k+1)·m]); noOrder ablates the best-first sort.
	cand    []childCand
	noOrder bool

	// land is the batch-pricing scratch: one PriceAllAt pass per node fills
	// it with the would-be load of every landing, replacing m per-machine
	// Trial expressions. Transient within one gather/bound step.
	land []float64

	// frames backs push/pop prefix replays (parallel root split).
	frames []frame

	bnd *bounder // nil = bound pruning disabled
	// bound scratch (see lowerBound): demand lower bounds per order
	// position, per-type work, dedicated-machine counts, water-filling
	// allocation.
	dlb   []float64
	typeW []float64
	ded   []int
	alloc []int

	// minLand/landArg record, per order position, each unplaced task's
	// cheapest feasible landing and the machine attaining it (-1 none).
	// In the default incremental mode (inc) they are allocated up front and
	// maintained as deltas alongside dlb (bound.go); in the from-scratch
	// ablation they are filled by lowerBound's main loop and allocated only
	// when the relaxation tiers — whose collision gate and representative
	// choice read them instead of re-pricing (relax.go) — come live.
	minLand []float64
	landArg []int

	// Incremental bound state (bound.go): when inc is set, dlb, minLand and
	// landArg are maintained under every assign/unassign instead of being
	// rederived per node. ibPendK/ibPendU/ibNPend defer the per-assign delta
	// sweep until a bound walk actually reads the cache, so assigns whose
	// frame never computes a bound (leaves, max-load prunes) cost O(1).
	// ibLog/ibMark give the cached arrays the same save-and-restore LIFO
	// discipline the Pricer gives its loads; ibStale marks positions whose
	// landing must be re-priced before it is trusted (re-priced lazily,
	// inside lowerBound, so early-pruned nodes never pay for it);
	// ibStamp/ibGen mark the positions whose dlb changed during one delta
	// sweep; ibPos/ibTasks/ibDem/ibOut are the fused-rescan scratch handed
	// to Pricer.PriceAllMulti.
	// ibLogStamp/ibPrevGen/ibOpenGen dedup the log to one entry per
	// (frame, position): the first mutation in a frame logs the pre-frame
	// tuple, later ones in the same frame restore through it for free.
	inc        bool
	ibLog      []ibEntry
	ibMark     []int
	ibStale    []bool
	ibStamp    []int
	ibGen      int
	ibLogStamp []int
	ibPrevGen  []int
	ibOpenGen  int
	ibPendK    []int
	ibPendU    []int
	ibNPend    int
	ibPos      []int
	ibTasks    []app.TaskID
	ibDem      []float64
	ibOut      []float64

	// rx holds the relaxation tiers' workspaces and gate state (relax.go).
	// It is built lazily, on the first bound computed past the relaxWarmup
	// node count, so easy searches never pay for it; relaxEnabled says
	// whether it ever will be (bound on, at least one tier not ablated).
	rx           *relaxer
	relaxEnabled bool
	noAssign     bool
	noLP         bool

	// shared is the cross-worker incumbent (nil in a sequential search).
	shared *incumbent

	best       *core.Mapping
	bestPeriod float64

	meter nodeMeter
}

// childCand is one surviving child of a node: the machine, the load it
// would reach (an admissible bound on the child's whole subtree, re-tested
// against the incumbents at visit time), and whether the machine is still
// empty — the two-level sort key of the best-first order.
type childCand struct {
	load  float64
	u     platform.MachineID
	empty bool
}

// candBefore orders children for the best-first visit: loaded machines
// before still-empty ones (opening a machine commits structure the
// incumbent test refutes slowest, so those subtrees go last), then by
// ascending would-be load; ties keep the ascending-machine gather order
// (strict comparisons, stable insertion sort).
func candBefore(a, b childCand) bool {
	if a.empty != b.empty {
		return !a.empty
	}
	return a.load < b.load
}

// frame saves the rule bookkeeping a prefix replay overwrites (the pricer
// restores its own loads).
type frame struct {
	spec app.TypeID
	used bool
}

const noType app.TypeID = -1

// Solve finds an optimal mapping under the rule, or the best incumbent when
// a budget interrupts the search.
func Solve(in *core.Instance, opts Options) (*Result, error) {
	sv, err := newSolver(in, opts)
	if err != nil {
		return nil, err
	}
	if w := opts.workers(); w > 1 {
		return sv.solveParallel(w)
	}
	// A sequential search with an OnImprove callback or a bound injector
	// routes improvements through a (single-owner) shared incumbent.
	// Without injection its period always equals the searcher's local
	// best, so every pruning test fires exactly as it would without the
	// callback: the node set is unchanged.
	var shared *incumbent
	if sv.onImprove != nil || sv.injector != nil {
		shared = sv.newShared()
	}
	s := sv.newSearcher(shared)
	s.best = sv.warm
	s.bestPeriod = sv.warmPeriod
	s.dfs(0)
	s.meter.release()
	return sv.finish(s.best, s.bestPeriod)
}

// newSolver validates the instance and assembles the shared search setup.
func newSolver(in *core.Instance, opts Options) (*solver, error) {
	if in.N() == 0 {
		return nil, fmt.Errorf("exact: empty instance")
	}
	if opts.MaxNodes < 0 || opts.TimeLimit < 0 || opts.Workers < 0 {
		return nil, fmt.Errorf("exact: %w (MaxNodes=%d, TimeLimit=%v, Workers=%d)",
			ErrBadBudget, opts.MaxNodes, opts.TimeLimit, opts.Workers)
	}
	if opts.Rule == core.OneToOne && in.N() > in.M() {
		return nil, fmt.Errorf("exact: %w: one-to-one impossible with n=%d > m=%d", ErrInfeasible, in.N(), in.M())
	}
	sv := &solver{
		in:         in,
		rule:       opts.Rule,
		order:      in.App.ReverseTopological(),
		classOf:    machineClasses(in),
		noSym:      opts.DisableDominance,
		noOrder:    opts.DisableOrder,
		noAssign:   opts.DisableAssignBound,
		noLP:       opts.DisableLPBound,
		noInc:      opts.DisableIncrementalBound,
		bud:        newBudget(opts),
		onImprove:  opts.OnImprove,
		injector:   opts.BoundInjector,
		warmPeriod: math.Inf(1),
	}
	if !opts.DisableBound {
		sv.bnd = newBounder(in, sv.order)
	}
	if !sv.noInc && !incBoundForce && !incBoundAuto(in, sv.order) {
		// The structure says delta maintenance will not pay for itself
		// here; both modes are bit-identical, so this only picks the
		// faster path.
		sv.noInc = true
	}
	if opts.Incumbent != nil {
		if err := opts.Incumbent.CheckRule(in.App, opts.Rule); err == nil {
			p, err := core.PeriodE(in, opts.Incumbent)
			switch {
			case err == nil:
				if p < sv.warmPeriod {
					sv.warmPeriod = p
					sv.warm = opts.Incumbent.Clone()
				}
			case errors.Is(err, core.ErrIncompleteMapping):
				// A partial incumbent cannot bound the search; ignore it.
			default:
				return nil, fmt.Errorf("exact: incumbent does not evaluate: %w", err)
			}
		}
	}
	if opts.WarmStart {
		// H4w is deterministic (its rng parameter is unused) and produces
		// Specialized mappings, valid under General too; under OneToOne it
		// usually fails CheckRule and is skipped. A heuristic failure just
		// means no free warm start.
		if wm, err := heuristics.H4w(in, nil, heuristics.Options{}); err == nil &&
			wm.CheckRule(in.App, opts.Rule) == nil {
			if p, err := core.PeriodE(in, wm); err == nil && p < sv.warmPeriod {
				sv.warmPeriod = p
				sv.warm = wm
			}
		}
	}
	if !opts.DisableOrder {
		sv.greedyDive()
	}
	return sv, nil
}

// greedyDive descends once from the root, taking at every depth the
// feasible, non-dominated machine with the smallest resulting load — the
// H4 greedy executed inside the search's own pruning rules — and seeds the
// incumbent with the leaf when it beats the current warm start. The dive
// is the restart component of the node order: even a budget-starved cold
// search returns its near-optimal mapping, and the systematic pass starts
// with a tight bound. It is un-metered (n pricer steps, like evaluating an
// explicit Incumbent) and a pure function of the instance, so every worker
// count sees the same seed and the parallel byte-identity is preserved. A
// dead end (a task with no feasible machine mid-dive) just means no free
// incumbent.
func (sv *solver) greedyDive() {
	s := sv.makeSearcher(nil, false)
	defer func() {
		// Unwind to pristine (wholesale — the dive is this searcher's only
		// user so far) and donate the allocations to the next makeSearcher.
		s.pr.Reset()
		for u := 0; u < s.m; u++ {
			s.spec[u] = noType
			s.used[u] = false
			s.nOn[u] = 0
		}
		for c := range s.firstEmpty {
			s.firstEmpty[c] = s.m
		}
		for u := s.m - 1; u >= 0; u-- {
			s.firstEmpty[s.classOf[u]] = u
		}
		sv.spare = s
	}()
	for k := range s.order {
		i := s.order[k]
		ty := s.in.App.Type(i)
		demand, _ := s.pr.Demand(i)
		s.pr.PriceAllAt(i, demand, s.land)
		best, bestLoad := -1, math.Inf(1)
		for u := 0; u < s.m; u++ {
			if !s.feasible(u, ty) || s.dominated(u) {
				continue
			}
			if newLoad := s.land[u]; newLoad < bestLoad {
				best, bestLoad = u, newLoad
			}
		}
		if best < 0 {
			return
		}
		s.spec[best] = ty
		s.used[best] = true
		s.occupy(best)
		_ = s.pr.Assign(i, platform.MachineID(best))
	}
	if p := s.pr.Max(); p < sv.warmPeriod {
		sv.warmPeriod = p
		sv.warm = s.pr.Mapping()
	}
}

// finish packages a search outcome. "Nothing found" splits by cause: a
// stopped search was starved (ErrBudgetExhausted — the space may well hold
// a solution), an exhausted one proved there is none (ErrInfeasible).
// Either way the error is typed and the mapping nil — never nil/nil.
func (sv *solver) finish(best *core.Mapping, period float64) (*Result, error) {
	if best == nil {
		if sv.bud.stop.Load() {
			return nil, fmt.Errorf("exact: %w under rule %v", ErrBudgetExhausted, sv.rule)
		}
		return nil, fmt.Errorf("exact: %w under rule %v", ErrInfeasible, sv.rule)
	}
	// Normalise the reported period through the canonical evaluation.
	// The search prices through core.Pricer's plain sums (bit-exact
	// backtracking); core.Evaluate's compensated ledger can differ from
	// them in the last ulp on some mappings. Result.Period must be THE
	// period of Result.Mapping — the number core.Evaluate returns — or a
	// budget-stopped run could report a period its own mapping does not
	// reprice to. One O(n) evaluation at the end; the search-internal
	// prices (pruning, OnImprove) stay pure Pricer values.
	return &Result{
		Mapping: best,
		Period:  core.Period(sv.in, best),
		Proven:  !sv.bud.stop.Load(),
		Nodes:   sv.bud.reserved.Load(),
	}, nil
}

// newShared builds the solver's cross-worker incumbent, wiring the
// OnImprove stream and handing the external-bound injector its lever.
func (sv *solver) newShared() *incumbent {
	shared := newIncumbent(sv.warmPeriod, sv.warm)
	shared.onImprove = sv.onImprove
	if sv.injector != nil {
		sv.injector(shared.injectBound)
	}
	return shared
}

// newSearcher allocates one goroutine's search state over the solver's
// shared tables, with a private pricer (workers never share one).
func (sv *solver) newSearcher(shared *incumbent) *searcher {
	return sv.makeSearcher(shared, true)
}

// makeSearcher builds a searcher; bound=false is the stripped variant
// greedyDive uses — the dive never computes lowerBound, so it skips the
// bound scratch and the incremental engine's init fill, which would
// otherwise run on every Solve (the dive runs unconditionally). The dive
// donates its pristine searcher back through sv.spare, so a sequential
// Solve builds the rule/pricer state once, not twice; spare handoff is
// single-goroutine (dive, then the enum/sequential searcher — both before
// any worker goroutine starts).
func (sv *solver) makeSearcher(shared *incumbent, bound bool) *searcher {
	n, m := sv.in.N(), sv.in.M()
	s := sv.spare
	if s != nil {
		sv.spare = nil
		s.shared = shared
	} else {
		s = &searcher{
			in:         sv.in,
			rule:       sv.rule,
			order:      sv.order,
			m:          m,
			spec:       make([]app.TypeID, m),
			used:       make([]bool, m),
			pr:         core.NewPricer(sv.in),
			classOf:    sv.classOf,
			noSym:      sv.noSym,
			cand:       make([]childCand, n*m),
			noOrder:    sv.noOrder,
			land:       make([]float64, m),
			frames:     make([]frame, n),
			shared:     shared,
			bestPeriod: math.Inf(1),
			meter:      nodeMeter{bud: sv.bud},
		}
		ints := make([]int, 2*m)
		s.nOn, s.firstEmpty = ints[:m:m], ints[m:]
		for u := range s.spec {
			s.spec[u] = noType
		}
		for c := range s.firstEmpty {
			s.firstEmpty[c] = m
		}
		for u := m - 1; u >= 0; u-- {
			s.firstEmpty[s.classOf[u]] = u // all machines start empty
		}
	}
	if !bound {
		return s
	}
	if s.bnd = sv.bnd; s.bnd != nil {
		p := sv.in.P()
		if !(sv.noAssign && sv.noLP) {
			s.relaxEnabled = true
			s.noAssign, s.noLP = sv.noAssign, sv.noLP
		}
		if !sv.noInc {
			s.inc = true
			// Typical logs stay small (one deduped entry per frame and
			// position, and demand propagation usually fizzles fast); let
			// append grow the rare deep search instead of zeroing an n²
			// slab on every searcher build.
			s.ibLog = make([]ibEntry, 0, 4*n)
			ints := make([]int, 8*n+2*p) // one allocation for the ten int arrays
			s.landArg, ints = ints[:n:n], ints[n:]
			s.ibMark, ints = ints[:n:n], ints[n:]
			s.ibStamp, ints = ints[:n:n], ints[n:]
			s.ibLogStamp, ints = ints[:n:n], ints[n:]
			s.ibPrevGen, ints = ints[:n:n], ints[n:]
			s.ibPendK, ints = ints[:n:n], ints[n:]
			s.ibPendU, ints = ints[:n:n], ints[n:]
			s.ibPos, ints = ints[:n:n], ints[n:]
			s.ded, ints = ints[:p:p], ints[p:]
			s.alloc = ints
			floats := make([]float64, 3*n+n*m+p)
			s.dlb, floats = floats[:n:n], floats[n:]
			s.minLand, floats = floats[:n:n], floats[n:]
			s.ibDem, floats = floats[:n:n], floats[n:]
			s.ibOut, floats = floats[:n*m:n*m], floats[n*m:]
			s.typeW = floats
			s.ibStale = make([]bool, n)
			s.ibTasks = make([]app.TaskID, n)
			s.initIncBound()
		} else {
			ints := make([]int, 2*p)
			s.ded, s.alloc = ints[:p:p], ints[p:]
			floats := make([]float64, n+p)
			s.dlb, s.typeW = floats[:n:n], floats[n:]
		}
	}
	return s
}

func (s *searcher) dfs(k int) {
	if !s.meter.step() {
		return
	}
	if k == len(s.order) {
		if p := s.pr.Max(); p < s.bestPeriod {
			s.bestPeriod = p
			s.best = s.pr.Mapping()
			if s.shared != nil {
				s.shared.offer(p, s.best)
			}
		}
		return
	}
	sharedP := math.Inf(1)
	if s.shared != nil {
		sharedP = s.shared.load()
	}
	if s.bnd != nil {
		// Prune strictly against the shared incumbent but non-strictly
		// against the local one: an optimal subtree (bound <= optimum <=
		// shared) is then never lost to another worker's find, which keeps
		// the parallel result deterministic (see parallel.go).
		if lb := s.lowerBound(k, s.bestPeriod, sharedP); lb >= s.bestPeriod || lb > sharedP {
			return
		}
	}
	i := s.order[k]
	ty := s.in.App.Type(i)
	for _, c := range s.children(k, sharedP) {
		// Re-test against the local incumbent, which may have improved
		// since the gather while earlier children explored their subtrees.
		if c.load >= s.bestPeriod || c.load > sharedP {
			continue
		}
		// Apply.
		prevSpec, prevUsed := s.spec[c.u], s.used[c.u]
		s.spec[c.u] = ty
		s.used[c.u] = true
		s.occupy(int(c.u))
		_ = s.pr.Assign(i, c.u)
		if s.inc {
			// After the pricer and the rule bookkeeping: the delta sweep
			// reads the new x[i], load and feasibility (bound.go).
			s.ibAssign(k, int(c.u))
		}

		s.dfs(k + 1)

		// Revert (the pricer restores the load and maximum bits itself).
		s.pr.Unassign(i)
		if s.inc {
			s.ibUnassign(k)
		}
		s.vacate(int(c.u))
		s.spec[c.u], s.used[c.u] = prevSpec, prevUsed
		if s.meter.stopped() {
			return
		}
	}
}

// children gathers the surviving child machines of the node at depth k
// into the depth's scratch slice, in exactly the order dfs visits them:
// feasible, non-dominated, below both incumbents, sorted by would-be load
// ascending (machine id breaking ties) unless DisableOrder keeps the
// legacy ascending-machine order. The gather and the sort key are pure
// functions of the node state, so replayed and descended nodes enumerate
// identically — the frontier split (parallel.go expand) calls this same
// helper, which is what keeps its subtrees a partition of the sequential
// node set.
func (s *searcher) children(k int, sharedP float64) []childCand {
	i := s.order[k]
	ty := s.in.App.Type(i)
	// Root-first order guarantees i's demand is priced, so all m landings
	// are priced in one structure-of-arrays pass; the batch result is
	// bit-equal to the per-machine expression the gather used to inline.
	demand, _ := s.pr.Demand(i)
	s.pr.PriceAllAt(i, demand, s.land)
	cands := s.cand[k*s.m : k*s.m : (k+1)*s.m]
	for u := 0; u < s.m; u++ {
		if !s.feasible(u, ty) || s.dominated(u) {
			continue
		}
		newLoad := s.land[u]
		if newLoad >= s.bestPeriod || newLoad > sharedP {
			continue // this branch can only tie or worsen the incumbent
		}
		cands = append(cands, childCand{load: newLoad, u: platform.MachineID(u), empty: s.nOn[u] == 0})
	}
	if !s.noOrder && len(cands) > 1 {
		// Insertion sort: m is small and the slice is short.
		for a := 1; a < len(cands); a++ {
			c := cands[a]
			b := a - 1
			for b >= 0 && candBefore(c, cands[b]) {
				cands[b+1] = cands[b]
				b--
			}
			cands[b+1] = c
		}
	}
	return cands
}

// feasible reports whether machine u may take a task of type ty under the
// rule, given the current dedications. The one candidate filter shared by
// the DFS, the frontier enumeration and the lower bound: the root split's
// subtrees partition exactly the node set a sequential search visits
// because all three call this same test.
func (s *searcher) feasible(u int, ty app.TypeID) bool {
	switch s.rule {
	case core.OneToOne:
		if s.used[u] {
			return false
		}
	case core.Specialized:
		if s.spec[u] != noType && s.spec[u] != ty {
			return false
		}
	}
	return true
}

// dominated reports whether branching on machine u is covered by an
// earlier machine: two still-empty machines with identical w/f columns are
// interchangeable, so branching on any but the first empty machine of a
// class can only revisit (a relabeling of) subtrees the first already
// covered. Emptiness is stable while a candidate loop iterates —
// recursions restore nOn before returning — and firstEmpty makes the
// "an earlier same-class machine is also empty" test O(1).
func (s *searcher) dominated(u int) bool {
	if s.noSym || s.nOn[u] != 0 {
		return false
	}
	return s.firstEmpty[s.classOf[u]] != u
}

// occupy counts one more task onto machine u, maintaining the first-empty
// index of u's symmetry class: when the class's smallest empty machine
// fills up, the next one is found by a forward scan (later machines only —
// u was the smallest). firstEmpty is a pure function of nOn, so balanced
// occupy/vacate pairs restore it exactly.
func (s *searcher) occupy(u int) {
	s.nOn[u]++
	if s.nOn[u] == 1 {
		c := s.classOf[u]
		if s.firstEmpty[c] == u {
			fe := s.m
			for v := u + 1; v < s.m; v++ {
				if s.nOn[v] == 0 && s.classOf[v] == c {
					fe = v
					break
				}
			}
			s.firstEmpty[c] = fe
		}
	}
}

// vacate undoes one occupy of machine u.
func (s *searcher) vacate(u int) {
	s.nOn[u]--
	if s.nOn[u] == 0 {
		c := s.classOf[u]
		if u < s.firstEmpty[c] {
			s.firstEmpty[c] = u
		}
	}
}

// push replays a frontier prefix (machines for order[0..len(prefix))) onto
// the searcher. The pricer's Assign computes the same load expression the
// dfs gather does, term for term, so replayed and descended states are
// bit-identical.
func (s *searcher) push(prefix []platform.MachineID) {
	for j, mu := range prefix {
		i := s.order[j]
		u := int(mu)
		s.frames[j] = frame{spec: s.spec[u], used: s.used[u]}
		s.spec[u] = s.in.App.Type(i)
		s.used[u] = true
		s.occupy(u)
		_ = s.pr.Assign(i, mu)
		if s.inc {
			s.ibAssign(j, u)
		}
	}
}

// pop reverts a push, restoring the saved bookkeeping bit-exactly.
func (s *searcher) pop(prefix []platform.MachineID) {
	for j := len(prefix) - 1; j >= 0; j-- {
		mu := prefix[j]
		u := int(mu)
		s.pr.Unassign(s.order[j])
		if s.inc {
			s.ibUnassign(j)
		}
		s.vacate(u)
		f := s.frames[j]
		s.spec[u], s.used[u] = f.spec, f.used
	}
}

// machineClasses partitions the machines into symmetry classes: u and v
// share a class iff their execution-time and failure columns are
// identical across every task.
func machineClasses(in *core.Instance) []int {
	m := in.M()
	classOf := make([]int, m)
	var reps []platform.MachineID
	for u := 0; u < m; u++ {
		mu := platform.MachineID(u)
		assigned := false
		for c, rep := range reps {
			if machineColumnsEqual(in, mu, rep) {
				classOf[u] = c
				assigned = true
				break
			}
		}
		if !assigned {
			classOf[u] = len(reps)
			reps = append(reps, mu)
		}
	}
	return classOf
}

func machineColumnsEqual(in *core.Instance, u, v platform.MachineID) bool {
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		if in.Platform.Time(id, u) != in.Platform.Time(id, v) ||
			in.Failures.Rate(id, u) != in.Failures.Rate(id, v) {
			return false
		}
	}
	return true
}
