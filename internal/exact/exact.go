// Package exact solves small mapping instances to optimality by
// depth-first branch and bound over task-to-machine assignments. It is
// independent of the MIP path (package milp), so the two exact solvers
// cross-validate each other in tests; heuristics are benchmarked against
// either.
//
// The search walks tasks root-first (so x[i] is priced exactly as tasks are
// placed, exactly like the heuristics) and prunes a branch as soon as the
// maximum machine load reaches the incumbent period. Worst-case cost is
// m^n; with pruning it handles the paper's MIP-scale instances
// (n <= 15, m <= 9) comfortably.
package exact

import (
	"fmt"
	"math"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// Options bounds the search.
type Options struct {
	// Rule defaults to Specialized.
	Rule core.Rule
	// MaxNodes caps explored partial assignments (0 = 50 million).
	MaxNodes int64
	// TimeLimit stops the search (0 = none). On stop the best incumbent
	// so far is returned with Proven=false.
	TimeLimit time.Duration
	// Incumbent optionally warm-starts the bound.
	Incumbent *core.Mapping
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 50_000_000
}

// Result is the search outcome.
type Result struct {
	Mapping *core.Mapping
	Period  float64
	// Proven is true when the search space was exhausted.
	Proven bool
	Nodes  int64
}

type searcher struct {
	in    *core.Instance
	rule  core.Rule
	order []app.TaskID
	m     int

	spec   []app.TypeID // Specialized bookkeeping (-1 free)
	used   []bool       // OneToOne bookkeeping
	load   []float64
	x      []float64
	assign []platform.MachineID

	best       *core.Mapping
	bestPeriod float64
	nodes      int64
	maxNodes   int64
	deadline   time.Time
	stopped    bool
}

const noType app.TypeID = -1

// Solve finds an optimal mapping under the rule, or the best incumbent when
// a budget interrupts the search.
func Solve(in *core.Instance, opts Options) (*Result, error) {
	if in.N() == 0 {
		return nil, fmt.Errorf("exact: empty instance")
	}
	if opts.Rule == core.OneToOne && in.N() > in.M() {
		return nil, fmt.Errorf("exact: one-to-one impossible with n=%d > m=%d", in.N(), in.M())
	}
	s := &searcher{
		in:         in,
		rule:       opts.Rule,
		order:      in.App.ReverseTopological(),
		m:          in.M(),
		spec:       make([]app.TypeID, in.M()),
		used:       make([]bool, in.M()),
		load:       make([]float64, in.M()),
		x:          make([]float64, in.N()),
		assign:     make([]platform.MachineID, in.N()),
		bestPeriod: math.Inf(1),
		maxNodes:   opts.maxNodes(),
	}
	for u := range s.spec {
		s.spec[u] = noType
	}
	for i := range s.assign {
		s.assign[i] = platform.NoMachine
	}
	if opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(opts.TimeLimit)
	}
	if opts.Incumbent != nil {
		if err := opts.Incumbent.CheckRule(in.App, opts.Rule); err == nil {
			if p := core.Period(in, opts.Incumbent); p < s.bestPeriod {
				s.bestPeriod = p
				s.best = opts.Incumbent.Clone()
			}
		}
	}
	s.dfs(0, 0)
	if s.best == nil {
		return nil, fmt.Errorf("exact: no feasible mapping under rule %v", opts.Rule)
	}
	return &Result{
		Mapping: s.best,
		Period:  s.bestPeriod,
		Proven:  !s.stopped,
		Nodes:   s.nodes,
	}, nil
}

func (s *searcher) dfs(k int, maxLoad float64) {
	if s.stopped {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes || (!s.deadline.IsZero() && s.nodes%4096 == 0 && time.Now().After(s.deadline)) {
		s.stopped = true
		return
	}
	if k == len(s.order) {
		if maxLoad < s.bestPeriod {
			s.bestPeriod = maxLoad
			s.best = core.FromSlice(s.assign)
		}
		return
	}
	i := s.order[k]
	ty := s.in.App.Type(i)
	demand := 1.0
	if succ := s.in.App.Successor(i); succ != app.NoTask {
		demand = s.x[succ]
	}
	// Symmetry note: free machines are NOT interchangeable (heterogeneous
	// w and f), so all are tried.
	for u := 0; u < s.m; u++ {
		mu := platform.MachineID(u)
		switch s.rule {
		case core.OneToOne:
			if s.used[u] {
				continue
			}
		case core.Specialized:
			if s.spec[u] != noType && s.spec[u] != ty {
				continue
			}
		}
		xi := demand * s.in.Failures.Inflation(i, mu)
		add := xi * s.in.Platform.Time(i, mu)
		newLoad := s.load[u] + add
		if newLoad >= s.bestPeriod {
			continue // this branch can only tie or worsen the incumbent
		}
		worst := maxLoad
		if newLoad > worst {
			worst = newLoad
		}
		// Apply.
		prevSpec, prevUsed := s.spec[u], s.used[u]
		s.spec[u] = ty
		s.used[u] = true
		s.load[u] = newLoad
		s.x[i] = xi
		s.assign[i] = mu

		s.dfs(k+1, worst)

		// Revert.
		s.spec[u], s.used[u] = prevSpec, prevUsed
		s.load[u] = newLoad - add
		s.assign[i] = platform.NoMachine
		if s.stopped {
			return
		}
	}
}
