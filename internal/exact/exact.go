// Package exact solves small mapping instances to optimality by
// depth-first branch and bound over task-to-machine assignments. It is
// independent of the MIP path (package milp), so the two exact solvers
// cross-validate each other in tests; heuristics are benchmarked against
// either.
//
// The search walks tasks root-first (so x[i] is priced exactly as tasks are
// placed, exactly like the heuristics) and prunes a branch as soon as the
// maximum machine load reaches the incumbent period. Candidate pricing,
// machine loads and the running maximum all live in a core.Evaluator, whose
// Assign/Unassign push/pop keeps the per-node cost at O(log m) instead of a
// full O(n·m) re-evaluation. Worst-case cost is m^n; with pruning it
// handles the paper's MIP-scale instances (n <= 15, m <= 9) comfortably.
//
// A dominance rule breaks machine symmetry: machines with identical
// execution-time and failure columns (w[·][u] == w[·][v] and
// f[·][u] == f[·][v]) are interchangeable while both are still empty, so
// at every node the search branches on only the first currently-empty
// machine of each symmetry class. On platforms with duplicated machine
// specs this collapses the k! orderings of k identical empty machines to
// one (see TestDominancePrunesSymmetricPlatforms for the node counts);
// on fully heterogeneous platforms every class is a singleton and the
// rule is vacuous.
package exact

import (
	"errors"
	"fmt"
	"math"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// Options bounds the search.
type Options struct {
	// Rule defaults to Specialized.
	Rule core.Rule
	// MaxNodes caps explored partial assignments (0 = 50 million).
	MaxNodes int64
	// TimeLimit stops the search (0 = none). On stop the best incumbent
	// so far is returned with Proven=false.
	TimeLimit time.Duration
	// Incumbent optionally warm-starts the bound.
	Incumbent *core.Mapping
	// DisableDominance turns the machine-symmetry dominance rule off
	// (identical w/f columns), for ablations and node-count tests. The
	// optimum is unaffected either way.
	DisableDominance bool
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 50_000_000
}

// Result is the search outcome.
type Result struct {
	Mapping *core.Mapping
	Period  float64
	// Proven is true when the search space was exhausted.
	Proven bool
	Nodes  int64
}

type searcher struct {
	in    *core.Instance
	rule  core.Rule
	order []app.TaskID
	m     int

	spec []app.TypeID // Specialized bookkeeping (-1 free)
	used []bool       // OneToOne bookkeeping
	ev   *core.Evaluator

	// Machine-symmetry dominance: classOf[u] indexes u's equal-column
	// class; nOn counts tasks per machine on the current search path.
	classOf []int
	nOn     []int
	noSym   bool

	best       *core.Mapping
	bestPeriod float64
	nodes      int64
	maxNodes   int64
	deadline   time.Time
	stopped    bool
}

const noType app.TypeID = -1

// Solve finds an optimal mapping under the rule, or the best incumbent when
// a budget interrupts the search.
func Solve(in *core.Instance, opts Options) (*Result, error) {
	if in.N() == 0 {
		return nil, fmt.Errorf("exact: empty instance")
	}
	if opts.Rule == core.OneToOne && in.N() > in.M() {
		return nil, fmt.Errorf("exact: one-to-one impossible with n=%d > m=%d", in.N(), in.M())
	}
	s := &searcher{
		in:         in,
		rule:       opts.Rule,
		order:      in.App.ReverseTopological(),
		m:          in.M(),
		spec:       make([]app.TypeID, in.M()),
		used:       make([]bool, in.M()),
		ev:         core.NewEvaluator(in),
		bestPeriod: math.Inf(1),
		maxNodes:   opts.maxNodes(),
	}
	for u := range s.spec {
		s.spec[u] = noType
	}
	s.classOf = machineClasses(in)
	s.nOn = make([]int, in.M())
	s.noSym = opts.DisableDominance
	if opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(opts.TimeLimit)
	}
	if opts.Incumbent != nil {
		if err := opts.Incumbent.CheckRule(in.App, opts.Rule); err == nil {
			p, err := core.PeriodE(in, opts.Incumbent)
			switch {
			case err == nil:
				if p < s.bestPeriod {
					s.bestPeriod = p
					s.best = opts.Incumbent.Clone()
				}
			case errors.Is(err, core.ErrIncompleteMapping):
				// A partial incumbent cannot bound the search; ignore it.
			default:
				return nil, fmt.Errorf("exact: incumbent does not evaluate: %w", err)
			}
		}
	}
	s.dfs(0)
	if s.best == nil {
		return nil, fmt.Errorf("exact: no feasible mapping under rule %v", opts.Rule)
	}
	return &Result{
		Mapping: s.best,
		Period:  s.bestPeriod,
		Proven:  !s.stopped,
		Nodes:   s.nodes,
	}, nil
}

func (s *searcher) dfs(k int) {
	if s.stopped {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes || (!s.deadline.IsZero() && s.nodes%4096 == 0 && time.Now().After(s.deadline)) {
		s.stopped = true
		return
	}
	if k == len(s.order) {
		if p, _ := s.ev.Best(); p < s.bestPeriod {
			s.bestPeriod = p
			s.best = s.ev.Mapping()
		}
		return
	}
	i := s.order[k]
	ty := s.in.App.Type(i)
	// Root-first order guarantees i's demand is priced, so it is hoisted
	// out of the candidate loop.
	demand, _ := s.ev.Demand(i)
	for u := 0; u < s.m; u++ {
		mu := platform.MachineID(u)
		switch s.rule {
		case core.OneToOne:
			if s.used[u] {
				continue
			}
		case core.Specialized:
			if s.spec[u] != noType && s.spec[u] != ty {
				continue
			}
		}
		// Dominance: two still-empty machines with identical w/f columns
		// are interchangeable, so branching on any but the first empty
		// machine of a class can only revisit (a relabeling of) subtrees
		// the first already covered. Emptiness is stable while this loop
		// iterates — recursions restore nOn before returning — so the
		// "an earlier same-class machine is also empty" test is exact.
		if !s.noSym && s.nOn[u] == 0 {
			dominated := false
			for v := 0; v < u; v++ {
				if s.nOn[v] == 0 && s.classOf[v] == s.classOf[u] {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
		}
		xi := demand * s.in.Failures.Inflation(i, mu)
		newLoad := s.ev.MachinePeriod(mu) + xi*s.in.Platform.Time(i, mu)
		if newLoad >= s.bestPeriod {
			continue // this branch can only tie or worsen the incumbent
		}
		// Apply.
		prevSpec, prevUsed := s.spec[u], s.used[u]
		s.spec[u] = ty
		s.used[u] = true
		s.nOn[u]++
		_ = s.ev.Assign(i, mu)

		s.dfs(k + 1)

		// Revert.
		s.ev.Unassign(i)
		s.nOn[u]--
		s.spec[u], s.used[u] = prevSpec, prevUsed
		if s.stopped {
			return
		}
	}
}

// machineClasses partitions the machines into symmetry classes: u and v
// share a class iff their execution-time and failure columns are
// identical across every task.
func machineClasses(in *core.Instance) []int {
	m := in.M()
	classOf := make([]int, m)
	var reps []platform.MachineID
	for u := 0; u < m; u++ {
		mu := platform.MachineID(u)
		assigned := false
		for c, rep := range reps {
			if machineColumnsEqual(in, mu, rep) {
				classOf[u] = c
				assigned = true
				break
			}
		}
		if !assigned {
			classOf[u] = len(reps)
			reps = append(reps, mu)
		}
	}
	return classOf
}

func machineColumnsEqual(in *core.Instance, u, v platform.MachineID) bool {
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		if in.Platform.Time(id, u) != in.Platform.Time(id, v) ||
			in.Failures.Rate(id, u) != in.Failures.Rate(id, v) {
			return false
		}
	}
	return true
}
