// Native fuzz target for the exact solver's admissible lower bound: a byte
// string decodes into a small instance, a rule, and a random rule-feasible
// partial assignment; the per-node bound is then cross-checked against the
// true completion optimum computed by an independent exhaustive
// enumeration (the admissibility oracle). Any input where the bound
// exceeds the optimum would let the branch and bound prune an optimal
// subtree — the property this target gates.
//
// Seed corpus lives in testdata/fuzz/FuzzExactBound/ and the f.Add calls.
// Smoke-run locally or in CI with:
//
//	go test -run='^$' -fuzz=FuzzExactBound -fuzztime=10s ./internal/exact
package exact

import (
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/platform"
)

// fuzzTape reads a byte string as an endless wrapping tape, so any input
// long enough to seed the sizes decodes to a valid program (the same
// device as internal/core's fuzz decoder).
type fuzzTape struct {
	data []byte
	pos  int
}

func (p *fuzzTape) next() byte {
	if len(p.data) == 0 {
		return 0
	}
	b := p.data[p.pos%len(p.data)]
	p.pos++
	return b
}

func (p *fuzzTape) intn(n int) int { return int(p.next()) % n }

// decodeBoundInstance builds a small instance from the tape: n in 2..8
// tasks, m in 1..5 machines (kept small so the exhaustive oracle stays
// cheap), chain or random in-tree shape, typed execution times in [1,256]
// ms, failure rates in [0, 200/256). Roughly half the machines duplicate
// an earlier column, so the dominance/bound interplay on symmetric
// platforms is exercised too.
func decodeBoundInstance(p *fuzzTape) (*core.Instance, error) {
	n := 2 + p.intn(7)
	m := 1 + p.intn(5)
	ntypes := 1 + p.intn(n)
	shape := p.next() % 2

	tasks := make([]app.Task, n)
	for i := range tasks {
		tasks[i] = app.Task{ID: app.TaskID(i), Type: app.TypeID(p.intn(ntypes))}
	}
	var deps []app.Dep
	for i := 0; i < n-1; i++ {
		succ := i + 1
		if shape == 1 {
			succ = i + 1 + p.intn(n-1-i)
		}
		deps = append(deps, app.Dep{From: app.TaskID(i), To: app.TaskID(succ)})
	}
	a, err := app.New(tasks, deps)
	if err != nil {
		return nil, err
	}

	// Column specs per machine; a machine may clone an earlier column,
	// creating symmetry classes.
	wByType := make([][]float64, ntypes)
	fCol := make([][]float64, m)
	for ty := range wByType {
		wByType[ty] = make([]float64, m)
	}
	for u := 0; u < m; u++ {
		if u > 0 && p.next()%2 == 0 {
			src := p.intn(u)
			for ty := range wByType {
				wByType[ty][u] = wByType[ty][src]
			}
			fCol[u] = fCol[src]
			continue
		}
		for ty := range wByType {
			wByType[ty][u] = 1 + float64(p.next())
		}
		col := make([]float64, n)
		for i := range col {
			col[i] = float64(p.next()%200) / 256
		}
		fCol[u] = col
	}
	w := make([][]float64, n)
	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = append([]float64(nil), wByType[tasks[i].Type]...)
		f[i] = make([]float64, m)
		for u := 0; u < m; u++ {
			f[i][u] = fCol[u][i]
		}
	}
	pl, err := platform.New(w)
	if err != nil {
		return nil, err
	}
	fm, err := failure.New(f)
	if err != nil {
		return nil, err
	}
	return core.NewInstance(a, pl, fm)
}

// FuzzExactBound: the lower bound of any rule-feasible partial assignment
// must never exceed the optimum over its completions.
func FuzzExactBound(f *testing.F) {
	f.Add([]byte("exact-bound-admissible"))
	f.Add([]byte{6, 3, 2, 0, 120, 40, 1, 90, 0, 55, 2, 80, 1, 70, 3, 1, 2, 0, 1, 2})
	f.Add([]byte{8, 4, 3, 1, 200, 30, 0, 150, 1, 60, 0, 99, 7, 5, 3, 1, 0, 2, 4, 6, 8})
	f.Add([]byte("\x05\x02\x01\x00symmetric-platforms\xff\x10\x7f"))
	f.Add([]byte{4, 4, 1, 0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &fuzzTape{data: data}
		in, err := decodeBoundInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		rule := []core.Rule{core.Specialized, core.GeneralRule, core.OneToOne}[p.intn(3)]
		if rule == core.OneToOne && in.N() > in.M() {
			rule = core.GeneralRule
		}
		order := in.App.ReverseTopological()
		depth := p.intn(in.N() + 1)
		prefix := feasiblePrefix(in, rule, order, depth, func(int) int { return int(p.next()) })

		lb := boundAt(t, in, rule, prefix)
		opt, done := completionOptimum(in, rule, order, prefix, 2_000_000)
		if !done {
			return // oracle budget hit; nothing to assert
		}
		if lb > opt*(1+1e-9) {
			t.Fatalf("inadmissible bound: %v exceeds completion optimum %v (rule %v, prefix %v, n=%d m=%d)",
				lb, opt, rule, prefix, in.N(), in.M())
		}
	})
}
