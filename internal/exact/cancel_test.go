// Context-cancellation coverage for the request-facing search paths: a
// cancelled Solve must come back within one node batch per worker (the
// budget checks ctx at every nodeBatch reservation), still carrying its
// best incumbent, and enabling a context must never perturb a proven
// result (the differential corpus pins that separately by running with a
// live context).
package exact

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"microfab/internal/core"
)

// cancelInstance is big enough that an unpruned search would run for hours:
// every pruning rule is ablated so only the incumbent test shrinks the
// 9^18-leaf tree.
func cancelOptions(workers int, ctx context.Context) Options {
	return Options{
		Rule:             core.Specialized,
		Ctx:              ctx,
		Workers:          workers,
		MaxNodes:         1 << 40,
		WarmStart:        true,
		DisableBound:     true,
		DisableOrder:     true,
		DisableDominance: true,
	}
}

// TestCancelReturnsWithinBatch: cancelling mid-search stops every worker at
// its next nodeBatch reservation — milliseconds, not the remaining budget —
// and the search still returns the warm-start incumbent unproven.
func TestCancelReturnsWithinBatch(t *testing.T) {
	in := symmetricInstanceF(t, 18, 3, 9, 9, 0.005, 0.02, 42)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		res, err := Solve(in, cancelOptions(workers, ctx))
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: cancelled solve errored: %v", workers, err)
		}
		if res.Proven {
			t.Fatalf("workers=%d: cancelled search claims a proof after %d nodes", workers, res.Nodes)
		}
		if res.Mapping == nil || !res.Mapping.Complete() {
			t.Fatalf("workers=%d: cancelled search lost its incumbent", workers)
		}
		if math.IsInf(res.Period, 1) {
			t.Fatalf("workers=%d: incumbent period not finite", workers)
		}
		// The search ran ~50ms before the cancel; everything past that is
		// cancellation latency. One nodeBatch is microseconds of work, so
		// whole seconds would mean workers ignored the context (the bound
		// is generous for CI noise, the failure mode it catches is "ran
		// the full 2^40 node budget").
		if elapsed > 5*time.Second {
			t.Fatalf("workers=%d: cancelled solve took %v", workers, elapsed)
		}
	}
}

// TestCancelBeforeStart: an already-cancelled context stops the search at
// its first node, which still returns the un-metered warm start.
func TestCancelBeforeStart(t *testing.T) {
	in := symmetricInstanceF(t, 14, 3, 7, 7, 0.005, 0.02, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(in, Options{Rule: core.Specialized, Ctx: ctx, WarmStart: true})
	if err != nil {
		t.Fatalf("pre-cancelled solve errored: %v", err)
	}
	if res.Proven || res.Mapping == nil {
		t.Fatalf("pre-cancelled solve: proven=%v mapping=%v", res.Proven, res.Mapping)
	}
	// Cold and starved: no warm start, no dive, nothing found — the typed
	// budget error, never nil/nil.
	res, err = Solve(in, Options{Rule: core.Specialized, Ctx: ctx, DisableOrder: true})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("cold pre-cancelled solve: res=%v err=%v, want ErrBudgetExhausted", res, err)
	}
}

// TestBadBudgetTyped: negative budgets are rejected up front with the
// typed error, for every negative knob.
func TestBadBudgetTyped(t *testing.T) {
	in := symmetricInstanceF(t, 6, 2, 4, 4, 0.005, 0.02, 3)
	for _, opts := range []Options{
		{Rule: core.Specialized, MaxNodes: -1},
		{Rule: core.Specialized, TimeLimit: -time.Second},
		{Rule: core.Specialized, Workers: -2},
	} {
		res, err := Solve(in, opts)
		if !errors.Is(err, ErrBadBudget) {
			t.Fatalf("opts %+v: res=%v err=%v, want ErrBadBudget", opts, res, err)
		}
	}
}

// TestOnImproveStreams: the incumbent callback sees a monotonically
// improving sequence ending exactly at the final result, for sequential
// and parallel searches alike, and enabling it changes nothing about the
// outcome.
func TestOnImproveStreams(t *testing.T) {
	in := symmetricInstanceF(t, 12, 3, 6, 6, 0.005, 0.02, 11)
	base, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Proven {
		t.Fatalf("reference search unproven after %d nodes", base.Nodes)
	}
	for _, workers := range []int{1, 4} {
		var periods []float64
		res, err := Solve(in, Options{
			Rule:    core.Specialized,
			Workers: workers,
			OnImprove: func(p float64, m *core.Mapping) {
				if m == nil || !m.Complete() {
					t.Errorf("workers=%d: OnImprove with incomplete mapping", workers)
				}
				periods = append(periods, p)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Period) != math.Float64bits(base.Period) ||
			res.Mapping.String() != base.Mapping.String() {
			t.Fatalf("workers=%d: OnImprove changed the result: %v vs %v", workers, res.Period, base.Period)
		}
		for k := 1; k < len(periods); k++ {
			if periods[k] >= periods[k-1] {
				t.Fatalf("workers=%d: incumbent stream not strictly improving: %v", workers, periods)
			}
		}
		// Streamed periods are the search's Pricer values; Result.Period
		// is normalised through core.Evaluate, which may differ in the
		// last ulp on some mappings.
		if n := len(periods); n > 0 && math.Abs(periods[n-1]-res.Period) > 1e-12*res.Period {
			t.Fatalf("workers=%d: last streamed incumbent %v != result %v", workers, periods[n-1], res.Period)
		}
	}
}
