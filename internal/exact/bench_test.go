package exact

import (
	"math"
	"runtime"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// benchInstance is the node-bounded campaign instance used by
// TestNodeBudgetReturnsIncumbent (n=10, p=3, m=5, seed 8).
func benchInstance(b *testing.B) *core.Instance {
	b.Helper()
	in, err := gen.Chain(gen.Default(10, 3, 5), gen.RNG(8))
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkExactSolveEvaluator measures the production solver: the DFS
// branch and bound with pricing, loads and the running maximum maintained
// by the pricing-only core.Pricer (the name keeps the historical series
// comparable — the solver priced through the full core.Evaluator until the
// pricing-core refactor). Nodes per second is the metric that matters for
// proving optimality on larger instances.
func BenchmarkExactSolveEvaluator(b *testing.B) {
	in := benchInstance(b)
	var nodes int64
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		res, err := Solve(in, Options{Rule: core.Specialized})
		if err != nil {
			b.Fatal(err)
		}
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
}

// BenchmarkExactSolveFullRecompute is the ablation baseline: the identical
// search tree (same order, same pruning rule) but every candidate priced by
// a full from-scratch partial evaluation, the way all solvers worked before
// the Evaluator existed. Compare nodes/s against BenchmarkExactSolveEvaluator.
func BenchmarkExactSolveFullRecompute(b *testing.B) {
	in := benchInstance(b)
	var nodes int64
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		_, n := fullRecomputeSolve(in, core.Specialized)
		nodes = n
	}
	b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
}

// fullRecomputeSolve mirrors the searcher's tree but re-derives x-values
// and machine loads from scratch (PartialProductCounts + an O(n·m) load
// sweep) at every node, exactly like pricing through core on each step.
func fullRecomputeSolve(in *core.Instance, rule core.Rule) (float64, int64) {
	order := in.App.ReverseTopological()
	m := in.M()
	spec := make([]app.TypeID, m)
	used := make([]bool, m)
	for u := range spec {
		spec[u] = noType
	}
	mp := core.NewMapping(in.N())
	best := math.Inf(1)
	var nodes int64

	loads := func() []float64 {
		x := core.PartialProductCounts(in, mp)
		load := make([]float64, m)
		for i := 0; i < in.N(); i++ {
			id := app.TaskID(i)
			if u := mp.Machine(id); u != platform.NoMachine {
				load[u] += x[i] * in.Platform.Time(id, u)
			}
		}
		return load
	}

	var dfs func(k int)
	dfs = func(k int) {
		nodes++
		if k == len(order) {
			worst := 0.0
			for _, l := range loads() {
				if l > worst {
					worst = l
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		i := order[k]
		ty := in.App.Type(i)
		for u := 0; u < m; u++ {
			mu := platform.MachineID(u)
			switch rule {
			case core.OneToOne:
				if used[u] {
					continue
				}
			case core.Specialized:
				if spec[u] != noType && spec[u] != ty {
					continue
				}
			}
			// Full-recompute trial: price the whole partial mapping.
			mp.Assign(i, mu)
			if loads()[u] >= best {
				mp.Unassign(i)
				continue
			}
			prevSpec, prevUsed := spec[u], used[u]
			spec[u], used[u] = ty, true
			dfs(k + 1)
			spec[u], used[u] = prevSpec, prevUsed
			mp.Unassign(i)
		}
	}
	dfs(0)
	return best, nodes
}

// TestFullRecomputeReferenceAgrees pins the benchmark baseline to the
// production solver: both must find the same optimal period.
func TestFullRecomputeReferenceAgrees(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in, err := gen.Chain(gen.Default(6, 2, 3), gen.RNG(300+seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(in, Options{Rule: core.Specialized})
		if err != nil {
			t.Fatal(err)
		}
		ref, _ := fullRecomputeSolve(in, core.Specialized)
		if math.Abs(res.Period-ref) > 1e-9*ref {
			t.Fatalf("seed %d: solver %v != full-recompute reference %v", seed, res.Period, ref)
		}
	}
}

// BenchmarkExactParallel measures the scaled-up solver on a symmetric
// n=16 instance that the seed configuration cannot prove quickly: 1 vs
// NumCPU workers, with the lower bound and the dominance rule ablated
// alongside (the bound/dominance=off axes pin their pruning cost/benefit,
// the worker axis the root-split speedup). Every variant runs under the
// same global node cap so nodes/s is comparable across them.
func BenchmarkExactParallel(b *testing.B) {
	in := symmetricInstanceF(b, 16, 2, 8, 4, 0.005, 0.05, 77)
	const cap = 400_000
	variants := []struct {
		name string
		opts Options
	}{
		{"workers=1", Options{Rule: core.Specialized, MaxNodes: cap}},
		{"workers=NumCPU", Options{Rule: core.Specialized, MaxNodes: cap, Workers: runtime.NumCPU()}},
		{"workers=1/bound=off", Options{Rule: core.Specialized, MaxNodes: cap, DisableBound: true}},
		{"workers=NumCPU/bound=off", Options{Rule: core.Specialized, MaxNodes: cap, DisableBound: true, Workers: runtime.NumCPU()}},
		{"workers=1/dominance=off", Options{Rule: core.Specialized, MaxNodes: cap, DisableDominance: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var nodes int64
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				res, err := Solve(in, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				nodes += res.Nodes
			}
			b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}

// BenchmarkAssignmentBound measures tier 2 of the relaxation stack at a
// fixed interior node: the argmin-collision scan plus the bottleneck
// assignment over live completion prices. Symmetric machines make the
// relevant tasks share their cheapest-landing machine, so the scan never
// takes the free skip — this is the paid path the search actually charges
// for when the tier fires.
func BenchmarkAssignmentBound(b *testing.B) {
	cases := []struct {
		name string
		rule core.Rule
		in   *core.Instance
	}{
		{"one-to-one", core.OneToOne, symmetricInstanceF(b, 12, 2, 14, 4, 0, 0.05, 31)},
		{"specialized", core.Specialized, symmetricInstanceF(b, 16, 2, 8, 4, 0.005, 0.05, 77)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			order := c.in.App.ReverseTopological()
			prefix := feasiblePrefix(c.in, c.rule, order, 2, func(j int) int { return j })
			s, _ := relaxAt(b, c.in, c.rule, prefix)
			k := len(prefix)
			if _, _, tried := s.assignmentBound(k); !tried {
				b.Fatal("benchmark node skipped the assignment bound (no argmin collision)")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.assignmentBound(k)
			}
		})
	}
}

// BenchmarkLPBoundWarmStart measures tier 3 plus the lp.Workspace warm
// start: repeated solves of the same-shaped relaxation, every one after
// the first re-entering through the retained basis the way sibling nodes
// do in the search. warmhits/solve reports the fraction that stayed on
// the warm path (1.0 = the cold two-phase solve never re-ran).
func BenchmarkLPBoundWarmStart(b *testing.B) {
	in := symmetricInstanceF(b, 16, 2, 8, 4, 0.005, 0.05, 77)
	order := in.App.ReverseTopological()
	prefix := feasiblePrefix(in, core.Specialized, order, 2, func(j int) int { return j })
	s, _ := relaxAt(b, in, core.Specialized, prefix)
	k := len(prefix)
	if _, ok := s.lpBound(k); !ok {
		b.Fatal("LP bound did not solve at the benchmark node")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.lpBound(k)
	}
	b.StopTimer()
	solves, hits := s.rx.lw.Stats()
	b.ReportMetric(float64(hits)/float64(solves), "warmhits/solve")
}

// BenchmarkBoundMaintenance pits the incremental bound engine against its
// from-scratch ablation on the regime the auto gate enables it for: a
// branchy in-tree (delta propagation fizzles within a small feeder
// subtree) over wide machines (a landing re-price costs O(m), so at m=16
// the cache hits pay for the delta bookkeeping). A fixed node cap makes
// both modes explore the identical node set — the bound values are
// bit-equal by contract — so the nodes/s delta isolates the maintenance
// cost. Chain-shaped instances (the solve benchmarks above) route to the
// from-scratch path instead: every assign there dirties the entire
// suffix, and delta maintenance degenerates into the same sweep plus
// logging (see incBoundAuto).
func BenchmarkBoundMaintenance(b *testing.B) {
	in, err := gen.InTree(gen.Default(14, 3, 16), 3, gen.RNG(9))
	if err != nil {
		b.Fatal(err)
	}
	const cap = 150_000
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"incremental", Options{Rule: core.Specialized, MaxNodes: cap}},
		{"from-scratch", Options{Rule: core.Specialized, MaxNodes: cap, DisableIncrementalBound: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var nodes int64
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				res, err := Solve(in, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				nodes += res.Nodes
			}
			b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
		})
	}
}

// BenchmarkExactSolveRelax is BenchmarkExactSolveEvaluator with the
// relaxation tiers forced live from the first node (warmup zeroed): on an
// instance this small the tiers cannot pay for themselves, so the ns/op
// delta against the Evaluator series prices the tier machinery itself —
// the cost the warmup gate exists to keep off short solves.
func BenchmarkExactSolveRelax(b *testing.B) {
	in := benchInstance(b)
	old := relaxWarmup
	relaxWarmup = 0
	defer func() { relaxWarmup = old }()
	var nodes int64
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		res, err := Solve(in, Options{Rule: core.Specialized})
		if err != nil {
			b.Fatal(err)
		}
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
}
