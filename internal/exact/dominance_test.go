package exact

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// symmetricInstance builds a chain on a platform of m machines drawn from
// only `distinct` different (w, f) column specs, so machines fall into
// `distinct` symmetry classes.
func symmetricInstance(t testing.TB, n, p, m, distinct int) *core.Instance {
	t.Helper()
	// The generator requires p <= machines, so draw the column specs from
	// a wide-enough platform and keep only the first `distinct` columns.
	specs := distinct
	if specs < p {
		specs = p
	}
	base, err := gen.Chain(gen.Default(n, p, specs), gen.RNG(int64(100*n+m)))
	if err != nil {
		t.Fatal(err)
	}
	w := make([][]float64, n)
	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		w[i] = make([]float64, m)
		f[i] = make([]float64, m)
		for u := 0; u < m; u++ {
			src := platform.MachineID(u % distinct)
			w[i][u] = base.Platform.Time(id, src)
			f[i][u] = base.Failures.Rate(id, src)
		}
	}
	pl, err := platform.New(w)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := failure.New(f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewInstance(base.App, pl, fm)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestMachineClasses pins the partition: duplicated columns share a
// class, heterogeneous random draws do not.
func TestMachineClasses(t *testing.T) {
	in := symmetricInstance(t, 6, 2, 8, 2)
	classOf := machineClasses(in)
	classes := 0
	for _, c := range classOf {
		if c+1 > classes {
			classes = c + 1
		}
	}
	if classes != 2 {
		t.Fatalf("%d classes on a 2-spec platform, want 2", classes)
	}
	for u := 0; u < in.M(); u++ {
		if classOf[u] != u%2 {
			t.Fatalf("classOf = %v, want alternating 0/1", classOf)
		}
	}
	het, err := gen.Chain(gen.Default(6, 2, 5), gen.RNG(9))
	if err != nil {
		t.Fatal(err)
	}
	hetClasses := machineClasses(het)
	for u, c := range hetClasses {
		if c != u {
			t.Fatalf("classOf = %v on a heterogeneous platform, want singletons", hetClasses)
		}
	}
}

// TestDominancePrunesSymmetricPlatforms: on platforms with duplicated
// machine specs the dominance rule must cut the node count while
// preserving the proven optimum. The drop is the k!-ish collapse of
// interchangeable empty machines, so it grows with the duplication
// factor.
func TestDominancePrunesSymmetricPlatforms(t *testing.T) {
	cases := []struct {
		name              string
		n, p, m, distinct int
		minDropFactor     float64 // nodesOff / nodesOn must exceed this
	}{
		{"duplicated-pairs", 8, 2, 6, 3, 1.5},
		{"identical-machines", 8, 2, 6, 1, 4},
		{"identical-machines-wide", 6, 2, 8, 1, 10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			in := symmetricInstance(t, tc.n, tc.p, tc.m, tc.distinct)
			// The lower bound is ablated so the node counts isolate the
			// dominance rule's own pruning factor.
			on, err := Solve(in, Options{Rule: core.Specialized, DisableBound: true})
			if err != nil {
				t.Fatal(err)
			}
			off, err := Solve(in, Options{Rule: core.Specialized, DisableDominance: true, DisableBound: true})
			if err != nil {
				t.Fatal(err)
			}
			if !on.Proven || !off.Proven {
				t.Fatal("search budget interfered with the node-count comparison")
			}
			if math.Abs(on.Period-off.Period) > 1e-9*off.Period {
				t.Fatalf("dominance changed the optimum: %v vs %v", on.Period, off.Period)
			}
			if ratio := float64(off.Nodes) / float64(on.Nodes); ratio < tc.minDropFactor {
				t.Fatalf("nodes %d (on) vs %d (off): drop factor %.2f < %.2f",
					on.Nodes, off.Nodes, ratio, tc.minDropFactor)
			} else {
				t.Logf("nodes %d -> %d (factor %.1f)", off.Nodes, on.Nodes, ratio)
			}
		})
	}
}

// TestDominanceVacuousOnHeterogeneous: on fully heterogeneous platforms
// every class is a singleton, so the rule must not change the node count
// or the optimum at all.
func TestDominanceVacuousOnHeterogeneous(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		in, err := gen.Chain(gen.Default(9, 3, 5), gen.RNG(700+seed))
		if err != nil {
			t.Fatal(err)
		}
		on, err := Solve(in, Options{Rule: core.Specialized, DisableBound: true})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Solve(in, Options{Rule: core.Specialized, DisableDominance: true, DisableBound: true})
		if err != nil {
			t.Fatal(err)
		}
		if on.Nodes != off.Nodes || on.Period != off.Period {
			t.Fatalf("seed %d: vacuous dominance changed the search: nodes %d/%d periods %v/%v",
				seed, on.Nodes, off.Nodes, on.Period, off.Period)
		}
	}
}

// TestDominanceOneToOne: the rule also applies under the one-to-one rule
// (empty machines are exactly the unused ones).
func TestDominanceOneToOne(t *testing.T) {
	in := symmetricInstance(t, 5, 2, 7, 1)
	on, err := Solve(in, Options{Rule: core.OneToOne, DisableBound: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Solve(in, Options{Rule: core.OneToOne, DisableDominance: true, DisableBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(on.Period-off.Period) > 1e-9*off.Period {
		t.Fatalf("one-to-one optimum changed: %v vs %v", on.Period, off.Period)
	}
	if on.Nodes >= off.Nodes {
		t.Fatalf("no pruning on identical machines: %d vs %d nodes", on.Nodes, off.Nodes)
	}
}
