// Distributed-search primitives: the two halves of the parallel root split
// (parallel.go) exposed as standalone calls, so a coordinator process can
// enumerate the frontier once and lease each subtree prefix to worker
// processes. Determinism carries over unchanged: a subtree's exploration
// is a pure function of (instance, options, prefix) — the warm start
// (explicit-incumbent evaluation, H4w, greedy dive) is itself a pure
// function of the instance, so every process derives the same one — and
// the coordinator reduces the subtree reports in frontier order exactly
// like solveParallel does, so the merged proof is byte-identical to a
// local run for any process count. Externally-injected bounds
// (Options.BoundInjector) only ever prune strictly, so incumbent exchange
// changes node counts, never proven results.
package exact

import (
	"fmt"
	"math"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// FrontierInfo is the enumerated root split of one instance: the subtree
// prefixes in the order a sequential search first reaches them (the merge
// order), plus the warm start every participant independently re-derives.
type FrontierInfo struct {
	// Prefixes[j][k] is the machine of task order[k] in subtree j; all
	// prefixes share one length (the enumeration depth). Empty when the
	// frontier was exhausted during enumeration — the warm start already
	// is the answer.
	Prefixes [][]int `json:"prefixes"`
	// WarmPeriod is the warm-start incumbent's period, 0 when no warm
	// start exists (a nil WarmAssign; +Inf does not survive JSON).
	// Workers re-derive it; a mismatch means the processes disagree on
	// the instance and the merge must abort.
	WarmPeriod float64 `json:"warmPeriod"`
	// WarmAssign is the warm-start mapping (task i -> machine), nil when
	// no feasible warm start exists.
	WarmAssign []int `json:"warmAssign,omitempty"`
	// Nodes the enumeration consumed from the budget.
	Nodes int64 `json:"nodes"`
	// Stopped reports that the budget (or context) interrupted the
	// enumeration: the prefixes do not partition the search space and
	// must not be used for a proof.
	Stopped bool `json:"stopped"`
}

// Frontier enumerates the root frontier of in to at least target subtrees
// (bounded by the tree's own width), under the same pruning discipline the
// search itself uses. The options' budget meters the enumeration nodes.
func Frontier(in *core.Instance, opts Options, target int) (*FrontierInfo, error) {
	sv, err := newSolver(in, opts)
	if err != nil {
		return nil, err
	}
	if target < 1 {
		target = 1
	}
	shared := sv.newShared()
	enum := sv.newSearcher(shared)
	enum.bestPeriod = sv.warmPeriod
	jobs, _ := sv.enumerate(enum, target)
	enum.meter.release()

	info := &FrontierInfo{
		WarmPeriod: finiteOrZero(sv.warmPeriod),
		Nodes:      sv.bud.reserved.Load(),
		Stopped:    sv.bud.stop.Load(),
	}
	if sv.warm != nil {
		info.WarmAssign = assignSlice(sv.warm)
	}
	info.Prefixes = make([][]int, len(jobs))
	for j, prefix := range jobs {
		p := make([]int, len(prefix))
		for k, u := range prefix {
			p[k] = int(u)
		}
		info.Prefixes[j] = p
	}
	return info, nil
}

// SubtreeOutcome is one leased subtree's deterministic report: its best
// strict improvement over the shared warm start, if any.
type SubtreeOutcome struct {
	// Found marks an improvement; Period and Assign carry it. The period
	// is the search's own Pricer value (the merge re-normalises the
	// winning mapping through core.Period, like a local solve does).
	Found  bool    `json:"found"`
	Period float64 `json:"period,omitempty"`
	Assign []int   `json:"assign,omitempty"`
	// Nodes explored in this subtree; Stopped reports a budget or
	// cancellation interrupt (the subtree is not exhausted — the merge
	// must not claim a proof).
	Nodes   int64 `json:"nodes"`
	Stopped bool  `json:"stopped"`
	// WarmPeriod echoes the warm start this worker derived (0 when none
	// exists, mirroring FrontierInfo); the coordinator cross-checks it
	// against its own before merging.
	WarmPeriod float64 `json:"warmPeriod"`
}

// SolveSubtree explores the one subtree under prefix (a FrontierInfo
// prefix) exactly as a solveParallel worker would: local incumbent seeded
// at the warm-start period, non-strict pruning against it, strict pruning
// against externally-injected bounds. The options must equal the ones the
// frontier was enumerated with, or the subtrees stop partitioning the
// sequential node set.
func SolveSubtree(in *core.Instance, opts Options, prefix []int) (*SubtreeOutcome, error) {
	sv, err := newSolver(in, opts)
	if err != nil {
		return nil, err
	}
	if len(prefix) >= in.N() {
		return nil, fmt.Errorf("exact: subtree prefix covers %d of %d tasks", len(prefix), in.N())
	}
	pfx := make([]platform.MachineID, len(prefix))
	for k, u := range prefix {
		if u < 0 || u >= in.M() {
			return nil, fmt.Errorf("exact: subtree prefix assigns machine %d of %d", u, in.M())
		}
		pfx[k] = platform.MachineID(u)
	}
	shared := sv.newShared()
	s := sv.newSearcher(shared)
	s.push(pfx)
	s.best = nil
	s.bestPeriod = sv.warmPeriod
	s.dfs(len(pfx))
	s.pop(pfx)
	s.meter.release()

	out := &SubtreeOutcome{
		Nodes:      sv.bud.reserved.Load(),
		Stopped:    sv.bud.stop.Load(),
		WarmPeriod: finiteOrZero(sv.warmPeriod),
	}
	if s.best != nil {
		out.Found = true
		out.Period = s.bestPeriod
		out.Assign = assignSlice(s.best)
	}
	return out, nil
}

func finiteOrZero(p float64) float64 {
	if math.IsInf(p, 0) {
		return 0
	}
	return p
}

func assignSlice(m *core.Mapping) []int {
	out := make([]int, m.Len())
	for i := range out {
		out[i] = int(m.Machine(app.TaskID(i)))
	}
	return out
}
