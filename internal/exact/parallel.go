// Parallel root split: the branch and bound fans out over a worker pool by
// enumerating the assignment frontier to a small depth d and handing each
// frontier prefix (a subtree root) to a worker. Workers share one atomic
// node budget and one atomic incumbent; each owns a cloned core.Evaluator
// and a private searcher, so nothing on the hot path takes a lock.
//
// Determinism. A proven parallel search returns byte-identical results for
// any worker count, including Workers=1 sequential search, because every
// ingredient of the answer is timing-independent:
//
//   - loads, x-values, bounds and the best-first child order are pure
//     functions of a node's partial assignment (see core.Pricer), so a
//     subtree explores the same tree shape regardless of which worker runs
//     it or when;
//   - workers prune non-strictly (>=) against their job-local incumbent —
//     whose evolution is deterministic within the subtree — but strictly
//     (>) against the shared cross-worker incumbent. A subtree whose true
//     optimum P equals the global optimum therefore always reaches its
//     first P-attaining leaf in DFS order: ancestors of that leaf have
//     bound <= P <= shared, which never trips a strict test, whatever the
//     other workers published in the meantime;
//   - the reduction walks subtree reports in frontier order and keeps the
//     first strict improvement, exactly what a sequential search that
//     visited the subtrees in that order would have kept.
//
// A search stopped by budget returns the best solution any worker found
// (Proven=false); which one that is depends on timing, like any interrupted
// anytime search.
package exact

import (
	"sync"
	"sync/atomic"

	"microfab/internal/core"
	"microfab/internal/platform"
)

// report is one subtree's deterministic outcome: its best improvement over
// the warm-start period, or nil when the subtree was exhausted or pruned
// without improving it.
type report struct {
	period  float64
	mapping *core.Mapping
}

// solveParallel runs the root split over `workers` goroutines.
func (sv *solver) solveParallel(workers int) (*Result, error) {
	shared := sv.newShared()
	enum := sv.newSearcher(shared)
	enum.bestPeriod = sv.warmPeriod
	jobs, depth := sv.enumerate(enum, 8*workers)
	enum.meter.release()

	if len(jobs) == 0 || sv.bud.stop.Load() {
		// Frontier exhausted (every completion prunes against the warm
		// start, or no feasible assignment exists) or budget gone before
		// the split: the warm start is the answer, if there is one.
		return sv.finish(sv.warm, sv.warmPeriod)
	}

	if workers > len(jobs) {
		workers = len(jobs)
	}
	reports := make([]report, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := sv.newSearcher(shared)
			defer s.meter.release()
			for {
				j := int(next.Add(1) - 1)
				if j >= len(jobs) || sv.bud.stop.Load() {
					return
				}
				s.push(jobs[j])
				s.best = nil
				s.bestPeriod = sv.warmPeriod
				s.dfs(depth)
				if s.best != nil {
					reports[j] = report{period: s.bestPeriod, mapping: s.best}
				}
				s.pop(jobs[j])
			}
		}()
	}
	wg.Wait()

	if sv.bud.stop.Load() {
		// Interrupted: the shared incumbent holds the best solution any
		// worker published (the warm start when nobody improved on it).
		p, mp := shared.snapshot()
		return sv.finish(mp, p)
	}
	best, bestPeriod := sv.warm, sv.warmPeriod
	for _, r := range reports {
		if r.mapping != nil && r.period < bestPeriod {
			best, bestPeriod = r.mapping, r.period
		}
	}
	return sv.finish(best, bestPeriod)
}

// enumerate expands the assignment frontier level by level until it is at
// least target subtrees wide (the root split uses ~8 per worker), the next
// level would complete the mapping, or the budget stops the search. Every
// prefix respects the rule, the dominance filter, and the warm-start
// pruning, so the subtrees partition exactly the node set a sequential
// search visits.
func (sv *solver) enumerate(s *searcher, target int) ([][]platform.MachineID, int) {
	n := len(sv.order)
	frontier := [][]platform.MachineID{nil}
	depth := 0
	for depth < n-1 && len(frontier) < target {
		var next [][]platform.MachineID
		for _, prefix := range frontier {
			next = s.expand(prefix, next)
			if sv.bud.stop.Load() {
				return nil, 0
			}
		}
		frontier = next
		depth++
		if len(frontier) == 0 {
			break
		}
	}
	return frontier, depth
}

// expand replays prefix, applies the same per-node pruning as dfs, and
// appends every surviving child prefix to dst — in dfs's own visit order
// (the shared children helper), so the frontier order is the order a
// sequential search would first reach the subtrees in.
func (s *searcher) expand(prefix []platform.MachineID, dst [][]platform.MachineID) [][]platform.MachineID {
	if !s.meter.step() {
		return dst
	}
	s.push(prefix)
	defer s.pop(prefix)
	k := len(prefix)
	sharedP := s.shared.load()
	if s.bnd != nil {
		if lb := s.lowerBound(k, s.bestPeriod, sharedP); lb >= s.bestPeriod || lb > sharedP {
			return dst
		}
	}
	for _, c := range s.children(k, sharedP) {
		child := make([]platform.MachineID, k+1)
		copy(child, prefix)
		child[k] = c.u
		dst = append(dst, child)
	}
	return dst
}
