// Admissibility and dominance gates for the relaxation tiers (relax.go):
// native fuzz targets cross-check each tier against the exhaustive
// completion oracle exactly like FuzzExactBound does for the combinatorial
// bound, and the deterministic tests pin that the tiers (a) do strengthen
// bounds somewhere, (b) never grow a sequential proof, and (c) leave every
// proven result byte-identical, for any worker count, tiers on or off.
//
// Smoke-run the fuzzers locally or in CI with:
//
//	go test -run='^$' -fuzz=FuzzAssignmentBound -fuzztime=10s ./internal/exact
//	go test -run='^$' -fuzz=FuzzLPBound -fuzztime=10s ./internal/exact
package exact

import (
	"math"
	"testing"

	"microfab/internal/core"
	"microfab/internal/platform"
)

// relaxAt replays a prefix on a fresh searcher with the relaxation tiers
// force-built (no warmup), runs the combinatorial bound with +Inf
// thresholds to fill the per-node scratch the tiers read (dlb, minLand,
// landArg), and returns the searcher plus that combinatorial bound. The
// tier methods are then directly callable for the replayed depth.
func relaxAt(t testing.TB, in *core.Instance, rule core.Rule, prefix []platform.MachineID) (*searcher, float64) {
	t.Helper()
	sv, err := newSolver(in, Options{Rule: rule})
	if err != nil {
		t.Fatal(err)
	}
	s := sv.newSearcher(nil)
	s.rx = newRelaxer(sv.in, false, false)
	if s.minLand == nil {
		// From-scratch ablation only: the incremental mode allocates and
		// maintains these from construction, and overwriting them here
		// would clobber the live cache.
		s.minLand = make([]float64, len(s.order))
		s.landArg = make([]int, len(s.order))
	}
	s.push(prefix)
	return s, s.lowerBound(len(prefix), math.Inf(1), math.Inf(1))
}

// FuzzAssignmentBound: the bottleneck-assignment bound of any rule-feasible
// partial assignment must never exceed the optimum over its completions
// (+Inf claims the node has none at all).
func FuzzAssignmentBound(f *testing.F) {
	f.Add([]byte("assign-bound-admissible"))
	f.Add([]byte{6, 3, 2, 0, 120, 40, 1, 90, 0, 55, 2, 80, 1, 70, 3, 1, 2, 0, 1, 2})
	f.Add([]byte{5, 5, 2, 1, 30, 60, 90, 120, 150, 180, 210, 240, 14, 3, 1})
	f.Add([]byte("\x04\x05\x01\x00one-to-one-collisions\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &fuzzTape{data: data}
		in, err := decodeBoundInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		rule := core.Specialized
		if p.next()%2 == 0 && in.N() <= in.M() {
			rule = core.OneToOne
		}
		order := in.App.ReverseTopological()
		prefix := feasiblePrefix(in, rule, order, p.intn(in.N()+1), func(int) int { return int(p.next()) })

		s, _ := relaxAt(t, in, rule, prefix)
		ab, ok, tried := s.assignmentBound(len(prefix))
		if !tried && ok {
			t.Fatalf("collision-free skip claimed a bound: %v", ab)
		}
		if !ok {
			return
		}
		opt, done := completionOptimum(in, rule, order, prefix, 2_000_000)
		if !done {
			return // oracle budget hit; nothing to assert
		}
		if ab > opt*(1+1e-9) {
			t.Fatalf("inadmissible assignment bound: %v exceeds completion optimum %v (rule %v, prefix %v, n=%d m=%d)",
				ab, opt, rule, prefix, in.N(), in.M())
		}
	})
}

// FuzzLPBound: the LP relaxation bound of any rule-feasible partial
// assignment must never exceed the optimum over its completions.
func FuzzLPBound(f *testing.F) {
	f.Add([]byte("lp-bound-admissible"))
	f.Add([]byte{6, 3, 2, 0, 120, 40, 1, 90, 0, 55, 2, 80, 1, 70, 3, 1, 2, 0, 1, 2})
	f.Add([]byte{7, 4, 3, 1, 200, 30, 0, 150, 1, 60, 0, 99, 7, 5, 3, 1, 0, 2, 4})
	f.Add([]byte("\x05\x03\x02\x00fractional-assignment\xff\x10"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &fuzzTape{data: data}
		in, err := decodeBoundInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		rule := []core.Rule{core.Specialized, core.GeneralRule, core.OneToOne}[p.intn(3)]
		if rule == core.OneToOne && in.N() > in.M() {
			rule = core.GeneralRule
		}
		order := in.App.ReverseTopological()
		prefix := feasiblePrefix(in, rule, order, p.intn(in.N()+1), func(int) int { return int(p.next()) })

		s, _ := relaxAt(t, in, rule, prefix)
		v, ok := s.lpBound(len(prefix))
		if !ok {
			return // non-Optimal LP: correctly contributes nothing
		}
		opt, done := completionOptimum(in, rule, order, prefix, 2_000_000)
		if !done {
			return
		}
		if v > opt*(1+1e-9) {
			t.Fatalf("inadmissible LP bound: %v exceeds completion optimum %v (rule %v, prefix %v, n=%d m=%d)",
				v, opt, rule, prefix, in.N(), in.M())
		}
	})
}

// TestRelaxationTiersAdmissible sweeps the differential corpus at several
// prefix depths, checking both tiers against the exhaustive oracle, and —
// so the gates can't rot into vacuity — that each tier strictly improves on
// the combinatorial bound somewhere in the sweep.
func TestRelaxationTiersAdmissible(t *testing.T) {
	assignWins, lpWins := 0, 0
	for ci, c := range differentialCorpus(t) {
		order := c.in.App.ReverseTopological()
		for _, depth := range []int{0, 1, c.in.N() / 2} {
			prefix := feasiblePrefix(c.in, c.rule, order, depth, func(j int) int { return ci*31 + j*7 })
			s, lb := relaxAt(t, c.in, c.rule, prefix)
			opt, done := completionOptimum(c.in, c.rule, order, prefix, 2_000_000)
			if !done {
				continue
			}
			if ab, ok, _ := s.assignmentBound(len(prefix)); ok {
				if ab > opt*(1+1e-9) {
					t.Fatalf("%s[%d] depth %d: assignment bound %v > optimum %v", c.name, ci, depth, ab, opt)
				}
				if ab > lb {
					assignWins++
				}
			}
			if v, ok := s.lpBound(len(prefix)); ok {
				if v > opt*(1+1e-9) {
					t.Fatalf("%s[%d] depth %d: LP bound %v > optimum %v", c.name, ci, depth, v, opt)
				}
				if v > lb {
					lpWins++
				}
			}
		}
	}
	if assignWins == 0 || lpWins == 0 {
		t.Fatalf("tiers never beat the combinatorial bound on the corpus (assign %d, lp %d wins) — gates are vacuous",
			assignWins, lpWins)
	}
	t.Logf("tiers strictly improved the combinatorial bound: assignment %d times, LP %d times", assignWins, lpWins)
}

// TestRelaxationBoundDominates: on the full differential corpus, a
// sequential proof with the tiers on explores no more nodes than with them
// off, returns byte-identical results either way, and parallel runs with
// the tiers on stay byte-identical to the sequential ones. The warmup is
// forced off so the tiers actually run on these small instances.
func TestRelaxationBoundDominates(t *testing.T) {
	oldWarmup := relaxWarmup
	relaxWarmup = 0
	defer func() { relaxWarmup = oldWarmup }()

	corpus := differentialCorpus(t)
	if len(corpus) < 50 {
		t.Fatalf("corpus has %d instances, the gate requires >= 50", len(corpus))
	}
	improved := 0
	for ci, c := range corpus {
		on := Options{Rule: c.rule, MaxNodes: 4_000_000, Workers: 1}
		off := on
		off.DisableAssignBound, off.DisableLPBound = true, true

		comb, err := Solve(c.in, off)
		if err != nil {
			t.Fatalf("%s[%d]: tiers off: %v", c.name, ci, err)
		}
		both, err := Solve(c.in, on)
		if err != nil {
			t.Fatalf("%s[%d]: tiers on: %v", c.name, ci, err)
		}
		if !comb.Proven || !both.Proven {
			t.Fatalf("%s[%d]: unproven (off %v, on %v)", c.name, ci, comb.Proven, both.Proven)
		}
		if math.Float64bits(both.Period) != math.Float64bits(comb.Period) {
			t.Fatalf("%s[%d]: period diverged: tiers on %v, off %v", c.name, ci, both.Period, comb.Period)
		}
		if both.Mapping.String() != comb.Mapping.String() {
			t.Fatalf("%s[%d]: mapping diverged:\n  on  %v\n  off %v", c.name, ci, both.Mapping, comb.Mapping)
		}
		if both.Nodes > comb.Nodes {
			t.Fatalf("%s[%d]: tiers grew the proof: %d nodes vs %d without", c.name, ci, both.Nodes, comb.Nodes)
		}
		if both.Nodes < comb.Nodes {
			improved++
		}
		par, err := Solve(c.in, optsWithWorkers(on, 3))
		if err != nil {
			t.Fatalf("%s[%d] workers=3: %v", c.name, ci, err)
		}
		if !par.Proven || math.Float64bits(par.Period) != math.Float64bits(both.Period) ||
			par.Mapping.String() != both.Mapping.String() {
			t.Fatalf("%s[%d]: parallel run with tiers diverged from sequential", c.name, ci)
		}
	}
	if improved == 0 {
		t.Fatal("tiers never reduced a corpus proof; the strengthen path is dead")
	}
	t.Logf("tiers reduced the sequential proof on %d/%d corpus cases", improved, len(corpus))
}

// TestProvenRegimeRelaxNodeRatio: the production configuration (default
// warmup and gates) must prove the n=18 proven-regime instance in
// measurably fewer nodes than the combinatorial bound alone, with a
// byte-identical result.
func TestProvenRegimeRelaxNodeRatio(t *testing.T) {
	if raceEnabled {
		t.Skip("node-ratio measurement is redundant under the race detector")
	}
	in := symmetricInstanceF(t, 18, 2, 9, 3, 0, 0.1, 1804)
	both, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	comb, err := Solve(in, Options{Rule: core.Specialized, DisableAssignBound: true, DisableLPBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if !both.Proven || !comb.Proven {
		t.Fatalf("unproven (tiers %v, comb %v)", both.Proven, comb.Proven)
	}
	if math.Float64bits(both.Period) != math.Float64bits(comb.Period) {
		t.Fatalf("period diverged: tiers %v, comb %v", both.Period, comb.Period)
	}
	if both.Mapping.String() != comb.Mapping.String() {
		t.Fatalf("mapping diverged:\n  tiers %v\n  comb  %v", both.Mapping, comb.Mapping)
	}
	// Measured ~12.7% fewer nodes; 3% is the rot alarm, not the target.
	if both.Nodes*100 > comb.Nodes*97 {
		t.Fatalf("relaxation tiers reduced the n=18 proof by under 3%%: %d nodes vs %d", both.Nodes, comb.Nodes)
	}
	t.Logf("n=18 proof: %d nodes with tiers vs %d combinatorial-only (%.1f%% fewer)",
		both.Nodes, comb.Nodes, 100*(1-float64(both.Nodes)/float64(comb.Nodes)))
}
