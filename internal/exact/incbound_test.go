// Differential gates for the incremental bound engine (bound.go): the
// delta-maintained dlb/minLand/landArg state must reproduce the
// from-scratch computation bit for bit at every node — not approximately,
// because the bound's early-exit comparisons and the relax tiers' collision
// gate read these values, and a single flipped bit could reshape the search
// tree. Three layers pin this:
//
//   - TestIncrementalBoundNodeIdentity: whole solves over the parallel
//     differential corpus, incremental vs DisableIncrementalBound, must
//     agree on node counts (sequential) and proven results (any worker
//     count);
//   - FuzzBoundDelta: a random instance × rule × assign/backtrack trace,
//     with every reached node's cached ingredients compared against a
//     fresh from-scratch searcher replayed to the same prefix;
//   - TestLowerBoundEarlyExitContract: the tested contract that an early
//     bound exit leaves the not-yet-filled (or still-stale) suffix of
//     minLand/landArg unread — strengthen only runs after a full fill.
//
// Smoke-run the fuzzer locally or in CI with:
//
//	go test -run='^$' -fuzz=FuzzBoundDelta -fuzztime=10s ./internal/exact
package exact

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// TestIncrementalBoundNodeIdentity solves the full differential corpus with
// the incremental bound on and off. Sequential runs must be node-for-node
// identical (same Nodes, same period bits, same mapping); parallel runs
// must keep proven results byte-identical for every worker count (parallel
// node counts are timing-dependent either way — workers prune against a
// shared incumbent that lands at different moments per run — so only the
// sequential leg pins Nodes).
func TestIncrementalBoundNodeIdentity(t *testing.T) {
	defer forceIncBound(t)()
	corpus := differentialCorpus(t)
	for ci, c := range corpus {
		opts := Options{Rule: c.rule, MaxNodes: 4_000_000}
		inc, err := Solve(c.in, opts)
		if err != nil {
			t.Fatalf("%s[%d]: incremental: %v", c.name, ci, err)
		}
		off := opts
		off.DisableIncrementalBound = true
		scratch, err := Solve(c.in, off)
		if err != nil {
			t.Fatalf("%s[%d]: from-scratch: %v", c.name, ci, err)
		}
		if inc.Nodes != scratch.Nodes {
			t.Fatalf("%s[%d]: node counts diverged: incremental %d, from-scratch %d",
				c.name, ci, inc.Nodes, scratch.Nodes)
		}
		if inc.Proven != scratch.Proven ||
			math.Float64bits(inc.Period) != math.Float64bits(scratch.Period) ||
			inc.Mapping.String() != scratch.Mapping.String() {
			t.Fatalf("%s[%d]: results diverged: incremental (%v, %v, %v), from-scratch (%v, %v, %v)",
				c.name, ci, inc.Period, inc.Proven, inc.Mapping, scratch.Period, scratch.Proven, scratch.Mapping)
		}
		if ci%3 != 0 {
			continue // parallel legs on a corpus subset keep the test quick
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := Solve(c.in, optsWithWorkers(off, workers))
			if err != nil {
				t.Fatalf("%s[%d] workers=%d: %v", c.name, ci, workers, err)
			}
			if par.Proven != inc.Proven ||
				math.Float64bits(par.Period) != math.Float64bits(inc.Period) ||
				par.Mapping.String() != inc.Mapping.String() {
				t.Fatalf("%s[%d] workers=%d from-scratch: (%v, %v, %v), incremental sequential (%v, %v, %v)",
					c.name, ci, workers, par.Period, par.Proven, par.Mapping, inc.Period, inc.Proven, inc.Mapping)
			}
		}
	}
}

// TestIncrementalBoundNodeIdentityRelaxForced repeats the sequential
// node-identity gate with the relaxation tiers live from the first node:
// the tiers read the cached minLand/landArg directly, so this leg proves
// the incremental cache feeds them the exact bits the from-scratch fill
// would — gate-state evolution, collision scans and all.
func TestIncrementalBoundNodeIdentityRelaxForced(t *testing.T) {
	defer forceIncBound(t)()
	old := relaxWarmup
	relaxWarmup = 0
	defer func() { relaxWarmup = old }()
	corpus := differentialCorpus(t)
	for ci, c := range corpus {
		if ci%2 != 0 {
			continue
		}
		opts := Options{Rule: c.rule, MaxNodes: 4_000_000}
		inc, err := Solve(c.in, opts)
		if err != nil {
			t.Fatalf("%s[%d]: incremental: %v", c.name, ci, err)
		}
		off := opts
		off.DisableIncrementalBound = true
		scratch, err := Solve(c.in, off)
		if err != nil {
			t.Fatalf("%s[%d]: from-scratch: %v", c.name, ci, err)
		}
		if inc.Nodes != scratch.Nodes ||
			math.Float64bits(inc.Period) != math.Float64bits(scratch.Period) ||
			inc.Mapping.String() != scratch.Mapping.String() {
			t.Fatalf("%s[%d]: relax-forced runs diverged: incremental (%d nodes, %v), from-scratch (%d nodes, %v)",
				c.name, ci, inc.Nodes, inc.Period, scratch.Nodes, scratch.Period)
		}
	}
}

// forceIncBound bypasses the incremental engine's structural auto gate for
// the duration of a test: the differential corpus and the fuzz decoder
// build small, often dense instances the gate would route to the
// from-scratch path, and these tests exist to exercise the incremental one.
func forceIncBound(t testing.TB) func() {
	t.Helper()
	old := incBoundForce
	incBoundForce = true
	return func() { incBoundForce = old }
}

// incWalker drives a searcher down and up an explicit assign stack the way
// dfs would — rule bookkeeping, pricer and incremental hooks in the same
// order — so tests can stop at arbitrary interior nodes.
type incWalker struct {
	s     *searcher
	stack []incFrame
}

type incFrame struct {
	u    int
	spec app.TypeID
	used bool
}

func (w *incWalker) depth() int { return len(w.stack) }

func (w *incWalker) prefix() []platform.MachineID {
	p := make([]platform.MachineID, len(w.stack))
	for j, f := range w.stack {
		p[j] = platform.MachineID(f.u)
	}
	return p
}

func (w *incWalker) descend(u int) {
	s, k := w.s, len(w.stack)
	i := s.order[k]
	w.stack = append(w.stack, incFrame{u: u, spec: s.spec[u], used: s.used[u]})
	s.spec[u] = s.in.App.Type(i)
	s.used[u] = true
	s.occupy(u)
	_ = s.pr.Assign(i, platform.MachineID(u))
	if s.inc {
		s.ibAssign(k, u)
	}
}

func (w *incWalker) backtrack() {
	s, k := w.s, len(w.stack)-1
	f := w.stack[k]
	w.stack = w.stack[:k]
	s.pr.Unassign(s.order[k])
	if s.inc {
		s.ibUnassign(k)
	}
	s.vacate(f.u)
	s.spec[f.u], s.used[f.u] = f.spec, f.used
}

// FuzzBoundDelta: along any feasible assign/backtrack trace, the
// incremental searcher's bound ingredients — demand lower bounds, cheapest
// landings, argmin machines — and the full bound value must be bit-equal to
// a from-scratch searcher replayed to the same prefix.
func FuzzBoundDelta(f *testing.F) {
	f.Add([]byte("bound-delta-incremental"))
	f.Add([]byte{6, 3, 2, 0, 120, 40, 1, 90, 0, 55, 2, 80, 1, 70, 3, 1, 2, 0, 1, 2})
	f.Add([]byte{5, 5, 2, 1, 30, 60, 90, 120, 150, 180, 210, 240, 14, 3, 1})
	f.Add([]byte("\x07\x04\x01\x01chain-descend-backtrack\x22"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		defer forceIncBound(t)()
		p := &fuzzTape{data: data}
		in, err := decodeBoundInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		rule := core.Specialized
		switch p.next() % 3 {
		case 0:
			if in.N() <= in.M() {
				rule = core.OneToOne
			}
		case 1:
			rule = core.GeneralRule
		}
		sv, err := newSolver(in, Options{Rule: rule})
		if err != nil {
			t.Fatal(err)
		}
		w := &incWalker{s: sv.newSearcher(nil)}
		if !w.s.inc {
			t.Fatal("default searcher is not incremental")
		}
		n := in.N()
		check := func(step int) {
			s := w.s
			k := w.depth()
			// Full +Inf walk refreshes every stale landing in [k, n) and
			// returns the complete bound value.
			got := s.lowerBound(k, math.Inf(1), math.Inf(1))
			// From-scratch oracle at the same node, relax tracking forced
			// so its minLand/landArg fill too.
			sv2, err := newSolver(in, Options{Rule: rule, DisableIncrementalBound: true})
			if err != nil {
				t.Fatal(err)
			}
			s2 := sv2.newSearcher(nil)
			s2.rx = newRelaxer(in, false, false)
			s2.minLand = make([]float64, n)
			s2.landArg = make([]int, n)
			s2.push(w.prefix())
			want := s2.lowerBound(k, math.Inf(1), math.Inf(1))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("step %d depth %d: bound %v (bits %x), from-scratch %v (bits %x)",
					step, k, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if math.IsInf(want, 1) {
				// An infinite landing (no feasible machine for some unplaced
				// task) trips the early exit even at +Inf thresholds, in both
				// modes at the same position; past it the from-scratch arrays
				// are unfilled by contract, so there is nothing to compare.
				return
			}
			for j := k; j < n; j++ {
				if math.Float64bits(s.dlb[j]) != math.Float64bits(s2.dlb[j]) {
					t.Fatalf("step %d depth %d: dlb[%d] = %v, from-scratch %v", step, k, j, s.dlb[j], s2.dlb[j])
				}
				if math.Float64bits(s.minLand[j]) != math.Float64bits(s2.minLand[j]) {
					t.Fatalf("step %d depth %d: minLand[%d] = %v, from-scratch %v", step, k, j, s.minLand[j], s2.minLand[j])
				}
				if s.landArg[j] != s2.landArg[j] {
					t.Fatalf("step %d depth %d: landArg[%d] = %d, from-scratch %d", step, k, j, s.landArg[j], s2.landArg[j])
				}
			}
		}
		check(0)
		for step := 1; step <= 24; step++ {
			k := w.depth()
			down := p.next()%2 == 0 && k < n
			if down {
				i := w.s.order[k]
				ty := in.App.Type(i)
				var feas []int
				for u := 0; u < in.M(); u++ {
					if w.s.feasible(u, ty) {
						feas = append(feas, u)
					}
				}
				if len(feas) == 0 {
					down = false
				} else {
					w.descend(feas[p.intn(len(feas))])
				}
			}
			if !down {
				if k == 0 {
					continue
				}
				w.backtrack()
			}
			check(step)
		}
		for w.depth() > 0 {
			w.backtrack()
			check(100 + w.depth())
		}
	})
}

// TestLowerBoundEarlyExitContract pins the early-exit invariant from both
// sides. From-scratch mode: when the bound returns early, the relax tiers
// must not have run (strengthen is only reached after a full fill), and the
// minLand/landArg suffix past the exit point must be untouched — poisoned
// sentinels survive. Incremental mode: the same no-strengthen guarantee,
// with the stale marks past the last refresh window left standing rather
// than repriced. A +Inf call afterwards must fill (or refresh) everything.
func TestLowerBoundEarlyExitContract(t *testing.T) {
	defer forceIncBound(t)()
	in := symmetricInstanceF(t, 10, 2, 5, 3, 0.005, 0.05, 404)
	order := in.App.ReverseTopological()
	n := len(order)

	// Pick the exit threshold from an untouched oracle run: the full bound
	// at the root has maxTask = max cheapest landing; using the root's
	// first landing as the threshold forces the exit at j=0.
	svO, err := newSolver(in, Options{Rule: core.Specialized, DisableIncrementalBound: true})
	if err != nil {
		t.Fatal(err)
	}
	so := svO.newSearcher(nil)
	so.rx = newRelaxer(in, false, false)
	so.minLand = make([]float64, n)
	so.landArg = make([]int, n)
	if lb := so.lowerBound(0, math.Inf(1), math.Inf(1)); math.IsInf(lb, 1) {
		t.Fatal("root bound is infinite; pick another instance")
	}
	thr := so.minLand[0]
	if thr <= 0 {
		t.Fatalf("first landing %v is not positive", thr)
	}

	t.Run("from-scratch", func(t *testing.T) {
		sv, err := newSolver(in, Options{Rule: core.Specialized, DisableIncrementalBound: true})
		if err != nil {
			t.Fatal(err)
		}
		s := sv.newSearcher(nil)
		s.rx = newRelaxer(in, false, false)
		s.minLand = make([]float64, n)
		s.landArg = make([]int, n)
		for j := range s.minLand {
			s.minLand[j] = math.NaN() // poison: a read would be visible
			s.landArg[j] = -7
		}
		lb := s.lowerBound(0, thr, math.Inf(1))
		if lb < thr {
			t.Fatalf("bound %v did not reach the exit threshold %v", lb, thr)
		}
		if s.rx.aTries != 0 || s.rx.lTries != 0 {
			t.Fatalf("relax tiers ran on an early-exited bound (aTries=%d, lTries=%d)", s.rx.aTries, s.rx.lTries)
		}
		// The exit fired at j=0: every later position must still be poisoned.
		for j := 1; j < n; j++ {
			if !math.IsNaN(s.minLand[j]) || s.landArg[j] != -7 {
				t.Fatalf("early exit filled minLand[%d]=%v landArg[%d]=%d past the exit point",
					j, s.minLand[j], j, s.landArg[j])
			}
		}
		// A full +Inf pass overwrites every sentinel.
		if lb := s.lowerBound(0, math.Inf(1), math.Inf(1)); math.IsInf(lb, 1) {
			t.Fatalf("full bound is infinite: %v", lb)
		}
		for j := 0; j < n; j++ {
			if math.IsNaN(s.minLand[j]) || s.landArg[j] == -7 {
				t.Fatalf("full fill left position %d poisoned", j)
			}
		}
	})

	t.Run("incremental", func(t *testing.T) {
		sv, err := newSolver(in, Options{Rule: core.Specialized})
		if err != nil {
			t.Fatal(err)
		}
		s := sv.newSearcher(nil)
		if !s.inc {
			t.Fatal("default searcher is not incremental")
		}
		s.rx = newRelaxer(in, false, false)
		// Landings start lazily stale; one full root bound fills the cache
		// so the descend below has fresh argmins to invalidate.
		if lb := s.lowerBound(0, math.Inf(1), math.Inf(1)); math.IsInf(lb, 1) {
			t.Fatalf("root bound is infinite: %v", lb)
		}
		// Descend one level so the suffix has stale landings to (not)
		// refresh: landing on a machine invalidates every cached landing
		// whose argmin is that machine, so descending onto the LAST
		// position's argmin guarantees a stale position past the first
		// refresh window.
		u0 := s.landArg[n-1]
		if u0 < 0 {
			t.Fatalf("position %d has no feasible landing at the root", n-1)
		}
		w := &incWalker{s: s}
		w.descend(u0)
		if s.ibNPend != 1 {
			t.Fatalf("descend did not defer the delta sweep (%d pending)", s.ibNPend)
		}
		if n <= 1+ibWindow {
			t.Fatalf("seed has no position past the first refresh window (n=%d, window=%d)", n, ibWindow)
		}

		// Top-of-bound exit (the common pruned-node path): the current
		// maximum already meets the threshold, so the walk never starts —
		// the deferred delta sweep is not even applied, zero re-pricing,
		// no tiers.
		lb := s.lowerBound(1, s.pr.Max(), s.pr.Max())
		if math.Float64bits(lb) != math.Float64bits(s.pr.Max()) {
			t.Fatalf("top exit returned %v, want the current maximum %v", lb, s.pr.Max())
		}
		if s.ibNPend != 1 {
			t.Fatal("top exit applied the deferred delta sweep")
		}
		if s.rx.aTries != 0 || s.rx.lTries != 0 {
			t.Fatalf("relax tiers ran on a top-exited bound (aTries=%d, lTries=%d)", s.rx.aTries, s.rx.lTries)
		}

		// Mid-loop exit at the first suffix position: take the threshold
		// from a from-scratch oracle at the same node, so the exit fires
		// the moment position 1's refreshed landing lands on the same bits.
		svO2, err := newSolver(in, Options{Rule: core.Specialized, DisableIncrementalBound: true})
		if err != nil {
			t.Fatal(err)
		}
		s2 := svO2.newSearcher(nil)
		s2.rx = newRelaxer(in, false, false)
		s2.minLand = make([]float64, n)
		s2.landArg = make([]int, n)
		s2.push(w.prefix())
		full := s2.lowerBound(1, math.Inf(1), math.Inf(1))
		thr := s2.minLand[1]
		if thr <= s.pr.Max() {
			t.Fatalf("seed does not exercise the mid-loop exit: first landing %v under current max %v", thr, s.pr.Max())
		}
		lb = s.lowerBound(1, thr, math.Inf(1))
		if math.Float64bits(lb) != math.Float64bits(thr) {
			t.Fatalf("mid-loop exit returned %v, want the first landing %v", lb, thr)
		}
		if s.ibNPend != 0 {
			t.Fatalf("bound walk left the delta sweep pending (%d)", s.ibNPend)
		}
		if s.rx.aTries != 0 || s.rx.lTries != 0 {
			t.Fatalf("relax tiers ran on an early-exited bound (aTries=%d, lTries=%d)", s.rx.aTries, s.rx.lTries)
		}
		// The sweep (applied just now) invalidated position n-1 — u0 was its
		// argmin — and the exit fired inside the first refresh window
		// [1, 1+ibWindow): positions past it must still be stale — their
		// re-pricing was never paid for.
		if !s.ibStale[n-1] {
			t.Fatalf("early exit re-priced position %d beyond its refresh window", n-1)
		}

		// A full +Inf walk refreshes everything and reproduces the
		// from-scratch bound bit for bit.
		lb = s.lowerBound(1, math.Inf(1), math.Inf(1))
		if math.Float64bits(lb) != math.Float64bits(full) {
			t.Fatalf("full incremental bound %v, from-scratch %v", lb, full)
		}
		for j := 1; j < n; j++ {
			if s.ibStale[j] {
				t.Fatalf("full walk left position %d stale", j)
			}
		}
		w.backtrack()
	})
}
