package exact

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// symmetricInstanceF is symmetricInstance with explicit failure-rate range:
// a chain of n tasks (p types) on m machines drawn from `distinct` column
// specs with f in [fmin, fmax]. High fmax pushes instances into the
// paper's hard high-failure regime where product counts diverge.
func symmetricInstanceF(t testing.TB, n, p, m, distinct int, fmin, fmax float64, seed int64) *core.Instance {
	t.Helper()
	specs := distinct
	if specs < p {
		specs = p
	}
	pr := gen.Default(n, p, specs)
	pr.FMin, pr.FMax = fmin, fmax
	base, err := gen.Chain(pr, gen.RNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	w := make([][]float64, n)
	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		w[i] = make([]float64, m)
		f[i] = make([]float64, m)
		for u := 0; u < m; u++ {
			src := platform.MachineID(u % distinct)
			w[i][u] = base.Platform.Time(id, src)
			f[i][u] = base.Failures.Rate(id, src)
		}
	}
	pl, err := platform.New(w)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := failure.New(f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewInstance(base.App, pl, fm)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// completionOptimum exhaustively enumerates every rule-feasible completion
// of the prefix (machines for order[0..len(prefix))) and returns the best
// from-scratch period (+Inf when no feasible completion exists). ok=false
// when the node cap was hit before the enumeration finished. It shares no
// pruning or pricing with the solver under test: leaves are priced by
// core.Period on a fresh mapping.
func completionOptimum(in *core.Instance, rule core.Rule, order []app.TaskID, prefix []platform.MachineID, nodeCap int) (float64, bool) {
	n, m := in.N(), in.M()
	mp := core.NewMapping(n)
	spec := make([]app.TypeID, m)
	used := make([]bool, m)
	for u := range spec {
		spec[u] = noType
	}
	place := func(j int, u platform.MachineID) {
		i := order[j]
		mp.Assign(i, u)
		spec[u] = in.App.Type(i)
		used[u] = true
	}
	for j, u := range prefix {
		place(j, u)
	}
	best := math.Inf(1)
	nodes := 0
	var rec func(j int) bool
	rec = func(j int) bool {
		nodes++
		if nodes > nodeCap {
			return false
		}
		if j == n {
			if p := core.Period(in, mp); p < best {
				best = p
			}
			return true
		}
		i := order[j]
		ty := in.App.Type(i)
		for u := 0; u < m; u++ {
			switch rule {
			case core.OneToOne:
				if used[u] {
					continue
				}
			case core.Specialized:
				if spec[u] != noType && spec[u] != ty {
					continue
				}
			}
			prevSpec, prevUsed := spec[u], used[u]
			place(j, platform.MachineID(u))
			done := rec(j + 1)
			mp.Unassign(i)
			spec[u], used[u] = prevSpec, prevUsed
			if !done {
				return false
			}
		}
		return true
	}
	return best, rec(len(prefix))
}

// feasiblePrefix draws a rule-feasible prefix of the search order: depth
// tasks assigned to machines chosen by pick (pick returns any int; it is
// reduced modulo the number of feasible machines). The returned prefix may
// be shorter than depth when a task has no feasible machine left.
func feasiblePrefix(in *core.Instance, rule core.Rule, order []app.TaskID, depth int, pick func(i int) int) []platform.MachineID {
	m := in.M()
	spec := make([]app.TypeID, m)
	used := make([]bool, m)
	for u := range spec {
		spec[u] = noType
	}
	var prefix []platform.MachineID
	for j := 0; j < depth && j < len(order); j++ {
		i := order[j]
		ty := in.App.Type(i)
		var feas []platform.MachineID
		for u := 0; u < m; u++ {
			switch rule {
			case core.OneToOne:
				if used[u] {
					continue
				}
			case core.Specialized:
				if spec[u] != noType && spec[u] != ty {
					continue
				}
			}
			feas = append(feas, platform.MachineID(u))
		}
		if len(feas) == 0 {
			break
		}
		u := feas[((pick(j)%len(feas))+len(feas))%len(feas)]
		prefix = append(prefix, u)
		spec[u] = ty
		used[u] = true
	}
	return prefix
}

// boundAt replays a prefix on a fresh searcher and returns the solver's
// admissible lower bound for that node.
func boundAt(t testing.TB, in *core.Instance, rule core.Rule, prefix []platform.MachineID) float64 {
	t.Helper()
	sv, err := newSolver(in, Options{Rule: rule})
	if err != nil {
		t.Fatal(err)
	}
	s := sv.newSearcher(nil)
	s.push(prefix)
	// +Inf thresholds: the admissibility harness wants the full bound
	// value, never the early pruning exit.
	return s.lowerBound(len(prefix), math.Inf(1), math.Inf(1))
}
