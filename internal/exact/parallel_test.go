// Differential proof harness for the parallel root split: across a mixed
// corpus (all three rules, chains and in-trees, symmetric and
// heterogeneous platforms), the parallel search must return byte-identical
// results to the sequential one for every worker count. Run it under
// -race to also exercise the shared budget/incumbent synchronization (the
// CI race job does).
package exact

import (
	"context"
	"math"
	"testing"
	"time"

	"microfab/internal/core"
	"microfab/internal/gen"
)

// differentialCorpus draws the instances the parallel solver is gated on:
// >= 50 instances mixing shapes, platforms and rules. Each case carries
// the rule it is solved under (one-to-one cases keep n <= m).
type corpusCase struct {
	name string
	in   *core.Instance
	rule core.Rule
}

func differentialCorpus(t testing.TB) []corpusCase {
	t.Helper()
	var cs []corpusCase
	add := func(name string, in *core.Instance, err error, rule core.Rule) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cs = append(cs, corpusCase{name, in, rule})
	}
	rules := []core.Rule{core.Specialized, core.GeneralRule, core.OneToOne}
	// Heterogeneous chains, all rules (one-to-one keeps n <= m).
	for seed := int64(0); seed < 12; seed++ {
		rule := rules[seed%3]
		n, m := 8, 4
		if rule == core.OneToOne {
			n, m = 5, 6
		}
		in, err := gen.Chain(gen.Default(n, 3, m), gen.RNG(9000+seed))
		add("het-chain", in, err, rule)
	}
	// Heterogeneous in-trees.
	for seed := int64(0); seed < 12; seed++ {
		rule := rules[seed%3]
		n, m := 8, 4
		if rule == core.OneToOne {
			n, m = 5, 6
		}
		in, err := gen.InTree(gen.Default(n, 3, m), 2+int(seed%2), gen.RNG(9100+seed))
		add("het-intree", in, err, rule)
	}
	// Symmetric platforms (duplicated machine columns), both failure
	// regimes; dominance and bound interplay is strongest here.
	for seed := int64(0); seed < 14; seed++ {
		rule := rules[seed%3]
		n, m, dist := 8, 6, 1+int(seed%3)
		if rule == core.OneToOne {
			n = 6
		}
		fmax := 0.02
		if seed%2 == 1 {
			fmax = 0.1
		}
		cs = append(cs, corpusCase{"sym-chain",
			symmetricInstanceF(t, n, 2, m, dist, 0.005, fmax, 9200+seed), rule})
	}
	// A few larger specialized cases to stress the frontier split depth.
	for seed := int64(0); seed < 6; seed++ {
		in, err := gen.Chain(gen.Default(10, 3, 5), gen.RNG(9300+seed))
		add("wide-chain", in, err, core.Specialized)
	}
	// Warm-started cases: the incumbent path must stay deterministic too.
	for seed := int64(0); seed < 6; seed++ {
		in, err := gen.InTree(gen.Default(9, 3, 4), 2, gen.RNG(9400+seed))
		add("warm-intree", in, err, core.Specialized)
	}
	return cs
}

// TestExactParallelDifferential: Workers=2,4,8 must return byte-identical
// period, Proven flag and mapping vs the sequential search on the full
// corpus.
func TestExactParallelDifferential(t *testing.T) {
	corpus := differentialCorpus(t)
	if len(corpus) < 50 {
		t.Fatalf("corpus has %d instances, the gate requires >= 50", len(corpus))
	}
	for ci, c := range corpus {
		// A live (never-cancelled) context must be byte-identical to no
		// context at all: the budget only reads ctx.Err() at nodeBatch
		// reservations, it never changes what a worker explores.
		opts := Options{Rule: c.rule, MaxNodes: 4_000_000, Ctx: context.Background()}
		if c.name == "warm-intree" {
			// Seed the incumbent with a feasible mapping (the sequential
			// result of a tiny budget run is fine: determinism must hold
			// for any warm start as long as the search proves).
			warm, err := Solve(c.in, Options{Rule: c.rule, MaxNodes: 500})
			if err == nil {
				opts.Incumbent = warm.Mapping
			}
		}
		seq, err := Solve(c.in, opts)
		if err != nil {
			t.Fatalf("%s[%d]: sequential: %v", c.name, ci, err)
		}
		if !seq.Proven {
			t.Fatalf("%s[%d]: sequential search unproven (%d nodes); enlarge the budget or shrink the case",
				c.name, ci, seq.Nodes)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := Solve(c.in, optsWithWorkers(opts, workers))
			if err != nil {
				t.Fatalf("%s[%d] workers=%d: %v", c.name, ci, workers, err)
			}
			if par.Proven != seq.Proven {
				t.Fatalf("%s[%d] workers=%d: proven %v, sequential %v", c.name, ci, workers, par.Proven, seq.Proven)
			}
			if math.Float64bits(par.Period) != math.Float64bits(seq.Period) {
				t.Fatalf("%s[%d] workers=%d: period %v (bits %x), sequential %v (bits %x)",
					c.name, ci, workers, par.Period, math.Float64bits(par.Period), seq.Period, math.Float64bits(seq.Period))
			}
			if par.Mapping.String() != seq.Mapping.String() {
				t.Fatalf("%s[%d] workers=%d: mapping diverged:\n  par %v\n  seq %v",
					c.name, ci, workers, par.Mapping, seq.Mapping)
			}
		}
	}
}

func optsWithWorkers(o Options, w int) Options {
	o.Workers = w
	return o
}

// TestParallelNodeBudgetGlobal: MaxNodes is one shared pool, not a
// per-worker allowance — a parallel run must consume at most MaxNodes
// nodes in total and still return its best incumbent with Proven=false.
func TestParallelNodeBudgetGlobal(t *testing.T) {
	in := symmetricInstanceF(t, 16, 2, 8, 4, 0.005, 0.05, 77)
	const budget = 30_000
	for _, workers := range []int{1, 4, 8} {
		res, err := Solve(in, Options{
			Rule:         core.Specialized,
			MaxNodes:     budget,
			Workers:      workers,
			DisableBound: true, // keep the search big enough to exhaust the budget
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Proven {
			t.Fatalf("workers=%d: claimed proven under a %d-node budget", workers, budget)
		}
		if res.Mapping == nil {
			t.Fatalf("workers=%d: stopped search returned no incumbent", workers)
		}
		if err := res.Mapping.CheckRule(in.App, core.Specialized); err != nil {
			t.Fatalf("workers=%d: stopped incumbent breaks the rule: %v", workers, err)
		}
		if p := core.Period(in, res.Mapping); math.Float64bits(p) != math.Float64bits(res.Period) {
			t.Fatalf("workers=%d: reported period %v, mapping prices to %v", workers, res.Period, p)
		}
		if res.Nodes > budget {
			t.Fatalf("workers=%d: consumed %d nodes, budget was %d — the pool is not global", workers, res.Nodes, budget)
		}
		if res.Nodes < budget/2 {
			t.Fatalf("workers=%d: consumed only %d of %d nodes yet stopped unproven", workers, res.Nodes, budget)
		}
	}
}

// TestParallelTimeLimitStops: a deadline must interrupt all workers and
// still surface the best incumbent found, with Proven=false.
func TestParallelTimeLimitStops(t *testing.T) {
	in := symmetricInstanceF(t, 20, 2, 9, 3, 0, 0.1, 1804)
	start := time.Now()
	res, err := Solve(in, Options{
		Rule:         core.Specialized,
		TimeLimit:    30 * time.Millisecond,
		Workers:      4,
		DisableBound: true, // the bound would prove this instance quickly
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Fatalf("claimed proven under a 30ms limit (%d nodes)", res.Nodes)
	}
	if res.Mapping == nil {
		t.Fatal("stopped search returned no incumbent")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: ran %v", elapsed)
	}
}

// TestParallelWarmOptimalIncumbent: when the warm start is already
// optimal, every worker count must return exactly that mapping, proven.
func TestParallelWarmOptimalIncumbent(t *testing.T) {
	in, err := gen.Chain(gen.Default(8, 3, 4), gen.RNG(11))
	if err != nil {
		t.Fatal(err)
	}
	free, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		warm, err := Solve(in, Options{Rule: core.Specialized, Incumbent: free.Mapping, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Proven {
			t.Fatalf("workers=%d: warm-started search unproven", workers)
		}
		if math.Float64bits(warm.Period) != math.Float64bits(free.Period) {
			t.Fatalf("workers=%d: warm %v != cold %v", workers, warm.Period, free.Period)
		}
		if warm.Mapping.String() != free.Mapping.String() {
			t.Fatalf("workers=%d: warm mapping diverged from the optimal incumbent", workers)
		}
	}
}

// TestParallelInfeasible: error contracts survive the root split.
func TestParallelInfeasible(t *testing.T) {
	in, err := gen.Chain(gen.Default(5, 2, 3), gen.RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(in, Options{Rule: core.OneToOne, Workers: 4}); err == nil {
		t.Fatal("n > m one-to-one accepted by the parallel path")
	}
}
