package exact

import (
	"math"
	"testing"

	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
)

// TestOrderPreservesOptimum: the best-first child order and the greedy
// restart dive are search-order devices, not heuristics — on a mixed
// corpus the proven period must be bit-identical with ordering on and off.
// (The mapping may legitimately differ: with several optimal mappings the
// two orders can reach a different first optimal leaf.)
func TestOrderPreservesOptimum(t *testing.T) {
	for ci, c := range differentialCorpus(t) {
		on, err := Solve(c.in, Options{Rule: c.rule, MaxNodes: 4_000_000})
		if err != nil {
			t.Fatalf("%s[%d]: %v", c.name, ci, err)
		}
		off, err := Solve(c.in, Options{Rule: c.rule, MaxNodes: 4_000_000, DisableOrder: true})
		if err != nil {
			t.Fatalf("%s[%d]: %v", c.name, ci, err)
		}
		if !on.Proven || !off.Proven {
			t.Fatalf("%s[%d]: budget interfered (proven %v/%v)", c.name, ci, on.Proven, off.Proven)
		}
		if math.Float64bits(on.Period) != math.Float64bits(off.Period) {
			t.Fatalf("%s[%d]: ordering changed the optimum: %v vs %v", c.name, ci, on.Period, off.Period)
		}
		if err := on.Mapping.CheckRule(c.in.App, c.rule); err != nil {
			t.Fatalf("%s[%d]: ordered search broke the rule: %v", c.name, ci, err)
		}
	}
}

// TestOrderCutsCorpusNodes pins the aggregate payoff: across the
// differential corpus the ordered search must explore clearly fewer nodes
// than the legacy ascending-machine order (observed ~1.5x at the time of
// writing; the gate is a conservative 1.2x).
func TestOrderCutsCorpusNodes(t *testing.T) {
	var on, off int64
	for _, c := range differentialCorpus(t) {
		a, err := Solve(c.in, Options{Rule: c.rule, MaxNodes: 4_000_000})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(c.in, Options{Rule: c.rule, MaxNodes: 4_000_000, DisableOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		on += a.Nodes
		off += b.Nodes
	}
	if float64(off) < 1.2*float64(on) {
		t.Fatalf("ordered search explored %d corpus nodes vs %d legacy — less than the 1.2x gate", on, off)
	}
	t.Logf("corpus nodes: ordered %d, legacy %d (%.2fx)", on, off, float64(off)/float64(on))
}

// TestGreedyDiveSeedsIncumbent: a budget-starved cold search must already
// return the greedy dive's near-optimal mapping — never worse than the H4
// greedy it mirrors — where the legacy order's first incumbent is whatever
// leaf ascending-machine DFS stumbles into first.
func TestGreedyDiveSeedsIncumbent(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		var in *core.Instance
		var err error
		if seed%2 == 0 {
			in, err = gen.Chain(gen.Default(14, 3, 7), gen.RNG(600+seed))
		} else {
			in, err = gen.InTree(gen.Default(14, 3, 7), 2, gen.RNG(600+seed))
		}
		if err != nil {
			t.Fatal(err)
		}
		starved, err := Solve(in, Options{Rule: core.Specialized, MaxNodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		if starved.Proven {
			t.Fatalf("seed %d: proven under a 2-node budget", seed)
		}
		h4, err := heuristics.H4(in, nil, heuristics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		h4P, err := core.PeriodE(in, h4)
		if err != nil {
			t.Fatal(err)
		}
		if starved.Period > h4P*(1+1e-9) {
			t.Fatalf("seed %d: starved incumbent %v worse than the H4 greedy %v — the dive is not seeding",
				seed, starved.Period, h4P)
		}
		if err := starved.Mapping.CheckRule(in.App, core.Specialized); err != nil {
			t.Fatalf("seed %d: dive incumbent breaks the rule: %v", seed, err)
		}
	}
}

// TestWarmStartOption: Options.WarmStart must bound the search with the
// H4w mapping — a starved search returns something at least that good, a
// full search still proves the same optimum, and the option composes with
// an explicit Incumbent (the better seed wins).
func TestWarmStartOption(t *testing.T) {
	in, err := gen.Chain(gen.Default(12, 3, 6), gen.RNG(77))
	if err != nil {
		t.Fatal(err)
	}
	h4w, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h4wP, err := core.PeriodE(in, h4w)
	if err != nil {
		t.Fatal(err)
	}
	starved, err := Solve(in, Options{Rule: core.Specialized, WarmStart: true, MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if starved.Period > h4wP*(1+1e-9) {
		t.Fatalf("warm-started starved search returned %v, H4w seed is %v", starved.Period, h4wP)
	}
	cold, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(in, Options{Rule: core.Specialized, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Proven || math.Float64bits(warm.Period) != math.Float64bits(cold.Period) {
		t.Fatalf("warm start changed the proven optimum: %v vs %v", warm.Period, cold.Period)
	}
	if warm.Nodes > cold.Nodes {
		t.Fatalf("warm start increased nodes: %d > %d", warm.Nodes, cold.Nodes)
	}
	// Composition: a deliberately optimal explicit incumbent plus
	// WarmStart must return exactly the incumbent, proven.
	both, err := Solve(in, Options{Rule: core.Specialized, WarmStart: true, Incumbent: cold.Mapping})
	if err != nil {
		t.Fatal(err)
	}
	if !both.Proven || math.Float64bits(both.Period) != math.Float64bits(cold.Period) {
		t.Fatalf("incumbent+warm composition lost the optimum: %v vs %v", both.Period, cold.Period)
	}
	if both.Mapping.String() != cold.Mapping.String() {
		t.Fatal("optimal explicit incumbent was not returned verbatim")
	}

	// The one-to-one rule rejects the (multi-task-per-machine) H4w seed:
	// WarmStart must silently skip it, not break the search.
	small, err := gen.Chain(gen.Default(4, 2, 5), gen.RNG(78))
	if err != nil {
		t.Fatal(err)
	}
	oto, err := Solve(small, Options{Rule: core.OneToOne, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !oto.Proven {
		t.Fatal("one-to-one warm-started search unproven")
	}
}

// TestOrderedParallelFirstIncumbent: the dive seed must survive the root
// split — a starved parallel search still returns a rule-valid incumbent
// no worse than the dive for any worker count.
func TestOrderedParallelFirstIncumbent(t *testing.T) {
	in, err := gen.Chain(gen.Default(14, 3, 7), gen.RNG(612))
	if err != nil {
		t.Fatal(err)
	}
	h4, err := heuristics.H4(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h4P, err := core.PeriodE(in, h4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := Solve(in, Options{Rule: core.Specialized, MaxNodes: 64, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Period > h4P*(1+1e-9) {
			t.Fatalf("workers=%d: starved parallel incumbent %v worse than the dive's %v",
				workers, res.Period, h4P)
		}
		if err := res.Mapping.CheckRule(in.App, core.Specialized); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}
