package exact

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/oto"
	"microfab/internal/platform"
)

func TestSpecializedMatchesNaiveEnumeration(t *testing.T) {
	// Independent ground truth: enumerate every m^n assignment, filter by
	// the rule, take the best period.
	for seed := int64(0); seed < 8; seed++ {
		in, err := gen.Chain(gen.Default(5, 2, 3), gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		want := naiveBest(in, core.Specialized)
		res, err := Solve(in, Options{Rule: core.Specialized})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Proven {
			t.Fatal("tiny search not proven")
		}
		if math.Abs(res.Period-want) > 1e-9*want {
			t.Fatalf("seed %d: exact %v != naive %v", seed, res.Period, want)
		}
		if err := res.Mapping.CheckRule(in.App, core.Specialized); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOneToOneMatchesOtoBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in, err := gen.Chain(gen.Default(4, 2, 5), gen.RNG(100+seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(in, Options{Rule: core.OneToOne})
		if err != nil {
			t.Fatal(err)
		}
		bf, err := oto.BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Period-core.Period(in, bf)) > 1e-9*res.Period {
			t.Fatalf("seed %d: %v != %v", seed, res.Period, core.Period(in, bf))
		}
	}
}

func TestGeneralRuleAtLeastAsGood(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in, err := gen.Chain(gen.Default(5, 2, 3), gen.RNG(200+seed))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Solve(in, Options{Rule: core.Specialized})
		if err != nil {
			t.Fatal(err)
		}
		genl, err := Solve(in, Options{Rule: core.GeneralRule})
		if err != nil {
			t.Fatal(err)
		}
		if genl.Period > spec.Period+1e-9 {
			t.Fatalf("seed %d: general %v worse than specialized %v", seed, genl.Period, spec.Period)
		}
	}
}

func TestOneToOneImpossible(t *testing.T) {
	in, err := gen.Chain(gen.Default(5, 2, 3), gen.RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(in, Options{Rule: core.OneToOne}); err == nil {
		t.Fatal("n > m one-to-one accepted")
	}
}

func TestIncumbentBoundsSearch(t *testing.T) {
	in, err := gen.Chain(gen.Default(6, 2, 3), gen.RNG(4))
	if err != nil {
		t.Fatal(err)
	}
	free, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(in, Options{Rule: core.Specialized, Incumbent: free.Mapping})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Period-free.Period) > 1e-9 {
		t.Fatalf("warm %v != cold %v", warm.Period, free.Period)
	}
	if warm.Nodes > free.Nodes {
		t.Fatalf("incumbent increased nodes: %d > %d", warm.Nodes, free.Nodes)
	}
}

func TestNodeBudgetReturnsIncumbent(t *testing.T) {
	in, err := gen.Chain(gen.Default(10, 3, 5), gen.RNG(8))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{Rule: core.Specialized, MaxNodes: 5, Incumbent: full.Mapping})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Fatal("claimed proven under a 50-node budget")
	}
	if res.Mapping == nil {
		t.Fatal("no incumbent returned")
	}
}

// naiveBest enumerates all assignments (no pruning, no shared state with
// the solver under test).
func naiveBest(in *core.Instance, rule core.Rule) float64 {
	n, m := in.N(), in.M()
	assign := make([]platform.MachineID, n)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			mp := core.FromSlice(assign)
			if err := mp.CheckRule(in.App, rule); err != nil {
				return
			}
			if p := core.Period(in, mp); p < best {
				best = p
			}
			return
		}
		for u := 0; u < m; u++ {
			assign[i] = platform.MachineID(u)
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestInTreeExact(t *testing.T) {
	in, err := gen.InTree(gen.Default(6, 2, 3), 2, gen.RNG(3))
	if err != nil {
		t.Fatal(err)
	}
	want := naiveBest(in, core.Specialized)
	res, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Period-want) > 1e-9*want {
		t.Fatalf("in-tree exact %v != naive %v", res.Period, want)
	}
	var _ = app.NoTask
}
