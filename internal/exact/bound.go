// Admissible per-node lower bounds for the branch and bound, plus the
// shared search budget and the cross-worker incumbent.
//
// The bound combines three valid relaxations of "best completion of this
// node", each a pure function of the current partial assignment:
//
//   - current maximum load: loads only grow as tasks are placed;
//   - cheapest-remaining-task: the machine that ends up carrying an
//     unplaced task i gains at least dlb(i)·min_u F(i,u)·w(i,u), where
//     dlb(i) lower-bounds i's downstream demand (exact x[succ] when the
//     successor is placed, optimistic min-inflation product otherwise);
//   - work packing: total work must fit on m machines, so the period is at
//     least total/m. Under the Specialized rule this sharpens to a
//     type-count bound: tasks of a type occupy machines dedicated to it,
//     so water-filling the m machines over the per-type work totals gives
//     min over allocations {k_t >= 1, Σk_t <= m} of max_t W_t/k_t — +Inf
//     when more types than machines remain, which also proves
//     infeasibility.
//
// Admissibility is fuzz-gated by FuzzExactBound against a brute-force
// completion oracle.
package exact

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// bounder holds the static ingredients of the per-node lower bound; it is
// read-only after construction and shared by all workers.
type bounder struct {
	// minInfl[i] = min_u 1/(1-f[i][u]): the most optimistic inflation any
	// machine offers task i.
	minInfl []float64
	// minCost[i] = min_u F(i,u)·w(i,u): the cheapest contribution task i
	// can make to any machine, per unit of downstream demand.
	minCost []float64
	// pos[i] is task i's position in the search order.
	pos []int
	// succPos[k] is the order position of order[k]'s successor (-1 at a
	// root). Reverse-topological order puts every successor earlier, so
	// succPos[k] < k — the property the incremental demand sweep leans on.
	succPos []int
	// minInflAt/minCostAt/typeAt re-index minInfl, minCost and the task
	// type by order position: the incremental sweeps are position-indexed,
	// and skipping the order[] indirection matters on their hot path.
	minInflAt []float64
	minCostAt []float64
	typeAt    []app.TypeID
}

func newBounder(in *core.Instance, order []app.TaskID) *bounder {
	n, m := in.N(), in.M()
	b := &bounder{typeAt: make([]app.TypeID, n)}
	floats := make([]float64, 4*n)
	b.minInfl, floats = floats[:n:n], floats[n:]
	b.minCost, floats = floats[:n:n], floats[n:]
	b.minInflAt, floats = floats[:n:n], floats[n:]
	b.minCostAt = floats
	ints := make([]int, 2*n)
	b.pos, b.succPos = ints[:n:n], ints[n:]
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		bestInfl, bestCost := math.Inf(1), math.Inf(1)
		for u := 0; u < m; u++ {
			mu := platform.MachineID(u)
			infl := in.Failures.Inflation(id, mu)
			if infl < bestInfl {
				bestInfl = infl
			}
			if c := infl * in.Platform.Time(id, mu); c < bestCost {
				bestCost = c
			}
		}
		b.minInfl[i] = bestInfl
		b.minCost[i] = bestCost
	}
	for k, i := range order {
		b.pos[i] = k
	}
	for k, i := range order {
		if succ := in.App.Successor(i); succ == app.NoTask {
			b.succPos[k] = -1
		} else {
			b.succPos[k] = b.pos[succ]
		}
		b.minInflAt[k] = b.minInfl[i]
		b.minCostAt[k] = b.minCost[i]
		b.typeAt[k] = in.App.Type(i)
	}
	return b
}

// sumSlack deflates the summation-based bound ingredients (water-filling,
// total/m packing): their accumulations associate differently from any
// machine's load sum, so a bound that ties the true optimum to the last
// ulp could otherwise overshoot it by rounding and prune an optimal
// subtree. The slack is ~1e4 times the worst accumulated relative error
// (n·2⁻⁵²) and costs nothing measurable in pruning power. The remaining
// ingredients (max load, cheapest landing) reproduce the DFS's own load
// expressions term for term and need none.
const sumSlack = 1 - 1e-12

// lowerBound returns an admissible lower bound on the period of any
// completion of the current node (order[0..k) placed). O((n-k)·m) plus
// the water-filling pass under the Specialized rule.
//
// localBest and sharedP are the caller's pruning thresholds: the bound
// only ever grows while it accumulates, so the moment it crosses one
// (lb >= localBest or lb > sharedP) the caller will prune whatever the
// final value would have been, and lowerBound returns early. Callers that
// need the full bound value pass +Inf twice (see boundAt in the tests).
func (s *searcher) lowerBound(k int, localBest, sharedP float64) float64 {
	n := len(s.order)
	lb := s.pr.Max()
	if k == n || lb >= localBest || lb > sharedP {
		return lb
	}
	if s.relaxEnabled && s.rx == nil && s.meter.used >= relaxWarmup {
		// The search outgrew the relaxWarmup node count: build the
		// relaxation tiers (relax.go). Easy searches never get here, so
		// they never pay for the workspaces. The incremental mode owns
		// minLand/landArg from the start; only the from-scratch ablation
		// allocates them here, on first need.
		s.rx = newRelaxer(s.in, s.noAssign, s.noLP)
		if s.minLand == nil {
			s.minLand = make([]float64, n)
			s.landArg = make([]int, n)
		}
	}
	b := s.bnd
	spec := s.rule == core.Specialized
	var total float64
	if spec {
		// Placed work per type: placed contributions are exact (x is final
		// once the successor chain is placed) and only ever move between
		// machines of the same dedicated type.
		for t := range s.typeW {
			s.typeW[t] = 0
		}
		for j := 0; j < k; j++ {
			i := s.order[j]
			c := s.pr.X(i) * s.in.Platform.Time(i, s.pr.Machine(i))
			s.typeW[s.in.App.Type(i)] += c
			total += c
		}
	} else {
		for u := 0; u < s.m; u++ {
			total += s.pr.Load(platform.MachineID(u))
		}
	}
	// Unplaced suffix: propagate demand lower bounds root-first. order is
	// reverse topological, so a task's successor sits at an earlier
	// position — either placed (exact demand) or already visited in this
	// loop (optimistic demand). Each unplaced task must land on a machine
	// that is feasible *now* (completions only ever shrink the feasible
	// set: dedications and one-to-one uses are never undone), so the
	// cheapest landing — current load included — bounds the final period.
	//
	// In the default incremental mode the per-position ingredients (dlb,
	// minLand, landArg) are already maintained under every assign/unassign
	// (ibAssign/ibUnassign below), bit-identical to what the from-scratch
	// branch would recompute; the walk only re-prices positions whose
	// cached landing went stale, in fused PriceAllMulti batches of up to
	// ibWindow, and accumulates the same sums in the same order — so both
	// branches cross the early-exit thresholds at exactly the same j and
	// the search trees are node-for-node identical.
	maxTask := 0.0
	if s.inc {
		if s.ibNPend > 0 {
			s.ibApply()
		}
		dlb, minLand := s.dlb, s.minLand
		minCostAt, typeAt := b.minCostAt, b.typeAt
		scan := k
		for j := k; j < n; j++ {
			if j >= scan {
				scan = s.ibRefresh(j, n)
			}
			c := dlb[j] * minCostAt[j]
			total += c
			if spec {
				s.typeW[typeAt[j]] += c
			}
			if land := minLand[j]; land > maxTask {
				maxTask = land
				if maxTask >= localBest || maxTask > sharedP {
					// Already enough to prune; the remaining ingredients
					// could only raise the bound further. Positions past
					// the last refresh window stay stale — and unread.
					return maxTask
				}
			}
		}
	} else {
		track := s.rx != nil
		for j := k; j < n; j++ {
			i := s.order[j]
			var d float64
			if succ := s.in.App.Successor(i); succ == app.NoTask {
				d = 1
			} else if sp := b.pos[succ]; sp < k {
				d = s.pr.X(succ)
			} else {
				d = s.dlb[sp] * b.minInfl[succ]
			}
			s.dlb[j] = d
			c := d * b.minCost[i]
			total += c
			ty := s.in.App.Type(i)
			if spec {
				s.typeW[ty] += c
			}
			land := math.Inf(1)
			landAt := -1
			s.pr.PriceAllAt(i, d, s.land)
			for u := 0; u < s.m; u++ {
				if !s.feasible(u, ty) {
					continue
				}
				if at := s.land[u]; at < land {
					land, landAt = at, u
				}
			}
			if track {
				// The relaxation tiers' collision gate and representative
				// choice read these (relax.go) instead of re-pricing.
				s.minLand[j] = land
				s.landArg[j] = landAt
			}
			if land > maxTask {
				maxTask = land
				if maxTask >= localBest || maxTask > sharedP {
					// Already enough to prune; the remaining ingredients could
					// only raise the bound further.
					return maxTask
				}
			}
		}
	}
	if maxTask > lb {
		lb = maxTask
	}
	if spec {
		// Machines already dedicated to a type stay dedicated, so the
		// water-filling allocation floors each type at its current machine
		// count.
		for t := range s.ded {
			s.ded[t] = 0
		}
		for u := 0; u < s.m; u++ {
			if s.nOn[u] > 0 && s.spec[u] != noType {
				s.ded[s.spec[u]]++
			}
		}
		if wf := waterfill(s.typeW, s.ded, s.m, s.alloc) * sumSlack; wf > lb {
			lb = wf
		}
	} else if pk := total / float64(s.m) * sumSlack; pk > lb {
		lb = pk
	}
	if s.rx != nil {
		// Relaxation tiers (relax.go): the combinatorial bound failed to
		// prune, s.dlb is filled for this node — strengthen if the gates
		// say the extra work can convert.
		lb = s.strengthen(k, lb, localBest, sharedP)
	}
	return lb
}

// --- incremental bound state ---------------------------------------------
//
// One DFS assign perturbs the bound's per-position ingredients in exactly
// two narrow ways: the demand lower bounds change only along the assigned
// task's feeder chains (dlb propagates successor-to-feeder in the
// reverse-topological order), and one machine's load grows — monotonically
// — so a cached cheapest landing can only be invalidated when its argmin
// machine is the touched one (any other machine's price is unchanged, and
// the touched machine's price only grew, so a minimum attained elsewhere
// stays a minimum, first-of-equals tie-break included) or when the
// position's own demand changed. ibAssign records exactly those
// invalidations; the re-pricing itself is deferred to the next lowerBound
// walk (ibRefresh), which prices stale positions through the fused
// PriceAllMulti kernel and — like the from-scratch loop — stops paying at
// an early exit. Every mutation is logged with the overwritten values, so
// ibUnassign restores the state bit-exactly in LIFO order, the same
// discipline the Pricer applies to its loads.

// ibEntry is one change-log record: the position touched and the exact
// prior (dlb, minLand, landArg, stale) tuple to restore on unassign.
type ibEntry struct {
	j       int32
	landArg int32
	stale   bool
	dlb     float64
	minLand float64
}

// ibWindow is the refresh batch width: lowerBound's incremental walk
// re-prices stale positions in fused batches of up to this many, so an
// early exit over-prices at most ibWindow-1 positions beyond the exit
// point while long fills still amortize the kernel call.
const ibWindow = 8

// incBoundMinM is the machine-count floor of the auto gate: re-pricing a
// landing costs O(m), the bookkeeping a cache hit saves it with does not,
// so below this width recomputing from scratch is simply cheaper
// (measured crossover on in-tree instances: break-even near m=12, the
// incremental engine ahead from m=16).
const incBoundMinM = 12

// incBoundForce bypasses the auto gate (not the explicit ablation flag) so
// the differential tests exercise the incremental engine on instances the
// gate would route to the from-scratch path.
var incBoundForce = false

// incBoundAuto reports whether the delta-maintained bound state is expected
// to pay for itself on this instance. One DFS assign dirties the demand
// lower bounds of exactly the assigned task's feeder subtree, so the
// average subtree size is the engine's per-node delta cost — and on dense
// feeder forests (a chain is the worst case: every assign dirties the whole
// suffix) delta maintenance degenerates into the from-scratch sweep plus
// logging. The gate enables the engine when the average dirtied fraction is
// at most a third of the instance and machines are wide enough that the
// saved re-pricing outweighs the bookkeeping. Both modes compute
// bit-identical bounds, so the choice never changes a search result — only
// how fast it is reached.
func incBoundAuto(in *core.Instance, order []app.TaskID) bool {
	if in.M() < incBoundMinM {
		return false
	}
	n := len(order)
	sz := make([]int, n)
	for i := range sz {
		sz[i] = 1
	}
	total := 0
	// order is reverse topological (successors first), so walking it
	// backwards visits every feeder before its successor: sz accumulates
	// complete feeder-subtree sizes bottom-up.
	for k := n - 1; k >= 0; k-- {
		i := order[k]
		total += sz[i]
		if succ := in.App.Successor(i); succ != app.NoTask {
			sz[succ] += sz[i]
		}
	}
	return 3*total <= n*n
}

// initIncBound seeds the cached ingredients for the empty assignment: the
// demand lower bounds are filled eagerly (O(n) arithmetic, no pricing) and
// every landing starts stale, so the first lowerBound walk prices them on
// demand — and an early exit there skips the tail exactly like every later
// node does. No searcher ever pays for landings its bounds never read.
func (s *searcher) initIncBound() {
	b := s.bnd
	n := len(s.order)
	for j := 0; j < n; j++ {
		if sp := b.succPos[j]; sp < 0 {
			s.dlb[j] = 1
		} else {
			s.dlb[j] = s.dlb[sp] * b.minInflAt[sp]
		}
		s.landArg[j] = -1
		s.ibStale[j] = true
	}
}

// ibAssign records that order[k] landed on machine u. The delta sweep
// itself is deferred until a bound walk needs the cached state (ibApply):
// a leaf assign, or one whose child bound exits on the current maximum
// alone, then costs O(1) instead of O(n-k) — and in a DFS tree the deepest
// levels are most of the nodes.
func (s *searcher) ibAssign(k, u int) {
	s.ibPendK[s.ibNPend] = k
	s.ibPendU[s.ibNPend] = u
	s.ibNPend++
}

// ibApply drains the deferred assigns in frame order, bringing dlb and the
// staleness marks up to date with the pricer. Called by lowerBound before
// its incremental walk reads any cached ingredient.
func (s *searcher) ibApply() {
	for p := 0; p < s.ibNPend; p++ {
		s.ibApplyOne(s.ibPendK[p], s.ibPendU[p])
	}
	s.ibNPend = 0
}

// ibApplyOne is the delta sweep for one recorded assign (pricer and rule
// bookkeeping already updated): one ascending pass over the unplaced
// positions updates every dlb the assign changed and marks the positions
// whose cached landing can no longer be trusted. No pricing work at all —
// that is deferred further, to ibRefresh.
func (s *searcher) ibApplyOne(k, u int) {
	s.ibMark[k] = len(s.ibLog)
	s.ibGen++
	gen := s.ibGen
	s.ibPrevGen[k] = s.ibOpenGen
	s.ibOpenGen = gen
	b := s.bnd
	n := len(s.order)
	xi := s.pr.X(s.order[k])
	dlb, minLand, landArg := s.dlb, s.minLand, s.landArg
	stale, stamp, logStamp := s.ibStale, s.ibStamp, s.ibLogStamp
	succPos, minInflAt := b.succPos, b.minInflAt
	for j := k + 1; j < n; j++ {
		nd := dlb[j]
		if sp := succPos[j]; sp == k {
			// The successor was just placed: the optimistic product
			// becomes the exact x.
			nd = xi
		} else if sp > k && stamp[sp] == gen {
			// The successor's own dlb changed earlier in this sweep
			// (ascending j visits sp < j first); recompute from it.
			nd = dlb[sp] * minInflAt[sp]
		}
		if nd != dlb[j] {
			s.ibLog = append(s.ibLog, ibEntry{j: int32(j), landArg: int32(landArg[j]),
				stale: stale[j], dlb: dlb[j], minLand: minLand[j]})
			logStamp[j] = gen
			dlb[j] = nd
			stamp[j] = gen
			stale[j] = true
			continue
		}
		// Demand bit-unchanged: propagation legitimately stops here (any
		// downstream recomputation would reproduce the cached bits), and
		// the landing survives unless its argmin is the touched machine.
		// A stale position's cached argmin may be outdated, but stale
		// already means "re-price before trusting" — nothing to add.
		if !stale[j] && landArg[j] == u {
			s.ibLog = append(s.ibLog, ibEntry{j: int32(j), landArg: int32(landArg[j]),
				stale: false, dlb: dlb[j], minLand: minLand[j]})
			logStamp[j] = gen
			stale[j] = true
		}
	}
}

// ibUnassign reverts ibAssign(k, ·). If that assign is still pending (no
// bound walk needed the cache while the frame was open — a leaf, or a child
// pruned on its current maximum alone), reverting is dropping the record.
// Otherwise it pops the change log back to the watermark ibApplyOne set,
// restoring every touched tuple to its exact prior bits (reverse order: a
// position logged twice — assign dirty, then lazy refresh — ends on its
// assign-time value).
func (s *searcher) ibUnassign(k int) {
	if s.ibNPend > 0 && s.ibPendK[s.ibNPend-1] == k {
		s.ibNPend--
		return
	}
	mark := s.ibMark[k]
	dlb, minLand, landArg, stale := s.dlb, s.minLand, s.landArg, s.ibStale
	for e := len(s.ibLog) - 1; e >= mark; e-- {
		en := &s.ibLog[e]
		dlb[en.j] = en.dlb
		minLand[en.j] = en.minLand
		landArg[en.j] = int(en.landArg)
		stale[en.j] = en.stale
	}
	s.ibLog = s.ibLog[:mark]
	s.ibOpenGen = s.ibPrevGen[k]
}

// ibRefresh re-prices the stale positions in the window [from, from+ibWindow)
// (clamped to n) and returns the window end: every position below it is
// trusted afterwards. Refreshes run inside lowerBound, after the node's
// ibAssign, so the log entries they append belong to the innermost open
// frame and are restored by its ibUnassign.
func (s *searcher) ibRefresh(from, n int) int {
	hi := from + ibWindow
	if hi > n {
		hi = n
	}
	stale := s.ibStale
	cnt := 0
	for j := from; j < hi; j++ {
		if stale[j] {
			s.ibPos[cnt] = j
			cnt++
		}
	}
	switch cnt {
	case 0:
	case 1:
		// One stale landing: the fused kernel would price a batch of one;
		// PriceAllAt computes the same row bits without the batch setup.
		j := s.ibPos[0]
		s.pr.PriceAllAt(s.order[j], s.dlb[j], s.land)
		s.ibStore(j, s.land)
	default:
		s.ibRescan(s.ibPos[:cnt])
	}
	return hi
}

// ibRescan recomputes the cached cheapest landing of the given order
// positions from the current loads and feasibility in one fused
// PriceAllMulti pass.
func (s *searcher) ibRescan(pos []int) {
	tasks := s.ibTasks[:len(pos)]
	dem := s.ibDem[:len(pos)]
	dlb, order := s.dlb, s.order
	for t, j := range pos {
		tasks[t] = order[j]
		dem[t] = dlb[j]
	}
	out := s.ibOut[:len(pos)*s.m]
	s.pr.PriceAllMulti(tasks, dem, out)
	for t, j := range pos {
		s.ibStore(j, out[t*s.m:(t+1)*s.m])
	}
}

// ibStore logs (once per open frame) and installs position j's re-priced
// landing row: the same ascending strict-< feasible argmin scan as the
// from-scratch loop — bit-equal cells, so the first-of-equals tie-break
// lands on the same machine.
func (s *searcher) ibStore(j int, row []float64) {
	if s.ibOpenGen != 0 && s.ibLogStamp[j] != s.ibOpenGen {
		// Not yet logged in the innermost open frame (gen 0 means none is
		// open — a root pass needs no restore): save the pre-frame tuple.
		// A position the frame's ibAssign already logged restores through
		// that entry instead.
		s.ibLog = append(s.ibLog, ibEntry{j: int32(j), landArg: int32(s.landArg[j]),
			stale: true, dlb: s.dlb[j], minLand: s.minLand[j]})
		s.ibLogStamp[j] = s.ibOpenGen
	}
	ty := s.bnd.typeAt[j]
	land := math.Inf(1)
	landAt := -1
	for u := 0; u < s.m; u++ {
		if !s.feasible(u, ty) {
			continue
		}
		if at := row[u]; at < land {
			land, landAt = at, u
		}
	}
	s.minLand[j] = land
	s.landArg[j] = landAt
	s.ibStale[j] = false
}

// waterfill returns min over integer machine allocations
// {k_t >= max(1, ded[t]) for W[t] > 0, Σ k_t <= m} of max_t W[t]/k_t — the
// best period a Specialized mapping could reach if every type's work were
// perfectly divisible over the machines it may still claim. +Inf when the
// floors alone exceed m (infeasible: some remaining type can never get a
// machine). Greedily handing each spare machine to the currently worst
// type is optimal: per-machine relief W/k - W/(k+1) is decreasing in k,
// the classic minimax allocation.
func waterfill(W []float64, ded []int, m int, alloc []int) float64 {
	floor := 0
	any := false
	for t, w := range W {
		if w > 0 {
			any = true
			alloc[t] = ded[t]
			if alloc[t] < 1 {
				alloc[t] = 1
			}
			floor += alloc[t]
		} else {
			alloc[t] = 0
		}
	}
	if !any {
		return 0
	}
	if floor > m {
		return math.Inf(1)
	}
	for extra := m - floor; extra > 0; extra-- {
		worst, at := -1.0, -1
		for t, w := range W {
			if w <= 0 {
				continue
			}
			if v := w / float64(alloc[t]); v > worst {
				worst, at = v, t
			}
		}
		alloc[at]++
	}
	worst := 0.0
	for t, w := range W {
		if w <= 0 {
			continue
		}
		if v := w / float64(alloc[t]); v > worst {
			worst = v
		}
	}
	return worst
}

// --- shared search budget ------------------------------------------------

// nodeBatch is the reservation granularity workers draw from the global
// node pool with; it bounds the atomic traffic on the hot path without
// letting the pool overshoot (reservations never exceed MaxNodes, and
// unused ones are returned).
const nodeBatch = 256

// budget is the search allowance shared by every worker of one Solve call:
// a global node pool, a wall-clock deadline, a cancellation context, and a
// stop flag any worker can raise.
type budget struct {
	reserved atomic.Int64
	maxNodes int64
	deadline time.Time
	ctx      context.Context // nil = not cancellable
	stop     atomic.Bool
}

func newBudget(o Options) *budget {
	b := &budget{maxNodes: o.maxNodes(), ctx: o.Ctx}
	if o.TimeLimit > 0 {
		b.deadline = time.Now().Add(o.TimeLimit)
	}
	return b
}

// grab reserves up to nodeBatch nodes from the pool; 0 means the budget is
// exhausted (and raises the stop flag). Cancellation is checked here, at
// every reservation, so a cancelled search stops within one nodeBatch per
// worker instead of grinding through the rest of its reserved pool — the
// latency a request-facing caller sees between cancel and return.
func (b *budget) grab() int64 {
	if b.ctx != nil && b.ctx.Err() != nil {
		b.stop.Store(true)
		return 0
	}
	for {
		cur := b.reserved.Load()
		n := b.maxNodes - cur
		if n <= 0 {
			b.stop.Store(true)
			return 0
		}
		if n > nodeBatch {
			n = nodeBatch
		}
		if b.reserved.CompareAndSwap(cur, cur+n) {
			return n
		}
	}
}

// nodeMeter is one worker's private view of the shared budget.
type nodeMeter struct {
	bud   *budget
	avail int64 // reserved, not yet consumed
	used  int64 // consumed by this worker (paces the deadline checks)
}

// step consumes one node; false means the search must stop (budget
// exhausted, deadline passed, or another worker stopped).
func (m *nodeMeter) step() bool {
	if m.bud.stop.Load() {
		return false
	}
	if m.avail == 0 {
		if m.avail = m.bud.grab(); m.avail == 0 {
			return false
		}
	}
	m.avail--
	m.used++
	if m.used%4096 == 0 && !m.bud.deadline.IsZero() && time.Now().After(m.bud.deadline) {
		m.bud.stop.Store(true)
		return false
	}
	return true
}

func (m *nodeMeter) stopped() bool { return m.bud.stop.Load() }

// release returns unconsumed reservations to the pool so Result.Nodes
// reports nodes actually explored.
func (m *nodeMeter) release() {
	if m.avail > 0 {
		m.bud.reserved.Add(-m.avail)
		m.avail = 0
	}
}

// --- cross-worker incumbent ----------------------------------------------

// incumbent is the best complete solution found so far, shared across
// workers: a lock-free period for the hot pruning reads plus a
// mutex-guarded (period, mapping) pair for the final stopped-search
// answer. Workers prune strictly (> rather than >=) against it so that a
// subtree containing an optimum is never abandoned because a peer found an
// equal solution first — the determinism lever of the root split.
type incumbent struct {
	bits atomic.Uint64 // math.Float64bits of the best shared period

	mu      sync.Mutex
	period  float64
	mapping *core.Mapping

	// onImprove, when set, fires under mu every time the stored pair
	// improves (Options.OnImprove — the serving layer's incumbent stream).
	onImprove func(float64, *core.Mapping)
}

func newIncumbent(period float64, mapping *core.Mapping) *incumbent {
	inc := &incumbent{period: period, mapping: mapping}
	inc.bits.Store(math.Float64bits(period))
	return inc
}

// load returns the current shared period (possibly stale, never below the
// true optimum — safe for strict pruning).
func (inc *incumbent) load() float64 {
	return math.Float64frombits(inc.bits.Load())
}

// offer publishes a solution; the best one wins. mp must not be mutated
// afterwards (searchers always pass fresh Mapping snapshots).
func (inc *incumbent) offer(p float64, mp *core.Mapping) {
	for {
		cur := inc.bits.Load()
		if p >= math.Float64frombits(cur) {
			break
		}
		if inc.bits.CompareAndSwap(cur, math.Float64bits(p)) {
			break
		}
	}
	inc.mu.Lock()
	if p < inc.period {
		inc.period, inc.mapping = p, mp
		if inc.onImprove != nil {
			inc.onImprove(p, mp)
		}
	}
	inc.mu.Unlock()
}

// injectBound lowers the lock-free pruning bound to p without publishing a
// mapping — the external-incumbent lever of Options.BoundInjector. Only
// the atomic bits move; the mutex-guarded (period, mapping) pair is
// untouched, so a stopped search never reports an injected period it has
// no mapping for, and OnImprove never fires for foreign solutions.
// Pruning against the bits is strict, so an injected p that is a true
// upper bound on the optimum never cuts an optimal subtree.
func (inc *incumbent) injectBound(p float64) {
	for {
		cur := inc.bits.Load()
		if p >= math.Float64frombits(cur) {
			return
		}
		if inc.bits.CompareAndSwap(cur, math.Float64bits(p)) {
			return
		}
	}
}

// snapshot returns the best (period, mapping) pair observed so far.
func (inc *incumbent) snapshot() (float64, *core.Mapping) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.period, inc.mapping
}
