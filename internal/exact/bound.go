// Admissible per-node lower bounds for the branch and bound, plus the
// shared search budget and the cross-worker incumbent.
//
// The bound combines three valid relaxations of "best completion of this
// node", each a pure function of the current partial assignment:
//
//   - current maximum load: loads only grow as tasks are placed;
//   - cheapest-remaining-task: the machine that ends up carrying an
//     unplaced task i gains at least dlb(i)·min_u F(i,u)·w(i,u), where
//     dlb(i) lower-bounds i's downstream demand (exact x[succ] when the
//     successor is placed, optimistic min-inflation product otherwise);
//   - work packing: total work must fit on m machines, so the period is at
//     least total/m. Under the Specialized rule this sharpens to a
//     type-count bound: tasks of a type occupy machines dedicated to it,
//     so water-filling the m machines over the per-type work totals gives
//     min over allocations {k_t >= 1, Σk_t <= m} of max_t W_t/k_t — +Inf
//     when more types than machines remain, which also proves
//     infeasibility.
//
// Admissibility is fuzz-gated by FuzzExactBound against a brute-force
// completion oracle.
package exact

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// bounder holds the static ingredients of the per-node lower bound; it is
// read-only after construction and shared by all workers.
type bounder struct {
	// minInfl[i] = min_u 1/(1-f[i][u]): the most optimistic inflation any
	// machine offers task i.
	minInfl []float64
	// minCost[i] = min_u F(i,u)·w(i,u): the cheapest contribution task i
	// can make to any machine, per unit of downstream demand.
	minCost []float64
	// pos[i] is task i's position in the search order.
	pos []int
}

func newBounder(in *core.Instance, order []app.TaskID) *bounder {
	n, m := in.N(), in.M()
	b := &bounder{
		minInfl: make([]float64, n),
		minCost: make([]float64, n),
		pos:     make([]int, n),
	}
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		bestInfl, bestCost := math.Inf(1), math.Inf(1)
		for u := 0; u < m; u++ {
			mu := platform.MachineID(u)
			infl := in.Failures.Inflation(id, mu)
			if infl < bestInfl {
				bestInfl = infl
			}
			if c := infl * in.Platform.Time(id, mu); c < bestCost {
				bestCost = c
			}
		}
		b.minInfl[i] = bestInfl
		b.minCost[i] = bestCost
	}
	for k, i := range order {
		b.pos[i] = k
	}
	return b
}

// sumSlack deflates the summation-based bound ingredients (water-filling,
// total/m packing): their accumulations associate differently from any
// machine's load sum, so a bound that ties the true optimum to the last
// ulp could otherwise overshoot it by rounding and prune an optimal
// subtree. The slack is ~1e4 times the worst accumulated relative error
// (n·2⁻⁵²) and costs nothing measurable in pruning power. The remaining
// ingredients (max load, cheapest landing) reproduce the DFS's own load
// expressions term for term and need none.
const sumSlack = 1 - 1e-12

// lowerBound returns an admissible lower bound on the period of any
// completion of the current node (order[0..k) placed). O((n-k)·m) plus
// the water-filling pass under the Specialized rule.
//
// localBest and sharedP are the caller's pruning thresholds: the bound
// only ever grows while it accumulates, so the moment it crosses one
// (lb >= localBest or lb > sharedP) the caller will prune whatever the
// final value would have been, and lowerBound returns early. Callers that
// need the full bound value pass +Inf twice (see boundAt in the tests).
func (s *searcher) lowerBound(k int, localBest, sharedP float64) float64 {
	n := len(s.order)
	lb := s.pr.Max()
	if k == n || lb >= localBest || lb > sharedP {
		return lb
	}
	if s.relaxEnabled && s.rx == nil && s.meter.used >= relaxWarmup {
		// The search outgrew the relaxWarmup node count: build the
		// relaxation tiers (relax.go). Easy searches never get here, so
		// they never pay for the workspaces.
		s.rx = newRelaxer(s.in, s.noAssign, s.noLP)
		s.minLand = make([]float64, n)
		s.landArg = make([]int, n)
	}
	b := s.bnd
	spec := s.rule == core.Specialized
	var total float64
	if spec {
		// Placed work per type: placed contributions are exact (x is final
		// once the successor chain is placed) and only ever move between
		// machines of the same dedicated type.
		for t := range s.typeW {
			s.typeW[t] = 0
		}
		for j := 0; j < k; j++ {
			i := s.order[j]
			c := s.pr.X(i) * s.in.Platform.Time(i, s.pr.Machine(i))
			s.typeW[s.in.App.Type(i)] += c
			total += c
		}
	} else {
		for u := 0; u < s.m; u++ {
			total += s.pr.Load(platform.MachineID(u))
		}
	}
	// Unplaced suffix: propagate demand lower bounds root-first. order is
	// reverse topological, so a task's successor sits at an earlier
	// position — either placed (exact demand) or already visited in this
	// loop (optimistic demand). Each unplaced task must land on a machine
	// that is feasible *now* (completions only ever shrink the feasible
	// set: dedications and one-to-one uses are never undone), so the
	// cheapest landing — current load included — bounds the final period.
	maxTask := 0.0
	track := s.rx != nil
	for j := k; j < n; j++ {
		i := s.order[j]
		var d float64
		if succ := s.in.App.Successor(i); succ == app.NoTask {
			d = 1
		} else if sp := b.pos[succ]; sp < k {
			d = s.pr.X(succ)
		} else {
			d = s.dlb[sp] * b.minInfl[succ]
		}
		s.dlb[j] = d
		c := d * b.minCost[i]
		total += c
		ty := s.in.App.Type(i)
		if spec {
			s.typeW[ty] += c
		}
		land := math.Inf(1)
		landAt := -1
		s.pr.PriceAllAt(i, d, s.land)
		for u := 0; u < s.m; u++ {
			if !s.feasible(u, ty) {
				continue
			}
			if at := s.land[u]; at < land {
				land, landAt = at, u
			}
		}
		if track {
			// The relaxation tiers' collision gate and representative choice
			// read these (relax.go) instead of re-pricing.
			s.minLand[j] = land
			s.landArg[j] = landAt
		}
		if land > maxTask {
			maxTask = land
			if maxTask >= localBest || maxTask > sharedP {
				// Already enough to prune; the remaining ingredients could
				// only raise the bound further.
				return maxTask
			}
		}
	}
	if maxTask > lb {
		lb = maxTask
	}
	if spec {
		// Machines already dedicated to a type stay dedicated, so the
		// water-filling allocation floors each type at its current machine
		// count.
		for t := range s.ded {
			s.ded[t] = 0
		}
		for u := 0; u < s.m; u++ {
			if s.nOn[u] > 0 && s.spec[u] != noType {
				s.ded[s.spec[u]]++
			}
		}
		if wf := waterfill(s.typeW, s.ded, s.m, s.alloc) * sumSlack; wf > lb {
			lb = wf
		}
	} else if pk := total / float64(s.m) * sumSlack; pk > lb {
		lb = pk
	}
	if s.rx != nil {
		// Relaxation tiers (relax.go): the combinatorial bound failed to
		// prune, s.dlb is filled for this node — strengthen if the gates
		// say the extra work can convert.
		lb = s.strengthen(k, lb, localBest, sharedP)
	}
	return lb
}

// waterfill returns min over integer machine allocations
// {k_t >= max(1, ded[t]) for W[t] > 0, Σ k_t <= m} of max_t W[t]/k_t — the
// best period a Specialized mapping could reach if every type's work were
// perfectly divisible over the machines it may still claim. +Inf when the
// floors alone exceed m (infeasible: some remaining type can never get a
// machine). Greedily handing each spare machine to the currently worst
// type is optimal: per-machine relief W/k - W/(k+1) is decreasing in k,
// the classic minimax allocation.
func waterfill(W []float64, ded []int, m int, alloc []int) float64 {
	floor := 0
	any := false
	for t, w := range W {
		if w > 0 {
			any = true
			alloc[t] = ded[t]
			if alloc[t] < 1 {
				alloc[t] = 1
			}
			floor += alloc[t]
		} else {
			alloc[t] = 0
		}
	}
	if !any {
		return 0
	}
	if floor > m {
		return math.Inf(1)
	}
	for extra := m - floor; extra > 0; extra-- {
		worst, at := -1.0, -1
		for t, w := range W {
			if w <= 0 {
				continue
			}
			if v := w / float64(alloc[t]); v > worst {
				worst, at = v, t
			}
		}
		alloc[at]++
	}
	worst := 0.0
	for t, w := range W {
		if w <= 0 {
			continue
		}
		if v := w / float64(alloc[t]); v > worst {
			worst = v
		}
	}
	return worst
}

// --- shared search budget ------------------------------------------------

// nodeBatch is the reservation granularity workers draw from the global
// node pool with; it bounds the atomic traffic on the hot path without
// letting the pool overshoot (reservations never exceed MaxNodes, and
// unused ones are returned).
const nodeBatch = 256

// budget is the search allowance shared by every worker of one Solve call:
// a global node pool, a wall-clock deadline, a cancellation context, and a
// stop flag any worker can raise.
type budget struct {
	reserved atomic.Int64
	maxNodes int64
	deadline time.Time
	ctx      context.Context // nil = not cancellable
	stop     atomic.Bool
}

func newBudget(o Options) *budget {
	b := &budget{maxNodes: o.maxNodes(), ctx: o.Ctx}
	if o.TimeLimit > 0 {
		b.deadline = time.Now().Add(o.TimeLimit)
	}
	return b
}

// grab reserves up to nodeBatch nodes from the pool; 0 means the budget is
// exhausted (and raises the stop flag). Cancellation is checked here, at
// every reservation, so a cancelled search stops within one nodeBatch per
// worker instead of grinding through the rest of its reserved pool — the
// latency a request-facing caller sees between cancel and return.
func (b *budget) grab() int64 {
	if b.ctx != nil && b.ctx.Err() != nil {
		b.stop.Store(true)
		return 0
	}
	for {
		cur := b.reserved.Load()
		n := b.maxNodes - cur
		if n <= 0 {
			b.stop.Store(true)
			return 0
		}
		if n > nodeBatch {
			n = nodeBatch
		}
		if b.reserved.CompareAndSwap(cur, cur+n) {
			return n
		}
	}
}

// nodeMeter is one worker's private view of the shared budget.
type nodeMeter struct {
	bud   *budget
	avail int64 // reserved, not yet consumed
	used  int64 // consumed by this worker (paces the deadline checks)
}

// step consumes one node; false means the search must stop (budget
// exhausted, deadline passed, or another worker stopped).
func (m *nodeMeter) step() bool {
	if m.bud.stop.Load() {
		return false
	}
	if m.avail == 0 {
		if m.avail = m.bud.grab(); m.avail == 0 {
			return false
		}
	}
	m.avail--
	m.used++
	if m.used%4096 == 0 && !m.bud.deadline.IsZero() && time.Now().After(m.bud.deadline) {
		m.bud.stop.Store(true)
		return false
	}
	return true
}

func (m *nodeMeter) stopped() bool { return m.bud.stop.Load() }

// release returns unconsumed reservations to the pool so Result.Nodes
// reports nodes actually explored.
func (m *nodeMeter) release() {
	if m.avail > 0 {
		m.bud.reserved.Add(-m.avail)
		m.avail = 0
	}
}

// --- cross-worker incumbent ----------------------------------------------

// incumbent is the best complete solution found so far, shared across
// workers: a lock-free period for the hot pruning reads plus a
// mutex-guarded (period, mapping) pair for the final stopped-search
// answer. Workers prune strictly (> rather than >=) against it so that a
// subtree containing an optimum is never abandoned because a peer found an
// equal solution first — the determinism lever of the root split.
type incumbent struct {
	bits atomic.Uint64 // math.Float64bits of the best shared period

	mu      sync.Mutex
	period  float64
	mapping *core.Mapping

	// onImprove, when set, fires under mu every time the stored pair
	// improves (Options.OnImprove — the serving layer's incumbent stream).
	onImprove func(float64, *core.Mapping)
}

func newIncumbent(period float64, mapping *core.Mapping) *incumbent {
	inc := &incumbent{period: period, mapping: mapping}
	inc.bits.Store(math.Float64bits(period))
	return inc
}

// load returns the current shared period (possibly stale, never below the
// true optimum — safe for strict pruning).
func (inc *incumbent) load() float64 {
	return math.Float64frombits(inc.bits.Load())
}

// offer publishes a solution; the best one wins. mp must not be mutated
// afterwards (searchers always pass fresh Mapping snapshots).
func (inc *incumbent) offer(p float64, mp *core.Mapping) {
	for {
		cur := inc.bits.Load()
		if p >= math.Float64frombits(cur) {
			break
		}
		if inc.bits.CompareAndSwap(cur, math.Float64bits(p)) {
			break
		}
	}
	inc.mu.Lock()
	if p < inc.period {
		inc.period, inc.mapping = p, mp
		if inc.onImprove != nil {
			inc.onImprove(p, mp)
		}
	}
	inc.mu.Unlock()
}

// injectBound lowers the lock-free pruning bound to p without publishing a
// mapping — the external-incumbent lever of Options.BoundInjector. Only
// the atomic bits move; the mutex-guarded (period, mapping) pair is
// untouched, so a stopped search never reports an injected period it has
// no mapping for, and OnImprove never fires for foreign solutions.
// Pruning against the bits is strict, so an injected p that is a true
// upper bound on the optimum never cuts an optimal subtree.
func (inc *incumbent) injectBound(p float64) {
	for {
		cur := inc.bits.Load()
		if p >= math.Float64frombits(cur) {
			return
		}
		if inc.bits.CompareAndSwap(cur, math.Float64bits(p)) {
			return
		}
	}
}

// snapshot returns the best (period, mapping) pair observed so far.
func (inc *incumbent) snapshot() (float64, *core.Mapping) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.period, inc.mapping
}
