//go:build race

package exact

// raceEnabled reports whether the race detector instruments this build;
// slow exhaustion checks scale their budgets down under it.
const raceEnabled = true
