package exact

import (
	"math"
	"math/rand"
	"testing"

	"microfab/internal/core"
	"microfab/internal/gen"
)

// TestLowerBoundAdmissible is the deterministic twin of FuzzExactBound:
// on random instances and random rule-feasible prefixes, the per-node
// lower bound must never exceed the true optimum over all completions
// (computed by an independent exhaustive enumeration).
func TestLowerBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(4) // 4..7
		m := 2 + rng.Intn(3) // 2..4
		p := 1 + rng.Intn(m) // the generator requires p <= m
		var in *core.Instance
		var err error
		switch trial % 3 {
		case 0:
			in, err = gen.Chain(gen.Default(n, p, m), gen.RNG(int64(4000+trial)))
		case 1:
			in, err = gen.InTree(gen.Default(n, p, m), 2, gen.RNG(int64(4000+trial)))
		default:
			in = symmetricInstanceF(t, n, p, m, 1+rng.Intn(m), 0, 0.1, int64(4000+trial))
		}
		if err != nil {
			t.Fatal(err)
		}
		rule := []core.Rule{core.Specialized, core.GeneralRule, core.OneToOne}[trial%3]
		if rule == core.OneToOne && n > m {
			rule = core.Specialized
		}
		order := in.App.ReverseTopological()
		for depth := 0; depth <= n; depth += 1 + rng.Intn(2) {
			prefix := feasiblePrefix(in, rule, order, depth, func(int) int { return rng.Int() })
			lb := boundAt(t, in, rule, prefix)
			opt, done := completionOptimum(in, rule, order, prefix, 2_000_000)
			if !done {
				continue
			}
			if lb > opt*(1+1e-9) {
				t.Fatalf("trial %d rule %v depth %d: bound %v exceeds completion optimum %v (prefix %v)",
					trial, rule, len(prefix), lb, opt, prefix)
			}
		}
	}
}

// TestBoundPreservesOptimum: the bound is a pruning rule, not a heuristic —
// on a mixed corpus the proven period and mapping must be identical with
// the bound on and off, and the bound must never explore more nodes.
func TestBoundPreservesOptimum(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		var in *core.Instance
		var err error
		if seed%2 == 0 {
			in, err = gen.Chain(gen.Default(8, 3, 4), gen.RNG(500+seed))
		} else {
			in, err = gen.InTree(gen.Default(8, 3, 4), 2, gen.RNG(500+seed))
		}
		if err != nil {
			t.Fatal(err)
		}
		rule := core.Specialized
		if seed%3 == 2 {
			rule = core.GeneralRule
		}
		on, err := Solve(in, Options{Rule: rule})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Solve(in, Options{Rule: rule, DisableBound: true})
		if err != nil {
			t.Fatal(err)
		}
		if !on.Proven || !off.Proven {
			t.Fatalf("seed %d: budget interfered (proven %v/%v)", seed, on.Proven, off.Proven)
		}
		if math.Float64bits(on.Period) != math.Float64bits(off.Period) {
			t.Fatalf("seed %d: bound changed the optimum: %v vs %v", seed, on.Period, off.Period)
		}
		if on.Mapping.String() != off.Mapping.String() {
			t.Fatalf("seed %d: bound changed the mapping:\n  on  %v\n  off %v", seed, on.Mapping, off.Mapping)
		}
		if on.Nodes > off.Nodes {
			t.Fatalf("seed %d: bound increased nodes: %d > %d", seed, on.Nodes, off.Nodes)
		}
	}
}

// TestWaterfill pins the type-count allocation bound on hand-checked
// cases.
func TestWaterfill(t *testing.T) {
	alloc := make([]int, 4)
	cases := []struct {
		W    []float64
		ded  []int
		m    int
		want float64
	}{
		// One type: all machines pour into it.
		{[]float64{12}, []int{0}, 3, 4},
		// Two types, three machines: (2,1) beats (1,2).
		{[]float64{10, 9}, []int{0, 0}, 3, 9},
		// Perfect split.
		{[]float64{12, 6, 6}, []int{0, 0, 0}, 5, 6},
		// More types than machines: infeasible.
		{[]float64{1, 1, 1}, []int{0, 0, 0}, 2, math.Inf(1)},
		// Zero-work types are skipped.
		{[]float64{0, 8, 0}, []int{0, 0, 0}, 2, 4},
		// A dedication floor steals a machine from the heavy type:
		// without it (2,1) gives 5; forcing k_1 >= 2 leaves (1,2) -> 10.
		{[]float64{10, 4}, []int{0, 2}, 3, 10},
		// Floors alone overflow the platform.
		{[]float64{5, 5}, []int{2, 2}, 3, math.Inf(1)},
	}
	for i, tc := range cases {
		got := waterfill(tc.W, tc.ded, tc.m, alloc[:len(tc.W)])
		if math.Abs(got-tc.want) > 1e-12 && !(math.IsInf(got, 1) && math.IsInf(tc.want, 1)) {
			t.Errorf("case %d: waterfill(%v, ded %v, m=%d) = %v, want %v", i, tc.W, tc.ded, tc.m, got, tc.want)
		}
	}
}

// TestProvenRegimeN18: the acceptance case of the bound work. On an n=18
// symmetric-platform chain under the Specialized rule (high-failure
// regime), the bounded search proves optimality in well under a million
// nodes, while the seed configuration (dominance only — no bound, no
// best-first order) exhausts the default 50M-node budget with a far worse
// incumbent. The best-first order alone is worth noting: with the bound
// still off it proves this instance in ~8M nodes, so the ablation below
// disables both to reproduce the historical baseline. The full seed run
// costs ~2.5s, so -short trims it to a 5M-node exhaustion check.
func TestProvenRegimeN18(t *testing.T) {
	in := symmetricInstanceF(t, 18, 2, 9, 3, 0, 0.1, 1804)

	on, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	if !on.Proven {
		t.Fatalf("bounded search failed to prove n=18 (nodes %d)", on.Nodes)
	}
	if on.Nodes > 1_000_000 {
		t.Fatalf("bounded proof took %d nodes, want < 1M", on.Nodes)
	}

	seedBudget := int64(5_000_000)
	if raceEnabled {
		seedBudget = 1_500_000 // the instrumented run pays ~10x per node
	} else if !testing.Short() {
		seedBudget = 0 // the default 50M nodes
	}
	off, err := Solve(in, Options{Rule: core.Specialized, DisableBound: true, DisableOrder: true, MaxNodes: seedBudget})
	if err != nil {
		t.Fatal(err)
	}
	if off.Proven {
		t.Fatalf("seed configuration proved n=18 within %d nodes; instance no longer demonstrates the bound", off.Nodes)
	}
	if off.Period < on.Period {
		t.Fatalf("seed incumbent %v beats proven optimum %v", off.Period, on.Period)
	}
	t.Logf("n=18 proven with bound: %d nodes, period %.2f; seed config unproven after %d nodes at period %.2f",
		on.Nodes, on.Period, off.Nodes, off.Period)
}
