package app

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewChainBasics(t *testing.T) {
	a, err := NewChain([]TypeID{0, 1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NumTasks(); got != 5 {
		t.Fatalf("NumTasks = %d, want 5", got)
	}
	if got := a.NumTypes(); got != 2 {
		t.Fatalf("NumTypes = %d, want 2", got)
	}
	if !a.IsChain() {
		t.Fatal("chain not recognized as chain")
	}
	if a.Root() != 4 {
		t.Fatalf("Root = %d, want 4", a.Root())
	}
	if got := a.Successor(2); got != 3 {
		t.Fatalf("Successor(2) = %d, want 3", got)
	}
	if got := a.Successor(4); got != NoTask {
		t.Fatalf("Successor(root) = %d, want NoTask", got)
	}
	srcs := a.Sources()
	if len(srcs) != 1 || srcs[0] != 0 {
		t.Fatalf("Sources = %v, want [0]", srcs)
	}
}

func TestNewChainEmpty(t *testing.T) {
	if _, err := NewChain(nil); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestNewChainSingleTask(t *testing.T) {
	a, err := NewChain([]TypeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() != 0 || a.NumTasks() != 1 || a.Depth() != 1 {
		t.Fatalf("bad single-task chain: root=%d n=%d depth=%d", a.Root(), a.NumTasks(), a.Depth())
	}
}

func TestForkRejected(t *testing.T) {
	tasks := []Task{{ID: 0}, {ID: 1}, {ID: 2}}
	deps := []Dep{{0, 1}, {0, 2}}
	_, err := New(tasks, deps)
	if err == nil || !strings.Contains(err.Error(), "fork") {
		t.Fatalf("fork not rejected: %v", err)
	}
}

func TestCycleRejected(t *testing.T) {
	tasks := []Task{{ID: 0}, {ID: 1}, {ID: 2}}
	deps := []Dep{{0, 1}, {1, 2}, {2, 0}}
	if _, err := New(tasks, deps); err == nil {
		t.Fatal("cycle not rejected")
	}
}

func TestTwoRootsRejected(t *testing.T) {
	tasks := []Task{{ID: 0}, {ID: 1}, {ID: 2}}
	deps := []Dep{{0, 1}}
	if _, err := New(tasks, deps); err == nil {
		t.Fatal("disconnected second root not rejected")
	}
}

func TestSelfDependencyRejected(t *testing.T) {
	tasks := []Task{{ID: 0}}
	if _, err := New(tasks, []Dep{{0, 0}}); err == nil {
		t.Fatal("self dependency not rejected")
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	tasks := []Task{{ID: 0}, {ID: 0}}
	if _, err := New(tasks, nil); err == nil {
		t.Fatal("duplicate ID not rejected")
	}
}

func TestOutOfRangeIDRejected(t *testing.T) {
	tasks := []Task{{ID: 0}, {ID: 5}}
	if _, err := New(tasks, nil); err == nil {
		t.Fatal("out-of-range ID not rejected")
	}
}

func TestNegativeTypeRejected(t *testing.T) {
	tasks := []Task{{ID: 0, Type: -1}}
	if _, err := New(tasks, nil); err == nil {
		t.Fatal("negative type not rejected")
	}
}

func TestUnknownDepRejected(t *testing.T) {
	tasks := []Task{{ID: 0}}
	if _, err := New(tasks, []Dep{{0, 3}}); err == nil {
		t.Fatal("dependency on unknown task not rejected")
	}
}

func TestJoinTree(t *testing.T) {
	// Two branches of 2 tasks joined by task 4 (the paper's Figure 1 shape).
	b := NewBuilder()
	_, l1 := b.AddChain(0, 1)
	_, l2 := b.AddChain(0, 1)
	root := b.Join(2, "merge", l1, l2)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.IsChain() {
		t.Fatal("join tree claimed to be a chain")
	}
	if a.Root() != root {
		t.Fatalf("root = %d, want %d", a.Root(), root)
	}
	if got := len(a.Predecessors(root)); got != 2 {
		t.Fatalf("join has %d predecessors, want 2", got)
	}
	if got := len(a.Sources()); got != 2 {
		t.Fatalf("%d sources, want 2", got)
	}
	if a.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", a.Depth())
	}
	if _, err := a.ChainOrder(); err == nil {
		t.Fatal("ChainOrder accepted an in-tree")
	}
}

func TestTopologicalOrderProperty(t *testing.T) {
	// Every task must appear after all of its predecessors.
	check := func(a *Application) bool {
		pos := map[TaskID]int{}
		for k, id := range a.Topological() {
			pos[id] = k
		}
		for i := 0; i < a.NumTasks(); i++ {
			for _, p := range a.Predecessors(TaskID(i)) {
				if pos[p] >= pos[TaskID(i)] {
					return false
				}
			}
		}
		return true
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := randomInTree(rng, 1+rng.Intn(20))
		if !check(a) {
			t.Fatalf("trial %d: topological order violated for %v", trial, a)
		}
		rev := a.ReverseTopological()
		if rev[0] != a.Root() {
			t.Fatalf("reverse topological does not start at the root")
		}
	}
}

// randomInTree builds a random in-tree of n tasks: each non-root task picks
// a random successor among the tasks created after it.
func randomInTree(rng *rand.Rand, n int) *Application {
	tasks := make([]Task, n)
	var deps []Dep
	for i := 0; i < n; i++ {
		tasks[i] = Task{ID: TaskID(i), Type: TypeID(rng.Intn(3))}
		if i > 0 {
			// Successor chosen among later-created tasks... build
			// reversed: task i's successor is some j < i.
			deps = append(deps, Dep{From: TaskID(i), To: TaskID(rng.Intn(i))})
		}
	}
	a, err := New(tasks, deps)
	if err != nil {
		panic(err)
	}
	return a
}

func TestCyclicTypes(t *testing.T) {
	got := CyclicTypes(7, 3)
	want := []TypeID{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CyclicTypes(7,3) = %v, want %v", got, want)
		}
	}
}

func TestTasksOfTypeAndCounts(t *testing.T) {
	a := MustChain([]TypeID{0, 1, 0, 2, 0})
	if got := a.TasksOfType(0); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("TasksOfType(0) = %v", got)
	}
	c := a.TypeCounts()
	if c[0] != 3 || c[1] != 1 || c[2] != 1 {
		t.Fatalf("TypeCounts = %v", c)
	}
}

func TestStringFormat(t *testing.T) {
	a := MustChain([]TypeID{0, 1})
	if got := a.String(); got != "chain(n=2,p=2)" {
		t.Fatalf("String = %q", got)
	}
}

func TestBuilderAddChainEmpty(t *testing.T) {
	b := NewBuilder()
	f, l := b.AddChain()
	if f != NoTask || l != NoTask {
		t.Fatalf("empty AddChain = (%d,%d), want NoTask", f, l)
	}
}

func TestQuickChainShape(t *testing.T) {
	// Property: a chain of n tasks has depth n, one source, and its
	// topological order is 0..n-1.
	f := func(raw uint8) bool {
		n := int(raw%30) + 1
		types := make([]TypeID, n)
		a, err := NewChain(types)
		if err != nil {
			return false
		}
		if a.Depth() != n || len(a.Sources()) != 1 {
			return false
		}
		for k, id := range a.Topological() {
			if int(id) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
