package app

import (
	"fmt"
)

// NewChain builds a linear chain application T0 -> T1 -> ... -> T(n-1) with
// the given task types (one per task, in chain order).
func NewChain(types []TypeID) (*Application, error) {
	n := len(types)
	if n == 0 {
		return nil, fmt.Errorf("app: chain needs at least one task")
	}
	tasks := make([]Task, n)
	deps := make([]Dep, 0, n-1)
	for i := 0; i < n; i++ {
		tasks[i] = Task{ID: TaskID(i), Type: types[i], Name: fmt.Sprintf("T%d", i+1)}
		if i+1 < n {
			deps = append(deps, Dep{From: TaskID(i), To: TaskID(i + 1)})
		}
	}
	return New(tasks, deps)
}

// MustChain is NewChain that panics on error; intended for tests and
// examples with constant input.
func MustChain(types []TypeID) *Application {
	a, err := NewChain(types)
	if err != nil {
		panic(err)
	}
	return a
}

// CyclicTypes returns n types cycling through p values: 0,1,...,p-1,0,1,...
// It is a convenient way to build the paper's "n tasks of p types" chains.
func CyclicTypes(n, p int) []TypeID {
	ts := make([]TypeID, n)
	for i := range ts {
		ts[i] = TypeID(i % p)
	}
	return ts
}

// Builder incrementally assembles an application. Tasks are created with
// AddTask (IDs are assigned densely in call order) and connected with
// AddDep; Build validates and freezes the graph.
type Builder struct {
	tasks []Task
	deps  []Dep
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddTask appends a task of the given type and returns its ID.
func (b *Builder) AddTask(ty TypeID, name string) TaskID {
	id := TaskID(len(b.tasks))
	if name == "" {
		name = fmt.Sprintf("T%d", id+1)
	}
	b.tasks = append(b.tasks, Task{ID: id, Type: ty, Name: name})
	return id
}

// AddDep records that from's output is consumed by to.
func (b *Builder) AddDep(from, to TaskID) {
	b.deps = append(b.deps, Dep{From: from, To: to})
}

// AddChain appends a fresh chain of tasks with the given types and returns
// the first and last task IDs of the chain.
func (b *Builder) AddChain(types ...TypeID) (first, last TaskID) {
	if len(types) == 0 {
		return NoTask, NoTask
	}
	first = b.AddTask(types[0], "")
	prev := first
	for _, ty := range types[1:] {
		id := b.AddTask(ty, "")
		b.AddDep(prev, id)
		prev = id
	}
	return first, prev
}

// Join appends a new task of the given type consuming the outputs of all
// parents (a physical merge) and returns its ID.
func (b *Builder) Join(ty TypeID, name string, parents ...TaskID) TaskID {
	id := b.AddTask(ty, name)
	for _, p := range parents {
		b.AddDep(p, id)
	}
	return id
}

// NumTasks returns the number of tasks added so far.
func (b *Builder) NumTasks() int { return len(b.tasks) }

// Build validates the assembled graph and returns the Application.
func (b *Builder) Build() (*Application, error) {
	return New(b.tasks, b.deps)
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Application {
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	return a
}
