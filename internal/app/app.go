// Package app models micro-factory applications: directed acyclic graphs of
// typed tasks that are applied successively to physical products.
//
// Following the paper, the graph may contain joins (a task that merges one
// sub-product from each of its predecessors into a new compound product) but
// never forks: a physical product cannot be duplicated, so every task has at
// most one successor. Graphs are therefore in-trees, whose root is the final
// task that outputs finished products. Linear chains — the application class
// used throughout the paper's evaluation — are the single-branch special case.
package app

import (
	"errors"
	"fmt"
)

// TaskID identifies a task within an application. IDs are dense indices in
// [0, NumTasks); the paper's T1..Tn map to 0..n-1.
type TaskID int

// TypeID identifies a task type. Types are dense indices in [0, NumTypes);
// tasks of the same type correspond to the same physical operation and thus
// share execution times on any given machine.
type TypeID int

// NoTask is returned by Successor for the root task (no successor).
const NoTask TaskID = -1

// Task is one operation applied to a product.
type Task struct {
	ID   TaskID
	Type TypeID
	// Name is an optional human-readable label ("glue-lens", "screw-base").
	Name string
}

// Application is an immutable in-tree of typed tasks.
//
// The zero value is not usable; build applications with New, NewChain or
// Builder.
type Application struct {
	tasks []Task
	// succ[i] is the unique successor of task i, or NoTask for the root.
	succ []TaskID
	// preds[i] lists the predecessors of task i in increasing ID order.
	preds [][]TaskID
	// root is the unique task with no successor.
	root TaskID
	// numTypes is 1 + the largest TypeID in use.
	numTypes int
	// topo holds the task IDs in a topological order (predecessors first).
	topo []TaskID
}

// Dep is one precedence edge: From must complete on a product before To
// starts (To consumes From's output).
type Dep struct {
	From, To TaskID
}

// New builds an application from a task list and dependency edges and
// validates the in-tree shape. Task IDs must be exactly 0..len(tasks)-1.
func New(tasks []Task, deps []Dep) (*Application, error) {
	n := len(tasks)
	if n == 0 {
		return nil, errors.New("app: application needs at least one task")
	}
	a := &Application{
		tasks: make([]Task, n),
		succ:  make([]TaskID, n),
		preds: make([][]TaskID, n),
		root:  NoTask,
	}
	seen := make(map[TaskID]bool, n)
	for _, t := range tasks {
		if t.ID < 0 || int(t.ID) >= n {
			return nil, fmt.Errorf("app: task ID %d out of range [0,%d)", t.ID, n)
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("app: duplicate task ID %d", t.ID)
		}
		if t.Type < 0 {
			return nil, fmt.Errorf("app: task %d has negative type %d", t.ID, t.Type)
		}
		seen[t.ID] = true
		a.tasks[t.ID] = t
		if int(t.Type)+1 > a.numTypes {
			a.numTypes = int(t.Type) + 1
		}
	}
	for i := range a.succ {
		a.succ[i] = NoTask
	}
	for _, d := range deps {
		if d.From < 0 || int(d.From) >= n || d.To < 0 || int(d.To) >= n {
			return nil, fmt.Errorf("app: dependency %d->%d references unknown task", d.From, d.To)
		}
		if d.From == d.To {
			return nil, fmt.Errorf("app: self-dependency on task %d", d.From)
		}
		if a.succ[d.From] != NoTask {
			// A second outgoing edge would fork the physical product.
			return nil, fmt.Errorf("app: task %d has two successors (%d and %d); forks are impossible on physical products", d.From, a.succ[d.From], d.To)
		}
		a.succ[d.From] = d.To
		a.preds[d.To] = append(a.preds[d.To], d.From)
	}
	for i, s := range a.succ {
		if s == NoTask {
			if a.root != NoTask {
				return nil, fmt.Errorf("app: two roots (%d and %d); the application must have a single output task", a.root, i)
			}
			a.root = TaskID(i)
		}
	}
	if a.root == NoTask {
		return nil, errors.New("app: no root task; the dependency graph has a cycle")
	}
	if err := a.buildTopo(); err != nil {
		return nil, err
	}
	return a, nil
}

// buildTopo fills a.topo or reports a cycle. With at most one successor per
// task and a single root, acyclicity is equivalent to every task reaching the
// root, which the reverse BFS below checks.
func (a *Application) buildTopo() error {
	n := len(a.tasks)
	order := make([]TaskID, 0, n)
	mark := make([]bool, n)
	queue := []TaskID{a.root}
	mark[a.root] = true
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, p := range a.preds[t] {
			if mark[p] {
				return fmt.Errorf("app: task %d reached twice; graph is not an in-tree", p)
			}
			mark[p] = true
			queue = append(queue, p)
		}
	}
	if len(order) != n {
		return fmt.Errorf("app: %d of %d tasks cannot reach the root; cycle or disconnected component", n-len(order), n)
	}
	// order is root-first (reverse topological); reverse it so that
	// predecessors come first.
	a.topo = make([]TaskID, n)
	for i, t := range order {
		a.topo[n-1-i] = t
	}
	return nil
}

// NumTasks returns n, the number of tasks.
func (a *Application) NumTasks() int { return len(a.tasks) }

// NumTypes returns p, the number of task types (1 + largest TypeID).
func (a *Application) NumTypes() int { return a.numTypes }

// Task returns the task with the given ID.
func (a *Application) Task(id TaskID) Task { return a.tasks[id] }

// Type returns t(i), the type of task i.
func (a *Application) Type(id TaskID) TypeID { return a.tasks[id].Type }

// Successor returns the unique successor of a task, or NoTask for the root.
func (a *Application) Successor(id TaskID) TaskID { return a.succ[id] }

// Predecessors returns the (possibly empty) predecessor list of a task. The
// returned slice must not be modified.
func (a *Application) Predecessors(id TaskID) []TaskID { return a.preds[id] }

// Root returns the final task, whose outputs leave the system.
func (a *Application) Root() TaskID { return a.root }

// Sources returns the tasks with no predecessor (raw-product entry points),
// in increasing ID order.
func (a *Application) Sources() []TaskID {
	var s []TaskID
	for i := range a.tasks {
		if len(a.preds[i]) == 0 {
			s = append(s, TaskID(i))
		}
	}
	return s
}

// Topological returns the task IDs in an order where every task appears
// after all its predecessors. The returned slice must not be modified.
func (a *Application) Topological() []TaskID { return a.topo }

// ReverseTopological returns tasks root-first: every task appears before all
// of its predecessors. This is the traversal order of the paper's heuristics
// ("starting with the last task ... going backward to the first one").
func (a *Application) ReverseTopological() []TaskID {
	rev := make([]TaskID, len(a.topo))
	for i, t := range a.topo {
		rev[len(a.topo)-1-i] = t
	}
	return rev
}

// IsChain reports whether the application is a linear chain (every task has
// at most one predecessor).
func (a *Application) IsChain() bool {
	for _, p := range a.preds {
		if len(p) > 1 {
			return false
		}
	}
	return true
}

// ChainOrder returns the tasks of a linear chain from first to last, or an
// error if the application is not a chain.
func (a *Application) ChainOrder() ([]TaskID, error) {
	if !a.IsChain() {
		return nil, errors.New("app: application is not a linear chain")
	}
	return a.Topological(), nil
}

// TasksOfType returns all tasks of the given type in increasing ID order.
func (a *Application) TasksOfType(ty TypeID) []TaskID {
	var out []TaskID
	for i, t := range a.tasks {
		if t.Type == ty {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// TypeCounts returns, for each type, how many tasks have that type.
func (a *Application) TypeCounts() []int {
	c := make([]int, a.numTypes)
	for _, t := range a.tasks {
		c[t.Type]++
	}
	return c
}

// Depth returns the number of tasks on the longest path ending at the root.
func (a *Application) Depth() int {
	depth := make([]int, len(a.tasks))
	best := 0
	for _, t := range a.topo {
		d := 1
		for _, p := range a.preds[t] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[t] = d
		if d > best {
			best = d
		}
	}
	return best
}

// String returns a compact description such as "chain(n=5,p=2)".
func (a *Application) String() string {
	shape := "intree"
	if a.IsChain() {
		shape = "chain"
	}
	return fmt.Sprintf("%s(n=%d,p=%d)", shape, a.NumTasks(), a.NumTypes())
}
