// Package sim is a discrete-event simulator of a running micro-factory: a
// mapped application is executed on the machines with stochastic product
// losses drawn from the failure matrix. It substitutes for the authors' C++
// simulator and closes the loop on the analytic model: the steady-state
// throughput measured here converges to 1/period computed by package core.
//
// Model:
//   - products are indistinguishable (paper §3.2), so queues are counters;
//   - each machine serves one product at a time; service of task i on
//     machine u lasts w[i][u] ms; with probability f[i][u] the product is
//     lost at completion (transient failure), otherwise it moves to the
//     successor task;
//   - a join task consumes one product from every predecessor branch;
//   - raw products enter at source tasks from finite input batches.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// Policy selects which pending task an idle machine serves next.
type Policy int

const (
	// DownstreamFirst serves the task closest to the root first, keeping
	// work-in-progress low and the output stage fed; this is the default.
	DownstreamFirst Policy = iota
	// RoundRobin cycles through the machine's tasks.
	RoundRobin
)

// Options configures a run.
type Options struct {
	// Inputs[k] is the raw-product batch for source k (order of
	// app.Sources()). Use PlanBatches to size them for a target output.
	Inputs []int64
	// TargetOutputs stops the run once this many products left the
	// system (0 = run until everything drains).
	TargetOutputs int64
	// Policy defaults to DownstreamFirst.
	Policy Policy
	// Seed drives all Bernoulli loss draws.
	Seed int64
	// MaxEvents is a runaway guard (0 = 50 million).
	MaxEvents int64
}

func (o Options) maxEvents() int64 {
	if o.MaxEvents > 0 {
		return o.MaxEvents
	}
	return 50_000_000
}

// Stats is the outcome of a run.
type Stats struct {
	// Outputs is the number of finished products.
	Outputs int64
	// Time is the simulated makespan in ms.
	Time float64
	// Throughput is Outputs/Time (products per ms).
	Throughput float64
	// InputsUsed[k] counts raw products consumed per source.
	InputsUsed []int64
	// LossesPerTask[i] counts products destroyed while task i processed
	// them.
	LossesPerTask []int64
	// Processed[i] counts service completions of task i (lost or not).
	Processed []int64
	// BusyTime[u] accumulates machine u's service time; utilization is
	// BusyTime[u]/Time.
	BusyTime []float64
	// Events is the number of simulated events.
	Events int64
	// Drained reports whether the run ended because no work was left
	// (false when TargetOutputs or MaxEvents stopped it).
	Drained bool
}

// Utilization returns BusyTime[u]/Time (0 when Time is 0).
func (s *Stats) Utilization(u platform.MachineID) float64 {
	if s.Time == 0 {
		return 0
	}
	return s.BusyTime[u] / s.Time
}

// event is one service completion.
type event struct {
	t   float64
	seq int64 // FIFO tie-break for equal times
	u   platform.MachineID
	i   app.TaskID
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type simulator struct {
	in  *core.Instance
	mp  *core.Mapping
	rng *rand.Rand
	opt Options

	pending   []int64 // products waiting to start task i
	joinBuf   [][]int64
	joinIndex []map[app.TaskID]int // predecessor -> branch slot of a join
	busyTask  []app.TaskID         // task in service per machine (NoTask = idle)
	rrCursor  []int
	tasksOn   [][]app.TaskID // tasks per machine, in service-priority order

	events eventHeap
	seq    int64
	stats  Stats
}

// Run simulates the mapped instance and returns its statistics.
func Run(in *core.Instance, mp *core.Mapping, opt Options) (*Stats, error) {
	if !mp.Complete() {
		return nil, fmt.Errorf("sim: mapping is incomplete")
	}
	srcs := in.App.Sources()
	if len(opt.Inputs) != len(srcs) {
		return nil, fmt.Errorf("sim: %d input batches for %d sources", len(opt.Inputs), len(srcs))
	}
	n, m := in.N(), in.M()
	s := &simulator{
		in:        in,
		mp:        mp,
		rng:       rand.New(rand.NewSource(opt.Seed)),
		opt:       opt,
		pending:   make([]int64, n),
		joinBuf:   make([][]int64, n),
		joinIndex: make([]map[app.TaskID]int, n),
		busyTask:  make([]app.TaskID, m),
		rrCursor:  make([]int, m),
		tasksOn:   make([][]app.TaskID, m),
	}
	s.stats.InputsUsed = make([]int64, len(srcs))
	s.stats.LossesPerTask = make([]int64, n)
	s.stats.Processed = make([]int64, n)
	s.stats.BusyTime = make([]float64, m)
	for u := range s.busyTask {
		s.busyTask[u] = app.NoTask
	}
	// Join bookkeeping.
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		preds := in.App.Predecessors(id)
		if len(preds) > 1 {
			s.joinBuf[i] = make([]int64, len(preds))
			s.joinIndex[i] = make(map[app.TaskID]int, len(preds))
			for k, p := range preds {
				s.joinIndex[i][p] = k
			}
		}
	}
	// Per-machine service order: tasks sorted by topological position,
	// downstream (closer to the root) first.
	pos := make([]int, n)
	for k, t := range in.App.Topological() {
		pos[t] = k
	}
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		u := mp.Machine(id)
		s.tasksOn[u] = append(s.tasksOn[u], id)
	}
	for u := range s.tasksOn {
		ts := s.tasksOn[u]
		for a := 1; a < len(ts); a++ {
			for b := a; b > 0 && pos[ts[b]] > pos[ts[b-1]]; b-- {
				ts[b], ts[b-1] = ts[b-1], ts[b]
			}
		}
	}
	// Load the source batches.
	for k, src := range srcs {
		if opt.Inputs[k] < 0 {
			return nil, fmt.Errorf("sim: negative input batch %d for source %d", opt.Inputs[k], k)
		}
		s.pending[src] = opt.Inputs[k]
		s.stats.InputsUsed[k] = opt.Inputs[k]
	}
	now := 0.0
	for u := 0; u < m; u++ {
		s.dispatch(platform.MachineID(u), now)
	}
	for len(s.events) > 0 {
		if s.stats.Events >= opt.maxEvents() {
			s.finish(now)
			return &s.stats, nil
		}
		e := heap.Pop(&s.events).(event)
		now = e.t
		s.stats.Events++
		s.complete(e, now)
		if opt.TargetOutputs > 0 && s.stats.Outputs >= opt.TargetOutputs {
			s.finish(now)
			return &s.stats, nil
		}
	}
	s.stats.Drained = true
	s.finish(now)
	return &s.stats, nil
}

// complete handles a service completion: loss draw, product forwarding, and
// re-dispatch of the machine.
func (s *simulator) complete(e event, now float64) {
	i, u := e.i, e.u
	s.stats.Processed[i]++
	s.busyTask[u] = app.NoTask
	if s.rng.Float64() < s.in.Failures.Rate(i, u) {
		s.stats.LossesPerTask[i]++
	} else {
		succ := s.in.App.Successor(i)
		if succ == app.NoTask {
			s.stats.Outputs++
		} else if s.joinBuf[succ] != nil {
			k := s.joinIndex[succ][i]
			s.joinBuf[succ][k]++
			s.tryAssemble(succ)
		} else {
			s.pending[succ]++
		}
	}
	s.dispatch(u, now)
	// Forwarding may have fed an idle machine.
	if succ := s.in.App.Successor(i); succ != app.NoTask {
		s.dispatch(s.mp.Machine(succ), now)
	}
}

// tryAssemble fires a join when every branch buffer holds a product.
func (s *simulator) tryAssemble(j app.TaskID) {
	buf := s.joinBuf[j]
	for _, c := range buf {
		if c == 0 {
			return
		}
	}
	for k := range buf {
		buf[k]--
	}
	s.pending[j]++
}

// dispatch starts the next job on an idle machine, if any is pending.
func (s *simulator) dispatch(u platform.MachineID, now float64) {
	if s.busyTask[u] != app.NoTask {
		return
	}
	ts := s.tasksOn[u]
	if len(ts) == 0 {
		return
	}
	var pick app.TaskID = app.NoTask
	switch s.opt.Policy {
	case RoundRobin:
		for k := 0; k < len(ts); k++ {
			c := (s.rrCursor[u] + k) % len(ts)
			if s.pending[ts[c]] > 0 {
				pick = ts[c]
				s.rrCursor[u] = (c + 1) % len(ts)
				break
			}
		}
	default: // DownstreamFirst: tasksOn is already priority-sorted
		for _, t := range ts {
			if s.pending[t] > 0 {
				pick = t
				break
			}
		}
	}
	if pick == app.NoTask {
		return
	}
	s.pending[pick]--
	s.busyTask[u] = pick
	d := s.in.Platform.Time(pick, u)
	s.stats.BusyTime[u] += d
	s.seq++
	heap.Push(&s.events, event{t: now + d, seq: s.seq, u: u, i: pick})
}

func (s *simulator) finish(now float64) {
	s.stats.Time = now
	if now > 0 {
		s.stats.Throughput = float64(s.stats.Outputs) / now
	}
}

// PlanBatches sizes the raw-product batches so that about xout products
// leave the system: the analytic expectation xout·x[src] per source, scaled
// by a safety margin (e.g. 1.1 for +10%) and rounded up.
func PlanBatches(in *core.Instance, mp *core.Mapping, xout float64, margin float64) ([]int64, error) {
	if margin < 1 {
		margin = 1
	}
	plan, err := core.PlanInputs(in, mp, xout)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(plan.PerSource))
	for k, v := range plan.PerSource {
		// The 1e-9 slack keeps float noise (e.g. 220.0000000000003)
		// from bumping a batch by one product.
		out[k] = int64(math.Ceil(v*margin - 1e-9))
	}
	return out, nil
}

// MeasureThroughput estimates the steady-state empirical throughput
// (products per ms) of the mapped instance by simulation. It is the
// simulation counterpart of 1/core.Period.
//
// The estimator is busy-time based: one batch sized for `outputs`
// expected finished products (margin 1.0) is run to full drain, and the
// empirical bottleneck period is max_u BusyTime[u]/Outputs — the service
// time machine u performed per finished product, retries after losses
// included, exactly what the analytic period(Mu) = Σ x[i]·w[i][u]
// charges. The estimate is 1 over that maximum.
//
// This replaces the earlier windowed Outputs/ΔTime scheme, which was
// biased upward on in-trees: with padded batches the branch machines
// front-load work into the join buffers, so the outputs inside the window
// were paced by the downstream stages rather than the true bottleneck,
// and work attributable to the windowed outputs had partly been performed
// before the window opened (see internal/sim/convergence_test.go). Busy
// time charges that work to whichever products it served no matter when
// it was performed, and the fill/drain transients it ignores are idle
// time, so the estimator is transient-free on chains and in-trees alike.
//
// warmupFrac is retained for signature compatibility and only validated:
// the busy-time estimator has no startup window to discard.
func MeasureThroughput(in *core.Instance, mp *core.Mapping, outputs int64, warmupFrac float64, seed int64) (float64, error) {
	if outputs <= 0 {
		return 0, fmt.Errorf("sim: outputs must be positive")
	}
	if warmupFrac < 0 || warmupFrac >= 1 {
		return 0, fmt.Errorf("sim: warmupFrac must be in [0,1)")
	}
	batches, err := PlanBatches(in, mp, float64(outputs), 1.0)
	if err != nil {
		return 0, err
	}
	st, err := Run(in, mp, Options{Inputs: batches, Seed: seed})
	if err != nil {
		return 0, err
	}
	if !st.Drained {
		return 0, fmt.Errorf("sim: measurement run did not drain (event budget hit)")
	}
	if st.Outputs == 0 {
		total := int64(0)
		for _, b := range batches {
			total += b
		}
		return 0, fmt.Errorf("sim: no finished products (all %d raw inputs lost); raise outputs", total)
	}
	worst := 0.0
	for u := range st.BusyTime {
		if per := st.BusyTime[u] / float64(st.Outputs); per > worst {
			worst = per
		}
	}
	if worst <= 0 {
		return 0, fmt.Errorf("sim: degenerate measurement (no busy time)")
	}
	return 1 / worst, nil
}
