package sim

import (
	"fmt"
	"math"
	"testing"

	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
)

// TestSimConvergesToAnalyticPeriod enforces the promise in this package's
// doc comment: the discrete-event steady-state throughput converges to
// 1/period computed by package core.
//
// The measurement runs batches sized for exactly xout expected outputs
// (margin 1.0) to full drain and takes Outputs/Time. The historical
// windowed measurement over a padded batch was NOT suitable here: on
// in-trees the branch machines chewed through the padding margin eagerly,
// front-loading work that never became an output inside the window and
// biasing the windowed rate well above 1/period — MeasureThroughput now
// uses a busy-time estimator instead, enforced on the same instances by
// TestMeasureThroughputConvergesOnInTrees below. On a drained run the
// fill and drain transients are O(depth), so their relative weight
// vanishes as xout grows and the ratio must converge.
func TestSimConvergesToAnalyticPeriod(t *testing.T) {
	cases := []struct {
		name string
		in   func() (*core.Instance, error)
	}{
		{"chain-standard", func() (*core.Instance, error) {
			return gen.Chain(gen.Default(10, 3, 5), gen.RNG(41))
		}},
		{"chain-high-failure", func() (*core.Instance, error) {
			pr := gen.Default(10, 3, 5)
			pr.FMin, pr.FMax = 0, 0.10 // the Figure 8 regime
			return gen.Chain(pr, gen.RNG(42))
		}},
		{"intree-join", func() (*core.Instance, error) {
			return gen.InTree(gen.Default(9, 3, 5), 2, gen.RNG(43))
		}},
	}
	// The ladder: batch sizes with tightening tolerance on the mean of
	// three seeds. The bands are generous against Bernoulli noise but a
	// biased simulator or a wrong analytic period (a >=2% effect would
	// persist at every size) cannot pass the last rungs.
	ladder := []struct {
		xout float64
		tol  float64
	}{
		{500, 0.05},
		{2000, 0.03},
		{8000, 0.02},
		{32000, 0.01},
	}
	const seeds = 3
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			in, err := tc.in()
			if err != nil {
				t.Fatal(err)
			}
			mp, err := heuristics.H4w(in, nil, heuristics.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ev, err := core.Evaluate(in, mp)
			if err != nil {
				t.Fatal(err)
			}
			for _, rung := range ladder {
				rung := rung
				t.Run(fmt.Sprintf("xout=%.0f", rung.xout), func(t *testing.T) {
					if testing.Short() && rung.xout > 8000 {
						t.Skip("largest rung skipped in -short")
					}
					mean := 0.0
					for seed := int64(0); seed < seeds; seed++ {
						batches, err := PlanBatches(in, mp, rung.xout, 1.0)
						if err != nil {
							t.Fatal(err)
						}
						st, err := Run(in, mp, Options{Inputs: batches, Seed: 100 + seed})
						if err != nil {
							t.Fatal(err)
						}
						if !st.Drained {
							t.Fatal("run did not drain")
						}
						mean += st.Throughput
					}
					mean /= seeds
					rel := math.Abs(mean*ev.Period - 1)
					if rel > rung.tol {
						t.Fatalf("empirical throughput %v vs analytic %v: rel err %.4f > %.3f",
							mean, 1/ev.Period, rel, rung.tol)
					}
					t.Logf("rel err %.4f (tol %.3f)", rel, rung.tol)
				})
			}
		})
	}
}

// TestMeasureThroughputConvergesOnInTrees closes the ROADMAP item on the
// windowed-measurement bias: MeasureThroughput's busy-time estimator must
// converge to 1/period on the exact instance family where the windowed
// scheme was biased (branch-heavy in-trees), and on chains. The bands are
// tighter than the drained Outputs/Time ladder at equal batch sizes
// because busy time carries no fill/drain transient at all.
func TestMeasureThroughputConvergesOnInTrees(t *testing.T) {
	cases := []struct {
		name string
		in   func() (*core.Instance, error)
	}{
		{"chain-standard", func() (*core.Instance, error) {
			return gen.Chain(gen.Default(10, 3, 5), gen.RNG(41))
		}},
		{"intree-join", func() (*core.Instance, error) {
			return gen.InTree(gen.Default(9, 3, 5), 2, gen.RNG(43))
		}},
		{"intree-wide", func() (*core.Instance, error) {
			return gen.InTree(gen.Default(13, 3, 6), 4, gen.RNG(44))
		}},
	}
	ladder := []struct {
		outputs int64
		tol     float64
	}{
		{500, 0.04},
		{2000, 0.02},
		{8000, 0.01},
		{32000, 0.006},
	}
	const seeds = 3
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			in, err := tc.in()
			if err != nil {
				t.Fatal(err)
			}
			mp, err := heuristics.H4w(in, nil, heuristics.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ev, err := core.Evaluate(in, mp)
			if err != nil {
				t.Fatal(err)
			}
			for _, rung := range ladder {
				rung := rung
				t.Run(fmt.Sprintf("outputs=%d", rung.outputs), func(t *testing.T) {
					if testing.Short() && rung.outputs > 8000 {
						t.Skip("largest rung skipped in -short")
					}
					mean := 0.0
					for seed := int64(0); seed < seeds; seed++ {
						thr, err := MeasureThroughput(in, mp, rung.outputs, 0.2, 200+seed)
						if err != nil {
							t.Fatal(err)
						}
						mean += thr
					}
					mean /= seeds
					rel := math.Abs(mean*ev.Period - 1)
					if rel > rung.tol {
						t.Fatalf("measured throughput %v vs analytic %v: rel err %.4f > %.3f",
							mean, 1/ev.Period, rel, rung.tol)
					}
					t.Logf("rel err %.4f (tol %.3f)", rel, rung.tol)
				})
			}
		})
	}
}
