package sim

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/platform"
)

// failFree builds a deterministic chain instance with no failures:
// n tasks of distinct types on m machines, constant time w.
func failFree(t *testing.T, n, m int, w float64) *core.Instance {
	t.Helper()
	types := make([]app.TypeID, n)
	for i := range types {
		types[i] = app.TypeID(i)
	}
	a := app.MustChain(types)
	p, err := platform.NewHomogeneous(n, m, w)
	if err != nil {
		t.Fatal(err)
	}
	f, err := failure.NewUniform(n, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestDeterministicPipelineDrains(t *testing.T) {
	// 3 tasks, 3 machines, no failures, 10 products: all 10 come out.
	in := failFree(t, 3, 3, 100)
	mp := core.NewMapping(3)
	for i := 0; i < 3; i++ {
		mp.Assign(app.TaskID(i), platform.MachineID(i))
	}
	st, err := Run(in, mp, Options{Inputs: []int64{10}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Outputs != 10 || !st.Drained {
		t.Fatalf("outputs=%d drained=%v", st.Outputs, st.Drained)
	}
	// Pipeline of 3 stages at 100 ms: makespan = (10+2)·100 = 1200 ms.
	if math.Abs(st.Time-1200) > 1e-9 {
		t.Fatalf("makespan = %v, want 1200", st.Time)
	}
	if st.LossesPerTask[0] != 0 || st.Processed[0] != 10 {
		t.Fatalf("losses=%v processed=%v", st.LossesPerTask, st.Processed)
	}
}

func TestSingleMachineSerialization(t *testing.T) {
	// 2 tasks on one machine, no failures, 5 products: the machine does
	// 10 services of 100 ms → 1000 ms.
	in := failFree(t, 2, 1, 100)
	mp := core.NewMapping(2)
	mp.Assign(0, 0)
	mp.Assign(1, 0)
	st, err := Run(in, mp, Options{Inputs: []int64{5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Outputs != 5 {
		t.Fatalf("outputs = %d", st.Outputs)
	}
	if math.Abs(st.Time-1000) > 1e-9 {
		t.Fatalf("makespan = %v, want 1000", st.Time)
	}
	if u := st.Utilization(0); math.Abs(u-1) > 1e-9 {
		t.Fatalf("utilization = %v, want 1", u)
	}
}

func TestLossesReduceOutputs(t *testing.T) {
	// Single task with f = 0.5: roughly half of a large batch survives.
	a := app.MustChain([]app.TypeID{0})
	p, _ := platform.NewHomogeneous(1, 1, 10)
	f, _ := failure.NewUniform(1, 1, 0.5)
	in, err := core.NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	mp := core.NewMapping(1)
	mp.Assign(0, 0)
	st, err := Run(in, mp, Options{Inputs: []int64{10000}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(st.Outputs) / 10000
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("survival ratio %v far from 0.5", ratio)
	}
	if st.LossesPerTask[0]+st.Outputs != 10000 {
		t.Fatalf("losses+outputs = %d, want 10000", st.LossesPerTask[0]+st.Outputs)
	}
}

func TestJoinConsumesBothBranches(t *testing.T) {
	// Branch A: T0; branch B: T1; join T2. One product per branch →
	// exactly one output; starving one branch yields zero.
	b := app.NewBuilder()
	t0 := b.AddTask(0, "")
	t1 := b.AddTask(1, "")
	b.Join(2, "join", t0, t1)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := platform.NewHomogeneous(3, 3, 50)
	f, _ := failure.NewUniform(3, 3, 0)
	in, err := core.NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	mp := core.NewMapping(3)
	for i := 0; i < 3; i++ {
		mp.Assign(app.TaskID(i), platform.MachineID(i))
	}
	st, err := Run(in, mp, Options{Inputs: []int64{3, 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Outputs != 3 {
		t.Fatalf("outputs = %d, want 3 (limited by the starved branch)", st.Outputs)
	}
	st2, err := Run(in, mp, Options{Inputs: []int64{0, 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Outputs != 0 {
		t.Fatalf("outputs = %d, want 0", st2.Outputs)
	}
}

func TestTargetOutputsStopsEarly(t *testing.T) {
	in := failFree(t, 2, 2, 100)
	mp := core.NewMapping(2)
	mp.Assign(0, 0)
	mp.Assign(1, 1)
	st, err := Run(in, mp, Options{Inputs: []int64{100}, TargetOutputs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Outputs != 5 || st.Drained {
		t.Fatalf("outputs=%d drained=%v", st.Outputs, st.Drained)
	}
}

func TestRunValidation(t *testing.T) {
	in := failFree(t, 2, 2, 100)
	mp := core.NewMapping(2)
	mp.Assign(0, 0) // incomplete
	if _, err := Run(in, mp, Options{Inputs: []int64{1}}); err == nil {
		t.Fatal("incomplete mapping accepted")
	}
	mp.Assign(1, 1)
	if _, err := Run(in, mp, Options{Inputs: []int64{1, 2}}); err == nil {
		t.Fatal("wrong batch count accepted")
	}
	if _, err := Run(in, mp, Options{Inputs: []int64{-1}}); err == nil {
		t.Fatal("negative batch accepted")
	}
}

func TestPlanBatches(t *testing.T) {
	a := app.MustChain([]app.TypeID{0})
	p, _ := platform.NewHomogeneous(1, 1, 10)
	f, _ := failure.NewUniform(1, 1, 0.5)
	in, _ := core.NewInstance(a, p, f)
	mp := core.NewMapping(1)
	mp.Assign(0, 0)
	b, err := PlanBatches(in, mp, 100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	// x = 2, so 100 outputs need ~200 inputs; +10% → 220.
	if len(b) != 1 || b[0] != 220 {
		t.Fatalf("batches = %v, want [220]", b)
	}
}

func TestMeasuredThroughputMatchesAnalyticPeriod(t *testing.T) {
	// The headline cross-check: on random mapped chains the empirical
	// steady-state throughput must approach 1/period.
	for seed := int64(0); seed < 4; seed++ {
		in, err := gen.Chain(gen.Default(8, 3, 4), gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		mp, err := heuristics.H4w(in, nil, heuristics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := core.Evaluate(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		thr, err := MeasureThroughput(in, mp, 3000, 0.2, seed)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(thr*ev.Period - 1)
		if rel > 0.08 {
			t.Fatalf("seed %d: empirical throughput %v vs analytic %v (rel err %.3f)",
				seed, thr, 1/ev.Period, rel)
		}
	}
}

func TestMeasureThroughputValidation(t *testing.T) {
	in := failFree(t, 2, 2, 100)
	mp := core.NewMapping(2)
	mp.Assign(0, 0)
	mp.Assign(1, 1)
	if _, err := MeasureThroughput(in, mp, 0, 0.1, 1); err == nil {
		t.Fatal("outputs=0 accepted")
	}
	if _, err := MeasureThroughput(in, mp, 10, 1.5, 1); err == nil {
		t.Fatal("warmup >= 1 accepted")
	}
}

func TestRoundRobinPolicyAlsoDrains(t *testing.T) {
	in := failFree(t, 3, 1, 10)
	mp := core.NewMapping(3)
	for i := 0; i < 3; i++ {
		mp.Assign(app.TaskID(i), 0)
	}
	st, err := Run(in, mp, Options{Inputs: []int64{20}, Seed: 1, Policy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if st.Outputs != 20 || !st.Drained {
		t.Fatalf("outputs=%d drained=%v", st.Outputs, st.Drained)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	in := failFree(t, 2, 2, 100)
	mp := core.NewMapping(2)
	mp.Assign(0, 0)
	mp.Assign(1, 1)
	st, err := Run(in, mp, Options{Inputs: []int64{1000}, Seed: 1, MaxEvents: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Drained {
		t.Fatal("run claims drained despite the event cap")
	}
	if st.Events > 11 {
		t.Fatalf("events = %d, cap ignored", st.Events)
	}
}
