package mip

import (
	"math"
	"math/rand"
	"testing"

	"microfab/internal/lp"
)

func binary(m *lp.Model, v int) { m.SetBounds(v, 0, 1) }

func TestKnapsack(t *testing.T) {
	// max 10a+13b+7c s.t. 3a+4b+2c <= 6, binaries → a=0? enumerate:
	// abc: 111 w=9 no; 110 w=7 no; 101 w=5 val=17; 011 w=6 val=20; ...
	// optimum 011 = 20.
	m := lp.NewModel(3)
	vals := []float64{10, 13, 7}
	wts := []float64{3, 4, 2}
	var row []lp.Coef
	for v := 0; v < 3; v++ {
		m.SetObj(v, -vals[v])
		binary(m, v)
		row = append(row, lp.Coef{Var: v, Val: wts[v]})
	}
	m.AddRow(row, lp.LE, 6)
	res, err := Solve(&Problem{Model: m, Integers: []int{0, 1, 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-20)) > 1e-6 {
		t.Fatalf("objective = %v, want -20", res.Objective)
	}
	if math.Round(res.X[0]) != 0 || math.Round(res.X[1]) != 1 || math.Round(res.X[2]) != 1 {
		t.Fatalf("x = %v, want (0,1,1)", res.X)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2a = 1 with a binary: LP feasible (a=0.5) but no integer point.
	m := lp.NewModel(1)
	binary(m, 0)
	m.AddRow([]lp.Coef{{Var: 0, Val: 2}}, lp.EQ, 1)
	res, err := Solve(&Problem{Model: m, Integers: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestPureLPPassthrough(t *testing.T) {
	m := lp.NewModel(1)
	m.SetObj(0, 1)
	m.AddRow([]lp.Coef{{Var: 0, Val: 1}}, lp.GE, 4)
	res, err := Solve(&Problem{Model: m}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-4) > 1e-8 {
		t.Fatalf("got %v obj %v", res.Status, res.Objective)
	}
}

func TestWarmIncumbentNeverWorsens(t *testing.T) {
	// Simple set-partition-ish model; warm start with a feasible point.
	m := lp.NewModel(2)
	binary(m, 0)
	binary(m, 1)
	m.SetObj(0, 3)
	m.SetObj(1, 5)
	m.AddRow([]lp.Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, lp.GE, 1)
	warm := []float64{1, 1} // feasible, objective 8
	res, err := Solve(&Problem{Model: m, Integers: []int{0, 1}}, Options{Incumbent: warm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-3) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 3", res.Status, res.Objective)
	}
}

// bruteForceBinary enumerates all binary points and returns the best
// objective subject to the rows being satisfied.
func bruteForceBinary(obj []float64, rows [][]float64, senses []lp.Sense, rhs []float64) float64 {
	n := len(obj)
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for r := range rows {
			s := 0.0
			for j := 0; j < n; j++ {
				if mask>>j&1 == 1 {
					s += rows[r][j]
				}
			}
			switch senses[r] {
			case lp.LE:
				ok = ok && s <= rhs[r]+1e-9
			case lp.GE:
				ok = ok && s >= rhs[r]-1e-9
			case lp.EQ:
				ok = ok && math.Abs(s-rhs[r]) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		o := 0.0
		for j := 0; j < n; j++ {
			if mask>>j&1 == 1 {
				o += obj[j]
			}
		}
		if o < best {
			best = o
		}
	}
	return best
}

func TestRandomBinaryProgramsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4) // 3..6 binaries
		k := 2 + rng.Intn(3)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = math.Round(rng.Float64()*20 - 10)
		}
		rows := make([][]float64, k)
		senses := make([]lp.Sense, k)
		rhs := make([]float64, k)
		for r := range rows {
			rows[r] = make([]float64, n)
			for j := range rows[r] {
				rows[r][j] = math.Round(rng.Float64() * 5)
			}
			senses[r] = lp.Sense(rng.Intn(2)) // LE or GE
			rhs[r] = math.Round(rng.Float64() * float64(n) * 2)
		}
		want := bruteForceBinary(obj, rows, senses, rhs)

		m := lp.NewModel(n)
		ints := make([]int, n)
		for j := 0; j < n; j++ {
			m.SetObj(j, obj[j])
			binary(m, j)
			ints[j] = j
		}
		for r := range rows {
			var cs []lp.Coef
			for j, v := range rows[r] {
				if v != 0 {
					cs = append(cs, lp.Coef{Var: j, Val: v})
				}
			}
			if len(cs) == 0 {
				continue
			}
			m.AddRow(cs, senses[r], rhs[r])
		}
		res, err := Solve(&Problem{Model: m, Integers: ints}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(want, 1) {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver says %v obj %v x=%v", trial, res.Status, res.Objective, res.X)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (brute force %v)", trial, res.Status, want)
		}
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, res.Objective, want)
		}
	}
}

func TestNodeBudgetReportsFeasible(t *testing.T) {
	// A knapsack big enough to need several nodes; with MaxNodes=1 and a
	// warm incumbent we must get Feasible (not Optimal) and a valid gap.
	rng := rand.New(rand.NewSource(3))
	n := 12
	m := lp.NewModel(n)
	var row []lp.Coef
	warm := make([]float64, n)
	ints := make([]int, n)
	for j := 0; j < n; j++ {
		m.SetObj(j, -(1 + rng.Float64()*9))
		binary(m, j)
		row = append(row, lp.Coef{Var: j, Val: 1 + rng.Float64()*4})
		ints[j] = j
	}
	m.AddRow(row, lp.LE, 10)
	res, err := Solve(&Problem{Model: m, Integers: ints}, Options{MaxNodes: 1, Incumbent: warm, DiveEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible {
		t.Fatalf("status = %v, want feasible", res.Status)
	}
	if res.Gap() < 0 {
		t.Fatalf("negative gap %v", res.Gap())
	}
}
