// Package mip solves mixed-integer programs by LP-based branch and bound:
// best-bound node selection, most-fractional branching, an optional warm
// incumbent, and a rounding-dive primal heuristic. It is the exact layer
// the paper obtains from CPLEX; on the paper's instance sizes (n <= 15-20
// tasks) it proves optimality in seconds.
package mip

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"microfab/internal/lp"
)

// intTol is the integrality tolerance: values within intTol of an integer
// count as integral.
const intTol = 1e-6

// Problem couples an LP model with integrality requirements.
type Problem struct {
	Model *lp.Model
	// Integers lists the variables required to take integer values.
	Integers []int
}

// Options tunes the search; the zero value uses sensible defaults.
type Options struct {
	// MaxNodes caps explored nodes (0 = 200000).
	MaxNodes int
	// TimeLimit stops the search after this wall-clock duration
	// (0 = no limit).
	TimeLimit time.Duration
	// Incumbent optionally warm-starts the search with a known feasible
	// point (its objective is recomputed; it is NOT verified against the
	// rows — pass genuinely feasible points only).
	Incumbent []float64
	// RelGap terminates when (incumbent - bound) <= RelGap·|incumbent|
	// (0 = prove optimality exactly up to tolerances).
	RelGap float64
	// DiveEvery runs the rounding-dive heuristic at every k-th node
	// (0 = 50; negative disables).
	DiveEvery int
}

func (o Options) maxNodes() int {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return 200000
}

func (o Options) diveEvery() int {
	if o.DiveEvery < 0 {
		return 0
	}
	if o.DiveEvery == 0 {
		return 50
	}
	return o.DiveEvery
}

// Status reports how the search ended.
type Status int

const (
	// Optimal: incumbent proven optimal (within tolerances/RelGap).
	Optimal Status = iota
	// Feasible: an incumbent exists but the search stopped early
	// (node or time budget).
	Feasible
	// Infeasible: no integer-feasible point exists.
	Infeasible
	// Unbounded: the LP relaxation is unbounded.
	Unbounded
	// Budget: stopped on a budget with no incumbent found.
	Budget
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Budget:
		return "budget-exhausted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	// Bound is the proven lower bound on the optimum (minimization).
	Bound float64
	// Nodes explored, LPIterations summed over all LP solves.
	Nodes        int
	LPIterations int
	Elapsed      time.Duration
}

// Gap returns the relative optimality gap (0 when proven optimal).
func (r *Result) Gap() float64 {
	if r.Status == Optimal {
		return 0
	}
	if math.IsInf(r.Objective, 1) || math.IsInf(r.Bound, -1) {
		return math.Inf(1)
	}
	den := math.Abs(r.Objective)
	if den < 1 {
		den = 1
	}
	return (r.Objective - r.Bound) / den
}

// node is one branch-and-bound subproblem: full bound vectors for the
// integer variables (continuous bounds never change during the search).
type node struct {
	lower, upper []float64 // indexed by position in Problem.Integers
	bound        float64   // parent LP objective (optimistic)
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound on the problem.
func Solve(p *Problem, opts Options) (*Result, error) {
	start := time.Now()
	model := p.Model
	ints := p.Integers
	res := &Result{Objective: math.Inf(1), Bound: math.Inf(-1)}

	if len(ints) == 0 {
		sol, err := model.Solve()
		if err != nil {
			return nil, err
		}
		res.Elapsed = time.Since(start)
		res.LPIterations = sol.Iterations
		switch sol.Status {
		case lp.Optimal:
			res.Status = Optimal
			res.X = sol.X
			res.Objective = sol.Objective
			res.Bound = sol.Objective
		case lp.Infeasible:
			res.Status = Infeasible
		case lp.Unbounded:
			res.Status = Unbounded
		default:
			res.Status = Budget
		}
		return res, nil
	}

	// Remember the original integer bounds so node bounds can be applied
	// and reverted on the single shared model.
	baseLo := make([]float64, len(ints))
	baseHi := make([]float64, len(ints))
	for k, v := range ints {
		baseLo[k], baseHi[k] = model.Bounds(v)
	}
	restore := func() {
		for k, v := range ints {
			model.SetBounds(v, baseLo[k], baseHi[k])
		}
	}
	apply := func(nd *node) {
		for k, v := range ints {
			model.SetBounds(v, nd.lower[k], nd.upper[k])
		}
	}

	if opts.Incumbent != nil {
		obj := 0.0
		for v := 0; v < model.NumVars(); v++ {
			obj += model.ObjCoef(v) * opts.Incumbent[v]
		}
		res.X = append([]float64(nil), opts.Incumbent...)
		res.Objective = obj
	}

	root := &node{lower: append([]float64(nil), baseLo...), upper: append([]float64(nil), baseHi...), bound: math.Inf(-1)}
	open := &nodeHeap{root}
	heap.Init(open)

	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	stoppedEarly := false

	for open.Len() > 0 {
		if res.Nodes >= opts.maxNodes() || (!deadline.IsZero() && time.Now().After(deadline)) {
			stoppedEarly = true
			break
		}
		nd := heap.Pop(open).(*node)
		if nd.bound >= res.Objective-1e-9 {
			continue // dominated by the incumbent
		}
		res.Nodes++
		apply(nd)
		sol, err := model.Solve()
		if err != nil {
			restore()
			return nil, err
		}
		res.LPIterations += sol.Iterations
		if sol.Status == lp.Unbounded && res.Nodes == 1 {
			restore()
			res.Status = Unbounded
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if sol.Status != lp.Optimal {
			continue // infeasible (or pathological) subtree: prune
		}
		if sol.Objective >= res.Objective-1e-9 {
			continue // bound prune
		}
		frac := mostFractional(sol.X, ints)
		if frac < 0 {
			// Integer feasible: new incumbent.
			res.X = append([]float64(nil), sol.X...)
			res.Objective = sol.Objective
			continue
		}
		if k := opts.diveEvery(); k > 0 && res.Nodes%k == 1 {
			if x, obj, ok := dive(model, ints, sol.X); ok && obj < res.Objective-1e-9 {
				res.X = x
				res.Objective = obj
			}
		}
		v := ints[frac]
		xv := sol.X[v]
		left := &node{lower: append([]float64(nil), nd.lower...), upper: append([]float64(nil), nd.upper...), bound: sol.Objective}
		left.upper[frac] = math.Floor(xv)
		right := &node{lower: append([]float64(nil), nd.lower...), upper: append([]float64(nil), nd.upper...), bound: sol.Objective}
		right.lower[frac] = math.Ceil(xv)
		heap.Push(open, left)
		heap.Push(open, right)
	}
	restore()

	res.Elapsed = time.Since(start)
	// The proven bound is the smallest bound among remaining open nodes.
	res.Bound = res.Objective
	for _, nd := range *open {
		if nd.bound < res.Bound {
			res.Bound = nd.bound
		}
	}
	hasIncumbent := !math.IsInf(res.Objective, 1)
	switch {
	case hasIncumbent && (!stoppedEarly || withinGap(res, opts.RelGap)):
		res.Status = Optimal
	case hasIncumbent:
		res.Status = Feasible
	case stoppedEarly:
		res.Status = Budget
	default:
		res.Status = Infeasible
	}
	return res, nil
}

func withinGap(r *Result, relGap float64) bool {
	if relGap <= 0 {
		return false
	}
	return r.Gap() <= relGap
}

// mostFractional returns the index (into ints) of the integer variable
// farthest from integrality, or -1 when all are integral.
func mostFractional(x []float64, ints []int) int {
	best, bestDist := -1, intTol
	for k, v := range ints {
		f := x[v] - math.Floor(x[v])
		d := math.Min(f, 1-f)
		if d > bestDist {
			bestDist = d
			best = k
		}
	}
	return best
}

// dive fixes every integer variable to the rounding of the relaxation
// value, solves the continuous rest, and returns the point when feasible.
func dive(model *lp.Model, ints []int, relax []float64) ([]float64, float64, bool) {
	saveLo := make([]float64, len(ints))
	saveHi := make([]float64, len(ints))
	for k, v := range ints {
		saveLo[k], saveHi[k] = model.Bounds(v)
		r := math.Round(relax[v])
		// Clamp the rounding into the node's box.
		if r < saveLo[k] {
			r = saveLo[k]
		}
		if r > saveHi[k] {
			r = saveHi[k]
		}
		model.SetBounds(v, r, r)
	}
	sol, err := model.Solve()
	for k, v := range ints {
		model.SetBounds(v, saveLo[k], saveHi[k])
	}
	if err != nil || sol.Status != lp.Optimal {
		return nil, 0, false
	}
	return sol.X, sol.Objective, true
}
