// Package platform models the target execution platform: a set of machines
// (micro-factory cells) fully interconnected, each able to perform any task
// at a machine- and task-dependent speed.
//
// Communication times are neglected, as in the paper; a non-negligible
// transfer can always be modelled as an extra task on a dedicated machine.
package platform

import (
	"fmt"
	"math"

	"microfab/internal/app"
)

// MachineID identifies a machine; IDs are dense indices in [0, NumMachines).
// The paper's M1..Mm map to 0..m-1.
type MachineID int

// NoMachine marks an unassigned slot in allocation vectors.
const NoMachine MachineID = -1

// Platform is an immutable machine set with per-(task,machine) execution
// times. Times are expressed in milliseconds, matching the paper's plots.
type Platform struct {
	m int
	// w[i][u] is the time for task i on machine u, in ms.
	w     [][]float64
	names []string
}

// New builds a platform from the execution-time matrix w, where w[i][u] is
// the time (ms) for task i on machine u. All rows must have equal length and
// all entries must be positive and finite.
func New(w [][]float64) (*Platform, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, fmt.Errorf("platform: empty execution-time matrix")
	}
	m := len(w[0])
	cp := make([][]float64, len(w))
	for i, row := range w {
		if len(row) != m {
			return nil, fmt.Errorf("platform: row %d has %d machines, want %d", i, len(row), m)
		}
		cp[i] = make([]float64, m)
		for u, v := range row {
			if !(v > 0) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("platform: w[%d][%d]=%v must be positive and finite", i, u, v)
			}
			cp[i][u] = v
		}
	}
	names := make([]string, m)
	for u := range names {
		names[u] = fmt.Sprintf("M%d", u+1)
	}
	return &Platform{m: m, w: cp, names: names}, nil
}

// NewHomogeneous builds a platform of m machines where every task takes the
// same time w on every machine (the setting of the paper's Theorem 1).
func NewHomogeneous(n, m int, w float64) (*Platform, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("platform: need n>0 tasks and m>0 machines, got n=%d m=%d", n, m)
	}
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, m)
		for u := range row {
			row[u] = w
		}
		rows[i] = row
	}
	return New(rows)
}

// NumMachines returns m.
func (p *Platform) NumMachines() int { return p.m }

// NumTasks returns the number of task rows the platform was built for.
func (p *Platform) NumTasks() int { return len(p.w) }

// Time returns w[i][u], the time (ms) for task i on machine u.
func (p *Platform) Time(i app.TaskID, u MachineID) float64 { return p.w[i][u] }

// Row returns the execution times of task i across machines. The returned
// slice must not be modified.
func (p *Platform) Row(i app.TaskID) []float64 { return p.w[i] }

// SetName gives machine u a human-readable name.
func (p *Platform) SetName(u MachineID, name string) { p.names[u] = name }

// Name returns the machine's name (defaults to "M<u+1>").
func (p *Platform) Name(u MachineID) string { return p.names[u] }

// IsHomogeneous reports whether all entries of w are equal.
func (p *Platform) IsHomogeneous() bool {
	w0 := p.w[0][0]
	for _, row := range p.w {
		for _, v := range row {
			if v != w0 {
				return false
			}
		}
	}
	return true
}

// Heterogeneity returns, for each machine, the standard deviation of its
// column of w. The paper's H3 heuristic sorts machines by this value.
func (p *Platform) Heterogeneity() []float64 {
	n := len(p.w)
	h := make([]float64, p.m)
	for u := 0; u < p.m; u++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += p.w[i][u]
		}
		mean := sum / float64(n)
		var varsum float64
		for i := 0; i < n; i++ {
			d := p.w[i][u] - mean
			varsum += d * d
		}
		h[u] = math.Sqrt(varsum / float64(n))
	}
	return h
}

// SlowestSequentialTime returns the worst-case period bound used to seed the
// paper's binary-search heuristics: the time for the slowest machine to run
// every task weighted by the given per-task product counts x (use all-ones
// for a failure-free bound).
func (p *Platform) SlowestSequentialTime(x []float64) float64 {
	worst := 0.0
	for u := 0; u < p.m; u++ {
		var t float64
		for i := range p.w {
			xi := 1.0
			if x != nil {
				xi = x[i]
			}
			t += xi * p.w[i][u]
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// CheckTypedTimes verifies the paper's structural assumption that tasks of
// the same type have the same execution time on every machine:
// t(i)=t(i') => w[i][u]=w[i'][u] for all u.
func (p *Platform) CheckTypedTimes(a *app.Application) error {
	if a.NumTasks() != len(p.w) {
		return fmt.Errorf("platform: %d task rows but application has %d tasks", len(p.w), a.NumTasks())
	}
	rep := make(map[app.TypeID]app.TaskID)
	for i := 0; i < a.NumTasks(); i++ {
		id := app.TaskID(i)
		ty := a.Type(id)
		first, ok := rep[ty]
		if !ok {
			rep[ty] = id
			continue
		}
		for u := 0; u < p.m; u++ {
			if p.w[id][u] != p.w[first][u] {
				return fmt.Errorf("platform: tasks %d and %d share type %d but differ on machine %d (w=%v vs %v)",
					first, id, ty, u, p.w[first][u], p.w[id][u])
			}
		}
	}
	return nil
}
