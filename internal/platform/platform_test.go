package platform

import (
	"math"
	"testing"

	"microfab/internal/app"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		w    [][]float64
	}{
		{"empty", nil},
		{"empty row", [][]float64{{}}},
		{"ragged", [][]float64{{1, 2}, {1}}},
		{"zero time", [][]float64{{0}}},
		{"negative time", [][]float64{{-3}}},
		{"infinite time", [][]float64{{math.Inf(1)}}},
	}
	for _, c := range cases {
		if _, err := New(c.w); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestTimeAndNames(t *testing.T) {
	p, err := New([][]float64{{100, 200}, {300, 400}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumMachines() != 2 || p.NumTasks() != 2 {
		t.Fatalf("dims = (%d,%d)", p.NumTasks(), p.NumMachines())
	}
	if p.Time(1, 0) != 300 {
		t.Fatalf("Time(1,0) = %v", p.Time(1, 0))
	}
	if p.Name(1) != "M2" {
		t.Fatalf("default name = %q", p.Name(1))
	}
	p.SetName(1, "gripper")
	if p.Name(1) != "gripper" {
		t.Fatalf("renamed = %q", p.Name(1))
	}
}

func TestHomogeneous(t *testing.T) {
	p, err := NewHomogeneous(3, 4, 250)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsHomogeneous() {
		t.Fatal("homogeneous platform not detected")
	}
	for _, h := range p.Heterogeneity() {
		if h != 0 {
			t.Fatalf("heterogeneity %v on homogeneous platform", h)
		}
	}
	q, _ := New([][]float64{{100, 100}, {100, 200}})
	if q.IsHomogeneous() {
		t.Fatal("heterogeneous platform claimed homogeneous")
	}
}

func TestNewHomogeneousRejectsBadSizes(t *testing.T) {
	if _, err := NewHomogeneous(0, 3, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewHomogeneous(3, 0, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestHeterogeneityValues(t *testing.T) {
	// Column 0 constant -> 0; column 1 is {100,300}: mean 200, population
	// stddev 100.
	p, _ := New([][]float64{{100, 100}, {100, 300}})
	h := p.Heterogeneity()
	if h[0] != 0 {
		t.Fatalf("h[0] = %v, want 0", h[0])
	}
	if math.Abs(h[1]-100) > 1e-9 {
		t.Fatalf("h[1] = %v, want 100", h[1])
	}
}

func TestSlowestSequentialTime(t *testing.T) {
	p, _ := New([][]float64{{100, 400}, {200, 100}})
	// Machine 0: 300, machine 1: 500 with x = 1.
	if got := p.SlowestSequentialTime(nil); got != 500 {
		t.Fatalf("SlowestSequentialTime = %v, want 500", got)
	}
	// With x = (2, 1): machine 0: 400, machine 1: 900.
	if got := p.SlowestSequentialTime([]float64{2, 1}); got != 900 {
		t.Fatalf("weighted = %v, want 900", got)
	}
}

func TestCheckTypedTimes(t *testing.T) {
	a := app.MustChain([]app.TypeID{0, 1, 0})
	ok, _ := New([][]float64{{100, 200}, {300, 400}, {100, 200}})
	if err := ok.CheckTypedTimes(a); err != nil {
		t.Fatalf("valid typed times rejected: %v", err)
	}
	bad, _ := New([][]float64{{100, 200}, {300, 400}, {101, 200}})
	if err := bad.CheckTypedTimes(a); err == nil {
		t.Fatal("typed-time violation accepted")
	}
	short, _ := New([][]float64{{100, 200}})
	if err := short.CheckTypedTimes(a); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestRowIsSharedView(t *testing.T) {
	p, _ := New([][]float64{{100, 200}})
	r := p.Row(0)
	if len(r) != 2 || r[0] != 100 {
		t.Fatalf("Row = %v", r)
	}
}
