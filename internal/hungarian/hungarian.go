// Package hungarian implements bipartite assignment algorithms used by the
// optimal one-to-one mapping solvers:
//
//   - Solve: minimum-cost perfect assignment (the Hungarian method, in its
//     O(n²m) shortest-augmenting-path / Jonker-Volgenant form), used for
//     Theorem 1 where the cost of (task, machine) is -log(1 - f[i][u]);
//   - MaxMatching: Hopcroft-Karp maximum bipartite matching;
//   - Bottleneck: min-max (bottleneck) assignment by binary search over the
//     sorted cost values with a matching feasibility test, used for the
//     Figure 9 optimal one-to-one baseline where x[i] is mapping-independent.
//
// Rows are "left" vertices (tasks), columns are "right" vertices (machines);
// rectangular problems with rows <= cols are supported: every row is
// assigned, columns may stay free.
package hungarian

import (
	"fmt"
	"math"
	"sort"
)

// Solve returns an assignment row->col minimizing the total cost, and that
// minimum. cost[r][c] may be +Inf to forbid a pair. It requires
// len(cost) <= len(cost[0]) and returns an error when no finite-cost perfect
// assignment of all rows exists.
func Solve(cost [][]float64) (assign []int, total float64, err error) {
	nr := len(cost)
	if nr == 0 {
		return nil, 0, nil
	}
	nc := len(cost[0])
	if nr > nc {
		return nil, 0, fmt.Errorf("hungarian: %d rows exceed %d columns", nr, nc)
	}
	for r, row := range cost {
		if len(row) != nc {
			return nil, 0, fmt.Errorf("hungarian: row %d has %d columns, want %d", r, len(row), nc)
		}
	}

	// Shortest-augmenting-path formulation with dual potentials, 1-based
	// virtual row/col 0 (standard JV layout).
	const inf = math.MaxFloat64
	u := make([]float64, nr+1) // row potentials
	v := make([]float64, nc+1) // column potentials
	p := make([]int, nc+1)     // p[c] = row matched to column c (0 = free)
	way := make([]int, nc+1)

	for r := 1; r <= nr; r++ {
		p[0] = r
		j0 := 0
		minv := make([]float64, nc+1)
		used := make([]bool, nc+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= nc; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || delta == inf {
				return nil, 0, fmt.Errorf("hungarian: no feasible assignment (row %d isolated by infinite costs)", r-1)
			}
			for j := 0; j <= nc; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, nr)
	for j := 1; j <= nc; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	for r := 0; r < nr; r++ {
		total += cost[r][assign[r]]
	}
	if math.IsInf(total, 1) {
		return nil, 0, fmt.Errorf("hungarian: assignment uses a forbidden pair")
	}
	return assign, total, nil
}

// MaxMatching computes a maximum matching of the bipartite graph given by
// adjacency lists adj[r] = admissible columns of row r, over nc columns,
// using Hopcroft-Karp in O(E sqrt(V)). It returns matchRow[r] = column of r
// or -1, and the matching size.
func MaxMatching(adj [][]int, nc int) (matchRow []int, size int) {
	nr := len(adj)
	const nilV = -1
	matchRow = make([]int, nr)
	matchCol := make([]int, nc)
	for i := range matchRow {
		matchRow[i] = nilV
	}
	for i := range matchCol {
		matchCol[i] = nilV
	}
	dist := make([]int, nr)

	bfs := func() bool {
		queue := make([]int, 0, nr)
		for r := 0; r < nr; r++ {
			if matchRow[r] == nilV {
				dist[r] = 0
				queue = append(queue, r)
			} else {
				dist[r] = math.MaxInt32
			}
		}
		found := false
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for _, c := range adj[r] {
				r2 := matchCol[c]
				if r2 == nilV {
					found = true
				} else if dist[r2] == math.MaxInt32 {
					dist[r2] = dist[r] + 1
					queue = append(queue, r2)
				}
			}
		}
		return found
	}
	var dfs func(r int) bool
	dfs = func(r int) bool {
		for _, c := range adj[r] {
			r2 := matchCol[c]
			if r2 == nilV || (dist[r2] == dist[r]+1 && dfs(r2)) {
				matchRow[r] = c
				matchCol[c] = r
				return true
			}
		}
		dist[r] = math.MaxInt32
		return false
	}

	for bfs() {
		for r := 0; r < nr; r++ {
			if matchRow[r] == nilV && dfs(r) {
				size++
			}
		}
	}
	return matchRow, size
}

// Bottleneck returns an assignment row->col minimizing the maximum selected
// cost (min-max assignment) and that bottleneck value. It binary-searches
// the sorted distinct costs, testing each threshold with Hopcroft-Karp.
func Bottleneck(cost [][]float64) (assign []int, bottleneck float64, err error) {
	nr := len(cost)
	if nr == 0 {
		return nil, 0, nil
	}
	nc := len(cost[0])
	if nr > nc {
		return nil, 0, fmt.Errorf("hungarian: %d rows exceed %d columns", nr, nc)
	}
	values := make([]float64, 0, nr*nc)
	for _, row := range cost {
		for _, v := range row {
			if !math.IsInf(v, 1) && !math.IsNaN(v) {
				values = append(values, v)
			}
		}
	}
	if len(values) == 0 {
		return nil, 0, fmt.Errorf("hungarian: all costs are infinite")
	}
	sort.Float64s(values)
	values = dedupSorted(values)

	feasible := func(threshold float64) ([]int, bool) {
		adj := make([][]int, nr)
		for r := 0; r < nr; r++ {
			for c := 0; c < nc; c++ {
				if cost[r][c] <= threshold {
					adj[r] = append(adj[r], c)
				}
			}
		}
		match, size := MaxMatching(adj, nc)
		return match, size == nr
	}

	lo, hi := 0, len(values)-1
	if _, ok := feasible(values[hi]); !ok {
		return nil, 0, fmt.Errorf("hungarian: no perfect assignment exists even with all finite pairs")
	}
	var bestMatch []int
	for lo < hi {
		mid := (lo + hi) / 2
		if match, ok := feasible(values[mid]); ok {
			bestMatch = match
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if bestMatch == nil {
		bestMatch, _ = feasible(values[lo])
	}
	return bestMatch, values[lo], nil
}

func dedupSorted(v []float64) []float64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
