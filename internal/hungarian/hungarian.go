// Package hungarian implements bipartite assignment algorithms used by the
// optimal one-to-one mapping solvers and by the exact branch and bound's
// relaxation bounds:
//
//   - Solve: minimum-cost perfect assignment (the Hungarian method, in its
//     O(n²m) shortest-augmenting-path / Jonker-Volgenant form), used for
//     Theorem 1 where the cost of (task, machine) is -log(1 - f[i][u]);
//   - MaxMatching: Hopcroft-Karp maximum bipartite matching;
//   - Bottleneck: min-max (bottleneck) assignment by binary search over the
//     sorted cost values with a matching feasibility test, used for the
//     Figure 9 optimal one-to-one baseline where x[i] is mapping-independent
//     and for the per-node assignment bound of internal/exact.
//
// Rows are "left" vertices (tasks), columns are "right" vertices (machines);
// rectangular problems with rows <= cols are supported: every row is
// assigned, columns may stay free.
//
// The package-level functions allocate per call and take [][]float64 —
// convenient for one-shot solves. Hot loops (the exact solver prices an
// assignment relaxation per search node) use a Solver: a reusable workspace
// over flat row-major matrices whose steady-state amortized cost is zero
// allocations per call (mirroring core.Pricer's rebind pattern; gated by
// TestSolverZeroAlloc).
package hungarian

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoPerfectMatching reports that no perfect assignment of all rows
// exists under the finite-cost pairs. Callers that use Bottleneck as a
// pruning bound (the exact solver) key "prune this node" off it with
// errors.Is.
var ErrNoPerfectMatching = errors.New("hungarian: no perfect assignment exists")

// Solver is a reusable workspace for the assignment algorithms. All methods
// take flat row-major cost matrices (cost[r*nc+c]) and reuse internal
// buffers, so a long-lived Solver reaches zero allocations per call once
// its buffers have grown to the largest problem seen. The returned assign
// slice is owned by the Solver and valid only until the next call; copy it
// to keep it. A Solver is not safe for concurrent use.
type Solver struct {
	// Jonker-Volgenant buffers (1-based virtual row/col 0).
	u, v, minv []float64
	way, p     []int
	used       []bool

	assign []int

	// Hopcroft-Karp buffers plus the implicit-edge threshold state: edges
	// are pairs with cost[r*nc+c] <= thr, so no adjacency lists are built.
	matchRow, matchCol, dist, queue []int
	cost                            []float64
	nr, nc                          int
	thr                             float64

	vals []float64 // sorted distinct finite costs (bottleneck search)
}

// NewSolver returns an empty workspace; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Solve returns an assignment row->col minimizing the total cost over the
// flat row-major nr×nc matrix, and that minimum. cost[r*nc+c] may be +Inf
// to forbid a pair. It requires nr <= nc and errors when no finite-cost
// perfect assignment of all rows exists. The returned slice is reused by
// the next call.
func (s *Solver) Solve(cost []float64, nr, nc int) ([]int, float64, error) {
	if nr == 0 {
		return nil, 0, nil
	}
	if nr > nc {
		return nil, 0, fmt.Errorf("hungarian: %d rows exceed %d columns", nr, nc)
	}
	if len(cost) < nr*nc {
		return nil, 0, fmt.Errorf("hungarian: cost has %d entries, want %d", len(cost), nr*nc)
	}

	const inf = math.MaxFloat64
	s.u = growF(s.u, nr+1)
	s.v = growF(s.v, nc+1)
	s.minv = growF(s.minv, nc+1)
	s.p = growI(s.p, nc+1)
	s.way = growI(s.way, nc+1)
	s.used = growB(s.used, nc+1)
	u, v, p, way := s.u, s.v, s.p, s.way
	for j := range u[:nr+1] {
		u[j] = 0
	}
	for j := range v[:nc+1] {
		v[j] = 0
		p[j] = 0
		way[j] = 0
	}

	for r := 1; r <= nr; r++ {
		p[0] = r
		j0 := 0
		minv, used := s.minv, s.used
		for j := 0; j <= nc; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			row := cost[(i0-1)*nc:]
			for j := 1; j <= nc; j++ {
				if used[j] {
					continue
				}
				cur := row[j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || delta == inf {
				return nil, 0, fmt.Errorf("hungarian: %w (row %d isolated by infinite costs)", ErrNoPerfectMatching, r-1)
			}
			for j := 0; j <= nc; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	s.assign = growI(s.assign, nr)
	assign := s.assign
	for j := 1; j <= nc; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	total := 0.0
	for r := 0; r < nr; r++ {
		total += cost[r*nc+assign[r]]
	}
	if math.IsInf(total, 1) {
		return nil, 0, fmt.Errorf("hungarian: %w (assignment uses a forbidden pair)", ErrNoPerfectMatching)
	}
	return assign, total, nil
}

// Bottleneck returns an assignment row->col minimizing the maximum selected
// cost (min-max assignment) over the flat row-major nr×nc matrix, and that
// bottleneck value. It binary-searches the sorted distinct finite costs,
// testing each threshold with Hopcroft-Karp over the implicit edge set
// cost[r*nc+c] <= threshold. Errors wrap ErrNoPerfectMatching when no
// perfect assignment of all rows exists (all-infinite matrix included).
// The returned slice is reused by the next call.
func (s *Solver) Bottleneck(cost []float64, nr, nc int) ([]int, float64, error) {
	if nr == 0 {
		return nil, 0, nil
	}
	if nr > nc {
		return nil, 0, fmt.Errorf("hungarian: %d rows exceed %d columns", nr, nc)
	}
	if len(cost) < nr*nc {
		return nil, 0, fmt.Errorf("hungarian: cost has %d entries, want %d", len(cost), nr*nc)
	}
	s.vals = s.vals[:0]
	for r := 0; r < nr; r++ {
		for c := 0; c < nc; c++ {
			if v := cost[r*nc+c]; !math.IsInf(v, 1) && !math.IsNaN(v) {
				s.vals = append(s.vals, v)
			}
		}
	}
	if len(s.vals) == 0 {
		return nil, 0, fmt.Errorf("hungarian: %w (all costs are infinite)", ErrNoPerfectMatching)
	}
	sort.Float64s(s.vals)
	s.vals = dedupSorted(s.vals)

	s.cost, s.nr, s.nc = cost, nr, nc
	lo, hi := 0, len(s.vals)-1
	if s.matchThreshold(s.vals[hi]) < nr {
		return nil, 0, fmt.Errorf("hungarian: %w (even with all finite pairs)", ErrNoPerfectMatching)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if s.matchThreshold(s.vals[mid]) == nr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s.matchThreshold(s.vals[lo]) // rebuild the witness matching at the optimum
	s.assign = growI(s.assign, nr)
	copy(s.assign, s.matchRow[:nr])
	return s.assign, s.vals[lo], nil
}

// matchThreshold computes a maximum matching over the implicit edges
// cost[r*nc+c] <= thr with Hopcroft-Karp and returns its size. The matching
// is left in matchRow/matchCol.
func (s *Solver) matchThreshold(thr float64) int {
	nr, nc := s.nr, s.nc
	s.matchRow = growI(s.matchRow, nr)
	s.matchCol = growI(s.matchCol, nc)
	s.dist = growI(s.dist, nr)
	s.queue = growI(s.queue, nr)
	for r := range s.matchRow {
		s.matchRow[r] = -1
	}
	for c := range s.matchCol {
		s.matchCol[c] = -1
	}
	s.thr = thr
	size := 0
	for s.hkBFS() {
		for r := 0; r < nr; r++ {
			if s.matchRow[r] == -1 && s.hkDFS(r) {
				size++
			}
		}
	}
	return size
}

func (s *Solver) hkBFS() bool {
	q := s.queue[:0]
	for r := 0; r < s.nr; r++ {
		if s.matchRow[r] == -1 {
			s.dist[r] = 0
			q = append(q, r)
		} else {
			s.dist[r] = math.MaxInt32
		}
	}
	found := false
	for len(q) > 0 {
		r := q[0]
		q = q[1:]
		row := s.cost[r*s.nc:]
		for c := 0; c < s.nc; c++ {
			if row[c] > s.thr {
				continue
			}
			r2 := s.matchCol[c]
			if r2 == -1 {
				found = true
			} else if s.dist[r2] == math.MaxInt32 {
				s.dist[r2] = s.dist[r] + 1
				q = append(q, r2)
			}
		}
	}
	return found
}

func (s *Solver) hkDFS(r int) bool {
	row := s.cost[r*s.nc:]
	for c := 0; c < s.nc; c++ {
		if row[c] > s.thr {
			continue
		}
		r2 := s.matchCol[c]
		if r2 == -1 || (s.dist[r2] == s.dist[r]+1 && s.hkDFS(r2)) {
			s.matchRow[r] = c
			s.matchCol[c] = r
			return true
		}
	}
	s.dist[r] = math.MaxInt32
	return false
}

// Solve returns an assignment row->col minimizing the total cost, and that
// minimum. cost[r][c] may be +Inf to forbid a pair. It requires
// len(cost) <= len(cost[0]) and returns an error when no finite-cost perfect
// assignment of all rows exists. One-shot wrapper over Solver.Solve.
func Solve(cost [][]float64) (assign []int, total float64, err error) {
	flat, nr, nc, err := flatten(cost)
	if err != nil || nr == 0 {
		return nil, 0, err
	}
	s := NewSolver()
	a, total, err := s.Solve(flat, nr, nc)
	if err != nil {
		return nil, 0, err
	}
	return append([]int(nil), a...), total, nil
}

// Bottleneck returns an assignment row->col minimizing the maximum selected
// cost (min-max assignment) and that bottleneck value. One-shot wrapper
// over Solver.Bottleneck.
func Bottleneck(cost [][]float64) (assign []int, bottleneck float64, err error) {
	flat, nr, nc, err := flatten(cost)
	if err != nil || nr == 0 {
		return nil, 0, err
	}
	s := NewSolver()
	a, bn, err := s.Bottleneck(flat, nr, nc)
	if err != nil {
		return nil, 0, err
	}
	return append([]int(nil), a...), bn, nil
}

func flatten(cost [][]float64) ([]float64, int, int, error) {
	nr := len(cost)
	if nr == 0 {
		return nil, 0, 0, nil
	}
	nc := len(cost[0])
	if nr > nc {
		return nil, 0, 0, fmt.Errorf("hungarian: %d rows exceed %d columns", nr, nc)
	}
	flat := make([]float64, 0, nr*nc)
	for r, row := range cost {
		if len(row) != nc {
			return nil, 0, 0, fmt.Errorf("hungarian: row %d has %d columns, want %d", r, len(row), nc)
		}
		flat = append(flat, row...)
	}
	return flat, nr, nc, nil
}

// MaxMatching computes a maximum matching of the bipartite graph given by
// adjacency lists adj[r] = admissible columns of row r, over nc columns,
// using Hopcroft-Karp in O(E sqrt(V)). It returns matchRow[r] = column of r
// or -1, and the matching size.
func MaxMatching(adj [][]int, nc int) (matchRow []int, size int) {
	nr := len(adj)
	const nilV = -1
	matchRow = make([]int, nr)
	matchCol := make([]int, nc)
	for i := range matchRow {
		matchRow[i] = nilV
	}
	for i := range matchCol {
		matchCol[i] = nilV
	}
	dist := make([]int, nr)

	bfs := func() bool {
		queue := make([]int, 0, nr)
		for r := 0; r < nr; r++ {
			if matchRow[r] == nilV {
				dist[r] = 0
				queue = append(queue, r)
			} else {
				dist[r] = math.MaxInt32
			}
		}
		found := false
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for _, c := range adj[r] {
				r2 := matchCol[c]
				if r2 == nilV {
					found = true
				} else if dist[r2] == math.MaxInt32 {
					dist[r2] = dist[r] + 1
					queue = append(queue, r2)
				}
			}
		}
		return found
	}
	var dfs func(r int) bool
	dfs = func(r int) bool {
		for _, c := range adj[r] {
			r2 := matchCol[c]
			if r2 == nilV || (dist[r2] == dist[r]+1 && dfs(r2)) {
				matchRow[r] = c
				matchCol[c] = r
				return true
			}
		}
		dist[r] = math.MaxInt32
		return false
	}

	for bfs() {
		for r := 0; r < nr; r++ {
			if matchRow[r] == nilV && dfs(r) {
				size++
			}
		}
	}
	return matchRow, size
}

func dedupSorted(v []float64) []float64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
