package hungarian

import (
	"math"
	"math/rand"
	"testing"
)

// bruteAssign enumerates injective row->col assignments minimizing either
// the sum (bottleneck=false) or the max (bottleneck=true) cost.
func bruteAssign(cost [][]float64, bottleneck bool) float64 {
	nr := len(cost)
	nc := len(cost[0])
	used := make([]bool, nc)
	best := math.Inf(1)
	var rec func(r int, acc float64)
	rec = func(r int, acc float64) {
		if acc >= best {
			return
		}
		if r == nr {
			best = acc
			return
		}
		for c := 0; c < nc; c++ {
			if used[c] || math.IsInf(cost[r][c], 1) {
				continue
			}
			used[c] = true
			next := acc + cost[r][c]
			if bottleneck {
				next = math.Max(acc, cost[r][c])
			}
			rec(r+1, next)
			used[c] = false
		}
	}
	rec(0, 0)
	return best
}

func randCost(rng *rand.Rand, nr, nc int) [][]float64 {
	cost := make([][]float64, nr)
	for r := range cost {
		cost[r] = make([]float64, nc)
		for c := range cost[r] {
			cost[r][c] = math.Round(rng.Float64()*100) / 10
		}
	}
	return cost
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		nr := 1 + rng.Intn(5)
		nc := nr + rng.Intn(3)
		cost := randCost(rng, nr, nc)
		assign, total, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAssign(cost, false)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute %v (cost %v)", trial, total, want, cost)
		}
		// The assignment must be injective and consistent with total.
		seen := map[int]bool{}
		sum := 0.0
		for r, c := range assign {
			if seen[c] {
				t.Fatalf("trial %d: column %d reused", trial, c)
			}
			seen[c] = true
			sum += cost[r][c]
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("trial %d: assignment sums to %v, reported %v", trial, sum, total)
		}
	}
}

func TestSolveKnownCase(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5", total)
	}
}

func TestSolveRejectsWideRows(t *testing.T) {
	if _, _, err := Solve([][]float64{{1}, {1}}); err == nil {
		t.Fatal("rows > cols accepted")
	}
}

func TestSolveEmptyAndRagged(t *testing.T) {
	if assign, total, err := Solve(nil); err != nil || assign != nil || total != 0 {
		t.Fatal("empty problem mishandled")
	}
	if _, _, err := Solve([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSolveForbiddenPairs(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 1},
		{1, inf},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign=%v total=%v", assign, total)
	}
	// Fully forbidden row -> error.
	bad := [][]float64{{inf, inf}, {1, 1}}
	if _, _, err := Solve(bad); err == nil {
		t.Fatal("isolated row accepted")
	}
}

func TestMaxMatchingSimple(t *testing.T) {
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	match, size := MaxMatching(adj, 3)
	if size != 3 {
		t.Fatalf("size = %d, want 3 (match %v)", size, match)
	}
	adj2 := [][]int{{0}, {0}}
	_, size2 := MaxMatching(adj2, 1)
	if size2 != 1 {
		t.Fatalf("size = %d, want 1", size2)
	}
}

func TestBottleneckMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		nr := 1 + rng.Intn(5)
		nc := nr + rng.Intn(3)
		cost := randCost(rng, nr, nc)
		assign, b, err := Bottleneck(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAssign(cost, true)
		if math.Abs(b-want) > 1e-9 {
			t.Fatalf("trial %d: bottleneck %v != brute %v", trial, b, want)
		}
		worst := 0.0
		seen := map[int]bool{}
		for r, c := range assign {
			if seen[c] {
				t.Fatalf("trial %d: column reused", trial)
			}
			seen[c] = true
			if cost[r][c] > worst {
				worst = cost[r][c]
			}
		}
		if math.Abs(worst-b) > 1e-9 {
			t.Fatalf("trial %d: assignment bottleneck %v, reported %v", trial, worst, b)
		}
	}
}

func TestBottleneckRejects(t *testing.T) {
	if _, _, err := Bottleneck([][]float64{{1}, {1}}); err == nil {
		t.Fatal("rows > cols accepted")
	}
	inf := math.Inf(1)
	if _, _, err := Bottleneck([][]float64{{inf}}); err == nil {
		t.Fatal("all-infinite matrix accepted")
	}
}
