package hungarian

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bruteAssign enumerates injective row->col assignments minimizing either
// the sum (bottleneck=false) or the max (bottleneck=true) cost.
func bruteAssign(cost [][]float64, bottleneck bool) float64 {
	nr := len(cost)
	nc := len(cost[0])
	used := make([]bool, nc)
	best := math.Inf(1)
	var rec func(r int, acc float64)
	rec = func(r int, acc float64) {
		if acc >= best {
			return
		}
		if r == nr {
			best = acc
			return
		}
		for c := 0; c < nc; c++ {
			if used[c] || math.IsInf(cost[r][c], 1) {
				continue
			}
			used[c] = true
			next := acc + cost[r][c]
			if bottleneck {
				next = math.Max(acc, cost[r][c])
			}
			rec(r+1, next)
			used[c] = false
		}
	}
	rec(0, 0)
	return best
}

func randCost(rng *rand.Rand, nr, nc int) [][]float64 {
	cost := make([][]float64, nr)
	for r := range cost {
		cost[r] = make([]float64, nc)
		for c := range cost[r] {
			cost[r][c] = math.Round(rng.Float64()*100) / 10
		}
	}
	return cost
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		nr := 1 + rng.Intn(5)
		nc := nr + rng.Intn(3)
		cost := randCost(rng, nr, nc)
		assign, total, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAssign(cost, false)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute %v (cost %v)", trial, total, want, cost)
		}
		// The assignment must be injective and consistent with total.
		seen := map[int]bool{}
		sum := 0.0
		for r, c := range assign {
			if seen[c] {
				t.Fatalf("trial %d: column %d reused", trial, c)
			}
			seen[c] = true
			sum += cost[r][c]
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("trial %d: assignment sums to %v, reported %v", trial, sum, total)
		}
	}
}

func TestSolveKnownCase(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5", total)
	}
}

func TestSolveRejectsWideRows(t *testing.T) {
	if _, _, err := Solve([][]float64{{1}, {1}}); err == nil {
		t.Fatal("rows > cols accepted")
	}
}

func TestSolveEmptyAndRagged(t *testing.T) {
	if assign, total, err := Solve(nil); err != nil || assign != nil || total != 0 {
		t.Fatal("empty problem mishandled")
	}
	if _, _, err := Solve([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSolveForbiddenPairs(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 1},
		{1, inf},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign=%v total=%v", assign, total)
	}
	// Fully forbidden row -> error.
	bad := [][]float64{{inf, inf}, {1, 1}}
	if _, _, err := Solve(bad); err == nil {
		t.Fatal("isolated row accepted")
	}
}

func TestMaxMatchingSimple(t *testing.T) {
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	match, size := MaxMatching(adj, 3)
	if size != 3 {
		t.Fatalf("size = %d, want 3 (match %v)", size, match)
	}
	adj2 := [][]int{{0}, {0}}
	_, size2 := MaxMatching(adj2, 1)
	if size2 != 1 {
		t.Fatalf("size = %d, want 1", size2)
	}
}

func TestBottleneckMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		nr := 1 + rng.Intn(5)
		nc := nr + rng.Intn(3)
		cost := randCost(rng, nr, nc)
		assign, b, err := Bottleneck(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAssign(cost, true)
		if math.Abs(b-want) > 1e-9 {
			t.Fatalf("trial %d: bottleneck %v != brute %v", trial, b, want)
		}
		worst := 0.0
		seen := map[int]bool{}
		for r, c := range assign {
			if seen[c] {
				t.Fatalf("trial %d: column reused", trial)
			}
			seen[c] = true
			if cost[r][c] > worst {
				worst = cost[r][c]
			}
		}
		if math.Abs(worst-b) > 1e-9 {
			t.Fatalf("trial %d: assignment bottleneck %v, reported %v", trial, worst, b)
		}
	}
}

func TestBottleneckRejects(t *testing.T) {
	if _, _, err := Bottleneck([][]float64{{1}, {1}}); err == nil {
		t.Fatal("rows > cols accepted")
	}
	inf := math.Inf(1)
	if _, _, err := Bottleneck([][]float64{{inf}}); err == nil {
		t.Fatal("all-infinite matrix accepted")
	}
}

// flattenFor is a test helper mirroring the wrapper's flattening.
func flattenFor(cost [][]float64) ([]float64, int, int) {
	nr, nc := len(cost), len(cost[0])
	flat := make([]float64, 0, nr*nc)
	for _, row := range cost {
		flat = append(flat, row...)
	}
	return flat, nr, nc
}

// TestSolverMatchesWrappers runs the reusable workspace against the one-shot
// wrappers on random rectangular instances of varying shape, interleaving
// Solve and Bottleneck calls so buffer reuse across shapes is exercised.
func TestSolverMatchesWrappers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSolver()
	for trial := 0; trial < 120; trial++ {
		nr := 1 + rng.Intn(6)
		nc := nr + rng.Intn(4)
		cost := randCost(rng, nr, nc)
		if rng.Intn(4) == 0 { // sprinkle forbidden pairs
			cost[rng.Intn(nr)][rng.Intn(nc)] = math.Inf(1)
		}
		flat, fnr, fnc := flattenFor(cost)

		wa, wt, werr := Solve(cost)
		sa, st, serr := s.Solve(flat, fnr, fnc)
		if (werr == nil) != (serr == nil) {
			t.Fatalf("trial %d: Solve err mismatch: wrapper %v solver %v", trial, werr, serr)
		}
		if werr == nil {
			if math.Abs(wt-st) > 1e-9 {
				t.Fatalf("trial %d: Solve total wrapper %v solver %v", trial, wt, st)
			}
			for r := range wa {
				if wa[r] != sa[r] {
					t.Fatalf("trial %d: Solve assign wrapper %v solver %v", trial, wa, sa)
				}
			}
		}

		wa, wb, werr := Bottleneck(cost)
		sa, sb, serr := s.Bottleneck(flat, fnr, fnc)
		if (werr == nil) != (serr == nil) {
			t.Fatalf("trial %d: Bottleneck err mismatch: wrapper %v solver %v", trial, werr, serr)
		}
		if werr == nil {
			if math.Abs(wb-sb) > 1e-9 {
				t.Fatalf("trial %d: Bottleneck value wrapper %v solver %v", trial, wb, sb)
			}
			for r := range wa {
				if wa[r] != sa[r] {
					t.Fatalf("trial %d: Bottleneck assign wrapper %v solver %v", trial, wa, sa)
				}
			}
		}
	}
}

func TestSolverErrNoPerfectMatching(t *testing.T) {
	inf := math.Inf(1)
	s := NewSolver()
	if _, _, err := s.Solve([]float64{inf, inf, 1, 1}, 2, 2); !errors.Is(err, ErrNoPerfectMatching) {
		t.Fatalf("Solve isolated row: err = %v, want ErrNoPerfectMatching", err)
	}
	if _, _, err := s.Bottleneck([]float64{inf, inf, 1, 1}, 2, 2); !errors.Is(err, ErrNoPerfectMatching) {
		t.Fatalf("Bottleneck isolated row: err = %v, want ErrNoPerfectMatching", err)
	}
	if _, _, err := s.Bottleneck([]float64{inf}, 1, 1); !errors.Is(err, ErrNoPerfectMatching) {
		t.Fatalf("Bottleneck all-infinite: err = %v, want ErrNoPerfectMatching", err)
	}
}

// TestSolverZeroAlloc pins the workspace's steady-state amortized cost at
// zero allocations per call — the property the exact solver's per-node
// assignment bound relies on.
func TestSolverZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nr, nc = 8, 10
	cost := make([]float64, nr*nc)
	for i := range cost {
		cost[i] = math.Round(rng.Float64()*100) / 10
	}
	s := NewSolver()
	// Warm both paths so the buffers are at final size.
	if _, _, err := s.Solve(cost, nr, nc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Bottleneck(cost, nr, nc); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, _, err := s.Solve(cost, nr, nc); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Solver.Solve allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, _, err := s.Bottleneck(cost, nr, nc); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Solver.Bottleneck allocates %v per op, want 0", n)
	}
}

func benchCost(n, m int) []float64 {
	rng := rand.New(rand.NewSource(3))
	cost := make([]float64, n*m)
	for i := range cost {
		cost[i] = rng.Float64() * 10
	}
	return cost
}

func BenchmarkSolverAssign(b *testing.B) {
	const nr, nc = 12, 16
	cost := benchCost(nr, nc)
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(cost, nr, nc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverBottleneck(b *testing.B) {
	const nr, nc = 12, 16
	cost := benchCost(nr, nc)
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Bottleneck(cost, nr, nc); err != nil {
			b.Fatal(err)
		}
	}
}
