package search

import (
	"fmt"
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/platform"
)

// screenInstances is the invariance battery for the load-delta screens: the
// shared contract battery plus long chains, where every task sits on the
// critical machine's successor chains and the critical-machine candidate
// filter is vacuous — there the screens are the only thing standing between
// the descent and the full n·m probe sweep.
func screenInstances(t testing.TB) []*core.Instance {
	t.Helper()
	out := reproInstances(t)
	add := func(in *core.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	add(gen.Chain(gen.Default(60, 4, 8), gen.RNG(41)))
	hf := gen.Default(35, 3, 9)
	hf.FMin, hf.FMax = 0, 0.12
	add(gen.Chain(hf, gen.RNG(42)))
	return out
}

// TestScreenResultInvariant is the gate on the batched load-delta screens:
// they may only skip probes whose destination-load lower bound proves the
// descent would reject them, so hill climbing with the screens on must
// return the bit-identical period and mapping as with them off — for both
// descent flavors, with and without the critical-machine filter (the chain
// instances make the filter vacuous, leaving the screens alone to prune) —
// while pricing no more (and across the battery strictly fewer) moves.
func TestScreenResultInvariant(t *testing.T) {
	var probesOn, probesOff int
	for k, in := range screenInstances(t) {
		for _, seedName := range []string{"H1", "H4w"} {
			h, err := heuristics.Get(seedName)
			if err != nil {
				t.Fatal(err)
			}
			seed, err := h.Fn(in, gen.RNG(int64(k)), heuristics.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, first := range []bool{false, true} {
				for _, noFilter := range []bool{false, true} {
					on := DefaultOptions()
					on.FirstImprovement = first
					on.DisableFilter = noFilter
					off := on
					off.DisableScreen = true
					a, err := HillClimb(in, seed, on)
					if err != nil {
						t.Fatal(err)
					}
					b, err := HillClimb(in, seed, off)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("inst%d/%s/first=%v/nofilter=%v", k, seedName, first, noFilter)
					if math.Float64bits(a.Period) != math.Float64bits(b.Period) ||
						a.Mapping.String() != b.Mapping.String() {
						t.Fatalf("%s: screen changed the descent:\n  on  %v (%v)\n  off %v (%v)",
							label, a.Period, a.Mapping, b.Period, b.Mapping)
					}
					if a.Accepted != b.Accepted {
						t.Fatalf("%s: screen changed the accepted-move count: %d vs %d",
							label, a.Accepted, b.Accepted)
					}
					if a.Probes > b.Probes {
						t.Fatalf("%s: screen probed more (%d) than the full scan (%d)",
							label, a.Probes, b.Probes)
					}
					probesOn += a.Probes
					probesOff += b.Probes
				}
			}
		}
	}
	if probesOn >= probesOff {
		t.Fatalf("screens saved nothing across the battery: %d vs %d probes", probesOn, probesOff)
	}
	t.Logf("battery probes: screened %d, full %d (%.1f%% skipped)",
		probesOn, probesOff, 100*(1-float64(probesOn)/float64(probesOff)))
}

// TestRestartsDeterministic: multi-start hill climbing must be a pure
// function of (instance, seed, options) — the restart streams come from
// DeriveRNG(RestartSeed, r), never from scheduling.
func TestRestartsDeterministic(t *testing.T) {
	in, err := gen.InTree(gen.Default(24, 4, 8), 3, gen.RNG(9))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Restarts = 5
	opt.RestartSeed = 12345
	a, err := HillClimb(in, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HillClimb(in, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Period != b.Period || a.Probes != b.Probes || a.Accepted != b.Accepted ||
		a.Mapping.String() != b.Mapping.String() {
		t.Fatalf("two identical multi-start runs diverged: %v/%v probes %d/%d", a.Period, b.Period, a.Probes, b.Probes)
	}
}

// TestRestartsNeverWorse: across the battery, the multi-start result must
// never exceed the single-descent result from the same caller seed (the
// best-of keeps the caller's descent unless a restart strictly beats it),
// and the refined-result contract must hold throughout.
func TestRestartsNeverWorse(t *testing.T) {
	for k, in := range reproInstances(t) {
		seed, err := heuristics.H4w(in, nil, heuristics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		single, err := HillClimb(in, seed, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Restarts = 6
		opt.RestartSeed = int64(700 + k)
		multi, err := HillClimb(in, seed, opt)
		if err != nil {
			t.Fatal(err)
		}
		if multi.Period > single.Period {
			t.Fatalf("inst%d: restarts worsened the result: %v > %v", k, multi.Period, single.Period)
		}
		if multi.Probes < single.Probes {
			t.Fatalf("inst%d: multi-start priced fewer moves (%d) than its own first descent (%d)", k, multi.Probes, single.Probes)
		}
		checkRefined(t, in, seed, multi, fmt.Sprintf("restarts inst%d", k))
	}
}

// TestRestartsOneToOne: under the one-to-one rule most constructive
// restart seeds violate the rule and must be skipped silently — the run
// still succeeds, keeps the rule, and never worsens the caller's seed.
func TestRestartsOneToOne(t *testing.T) {
	pr := gen.Default(6, 2, 9)
	in, err := gen.Chain(pr, gen.RNG(31))
	if err != nil {
		t.Fatal(err)
	}
	seed := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		seed.Assign(app.TaskID(i), platform.MachineID(i))
	}
	opt := DefaultOptions()
	opt.Rule = core.OneToOne
	opt.Restarts = 4
	res, err := HillClimb(in, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.CheckRule(in.App, core.OneToOne); err != nil {
		t.Fatalf("multi-start broke the one-to-one rule: %v", err)
	}
	seedP, err := core.PeriodE(in, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period > seedP {
		t.Fatalf("one-to-one multi-start worsened the seed: %v > %v", res.Period, seedP)
	}
}
