package search

import (
	"fmt"
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/platform"
)

// reproInstances draws the mixed battery every contract test runs over:
// chains and in-trees, standard and high-failure regimes, small to
// campaign-sized.
func reproInstances(t testing.TB) []*core.Instance {
	t.Helper()
	var out []*core.Instance
	add := func(in *core.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	add(gen.Chain(gen.Default(8, 2, 4), gen.RNG(1)))
	add(gen.Chain(gen.Default(20, 4, 10), gen.RNG(2)))
	add(gen.Chain(gen.Default(50, 5, 12), gen.RNG(3)))
	add(gen.InTree(gen.Default(15, 3, 6), 2, gen.RNG(4)))
	add(gen.InTree(gen.Default(30, 4, 8), 3, gen.RNG(5)))
	hf := gen.Default(25, 5, 10)
	hf.FMin, hf.FMax = 0, 0.10
	add(gen.Chain(hf, gen.RNG(6)))
	return out
}

// checkRefined asserts the universal search contract on a result: valid
// rule-respecting complete mapping, period agreeing with a from-scratch
// evaluation, and never worse than the seed.
func checkRefined(t *testing.T, in *core.Instance, seed *core.Mapping, res *Result, label string) {
	t.Helper()
	if res.Mapping == nil || !res.Mapping.Complete() {
		t.Fatalf("%s: incomplete refined mapping", label)
	}
	if err := res.Mapping.CheckRule(in.App, core.Specialized); err != nil {
		t.Fatalf("%s: refined mapping violates the rule: %v", label, err)
	}
	got, err := core.PeriodE(in, res.Mapping)
	if err != nil {
		t.Fatalf("%s: refined mapping does not evaluate: %v", label, err)
	}
	if math.Abs(got-res.Period) > 1e-9*math.Max(1, got) {
		t.Fatalf("%s: reported period %v, from-scratch %v", label, res.Period, got)
	}
	seedP, err := core.PeriodE(in, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period > seedP*(1+1e-12) {
		t.Fatalf("%s: refined period %v worse than seed %v", label, res.Period, seedP)
	}
	if math.Abs(res.Start-seedP) > 1e-9*seedP {
		t.Fatalf("%s: Start = %v, seed evaluates to %v", label, res.Start, seedP)
	}
}

// TestHillClimbNeverWorsens runs both descent flavors from every
// heuristic seed on the instance battery.
func TestHillClimbNeverWorsens(t *testing.T) {
	for k, in := range reproInstances(t) {
		for _, name := range []string{"H1", "H2", "H4w", "H4f"} {
			h, err := heuristics.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			seed, err := h.Fn(in, gen.RNG(int64(k)), heuristics.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, first := range []bool{false, true} {
				opt := DefaultOptions()
				opt.FirstImprovement = first
				res, err := HillClimb(in, seed, opt)
				if err != nil {
					t.Fatal(err)
				}
				checkRefined(t, in, seed, res, fmt.Sprintf("inst%d/%s/first=%v", k, name, first))
			}
		}
	}
}

// TestHillClimbImprovesBadSeeds pins that the engine actually moves: from
// the random H1 baseline, descent must strictly improve the period on a
// large majority of draws (H1 is far from local optimality).
func TestHillClimbImprovesBadSeeds(t *testing.T) {
	improved := 0
	const draws = 10
	in, err := gen.Chain(gen.Default(30, 4, 10), gen.RNG(77))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < draws; seed++ {
		mp, err := heuristics.H1(in, gen.RNG(seed), heuristics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := HillClimb(in, mp, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Improved() {
			improved++
		}
	}
	if improved < draws*8/10 {
		t.Fatalf("hill climbing improved only %d of %d random seeds", improved, draws)
	}
}

// TestHillClimbDeterministic: identical inputs, identical outputs —
// descent uses no randomness.
func TestHillClimbDeterministic(t *testing.T) {
	in, err := gen.InTree(gen.Default(24, 4, 8), 3, gen.RNG(9))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := HillClimb(in, seed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := HillClimb(in, seed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Period != b.Period || a.Probes != b.Probes || a.Mapping.String() != b.Mapping.String() {
		t.Fatalf("two identical runs diverged: %v/%v probes %d/%d", a.Period, b.Period, a.Probes, b.Probes)
	}
}

// TestAnnealContract: never worse than the seed, deterministic for a
// fixed RNG stream, different streams explore differently.
func TestAnnealContract(t *testing.T) {
	for k, in := range reproInstances(t) {
		seed, err := heuristics.H4w(in, nil, heuristics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Anneal(in, seed, gen.RNG(int64(100+k)), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		checkRefined(t, in, seed, res, fmt.Sprintf("anneal inst%d", k))

		again, err := Anneal(in, seed, gen.RNG(int64(100+k)), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if again.Period != res.Period || again.Mapping.String() != res.Mapping.String() {
			t.Fatalf("inst%d: same RNG stream, different outcome: %v vs %v", k, res.Period, again.Period)
		}
	}
}

// TestAnnealEscapesLocalOptimum builds a platform where greedy descent
// from H1 gets stuck and checks annealing's uphill acceptances at least
// match the hill climber across a seed batch (it should usually win, but
// float ties make strict dominance flaky).
func TestAnnealEscapesLocalOptimum(t *testing.T) {
	in, err := gen.Chain(gen.Default(20, 3, 6), gen.RNG(123))
	if err != nil {
		t.Fatal(err)
	}
	var hcTotal, saTotal float64
	for s := int64(0); s < 6; s++ {
		mp, err := heuristics.H1(in, gen.RNG(s), heuristics.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hc, err := HillClimb(in, mp, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Iters = 4000
		sa, err := Anneal(in, mp, gen.RNG(1000+s), opt)
		if err != nil {
			t.Fatal(err)
		}
		hcTotal += hc.Period
		saTotal += sa.Period
	}
	if saTotal > hcTotal*1.02 {
		t.Fatalf("annealing (%v total) clearly behind hill climbing (%v total)", saTotal, hcTotal)
	}
}

// TestMoveBookkeeping drives each move kind by hand on a tiny instance
// and checks the rule bookkeeping survives apply/revert cycles.
func TestMoveBookkeeping(t *testing.T) {
	in, err := gen.Chain(gen.Default(10, 3, 5), gen.RNG(55))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	e, err := newEngine(in, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string) {
		t.Helper()
		mp := e.ev.Mapping()
		for u := 0; u < in.M(); u++ {
			tasks := mp.TasksOn(platform.MachineID(u))
			if len(tasks) != e.nOn[u] {
				t.Fatalf("%s: nOn[M%d] = %d, mapping has %d", step, u+1, e.nOn[u], len(tasks))
			}
			if len(tasks) == 0 {
				if e.spec[u] != noType {
					t.Fatalf("%s: empty M%d specialized to %d", step, u+1, e.spec[u])
				}
			} else if e.spec[u] != in.App.Type(tasks[0]) {
				t.Fatalf("%s: spec[M%d] = %d, tasks have type %d", step, u+1, e.spec[u], in.App.Type(tasks[0]))
			}
		}
	}
	check("initial")
	cur := e.ev.Period()
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		for v := 0; v < in.M(); v++ {
			mv := platform.MachineID(v)
			if e.admissible(id, mv) {
				cur, _ = e.probeRelocate(id, mv, cur)
				check(fmt.Sprintf("relocate T%d->M%d", i+1, v+1))
			}
		}
	}
	for i := 0; i < in.N(); i++ {
		for j := i + 1; j < in.N(); j++ {
			if e.swapAdmissible(app.TaskID(i), app.TaskID(j)) {
				cur, _ = e.probeSwap(app.TaskID(i), app.TaskID(j), cur)
				check(fmt.Sprintf("swap T%d/T%d", i+1, j+1))
			}
		}
	}
	for u := 0; u < in.M(); u++ {
		for v := 0; v < in.M(); v++ {
			if e.groupAdmissible(platform.MachineID(u), platform.MachineID(v)) {
				cur, _ = e.probeGroup(platform.MachineID(u), platform.MachineID(v), cur)
				check(fmt.Sprintf("group M%d->M%d", u+1, v+1))
			}
		}
	}
}

// TestOneToOneRuleMoves: under the one-to-one rule the engine must keep
// at most one task per machine through a whole descent.
func TestOneToOneRuleMoves(t *testing.T) {
	pr := gen.Default(6, 2, 9)
	in, err := gen.Chain(pr, gen.RNG(31))
	if err != nil {
		t.Fatal(err)
	}
	seed := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		seed.Assign(app.TaskID(i), platform.MachineID(i))
	}
	opt := DefaultOptions()
	opt.Rule = core.OneToOne
	res, err := HillClimb(in, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.CheckRule(in.App, core.OneToOne); err != nil {
		t.Fatalf("descent broke the one-to-one rule: %v", err)
	}
	seedP, _ := core.PeriodE(in, seed)
	if res.Period > seedP {
		t.Fatalf("one-to-one descent worsened the seed: %v > %v", res.Period, seedP)
	}
}

// TestSearchErrors covers the validation paths: nil/incomplete seeds,
// rule-violating seeds, missing RNG, unknown polish strategy.
func TestSearchErrors(t *testing.T) {
	in, err := gen.Chain(gen.Default(6, 2, 3), gen.RNG(13))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	if _, err := HillClimb(in, nil, opt); err == nil {
		t.Fatal("nil seed accepted")
	}
	if _, err := HillClimb(in, core.NewMapping(in.N()), opt); err == nil {
		t.Fatal("incomplete seed accepted")
	}
	mixed := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		mixed.Assign(app.TaskID(i), 0) // all types on one machine
	}
	if err := mixed.CheckRule(in.App, core.Specialized); err != nil {
		if _, err := HillClimb(in, mixed, opt); err == nil {
			t.Fatal("rule-violating seed accepted")
		}
	}
	good, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Anneal(in, good, nil, opt); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := Polish(in, good, "tabu", core.Specialized, gen.RNG(1), 100); err == nil {
		t.Fatal("unknown polish strategy accepted")
	}
}

// TestPolishBudgetRespected: the probe budget must bound the work of the
// "ls" polish pass.
func TestPolishBudgetRespected(t *testing.T) {
	in, err := gen.Chain(gen.Default(40, 5, 12), gen.RNG(17))
	if err != nil {
		t.Fatal(err)
	}
	mp, err := heuristics.H1(in, gen.RNG(1), heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Polish(in, mp, "ls", core.Specialized, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes > 50 {
		t.Fatalf("budget 50, priced %d moves", res.Probes)
	}
	seedP, _ := core.PeriodE(in, mp)
	if res.Period > seedP {
		t.Fatalf("budgeted polish worsened the seed: %v > %v", res.Period, seedP)
	}
}
