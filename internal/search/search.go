// Package search is the local-search layer over the incremental
// evaluation engine: it refines complete mappings produced by the
// constructive heuristics (or any solver) by exploring a neighborhood of
// cheap moves, each priced through core.Evaluator in O(changed subtree)
// instead of a full O(n·m) re-evaluation.
//
// Move set (all rule-aware):
//
//   - relocate — move one task to another admissible machine;
//   - swap — exchange the machines of two tasks;
//   - group — move every task of one machine onto another (merging the
//     type groups the constructive heuristics formed).
//
// Strategies:
//
//   - HillClimb — steepest or first-improvement descent; deterministic,
//     never worsens the seed;
//   - Anneal — simulated annealing over random moves with a geometric
//     cooling schedule; the result is the best mapping ever visited, so it
//     too never worsens the seed. Given the same seed mapping and RNG
//     stream the run is fully deterministic, which is what lets the
//     experiment campaigns polish every draw concurrently and still
//     reduce to byte-identical figures (see internal/experiments).
//
// The facade exposes the strategies as Solve("ls") / Solve("anneal") and
// as a post-pass on any method (microfab.Polish); campaigns enable them
// per draw with Config.Polish.
package search

import (
	"fmt"
	"math"
	"math/rand"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/platform"
)

// Moves selects which neighborhood moves a strategy explores.
type Moves uint8

const (
	// Relocate moves one task to another admissible machine.
	Relocate Moves = 1 << iota
	// Swap exchanges the machines of two tasks.
	Swap
	// Group moves all tasks of one machine onto another.
	Group

	// AllMoves enables the full neighborhood.
	AllMoves = Relocate | Swap | Group
)

// Options tunes a search run. The zero value means: specialized rule
// (core's zero Rule is OneToOne, so Options fills Specialized via
// DefaultRule unless a caller sets Rule explicitly — see the Rule field),
// full move set, steepest descent, and the default budgets.
type Options struct {
	// Rule is the mapping rule the moves must respect. The seed mapping
	// must satisfy it. Callers almost always want core.Specialized (the
	// paper's realistic rule); use DefaultOptions to get it filled in,
	// since core's zero Rule is OneToOne.
	Rule core.Rule

	// Moves is the neighborhood (0 = AllMoves).
	Moves Moves

	// FirstImprovement makes HillClimb take the first strictly improving
	// move of each scan instead of the steepest.
	FirstImprovement bool

	// MaxProbes bounds the number of candidate moves priced, across the
	// whole run (0 = 100·n·m). Probes are the unit of work: each one is an
	// incremental apply + period read (+ revert when rejected).
	MaxProbes int

	// Iters is the number of annealing proposals (0 = 60·n). Ignored by
	// HillClimb.
	Iters int

	// T0 is the initial annealing temperature in ms of period
	// (0 = 5% of the seed period).
	T0 float64

	// Cooling is the per-proposal geometric cooling factor in (0,1)
	// (0 = set so the temperature decays to T0/1000 over Iters).
	Cooling float64

	// DisableFilter turns the critical-machine candidate filter off, so
	// the descents probe every admissible move like the pre-filter engine.
	// The filter only skips provably non-improving probes, so the refined
	// mapping is identical either way (see TestFilterResultInvariant);
	// the switch exists for ablations and the invariance gate itself.
	DisableFilter bool

	// DisableScreen turns the load-delta candidate screens off, so the
	// descents price every admissible candidate like the pre-screen
	// engine. The screens skip only moves whose batch-priced load lower
	// bound proves they would be rejected, so the refined mapping is
	// identical either way (see TestScreenResultInvariant). They
	// complement the critical-machine filter on chain workloads where the
	// filter is vacuous (every task feeds the critical machine).
	DisableScreen bool

	// Restarts makes HillClimb a multi-start descent: after refining the
	// caller's seed it descends from fresh H-family constructive seeds
	// (H4, H4f, H2, H3, H1 cycled) and returns the strict best of all
	// runs (0 or 1 = single descent). Each restart draws its RNG from
	// gen.DeriveRNG(RestartSeed, r), so the result is deterministic
	// regardless of how callers schedule the work. Ignored by Anneal.
	Restarts int

	// RestartSeed derives the per-restart RNG streams (only H1 consumes
	// randomness). Two runs with equal seeds and options are identical.
	RestartSeed int64
}

// DefaultOptions returns the options every facade entry point starts
// from: specialized rule, full move set, steepest descent.
func DefaultOptions() Options {
	return Options{Rule: core.Specialized, Moves: AllMoves}
}

func (o Options) moves() Moves {
	if o.Moves == 0 {
		return AllMoves
	}
	return o.Moves
}

func (o Options) maxProbes(n, m int) int {
	if o.MaxProbes > 0 {
		return o.MaxProbes
	}
	return 100 * n * m
}

func (o Options) iters(n int) int {
	if o.Iters > 0 {
		return o.Iters
	}
	return 60 * n
}

// Result is the outcome of a search run.
type Result struct {
	// Mapping is the best mapping found (never worse than the seed).
	Mapping *core.Mapping
	// Period is Mapping's period.
	Period float64
	// Start is the seed mapping's period.
	Start float64
	// Probes counts the candidate moves priced.
	Probes int
	// Accepted counts the moves actually kept (hill-climb improvements,
	// or annealing acceptances).
	Accepted int
}

// Improved reports whether the search strictly improved on the seed.
func (r *Result) Improved() bool { return r.Period < r.Start }

// improveEps is the strict-improvement tolerance: a move must beat the
// incumbent by more than a relative 1e-9 to be accepted, so float noise
// in the incremental sums cannot drive endless neutral-move cycles.
func improveEps(p float64) float64 { return 1e-9 * math.Max(1, p) }

const noType app.TypeID = -1

// engine tracks one in-progress neighborhood exploration: the incremental
// evaluator plus the rule bookkeeping (machine specializations, occupancy
// and per-machine task lists) that admissibility checks and group moves
// need in O(1), plus the critical-machine candidate filter driving the
// descents.
type engine struct {
	in   *core.Instance
	ev   *core.Evaluator
	rule core.Rule

	spec []app.TypeID // machine's current type (noType when empty); Specialized bookkeeping
	nOn  []int        // tasks per machine

	// tasks[u] lists machine u's tasks (arbitrary but deterministic
	// order); pos[i] is task i's index inside tasks[a(i)]. Maintained in
	// O(1) per move, so group moves and the filter never pay the old
	// O(n) machine scan.
	tasks [][]app.TaskID
	pos   []int

	// Critical-machine candidate filter (see refreshMarks): tasks whose
	// remapping could lower the current maximum carry the current stamp
	// in mark; markedOn[u] counts them per machine.
	filter    bool
	mark      []int
	markedOn  []int
	markStamp int

	// Load-delta candidate screens (see relocScores, swapRejected): the
	// shared structure-of-arrays inflation/time rows plus the batch
	// scoring scratch. score[v] holds the relocate lower bounds of the
	// task last scored; slope[u] the per-machine feeder contributions.
	screen bool
	inflT  []float64
	timT   []float64
	score  []float64
	slope  []float64
	walk   []app.TaskID

	probes    int
	maxProbes int

	group []app.TaskID // scratch for group moves
}

// newEngine validates the seed (complete, rule-respecting) and loads it.
func newEngine(in *core.Instance, seed *core.Mapping, opt Options) (*engine, error) {
	if in == nil || seed == nil {
		return nil, fmt.Errorf("search: nil instance or seed mapping")
	}
	if !seed.Complete() {
		return nil, fmt.Errorf("search: seed mapping is incomplete")
	}
	if err := seed.CheckRule(in.App, opt.Rule); err != nil {
		return nil, fmt.Errorf("search: seed violates the %v rule: %w", opt.Rule, err)
	}
	ev, err := core.NewEvaluatorFrom(in, seed)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	e := &engine{
		in:        in,
		ev:        ev,
		rule:      opt.Rule,
		spec:      make([]app.TypeID, in.M()),
		nOn:       make([]int, in.M()),
		tasks:     make([][]app.TaskID, in.M()),
		pos:       make([]int, in.N()),
		filter:    !opt.DisableFilter,
		mark:      make([]int, in.N()),
		markedOn:  make([]int, in.M()),
		screen:    !opt.DisableScreen,
		inflT:     core.InflationTable(in),
		timT:      core.TimeTable(in),
		score:     make([]float64, in.M()),
		slope:     make([]float64, in.M()),
		maxProbes: opt.maxProbes(in.N(), in.M()),
	}
	for u := range e.spec {
		e.spec[u] = noType
	}
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		u := seed.Machine(id)
		e.nOn[u]++
		e.spec[u] = in.App.Type(id)
		e.pos[id] = len(e.tasks[u])
		e.tasks[u] = append(e.tasks[u], id)
	}
	return e, nil
}

func (e *engine) budgetLeft() bool { return e.probes < e.maxProbes }

// admissible reports whether relocating task i onto machine v respects
// the rule (v must differ from i's machine).
func (e *engine) admissible(i app.TaskID, v platform.MachineID) bool {
	if v == e.ev.Machine(i) {
		return false
	}
	switch e.rule {
	case core.OneToOne:
		return e.nOn[v] == 0
	case core.Specialized:
		return e.nOn[v] == 0 || e.spec[v] == e.in.App.Type(i)
	default:
		return true
	}
}

// swapAdmissible reports whether exchanging the machines of i and j
// respects the rule. Under Specialized, different-type tasks can only
// swap when each is alone on its machine (otherwise the vacated machine
// would mix types).
func (e *engine) swapAdmissible(i, j app.TaskID) bool {
	u, v := e.ev.Machine(i), e.ev.Machine(j)
	if i == j || u == v {
		return false
	}
	switch e.rule {
	case core.OneToOne:
		return true // machines hold exactly one task each
	case core.Specialized:
		if e.in.App.Type(i) == e.in.App.Type(j) {
			return true
		}
		return e.nOn[u] == 1 && e.nOn[v] == 1
	default:
		return true
	}
}

// groupAdmissible reports whether moving every task of machine u onto
// machine v respects the rule.
func (e *engine) groupAdmissible(u, v platform.MachineID) bool {
	if u == v || e.nOn[u] == 0 {
		return false
	}
	switch e.rule {
	case core.OneToOne:
		return e.nOn[u] == 1 && e.nOn[v] == 0
	case core.Specialized:
		return e.nOn[v] == 0 || e.spec[v] == e.spec[u]
	default:
		return true
	}
}

// relocate applies the move i -> v through the Relocate kernel,
// maintaining the rule bookkeeping and the task lists. It is its own
// inverse (relocate back to the previous machine).
func (e *engine) relocate(i app.TaskID, v platform.MachineID) {
	u := e.ev.Machine(i)
	_ = e.ev.Relocate(i, v) // i and v are always in range and assigned here
	// Task lists: swap-remove from u, append to v.
	lst := e.tasks[u]
	k, last := e.pos[i], len(lst)-1
	moved := lst[last]
	lst[k] = moved
	e.pos[moved] = k
	e.tasks[u] = lst[:last]
	e.pos[i] = len(e.tasks[v])
	e.tasks[v] = append(e.tasks[v], i)
	e.nOn[u]--
	if e.nOn[u] == 0 {
		e.spec[u] = noType
	}
	e.nOn[v]++
	e.spec[v] = e.in.App.Type(i)
}

// swap exchanges the machines of i and j through the native Swap kernel —
// one repricing of the affected region instead of two Assign walks (~half
// the cost on chains, where every swap shares a prefix). The bookkeeping
// is an O(1) exchange: occupancies are unchanged and each machine takes
// the other task's slot in its list.
func (e *engine) swap(i, j app.TaskID) {
	u, v := e.ev.Machine(i), e.ev.Machine(j)
	if i == j || u == v {
		return
	}
	_ = e.ev.Swap(i, j)
	e.tasks[u][e.pos[i]] = j
	e.tasks[v][e.pos[j]] = i
	e.pos[i], e.pos[j] = e.pos[j], e.pos[i]
	// Under Specialized a mixed-type swap is only admissible when both
	// tasks are alone on their machines, so overwriting the types is
	// exact; same-type swaps rewrite the same value.
	e.spec[u] = e.in.App.Type(j)
	e.spec[v] = e.in.App.Type(i)
}

// tasksOn copies machine u's task list into the scratch slice (the live
// list mutates as moveGroup relocates).
func (e *engine) tasksOn(u platform.MachineID) []app.TaskID {
	e.group = append(e.group[:0], e.tasks[u]...)
	return e.group
}

// moveGroup relocates every task of u onto v and returns the moved tasks
// (scratch; copy before the next engine call if kept).
func (e *engine) moveGroup(u, v platform.MachineID) []app.TaskID {
	tasks := e.tasksOn(u)
	for _, i := range tasks {
		e.relocate(i, v)
	}
	return tasks
}

// refreshMarks recomputes the critical-machine candidate filter. A move
// strictly improves the period only if it strictly lowers the load of the
// current critical machine, and remapping task i only changes the loads of
// i's machines (old and new) and of the machines hosting i's feeders
// (their x-values scale with x[i]). Read in reverse: the critical load can
// only drop when the move touches a task on the critical machine or a task
// on the successor chain of one — every other single-task move leaves the
// critical load bit-identical (charge/discharge never touches it), so
// skipping those probes cannot skip an accepted move. The marks are exact
// for the state they were computed against; descents refresh them after
// every kept move. (Reverted probes can drift other machines' compensated
// sums by ulps, which is why acceptance requires improveEps — far above
// ulp scale — rather than any strict inequality; see the invariance gate
// TestFilterResultInvariant.)
//
// Cost: O(|critical tasks| · chain depth), the marked region only.
func (e *engine) refreshMarks() {
	if !e.filter {
		return
	}
	e.markStamp++
	for u := range e.markedOn {
		e.markedOn[u] = 0
	}
	crit := e.ev.Critical()
	if crit == platform.NoMachine {
		return // all-zero loads: nothing can improve, nothing marked
	}
	for _, t := range e.tasks[crit] {
		for cur := t; cur != app.NoTask; cur = e.in.App.Successor(cur) {
			if e.mark[cur] == e.markStamp {
				break // shared chain suffix already walked
			}
			e.mark[cur] = e.markStamp
			e.markedOn[e.ev.Machine(cur)]++
		}
	}
}

// candidate reports whether relocating task i could improve the period
// (always true with the filter off).
func (e *engine) candidate(i app.TaskID) bool {
	return !e.filter || e.mark[i] == e.markStamp
}

// candidateGroup reports whether moving machine u's tasks anywhere could
// improve the period: some task on u must be a candidate.
func (e *engine) candidateGroup(u platform.MachineID) bool {
	return !e.filter || e.markedOn[u] > 0
}

// screenMargin converts the acceptance threshold into the screens'
// skip threshold: a probe is skipped only when its load lower bound
// reaches cur - eps/2, half the acceptance tolerance away from the
// rejection line. The half-eps margin covers every floating-point
// discrepancy between the screens' flat-array arithmetic and the
// ledger's compensated sums (ulp scale, orders of magnitude below eps),
// so a skipped probe is provably one the descent would have rejected —
// the screens never change the result (TestScreenResultInvariant).
func screenMargin(cur float64) float64 { return cur - improveEps(cur)/2 }

// relocScores fills the scoring scratch with, per machine v, a sound
// lower bound on the period after relocating task i to v — all m targets
// scored in one batch pass instead of m probe round trips. The bound is
// the destination's own resulting load: TrialAll gives
// period(v) + x_i(v)·w(i,v), and the correction term accounts for i's
// transitive feeders already hosted on v, whose x-values scale by exactly
// r = F(i,v)/F(i,a(i)) when i moves (x is a product of inflations along
// the successor chain, and only i's factor changes). The true new load of
// v is period(v) + x_i(v)·w(i,v) + (r-1)·slope(v) with slope(v) the
// feeders' current contribution on v — an equality, not an estimate; it
// lower-bounds the new period because the period is the maximum load.
// Valid until the next kept move (reverted probes only drift ulps, which
// screenMargin absorbs).
func (e *engine) relocScores(i app.TaskID) []float64 {
	e.ev.TrialAll(i, e.score)
	m := len(e.score)
	for u := range e.slope {
		e.slope[u] = 0
	}
	e.walk = append(e.walk[:0], i)
	for len(e.walk) > 0 {
		t := e.walk[len(e.walk)-1]
		e.walk = e.walk[:len(e.walk)-1]
		for _, f := range e.in.App.Predecessors(t) {
			e.slope[e.ev.Machine(f)] += e.ev.Contribution(f)
			e.walk = append(e.walk, f)
		}
	}
	base := int(i) * m
	inflRow := e.inflT[base : base+m]
	fu := inflRow[e.ev.Machine(i)]
	for v := 0; v < m; v++ {
		if s := e.slope[v]; s != 0 {
			e.score[v] += (inflRow[v]/fu - 1) * s
		}
	}
	return e.score
}

// swapRejected reports whether swapping i and j is provably rejected at
// the screened threshold, in O(1): after the swap, every task kept on
// machine v keeps at least the fraction
// s_i·s_j = min(1, F(i,v)/F(i,u))·min(1, F(j,u)/F(j,v)) of its contribution
// (only i's and j's inflation factors change anywhere in the x products),
// and the arriving task's new contribution is bounded the same way, so
//
//	load'(v) >= (period(v) - c_j)·s_i·s_j + F(i,v)·d_i·w(i,v)·s_j
//
// and symmetrically for u. When both destination bounds already reach the
// threshold the swap cannot be accepted and the probe is skipped.
func (e *engine) swapRejected(i, j app.TaskID, thresh float64) bool {
	if !e.screen {
		return false
	}
	u, v := e.ev.Machine(i), e.ev.Machine(j)
	m := len(e.score)
	bi, bj := int(i)*m, int(j)*m
	ri := e.inflT[bi+int(v)] / e.inflT[bi+int(u)]
	rj := e.inflT[bj+int(u)] / e.inflT[bj+int(v)]
	si, sj := ri, rj
	if si > 1 {
		si = 1
	}
	if sj > 1 {
		sj = 1
	}
	di, _ := e.ev.Demand(i)
	dj, _ := e.ev.Demand(j)
	newCi := (e.inflT[bi+int(v)] * di) * e.timT[bi+int(v)]
	newCj := (e.inflT[bj+int(u)] * dj) * e.timT[bj+int(u)]
	lb := (e.ev.MachinePeriod(v)-e.ev.Contribution(j))*(si*sj) + newCi*sj
	if o := (e.ev.MachinePeriod(u)-e.ev.Contribution(i))*(si*sj) + newCj*si; o > lb {
		lb = o
	}
	return lb >= thresh
}

// probeRelocate prices the move i -> v: apply, read, and keep it only when
// it improves cur by more than the tolerance. Returns the new period and
// whether the move was kept (reverted otherwise).
func (e *engine) probeRelocate(i app.TaskID, v platform.MachineID, cur float64) (float64, bool) {
	u := e.ev.Machine(i)
	e.probes++
	e.relocate(i, v)
	if p := e.ev.Period(); p < cur-improveEps(cur) {
		return p, true
	}
	e.relocate(i, u)
	return cur, false
}

func (e *engine) probeSwap(i, j app.TaskID, cur float64) (float64, bool) {
	e.probes++
	e.swap(i, j)
	if p := e.ev.Period(); p < cur-improveEps(cur) {
		return p, true
	}
	e.swap(i, j)
	return cur, false
}

func (e *engine) probeGroup(u, v platform.MachineID, cur float64) (float64, bool) {
	e.probes++
	moved := e.moveGroup(u, v)
	if p := e.ev.Period(); p < cur-improveEps(cur) {
		return p, true
	}
	for _, i := range moved {
		e.relocate(i, u)
	}
	return cur, false
}

// HillClimb refines the seed mapping by local descent over the move set:
// repeatedly scan the neighborhood in a fixed deterministic order and
// apply improving moves until none is left or the probe budget runs out.
// With FirstImprovement each scan applies every improving move as it is
// found (cheap, good for polish passes); otherwise each round finds the
// steepest single move and applies it.
//
// With Options.Restarts > 1 the descent becomes a deterministic
// multi-start: after the caller's seed, fresh H-family constructive seeds
// give high-failure-regime descents stranded in deep local optima new
// basins to fall into, and the strict best of all runs wins (see
// restartSeed).
//
// The result is never worse than the seed: only strictly improving moves
// are kept, and restart results replace it only on strict improvement.
func HillClimb(in *core.Instance, seed *core.Mapping, opt Options) (*Result, error) {
	res, err := hillClimbOnce(in, seed, opt)
	if err != nil {
		return nil, err
	}
	for r := 1; r < opt.Restarts; r++ {
		mp := restartSeed(in, opt, r)
		if mp == nil {
			continue
		}
		rr, err := hillClimbOnce(in, mp, opt)
		if err != nil {
			continue // a restart seed that fails to load is just no restart
		}
		res.Probes += rr.Probes
		res.Accepted += rr.Accepted
		if rr.Period < res.Period {
			res.Period = rr.Period
			res.Mapping = rr.Mapping
		}
	}
	return res, nil
}

// restartFamily cycles the constructive heuristics the restarts draw
// their seeds from, best-first (H4w is the caller's usual seed already).
var restartFamily = []heuristics.Func{
	heuristics.H4,
	heuristics.H4f,
	heuristics.H2,
	heuristics.H3,
	heuristics.H1,
}

// restartSeed builds the r-th restart's constructive seed (r >= 1): the
// H-family heuristics cycled in a fixed order, each drawing randomness
// (only H1 consumes any) from gen.DeriveRNG(RestartSeed, r) — independent
// deterministic streams, so multi-start results never depend on worker
// scheduling. Seeds that fail the rule (one-to-one instances, infeasible
// regimes) are skipped: nil means no seed for this slot.
func restartSeed(in *core.Instance, opt Options, r int) *core.Mapping {
	h := restartFamily[(r-1)%len(restartFamily)]
	mp, err := h(in, gen.DeriveRNG(opt.RestartSeed, int64(r)), heuristics.Options{})
	if err != nil || mp.CheckRule(in.App, opt.Rule) != nil {
		return nil
	}
	return mp
}

// hillClimbOnce is one descent from one seed.
func hillClimbOnce(in *core.Instance, seed *core.Mapping, opt Options) (*Result, error) {
	e, err := newEngine(in, seed, opt)
	if err != nil {
		return nil, err
	}
	cur := e.ev.Period()
	res := &Result{Start: cur}
	moves := opt.moves()
	improved := true
	for improved && e.budgetLeft() {
		improved = false
		if opt.FirstImprovement {
			cur, improved = e.descendFirst(cur, moves, res)
		} else {
			cur, improved = e.descendSteepest(cur, moves, res)
		}
	}
	res.Mapping = e.ev.Mapping()
	res.Period = cur
	res.Probes = e.probes
	return res, nil
}

// descendFirst performs one first-improvement sweep: every improving move
// found is applied immediately. Returns the new period and whether any
// move was applied.
func (e *engine) descendFirst(cur float64, moves Moves, res *Result) (float64, bool) {
	improved := false
	n, m := e.in.N(), e.in.M()
	e.refreshMarks()
	if moves&Relocate != 0 {
		for i := 0; i < n && e.budgetLeft(); i++ {
			id := app.TaskID(i)
			if !e.candidate(id) {
				continue // provably cannot lower the critical load
			}
			var scores []float64
			if e.screen {
				scores = e.relocScores(id)
			}
			for v := 0; v < m && e.budgetLeft(); v++ {
				mv := platform.MachineID(v)
				if !e.admissible(id, mv) {
					continue
				}
				if scores != nil && scores[v] >= screenMargin(cur) {
					continue // destination load alone already rejects the move
				}
				if p, ok := e.probeRelocate(id, mv, cur); ok {
					cur, improved = p, true
					res.Accepted++
					e.refreshMarks()
					if e.screen {
						scores = e.relocScores(id) // id moved: rescore
					}
				}
			}
		}
	}
	if moves&Swap != 0 {
		for i := 0; i < n && e.budgetLeft(); i++ {
			for j := i + 1; j < n && e.budgetLeft(); j++ {
				a, b := app.TaskID(i), app.TaskID(j)
				if !e.candidate(a) && !e.candidate(b) {
					continue
				}
				if !e.swapAdmissible(a, b) {
					continue
				}
				if e.swapRejected(a, b, screenMargin(cur)) {
					continue
				}
				if p, ok := e.probeSwap(a, b, cur); ok {
					cur, improved = p, true
					res.Accepted++
					e.refreshMarks()
				}
			}
		}
	}
	if moves&Group != 0 {
		for u := 0; u < m && e.budgetLeft(); u++ {
			if !e.candidateGroup(platform.MachineID(u)) {
				continue
			}
			for v := 0; v < m && e.budgetLeft(); v++ {
				if !e.groupAdmissible(platform.MachineID(u), platform.MachineID(v)) {
					continue
				}
				if p, ok := e.probeGroup(platform.MachineID(u), platform.MachineID(v), cur); ok {
					cur, improved = p, true
					res.Accepted++
					e.refreshMarks()
				}
			}
		}
	}
	return cur, improved
}

// steepestMove describes the best move of one steepest-descent scan.
type steepestMove struct {
	kind int // 0 none, 1 relocate, 2 swap, 3 group
	i, j app.TaskID
	u, v platform.MachineID
}

// descendSteepest scans the whole neighborhood, remembers the single move
// with the lowest resulting period, and applies it. Returns the new
// period and whether a move was applied.
func (e *engine) descendSteepest(cur float64, moves Moves, res *Result) (float64, bool) {
	best := steepestMove{}
	bestP := cur
	n, m := e.in.N(), e.in.M()
	e.refreshMarks() // valid for the whole scan: probes revert, nothing is kept until the end
	consider := func(p float64, mv steepestMove) {
		if p < bestP-improveEps(bestP) {
			bestP = p
			best = mv
		}
	}
	if moves&Relocate != 0 {
		for i := 0; i < n && e.budgetLeft(); i++ {
			id := app.TaskID(i)
			if !e.candidate(id) {
				continue // provably cannot lower the critical load
			}
			var scores []float64
			if e.screen {
				scores = e.relocScores(id) // nothing is kept mid-scan, so one row serves all targets
			}
			u := e.ev.Machine(id)
			for v := 0; v < m && e.budgetLeft(); v++ {
				mv := platform.MachineID(v)
				if !e.admissible(id, mv) {
					continue
				}
				if scores != nil && scores[v] >= screenMargin(bestP) {
					continue // destination load alone already rejects the move
				}
				e.probes++
				e.relocate(id, mv)
				consider(e.ev.Period(), steepestMove{kind: 1, i: id, v: mv})
				e.relocate(id, u)
			}
		}
	}
	if moves&Swap != 0 {
		for i := 0; i < n && e.budgetLeft(); i++ {
			for j := i + 1; j < n && e.budgetLeft(); j++ {
				a, b := app.TaskID(i), app.TaskID(j)
				if !e.candidate(a) && !e.candidate(b) {
					continue
				}
				if !e.swapAdmissible(a, b) {
					continue
				}
				if e.swapRejected(a, b, screenMargin(bestP)) {
					continue
				}
				e.probes++
				e.swap(a, b)
				consider(e.ev.Period(), steepestMove{kind: 2, i: a, j: b})
				e.swap(a, b)
			}
		}
	}
	if moves&Group != 0 {
		for u := 0; u < m && e.budgetLeft(); u++ {
			if !e.candidateGroup(platform.MachineID(u)) {
				continue
			}
			for v := 0; v < m && e.budgetLeft(); v++ {
				mu, mv := platform.MachineID(u), platform.MachineID(v)
				if !e.groupAdmissible(mu, mv) {
					continue
				}
				e.probes++
				moved := e.moveGroup(mu, mv)
				consider(e.ev.Period(), steepestMove{kind: 3, u: mu, v: mv})
				for _, i := range moved {
					e.relocate(i, mu)
				}
			}
		}
	}
	switch best.kind {
	case 0:
		return cur, false
	case 1:
		e.relocate(best.i, best.v)
	case 2:
		e.swap(best.i, best.j)
	case 3:
		e.moveGroup(best.u, best.v)
	}
	res.Accepted++
	return e.ev.Period(), true
}

// Anneal refines the seed by simulated annealing: random neighborhood
// moves are accepted when they improve the period, or with probability
// exp(-Δ/T) when they worsen it, T following a geometric cooling schedule.
// The returned mapping is the best one ever visited, so Anneal never
// worsens the seed. Runs are deterministic for a given seed mapping and
// RNG stream; campaign callers derive the stream per draw with
// gen.DeriveRNG so concurrent polishing stays reproducible.
//
// With T0 unset the initial temperature is auto-tuned from the seed's own
// move-delta scale by acceptance-ratio targeting (see calibrateT0), so the
// same options work across figures whose period scales differ by orders of
// magnitude.
func Anneal(in *core.Instance, seed *core.Mapping, rng *rand.Rand, opt Options) (*Result, error) {
	if rng == nil {
		return nil, fmt.Errorf("search: Anneal needs an RNG (use gen.RNG or gen.DeriveRNG)")
	}
	e, err := newEngine(in, seed, opt)
	if err != nil {
		return nil, err
	}
	cur := e.ev.Period()
	res := &Result{Start: cur}
	bestP := cur
	bestMap := e.ev.Mapping()

	iters := opt.iters(in.N())

	n, m := in.N(), in.M()
	moves := opt.moves()
	// Proposal kinds, relocate weighted double (it is the workhorse move).
	var kinds []Moves
	if moves&Relocate != 0 {
		kinds = append(kinds, Relocate, Relocate)
	}
	if moves&Swap != 0 {
		kinds = append(kinds, Swap)
	}
	if moves&Group != 0 {
		kinds = append(kinds, Group)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("search: no known move kind in Moves mask %#x", opt.Moves)
	}

	temp := opt.T0
	if temp <= 0 {
		temp = calibrateT0(e, rng, kinds, n, m, cur)
	}
	cool := opt.Cooling
	if cool <= 0 || cool >= 1 {
		// Decay to T0/1000 over the run: cool^iters = 1e-3.
		cool = math.Exp(math.Log(1e-3) / float64(iters))
	}
	for it := 0; it < iters && e.budgetLeft(); it++ {
		p, applied, undo := e.proposeRandom(rng, kinds[rng.Intn(len(kinds))], n, m)
		if !applied {
			temp *= cool
			continue
		}
		e.probes++
		delta := p - cur
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			cur = p
			res.Accepted++
			if cur < bestP-improveEps(bestP) {
				bestP = cur
				bestMap = e.ev.Mapping()
			}
		} else {
			undo()
		}
		temp *= cool
	}
	res.Mapping = bestMap
	res.Period = bestP
	res.Probes = e.probes
	return res, nil
}

// calibrateT0 picks the initial annealing temperature by acceptance-ratio
// targeting (Johnson et al. 1989): probe a small sample of random
// neighborhood moves from the seed, average the uphill deltas, and set T0
// so an average worsening move is accepted with probability chi0 at the
// start — exp(-mean(Δ⁺)/T0) = chi0, i.e. T0 = mean(Δ⁺)/ln(1/chi0). The
// temperature then tracks the seed's own period scale: figures whose
// periods differ by orders of magnitude all start around the same uphill
// acceptance ratio, which is what lets `-polish anneal` run without
// per-figure budget tweaking. Every sampled probe is reverted and the
// sample draws from the caller's RNG stream, so runs stay deterministic
// per stream; the sample is calibration, not search, and is not counted
// against the probe budget. With no uphill neighbor in the sample (a
// plateau) it falls back to the legacy 5% of the seed period.
func calibrateT0(e *engine, rng *rand.Rand, kinds []Moves, n, m int, cur float64) float64 {
	const (
		samples = 48
		chi0    = 0.8
	)
	var sum float64
	ups := 0
	for s := 0; s < samples; s++ {
		p, applied, undo := e.proposeRandom(rng, kinds[rng.Intn(len(kinds))], n, m)
		if !applied {
			continue
		}
		undo()
		if d := p - cur; d > 0 {
			sum += d
			ups++
		}
	}
	if ups == 0 {
		return 0.05 * cur
	}
	return (sum / float64(ups)) / math.Log(1/chi0)
}

// proposeRandom draws one random move of the given kind, applies it when
// admissible, and returns the resulting period plus an undo closure.
// applied is false when the draw was inadmissible (counts as a cooled
// iteration).
func (e *engine) proposeRandom(rng *rand.Rand, kind Moves, n, m int) (p float64, applied bool, undo func()) {
	switch kind {
	case Swap:
		i, j := app.TaskID(rng.Intn(n)), app.TaskID(rng.Intn(n))
		if !e.swapAdmissible(i, j) {
			return 0, false, nil
		}
		e.swap(i, j)
		return e.ev.Period(), true, func() { e.swap(i, j) }
	case Group:
		u, v := platform.MachineID(rng.Intn(m)), platform.MachineID(rng.Intn(m))
		if !e.groupAdmissible(u, v) {
			return 0, false, nil
		}
		moved := append([]app.TaskID(nil), e.moveGroup(u, v)...)
		return e.ev.Period(), true, func() {
			for _, i := range moved {
				e.relocate(i, u)
			}
		}
	default: // relocate
		i := app.TaskID(rng.Intn(n))
		v := platform.MachineID(rng.Intn(m))
		if !e.admissible(i, v) {
			return 0, false, nil
		}
		u := e.ev.Machine(i)
		e.relocate(i, v)
		return e.ev.Period(), true, func() { e.relocate(i, u) }
	}
}

// Polish is the bounded post-pass entry point shared by the facade and
// the experiment campaigns: it refines mp with the named strategy ("ls" —
// first-improvement hill climbing, "anneal" — simulated annealing) under
// the given rule and a campaign-sized budget, and returns the refined
// mapping with its period. budget bounds probes ("ls") or proposals
// ("anneal"); 0 means 2000. The result is never worse than mp.
func Polish(in *core.Instance, mp *core.Mapping, strategy string, rule core.Rule, rng *rand.Rand, budget int) (*Result, error) {
	if budget <= 0 {
		budget = 2000
	}
	opt := DefaultOptions()
	opt.Rule = rule
	switch strategy {
	case "ls":
		opt.FirstImprovement = true
		opt.MaxProbes = budget
		return HillClimb(in, mp, opt)
	case "anneal":
		opt.Iters = budget
		// The probe cap must not undercut the requested proposal count on
		// small instances (default MaxProbes is 100·n·m).
		opt.MaxProbes = budget
		return Anneal(in, mp, rng, opt)
	default:
		return nil, fmt.Errorf("search: unknown polish strategy %q (have \"ls\", \"anneal\")", strategy)
	}
}
