// Benchmarks for the hot loop of the search layer: pricing one
// neighborhood move. The incremental engine applies the move through
// core.Evaluator and reads the lazily-maintained maximum; the ablation
// baseline prices the same move the way a pre-Evaluator search would —
// mutate the mapping and re-derive the period from scratch with
// core.PeriodE. The nodes-per-second gap is what makes polish passes
// affordable inside the parallel campaigns (acceptance bar: >= 5x).
//
// Run with: go test -bench 'MovePricing' -benchmem ./internal/search
package search

import (
	"fmt"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/platform"
)

type benchMove struct {
	i app.TaskID
	v platform.MachineID
}

// benchMoveSetup draws an 8-branch in-tree (short repricing prefixes, the
// shape move loops see in practice) with an H4w seed, plus a precomputed
// cycle of admissible relocations. kind selects which tasks move:
// "frontier" relocates source tasks only (nothing feeds them, so a move
// reprices exactly one task — the dominant cheap case), "interior"
// relocates every task (a move reprices the task plus its branch prefix).
func benchMoveSetup(b *testing.B, kind string, n, m int) (*core.Instance, *core.Mapping, *engine, []benchMove) {
	b.Helper()
	in, err := gen.InTree(gen.Default(n, 5, m), 8, gen.RNG(int64(n)))
	if err != nil {
		b.Fatal(err)
	}
	seed, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := newEngine(in, seed, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	tasks := in.App.Sources()
	if kind == "interior" {
		tasks = tasks[:0]
		for i := 0; i < in.N(); i++ {
			tasks = append(tasks, app.TaskID(i))
		}
	}
	var moves []benchMove
	for _, id := range tasks {
		for v := 0; v < in.M(); v++ {
			mv := platform.MachineID(v)
			if e.admissible(id, mv) {
				moves = append(moves, benchMove{id, mv})
				break
			}
		}
	}
	if len(moves) == 0 {
		b.Fatal("no admissible moves on the benchmark instance")
	}
	return in, seed, e, moves
}

func BenchmarkMovePricingIncremental(b *testing.B) {
	for _, c := range []struct {
		kind string
		n, m int
	}{{"frontier", 50, 10}, {"frontier", 120, 20}, {"interior", 50, 10}, {"interior", 120, 20}} {
		b.Run(fmt.Sprintf("%s_n=%d_m=%d", c.kind, c.n, c.m), func(b *testing.B) {
			_, _, e, moves := benchMoveSetup(b, c.kind, c.n, c.m)
			cur := e.ev.Period()
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				mv := moves[k%len(moves)]
				// Apply, read the new period, revert: one full probe.
				u := e.ev.Machine(mv.i)
				e.relocate(mv.i, mv.v)
				p := e.ev.Period()
				e.relocate(mv.i, u)
				_ = p
			}
			_ = cur
		})
	}
}

// BenchmarkMovePricingFullRecompute prices the identical probe cycle by
// mutating the mapping and recomputing the period from scratch — the only
// option before the Evaluator existed.
func BenchmarkMovePricingFullRecompute(b *testing.B) {
	for _, c := range []struct {
		kind string
		n, m int
	}{{"frontier", 50, 10}, {"frontier", 120, 20}, {"interior", 50, 10}, {"interior", 120, 20}} {
		b.Run(fmt.Sprintf("%s_n=%d_m=%d", c.kind, c.n, c.m), func(b *testing.B) {
			in, seed, _, moves := benchMoveSetup(b, c.kind, c.n, c.m)
			mp := seed.Clone()
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				mv := moves[k%len(moves)]
				u := mp.Machine(mv.i)
				mp.Assign(mv.i, mv.v)
				p, err := core.PeriodE(in, mp)
				if err != nil {
					b.Fatal(err)
				}
				mp.Assign(mv.i, u)
				_ = p
			}
		})
	}
}

// BenchmarkHillClimbPolish measures a whole campaign-sized polish pass
// from the H4w seed. probes/s is the search layer's work-rate metric the
// CI bench artifact tracks.
func BenchmarkHillClimbPolish(b *testing.B) {
	in, err := gen.Chain(gen.Default(50, 5, 12), gen.RNG(3))
	if err != nil {
		b.Fatal(err)
	}
	seed, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var probes int64
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		res, err := Polish(in, seed, "ls", core.Specialized, nil, 2000)
		if err != nil {
			b.Fatal(err)
		}
		probes += int64(res.Probes)
	}
	b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/s")
}

// BenchmarkAnnealPolish measures the annealing flavor of the same pass.
func BenchmarkAnnealPolish(b *testing.B) {
	in, err := gen.Chain(gen.Default(50, 5, 12), gen.RNG(3))
	if err != nil {
		b.Fatal(err)
	}
	seed, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var probes int64
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		res, err := Polish(in, seed, "anneal", core.Specialized, gen.RNG(int64(k)), 2000)
		if err != nil {
			b.Fatal(err)
		}
		probes += int64(res.Probes)
	}
	b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/s")
}

// BenchmarkSteepestDescent pins the critical-machine filter's payoff on
// the shape it is built for (wide in-trees: short successor chains, so
// most tasks provably cannot lower the critical load): one full steepest
// descent from a random H1 seed, filter on vs off. The refined mapping is
// identical in both variants (TestFilterResultInvariant); only the probe
// count and the wall clock differ.
func BenchmarkSteepestDescent(b *testing.B) {
	for _, variant := range []struct {
		name   string
		filter bool
	}{{"filter=on", true}, {"filter=off", false}} {
		b.Run(variant.name, func(b *testing.B) {
			in, err := gen.InTree(gen.Default(120, 5, 20), 8, gen.RNG(120))
			if err != nil {
				b.Fatal(err)
			}
			seed, err := heuristics.H1(in, gen.RNG(3), heuristics.Options{})
			if err != nil {
				b.Fatal(err)
			}
			opt := DefaultOptions()
			opt.DisableFilter = !variant.filter
			var probes int64
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				res, err := HillClimb(in, seed, opt)
				if err != nil {
					b.Fatal(err)
				}
				probes += int64(res.Probes)
			}
			b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/s")
		})
	}
}
