package search

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/platform"
)

// TestFilterResultInvariant is the gate on the critical-machine candidate
// filter: it may only skip provably non-improving probes, so hill climbing
// with the filter on must return the identical mapping and period as with
// it off — for both descent flavors, from good and bad seeds, across the
// instance battery — while pricing no more (and in practice far fewer)
// candidate moves.
func TestFilterResultInvariant(t *testing.T) {
	var probesOn, probesOff int
	for k, in := range reproInstances(t) {
		for _, seedName := range []string{"H1", "H4w"} {
			h, err := heuristics.Get(seedName)
			if err != nil {
				t.Fatal(err)
			}
			seed, err := h.Fn(in, gen.RNG(int64(k)), heuristics.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, first := range []bool{false, true} {
				on := DefaultOptions()
				on.FirstImprovement = first
				off := on
				off.DisableFilter = true
				a, err := HillClimb(in, seed, on)
				if err != nil {
					t.Fatal(err)
				}
				b, err := HillClimb(in, seed, off)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(a.Period) != math.Float64bits(b.Period) ||
					a.Mapping.String() != b.Mapping.String() {
					t.Fatalf("inst%d/%s/first=%v: filter changed the descent:\n  on  %v (%v)\n  off %v (%v)",
						k, seedName, first, a.Period, a.Mapping, b.Period, b.Mapping)
				}
				if a.Accepted != b.Accepted {
					t.Fatalf("inst%d/%s/first=%v: filter changed the accepted-move count: %d vs %d",
						k, seedName, first, a.Accepted, b.Accepted)
				}
				if a.Probes > b.Probes {
					t.Fatalf("inst%d/%s/first=%v: filter probed more (%d) than the full scan (%d)",
						k, seedName, first, a.Probes, b.Probes)
				}
				probesOn += a.Probes
				probesOff += b.Probes
			}
		}
	}
	if probesOn >= probesOff {
		t.Fatalf("filter saved nothing across the battery: %d vs %d probes", probesOn, probesOff)
	}
	t.Logf("battery probes: filtered %d, full %d (%.1f%% skipped)",
		probesOn, probesOff, 100*(1-float64(probesOn)/float64(probesOff)))
}

// TestTaskListsMaintained white-boxes the per-machine task lists through a
// full descent plus annealing proposals: after every strategy run the
// lists must partition the tasks exactly as the evaluator's mapping does,
// with consistent back-pointers.
func TestTaskListsMaintained(t *testing.T) {
	in, err := gen.InTree(gen.Default(24, 4, 8), 3, gen.RNG(321))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := heuristics.H1(in, gen.RNG(7), heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(in, seed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkLists := func(step string) {
		t.Helper()
		total := 0
		for u := 0; u < in.M(); u++ {
			mu := platform.MachineID(u)
			total += len(e.tasks[mu])
			if len(e.tasks[mu]) != e.nOn[u] {
				t.Fatalf("%s: tasks[M%d] has %d entries, nOn says %d", step, u+1, len(e.tasks[mu]), e.nOn[u])
			}
			for k, i := range e.tasks[mu] {
				if e.ev.Machine(i) != mu {
					t.Fatalf("%s: task T%d listed on M%d but mapped to M%d", step, int(i)+1, u+1, int(e.ev.Machine(i))+1)
				}
				if e.pos[i] != k {
					t.Fatalf("%s: pos[T%d] = %d, list index is %d", step, int(i)+1, e.pos[i], k)
				}
			}
		}
		if total != in.N() {
			t.Fatalf("%s: lists cover %d of %d tasks", step, total, in.N())
		}
	}
	checkLists("initial")
	cur := e.ev.Period()
	res := &Result{}
	for rounds := 0; rounds < 4; rounds++ {
		var improved bool
		cur, improved = e.descendSteepest(cur, AllMoves, res)
		checkLists("steepest round")
		if !improved {
			break
		}
	}
	rng := gen.RNG(99)
	for it := 0; it < 300; it++ {
		kind := []Moves{Relocate, Swap, Group}[rng.Intn(3)]
		if _, applied, undo := e.proposeRandom(rng, kind, in.N(), in.M()); applied {
			if rng.Intn(2) == 0 {
				undo()
			}
			checkLists("proposal")
		}
	}
}

// TestSwapEngineMatchesRelocatePair: the kernel-backed engine swap must
// land on the same state as the old relocate-pair implementation, to the
// evaluator's differential tolerance.
func TestSwapEngineMatchesRelocatePair(t *testing.T) {
	in, err := gen.Chain(gen.Default(20, 4, 8), gen.RNG(55))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := newEngine(in, seed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := newEngine(in, seed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := gen.RNG(77)
	for step := 0; step < 200; step++ {
		i := app.TaskID(rng.Intn(in.N()))
		j := app.TaskID(rng.Intn(in.N()))
		if !a.swapAdmissible(i, j) {
			continue
		}
		a.swap(i, j)
		// The pre-kernel implementation: two relocates.
		u, v := b.ev.Machine(i), b.ev.Machine(j)
		b.relocate(i, v)
		b.relocate(j, u)
		for w := 0; w < in.M(); w++ {
			mw := platform.MachineID(w)
			pa, pb := a.ev.MachinePeriod(mw), b.ev.MachinePeriod(mw)
			if math.Abs(pa-pb) > 1e-12*math.Max(1, math.Max(pa, pb)) {
				t.Fatalf("step %d: kernel swap and relocate pair diverged on M%d: %v vs %v", step, w+1, pa, pb)
			}
		}
		if a.spec[u] != b.spec[u] || a.spec[v] != b.spec[v] || a.nOn[u] != b.nOn[u] || a.nOn[v] != b.nOn[v] {
			t.Fatalf("step %d: bookkeeping diverged after swap(T%d, T%d)", step, int(i)+1, int(j)+1)
		}
	}
}

// TestCalibrateT0 pins the acceptance-ratio targeting: the auto-tuned T0
// must scale with the instance's period scale (a platform 1000x slower
// gets a ~1000x hotter start) and accept an average uphill move with
// probability ~chi0.
func TestCalibrateT0(t *testing.T) {
	in, err := gen.Chain(gen.Default(20, 3, 6), gen.RNG(2024))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t0 := calibratedT0(t, in, seed)
	if t0 <= 0 {
		t.Fatalf("auto T0 = %v", t0)
	}
	// Same instance, every execution time scaled 1000x: the tuned T0 must
	// scale with it (the legacy fixed-ms default would not).
	n, m := in.N(), in.M()
	w := make([][]float64, n)
	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		w[i] = make([]float64, m)
		f[i] = make([]float64, m)
		for u := 0; u < m; u++ {
			mu := platform.MachineID(u)
			w[i][u] = 1000 * in.Platform.Time(id, mu)
			f[i][u] = in.Failures.Rate(id, mu)
		}
	}
	pl, err := platform.New(w)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := in.Failures, error(nil)
	_ = fm
	scaled, err := core.NewInstance(in.App, pl, in.Failures)
	if err != nil {
		t.Fatal(err)
	}
	t0Scaled := calibratedT0(t, scaled, seed)
	if ratio := t0Scaled / t0; ratio < 900 || ratio > 1100 {
		t.Fatalf("T0 did not track the period scale: %v -> %v (ratio %.1f, want ~1000)", t0, t0Scaled, ratio)
	}
	// Anneal with the tuned default must keep its contracts on both
	// scales (never worse than seed, deterministic per stream).
	for _, inst := range []*core.Instance{in, scaled} {
		a, err := Anneal(inst, seed, gen.RNG(5), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Anneal(inst, seed, gen.RNG(5), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if a.Period != b.Period || a.Mapping.String() != b.Mapping.String() {
			t.Fatal("auto-tuned annealing lost stream determinism")
		}
		seedP, err := core.PeriodE(inst, seed)
		if err != nil {
			t.Fatal(err)
		}
		if a.Period > seedP*(1+1e-12) {
			t.Fatalf("auto-tuned annealing worsened the seed: %v > %v", a.Period, seedP)
		}
	}
}

// calibratedT0 runs the calibration the way Anneal does.
func calibratedT0(t *testing.T, in *core.Instance, seed *core.Mapping) float64 {
	t.Helper()
	e, err := newEngine(in, seed, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cur := e.ev.Period()
	return calibrateT0(e, gen.RNG(1), []Moves{Relocate, Relocate, Swap, Group}, in.N(), in.M(), cur)
}
