package heuristics

import (
	"math/rand"

	"microfab/internal/core"
)

// H4 is the best-performance greedy (Algorithm 4). Each task goes to the
// admissible machine minimizing the machine's resulting load when the
// task's true cost is counted: demand · w[i][u] · F(i,u), where
// demand = x[succ(i)] and F = 1/(1-f). Both the speed and the reliability
// of the machine enter the choice.
func H4(in *core.Instance, _ *rand.Rand, _ Options) (*core.Mapping, error) {
	return greedy(in, func(d float64, inflRow, timRow, out []float64) {
		for u := range out {
			out[u] = d * timRow[u] * inflRow[u]
		}
	})
}

// H4w is the fastest-machine greedy (Algorithm 5): identical to H4 but the
// failure rate is ignored in the choice — the cost is demand · w[i][u]
// only. The paper's headline result is that this speed-only variant is the
// best heuristic overall ("if we produce fast enough we overcome the
// faults").
func H4w(in *core.Instance, _ *rand.Rand, _ Options) (*core.Mapping, error) {
	return greedy(in, func(d float64, _, timRow, out []float64) {
		for u := range out {
			out[u] = d * timRow[u]
		}
	})
}

// H4f is the reliable-machine greedy (Algorithm 6): identical to H4 but the
// speed is ignored — the cost is demand · F(i,u) only. The paper shows it
// performs poorly: minimizing the failure rate does not prevent choosing a
// slow machine and thus a long period.
func H4f(in *core.Instance, _ *rand.Rand, _ Options) (*core.Mapping, error) {
	return greedy(in, func(d float64, inflRow, _, out []float64) {
		for u := range out {
			out[u] = d * inflRow[u]
		}
	})
}
