package heuristics

import (
	"math/rand"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// H3 is the second binary-search heuristic (Algorithm 3). The search
// skeleton is H2's, but the machine choice differs: among the admissible
// machines whose load would stay within the candidate period, the task goes
// to the one with the highest heterogeneity level — the standard deviation
// of its execution-time column. The idea is to spend irregular machines
// early and preserve homogeneous (predictable) ones for the remaining
// tasks; note that a slow machine may be preferred to a fast one purely
// because it is more heterogeneous.
func H3(in *core.Instance, _ *rand.Rand, opts Options) (*core.Mapping, error) {
	if err := validate(in); err != nil {
		return nil, err
	}
	h := in.Platform.Heterogeneity()
	return binarySearch(in, opts, func(s *state, i app.TaskID, budget float64) platform.MachineID {
		ty := s.in.App.Type(i)
		trial := s.trialRow(i)
		best := platform.NoMachine
		bestH := -1.0
		bestExec := 0.0
		for u := 0; u < in.M(); u++ {
			mu := platform.MachineID(u)
			if !s.canUse(mu, ty) {
				continue
			}
			exec := trial[u]
			if exec > budget {
				continue
			}
			// Highest heterogeneity wins; among equals prefer the
			// lighter resulting load.
			if h[u] > bestH || (h[u] == bestH && exec < bestExec) {
				best, bestH, bestExec = mu, h[u], exec
			}
		}
		return best
	})
}
