package heuristics

import (
	"fmt"
	"math/rand"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// H1 is the random heuristic (Algorithm 1). Walking the application
// backward, each task joins a machine group for its type: if the type has
// no group yet — or spare machines remain beyond what the unseen types need
// — a fresh machine is opened (chosen uniformly at random among the free
// ones); otherwise the task joins a uniformly random existing group of its
// type.
//
// H1 is the paper's baseline: it respects the specialization rule but is
// blind to speeds and failure rates.
func H1(in *core.Instance, rng *rand.Rand, _ Options) (*core.Mapping, error) {
	if err := validate(in); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	s := newState(in)
	for _, i := range in.App.ReverseTopological() {
		ty := in.App.Type(i)
		var u platform.MachineID
		switch {
		case !s.typeHasGroup[ty]:
			// First task of this type: must open a new group.
			u = pickFree(s, rng)
		case s.nbFree > s.typesToGo:
			// Algorithm 1 always opens a new group when allowed.
			u = pickFree(s, rng)
		default:
			u = pickGroup(s, ty, rng)
		}
		if u == platform.NoMachine {
			return nil, fmt.Errorf("heuristics: H1 found no admissible machine for task T%d", int(i)+1)
		}
		s.assign(i, u)
	}
	return s.mapping(), nil
}

// pickFree returns a uniformly random free machine, or NoMachine.
func pickFree(s *state, rng *rand.Rand) platform.MachineID {
	var free []platform.MachineID
	for u, ty := range s.spec {
		if ty == noType {
			free = append(free, platform.MachineID(u))
		}
	}
	if len(free) == 0 {
		return platform.NoMachine
	}
	return free[rng.Intn(len(free))]
}

// pickGroup returns a uniformly random machine already dedicated to ty, or
// NoMachine.
func pickGroup(s *state, ty app.TypeID, rng *rand.Rand) platform.MachineID {
	var grp []platform.MachineID
	for u, t := range s.spec {
		if t == ty {
			grp = append(grp, platform.MachineID(u))
		}
	}
	if len(grp) == 0 {
		return platform.NoMachine
	}
	return grp[rng.Intn(len(grp))]
}
