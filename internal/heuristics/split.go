package heuristics

import (
	"math/rand"
	"sort"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// H4wSplit implements the paper's future-work extension: the instances of
// one task may be divided across several machines of its type. It starts
// from the plain H4w mapping and then iteratively rebalances: the task
// contributing most to the critical machine has its workload re-poured
// (water-filling) over every machine that may legally carry its type —
// machines already dedicated to the type plus still-free machines. A
// rebalance is kept only when the full re-evaluated period improves, so
// H4wSplit is never worse than H4w.
func H4wSplit(in *core.Instance, rng *rand.Rand, opts Options) (*core.SplitMapping, error) {
	base, err := H4w(in, rng, opts)
	if err != nil {
		return nil, err
	}
	split := base.Split(in.M())
	ev, err := core.EvaluateSplit(in, split)
	if err != nil {
		return nil, err
	}
	const maxRounds = 200
	const tol = 1e-9
	tried := make(map[app.TaskID]bool)
	for round := 0; round < maxRounds; round++ {
		crit := ev.Critical
		if crit == platform.NoMachine {
			break
		}
		task := heaviestTaskOn(in, split, ev, crit, tried)
		if task == app.NoTask {
			break // nothing left to move on the critical machine
		}
		tried[task] = true
		cand := rebalance(in, split, task)
		evc, err := core.EvaluateSplit(in, cand)
		if err != nil || evc.Period >= ev.Period-tol {
			continue // keep the previous split; try another task
		}
		split, ev = cand, evc
		tried = make(map[app.TaskID]bool) // improvements reopen all tasks
	}
	return split, nil
}

// heaviestTaskOn returns the untried task with the largest load
// contribution share·x·w on machine u, or NoTask.
func heaviestTaskOn(in *core.Instance, s *core.SplitMapping, ev *core.Evaluation, u platform.MachineID, tried map[app.TaskID]bool) app.TaskID {
	best := app.NoTask
	bestLoad := 0.0
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		if tried[id] {
			continue
		}
		sh := s.Share(id, u)
		if sh <= 0 {
			continue
		}
		l := sh * ev.ProductCounts[i] * in.Platform.Time(id, u)
		if l > bestLoad {
			bestLoad = l
			best = id
		}
	}
	return best
}

// rebalance returns a copy of the split where task i's workload is
// water-filled across all machines legally able to carry its type, given
// the loads of every other task.
func rebalance(in *core.Instance, s *core.SplitMapping, i app.TaskID) *core.SplitMapping {
	n, m := in.N(), in.M()
	out := core.NewSplitMapping(n, m)
	for j := 0; j < n; j++ {
		for u := 0; u < m; u++ {
			out.SetShare(app.TaskID(j), platform.MachineID(u), s.Share(app.TaskID(j), platform.MachineID(u)))
		}
	}
	ev, err := core.EvaluateSplit(in, s)
	if err != nil {
		return out
	}
	ty := in.App.Type(i)

	// Current machine specializations from positive shares (task i's own
	// shares excluded so its machines can be reconsidered).
	spec := make([]app.TypeID, m)
	for u := range spec {
		spec[u] = -1
	}
	for j := 0; j < n; j++ {
		if app.TaskID(j) == i {
			continue
		}
		tj := in.App.Type(app.TaskID(j))
		for u := 0; u < m; u++ {
			if s.Share(app.TaskID(j), platform.MachineID(u)) > 0 {
				spec[u] = tj
			}
		}
	}
	// Loads without task i.
	load := make([]float64, m)
	for u := 0; u < m; u++ {
		load[u] = ev.MachinePeriods[u] - s.Share(i, platform.MachineID(u))*ev.ProductCounts[i]*in.Platform.Time(i, platform.MachineID(u))
		if load[u] < 0 {
			load[u] = 0
		}
	}
	var cands []platform.MachineID
	for u := 0; u < m; u++ {
		if spec[u] == -1 || spec[u] == ty {
			cands = append(cands, platform.MachineID(u))
		}
	}
	if len(cands) == 0 {
		return out
	}
	// Demand downstream of task i (x of its successor under the current
	// split, 1 at the root).
	demand := 1.0
	if succ := in.App.Successor(i); succ != app.NoTask {
		demand = ev.ProductCounts[succ]
	}
	shares, _ := waterfillLoads(in, i, demand, cands, load)
	for u := 0; u < m; u++ {
		out.SetShare(i, platform.MachineID(u), 0)
	}
	for k, sh := range shares {
		if sh > 0 {
			out.SetShare(i, cands[k], sh)
		}
	}
	return out
}

// waterfillLoads distributes task i's demand over candidate machines with
// the given base loads: find the lowest level T such that the work
// z_u = max(0, T − load_u) placed on each machine produces
// Σ_u z_u·(1−f[i][u])/w[i][u] = demand survivors; shares are the fractions
// of processed products per machine. Returns (shares, x[i]).
func waterfillLoads(in *core.Instance, i app.TaskID, demand float64, cands []platform.MachineID, load []float64) ([]float64, float64) {
	k := len(cands)
	rate := make([]float64, k)
	for idx, mu := range cands {
		rate[idx] = in.Failures.Survival(i, mu) / in.Platform.Time(i, mu)
	}
	ord := make([]int, k)
	for idx := range ord {
		ord[idx] = idx
	}
	sort.Slice(ord, func(a, b int) bool { return load[cands[ord[a]]] < load[cands[ord[b]]] })

	level := load[cands[ord[0]]]
	sumRate := rate[ord[0]]
	produced := 0.0
	done := false
	for j := 1; j < k; j++ {
		next := load[cands[ord[j]]]
		seg := sumRate * (next - level)
		if produced+seg >= demand {
			level += (demand - produced) / sumRate
			done = true
			break
		}
		produced += seg
		level = next
		sumRate += rate[ord[j]]
	}
	if !done {
		level += (demand - produced) / sumRate
	}

	shares := make([]float64, k)
	total := 0.0
	for idx, mu := range cands {
		if level > load[mu] {
			shares[idx] = (level - load[mu]) / in.Platform.Time(i, mu)
			total += shares[idx]
		}
	}
	for idx := range shares {
		shares[idx] /= total
	}
	return shares, total
}
