package heuristics

import (
	"math/rand"
	"sort"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// H4wSplit implements the paper's future-work extension: the instances of
// one task may be divided across several machines of its type. It starts
// from the plain H4w mapping and then iteratively rebalances: the task
// contributing most to the critical machine has its workload re-poured
// (water-filling) over every machine that may legally carry its type —
// machines already dedicated to the type plus still-free machines. A
// rebalance is kept only when the re-evaluated period improves, so
// H4wSplit is never worse than H4w.
//
// The refinement loop runs on a core.SplitEvaluator: each water-filling
// probe reprices only the moved task and its in-tree prefix instead of
// re-walking the full n×m share matrix through EvaluateSplit, and a
// rejected probe is undone by restoring the task's previous share row.
// The machine-specialization view the candidate set needs is maintained
// incrementally too (a per-machine count of tasks per type), so one probe
// costs O(prefix + m) instead of the former O(n·m).
func H4wSplit(in *core.Instance, rng *rand.Rand, opts Options) (*core.SplitMapping, error) {
	base, err := H4w(in, rng, opts)
	if err != nil {
		return nil, err
	}
	r, err := newSplitRefiner(in, base)
	if err != nil {
		return nil, err
	}
	const maxRounds = 200
	tried := make(map[app.TaskID]bool)
	for round := 0; round < maxRounds; round++ {
		crit := r.se.Critical()
		if crit == platform.NoMachine {
			break
		}
		task := r.heaviestTaskOn(crit, tried)
		if task == app.NoTask {
			break // nothing left to move on the critical machine
		}
		tried[task] = true
		if r.refineTask(task) {
			tried = make(map[app.TaskID]bool) // improvements reopen all tasks
		}
	}
	return r.se.Split(), nil
}

// splitRefiner drives incremental water-filling refinement over a
// SplitEvaluator, tracking which type every machine is currently
// dedicated to (by positive shares) so candidate sets cost O(m).
type splitRefiner struct {
	in *core.Instance
	se *core.SplitEvaluator
	// typeOn[u][ty] counts tasks of type ty with a positive share on u; a
	// machine is free when its total count is 0 and dedicated to ty when
	// all its counted tasks have that type.
	typeOn [][]int
	onAny  []int // total tasks with positive share per machine
}

func newSplitRefiner(in *core.Instance, base *core.Mapping) (*splitRefiner, error) {
	se, err := core.NewSplitEvaluator(in, base.Split(in.M()))
	if err != nil {
		return nil, err
	}
	r := &splitRefiner{
		in:     in,
		se:     se,
		typeOn: make([][]int, in.M()),
		onAny:  make([]int, in.M()),
	}
	for u := range r.typeOn {
		r.typeOn[u] = make([]int, in.P())
	}
	for i := 0; i < in.N(); i++ {
		r.countShares(app.TaskID(i), +1)
	}
	return r, nil
}

// countShares adds delta to the specialization counters for every machine
// holding a positive share of task i.
func (r *splitRefiner) countShares(i app.TaskID, delta int) {
	ty := r.in.App.Type(i)
	for u := 0; u < r.in.M(); u++ {
		if r.se.Share(i, platform.MachineID(u)) > 0 {
			r.typeOn[u][ty] += delta
			r.onAny[u] += delta
		}
	}
}

// heaviestTaskOn returns the untried task with the largest load
// contribution share·x·w on machine u, or NoTask.
func (r *splitRefiner) heaviestTaskOn(u platform.MachineID, tried map[app.TaskID]bool) app.TaskID {
	best := app.NoTask
	bestLoad := 0.0
	for i := 0; i < r.in.N(); i++ {
		id := app.TaskID(i)
		if tried[id] {
			continue
		}
		if l := r.se.Contribution(id, u); l > bestLoad {
			bestLoad = l
			best = id
		}
	}
	return best
}

// refineTask water-fills task i's workload over every machine legally able
// to carry its type and keeps the move only when the period strictly
// improves. Reports whether the move was kept.
func (r *splitRefiner) refineTask(i app.TaskID) bool {
	const tol = 1e-9
	ty := r.in.App.Type(i)
	m := r.in.M()

	// Candidate machines: free ones, or ones whose positive shares
	// (excluding task i itself) are all of i's type.
	var cands []platform.MachineID
	load := make([]float64, m)
	for u := 0; u < m; u++ {
		mu := platform.MachineID(u)
		others := r.onAny[u]
		typed := r.typeOn[u][ty]
		if sh := r.se.Share(i, mu); sh > 0 {
			others--
			typed--
		}
		if others > 0 && typed < others {
			continue // carries another type beyond task i
		}
		cands = append(cands, mu)
		// Load without task i's own contribution (clamped like the old
		// full-recompute path: float residue must not go negative).
		load[u] = r.se.MachinePeriod(mu) - r.se.Contribution(i, mu)
		if load[u] < 0 {
			load[u] = 0
		}
	}
	if len(cands) == 0 {
		return false
	}
	shares, _ := waterfillLoads(r.in, i, r.se.Demand(i), cands, load)

	row := make([]float64, m)
	for k, sh := range shares {
		if sh > 0 {
			row[cands[k]] = sh
		}
	}
	prev := r.se.Period()
	old := r.se.Row(i)
	r.countShares(i, -1)
	if err := r.se.SetShares(i, row); err != nil {
		r.countShares(i, +1)
		return false
	}
	if r.se.Period() >= prev-tol {
		// Not an improvement: restore the previous row exactly.
		if err := r.se.SetShares(i, old); err != nil {
			panic("heuristics: restoring a split share row failed: " + err.Error())
		}
		r.countShares(i, +1)
		return false
	}
	r.countShares(i, +1)
	return true
}

// waterfillLoads distributes task i's demand over candidate machines with
// the given base loads: find the lowest level T such that the work
// z_u = max(0, T − load_u) placed on each machine produces
// Σ_u z_u·(1−f[i][u])/w[i][u] = demand survivors; shares are the fractions
// of processed products per machine. Returns (shares, x[i]).
func waterfillLoads(in *core.Instance, i app.TaskID, demand float64, cands []platform.MachineID, load []float64) ([]float64, float64) {
	k := len(cands)
	rate := make([]float64, k)
	for idx, mu := range cands {
		rate[idx] = in.Failures.Survival(i, mu) / in.Platform.Time(i, mu)
	}
	ord := make([]int, k)
	for idx := range ord {
		ord[idx] = idx
	}
	sort.Slice(ord, func(a, b int) bool { return load[cands[ord[a]]] < load[cands[ord[b]]] })

	level := load[cands[ord[0]]]
	sumRate := rate[ord[0]]
	produced := 0.0
	done := false
	for j := 1; j < k; j++ {
		next := load[cands[ord[j]]]
		seg := sumRate * (next - level)
		if produced+seg >= demand {
			level += (demand - produced) / sumRate
			done = true
			break
		}
		produced += seg
		level = next
		sumRate += rate[ord[j]]
	}
	if !done {
		level += (demand - produced) / sumRate
	}

	shares := make([]float64, k)
	total := 0.0
	for idx, mu := range cands {
		if level > load[mu] {
			shares[idx] = (level - load[mu]) / in.Platform.Time(i, mu)
			total += shares[idx]
		}
	}
	for idx := range shares {
		shares[idx] /= total
	}
	return shares, total
}
