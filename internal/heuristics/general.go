package heuristics

import (
	"fmt"
	"math"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// GeneralH4w is H4w lifted to the general mapping rule: machines may mix
// task types, paying `reconfig` ms per distinct type per finished product
// on machines that carry more than one type (see core.ReconfigEvaluate).
// Each task goes to the machine minimizing the machine's resulting
// effective load, reconfiguration penalty included. With reconfig = 0 it
// explores the unconstrained problem of §4.2.3; with a large reconfig it
// degenerates to a specialized mapping, which is the paper's argument for
// studying specialized mappings in the first place.
func GeneralH4w(in *core.Instance, reconfig float64) (*core.Mapping, error) {
	if in == nil {
		return nil, fmt.Errorf("heuristics: nil instance")
	}
	if reconfig < 0 {
		return nil, fmt.Errorf("heuristics: negative reconfiguration cost %v", reconfig)
	}
	n, m := in.N(), in.M()
	mp := core.NewMapping(n)
	load := make([]float64, m)
	types := make([]map[app.TypeID]bool, m)
	x := make([]float64, n)
	for _, i := range in.App.ReverseTopological() {
		demand := 1.0
		if succ := in.App.Successor(i); succ != app.NoTask {
			demand = x[succ]
		}
		ty := in.App.Type(i)
		best := platform.NoMachine
		bestEff := math.Inf(1)
		for u := 0; u < m; u++ {
			mu := platform.MachineID(u)
			add := demand * in.Platform.Time(i, mu) // H4w ignores f in the choice
			k := len(types[u])
			if k > 0 && !types[u][ty] {
				k++ // this assignment introduces a new type on u
			} else if k == 0 {
				k = 1
			}
			eff := load[u] + add
			if k > 1 {
				eff += reconfig * float64(k)
			}
			if eff < bestEff {
				bestEff = eff
				best = mu
			}
		}
		xi := demand * in.Failures.Inflation(i, best)
		x[i] = xi
		load[best] += xi * in.Platform.Time(i, best)
		if types[best] == nil {
			types[best] = map[app.TypeID]bool{}
		}
		types[best][ty] = true
		mp.Assign(i, best)
	}
	return mp, nil
}
