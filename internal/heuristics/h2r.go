package heuristics

import (
	"fmt"
	"math/rand"

	"microfab/internal/core"
)

// H2r is the listing-faithful reading of Algorithm 2, kept as an ablation.
//
// The pseudocode picks, for each task, the admissible machine with the
// minimum rank and *fails the whole pass* when that machine's load exceeds
// the candidate period — it never falls through to the next machine. The
// choice therefore does not depend on the period at all, so the binary
// search converges exactly to the max load of the rank-greedy assignment
// and H2r reduces to that greedy. The paper's prose ("otherwise we try to
// assign Ti to the next machine") describes the stronger budget-aware scan
// implemented by H2; comparing H2 with H2r quantifies the gap between the
// two readings (see EXPERIMENTS.md).
func H2r(in *core.Instance, _ *rand.Rand, _ Options) (*core.Mapping, error) {
	if err := validate(in); err != nil {
		return nil, err
	}
	prio := rankPriorities(in)
	s := newState(in)
	for _, i := range in.App.ReverseTopological() {
		ty := in.App.Type(i)
		assigned := false
		for _, u := range prio[i] {
			if !s.canUse(u, ty) {
				continue
			}
			s.assign(i, u)
			assigned = true
			break
		}
		if !assigned {
			return nil, fmt.Errorf("heuristics: H2r found no admissible machine for task T%d", int(i)+1)
		}
	}
	return s.mapping(), nil
}

func init() {
	registry["H2r"] = Named{
		Name: "H2r", Fn: H2r, Deterministic: true,
		Doc: "ablation: Algorithm-2 listing read literally (rank greedy, load-blind)",
	}
}
