package heuristics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// H2 is the first binary-search heuristic ("potential optimization",
// Algorithm 2). For each machine the tasks are ranked by execution time;
// rank[i][u] = 1 means machine u is at its best on task i. The heuristic
// binary-searches the period: for a candidate period it assigns tasks
// backward, each to the admissible machine with the lowest rank (ties
// broken by lower w[i][u], then lower index) whose load would stay within
// the candidate period. If every task fits the period is feasible and the
// search descends; otherwise it ascends.
//
// Following the paper's prose (the pseudocode stops at the first machine,
// the text says "otherwise we try to assign Ti to the next machine"), the
// scan continues down the priority list until a machine fits.
func H2(in *core.Instance, _ *rand.Rand, opts Options) (*core.Mapping, error) {
	if err := validate(in); err != nil {
		return nil, err
	}
	prio := rankPriorities(in)
	return binarySearch(in, opts, func(s *state, i app.TaskID, budget float64) platform.MachineID {
		ty := s.in.App.Type(i)
		trial := s.trialRow(i)
		for _, u := range prio[i] {
			if !s.canUse(u, ty) {
				continue
			}
			if trial[u] <= budget {
				return u
			}
		}
		return platform.NoMachine
	})
}

// rankPriorities builds, for every task, the machines sorted by
// (rank[i][u] asc, w[i][u] asc, u asc) where rank[i][u] is the 1-based rank
// of task i in machine u's ascending execution-time order.
func rankPriorities(in *core.Instance) [][]platform.MachineID {
	n, m := in.N(), in.M()
	rank := make([][]int, n)
	for i := range rank {
		rank[i] = make([]int, m)
	}
	idx := make([]int, n)
	for u := 0; u < m; u++ {
		for i := range idx {
			idx[i] = i
		}
		mu := platform.MachineID(u)
		sort.SliceStable(idx, func(a, b int) bool {
			return in.Platform.Time(app.TaskID(idx[a]), mu) < in.Platform.Time(app.TaskID(idx[b]), mu)
		})
		for r, i := range idx {
			rank[i][u] = r + 1
		}
	}
	prio := make([][]platform.MachineID, n)
	for i := 0; i < n; i++ {
		ms := make([]platform.MachineID, m)
		for u := range ms {
			ms[u] = platform.MachineID(u)
		}
		id := app.TaskID(i)
		sort.SliceStable(ms, func(a, b int) bool {
			ra, rb := rank[i][ms[a]], rank[i][ms[b]]
			if ra != rb {
				return ra < rb
			}
			wa, wb := in.Platform.Time(id, ms[a]), in.Platform.Time(id, ms[b])
			if wa != wb {
				return wa < wb
			}
			return ms[a] < ms[b]
		})
		prio[i] = ms
	}
	return prio
}

// pickFunc chooses a machine for task i under a period budget, or returns
// NoMachine when the budget cannot be met.
type pickFunc func(s *state, i app.TaskID, budget float64) platform.MachineID

// binarySearch drives the H2/H3 search. It first runs one pass with an
// infinite budget — which always succeeds thanks to the feasibility guard —
// to obtain a feasible period, then halves the [0, feasible] interval down
// to the configured granularity, keeping the best complete assignment seen.
func binarySearch(in *core.Instance, opts Options, pick pickFunc) (*core.Mapping, error) {
	attempt := func(budget float64) (*core.Mapping, float64, bool) {
		s := newState(in)
		for _, i := range in.App.ReverseTopological() {
			u := pick(s, i, budget)
			if u == platform.NoMachine {
				return nil, 0, false
			}
			s.assign(i, u)
		}
		return s.mapping(), s.maxLoad(), true
	}

	best, bestPeriod, ok := attempt(math.Inf(1))
	if !ok {
		return nil, fmt.Errorf("heuristics: no feasible specialized mapping found")
	}
	lo, hi := 0.0, bestPeriod
	gran := opts.granularity()
	for iter := 0; hi-lo > gran && iter < opts.maxIters(); iter++ {
		mid := lo + (hi-lo)/2
		if m, p, ok := attempt(mid); ok {
			if p < bestPeriod {
				best, bestPeriod = m, p
			}
			hi = mid
		} else {
			lo = mid
		}
	}
	return best, nil
}
