package heuristics

import (
	"fmt"
	"sort"
)

// Named couples a heuristic with its paper name.
type Named struct {
	Name string
	Fn   Func
	// Deterministic is false only for H1 (uses the RNG).
	Deterministic bool
	// Doc is a one-line description for CLI help.
	Doc string
}

var registry = map[string]Named{
	"H1":  {Name: "H1", Fn: H1, Deterministic: false, Doc: "random grouping baseline"},
	"H2":  {Name: "H2", Fn: H2, Deterministic: true, Doc: "binary search on period, speed-rank machine priority"},
	"H3":  {Name: "H3", Fn: H3, Deterministic: true, Doc: "binary search on period, heterogeneity machine priority"},
	"H4":  {Name: "H4", Fn: H4, Deterministic: true, Doc: "greedy best performance (x·w·F)"},
	"H4w": {Name: "H4w", Fn: H4w, Deterministic: true, Doc: "greedy fastest machine (x·w), failures ignored"},
	"H4f": {Name: "H4f", Fn: H4f, Deterministic: true, Doc: "greedy most reliable machine (x·F), speed ignored"},
}

// Get returns the heuristic registered under the (case-sensitive) paper
// name: H1, H2, H3, H4, H4w, H4f.
func Get(name string) (Named, error) {
	h, ok := registry[name]
	if !ok {
		return Named{}, fmt.Errorf("heuristics: unknown heuristic %q (have %v)", name, Names())
	}
	return h, nil
}

// Names lists the registered heuristics in a stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every heuristic in the paper's presentation order.
func All() []Named {
	order := []string{"H1", "H2", "H3", "H4", "H4w", "H4f"}
	out := make([]Named, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}
