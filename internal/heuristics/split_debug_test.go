package heuristics

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// TestSplitRebalanceStep drives one incremental water-filling move by hand
// on the high-failure example instance and asserts the invariants of the
// refiner: the moved task's shares stay a probability distribution, every
// other task's shares are untouched, the specialization counters survive
// the move, and the engine still agrees with a from-scratch EvaluateSplit.
func TestSplitRebalanceStep(t *testing.T) {
	pr := gen.Default(40, 5, 10)
	pr.FMin, pr.FMax = 0, 0.10
	in, err := gen.Chain(pr, gen.RNG(2010))
	if err != nil {
		t.Fatal(err)
	}
	mw, err := H4w(in, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := newSplitRefiner(in, mw)
	if err != nil {
		t.Fatal(err)
	}
	crit := r.se.Critical()
	if crit == platform.NoMachine {
		t.Fatal("base split has no critical machine")
	}
	task := r.heaviestTaskOn(crit, map[app.TaskID]bool{})
	if task == app.NoTask {
		t.Fatal("no task found on the critical machine")
	}
	before := r.se.Split()
	r.refineTask(task)
	cand := r.se.Split()

	evc, err := core.EvaluateSplit(in, cand)
	if err != nil {
		t.Fatalf("rebalanced split does not evaluate: %v", err)
	}
	if evc.Period <= 0 || math.IsInf(evc.Period, 0) || math.IsNaN(evc.Period) {
		t.Fatalf("rebalanced period = %v, want finite > 0", evc.Period)
	}
	if rel := math.Abs(r.se.Period()-evc.Period) / evc.Period; rel > 1e-12 {
		t.Fatalf("incremental period %v vs from-scratch %v (rel %v)", r.se.Period(), evc.Period, rel)
	}

	// Share conservation for the moved task: a distribution over machines.
	sum, moved := 0.0, 0
	for u := 0; u < in.M(); u++ {
		sh := cand.Share(task, platform.MachineID(u))
		if sh < 0 || sh > 1+1e-9 {
			t.Fatalf("share(T%d, M%d) = %v outside [0,1]", int(task)+1, u+1, sh)
		}
		sum += sh
		if sh > 0 {
			moved++
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rebalanced shares of T%d sum to %v, want 1", int(task)+1, sum)
	}
	if moved < 1 {
		t.Fatalf("T%d left with no machine", int(task)+1)
	}

	// Every other task's shares are untouched, bit for bit.
	for j := 0; j < in.N(); j++ {
		jd := app.TaskID(j)
		if jd == task {
			continue
		}
		for u := 0; u < in.M(); u++ {
			mu := platform.MachineID(u)
			if cand.Share(jd, mu) != before.Share(jd, mu) {
				t.Fatalf("rebalance of T%d modified share(T%d, M%d): %v -> %v",
					int(task)+1, j+1, u+1, before.Share(jd, mu), cand.Share(jd, mu))
			}
		}
	}

	// The specialization counters must match a recount from the shares.
	for u := 0; u < in.M(); u++ {
		mu := platform.MachineID(u)
		total := 0
		byType := make([]int, in.P())
		for j := 0; j < in.N(); j++ {
			if cand.Share(app.TaskID(j), mu) > 0 {
				total++
				byType[in.App.Type(app.TaskID(j))]++
			}
		}
		if total != r.onAny[u] {
			t.Fatalf("onAny[M%d] = %d, recount %d", u+1, r.onAny[u], total)
		}
		for ty := range byType {
			if byType[ty] != r.typeOn[u][ty] {
				t.Fatalf("typeOn[M%d][%d] = %d, recount %d", u+1, ty, r.typeOn[u][ty], byType[ty])
			}
		}
	}
}

// TestSplitRefinementNeverWorse pins H4wSplit's contract: the refinement
// loop only accepts improving rebalances, so the final split period cannot
// exceed the integral H4w period it starts from.
func TestSplitRefinementNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pr := gen.Default(30, 5, 12)
		pr.FMin, pr.FMax = 0, 0.10
		in, err := gen.Chain(pr, gen.RNG(2000+seed))
		if err != nil {
			t.Fatal(err)
		}
		mw, err := H4w(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := core.EvaluateSplit(in, mw.Split(in.M()))
		if err != nil {
			t.Fatal(err)
		}
		sp, err := H4wSplit(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.EvaluateSplit(in, sp)
		if err != nil {
			t.Fatal(err)
		}
		if got.Period > base.Period+1e-9 {
			t.Fatalf("seed %d: refined split period %v worse than base %v", seed, got.Period, base.Period)
		}
	}
}

// TestSplitRefinerMatchesFullRecompute cross-checks the incremental
// H4wSplit against a from-scratch reference that replays the same
// accept/reject policy through EvaluateSplit: starting from the same
// integral seed, both must land on periods within 1e-9 relative of each
// other (degenerate float ties could in principle diverge the
// trajectories, so the bar is on the outcome, which is what the contract
// promises).
func TestSplitRefinerMatchesFullRecompute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		pr := gen.Default(25, 4, 10)
		pr.FMin, pr.FMax = 0, 0.08
		in, err := gen.Chain(pr, gen.RNG(2100+seed))
		if err != nil {
			t.Fatal(err)
		}
		sp, err := H4wSplit(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.EvaluateSplit(in, sp)
		if err != nil {
			t.Fatal(err)
		}
		want := fullRecomputeH4wSplit(t, in)
		if rel := math.Abs(got.Period-want) / want; rel > 1e-9 {
			t.Fatalf("seed %d: incremental refinement period %v, full-recompute reference %v (rel %v)",
				seed, got.Period, want, rel)
		}
	}
}

// fullRecomputeH4wSplit is the pre-SplitEvaluator refinement loop kept as
// a test-only reference: every probe pays a full EvaluateSplit.
func fullRecomputeH4wSplit(t *testing.T, in *core.Instance) float64 {
	t.Helper()
	mw, err := H4w(in, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split := mw.Split(in.M())
	ev, err := core.EvaluateSplit(in, split)
	if err != nil {
		t.Fatal(err)
	}
	const maxRounds = 200
	const tol = 1e-9
	tried := make(map[app.TaskID]bool)
	for round := 0; round < maxRounds; round++ {
		crit := ev.Critical
		if crit == platform.NoMachine {
			break
		}
		// Heaviest untried task on the critical machine.
		task := app.NoTask
		bestLoad := 0.0
		for i := 0; i < in.N(); i++ {
			id := app.TaskID(i)
			if tried[id] {
				continue
			}
			sh := split.Share(id, crit)
			if sh <= 0 {
				continue
			}
			if l := sh * ev.ProductCounts[i] * in.Platform.Time(id, crit); l > bestLoad {
				bestLoad = l
				task = id
			}
		}
		if task == app.NoTask {
			break
		}
		tried[task] = true

		// Candidates: machines free or dedicated to the task's type once
		// the task's own shares are set aside.
		ty := in.App.Type(task)
		admissible := make([]bool, in.M())
		for u := range admissible {
			admissible[u] = true
		}
		for j := 0; j < in.N(); j++ {
			jd := app.TaskID(j)
			if jd == task || in.App.Type(jd) == ty {
				continue
			}
			for u := 0; u < in.M(); u++ {
				if split.Share(jd, platform.MachineID(u)) > 0 {
					admissible[u] = false
				}
			}
		}
		var cands []platform.MachineID
		load := make([]float64, in.M())
		for u := 0; u < in.M(); u++ {
			if !admissible[u] {
				continue
			}
			mu := platform.MachineID(u)
			cands = append(cands, mu)
			load[u] = ev.MachinePeriods[u] - split.Share(task, mu)*ev.ProductCounts[task]*in.Platform.Time(task, mu)
			if load[u] < 0 {
				load[u] = 0
			}
		}
		if len(cands) == 0 {
			continue
		}
		demand := 1.0
		if succ := in.App.Successor(task); succ != app.NoTask {
			demand = ev.ProductCounts[succ]
		}
		shares, _ := waterfillLoads(in, task, demand, cands, load)
		cand := core.NewSplitMapping(in.N(), in.M())
		for j := 0; j < in.N(); j++ {
			for u := 0; u < in.M(); u++ {
				cand.SetShare(app.TaskID(j), platform.MachineID(u), split.Share(app.TaskID(j), platform.MachineID(u)))
			}
		}
		for u := 0; u < in.M(); u++ {
			cand.SetShare(task, platform.MachineID(u), 0)
		}
		for k, sh := range shares {
			if sh > 0 {
				cand.SetShare(task, cands[k], sh)
			}
		}
		evc, err := core.EvaluateSplit(in, cand)
		if err != nil || evc.Period >= ev.Period-tol {
			continue
		}
		split, ev = cand, evc
		tried = make(map[app.TaskID]bool)
	}
	return ev.Period
}
