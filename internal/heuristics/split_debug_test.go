package heuristics

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// TestSplitRebalanceStep drives one rebalance by hand on the high-failure
// example instance and asserts the invariants of the water-filling move:
// the moved task's shares stay a probability distribution, every other
// task's shares are untouched, and the candidate still evaluates.
func TestSplitRebalanceStep(t *testing.T) {
	pr := gen.Default(40, 5, 10)
	pr.FMin, pr.FMax = 0, 0.10
	in, err := gen.Chain(pr, gen.RNG(2010))
	if err != nil {
		t.Fatal(err)
	}
	mw, err := H4w(in, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split := mw.Split(in.M())
	ev, err := core.EvaluateSplit(in, split)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Critical == platform.NoMachine {
		t.Fatal("base split has no critical machine")
	}
	task := heaviestTaskOn(in, split, ev, ev.Critical, map[app.TaskID]bool{})
	if task == app.NoTask {
		t.Fatal("no task found on the critical machine")
	}

	cand := rebalance(in, split, task)
	evc, err := core.EvaluateSplit(in, cand)
	if err != nil {
		t.Fatalf("rebalanced split does not evaluate: %v", err)
	}
	if evc.Period <= 0 || math.IsInf(evc.Period, 0) || math.IsNaN(evc.Period) {
		t.Fatalf("rebalanced period = %v, want finite > 0", evc.Period)
	}

	// Share conservation for the moved task: a distribution over machines.
	sum, moved := 0.0, 0
	for u := 0; u < in.M(); u++ {
		sh := cand.Share(task, platform.MachineID(u))
		if sh < 0 || sh > 1+1e-9 {
			t.Fatalf("share(T%d, M%d) = %v outside [0,1]", int(task)+1, u+1, sh)
		}
		sum += sh
		if sh > 0 {
			moved++
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rebalanced shares of T%d sum to %v, want 1", int(task)+1, sum)
	}
	if moved < 1 {
		t.Fatalf("T%d left with no machine", int(task)+1)
	}

	// Every other task's shares are untouched, bit for bit.
	for j := 0; j < in.N(); j++ {
		jd := app.TaskID(j)
		if jd == task {
			continue
		}
		for u := 0; u < in.M(); u++ {
			mu := platform.MachineID(u)
			if cand.Share(jd, mu) != split.Share(jd, mu) {
				t.Fatalf("rebalance of T%d modified share(T%d, M%d): %v -> %v",
					int(task)+1, j+1, u+1, split.Share(jd, mu), cand.Share(jd, mu))
			}
		}
	}
}

// TestSplitRefinementNeverWorse pins H4wSplit's contract: the refinement
// loop only accepts improving rebalances, so the final split period cannot
// exceed the integral H4w period it starts from.
func TestSplitRefinementNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pr := gen.Default(30, 5, 12)
		pr.FMin, pr.FMax = 0, 0.10
		in, err := gen.Chain(pr, gen.RNG(2000+seed))
		if err != nil {
			t.Fatal(err)
		}
		mw, err := H4w(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := core.EvaluateSplit(in, mw.Split(in.M()))
		if err != nil {
			t.Fatal(err)
		}
		sp, err := H4wSplit(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.EvaluateSplit(in, sp)
		if err != nil {
			t.Fatal(err)
		}
		if got.Period > base.Period+1e-9 {
			t.Fatalf("seed %d: refined split period %v worse than base %v", seed, got.Period, base.Period)
		}
	}
}
