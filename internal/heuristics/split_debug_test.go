package heuristics

import (
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// TestSplitRefinementStepwise drives one rebalance by hand on the
// high-failure example instance and checks share conservation; it also
// reports whether the step improves, which guards against the refinement
// loop silently never firing.
func TestSplitRefinementStepwise(t *testing.T) {
	pr := gen.Default(40, 5, 10)
	pr.FMin, pr.FMax = 0, 0.10
	in, err := gen.Chain(pr, gen.RNG(2010))
	if err != nil {
		t.Fatal(err)
	}
	mw, err := H4w(in, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	split := mw.Split(in.M())
	ev, err := core.EvaluateSplit(in, split)
	if err != nil {
		t.Fatal(err)
	}
	task := heaviestTaskOn(in, split, ev, ev.Critical, map[app.TaskID]bool{})
	if task == app.NoTask {
		t.Fatal("no task found on the critical machine")
	}
	cand := rebalance(in, split, task)
	evc, err := core.EvaluateSplit(in, cand)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("base period %v; after one rebalance of T%d: %v (critical M%d)",
		ev.Period, int(task)+1, evc.Period, int(ev.Critical)+1)
	sh := 0.0
	moved := 0
	for u := 0; u < in.M(); u++ {
		v := cand.Share(task, platform.MachineID(u))
		sh += v
		if v > 0 {
			moved++
		}
	}
	if sh < 0.999 || sh > 1.001 {
		t.Fatalf("rebalanced shares sum to %v", sh)
	}
	t.Logf("task T%d now split over %d machines", int(task)+1, moved)
}
