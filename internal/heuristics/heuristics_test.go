package heuristics

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

func randomChain(t *testing.T, seed int64, n, p, m int) *core.Instance {
	t.Helper()
	in, err := gen.Chain(gen.Default(n, p, m), gen.RNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAllHeuristicsProduceValidSpecializedMappings(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := randomChain(t, seed, 20, 3, 6)
		for _, h := range All() {
			mp, err := h.Fn(in, gen.RNG(seed), Options{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, h.Name, err)
			}
			if !mp.Complete() {
				t.Fatalf("seed %d %s: incomplete mapping", seed, h.Name)
			}
			if err := mp.CheckRule(in.App, core.Specialized); err != nil {
				t.Fatalf("seed %d %s: %v", seed, h.Name, err)
			}
			if p := core.Period(in, mp); math.IsInf(p, 1) || p <= 0 {
				t.Fatalf("seed %d %s: period %v", seed, h.Name, p)
			}
		}
	}
}

func TestHeuristicsOnInTrees(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in, err := gen.InTree(gen.Default(15, 3, 6), 3, gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range All() {
			mp, err := h.Fn(in, gen.RNG(seed), Options{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, h.Name, err)
			}
			if err := mp.CheckRule(in.App, core.Specialized); err != nil {
				t.Fatalf("seed %d %s: %v", seed, h.Name, err)
			}
		}
	}
}

func TestFeasibilityGuardTightCase(t *testing.T) {
	// p == m: every type needs exactly one machine; any heuristic that
	// opens a second group for a type dead-ends. 12 tasks, 4 types, 4
	// machines.
	for seed := int64(0); seed < 10; seed++ {
		in := randomChain(t, 100+seed, 12, 4, 4)
		for _, h := range All() {
			mp, err := h.Fn(in, gen.RNG(seed), Options{})
			if err != nil {
				t.Fatalf("seed %d %s failed on p==m: %v", seed, h.Name, err)
			}
			if err := mp.CheckRule(in.App, core.Specialized); err != nil {
				t.Fatalf("seed %d %s: %v", seed, h.Name, err)
			}
		}
	}
}

func TestTooManyTypesRejected(t *testing.T) {
	// p > m: no specialized mapping exists; all heuristics must error.
	a := app.MustChain([]app.TypeID{0, 1, 2})
	p, _ := platform.NewHomogeneous(3, 2, 100)
	f, _ := failure.NewUniform(3, 2, 0.01)
	in, err := core.NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range All() {
		if _, err := h.Fn(in, gen.RNG(1), Options{}); err == nil {
			t.Fatalf("%s accepted p > m", h.Name)
		}
	}
}

func TestH4wPicksFastMachineSingleTask(t *testing.T) {
	// One task, M0 slow/reliable, M1 fast/flaky: H4w must take M1, H4f
	// must take M0.
	a := app.MustChain([]app.TypeID{0})
	p, _ := platform.New([][]float64{{1000, 100}})
	f, _ := failure.New([][]float64{{0.001, 0.2}})
	in, err := core.NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := H4w(in, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mw.Machine(0) != 1 {
		t.Fatalf("H4w chose M%d, want M2", mw.Machine(0)+1)
	}
	mf, err := H4f(in, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mf.Machine(0) != 0 {
		t.Fatalf("H4f chose M%d, want M1", mf.Machine(0)+1)
	}
}

func TestH4AccountsForBoth(t *testing.T) {
	// H4 weighs w·F: M0 w=200 f=0 → 200; M1 w=150 f=0.5 → 300. H4 picks
	// M0, H4w picks M1.
	a := app.MustChain([]app.TypeID{0})
	p, _ := platform.New([][]float64{{200, 150}})
	f, _ := failure.New([][]float64{{0.0, 0.5}})
	in, err := core.NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	m4, _ := H4(in, nil, Options{})
	if m4.Machine(0) != 0 {
		t.Fatalf("H4 chose M%d, want M1", m4.Machine(0)+1)
	}
	m4w, _ := H4w(in, nil, Options{})
	if m4w.Machine(0) != 1 {
		t.Fatalf("H4w chose M%d, want M2", m4w.Machine(0)+1)
	}
}

func TestH1DeterministicGivenSeed(t *testing.T) {
	in := randomChain(t, 9, 15, 3, 6)
	a, err := H1(in, gen.RNG(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := H1(in, gen.RNG(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("H1 not reproducible with equal seeds")
	}
}

func TestDeterministicHeuristicsIgnoreRNG(t *testing.T) {
	in := randomChain(t, 10, 15, 3, 6)
	for _, h := range All() {
		if !h.Deterministic {
			continue
		}
		a, err := h.Fn(in, gen.RNG(1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.Fn(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s output depends on the RNG", h.Name)
		}
	}
}

func TestBinarySearchNotWorseThanInfinitePass(t *testing.T) {
	// H2's binary search must return a period no worse than its own
	// first feasible pass, which is what H2 degenerates to at 0
	// iterations.
	for seed := int64(0); seed < 10; seed++ {
		in := randomChain(t, 300+seed, 25, 4, 8)
		coarse, err := H2(in, nil, Options{MaxIters: 1})
		if err != nil {
			t.Fatal(err)
		}
		fine, err := H2(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if core.Period(in, fine) > core.Period(in, coarse)+1e-9 {
			t.Fatalf("seed %d: more iterations worsened H2: %v vs %v",
				seed, core.Period(in, fine), core.Period(in, coarse))
		}
	}
}

func TestRegistry(t *testing.T) {
	if _, err := Get("H4w"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	names := Names()
	if len(names) < 7 { // six paper heuristics + H2r ablation
		t.Fatalf("registry too small: %v", names)
	}
	if got := len(All()); got != 6 {
		t.Fatalf("All() = %d heuristics, want the paper's 6", got)
	}
}

func TestH2rValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := randomChain(t, 400+seed, 20, 3, 6)
		a, err := H2r(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckRule(in.App, core.Specialized); err != nil {
			t.Fatal(err)
		}
		b, _ := H2r(in, nil, Options{})
		if a.String() != b.String() {
			t.Fatal("H2r not deterministic")
		}
	}
}

func TestH4wSplitValidAndNeverWorse(t *testing.T) {
	// The divisible-task extension refines the H4w mapping and keeps a
	// rebalance only when the period improves, so it can never lose to
	// H4w. It usually wins; count the wins to make sure the machinery
	// actually fires.
	wins := 0
	for seed := int64(0); seed < 10; seed++ {
		in := randomChain(t, 500+seed, 15, 3, 6)
		sp, err := H4wSplit(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Validate(in.App, core.Specialized); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		evs, err := core.EvaluateSplit(in, sp)
		if err != nil {
			t.Fatal(err)
		}
		mw, err := H4w(in, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base := core.Period(in, mw)
		if evs.Period > base+1e-6 {
			t.Fatalf("seed %d: split period %v worse than integral %v", seed, evs.Period, base)
		}
		if evs.Period < base-1e-6 {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("splitting never improved any instance; refinement loop seems dead")
	}
}

func TestGeneralH4wZeroReconfigBeatsSpecialized(t *testing.T) {
	// With no reconfiguration cost, the unconstrained greedy has a
	// superset of choices; it should not be dramatically worse than the
	// specialized greedy on random instances, and its mapping is valid
	// under the general rule.
	for seed := int64(0); seed < 10; seed++ {
		in := randomChain(t, 600+seed, 15, 3, 5)
		mg, err := GeneralH4w(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := mg.CheckRule(in.App, core.GeneralRule); err != nil {
			t.Fatal(err)
		}
		if !mg.Complete() {
			t.Fatal("incomplete general mapping")
		}
	}
}

func TestGeneralH4wLargeReconfigSpecializes(t *testing.T) {
	// A punitive reconfiguration cost should drive the general greedy to
	// a (nearly) specialized mapping.
	in := randomChain(t, 77, 12, 3, 6)
	mg, err := GeneralH4w(in, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.CheckRule(in.App, core.Specialized); err != nil {
		t.Fatalf("large reconfig cost still mixed types: %v", err)
	}
	if _, err := GeneralH4w(in, -1); err == nil {
		t.Fatal("negative reconfig accepted")
	}
	if _, err := GeneralH4w(nil, 0); err == nil {
		t.Fatal("nil instance accepted")
	}
}

func TestSingleMachineSingleType(t *testing.T) {
	// Degenerate: everything must land on the only machine.
	a := app.MustChain([]app.TypeID{0, 0, 0})
	p, _ := platform.NewHomogeneous(3, 1, 100)
	f, _ := failure.NewUniform(3, 1, 0.1)
	in, err := core.NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range All() {
		mp, err := h.Fn(in, gen.RNG(1), Options{})
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		for i := 0; i < 3; i++ {
			if mp.Machine(app.TaskID(i)) != 0 {
				t.Fatalf("%s: task %d not on the single machine", h.Name, i)
			}
		}
	}
	// Period: x = (1/0.9)^k chain → x2=1.111, x1=1.235, x0=1.372;
	// sum·100 = 371.7…
	mp, _ := H4w(in, nil, Options{})
	want := (1/0.9 + 1/0.81 + 1/0.729) * 100
	if got := core.Period(in, mp); math.Abs(got-want) > 1e-9 {
		t.Fatalf("period = %v, want %v", got, want)
	}
}
