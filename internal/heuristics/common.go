// Package heuristics implements the paper's six polynomial-time heuristics
// for the specialized-mapping problem on linear chains and in-trees:
//
//	H1  — random grouping (Algorithm 1)
//	H2  — binary search on the period, machines ranked by per-task speed
//	      rank ("potential optimization", Algorithm 2)
//	H3  — binary search on the period, machines ranked by heterogeneity
//	      (Algorithm 3)
//	H4  — greedy best-performance: cost x·w·F (Algorithm 4)
//	H4w — greedy fastest-machine: cost x·w, failures ignored (Algorithm 5)
//	H4f — greedy most-reliable: cost x·F, speed ignored (Algorithm 6)
//
// All heuristics walk the application root-first (reverse topological
// order, "starting with the last task and going backward"), because the
// product count x[i] of a task is only known once its successor has been
// placed.
//
// Feasibility guard: H1's pseudocode refuses to open a new machine group
// for an already-grouped type unless nbFreeMachines > nbTypesToGo, which
// guarantees that a virgin machine remains for every type not yet seen. The
// H2–H4 listings omit the guard, but without it they can dead-end (all free
// machines specialized before the last type shows up). We enforce the same
// guard everywhere; on instances where the original listings succeed it is
// vacuous.
package heuristics

import (
	"fmt"
	"math"
	"math/rand"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/platform"
)

// Options tunes the heuristics; the zero value reproduces the paper.
type Options struct {
	// Granularity is the binary-search stopping width for H2/H3 in ms
	// (paper: 1 ms). Zero means 1 ms.
	Granularity float64
	// MaxIters caps binary-search iterations as a safety net; zero means
	// 64, plenty for any ms-scale horizon.
	MaxIters int
}

func (o Options) granularity() float64 {
	if o.Granularity > 0 {
		return o.Granularity
	}
	return 1
}

func (o Options) maxIters() int {
	if o.MaxIters > 0 {
		return o.MaxIters
	}
	return 64
}

// Func is the signature shared by all heuristics. The RNG is only used by
// H1; deterministic heuristics ignore it (it may be nil for them).
type Func func(in *core.Instance, rng *rand.Rand, opts Options) (*core.Mapping, error)

// state tracks one in-progress specialized assignment. Product counts,
// machine loads and the running maximum live in a core.Evaluator; the state
// adds the specialization bookkeeping (groups, feasibility guard) that the
// evaluation engine does not know about.
type state struct {
	in   *core.Instance
	ev   *core.Evaluator
	spec []app.TypeID // specialization per machine; noType when free

	nbFree       int    // machines not yet dedicated to any type
	typesToGo    int    // types present in the app with no group yet
	typeHasGroup []bool // per type

	trial []float64 // batch-pricing scratch: one TrialAll row per task
}

const noType app.TypeID = -1

func newState(in *core.Instance) *state {
	m := in.M()
	s := &state{
		in:           in,
		ev:           core.NewEvaluator(in),
		spec:         make([]app.TypeID, m),
		nbFree:       m,
		typeHasGroup: make([]bool, in.P()),
		trial:        make([]float64, m),
	}
	for u := range s.spec {
		s.spec[u] = noType
	}
	// Count only types that actually occur (type IDs may be sparse when a
	// caller builds instances by hand).
	for _, c := range in.App.TypeCounts() {
		if c > 0 {
			s.typesToGo++
		}
	}
	return s
}

// demand returns the product count required downstream of task i: x of its
// successor, or 1 at the root. Valid only when the successor is placed,
// which the reverse-topological walk guarantees.
func (s *state) demand(i app.TaskID) float64 {
	d, _ := s.ev.Demand(i)
	return d
}

// load returns machine u's current period Σ x[j]·w[j][u].
func (s *state) load(u platform.MachineID) float64 {
	return s.ev.MachinePeriod(u)
}

// mapping snapshots the finished assignment.
func (s *state) mapping() *core.Mapping { return s.ev.Mapping() }

// canUse reports whether machine u may accept a task of type ty under the
// specialization rule plus the feasibility guard.
func (s *state) canUse(u platform.MachineID, ty app.TypeID) bool {
	switch s.spec[u] {
	case ty:
		return true
	case noType:
		if s.typeHasGroup[ty] {
			// Opening an extra group for a type that already has one
			// burns a free machine; only legal if enough remain for
			// the unseen types.
			return s.nbFree > s.typesToGo
		}
		return true // first group of a fresh type; a free machine is reserved for it
	default:
		return false
	}
}

// assign places task i on machine u, updating specialization bookkeeping
// and the incremental evaluation.
func (s *state) assign(i app.TaskID, u platform.MachineID) {
	ty := s.in.App.Type(i)
	if s.spec[u] == noType {
		s.spec[u] = ty
		s.nbFree--
		if !s.typeHasGroup[ty] {
			s.typeHasGroup[ty] = true
			s.typesToGo--
		}
	}
	_ = s.ev.Assign(i, u)
}

// trialRow batch-prices every landing of task i into the state's scratch
// row and returns it: trial[u] is the period machine u would reach if it
// also took i, bit-equal to m Evaluator.Trial calls but computed in one
// structure-of-arrays pass. Valid until the next trialRow or assign.
func (s *state) trialRow(i app.TaskID) []float64 {
	s.ev.TrialAll(i, s.trial)
	return s.trial
}

// maxLoad returns the current largest machine load (the period of the
// partial mapping).
func (s *state) maxLoad() float64 {
	return s.ev.Period()
}

// validate checks sizes common to all heuristics.
func validate(in *core.Instance) error {
	if in == nil {
		return fmt.Errorf("heuristics: nil instance")
	}
	p := 0
	for _, c := range in.App.TypeCounts() {
		if c > 0 {
			p++
		}
	}
	if p > in.M() {
		return fmt.Errorf("heuristics: %d task types but only %d machines; no specialized mapping exists", p, in.M())
	}
	return nil
}

// costRow fills out[u], for every machine at once, with the incremental
// cost of landing the current task (downstream demand d) on machine u —
// the batched form of the H4 family's per-machine cost closures, walking
// the instance's structure-of-arrays inflation and time rows. Each out[u]
// must be bit-equal to the per-machine expression it replaces.
type costRow func(d float64, inflRow, timRow, out []float64)

// greedy runs the shared backward greedy used by the H4 family: for each
// task (root-first) pick the admissible machine minimizing
// load[u] + cost(i,u); ties break toward the lower machine index, matching
// the listings' first-strict-improvement scan. Loads and costs are gathered
// in one batch row per task instead of m per-machine probes.
func greedy(in *core.Instance, cost costRow) (*core.Mapping, error) {
	if err := validate(in); err != nil {
		return nil, err
	}
	s := newState(in)
	m := in.M()
	infl, tim := core.InflationTable(in), core.TimeTable(in)
	loads := make([]float64, m)
	costs := make([]float64, m)
	for _, i := range in.App.ReverseTopological() {
		ty := in.App.Type(i)
		base := int(i) * m
		cost(s.demand(i), infl[base:base+m], tim[base:base+m], costs)
		s.ev.MachinePeriodsInto(loads)
		best := platform.NoMachine
		bestExec := math.Inf(1)
		for u := 0; u < m; u++ {
			mu := platform.MachineID(u)
			if !s.canUse(mu, ty) {
				continue
			}
			exec := loads[u] + costs[u]
			if exec < bestExec {
				bestExec = exec
				best = mu
			}
		}
		if best == platform.NoMachine {
			return nil, fmt.Errorf("heuristics: no admissible machine for task T%d", int(i)+1)
		}
		s.assign(i, best)
	}
	return s.mapping(), nil
}
