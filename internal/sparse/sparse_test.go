package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBuildBasics(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1, 2)
	b.Add(2, 3, -1)
	b.Add(0, 1, 3) // duplicate: summed
	b.Add(1, 0, 0) // zero: ignored
	m := b.Build()
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("dims = (%d,%d)", r, c)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", m.At(0, 1))
	}
	if m.At(2, 3) != -1 || m.At(1, 1) != 0 {
		t.Fatal("At wrong")
	}
}

func TestBuilderCancellationDropsZero(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 2)
	b.Add(0, 0, -2)
	if m := b.Build(); m.NNZ() != 0 {
		t.Fatalf("cancelled entry kept: nnz=%d", m.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range Add")
		}
	}()
	NewBuilder(1, 1).Add(5, 0, 1)
}

func denseMulVec(d [][]float64, x []float64) []float64 {
	y := make([]float64, len(d))
	for r := range d {
		for c := range d[r] {
			y[r] += d[r][c] * x[c]
		}
	}
	return y
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		b := NewBuilder(rows, cols)
		d := make([][]float64, rows)
		for r := range d {
			d[r] = make([]float64, cols)
			for c := range d[r] {
				if rng.Float64() < 0.5 {
					v := rng.NormFloat64()
					d[r][c] = v
					b.Add(r, c, v)
				}
			}
		}
		m := b.Build()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x)
		want := denseMulVec(d, x)
		for r := range want {
			if math.Abs(got[r]-want[r]) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, r, got[r], want[r])
			}
		}
		// Transpose: (Mᵀ)ᵀ = M and MulVecT(M, y) == MulVec(Mᵀ, y).
		mt := m.Transpose()
		y := make([]float64, rows)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		gt := m.MulVecT(y)
		wt := mt.MulVec(y)
		for c := range gt {
			if math.Abs(gt[c]-wt[c]) > 1e-12 {
				t.Fatalf("trial %d: MulVecT mismatch at %d", trial, c)
			}
		}
	}
}

func TestRowDotAndDense(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	b.Add(1, 1, 3)
	m := b.Build()
	if got := m.RowDot(0, []float64{1, 10, 100}); got != 201 {
		t.Fatalf("RowDot = %v, want 201", got)
	}
	d := m.Dense()
	if d[0][0] != 1 || d[0][2] != 2 || d[1][1] != 3 || d[0][1] != 0 {
		t.Fatalf("Dense = %v", d)
	}
}

func TestMulVecPanicsOnDimension(t *testing.T) {
	m := NewBuilder(2, 3).Build()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	m.MulVec([]float64{1})
}

func TestVectorKernels(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	z := append([]float64(nil), y...)
	Axpy(2, x, z)
	if z[0] != 6 || z[1] != 9 || z[2] != 12 {
		t.Fatalf("Axpy = %v", z)
	}
	Axpy(0, x, z) // no-op path
	if z[0] != 6 {
		t.Fatal("Axpy(0) changed the vector")
	}
	Scale(0.5, z)
	if z[0] != 3 || z[2] != 6 {
		t.Fatalf("Scale = %v", z)
	}
	if InfNorm([]float64{-7, 2}) != 7 {
		t.Fatal("InfNorm wrong")
	}
	if InfNorm(nil) != 0 {
		t.Fatal("InfNorm(nil) != 0")
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestQuickTransposeInvolution(t *testing.T) {
	// Property: transposing twice reproduces every entry.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		b := NewBuilder(rows, cols)
		for k := 0; k < rng.Intn(10); k++ {
			b.Add(rng.Intn(rows), rng.Intn(cols), float64(rng.Intn(9)+1))
		}
		m := b.Build()
		tt := m.Transpose().Transpose()
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if m.At(r, c) != tt.At(r, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
