// Package sparse provides the small sparse linear-algebra kernel used to
// assemble and manipulate the MIP models: a triplet (COO) builder, an
// immutable CSR matrix with row iteration and mat-vec products, and dense
// vector helpers. The LP constraint matrices of the paper's MIP (§6.1) are
// extremely sparse — each row touches a handful of the n·m + n + m·p + 1
// variables — so models are built and stored sparsely and only the simplex
// tableau is densified.
package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates (row, col, value) triplets; duplicates are summed.
type Builder struct {
	rows, cols int
	r, c       []int
	v          []float64
}

// NewBuilder returns an empty builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates value at (row, col). Zero values are ignored.
func (b *Builder) Add(row, col int, value float64) {
	if value == 0 {
		return
	}
	if row < 0 || row >= b.rows || col < 0 || col >= b.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) outside %dx%d", row, col, b.rows, b.cols))
	}
	b.r = append(b.r, row)
	b.c = append(b.c, col)
	b.v = append(b.v, value)
}

// NNZ returns the number of accumulated triplets (before duplicate merge).
func (b *Builder) NNZ() int { return len(b.v) }

// Build compacts the triplets into a CSR matrix, summing duplicates and
// dropping resulting zeros.
func (b *Builder) Build() *CSR {
	type entry struct {
		r, c int
		v    float64
	}
	ents := make([]entry, len(b.v))
	for i := range b.v {
		ents[i] = entry{b.r[i], b.c[i], b.v[i]}
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].r != ents[j].r {
			return ents[i].r < ents[j].r
		}
		return ents[i].c < ents[j].c
	})
	m := &CSR{rows: b.rows, cols: b.cols, ptr: make([]int, b.rows+1)}
	for i := 0; i < len(ents); {
		j := i
		sum := 0.0
		for ; j < len(ents) && ents[j].r == ents[i].r && ents[j].c == ents[i].c; j++ {
			sum += ents[j].v
		}
		if sum != 0 {
			m.idx = append(m.idx, ents[i].c)
			m.val = append(m.val, sum)
			m.ptr[ents[i].r+1]++
		}
		i = j
	}
	for r := 0; r < b.rows; r++ {
		m.ptr[r+1] += m.ptr[r]
	}
	return m
}

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	ptr        []int
	idx        []int
	val        []float64
}

// Dims returns (rows, cols).
func (m *CSR) Dims() (int, int) { return m.rows, m.cols }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.val) }

// Row returns the column indices and values of row r (shared slices; do not
// modify).
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := m.ptr[r], m.ptr[r+1]
	return m.idx[lo:hi], m.val[lo:hi]
}

// At returns the value at (r, c) with a binary search over row r.
func (m *CSR) At(r, c int) float64 {
	cols, vals := m.Row(r)
	i := sort.SearchInts(cols, c)
	if i < len(cols) && cols[i] == c {
		return vals[i]
	}
	return 0
}

// MulVec computes y = M·x into a fresh slice.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec dimension %d != cols %d", len(x), m.cols))
	}
	y := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		cols, vals := m.Row(r)
		var s float64
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		y[r] = s
	}
	return y
}

// MulVecT computes y = Mᵀ·x into a fresh slice.
func (m *CSR) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecT dimension %d != rows %d", len(x), m.rows))
	}
	y := make([]float64, m.cols)
	for r := 0; r < m.rows; r++ {
		cols, vals := m.Row(r)
		for k, c := range cols {
			y[c] += vals[k] * x[r]
		}
	}
	return y
}

// RowDot returns the dot product of row r with the dense vector x.
func (m *CSR) RowDot(r int, x []float64) float64 {
	cols, vals := m.Row(r)
	var s float64
	for k, c := range cols {
		s += vals[k] * x[c]
	}
	return s
}

// Dense expands the matrix to dense row-major form.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.rows)
	for r := range out {
		out[r] = make([]float64, m.cols)
		cols, vals := m.Row(r)
		for k, c := range cols {
			out[r][c] = vals[k]
		}
	}
	return out
}

// Transpose returns Mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	b := NewBuilder(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		cols, vals := m.Row(r)
		for k, c := range cols {
			b.Add(c, r, vals[k])
		}
	}
	return b.Build()
}

// Dot returns xᵀ·y for equal-length dense vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += a·x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if a == 0 {
		return
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// InfNorm returns max |x_i| (0 for empty input).
func InfNorm(x []float64) float64 {
	worst := 0.0
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > worst {
			worst = v
		}
	}
	return worst
}
