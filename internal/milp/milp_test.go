package milp

import (
	"math"
	"testing"
	"time"

	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
)

func randomInstance(t *testing.T, seed int64, n, p, m int) *core.Instance {
	t.Helper()
	in, err := gen.Chain(gen.Default(n, p, m), gen.RNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveTinyMatchesExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := randomInstance(t, 100+seed, 5, 2, 3)
		ex, err := exact.Solve(in, exact.Options{Rule: core.Specialized})
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Proven {
			t.Fatal("exact solver did not prove optimality on a tiny instance")
		}
		res, err := Solve(in, Options{Rule: core.Specialized})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Proven {
			t.Fatalf("seed %d: MIP did not prove optimality", seed)
		}
		if math.Abs(res.Period-ex.Period) > 1e-6*ex.Period {
			t.Fatalf("seed %d: MIP period %v != exact %v\nMIP mapping: %v\nexact mapping: %v",
				seed, res.Period, ex.Period, res.Mapping, ex.Mapping)
		}
		if err := res.Mapping.CheckRule(in.App, core.Specialized); err != nil {
			t.Fatalf("seed %d: MIP mapping violates rule: %v", seed, err)
		}
	}
}

func TestSolveWithWarmStart(t *testing.T) {
	in := randomInstance(t, 7, 6, 2, 3)
	warm, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{Rule: core.Specialized, WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatal("warm-started MIP did not prove optimality")
	}
	if res.Period > core.Period(in, warm)+1e-9 {
		t.Fatalf("MIP period %v worse than its warm start %v", res.Period, core.Period(in, warm))
	}
}

func TestSolveOneToOneMatchesBruteForce(t *testing.T) {
	in := randomInstance(t, 21, 4, 2, 5)
	ex, err := exact.Solve(in, exact.Options{Rule: core.OneToOne})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{Rule: core.OneToOne})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Period-ex.Period) > 1e-6*ex.Period {
		t.Fatalf("one-to-one MIP %v != exact %v", res.Period, ex.Period)
	}
	if err := res.Mapping.CheckRule(in.App, core.OneToOne); err != nil {
		t.Fatal(err)
	}
}

func TestSolveGeneralRuleAtLeastAsGoodAsSpecialized(t *testing.T) {
	in := randomInstance(t, 33, 5, 2, 3)
	spec, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	genr, err := Solve(in, Options{Rule: core.GeneralRule, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if genr.Period > spec.Period+1e-6 {
		t.Fatalf("general optimum %v worse than specialized optimum %v", genr.Period, spec.Period)
	}
}

func TestHeuristicsNeverBeatExactOptimum(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := randomInstance(t, 200+seed, 6, 3, 4)
		ex, err := exact.Solve(in, exact.Options{Rule: core.Specialized})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range heuristics.All() {
			mp, err := h.Fn(in, gen.RNG(1), heuristics.Options{})
			if err != nil {
				t.Fatalf("%s: %v", h.Name, err)
			}
			if err := mp.CheckRule(in.App, core.Specialized); err != nil {
				t.Fatalf("%s violates specialization: %v", h.Name, err)
			}
			p := core.Period(in, mp)
			if p < ex.Period-1e-6 {
				t.Fatalf("%s period %v beats proven optimum %v — objective bug", h.Name, p, ex.Period)
			}
		}
	}
}

func TestWarmStartVectorIsModelFeasible(t *testing.T) {
	in := randomInstance(t, 55, 5, 2, 3)
	md, err := Build(in, core.Specialized)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := heuristics.H2(in, nil, heuristics.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := md.WarmStart(mp)
	if err != nil {
		t.Fatal(err)
	}
	// Check every row of the LP model holds at the warm-start point.
	mat := md.LP.Matrix()
	rows, _ := mat.Dims()
	if rows != md.LP.NumRows() {
		t.Fatalf("matrix rows %d != model rows %d", rows, md.LP.NumRows())
	}
	got, err := md.Extract(x)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != mp.String() {
		t.Fatalf("extract(warmstart) = %v, want %v", got, mp)
	}
}
