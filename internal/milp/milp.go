// Package milp builds and solves the paper's mixed-integer program for the
// specialized mapping problem (§6.1, constraints (3)-(8)), generalized to
// in-tree applications and to the one-to-one and general rules.
//
// Variables (task i, machine u, type j):
//
//	x_i  >= 1  — products task i starts per finished product (rational);
//	a_iu ∈ {0,1} — task i runs on machine u;
//	t_uj ∈ {0,1} — machine u is specialized to type j (specialized rule);
//	y_iu >= 0 — linearization of a_iu · x_i;
//	K    >= 0 — the period, minimized.
//
// Constraints:
//
//	(3) Σ_u a_iu = 1                      each task placed exactly once
//	(4) Σ_j t_uj <= 1                     a machine serves at most one type
//	(5) a_iu <= t_u,t(i)                  placement only on a machine of the type
//	(6) x_i >= F_iu·x_succ(i) − (1−a_iu)·MAXx_i    big-M product propagation
//	(7) Σ_i w_iu·y_iu <= K                machine period below the objective
//	(8) y_iu <= a_iu·MAXx_i, y_iu <= x_i, y_iu >= x_i − (1−a_iu)·MAXx_i
//
// with F_iu = 1/(1−f[i][u]) and MAXx_i = Π over the path from i to the root
// of 1/(1−max_u f[j][u]) (the paper's upper bound on x_i).
package milp

import (
	"fmt"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/lp"
	"microfab/internal/mip"
	"microfab/internal/platform"
)

// Model is the assembled MIP plus the variable layout needed to read
// solutions back.
type Model struct {
	LP       *lp.Model
	Integers []int
	Rule     core.Rule

	in   *core.Instance
	n, m int
	p    int

	xVar []int   // x_i
	aVar [][]int // a[i][u]
	tVar [][]int // t[u][j] (specialized rule only)
	yVar [][]int // y[i][u]
	kVar int
	maxX []float64
}

// Build assembles the MIP for the instance under the given rule.
func Build(in *core.Instance, rule core.Rule) (*Model, error) {
	n, m, p := in.N(), in.M(), in.P()
	md := &Model{Rule: rule, in: in, n: n, m: m, p: p}

	nv := 0
	alloc := func() int { nv++; return nv - 1 }
	md.xVar = make([]int, n)
	for i := range md.xVar {
		md.xVar[i] = alloc()
	}
	md.aVar = make([][]int, n)
	md.yVar = make([][]int, n)
	for i := 0; i < n; i++ {
		md.aVar[i] = make([]int, m)
		md.yVar[i] = make([]int, m)
		for u := 0; u < m; u++ {
			md.aVar[i][u] = alloc()
			md.yVar[i][u] = alloc()
		}
	}
	if rule == core.Specialized {
		md.tVar = make([][]int, m)
		for u := 0; u < m; u++ {
			md.tVar[u] = make([]int, p)
			for j := 0; j < p; j++ {
				md.tVar[u][j] = alloc()
			}
		}
	}
	md.kVar = alloc()

	model := lp.NewModel(nv)
	md.LP = model

	// MAXx_i along the in-tree path to the root.
	md.maxX = make([]float64, n)
	for _, i := range in.App.ReverseTopological() {
		acc := 1.0
		if s := in.App.Successor(i); s != app.NoTask {
			acc = md.maxX[s]
		}
		md.maxX[i] = acc / (1 - in.Failures.WorstRate(i))
	}

	// Bounds, names, integrality.
	for i := 0; i < n; i++ {
		model.SetBounds(md.xVar[i], 1, md.maxX[i])
		model.SetName(md.xVar[i], fmt.Sprintf("x[%d]", i))
		for u := 0; u < m; u++ {
			model.SetBounds(md.aVar[i][u], 0, 1)
			model.SetName(md.aVar[i][u], fmt.Sprintf("a[%d][%d]", i, u))
			md.Integers = append(md.Integers, md.aVar[i][u])
			model.SetBounds(md.yVar[i][u], 0, md.maxX[i])
			model.SetName(md.yVar[i][u], fmt.Sprintf("y[%d][%d]", i, u))
		}
	}
	if rule == core.Specialized {
		for u := 0; u < m; u++ {
			for j := 0; j < p; j++ {
				model.SetBounds(md.tVar[u][j], 0, 1)
				model.SetName(md.tVar[u][j], fmt.Sprintf("t[%d][%d]", u, j))
				md.Integers = append(md.Integers, md.tVar[u][j])
			}
		}
	}
	model.SetName(md.kVar, "K")
	model.SetObj(md.kVar, 1)

	// (3) each task on exactly one machine.
	for i := 0; i < n; i++ {
		row := make([]lp.Coef, m)
		for u := 0; u < m; u++ {
			row[u] = lp.Coef{Var: md.aVar[i][u], Val: 1}
		}
		model.AddRow(row, lp.EQ, 1)
	}
	switch rule {
	case core.Specialized:
		// (4) at most one type per machine.
		for u := 0; u < m; u++ {
			row := make([]lp.Coef, p)
			for j := 0; j < p; j++ {
				row[j] = lp.Coef{Var: md.tVar[u][j], Val: 1}
			}
			model.AddRow(row, lp.LE, 1)
		}
		// (5) a_iu <= t_u,t(i).
		for i := 0; i < n; i++ {
			ty := int(in.App.Type(app.TaskID(i)))
			for u := 0; u < m; u++ {
				model.AddRow([]lp.Coef{
					{Var: md.aVar[i][u], Val: 1},
					{Var: md.tVar[u][ty], Val: -1},
				}, lp.LE, 0)
			}
		}
	case core.OneToOne:
		if n > m {
			return nil, fmt.Errorf("milp: one-to-one needs n <= m (n=%d, m=%d)", n, m)
		}
		for u := 0; u < m; u++ {
			row := make([]lp.Coef, n)
			for i := 0; i < n; i++ {
				row[i] = lp.Coef{Var: md.aVar[i][u], Val: 1}
			}
			model.AddRow(row, lp.LE, 1)
		}
	case core.GeneralRule:
		// no extra rows
	}

	// (6) product propagation with big-M.
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		succ := in.App.Successor(id)
		for u := 0; u < m; u++ {
			F := in.Failures.Inflation(id, platform.MachineID(u))
			if succ == app.NoTask {
				// x_i − MAXx_i·a_iu >= F_iu − MAXx_i
				model.AddRow([]lp.Coef{
					{Var: md.xVar[i], Val: 1},
					{Var: md.aVar[i][u], Val: -md.maxX[i]},
				}, lp.GE, F-md.maxX[i])
			} else {
				// x_i − F_iu·x_succ − MAXx_i·a_iu >= −MAXx_i
				model.AddRow([]lp.Coef{
					{Var: md.xVar[i], Val: 1},
					{Var: md.xVar[succ], Val: -F},
					{Var: md.aVar[i][u], Val: -md.maxX[i]},
				}, lp.GE, -md.maxX[i])
			}
		}
	}

	// (7) machine periods below K.
	for u := 0; u < m; u++ {
		row := []lp.Coef{{Var: md.kVar, Val: -1}}
		for i := 0; i < n; i++ {
			row = append(row, lp.Coef{
				Var: md.yVar[i][u],
				Val: in.Platform.Time(app.TaskID(i), platform.MachineID(u)),
			})
		}
		model.AddRow(row, lp.LE, 0)
	}

	// (8) y linearization.
	for i := 0; i < n; i++ {
		for u := 0; u < m; u++ {
			model.AddRow([]lp.Coef{
				{Var: md.yVar[i][u], Val: 1},
				{Var: md.aVar[i][u], Val: -md.maxX[i]},
			}, lp.LE, 0)
			model.AddRow([]lp.Coef{
				{Var: md.yVar[i][u], Val: 1},
				{Var: md.xVar[i], Val: -1},
			}, lp.LE, 0)
			model.AddRow([]lp.Coef{
				{Var: md.yVar[i][u], Val: 1},
				{Var: md.xVar[i], Val: -1},
				{Var: md.aVar[i][u], Val: -md.maxX[i]},
			}, lp.GE, -md.maxX[i])
		}
	}
	return md, nil
}

// WarmStart converts a feasible mapping into a full variable vector for the
// branch and bound incumbent.
func (md *Model) WarmStart(m *core.Mapping) ([]float64, error) {
	if err := m.CheckRule(md.in.App, md.Rule); err != nil {
		return nil, err
	}
	ev, err := core.Evaluate(md.in, m)
	if err != nil {
		return nil, err
	}
	x := make([]float64, md.LP.NumVars())
	for i := 0; i < md.n; i++ {
		id := app.TaskID(i)
		u := m.Machine(id)
		x[md.xVar[i]] = ev.ProductCounts[i]
		x[md.aVar[i][int(u)]] = 1
		x[md.yVar[i][int(u)]] = ev.ProductCounts[i]
		if md.Rule == core.Specialized {
			x[md.tVar[int(u)][int(md.in.App.Type(id))]] = 1
		}
	}
	x[md.kVar] = ev.Period
	return x, nil
}

// Extract reads the mapping out of a solved variable vector.
func (md *Model) Extract(x []float64) (*core.Mapping, error) {
	mp := core.NewMapping(md.n)
	for i := 0; i < md.n; i++ {
		assigned := false
		for u := 0; u < md.m; u++ {
			if x[md.aVar[i][u]] > 0.5 {
				if assigned {
					return nil, fmt.Errorf("milp: task %d assigned twice in solution", i)
				}
				mp.Assign(app.TaskID(i), platform.MachineID(u))
				assigned = true
			}
		}
		if !assigned {
			return nil, fmt.Errorf("milp: task %d unassigned in solution", i)
		}
	}
	return mp, nil
}

// Options tunes the exact solve.
type Options struct {
	// Rule defaults to Specialized.
	Rule core.Rule
	// WarmStart optionally seeds the incumbent (use the best heuristic).
	WarmStart *core.Mapping
	// MaxNodes / TimeLimit bound the branch and bound (0 = defaults).
	MaxNodes  int
	TimeLimit time.Duration
	// RelGap terminates early at the given relative optimality gap.
	RelGap float64
}

// Result is the outcome of an exact solve.
type Result struct {
	// Mapping is the best integer-feasible mapping found (nil when none).
	Mapping *core.Mapping
	// Period is the mapping's period re-evaluated through core (ms).
	Period float64
	// Proven reports whether optimality was proven.
	Proven bool
	// Bound is the proven lower bound on the optimal period.
	Bound float64
	// Nodes explored in the search.
	Nodes   int
	Elapsed time.Duration
}

// Solve builds and optimizes the MIP for the instance.
func Solve(in *core.Instance, opts Options) (*Result, error) {
	md, err := Build(in, opts.Rule)
	if err != nil {
		return nil, err
	}
	mo := mip.Options{
		MaxNodes:  opts.MaxNodes,
		TimeLimit: opts.TimeLimit,
		RelGap:    opts.RelGap,
	}
	if opts.WarmStart != nil {
		warm, err := md.WarmStart(opts.WarmStart)
		if err != nil {
			return nil, fmt.Errorf("milp: warm start rejected: %w", err)
		}
		mo.Incumbent = warm
	}
	res, err := mip.Solve(&mip.Problem{Model: md.LP, Integers: md.Integers}, mo)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Proven:  res.Status == mip.Optimal,
		Bound:   res.Bound,
		Nodes:   res.Nodes,
		Elapsed: res.Elapsed,
	}
	switch res.Status {
	case mip.Infeasible:
		return nil, fmt.Errorf("milp: instance infeasible under rule %v", opts.Rule)
	case mip.Unbounded:
		return nil, fmt.Errorf("milp: model unbounded (should not happen: K >= 0 and all rows bound it)")
	case mip.Budget:
		return out, nil // no incumbent; caller sees Mapping == nil
	}
	mp, err := md.Extract(res.X)
	if err != nil {
		return nil, err
	}
	// Round the mapping's true period through core, not the LP's K value:
	// floating big-M slack can leave K a hair off.
	period, err := core.PeriodE(in, mp)
	if err != nil {
		return nil, fmt.Errorf("milp: extracted mapping does not evaluate: %w", err)
	}
	out.Mapping = mp
	out.Period = period
	return out, nil
}
