package milp

import (
	"math"
	"testing"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/gen"
)

func TestSolveInTreeMatchesExact(t *testing.T) {
	in, err := gen.InTree(gen.Default(6, 2, 3), 2, gen.RNG(51))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exact.Solve(in, exact.Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatal("in-tree MIP not proven")
	}
	if math.Abs(res.Period-ex.Period) > 1e-6*ex.Period {
		t.Fatalf("in-tree MIP %v != exact %v", res.Period, ex.Period)
	}
}

func TestSolveBudgetExhaustedWithoutWarmStart(t *testing.T) {
	// A 1-node budget and no warm start: the search cannot finish; the
	// result must carry no mapping and no error.
	in, err := gen.Chain(gen.Default(8, 3, 5), gen.RNG(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{Rule: core.Specialized, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Fatal("proven under a 1-node budget")
	}
}

func TestBoundIsValidLowerBound(t *testing.T) {
	in, err := gen.Chain(gen.Default(5, 2, 3), gen.RNG(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{Rule: core.Specialized})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound > res.Period+1e-6 {
		t.Fatalf("bound %v exceeds achieved period %v", res.Bound, res.Period)
	}
	lb := core.LowerBoundPeriod(in)
	if res.Period < lb-1e-6 {
		t.Fatalf("MIP optimum %v below the combinatorial lower bound %v", res.Period, lb)
	}
}

func TestBuildOneToOneRejectsTooManyTasks(t *testing.T) {
	in, err := gen.Chain(gen.Default(6, 2, 3), gen.RNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(in, core.OneToOne); err == nil {
		t.Fatal("one-to-one build accepted n > m")
	}
}

func TestWarmStartRejectsRuleViolation(t *testing.T) {
	in, err := gen.Chain(gen.Default(3, 2, 4), gen.RNG(4))
	if err != nil {
		t.Fatal(err)
	}
	md, err := Build(in, core.OneToOne)
	if err != nil {
		t.Fatal(err)
	}
	// All tasks on machine 0 violates one-to-one.
	all0 := core.NewMapping(3)
	for i := 0; i < 3; i++ {
		all0.Assign(app.TaskID(i), 0)
	}
	if _, err := md.WarmStart(all0); err == nil {
		t.Fatal("rule-violating warm start accepted")
	}
}

func TestTimeLimitRespected(t *testing.T) {
	in, err := gen.Chain(gen.Default(14, 4, 9), gen.RNG(6))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = Solve(in, Options{Rule: core.Specialized, TimeLimit: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("time limit ignored: ran %v", e)
	}
}
