// Package stats provides the small descriptive-statistics kernel used by
// the experiment harness: means, standard deviations, normal-approximation
// confidence intervals and sample summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 when n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval on the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// Quantile returns the q-quantile (0<=q<=1) by linear interpolation of the
// sorted sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary condenses a sample.
type Summary struct {
	N             int
	Mean, Std, CI float64
	Min, Max      float64
	Median        float64
}

// Summarize computes a Summary of the sample.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs), CI: CI95(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// String renders "mean ± ci (n=..)".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f (n=%d)", s.Mean, s.CI, s.N)
}

// GeoMean returns the geometric mean of a positive sample (0 on empty or
// non-positive input).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
