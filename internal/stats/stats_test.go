package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	// Sample variance with n-1: Σ(x-5)² = 32, /7.
	if math.Abs(Variance(xs)-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if math.Abs(StdDev(xs)-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || CI95(nil) != 0 {
		t.Fatal("empty sample mishandled")
	}
	if Variance([]float64{3}) != 0 || CI95([]float64{3}) != 0 {
		t.Fatal("singleton variance/CI not 0")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(xs, 0.5) != 2 {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if got := Quantile([]float64{0, 10}, 0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q25 = %v, want 2.5", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 3 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	z := Summarize(nil)
	if z.N != 0 || z.Min != 0 || z.Max != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("degenerate GeoMean not 0")
	}
}

func TestQuickMeanBounds(t *testing.T) {
	// Property: min <= mean <= max and CI >= 0.
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.CI >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
