package core

import (
	"fmt"
	"math"

	"microfab/internal/app"
	"microfab/internal/platform"
)

// SplitEvaluator is the incremental counterpart of EvaluateSplit: a
// stateful engine over a *complete* split mapping (every task's shares sum
// to 1) that reprices a share change without re-walking the full n×m share
// matrix.
//
// The fractional model (see SplitMapping): with blended failure rates the
// product count of task i is
//
//	x[i] = x[succ(i)] / Σ_u share[i][u]·(1 − f[i][u])
//
// and machine u accumulates share[i][u]·x[i]·w[i][u]. Changing task i's
// share row therefore changes x[i] and, through the demand chain, the
// x-value of every task feeding i transitively — exactly the in-tree
// prefix the integral Evaluator reprices on Assign. SetShares walks that
// prefix only: per repriced task the cost is its number of positive
// shares, against the full O(n·m) sweep EvaluateSplit pays per call.
//
// Per-machine sums and the lazy maximum live in the same loadLedger as the
// integral Evaluator (Neumaier compensation, exact empty reset, lazy
// tournament-tree max), so long SetShares sequences stay within 1e-12
// relative of a from-scratch EvaluateSplit (enforced by the differential
// and fuzz harnesses in splitevaluator_test.go / fuzz_test.go).
//
// A SplitEvaluator is not safe for concurrent use; give each goroutine its
// own.
type SplitEvaluator struct {
	in *Instance

	share [][]float64            // current shares, n×m (owned)
	nz    [][]platform.MachineID // machines with share[i][u] > 0, per task
	surv  []float64              // blended survival Σ_u share·(1−f) per task
	x     []float64              // product counts under the current shares

	led loadLedger

	stack []app.TaskID // scratch for the prefix walks
}

// NewSplitEvaluator returns an engine loaded with the given complete split
// mapping. The mapping must cover exactly the instance's tasks and give
// every task a positive blended survival; share rows are copied.
func NewSplitEvaluator(in *Instance, s *SplitMapping) (*SplitEvaluator, error) {
	n, m := in.N(), in.M()
	if len(s.share) != n || (n > 0 && len(s.share[0]) != m) {
		cols := 0
		if len(s.share) > 0 {
			cols = len(s.share[0])
		}
		return nil, fmt.Errorf("core: split mapping is %dx%d, instance is %dx%d", len(s.share), cols, n, m)
	}
	e := &SplitEvaluator{
		in:    in,
		share: make([][]float64, n),
		nz:    make([][]platform.MachineID, n),
		surv:  make([]float64, n),
		x:     make([]float64, n),
		led:   newLoadLedger(m),
	}
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		row := append([]float64(nil), s.share[i]...)
		if err := e.checkRow(id, row); err != nil {
			return nil, err
		}
		e.share[i] = row
		e.nz[i] = rowNonzero(row)
		e.surv[i] = e.blendedSurvival(id, row)
	}
	// Price root-first so every task's demand is already known.
	for _, i := range in.App.ReverseTopological() {
		e.priceTask(i)
	}
	return e, nil
}

// checkRow validates one candidate share row: correct width, nonnegative
// shares, and a positive blended survival (a task all of whose share lands
// on always-failing machines produces nothing).
func (e *SplitEvaluator) checkRow(i app.TaskID, row []float64) error {
	if len(row) != e.in.M() {
		return fmt.Errorf("core: share row for T%d has %d machines, platform has %d", int(i)+1, len(row), e.in.M())
	}
	sum := 0.0
	for u, v := range row {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: bad share %v for task T%d on machine %d", v, int(i)+1, u)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("core: task T%d shares sum to %v, want 1", int(i)+1, sum)
	}
	if e.blendedSurvival(i, row) <= 0 {
		return fmt.Errorf("core: task T%d has no productive share", int(i)+1)
	}
	return nil
}

// blendedSurvival returns Σ_u row[u]·(1 − f[i][u]), skipping zero shares
// exactly like EvaluateSplit skips them in the period sweep.
func (e *SplitEvaluator) blendedSurvival(i app.TaskID, row []float64) float64 {
	s := 0.0
	for u, v := range row {
		s += v * e.in.Failures.Survival(i, platform.MachineID(u))
	}
	return s
}

func rowNonzero(row []float64) []platform.MachineID {
	var out []platform.MachineID
	for u, v := range row {
		if v > 0 {
			out = append(out, platform.MachineID(u))
		}
	}
	return out
}

// Len returns the number of tasks covered.
func (e *SplitEvaluator) Len() int { return len(e.share) }

// Share returns the current share[i][u].
func (e *SplitEvaluator) Share(i app.TaskID, u platform.MachineID) float64 {
	return e.share[i][u]
}

// Row returns an independent copy of task i's current share row (e.g. to
// restore it after a rejected trial).
func (e *SplitEvaluator) Row(i app.TaskID) []float64 {
	return append([]float64(nil), e.share[i]...)
}

// X returns the current product count of task i.
func (e *SplitEvaluator) X(i app.TaskID) float64 { return e.x[i] }

// Demand returns the product count required downstream of task i:
// x[succ(i)], or 1 at the root.
func (e *SplitEvaluator) Demand(i app.TaskID) float64 {
	if s := e.in.App.Successor(i); s != app.NoTask {
		return e.x[s]
	}
	return 1
}

// MachinePeriod returns the current period(Mu) of machine u.
func (e *SplitEvaluator) MachinePeriod(u platform.MachineID) float64 {
	return e.led.value(u)
}

// Contribution returns task i's current load on machine u:
// share[i][u]·x[i]·w[i][u] (0 when the share is 0).
func (e *SplitEvaluator) Contribution(i app.TaskID, u platform.MachineID) float64 {
	sh := e.share[i][u]
	if sh == 0 {
		return 0
	}
	return sh * e.x[i] * e.in.Platform.Time(i, u)
}

// Period returns the current maximum machine period.
func (e *SplitEvaluator) Period() float64 { return e.led.max() }

// Best returns the current maximum machine period and the smallest machine
// attaining it (platform.NoMachine on an all-idle platform).
func (e *SplitEvaluator) Best() (float64, platform.MachineID) { return e.led.best() }

// Critical returns the machine attaining Period.
func (e *SplitEvaluator) Critical() platform.MachineID {
	_, u := e.Best()
	return u
}

// SetShares replaces task i's share row and reprices, incrementally, the
// task and its in-tree prefix (every task whose product count depends on
// x[i]). The row is validated first; on error the engine is unchanged.
func (e *SplitEvaluator) SetShares(i app.TaskID, row []float64) error {
	if int(i) < 0 || int(i) >= len(e.share) {
		return fmt.Errorf("core: task %d out of range [0,%d)", int(i), len(e.share))
	}
	if err := e.checkRow(i, row); err != nil {
		return err
	}
	// Remove the stale contributions of i and its prefix, then reprice the
	// same set with the new row. The walk mirrors Evaluator.unpriceSubtree/
	// priceSubtree: predecessors transitively, demand flowing root-first.
	e.unpriceTask(i)
	e.stack = e.stack[:0]
	e.stack = append(e.stack, i)
	for len(e.stack) > 0 {
		t := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		for _, p := range e.in.App.Predecessors(t) {
			e.unpriceTask(p)
			e.stack = append(e.stack, p)
		}
	}
	copy(e.share[i], row)
	e.nz[i] = e.nz[i][:0] // reuse capacity: SetShares stays allocation-light
	for u, v := range e.share[i] {
		if v > 0 {
			e.nz[i] = append(e.nz[i], platform.MachineID(u))
		}
	}
	e.surv[i] = e.blendedSurvival(i, e.share[i])
	e.repriceSubtree(i)
	return nil
}

// repriceSubtree reprices task i and its in-tree prefix, root-first, using
// the current share rows.
func (e *SplitEvaluator) repriceSubtree(i app.TaskID) {
	e.priceTask(i)
	e.stack = e.stack[:0]
	e.stack = append(e.stack, i)
	for len(e.stack) > 0 {
		t := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		for _, p := range e.in.App.Predecessors(t) {
			e.priceTask(p)
			e.stack = append(e.stack, p)
		}
	}
}

// priceTask computes x[i] from its (already priced) successor and adds its
// contributions to the touched machines. The per-machine contribution uses
// the same expression as EvaluateSplit (share·x·w, zero shares skipped).
func (e *SplitEvaluator) priceTask(i app.TaskID) {
	e.x[i] = e.Demand(i) / e.surv[i]
	for _, u := range e.nz[i] {
		e.led.charge(u, e.share[i][u]*e.x[i]*e.in.Platform.Time(i, u))
	}
}

// unpriceTask removes task i's current contributions.
func (e *SplitEvaluator) unpriceTask(i app.TaskID) {
	for _, u := range e.nz[i] {
		e.led.discharge(u, e.share[i][u]*e.x[i]*e.in.Platform.Time(i, u))
	}
}

// Split returns an independent snapshot of the current fractional mapping.
func (e *SplitEvaluator) Split() *SplitMapping {
	out := NewSplitMapping(len(e.share), e.in.M())
	for i := range e.share {
		copy(out.share[i], e.share[i])
	}
	return out
}

// ProductCounts returns a copy of the current x-values.
func (e *SplitEvaluator) ProductCounts() []float64 {
	return append([]float64(nil), e.x...)
}

// MachinePeriods returns a copy of the current per-machine periods.
func (e *SplitEvaluator) MachinePeriods() []float64 { return e.led.values() }

// Evaluation snapshots the incremental state as a full Evaluation,
// matching EvaluateSplit on the snapshot mapping within 1e-12 relative.
func (e *SplitEvaluator) Evaluation() *Evaluation {
	p, crit := e.Best()
	ev := &Evaluation{
		Period:         p,
		Critical:       crit,
		MachinePeriods: e.MachinePeriods(),
		ProductCounts:  e.ProductCounts(),
	}
	if ev.Period > 0 {
		ev.Throughput = 1 / ev.Period
	}
	return ev
}
