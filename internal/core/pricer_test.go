package core_test

import (
	"math"
	"math/rand"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// pricerCorpus draws the instance battery the pricing-only mode is gated
// on: chains and in-trees, narrow and wide platforms, standard and
// high-failure regimes.
func pricerCorpus(t testing.TB) []*core.Instance {
	t.Helper()
	var out []*core.Instance
	add := func(in *core.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	for seed := int64(0); seed < 10; seed++ {
		add(gen.Chain(gen.Default(8, 3, 4), gen.RNG(7000+seed)))
	}
	for seed := int64(0); seed < 10; seed++ {
		add(gen.InTree(gen.Default(9, 3, 4), 2+int(seed%2), gen.RNG(7100+seed)))
	}
	for seed := int64(0); seed < 6; seed++ {
		pr := gen.Default(12, 4, 6)
		pr.FMin, pr.FMax = 0, 0.10
		add(gen.Chain(pr, gen.RNG(7200+seed)))
	}
	for seed := int64(0); seed < 6; seed++ {
		add(gen.InTree(gen.Default(14, 4, 7), 3, gen.RNG(7300+seed)))
	}
	return out
}

// TestPricerDifferential drives random root-first LIFO walks (the exact
// solver's only access pattern) over the corpus and cross-checks the
// pricing-only mode against the full Evaluator after every step: loads
// against the compensated per-machine periods to 1e-12, the running
// maximum against the tournament-tree maximum, x-values and the snapshot
// mapping exactly.
func TestPricerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for ci, in := range pricerCorpus(t) {
		order := in.App.ReverseTopological()
		pr := core.NewPricer(in)
		ev := core.NewEvaluator(in)
		var stack []platform.MachineID
		for step := 0; step < 400; step++ {
			push := len(stack) == 0 || (len(stack) < len(order) && rng.Intn(3) != 0)
			if push {
				i := order[len(stack)]
				u := platform.MachineID(rng.Intn(in.M()))
				want, ok := pr.Trial(i, u)
				if !ok {
					t.Fatalf("inst%d step %d: Trial unknown on a root-first walk", ci, step)
				}
				if err := pr.Assign(i, u); err != nil {
					t.Fatalf("inst%d step %d: pricer Assign: %v", ci, step, err)
				}
				if got := pr.Load(u); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("inst%d step %d: Assign landed on %v, Trial promised %v", ci, step, got, want)
				}
				if err := ev.Assign(i, u); err != nil {
					t.Fatalf("inst%d step %d: evaluator Assign: %v", ci, step, err)
				}
				stack = append(stack, u)
			} else {
				i := order[len(stack)-1]
				pr.Unassign(i)
				ev.Unassign(i)
				stack = stack[:len(stack)-1]
			}
			comparePricer(t, in, pr, ev, ci, step)
		}
	}
}

// comparePricer asserts the pricing-only mode and the full Evaluator agree
// on the shared state to 1e-12 (machine loads, maximum) and exactly
// (assignments, x-values, completeness).
func comparePricer(t *testing.T, in *core.Instance, pr *core.Pricer, ev *core.Evaluator, ci, step int) {
	t.Helper()
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		if pr.Machine(id) != ev.Machine(id) {
			t.Fatalf("inst%d step %d: T%d on M%d, evaluator has M%d", ci, step, i+1, int(pr.Machine(id))+1, int(ev.Machine(id))+1)
		}
		if !close12(pr.X(id), ev.X(id)) {
			t.Fatalf("inst%d step %d: x[%d] = %v, evaluator %v", ci, step, i, pr.X(id), ev.X(id))
		}
	}
	worst := 0.0
	for u := 0; u < in.M(); u++ {
		mu := platform.MachineID(u)
		if !close12(pr.Load(mu), ev.MachinePeriod(mu)) {
			t.Fatalf("inst%d step %d: load(M%d) = %v, evaluator %v", ci, step, u+1, pr.Load(mu), ev.MachinePeriod(mu))
		}
		if l := pr.Load(mu); l > worst {
			worst = l
		}
	}
	if math.Float64bits(pr.Max()) != math.Float64bits(worst) {
		t.Fatalf("inst%d step %d: Max() = %v, load scan gives %v", ci, step, pr.Max(), worst)
	}
	if !close12(pr.Max(), ev.Period()) {
		t.Fatalf("inst%d step %d: Max() = %v, evaluator period %v", ci, step, pr.Max(), ev.Period())
	}
	if pr.Complete() != ev.Complete() {
		t.Fatalf("inst%d step %d: Complete() = %v, evaluator %v", ci, step, pr.Complete(), ev.Complete())
	}
	if pr.Complete() && pr.Mapping().String() != ev.Mapping().String() {
		t.Fatalf("inst%d step %d: mapping %v, evaluator %v", ci, step, pr.Mapping(), ev.Mapping())
	}
}

// TestPricerRestoreBitExact pins the restore property the parallel exact
// search depends on: after any descend/backtrack excursion, the loads and
// the maximum are bit-identical to the state before it — a node's pricing
// is a pure function of its partial assignment.
func TestPricerRestoreBitExact(t *testing.T) {
	in, err := gen.InTree(gen.Default(12, 3, 5), 3, gen.RNG(4242))
	if err != nil {
		t.Fatal(err)
	}
	order := in.App.ReverseTopological()
	pr := core.NewPricer(in)
	rng := rand.New(rand.NewSource(17))
	// Park the walk at a random mid-tree node.
	depth := 1 + rng.Intn(len(order)-1)
	for k := 0; k < depth; k++ {
		if err := pr.Assign(order[k], platform.MachineID(rng.Intn(in.M()))); err != nil {
			t.Fatal(err)
		}
	}
	before := pr.Loads()
	beforeMax := pr.Max()
	for trial := 0; trial < 50; trial++ {
		// Random excursion below the node, then full backtrack.
		extra := rng.Intn(len(order) - depth + 1)
		for k := depth; k < depth+extra; k++ {
			if err := pr.Assign(order[k], platform.MachineID(rng.Intn(in.M()))); err != nil {
				t.Fatal(err)
			}
		}
		for k := depth + extra - 1; k >= depth; k-- {
			pr.Unassign(order[k])
		}
		after := pr.Loads()
		for u := range after {
			if math.Float64bits(after[u]) != math.Float64bits(before[u]) {
				t.Fatalf("trial %d: load(M%d) drifted: %x -> %x", trial, u+1,
					math.Float64bits(before[u]), math.Float64bits(after[u]))
			}
		}
		if math.Float64bits(pr.Max()) != math.Float64bits(beforeMax) {
			t.Fatalf("trial %d: max drifted: %v -> %v", trial, beforeMax, pr.Max())
		}
	}
}

// TestPricerDiscipline covers the contract errors: out-of-range ids,
// assigning before the successor (root-first violation), and double
// assignment (no move semantics).
func TestPricerDiscipline(t *testing.T) {
	in, err := gen.Chain(gen.Default(5, 2, 3), gen.RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	pr := core.NewPricer(in)
	order := in.App.ReverseTopological()
	if err := pr.Assign(app.TaskID(in.N()), 0); err == nil {
		t.Fatal("out-of-range task accepted")
	}
	if err := pr.Assign(order[0], platform.MachineID(in.M())); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	// The chain's source feeds everything: assigning it first violates
	// root-first.
	if err := pr.Assign(order[len(order)-1], 0); err == nil {
		t.Fatal("pre-successor assignment accepted")
	}
	if err := pr.Assign(order[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := pr.Assign(order[0], 1); err == nil {
		t.Fatal("double assignment accepted")
	}
	// Unassign of an unassigned task and out-of-range ids are no-ops.
	pr.Unassign(order[1])
	pr.Unassign(app.TaskID(-1))
	if pr.Machine(order[0]) != 0 || pr.Len() != in.N() {
		t.Fatal("no-op unassigns mutated state")
	}
}

// TestPricerCloneIndependence: mutating a clone never leaks into the
// original, and both keep pricing correctly.
func TestPricerCloneIndependence(t *testing.T) {
	in, err := gen.Chain(gen.Default(8, 3, 4), gen.RNG(2))
	if err != nil {
		t.Fatal(err)
	}
	order := in.App.ReverseTopological()
	pr := core.NewPricer(in)
	for k := 0; k < 4; k++ {
		if err := pr.Assign(order[k], platform.MachineID(k%in.M())); err != nil {
			t.Fatal(err)
		}
	}
	snap := pr.Loads()
	cl := pr.Clone()
	for k := 4; k < len(order); k++ {
		if err := cl.Assign(order[k], platform.MachineID(k%in.M())); err != nil {
			t.Fatal(err)
		}
	}
	if !cl.Complete() || pr.Complete() {
		t.Fatal("clone completion leaked")
	}
	after := pr.Loads()
	for u := range snap {
		if math.Float64bits(snap[u]) != math.Float64bits(after[u]) {
			t.Fatalf("clone mutation leaked into original load(M%d)", u+1)
		}
	}
	// The clone's state must match a fresh replay of the same path.
	replay := core.NewPricer(in)
	for k := 0; k < len(order); k++ {
		if err := replay.Assign(order[k], cl.Machine(order[k])); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < in.M(); u++ {
		mu := platform.MachineID(u)
		if math.Float64bits(replay.Load(mu)) != math.Float64bits(cl.Load(mu)) {
			t.Fatalf("clone load(M%d) != replayed load", u+1)
		}
	}
}

// TestPricerBestAndReset pins the Best tie-break (smallest machine
// attaining the maximum, NoMachine while empty) and Reset.
func TestPricerBestAndReset(t *testing.T) {
	in, err := gen.Chain(gen.Default(6, 2, 3), gen.RNG(3))
	if err != nil {
		t.Fatal(err)
	}
	pr := core.NewPricer(in)
	if p, u := pr.Best(); p != 0 || u != platform.NoMachine {
		t.Fatalf("empty Best() = (%v, %d)", p, u)
	}
	order := in.App.ReverseTopological()
	ev := core.NewEvaluator(in)
	for k, i := range order {
		u := platform.MachineID(k % in.M())
		if err := pr.Assign(i, u); err != nil {
			t.Fatal(err)
		}
		if err := ev.Assign(i, u); err != nil {
			t.Fatal(err)
		}
	}
	p, u := pr.Best()
	ep, eu := ev.Best()
	if !close12(p, ep) || u != eu {
		t.Fatalf("Best() = (%v, M%d), evaluator (%v, M%d)", p, int(u)+1, ep, int(eu)+1)
	}
	pr.Reset()
	if pr.Max() != 0 || pr.Complete() || pr.Machine(order[0]) != platform.NoMachine {
		t.Fatal("Reset left state behind")
	}
	if _, ok := pr.Trial(order[1], 0); ok {
		t.Fatal("Trial knows a demand after Reset")
	}
}
