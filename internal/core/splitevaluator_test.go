// Differential tests for the incremental SplitEvaluator: every SetShares
// mutation of a random sequence is cross-checked against a from-scratch
// EvaluateSplit of the snapshot mapping, within 1e-12 relative.
// FuzzSplitDelta (fuzz_test.go) reuses the same checker on fuzzer-decoded
// instances and share scripts.
package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// randomSplit draws a complete fractional mapping: every task spreads its
// unit share over 1..3 random machines with random positive weights.
func randomSplit(in *core.Instance, rng *rand.Rand) *core.SplitMapping {
	s := core.NewSplitMapping(in.N(), in.M())
	for i := 0; i < in.N(); i++ {
		setRandomRow(s, app.TaskID(i), in.M(), rng)
	}
	return s
}

func setRandomRow(s *core.SplitMapping, i app.TaskID, m int, rng *rand.Rand) {
	for u := 0; u < m; u++ {
		s.SetShare(i, platform.MachineID(u), 0)
	}
	k := 1 + rng.Intn(3)
	if k > m {
		k = m
	}
	perm := rng.Perm(m)[:k]
	weights := make([]float64, k)
	total := 0.0
	for j := range weights {
		weights[j] = 0.1 + rng.Float64()
		total += weights[j]
	}
	for j, u := range perm {
		s.SetShare(i, platform.MachineID(u), weights[j]/total)
	}
}

// checkSplitAgainstReference compares every observable of the incremental
// engine with a from-scratch EvaluateSplit of the snapshot.
func checkSplitAgainstReference(t testing.TB, in *core.Instance, e *core.SplitEvaluator, step string) {
	t.Helper()
	ref, err := core.EvaluateSplit(in, e.Split())
	if err != nil {
		t.Fatalf("%s: snapshot does not evaluate: %v", step, err)
	}
	for i := 0; i < in.N(); i++ {
		if !close12(e.X(app.TaskID(i)), ref.ProductCounts[i]) {
			t.Fatalf("%s: x[%d] = %v, from-scratch %v", step, i, e.X(app.TaskID(i)), ref.ProductCounts[i])
		}
	}
	for u := 0; u < in.M(); u++ {
		mu := platform.MachineID(u)
		if !close12(e.MachinePeriod(mu), ref.MachinePeriods[u]) {
			t.Fatalf("%s: period(M%d) = %v, from-scratch %v", step, u+1, e.MachinePeriod(mu), ref.MachinePeriods[u])
		}
	}
	p, crit := e.Best()
	if !close12(p, ref.Period) {
		t.Fatalf("%s: period %v, from-scratch %v", step, p, ref.Period)
	}
	if ref.Period > 0 {
		// Ties at the last ulp may pick another machine; the chosen one must
		// attain the maximum.
		if crit == platform.NoMachine || !close12(ref.MachinePeriods[crit], ref.Period) {
			t.Fatalf("%s: critical M%d has period %v, max is %v", step, int(crit)+1, ref.MachinePeriods[crit], ref.Period)
		}
	}
}

// TestSplitEvaluatorDifferential drives the engine through long random
// SetShares sequences on chains and in-trees and cross-checks every step
// against EvaluateSplit.
func TestSplitEvaluatorDifferential(t *testing.T) {
	const instances = 24
	const steps = 120
	for k := 0; k < instances; k++ {
		k := k
		t.Run(fmt.Sprintf("inst%02d", k), func(t *testing.T) {
			t.Parallel()
			pr := gen.Default(4+k%13, 2+k%3, 3+k%6)
			if k%4 == 1 {
				pr.FMin, pr.FMax = 0, 0.25 // stress the blended-survival term
			}
			rng := gen.RNG(int64(4000 + k))
			var in *core.Instance
			var err error
			if k%2 == 0 {
				in, err = gen.Chain(pr, rng)
			} else {
				in, err = gen.InTree(pr, 2+k%2, rng)
			}
			if err != nil {
				t.Fatal(err)
			}
			split := randomSplit(in, rng)
			e, err := core.NewSplitEvaluator(in, split)
			if err != nil {
				t.Fatal(err)
			}
			checkSplitAgainstReference(t, in, e, "initial")
			scratch := core.NewSplitMapping(in.N(), in.M())
			for s := 0; s < steps; s++ {
				i := app.TaskID(rng.Intn(in.N()))
				setRandomRow(scratch, i, in.M(), rng)
				row := make([]float64, in.M())
				for u := 0; u < in.M(); u++ {
					row[u] = scratch.Share(i, platform.MachineID(u))
				}
				if err := e.SetShares(i, row); err != nil {
					t.Fatalf("step %d: SetShares(T%d): %v", s, int(i)+1, err)
				}
				checkSplitAgainstReference(t, in, e, fmt.Sprintf("step %d (T%d)", s, int(i)+1))
			}
		})
	}
}

// TestSplitEvaluatorRowRoundTrip pins the trial/revert pattern the
// refinement loops use: SetShares to a candidate and back must restore
// every observable within 1e-12.
func TestSplitEvaluatorRowRoundTrip(t *testing.T) {
	in, err := gen.Chain(gen.Default(20, 4, 8), gen.RNG(71))
	if err != nil {
		t.Fatal(err)
	}
	rng := gen.RNG(72)
	e, err := core.NewSplitEvaluator(in, randomSplit(in, rng))
	if err != nil {
		t.Fatal(err)
	}
	before := e.Period()
	scratch := core.NewSplitMapping(in.N(), in.M())
	for trial := 0; trial < 50; trial++ {
		i := app.TaskID(rng.Intn(in.N()))
		old := e.Row(i)
		setRandomRow(scratch, i, in.M(), rng)
		row := make([]float64, in.M())
		for u := 0; u < in.M(); u++ {
			row[u] = scratch.Share(i, platform.MachineID(u))
		}
		if err := e.SetShares(i, row); err != nil {
			t.Fatal(err)
		}
		if err := e.SetShares(i, old); err != nil {
			t.Fatal(err)
		}
	}
	if after := e.Period(); !close12(before, after) {
		t.Fatalf("50 trial/revert round trips drifted the period: %v -> %v", before, after)
	}
	checkSplitAgainstReference(t, in, e, "after round trips")
}

// TestSplitEvaluatorEvaluationMatches compares the snapshot Evaluation
// against EvaluateSplit field by field.
func TestSplitEvaluatorEvaluationMatches(t *testing.T) {
	in, err := gen.InTree(gen.Default(15, 3, 6), 3, gen.RNG(90))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewSplitEvaluator(in, randomSplit(in, gen.RNG(91)))
	if err != nil {
		t.Fatal(err)
	}
	got := e.Evaluation()
	want, err := core.EvaluateSplit(in, e.Split())
	if err != nil {
		t.Fatal(err)
	}
	if !close12(got.Period, want.Period) || !close12(got.Throughput, want.Throughput) {
		t.Fatalf("period %v/%v throughput %v/%v", got.Period, want.Period, got.Throughput, want.Throughput)
	}
}

// TestSplitEvaluatorValidation checks the error paths: wrong dimensions,
// bad rows, unproductive shares, out-of-range tasks — and that a rejected
// SetShares leaves the engine untouched.
func TestSplitEvaluatorValidation(t *testing.T) {
	in, err := gen.Chain(gen.Default(6, 2, 3), gen.RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewSplitEvaluator(in, core.NewSplitMapping(in.N()+1, in.M())); err == nil {
		t.Fatal("wrong-size split accepted")
	}
	// Zero rows must come back as a dimension error, not a panic in the
	// error formatting (regression: len(share[0]) on an empty matrix).
	if _, err := core.NewSplitEvaluator(in, core.NewSplitMapping(0, in.M())); err == nil {
		t.Fatal("zero-row split accepted")
	}
	if _, err := core.EvaluateSplit(in, core.NewSplitMapping(0, in.M())); err == nil {
		t.Fatal("zero-row split accepted by EvaluateSplit")
	}
	if _, err := core.NewSplitEvaluator(in, core.NewSplitMapping(in.N(), in.M())); err == nil {
		t.Fatal("all-zero shares accepted")
	}
	e, err := core.NewSplitEvaluator(in, randomSplit(in, gen.RNG(6)))
	if err != nil {
		t.Fatal(err)
	}
	before := e.Period()
	bad := [][]float64{
		{0.5, 0.4, 0},             // sums to 0.9
		{1.5, -0.5, 0},            // negative share
		{math.NaN(), 1, 0},        // NaN
		make([]float64, in.M()+2), // wrong width
	}
	for k, row := range bad {
		if err := e.SetShares(0, row); err == nil {
			t.Fatalf("bad row %d accepted", k)
		}
	}
	if err := e.SetShares(app.TaskID(99), e.Row(0)); err == nil {
		t.Fatal("task out of range accepted")
	}
	if got := e.Period(); got != before {
		t.Fatalf("rejected SetShares mutated the engine: %v -> %v", before, got)
	}
	checkSplitAgainstReference(t, in, e, "after rejected rows")
}
