// Native Go fuzz targets for the evaluation engine. A byte string decodes
// into a small instance (chain or random in-tree, typed execution times,
// arbitrary failure rates) plus, for FuzzEvaluatorDelta, a mutation script;
// the incremental Evaluator is cross-checked against the from-scratch
// evaluation after every scripted step. Seed corpus lives in
// testdata/fuzz/<Target>/ and in the f.Add calls below.
//
// Smoke-run locally or in CI with:
//
//	go test -run='^$' -fuzz=FuzzEvaluatorDelta -fuzztime=10s ./internal/core
package core_test

import (
	"fmt"
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/platform"
)

// byteProgram reads a byte string as an endless tape (wrapping around), so
// that any input long enough to seed the sizes decodes to a valid program
// and the fuzzer never wastes executions on rejected lengths.
type byteProgram struct {
	data []byte
	pos  int
}

func (p *byteProgram) next() byte {
	if len(p.data) == 0 {
		return 0
	}
	b := p.data[p.pos%len(p.data)]
	p.pos++
	return b
}

func (p *byteProgram) intn(n int) int { return int(p.next()) % n }

// decodeInstance builds a tiny instance from the tape: n in 2..8 tasks,
// m in 1..6 machines, chain or random in-tree shape, typed execution times
// in [1,256] ms and failure rates in [0, 200/256).
func decodeInstance(p *byteProgram) (*core.Instance, error) {
	n := 2 + p.intn(7)
	m := 1 + p.intn(6)
	ntypes := 1 + p.intn(n)
	shape := p.next() % 2

	tasks := make([]app.Task, n)
	for i := range tasks {
		tasks[i] = app.Task{ID: app.TaskID(i), Type: app.TypeID(p.intn(ntypes))}
	}
	var deps []app.Dep
	for i := 0; i < n-1; i++ {
		succ := i + 1
		if shape == 1 {
			// Random in-tree: any later task may consume i's output; the
			// single root n-1 is guaranteed because every i feeds forward.
			succ = i + 1 + p.intn(n-1-i)
		}
		deps = append(deps, app.Dep{From: app.TaskID(i), To: app.TaskID(succ)})
	}
	a, err := app.New(tasks, deps)
	if err != nil {
		return nil, err
	}

	// Typed execution times: one row per type, shared by its tasks, as the
	// model requires (platform.CheckTypedTimes).
	wByType := make([][]float64, ntypes)
	for ty := range wByType {
		wByType[ty] = make([]float64, m)
		for u := range wByType[ty] {
			wByType[ty][u] = 1 + float64(p.next())
		}
	}
	w := make([][]float64, n)
	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = append([]float64(nil), wByType[tasks[i].Type]...)
		f[i] = make([]float64, m)
		for u := range f[i] {
			f[i][u] = float64(p.next()%200) / 256
		}
	}
	pl, err := platform.New(w)
	if err != nil {
		return nil, err
	}
	fm, err := failure.New(f)
	if err != nil {
		return nil, err
	}
	return core.NewInstance(a, pl, fm)
}

// FuzzProductCounts cross-checks the from-scratch evaluation functions
// against each other and against an Evaluator replaying the same mapping:
// ProductCounts vs PartialProductCounts, Evaluate's period/critical versus
// its own machine periods, PeriodE vs Period, and incremental vs full.
func FuzzProductCounts(f *testing.F) {
	f.Add([]byte("microfab"))
	f.Add([]byte{3, 2, 1, 0, 200, 30, 40, 50, 60, 70, 80, 90, 100})
	f.Add([]byte{7, 5, 3, 1, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte("\x08\x06\x04\x01chains-and-trees\xff\x00\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		// A complete mapping from the tape.
		mp := core.NewMapping(in.N())
		for i := 0; i < in.N(); i++ {
			mp.Assign(app.TaskID(i), platform.MachineID(p.intn(in.M())))
		}
		x, err := core.ProductCounts(in, mp)
		if err != nil {
			t.Fatalf("ProductCounts on a complete mapping: %v", err)
		}
		partial := core.PartialProductCounts(in, mp)
		for i := range x {
			if x[i] < 1 || math.IsInf(x[i], 0) || math.IsNaN(x[i]) {
				t.Fatalf("x[%d] = %v, want finite >= 1", i, x[i])
			}
			if x[i] != partial[i] {
				t.Fatalf("x[%d]: full %v != partial %v on a complete mapping", i, x[i], partial[i])
			}
		}
		ev, err := core.Evaluate(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		maxP, crit := 0.0, platform.NoMachine
		for u, pu := range ev.MachinePeriods {
			if pu > maxP {
				maxP, crit = pu, platform.MachineID(u)
			}
		}
		if ev.Period != maxP || ev.Critical != crit {
			t.Fatalf("Evaluate period/critical (%v, %d) inconsistent with its own MachinePeriods (%v, %d)", ev.Period, ev.Critical, maxP, crit)
		}
		pe, err := core.PeriodE(in, mp)
		if err != nil || pe != ev.Period {
			t.Fatalf("PeriodE = (%v, %v), want (%v, nil)", pe, err, ev.Period)
		}
		inc, err := core.NewEvaluatorFrom(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstReference(t, in, mp, inc, "replayed mapping")
	})
}

// FuzzEvaluatorDelta decodes an instance plus a mutation script and
// cross-checks the incremental engine against the from-scratch evaluation
// after every step — the fuzz twin of TestEvaluatorDifferential.
func FuzzEvaluatorDelta(f *testing.F) {
	f.Add([]byte("incremental-evaluator"))
	f.Add([]byte{5, 3, 2, 1, 100, 100, 100, 0, 1, 2, 0, 1, 0, 2, 1, 1, 2, 0, 2, 2, 1, 0, 0, 1})
	f.Add([]byte{8, 6, 1, 0, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 3, 3, 3, 2, 2, 2, 1, 1, 1, 0, 0, 0})
	f.Add([]byte("\x04\x02\x02\x01push\x00pop\xffpush\x01pop\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		ev := core.NewEvaluator(in)
		mp := core.NewMapping(in.N())
		steps := 8 + p.intn(56)
		for s := 0; s < steps; s++ {
			op := p.next()
			i := app.TaskID(p.intn(in.N()))
			var desc string
			if op%3 == 2 {
				ev.Unassign(i)
				mp.Unassign(i)
				desc = fmt.Sprintf("unassign T%d", int(i)+1)
			} else {
				u := platform.MachineID(p.intn(in.M()))
				if err := ev.Assign(i, u); err != nil {
					t.Fatal(err)
				}
				mp.Assign(i, u)
				desc = fmt.Sprintf("assign T%d -> M%d", int(i)+1, int(u)+1)
			}
			checkAgainstReference(t, in, mp, ev, fmt.Sprintf("step %d (%s)", s, desc))
		}
	})
}
