// Native Go fuzz targets for the evaluation engine. A byte string decodes
// into a small instance (chain or random in-tree, typed execution times,
// arbitrary failure rates) plus, for FuzzEvaluatorDelta, a mutation script;
// the incremental Evaluator is cross-checked against the from-scratch
// evaluation after every scripted step. Seed corpus lives in
// testdata/fuzz/<Target>/ and in the f.Add calls below.
//
// Smoke-run locally or in CI with:
//
//	go test -run='^$' -fuzz=FuzzEvaluatorDelta -fuzztime=10s ./internal/core
package core_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/failure"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/platform"
)

// byteProgram reads a byte string as an endless tape (wrapping around), so
// that any input long enough to seed the sizes decodes to a valid program
// and the fuzzer never wastes executions on rejected lengths.
type byteProgram struct {
	data []byte
	pos  int
}

func (p *byteProgram) next() byte {
	if len(p.data) == 0 {
		return 0
	}
	b := p.data[p.pos%len(p.data)]
	p.pos++
	return b
}

func (p *byteProgram) intn(n int) int { return int(p.next()) % n }

// decodeInstance builds a small instance from the tape: n in 2..15 tasks,
// m in 1..9 machines (the paper's exact-solver regime; the caps were
// n <= 8, m <= 6 until the corpus stabilized), chain or random in-tree
// shape, typed execution times in [1,256] ms and failure rates in
// [0, 200/256).
func decodeInstance(p *byteProgram) (*core.Instance, error) {
	n := 2 + p.intn(14)
	m := 1 + p.intn(9)
	ntypes := 1 + p.intn(n)
	shape := p.next() % 2

	tasks := make([]app.Task, n)
	for i := range tasks {
		tasks[i] = app.Task{ID: app.TaskID(i), Type: app.TypeID(p.intn(ntypes))}
	}
	var deps []app.Dep
	for i := 0; i < n-1; i++ {
		succ := i + 1
		if shape == 1 {
			// Random in-tree: any later task may consume i's output; the
			// single root n-1 is guaranteed because every i feeds forward.
			succ = i + 1 + p.intn(n-1-i)
		}
		deps = append(deps, app.Dep{From: app.TaskID(i), To: app.TaskID(succ)})
	}
	a, err := app.New(tasks, deps)
	if err != nil {
		return nil, err
	}

	// Typed execution times: one row per type, shared by its tasks, as the
	// model requires (platform.CheckTypedTimes).
	wByType := make([][]float64, ntypes)
	for ty := range wByType {
		wByType[ty] = make([]float64, m)
		for u := range wByType[ty] {
			wByType[ty][u] = 1 + float64(p.next())
		}
	}
	w := make([][]float64, n)
	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = append([]float64(nil), wByType[tasks[i].Type]...)
		f[i] = make([]float64, m)
		for u := range f[i] {
			f[i][u] = float64(p.next()%200) / 256
		}
	}
	pl, err := platform.New(w)
	if err != nil {
		return nil, err
	}
	fm, err := failure.New(f)
	if err != nil {
		return nil, err
	}
	return core.NewInstance(a, pl, fm)
}

// FuzzProductCounts cross-checks the from-scratch evaluation functions
// against each other and against an Evaluator replaying the same mapping:
// ProductCounts vs PartialProductCounts, Evaluate's period/critical versus
// its own machine periods, PeriodE vs Period, and incremental vs full.
func FuzzProductCounts(f *testing.F) {
	f.Add([]byte("microfab"))
	f.Add([]byte{3, 2, 1, 0, 200, 30, 40, 50, 60, 70, 80, 90, 100})
	f.Add([]byte{7, 5, 3, 1, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte("\x08\x06\x04\x01chains-and-trees\xff\x00\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		// A complete mapping from the tape.
		mp := core.NewMapping(in.N())
		for i := 0; i < in.N(); i++ {
			mp.Assign(app.TaskID(i), platform.MachineID(p.intn(in.M())))
		}
		x, err := core.ProductCounts(in, mp)
		if err != nil {
			t.Fatalf("ProductCounts on a complete mapping: %v", err)
		}
		partial := core.PartialProductCounts(in, mp)
		for i := range x {
			if x[i] < 1 || math.IsInf(x[i], 0) || math.IsNaN(x[i]) {
				t.Fatalf("x[%d] = %v, want finite >= 1", i, x[i])
			}
			if x[i] != partial[i] {
				t.Fatalf("x[%d]: full %v != partial %v on a complete mapping", i, x[i], partial[i])
			}
		}
		ev, err := core.Evaluate(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		maxP, crit := 0.0, platform.NoMachine
		for u, pu := range ev.MachinePeriods {
			if pu > maxP {
				maxP, crit = pu, platform.MachineID(u)
			}
		}
		if ev.Period != maxP || ev.Critical != crit {
			t.Fatalf("Evaluate period/critical (%v, %d) inconsistent with its own MachinePeriods (%v, %d)", ev.Period, ev.Critical, maxP, crit)
		}
		pe, err := core.PeriodE(in, mp)
		if err != nil || pe != ev.Period {
			t.Fatalf("PeriodE = (%v, %v), want (%v, nil)", pe, err, ev.Period)
		}
		inc, err := core.NewEvaluatorFrom(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstReference(t, in, mp, inc, "replayed mapping")
	})
}

// FuzzEvaluatorDelta decodes an instance plus a mutation script and
// cross-checks the incremental engine against the from-scratch evaluation
// after every step — the fuzz twin of TestEvaluatorDifferential.
func FuzzEvaluatorDelta(f *testing.F) {
	f.Add([]byte("incremental-evaluator"))
	f.Add([]byte{5, 3, 2, 1, 100, 100, 100, 0, 1, 2, 0, 1, 0, 2, 1, 1, 2, 0, 2, 2, 1, 0, 0, 1})
	f.Add([]byte{8, 6, 1, 0, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 3, 3, 3, 2, 2, 2, 1, 1, 1, 0, 0, 0})
	f.Add([]byte("\x04\x02\x02\x01push\x00pop\xffpush\x01pop\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		ev := core.NewEvaluator(in)
		mp := core.NewMapping(in.N())
		steps := 8 + p.intn(56)
		for s := 0; s < steps; s++ {
			op := p.next()
			i := app.TaskID(p.intn(in.N()))
			var desc string
			if op%3 == 2 {
				ev.Unassign(i)
				mp.Unassign(i)
				desc = fmt.Sprintf("unassign T%d", int(i)+1)
			} else {
				u := platform.MachineID(p.intn(in.M()))
				if err := ev.Assign(i, u); err != nil {
					t.Fatal(err)
				}
				mp.Assign(i, u)
				desc = fmt.Sprintf("assign T%d -> M%d", int(i)+1, int(u)+1)
			}
			checkAgainstReference(t, in, mp, ev, fmt.Sprintf("step %d (%s)", s, desc))
		}
	})
}

// naiveRuleViolation is the brute-force oracle for Mapping.CheckRule: scan
// every assigned task pair sharing a machine.
func naiveRuleViolation(a *app.Application, mp *core.Mapping, rule core.Rule) bool {
	for i := 0; i < mp.Len(); i++ {
		ui := mp.Machine(app.TaskID(i))
		if ui == platform.NoMachine {
			continue
		}
		for j := i + 1; j < mp.Len(); j++ {
			if mp.Machine(app.TaskID(j)) != ui {
				continue
			}
			switch rule {
			case core.OneToOne:
				return true
			case core.Specialized:
				if a.Type(app.TaskID(i)) != a.Type(app.TaskID(j)) {
					return true
				}
			}
		}
	}
	return false
}

// FuzzCheckRule decodes an instance plus a mapping (with holes) and
// cross-checks Mapping.CheckRule against the brute-force pair oracle for
// all three rules; it then drives every registered heuristic on the
// instance and enforces the feasibility-guard contract: whenever the
// types present fit on the machines (p <= m) the heuristic must produce a
// complete, rule-valid, finitely-priced mapping, and when they do not it
// must fail with an error instead of returning a broken mapping.
func FuzzCheckRule(f *testing.F) {
	f.Add([]byte("check-rule"))
	f.Add([]byte{9, 4, 3, 0, 120, 30, 40, 55, 60, 70, 85, 90, 5, 0, 1, 2, 3, 4, 0xff, 7})
	f.Add([]byte{15, 9, 5, 1, 200, 199, 198, 7, 6, 5, 4, 3, 2, 1, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("\x0c\x07\x02\x00guards-and-holes\x00\xff\x10"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		mp := core.NewMapping(in.N())
		for i := 0; i < in.N(); i++ {
			// Roughly 1 in 5 tasks stays unassigned: CheckRule must skip
			// holes rather than crash or count them as conflicts.
			if p.next()%5 == 0 {
				continue
			}
			mp.Assign(app.TaskID(i), platform.MachineID(p.intn(in.M())))
		}
		for _, rule := range []core.Rule{core.OneToOne, core.Specialized, core.GeneralRule} {
			err := mp.CheckRule(in.App, rule)
			if naive := naiveRuleViolation(in.App, mp, rule); (err == nil) == naive {
				t.Fatalf("CheckRule(%v) = %v, oracle says violation=%v on %s", rule, err, naive, mp)
			}
		}

		// Feasibility guards: count the types actually present.
		typesPresent := 0
		for _, c := range in.App.TypeCounts() {
			if c > 0 {
				typesPresent++
			}
		}
		rng := gen.RNG(int64(p.next()))
		for _, h := range heuristics.All() {
			got, err := h.Fn(in, rng, heuristics.Options{})
			if typesPresent > in.M() {
				if err == nil {
					t.Fatalf("%s succeeded with %d types on %d machines", h.Name, typesPresent, in.M())
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s failed on a feasible instance (%d types, %d machines): %v", h.Name, typesPresent, in.M(), err)
			}
			if !got.Complete() {
				t.Fatalf("%s returned an incomplete mapping", h.Name)
			}
			if err := got.CheckRule(in.App, core.Specialized); err != nil {
				t.Fatalf("%s broke the specialization rule: %v", h.Name, err)
			}
			period, err := core.PeriodE(in, got)
			if err != nil || math.IsInf(period, 0) || math.IsNaN(period) || period <= 0 {
				t.Fatalf("%s mapping prices to (%v, %v)", h.Name, period, err)
			}
		}
	})
}

// FuzzSplitDelta decodes an instance plus a share-mutation script and
// cross-checks the incremental SplitEvaluator against from-scratch
// EvaluateSplit after every SetShares — the fuzz twin of
// TestSplitEvaluatorDifferential.
func FuzzSplitDelta(f *testing.F) {
	f.Add([]byte("incremental-split-evaluator"))
	f.Add([]byte{6, 4, 2, 0, 90, 110, 130, 150, 3, 1, 0, 2, 200, 100, 50, 25, 12, 6, 3, 1})
	f.Add([]byte("\x0a\x05\x03\x01water-filling\x02\x04\x08\x10\x20\x40\x80"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		n, m := in.N(), in.M()
		// decodeRow reads a share row off the tape: 1..3 machines with
		// weights in 1..256, normalized. Weights are exact powers of the
		// byte value so rows exercise wide magnitude ranges.
		decodeRow := func() []float64 {
			row := make([]float64, m)
			k := 1 + p.intn(3)
			if k > m {
				k = m
			}
			total := 0.0
			for j := 0; j < k; j++ {
				u := p.intn(m)
				w := 1 + float64(p.next())
				row[u] += w
				total += w
			}
			for u := range row {
				row[u] /= total
			}
			return row
		}
		split := core.NewSplitMapping(n, m)
		for i := 0; i < n; i++ {
			row := decodeRow()
			for u, v := range row {
				split.SetShare(app.TaskID(i), platform.MachineID(u), v)
			}
		}
		se, err := core.NewSplitEvaluator(in, split)
		if err != nil {
			// The decoded shares can legitimately be unproductive (all
			// weight on always-failing machines); the constructor must say
			// so, not crash.
			return
		}
		checkSplitAgainstReference(t, in, se, "initial")
		steps := 4 + p.intn(28)
		for s := 0; s < steps; s++ {
			i := app.TaskID(p.intn(n))
			if err := se.SetShares(i, decodeRow()); err != nil {
				continue // unproductive row rejected: engine must be unchanged
			}
			checkSplitAgainstReference(t, in, se, fmt.Sprintf("step %d (T%d)", s, int(i)+1))
		}
	})
}

// FuzzSwapDelta decodes an instance, a complete mapping and a swap script,
// and cross-checks the native Evaluator.Swap kernel against the two-Assign
// oracle and the from-scratch evaluation after every step — the fuzz twin
// of TestSwapKernelDifferential. Roughly one step in four is a relocate so
// the kernels are exercised interleaved, like a real neighborhood scan.
func FuzzSwapDelta(f *testing.F) {
	f.Add([]byte("native-swap-kernel"))
	f.Add([]byte{9, 4, 3, 1, 120, 40, 60, 80, 100, 5, 0, 1, 2, 3, 4, 5, 6, 7, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{12, 6, 2, 0, 200, 100, 50, 25, 0, 11, 1, 10, 2, 9, 3, 8, 4, 7, 5, 6})
	f.Add([]byte("\x0f\x08\x04\x01swap-and-relocate\x00\xff\x01\xfe\x02\xfd"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		mp := core.NewMapping(in.N())
		for i := 0; i < in.N(); i++ {
			mp.Assign(app.TaskID(i), platform.MachineID(p.intn(in.M())))
		}
		kernel, err := core.NewEvaluatorFrom(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := core.NewEvaluatorFrom(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		steps := 8 + p.intn(40)
		for s := 0; s < steps; s++ {
			var desc string
			if p.next()%4 == 0 {
				i := app.TaskID(p.intn(in.N()))
				v := platform.MachineID(p.intn(in.M()))
				if err := kernel.Relocate(i, v); err != nil {
					t.Fatalf("step %d: Relocate(T%d, M%d): %v", s, int(i)+1, int(v)+1, err)
				}
				if err := oracle.Assign(i, v); err != nil {
					t.Fatal(err)
				}
				mp.Assign(i, v)
				desc = fmt.Sprintf("relocate T%d -> M%d", int(i)+1, int(v)+1)
			} else {
				i := app.TaskID(p.intn(in.N()))
				j := app.TaskID(p.intn(in.N()))
				u, v := mp.Machine(i), mp.Machine(j)
				if err := kernel.Swap(i, j); err != nil {
					t.Fatalf("step %d: Swap(T%d, T%d): %v", s, int(i)+1, int(j)+1, err)
				}
				if err := oracle.Assign(i, v); err != nil {
					t.Fatal(err)
				}
				if err := oracle.Assign(j, u); err != nil {
					t.Fatal(err)
				}
				mp.Assign(i, v)
				mp.Assign(j, u)
				desc = fmt.Sprintf("swap T%d <-> T%d", int(i)+1, int(j)+1)
			}
			for w := 0; w < in.M(); w++ {
				mw := platform.MachineID(w)
				if k, o := kernel.MachinePeriod(mw), oracle.MachinePeriod(mw); !close12(k, o) {
					t.Fatalf("step %d (%s): period(M%d) kernel %v, oracle %v", s, desc, w+1, k, o)
				}
			}
			checkAgainstReference(t, in, mp, kernel, fmt.Sprintf("step %d (%s)", s, desc))
		}
	})
}

// FuzzTrialAll decodes an instance plus a mutation script and, after every
// step, cross-checks the batch kernels against their scalar counterparts:
// the Evaluator.TrialAll row must be bit-equal to m Trial calls at every
// partial state the script reaches, and a root-first Pricer walk steered by
// the tape must find PriceAll bit-equal to m Pricer.Trial calls with Assign
// landing on exactly the batch row's bits — the fuzz twin of
// TestTrialAllDifferential and TestPriceAllDifferential.
func FuzzTrialAll(f *testing.F) {
	f.Add([]byte("batch-kernels"))
	f.Add([]byte{6, 5, 2, 1, 80, 90, 100, 110, 0, 1, 2, 3, 4, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{11, 8, 3, 0, 160, 20, 40, 60, 80, 100, 120, 140, 7, 0, 6, 1, 5, 2, 4, 3})
	f.Add([]byte("\x07\x04\x03\x00soa-rows\x00\xff\x01\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		ev := core.NewEvaluator(in)
		steps := 8 + p.intn(40)
		for s := 0; s < steps; s++ {
			op := p.next()
			i := app.TaskID(p.intn(in.N()))
			var desc string
			if op%3 == 2 {
				ev.Unassign(i)
				desc = fmt.Sprintf("unassign T%d", int(i)+1)
			} else {
				u := platform.MachineID(p.intn(in.M()))
				if err := ev.Assign(i, u); err != nil {
					t.Fatal(err)
				}
				desc = fmt.Sprintf("assign T%d -> M%d", int(i)+1, int(u)+1)
			}
			checkTrialAllBitEqual(t, in, ev, fmt.Sprintf("step %d (%s)", s, desc))
		}

		// Pricer leg: a root-first push walk with tape-chosen machines.
		pr := core.NewPricer(in)
		out := make([]float64, in.M())
		for d, i := range in.App.ReverseTopological() {
			checkPriceAllBitEqual(t, in, pr, fmt.Sprintf("pricer push %d", d))
			if !pr.PriceAll(i, out) {
				t.Fatalf("pricer push %d: demand of T%d unknown in root-first order", d, int(i)+1)
			}
			u := platform.MachineID(p.intn(in.M()))
			promised := out[u]
			if err := pr.Assign(i, u); err != nil {
				t.Fatal(err)
			}
			if got := pr.Load(u); got != promised {
				t.Fatalf("pricer push %d: PriceAll promised %v, Assign produced %v", d, promised, got)
			}
		}
		checkPriceAllBitEqual(t, in, pr, "pricer complete")
	})
}

// FuzzPeriodErrors drives the error-classification contract on decoded
// instances: PeriodE must wrap ErrIncompleteMapping exactly for mappings
// with holes and return genuine errors for out-of-range machines.
func FuzzPeriodErrors(f *testing.F) {
	f.Add([]byte("err-classes"))
	f.Add([]byte{4, 3, 2, 1, 50, 60, 70, 80, 90, 0xff, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		p := &byteProgram{data: data}
		in, err := decodeInstance(p)
		if err != nil {
			t.Fatalf("decoder built an invalid instance: %v", err)
		}
		mp := core.NewMapping(in.N())
		holes := 0
		for i := 0; i < in.N(); i++ {
			if p.next()%4 == 0 {
				holes++
				continue
			}
			mp.Assign(app.TaskID(i), platform.MachineID(p.intn(in.M())))
		}
		_, err = core.PeriodE(in, mp)
		switch {
		case holes > 0:
			if !errors.Is(err, core.ErrIncompleteMapping) {
				t.Fatalf("%d holes, err = %v, want ErrIncompleteMapping", holes, err)
			}
		case err != nil:
			t.Fatalf("complete in-range mapping failed: %v", err)
		}
	})
}
