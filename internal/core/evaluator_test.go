// Differential tests for the incremental Evaluator: every mutation of a
// random Assign/Unassign sequence is cross-checked against a from-scratch
// evaluation of the shadow mapping. This is the correctness gate for the
// incremental engine; FuzzEvaluatorDelta reuses the same checker on
// fuzzer-decoded instances and scripts.
//
// The file lives in the external core_test package so it can draw instances
// from internal/gen (which itself imports core).
package core_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// relTol is the differential tolerance: the incremental sums may order
// additions differently from the from-scratch walk, but must stay within
// 1e-12 relative of it.
const relTol = 1e-12

func close12(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= relTol*scale
}

// refState is the from-scratch evaluation of a (possibly partial) mapping:
// PartialProductCounts semantics for x, per-machine periods, max, critical.
type refState struct {
	x       []float64
	periods []float64
	period  float64
	crit    platform.MachineID
}

func reference(in *core.Instance, mp *core.Mapping) refState {
	x := core.PartialProductCounts(in, mp)
	periods := make([]float64, in.M())
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		if u := mp.Machine(id); u != platform.NoMachine {
			periods[u] += x[i] * in.Platform.Time(id, u)
		}
	}
	ref := refState{x: x, periods: periods, crit: platform.NoMachine}
	for u, p := range periods {
		if p > ref.period {
			ref.period = p
			ref.crit = platform.MachineID(u)
		}
	}
	return ref
}

// checkAgainstReference compares every observable of the Evaluator with the
// from-scratch reference. step annotates failures.
func checkAgainstReference(t testing.TB, in *core.Instance, mp *core.Mapping, ev *core.Evaluator, step string) {
	t.Helper()
	ref := reference(in, mp)
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		if ev.Machine(id) != mp.Machine(id) {
			t.Fatalf("%s: task T%d machine %d, shadow mapping has %d", step, i+1, ev.Machine(id), mp.Machine(id))
		}
		if !close12(ev.X(id), ref.x[i]) {
			t.Fatalf("%s: x[%d] = %v, from-scratch %v", step, i, ev.X(id), ref.x[i])
		}
	}
	for u := 0; u < in.M(); u++ {
		mu := platform.MachineID(u)
		if !close12(ev.MachinePeriod(mu), ref.periods[u]) {
			t.Fatalf("%s: period(M%d) = %v, from-scratch %v", step, u+1, ev.MachinePeriod(mu), ref.periods[u])
		}
	}
	p, crit := ev.Best()
	if !close12(p, ref.period) {
		t.Fatalf("%s: period %v, from-scratch %v", step, p, ref.period)
	}
	if ref.period == 0 {
		if crit != platform.NoMachine {
			t.Fatalf("%s: critical M%d on an empty evaluation", step, int(crit)+1)
		}
	} else {
		// Ties at the last ulp may legitimately pick another machine; the
		// chosen machine's true period must attain the maximum.
		if crit == platform.NoMachine || !close12(ref.periods[crit], ref.period) {
			t.Fatalf("%s: critical M%d has period %v, max is %v", step, int(crit)+1, ref.periods[crit], ref.period)
		}
	}
}

// admissible returns the machines task i may use under the rule given the
// current shadow mapping (recomputed from scratch; test-only cost).
func admissible(in *core.Instance, mp *core.Mapping, rule core.Rule, i app.TaskID) []platform.MachineID {
	var out []platform.MachineID
	ty := in.App.Type(i)
	for u := 0; u < in.M(); u++ {
		mu := platform.MachineID(u)
		ok := true
		for j := 0; j < in.N() && ok; j++ {
			jd := app.TaskID(j)
			if jd == i || mp.Machine(jd) != mu {
				continue
			}
			switch rule {
			case core.OneToOne:
				ok = false
			case core.Specialized:
				ok = in.App.Type(jd) == ty
			}
		}
		if ok {
			out = append(out, mu)
		}
	}
	return out
}

// mutate drives one random Assign/Unassign/reassign step on both the
// Evaluator and the shadow mapping and returns a description of the step.
func mutate(in *core.Instance, mp *core.Mapping, ev *core.Evaluator, rule core.Rule, rng *rand.Rand) string {
	i := app.TaskID(rng.Intn(in.N()))
	if rng.Float64() < 0.35 && mp.Machine(i) != platform.NoMachine {
		ev.Unassign(i)
		mp.Unassign(i)
		return fmt.Sprintf("unassign T%d", int(i)+1)
	}
	cands := admissible(in, mp, rule, i)
	if len(cands) == 0 {
		ev.Unassign(i)
		mp.Unassign(i)
		return fmt.Sprintf("unassign T%d (no admissible machine)", int(i)+1)
	}
	u := cands[rng.Intn(len(cands))]
	if err := ev.Assign(i, u); err != nil {
		panic(err)
	}
	mp.Assign(i, u)
	return fmt.Sprintf("assign T%d -> M%d", int(i)+1, int(u)+1)
}

// TestEvaluatorDifferential drives the Evaluator through long random
// mutation sequences on >= 50 random instances (chains and in-trees, all
// three rules) and cross-checks every step against a from-scratch
// evaluation. Subtests run in parallel so `go test -race` exercises
// concurrent Evaluators on shared instances.
func TestEvaluatorDifferential(t *testing.T) {
	const instances = 54
	const steps = 220 // 54 * 220 = 11880 mutation steps
	for k := 0; k < instances; k++ {
		k := k
		t.Run(fmt.Sprintf("inst%02d", k), func(t *testing.T) {
			t.Parallel()
			rule := core.Rule(k % 3)
			pr := gen.Default(4+k%17, 2+k%3, 6+k%5)
			if rule == core.OneToOne {
				pr.N = 3 + k%8
				pr.M = pr.N + 2 // one-to-one needs n <= m
				pr.P = 2
			}
			rng := gen.RNG(int64(1000 + k))
			var in *core.Instance
			var err error
			if k%2 == 0 {
				in, err = gen.Chain(pr, rng)
			} else {
				in, err = gen.InTree(pr, 2+k%2, rng)
			}
			if err != nil {
				t.Fatal(err)
			}
			ev := core.NewEvaluator(in)
			mp := core.NewMapping(in.N())
			checkAgainstReference(t, in, mp, ev, "initial")
			for s := 0; s < steps; s++ {
				desc := mutate(in, mp, ev, rule, rng)
				checkAgainstReference(t, in, mp, ev, fmt.Sprintf("step %d (%s)", s, desc))
			}
			// Drain everything: the engine must return to an exact zero.
			for i := 0; i < in.N(); i++ {
				ev.Unassign(app.TaskID(i))
				mp.Unassign(app.TaskID(i))
			}
			checkAgainstReference(t, in, mp, ev, "drained")
			for u := 0; u < in.M(); u++ {
				if got := ev.MachinePeriod(platform.MachineID(u)); got != 0 {
					t.Fatalf("drained period(M%d) = %v, want exactly 0", u+1, got)
				}
			}
		})
	}
}

// TestEvaluatorMatchesEvaluateComplete checks the snapshot Evaluation of a
// completed Evaluator against core.Evaluate on the same mapping.
func TestEvaluatorMatchesEvaluateComplete(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in, err := gen.Chain(gen.Default(12, 3, 5), gen.RNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		rng := gen.RNG(seed + 77)
		ev := core.NewEvaluator(in)
		mp := core.NewMapping(in.N())
		for _, i := range in.App.ReverseTopological() {
			u := platform.MachineID(rng.Intn(in.M()))
			if err := ev.Assign(i, u); err != nil {
				t.Fatal(err)
			}
			mp.Assign(i, u)
		}
		got, err := ev.Evaluation()
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Evaluate(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		if !close12(got.Period, want.Period) || !close12(got.Throughput, want.Throughput) {
			t.Fatalf("seed %d: period %v/%v throughput %v/%v", seed, got.Period, want.Period, got.Throughput, want.Throughput)
		}
		for i := range want.ProductCounts {
			if got.ProductCounts[i] != want.ProductCounts[i] {
				t.Fatalf("seed %d: x[%d] %v != %v (must be bit-identical: same recurrence)", seed, i, got.ProductCounts[i], want.ProductCounts[i])
			}
		}
		for u := range want.MachinePeriods {
			if !close12(got.MachinePeriods[u], want.MachinePeriods[u]) {
				t.Fatalf("seed %d: period(M%d) %v != %v", seed, u+1, got.MachinePeriods[u], want.MachinePeriods[u])
			}
		}
	}
}

// TestEvaluatorLIFOPushPop mirrors the exact solver's search stack: push
// root-first, pop back, and require the engine to land on exactly zero.
func TestEvaluatorLIFOPushPop(t *testing.T) {
	in, err := gen.InTree(gen.Default(15, 3, 6), 3, gen.RNG(9))
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(in)
	mp := core.NewMapping(in.N())
	order := in.App.ReverseTopological()
	for d, i := range order {
		u := platform.MachineID(d % in.M())
		trial, ok := ev.Trial(i, u)
		if !ok {
			t.Fatalf("push %d: demand of T%d unknown in root-first order", d, int(i)+1)
		}
		if err := ev.Assign(i, u); err != nil {
			t.Fatal(err)
		}
		mp.Assign(i, u)
		if got := ev.MachinePeriod(u); !close12(got, trial) {
			t.Fatalf("push %d: Trial promised %v, Assign produced %v", d, trial, got)
		}
		checkAgainstReference(t, in, mp, ev, fmt.Sprintf("push %d", d))
	}
	if !ev.Complete() {
		t.Fatal("evaluator not complete after assigning every task")
	}
	for d := len(order) - 1; d >= 0; d-- {
		ev.Unassign(order[d])
		mp.Unassign(order[d])
		checkAgainstReference(t, in, mp, ev, fmt.Sprintf("pop %d", d))
	}
	if p, crit := ev.Best(); p != 0 || crit != platform.NoMachine {
		t.Fatalf("popped to (%v, M%d), want (0, none)", p, int(crit)+1)
	}
}

// TestEvaluatorAnyOrderAssignment assigns leaf-first (the worst case for
// pricing: nothing is priceable until the root arrives) and checks the
// deferred pricing cascades correctly.
func TestEvaluatorAnyOrderAssignment(t *testing.T) {
	in, err := gen.Chain(gen.Default(10, 3, 4), gen.RNG(21))
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(in)
	mp := core.NewMapping(in.N())
	for _, i := range in.App.Topological() { // predecessors first: root last
		u := platform.MachineID(int(i) % in.M())
		if err := ev.Assign(i, u); err != nil {
			t.Fatal(err)
		}
		mp.Assign(i, u)
		checkAgainstReference(t, in, mp, ev, fmt.Sprintf("leaf-first assign T%d", int(i)+1))
	}
	// Now reassign a mid-chain task: its whole prefix must rescale.
	mid := in.App.Topological()[in.N()/2]
	ev.Assign(mid, platform.MachineID((int(mid)+1)%in.M()))
	mp.Assign(mid, platform.MachineID((int(mid)+1)%in.M()))
	checkAgainstReference(t, in, mp, ev, "mid-chain reassign")
}

// TestNewEvaluatorFrom checks preloading from partial and complete
// mappings, and the dimension guard.
func TestNewEvaluatorFrom(t *testing.T) {
	in, err := gen.Chain(gen.Default(8, 2, 4), gen.RNG(3))
	if err != nil {
		t.Fatal(err)
	}
	mp := core.NewMapping(in.N())
	for i := 0; i < in.N(); i += 2 { // a partial mapping with holes
		mp.Assign(app.TaskID(i), platform.MachineID(i%in.M()))
	}
	ev, err := core.NewEvaluatorFrom(in, mp)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, in, mp, ev, "preloaded partial")
	if _, err := core.NewEvaluatorFrom(in, core.NewMapping(in.N()+1)); err == nil {
		t.Fatal("wrong-size mapping accepted")
	}
}

// TestEvaluatorRangeErrors checks argument validation.
func TestEvaluatorRangeErrors(t *testing.T) {
	in, err := gen.Chain(gen.Default(4, 2, 3), gen.RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(in)
	if err := ev.Assign(app.TaskID(99), 0); err == nil {
		t.Fatal("task out of range accepted")
	}
	if err := ev.Assign(0, platform.MachineID(99)); err == nil {
		t.Fatal("machine out of range accepted")
	}
	if _, err := ev.Evaluation(); !errors.Is(err, core.ErrIncompleteMapping) {
		t.Fatalf("incomplete Evaluation error = %v, want ErrIncompleteMapping", err)
	}
}

// TestPeriodEDistinguishesErrors pins the satellite fix: an incomplete
// mapping and a genuine model violation must be distinguishable, while
// Period keeps collapsing both to +Inf for greedy comparisons.
func TestPeriodEDistinguishesErrors(t *testing.T) {
	in, err := gen.Chain(gen.Default(5, 2, 3), gen.RNG(11))
	if err != nil {
		t.Fatal(err)
	}
	incomplete := core.NewMapping(in.N())
	if _, err := core.PeriodE(in, incomplete); !errors.Is(err, core.ErrIncompleteMapping) {
		t.Fatalf("incomplete: err = %v, want ErrIncompleteMapping", err)
	}
	if p := core.Period(in, incomplete); !math.IsInf(p, 1) {
		t.Fatalf("incomplete Period = %v, want +Inf", p)
	}

	wrongSize := core.NewMapping(in.N() + 3)
	if _, err := core.PeriodE(in, wrongSize); err == nil || errors.Is(err, core.ErrIncompleteMapping) {
		t.Fatalf("wrong size: err = %v, want a genuine (non-incomplete) error", err)
	}

	badMachine := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		badMachine.Assign(app.TaskID(i), platform.MachineID(99))
	}
	if _, err := core.PeriodE(in, badMachine); err == nil || errors.Is(err, core.ErrIncompleteMapping) {
		t.Fatalf("machine out of range: err = %v, want a genuine (non-incomplete) error", err)
	}
	if p := core.Period(in, badMachine); !math.IsInf(p, 1) {
		t.Fatalf("bad-machine Period = %v, want +Inf", p)
	}

	complete := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		complete.Assign(app.TaskID(i), platform.MachineID(i%in.M()))
	}
	p, err := core.PeriodE(in, complete)
	if err != nil {
		t.Fatal(err)
	}
	if p != core.Period(in, complete) {
		t.Fatalf("PeriodE %v != Period %v on a complete mapping", p, core.Period(in, complete))
	}
}

// TestEvaluatorClone: a clone must observe the same state as its source and
// then diverge independently — mutations on either side never leak into the
// other, and both keep matching the from-scratch reference of their own
// shadow mapping. This is the contract the parallel exact solver relies on
// when it hands each worker a cloned evaluator.
func TestEvaluatorClone(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in, err := gen.InTree(gen.Default(9, 3, 4), 2, gen.RNG(900+seed))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		ev := core.NewEvaluator(in)
		mp := core.NewMapping(in.N())
		// Mutate to a random mid-search state (holes included) so the clone
		// copies live pricing, compensation and dirty-maximum state.
		for _, i := range in.App.ReverseTopological() {
			if rng.Intn(4) == 0 {
				continue
			}
			u := platform.MachineID(rng.Intn(in.M()))
			if err := ev.Assign(i, u); err != nil {
				t.Fatal(err)
			}
			mp.Assign(i, u)
		}
		cl := ev.Clone()
		clMp := mp.Clone()
		checkAgainstReference(t, in, clMp, cl, "fresh clone")

		// Diverge both sides with independent mutation scripts.
		for s := 0; s < 40; s++ {
			i := app.TaskID(rng.Intn(in.N()))
			if rng.Intn(3) == 0 {
				ev.Unassign(i)
				mp.Unassign(i)
			} else {
				u := platform.MachineID(rng.Intn(in.M()))
				if err := ev.Assign(i, u); err != nil {
					t.Fatal(err)
				}
				mp.Assign(i, u)
			}
			j := app.TaskID(rng.Intn(in.N()))
			if rng.Intn(3) == 0 {
				cl.Unassign(j)
				clMp.Unassign(j)
			} else {
				u := platform.MachineID(rng.Intn(in.M()))
				if err := cl.Assign(j, u); err != nil {
					t.Fatal(err)
				}
				clMp.Assign(j, u)
			}
			checkAgainstReference(t, in, mp, ev, fmt.Sprintf("source step %d", s))
			checkAgainstReference(t, in, clMp, cl, fmt.Sprintf("clone step %d", s))
		}
	}
}
