package core

import (
	"math"

	"microfab/internal/platform"
)

// loadLedger is the per-machine accounting structure shared by the two
// incremental evaluation engines (Evaluator for integral mappings,
// SplitEvaluator for fractional ones). It maintains one running load sum
// per machine and the maximum over machines:
//
//   - every sum is Neumaier-compensated, so long charge/discharge
//     sequences do not drift from a from-scratch summation;
//   - a machine whose last contribution leaves is reset to exactly 0
//     (tracked by a per-machine contribution count), so drained engines
//     land on true zeros, not float residue;
//   - the maximum lives in a lazily-maintained tournament tree: mutations
//     only mark machines dirty, a max read flushes each dirty machine in
//     O(log m). Loops that mutate without reading the maximum pay nothing
//     for it.
type loadLedger struct {
	period []float64 // per-machine running sum
	comp   []float64 // Neumaier compensation per machine
	count  []int     // live contributions per machine (0 -> exact reset)

	tree     []float64 // leaf u lives at treeBase+u
	treeBase int
	dirty    []platform.MachineID
	stamp    []int
	stampID  int
}

// newLoadLedger returns an all-zero ledger over m machines.
func newLoadLedger(m int) loadLedger {
	base := 1
	for base < m {
		base *= 2
	}
	return loadLedger{
		period:   make([]float64, m),
		comp:     make([]float64, m),
		count:    make([]int, m),
		tree:     make([]float64, 2*base),
		treeBase: base,
		stamp:    make([]int, m),
		stampID:  1, // stamp[u] == stampID means dirty; zeroed stamps must not match
	}
}

// clone returns an independent deep copy of the ledger, dirty state
// included: a clone made mid-mutation flushes exactly like the original
// would have.
func (l *loadLedger) clone() loadLedger {
	return loadLedger{
		period:   append([]float64(nil), l.period...),
		comp:     append([]float64(nil), l.comp...),
		count:    append([]int(nil), l.count...),
		tree:     append([]float64(nil), l.tree...),
		treeBase: l.treeBase,
		dirty:    append([]platform.MachineID(nil), l.dirty...),
		stamp:    append([]int(nil), l.stamp...),
		stampID:  l.stampID,
	}
}

// reset returns the ledger to the all-zero state.
func (l *loadLedger) reset() {
	for u := range l.period {
		l.period[u] = 0
		l.comp[u] = 0
		l.count[u] = 0
	}
	for k := range l.tree {
		l.tree[k] = 0
	}
	l.dirty = l.dirty[:0]
	l.stampID++
}

// value returns the current compensated sum of machine u.
func (l *loadLedger) value(u platform.MachineID) float64 {
	return l.period[u] + l.comp[u]
}

// values returns a copy of all compensated sums.
func (l *loadLedger) values() []float64 {
	out := make([]float64, len(l.period))
	for u := range out {
		out[u] = l.period[u] + l.comp[u]
	}
	return out
}

// charge adds one contribution v to machine u.
func (l *loadLedger) charge(u platform.MachineID, v float64) {
	l.add(u, v)
	l.count[u]++
	l.touch(u)
}

// discharge removes one contribution v from machine u. When it was the
// machine's last contribution the sum is reset to exactly 0: an emptied
// machine owes nothing to float residue.
func (l *loadLedger) discharge(u platform.MachineID, v float64) {
	l.count[u]--
	if l.count[u] == 0 {
		l.period[u] = 0
		l.comp[u] = 0
	} else {
		l.add(u, -v)
	}
	l.touch(u)
}

// add adds v to machine u's running sum with Neumaier compensation,
// bounding the drift of long add/remove sequences to one rounding of the
// current magnitude instead of one per operation.
func (l *loadLedger) add(u platform.MachineID, v float64) {
	s := l.period[u]
	t := s + v
	if math.Abs(s) >= math.Abs(v) {
		l.comp[u] += (s - t) + v
	} else {
		l.comp[u] += (v - t) + s
	}
	l.period[u] = t
}

// touch marks machine u's tournament-tree leaf stale; the stamp array
// dedupes so a machine appears in the dirty list once between flushes.
func (l *loadLedger) touch(u platform.MachineID) {
	if l.stamp[u] == l.stampID {
		return
	}
	l.stamp[u] = l.stampID
	l.dirty = append(l.dirty, u)
}

// flush replays the dirty machines into the tournament tree, O(log m)
// each. Max reads amortize it; pure mutation sequences never pay.
func (l *loadLedger) flush() {
	if len(l.dirty) == 0 {
		return
	}
	for _, u := range l.dirty {
		k := l.treeBase + int(u)
		l.tree[k] = l.period[u] + l.comp[u]
		for k >>= 1; k >= 1; k >>= 1 {
			a, b := l.tree[2*k], l.tree[2*k+1]
			if a >= b {
				l.tree[k] = a
			} else {
				l.tree[k] = b
			}
		}
	}
	l.dirty = l.dirty[:0]
	l.stampID++
}

// max returns the current maximum machine sum.
func (l *loadLedger) max() float64 {
	l.flush()
	return l.tree[1]
}

// best returns the maximum machine sum and the smallest machine attaining
// it (platform.NoMachine while every sum is zero), matching Evaluate's
// tie-break.
func (l *loadLedger) best() (float64, platform.MachineID) {
	l.flush()
	best := l.tree[1]
	if best <= 0 {
		return 0, platform.NoMachine
	}
	k := 1
	for k < l.treeBase {
		if l.tree[2*k] >= l.tree[2*k+1] {
			k = 2 * k
		} else {
			k = 2*k + 1
		}
	}
	return best, platform.MachineID(k - l.treeBase)
}
