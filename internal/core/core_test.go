package core

import (
	"math"
	"math/rand"
	"testing"

	"microfab/internal/app"
	"microfab/internal/failure"
	"microfab/internal/platform"
)

// twoTaskInstance builds a hand-checkable chain: T0 -> T1, one machine per
// task available.
//
//	w = [[100, 200], [300, 400]]
//	f = [[0.5, 0.0], [0.0, 0.2]]
func twoTaskInstance(t *testing.T) *Instance {
	t.Helper()
	a := app.MustChain([]app.TypeID{0, 1})
	p, err := platform.New([][]float64{{100, 200}, {300, 400}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := failure.New([][]float64{{0.5, 0.0}, {0.0, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestProductCountsHandComputed(t *testing.T) {
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(0, 0) // T0 on M0: f=0.5 -> F=2
	m.Assign(1, 1) // T1 on M1: f=0.2 -> F=1.25
	x, err := ProductCounts(in, m)
	if err != nil {
		t.Fatal(err)
	}
	// x[1] = 1/(1-0.2) = 1.25; x[0] = 2 * 1.25 = 2.5.
	if math.Abs(x[1]-1.25) > 1e-12 || math.Abs(x[0]-2.5) > 1e-12 {
		t.Fatalf("x = %v, want [2.5, 1.25]", x)
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(0, 0)
	m.Assign(1, 1)
	ev, err := Evaluate(in, m)
	if err != nil {
		t.Fatal(err)
	}
	// period(M0) = 2.5·100 = 250; period(M1) = 1.25·400 = 500.
	if math.Abs(ev.MachinePeriods[0]-250) > 1e-9 {
		t.Fatalf("period(M0) = %v, want 250", ev.MachinePeriods[0])
	}
	if math.Abs(ev.MachinePeriods[1]-500) > 1e-9 {
		t.Fatalf("period(M1) = %v, want 500", ev.MachinePeriods[1])
	}
	if ev.Period != ev.MachinePeriods[1] || ev.Critical != 1 {
		t.Fatalf("critical machine wrong: %v / M%d", ev.Period, ev.Critical+1)
	}
	if math.Abs(ev.Throughput-1.0/500) > 1e-15 {
		t.Fatalf("throughput = %v", ev.Throughput)
	}
}

func TestEvaluateSameMachine(t *testing.T) {
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(0, 0) // F=2
	m.Assign(1, 0) // T1 on M0: f=0 -> F=1, w=300
	ev, err := Evaluate(in, m)
	if err != nil {
		t.Fatal(err)
	}
	// x[1]=1, x[0]=2; period(M0) = 2·100 + 1·300 = 500.
	if math.Abs(ev.Period-500) > 1e-9 || ev.Critical != 0 {
		t.Fatalf("period = %v on M%d, want 500 on M1", ev.Period, ev.Critical+1)
	}
}

func TestIncompleteMappingErrors(t *testing.T) {
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(0, 0)
	if _, err := Evaluate(in, m); err == nil {
		t.Fatal("incomplete mapping evaluated")
	}
	if p := Period(in, m); !math.IsInf(p, 1) {
		t.Fatalf("Period(incomplete) = %v, want +Inf", p)
	}
}

func TestCheckRuleOneToOne(t *testing.T) {
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(0, 0)
	m.Assign(1, 0)
	if err := m.CheckRule(in.App, OneToOne); err == nil {
		t.Fatal("one-to-one violation accepted")
	}
	m.Assign(1, 1)
	if err := m.CheckRule(in.App, OneToOne); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRuleSpecialized(t *testing.T) {
	a := app.MustChain([]app.TypeID{0, 1, 0})
	m := NewMapping(3)
	m.Assign(0, 0)
	m.Assign(1, 0) // different type on M0
	m.Assign(2, 1)
	if err := m.CheckRule(a, Specialized); err == nil {
		t.Fatal("specialization violation accepted")
	}
	m.Assign(1, 1)
	m.Assign(2, 0) // same type as task 0: allowed
	if err := m.CheckRule(a, Specialized); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckRule(a, GeneralRule); err != nil {
		t.Fatal(err)
	}
}

func TestMappingHelpers(t *testing.T) {
	m := NewMapping(3)
	if m.Complete() {
		t.Fatal("empty mapping claims complete")
	}
	m.Assign(0, 2)
	m.Assign(1, 2)
	m.Assign(2, 0)
	if !m.Complete() {
		t.Fatal("complete mapping claims incomplete")
	}
	if got := m.TasksOn(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("TasksOn(2) = %v", got)
	}
	if got := m.UsedMachines(); len(got) != 2 {
		t.Fatalf("UsedMachines = %v", got)
	}
	c := m.Clone()
	c.Assign(0, 1)
	if m.Machine(0) != 2 {
		t.Fatal("clone mutated the original")
	}
	s := m.Slice()
	s[0] = 9
	if m.Machine(0) != 2 {
		t.Fatal("Slice shares memory")
	}
	if m.String() != "T1->M3 T2->M3 T3->M1" {
		t.Fatalf("String = %q", m.String())
	}
	m.Unassign(1)
	if m.Machine(1) != platform.NoMachine {
		t.Fatal("Unassign had no effect")
	}
	if got := m.String(); got != "T1->M3 T2->? T3->M1" {
		t.Fatalf("String = %q", got)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	a := app.MustChain([]app.TypeID{0, 1})
	p, _ := platform.New([][]float64{{100, 200}, {300, 400}})
	f, _ := failure.New([][]float64{{0.1, 0.1}, {0.1, 0.1}})
	if _, err := NewInstance(nil, p, f); err == nil {
		t.Fatal("nil app accepted")
	}
	shortP, _ := platform.New([][]float64{{100, 200}})
	if _, err := NewInstance(a, shortP, f); err == nil {
		t.Fatal("task-count mismatch accepted")
	}
	shortF, _ := failure.New([][]float64{{0.1, 0.1}})
	if _, err := NewInstance(a, p, shortF); err == nil {
		t.Fatal("failure-row mismatch accepted")
	}
	narrowF, _ := failure.New([][]float64{{0.1}, {0.1}})
	if _, err := NewInstance(a, p, narrowF); err == nil {
		t.Fatal("machine-count mismatch accepted")
	}
	// Typed-time violation: same type, different w.
	a2 := app.MustChain([]app.TypeID{0, 0})
	if _, err := NewInstance(a2, p, f); err == nil {
		t.Fatal("typed-time violation accepted")
	}
}

func TestPlanInputs(t *testing.T) {
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(0, 0)
	m.Assign(1, 1)
	plan, err := PlanInputs(in, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Single source T0 with x=2.5 → 250 raw products for 100 outputs.
	if len(plan.PerSource) != 1 || math.Abs(plan.PerSource[0]-250) > 1e-9 {
		t.Fatalf("plan = %+v", plan)
	}
	if _, err := PlanInputs(in, m, 0); err == nil {
		t.Fatal("xout=0 accepted")
	}
}

func TestLowerBoundHoldsOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 2+rng.Intn(5), 2+rng.Intn(3))
		lb := LowerBoundPeriod(in)
		// Any complete random mapping must have period >= lb.
		m := NewMapping(in.N())
		for i := 0; i < in.N(); i++ {
			m.Assign(app.TaskID(i), platform.MachineID(rng.Intn(in.M())))
		}
		if p := Period(in, m); p < lb-1e-9 {
			t.Fatalf("trial %d: period %v below lower bound %v", trial, p, lb)
		}
	}
}

// randomInstance builds a random chain instance with per-task types
// (one distinct type per task, so typed-time checks are vacuous).
func randomInstance(rng *rand.Rand, n, m int) *Instance {
	types := make([]app.TypeID, n)
	for i := range types {
		types[i] = app.TypeID(i)
	}
	a := app.MustChain(types)
	w := make([][]float64, n)
	f := make([][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, m)
		f[i] = make([]float64, m)
		for u := 0; u < m; u++ {
			w[i][u] = 100 + rng.Float64()*900
			f[i][u] = rng.Float64() * 0.2
		}
	}
	p, err := platform.New(w)
	if err != nil {
		panic(err)
	}
	fm, err := failure.New(f)
	if err != nil {
		panic(err)
	}
	in, err := NewInstance(a, p, fm)
	if err != nil {
		panic(err)
	}
	return in
}

func TestProductCountsMonotoneInFailure(t *testing.T) {
	// Property: raising any failure rate on the assigned machine cannot
	// decrease any x[i] upstream of it.
	a := app.MustChain([]app.TypeID{0, 1, 2})
	p, _ := platform.NewHomogeneous(3, 3, 100)
	mk := func(f1 float64) []float64 {
		f, err := failure.New([][]float64{
			{0.01, 0.01, 0.01},
			{f1, f1, f1},
			{0.01, 0.01, 0.01},
		})
		if err != nil {
			t.Fatal(err)
		}
		in, err := NewInstance(a, p, f)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMapping(3)
		m.Assign(0, 0)
		m.Assign(1, 1)
		m.Assign(2, 2)
		x, err := ProductCounts(in, m)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	lo := mk(0.01)
	hi := mk(0.10)
	if hi[0] <= lo[0] || hi[1] <= lo[1] {
		t.Fatalf("x not monotone: lo=%v hi=%v", lo, hi)
	}
	if math.Abs(hi[2]-lo[2]) > 1e-12 {
		t.Fatalf("x[2] changed: %v vs %v", hi[2], lo[2])
	}
}

func TestPartialProductCounts(t *testing.T) {
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(1, 1) // only the root assigned
	x := PartialProductCounts(in, m)
	if math.Abs(x[1]-1.25) > 1e-12 {
		t.Fatalf("x[1] = %v, want 1.25", x[1])
	}
	if x[0] != 0 {
		t.Fatalf("x[0] = %v, want 0 (unassigned)", x[0])
	}
	m.Assign(0, 0)
	x = PartialProductCounts(in, m)
	if math.Abs(x[0]-2.5) > 1e-12 {
		t.Fatalf("x[0] = %v, want 2.5", x[0])
	}
}

func TestJoinTreeEvaluation(t *testing.T) {
	// Figure-1 shape: T0->T1->T3, T2->T3 (join), all distinct types.
	b := app.NewBuilder()
	t0 := b.AddTask(0, "")
	t1 := b.AddTask(1, "")
	t2 := b.AddTask(2, "")
	t3 := b.Join(3, "join", t1, t2)
	b.AddDep(t0, t1)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := platform.NewHomogeneous(4, 4, 100)
	f, _ := failure.New([][]float64{
		{0.5, 0.5, 0.5, 0.5},
		{0, 0, 0, 0},
		{0.2, 0.2, 0.2, 0.2},
		{0, 0, 0, 0},
	})
	in, err := NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMapping(4)
	for i := 0; i < 4; i++ {
		m.Assign(app.TaskID(i), platform.MachineID(i))
	}
	x, err := ProductCounts(in, m)
	if err != nil {
		t.Fatal(err)
	}
	// x[t3]=1, x[t1]=1, x[t2]=1.25, x[t0]=2 — each branch feeds the join
	// independently.
	if x[t3] != 1 || x[t1] != 1 || math.Abs(x[t2]-1.25) > 1e-12 || x[t0] != 2 {
		t.Fatalf("x = %v", x)
	}
	// Two sources: t0 and t2.
	plan, err := PlanInputs(in, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PerSource) != 2 {
		t.Fatalf("%d sources planned", len(plan.PerSource))
	}
	if math.Abs(plan.Total-(20+12.5)) > 1e-9 {
		t.Fatalf("total inputs = %v, want 32.5", plan.Total)
	}
}

func TestRuleStrings(t *testing.T) {
	if OneToOne.String() != "one-to-one" || Specialized.String() != "specialized" || GeneralRule.String() != "general" {
		t.Fatal("rule strings wrong")
	}
}
