// Rebind contract: a pooled engine repointed at another same-shape
// instance must behave bit-identically to a freshly allocated one, and a
// shape mismatch must refuse without touching the receiver.
package core_test

import (
	"math"
	"testing"

	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

func rebindInstances(t *testing.T) (a, b, other *core.Instance) {
	t.Helper()
	var err error
	if a, err = gen.Chain(gen.Default(12, 3, 5), gen.RNG(1)); err != nil {
		t.Fatal(err)
	}
	if b, err = gen.Chain(gen.Default(12, 3, 5), gen.RNG(2)); err != nil {
		t.Fatal(err)
	}
	if other, err = gen.Chain(gen.Default(10, 3, 5), gen.RNG(3)); err != nil {
		t.Fatal(err)
	}
	return a, b, other
}

// fillEngines walks the reverse-topological order assigning task i to
// machine i%m on both engines, comparing every step.
func comparePricers(t *testing.T, in *core.Instance, got, want *core.Pricer) {
	t.Helper()
	m := in.M()
	for _, i := range in.App.ReverseTopological() {
		u := platform.MachineID(int(i) % m)
		if err := got.Assign(i, u); err != nil {
			t.Fatal(err)
		}
		if err := want.Assign(i, u); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Max()) != math.Float64bits(want.Max()) {
			t.Fatalf("task %d: rebound pricer max %v, fresh %v", i, got.Max(), want.Max())
		}
	}
	for u := 0; u < m; u++ {
		mu := platform.MachineID(u)
		if math.Float64bits(got.Load(mu)) != math.Float64bits(want.Load(mu)) {
			t.Fatalf("machine %d: rebound load %v, fresh %v", u, got.Load(mu), want.Load(mu))
		}
	}
}

func TestPricerRebind(t *testing.T) {
	a, b, other := rebindInstances(t)
	p := core.NewPricer(a)
	// Dirty the engine on a first.
	for _, i := range a.App.ReverseTopological() {
		if err := p.Assign(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if p.Rebind(other) {
		t.Fatal("rebind accepted a shape mismatch (n=10 vs 12)")
	}
	if !p.Complete() {
		t.Fatal("failed rebind touched the receiver")
	}
	if !p.Rebind(b) {
		t.Fatal("same-shape rebind refused")
	}
	if p.Complete() || p.Max() != 0 {
		t.Fatalf("rebind did not reset: nAssigned complete=%v max=%v", p.Complete(), p.Max())
	}
	comparePricers(t, b, p, core.NewPricer(b))
}

func TestEvaluatorRebind(t *testing.T) {
	a, b, other := rebindInstances(t)
	e := core.NewEvaluator(a)
	for _, i := range a.App.ReverseTopological() {
		if err := e.Assign(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if e.Rebind(other) {
		t.Fatal("rebind accepted a shape mismatch")
	}
	if !e.Rebind(b) {
		t.Fatal("same-shape rebind refused")
	}
	fresh := core.NewEvaluator(b)
	m := b.M()
	for _, i := range b.App.ReverseTopological() {
		u := platform.MachineID(int(i) % m)
		if err := e.Assign(i, u); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Assign(i, u); err != nil {
			t.Fatal(err)
		}
		gp, _ := e.Best()
		wp, _ := fresh.Best()
		if math.Float64bits(gp) != math.Float64bits(wp) {
			t.Fatalf("task %d: rebound evaluator period %v, fresh %v", i, gp, wp)
		}
	}
	// And the from-scratch oracle agrees.
	ev, err := core.Evaluate(b, e.Mapping())
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := e.Best(); math.Abs(p-ev.Period) > 1e-12*ev.Period {
		t.Fatalf("rebound evaluator period %v, Evaluate %v", p, ev.Period)
	}
	if e.M() != m || core.NewPricer(b).M() != m {
		t.Fatalf("M() accessors broken: %d vs %d", e.M(), m)
	}
}
