package core

import (
	"fmt"
	"math"

	"microfab/internal/app"
	"microfab/internal/platform"
)

// Evaluator is a stateful incremental evaluation engine for mappings under
// construction. Where Evaluate walks all n tasks and m machines on every
// call, an Evaluator maintains the product counts x[i], the per-machine
// periods and the current maximum period across mutations, so that the
// search loops of the exact solver and the heuristics pay only for what a
// step actually changes:
//
//   - Assign(i, u) reprices exactly the tasks whose x-value depends on i's
//     placement — i itself plus its priced in-tree prefix (the tasks that
//     feed it, transitively). In the root-first order used by every solver
//     in this repository the prefix is empty and Assign is O(log m).
//   - Unassign(i) removes the same set; LIFO push/pop search stacks
//     therefore run in O(depth) per node instead of O(n).
//   - Best reads the maximum machine period from a lazily-maintained
//     tournament tree: mutations only mark machines dirty, a max read
//     flushes each dirty machine in O(log m). Search interiors that never
//     read the maximum pay nothing for it.
//
// Invariants maintained after every operation:
//
//   - a task is *priced* iff it is assigned and its successor chain down to
//     the root is fully assigned; x[i] = F(i,a(i))·x[succ(i)] exactly as in
//     ProductCounts (same multiplication order, hence bit-identical values);
//     unpriced tasks have x = 0, matching PartialProductCounts;
//   - period(Mu) = Σ x[j]·w[j][u] over priced tasks j on u, kept as a
//     Neumaier-compensated running sum so that long Assign/Unassign
//     sequences do not drift from a from-scratch summation (a machine whose
//     last priced task leaves is reset to exactly 0);
//   - Best() = (max_u period(Mu), smallest u attaining it), the same
//     tie-break as Evaluate.
//
// The per-machine sums and the lazy maximum live in a loadLedger, shared
// with SplitEvaluator (the fractional-mapping counterpart).
//
// An Evaluator is not safe for concurrent use; give each goroutine its own.
type Evaluator struct {
	in *Instance

	assign  []platform.MachineID
	priced  []bool
	x       []float64 // x[i] when priced, 0 otherwise
	contrib []float64 // x[i]·w[i][a(i)] when priced, 0 otherwise

	led loadLedger

	nAssigned int

	// scratch for the iterative price/unprice walks.
	stack []app.TaskID
}

// NewEvaluator returns an Evaluator over the instance with every task
// unassigned.
func NewEvaluator(in *Instance) *Evaluator {
	n, m := in.N(), in.M()
	e := &Evaluator{
		in:      in,
		assign:  make([]platform.MachineID, n),
		priced:  make([]bool, n),
		x:       make([]float64, n),
		contrib: make([]float64, n),
		led:     newLoadLedger(m),
	}
	for i := range e.assign {
		e.assign[i] = platform.NoMachine
	}
	return e
}

// NewEvaluatorFrom returns an Evaluator preloaded with the (possibly
// partial) mapping. The mapping must cover exactly the instance's tasks and
// reference only machines of the platform.
func NewEvaluatorFrom(in *Instance, m *Mapping) (*Evaluator, error) {
	if m.Len() != in.N() {
		return nil, fmt.Errorf("core: mapping covers %d tasks, instance has %d", m.Len(), in.N())
	}
	e := NewEvaluator(in)
	for _, i := range in.App.ReverseTopological() {
		if u := m.Machine(i); u != platform.NoMachine {
			if err := e.Assign(i, u); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// Clone returns an independent Evaluator with the same instance and the
// same incremental state: assignments, pricing, per-machine sums and the
// lazy maximum. Mutating either copy never affects the other, so a search
// can fan one evaluator out across goroutines by giving each worker its
// own clone (the underlying Instance is immutable and stays shared).
func (e *Evaluator) Clone() *Evaluator {
	return &Evaluator{
		in:        e.in,
		assign:    append([]platform.MachineID(nil), e.assign...),
		priced:    append([]bool(nil), e.priced...),
		x:         append([]float64(nil), e.x...),
		contrib:   append([]float64(nil), e.contrib...),
		led:       e.led.clone(),
		nAssigned: e.nAssigned,
	}
}

// Rebind repoints the Evaluator at another instance of the same (n, m)
// shape and resets every task to unassigned, reusing all allocated state
// (the Pricer.Rebind counterpart backing the serving layer's per-(n, m)
// engine pools). It reports false — receiver untouched — when the shapes
// differ.
func (e *Evaluator) Rebind(in *Instance) bool {
	if in.N() != len(e.assign) || in.M() != len(e.led.period) {
		return false
	}
	e.in = in
	e.Reset()
	return true
}

// M returns the number of machines covered.
func (e *Evaluator) M() int { return len(e.led.period) }

// Reset returns the Evaluator to the all-unassigned state.
func (e *Evaluator) Reset() {
	for i := range e.assign {
		e.assign[i] = platform.NoMachine
		e.priced[i] = false
		e.x[i] = 0
		e.contrib[i] = 0
	}
	e.led.reset()
	e.nAssigned = 0
}

// Len returns the number of tasks covered.
func (e *Evaluator) Len() int { return len(e.assign) }

// Complete reports whether every task is assigned.
func (e *Evaluator) Complete() bool { return e.nAssigned == len(e.assign) }

// Machine returns a(i), or platform.NoMachine when unassigned.
func (e *Evaluator) Machine(i app.TaskID) platform.MachineID { return e.assign[i] }

// X returns the current product count of task i (0 when its successor
// chain to the root is not fully assigned), matching PartialProductCounts.
func (e *Evaluator) X(i app.TaskID) float64 { return e.x[i] }

// MachinePeriod returns the current period(Mu) of machine u.
func (e *Evaluator) MachinePeriod(u platform.MachineID) float64 {
	return e.led.value(u)
}

// Demand returns the product count required downstream of task i —
// x[succ(i)], or 1 at the root — and whether it is currently known (the
// successor is priced).
func (e *Evaluator) Demand(i app.TaskID) (float64, bool) {
	s := e.in.App.Successor(i)
	if s == app.NoTask {
		return 1, true
	}
	if !e.priced[s] {
		return 0, false
	}
	return e.x[s], true
}

// Trial returns the period machine u would reach if it also carried task i,
// without mutating anything: period(Mu) + x[i]·w[i][u] with x[i] priced on
// u. The second result is false when i's downstream demand is unknown
// (successor chain not fully assigned), in which case the period returned
// is meaningless.
func (e *Evaluator) Trial(i app.TaskID, u platform.MachineID) (float64, bool) {
	d, ok := e.Demand(i)
	if !ok {
		return math.Inf(1), false
	}
	xi := e.in.Failures.Inflation(i, u) * d
	return e.led.value(u) + xi*e.in.Platform.Time(i, u), true
}

// TrialAll writes, for every machine u, the period u would reach if it also
// carried task i — one pass over the instance's structure-of-arrays rows
// and the ledger's per-machine sums instead of m Trial calls, which each
// redo the demand lookup, the inflation division and the time indirection.
// out must have length M. It returns false (out untouched) when i's
// downstream demand is unknown. Each out[u] is bit-equal to the
// corresponding Trial(i, u): the cached inflation bits are exactly
// Failures.Inflation's and the multiplication order is identical. The
// 4-wide unroll is measured, not decorative: unlike Pricer.PriceAllAt
// (whose range loop the compiler already bounds-check-eliminates), this
// loop reads two ledger rows besides the tables, and unrolling it wins
// ~8-10% on BenchmarkTrialAll at m=8..16.
func (e *Evaluator) TrialAll(i app.TaskID, out []float64) bool {
	d, ok := e.Demand(i)
	if !ok {
		return false
	}
	m := len(e.led.period)
	base := int(i) * m
	infl, tim := e.in.tables()
	inflRow := infl[base : base+m]
	timRow := tim[base : base+m]
	period := e.led.period[:m]
	comp := e.led.comp[:m]
	row := out[:m]
	u := 0
	for ; u+4 <= m; u += 4 {
		row[u] = (period[u] + comp[u]) + (inflRow[u]*d)*timRow[u]
		row[u+1] = (period[u+1] + comp[u+1]) + (inflRow[u+1]*d)*timRow[u+1]
		row[u+2] = (period[u+2] + comp[u+2]) + (inflRow[u+2]*d)*timRow[u+2]
		row[u+3] = (period[u+3] + comp[u+3]) + (inflRow[u+3]*d)*timRow[u+3]
	}
	for ; u < m; u++ {
		row[u] = (period[u] + comp[u]) + (inflRow[u]*d)*timRow[u]
	}
	return true
}

// MachinePeriodsInto writes the current per-machine periods into out
// (length M) without allocating — the batch-scan companion of
// MachinePeriods for hot loops that rescan every candidate machine.
func (e *Evaluator) MachinePeriodsInto(out []float64) {
	period := e.led.period
	comp := e.led.comp
	for u := range period {
		out[u] = period[u] + comp[u]
	}
}

// Contribution returns x[i]·w[i][a(i)], task i's current contribution to
// its machine's period (0 when unpriced). Candidate scoring in
// internal/search reads it to subtract a task's own load share in O(1).
func (e *Evaluator) Contribution(i app.TaskID) float64 { return e.contrib[i] }

// Assign sets a(i) = u, repricing the affected prefix of the in-tree and
// the touched machine periods incrementally. Assigning an already-assigned
// task moves it (no explicit Unassign needed).
func (e *Evaluator) Assign(i app.TaskID, u platform.MachineID) error {
	if int(i) < 0 || int(i) >= len(e.assign) {
		return fmt.Errorf("core: task %d out of range [0,%d)", int(i), len(e.assign))
	}
	if int(u) < 0 || int(u) >= len(e.led.period) {
		return fmt.Errorf("core: machine %d out of range [0,%d)", int(u), len(e.led.period))
	}
	if e.assign[i] == u {
		return nil
	}
	if e.priced[i] {
		e.unpriceSubtree(i)
	}
	if e.assign[i] == platform.NoMachine {
		e.nAssigned++
	}
	e.assign[i] = u
	e.priceSubtree(i)
	return nil
}

// Relocate moves the assigned task i to machine v — the local-search
// relocate move as a named kernel. It is Assign plus the check that i is
// indeed assigned (a relocate of an unassigned task is a seed bug, not a
// move), so search engines can state their intent and get the validation.
func (e *Evaluator) Relocate(i app.TaskID, v platform.MachineID) error {
	if int(i) < 0 || int(i) >= len(e.assign) {
		return fmt.Errorf("core: task %d out of range [0,%d)", int(i), len(e.assign))
	}
	if e.assign[i] == platform.NoMachine {
		return fmt.Errorf("core: relocate of unassigned task %d", int(i))
	}
	return e.Assign(i, v)
}

// Swap exchanges the machines of the assigned tasks i and j, repricing the
// affected in-tree region once. The equivalent Assign pair (i to a(j), then
// j to a(i)) walks any shared prefix twice over: when one task feeds the
// other — every swap on a chain — the first Assign unprices and reprices
// the deeper task's whole prefix only for the second Assign to redo it.
// Swap instead unprices the union of the two priced prefixes once, flips
// both assignments, and reprices the union once, which is what makes a
// swap probe cost ~half of two Assign walks on chains (see
// BenchmarkSwapKernel). Swapping a task with itself, or two tasks on the
// same machine, is a no-op.
func (e *Evaluator) Swap(i, j app.TaskID) error {
	if int(i) < 0 || int(i) >= len(e.assign) || int(j) < 0 || int(j) >= len(e.assign) {
		return fmt.Errorf("core: swap (%d, %d) out of range [0,%d)", int(i), int(j), len(e.assign))
	}
	u, v := e.assign[i], e.assign[j]
	if u == platform.NoMachine || v == platform.NoMachine {
		return fmt.Errorf("core: swap needs both tasks assigned (a(%d)=%d, a(%d)=%d)", int(i), int(u), int(j), int(v))
	}
	if i == j || u == v {
		return nil
	}
	// Unprice the union of the two priced prefixes. When one task sits in
	// the other's prefix the first walk already covers it, hence the
	// second guard (unpricing twice would discharge machines twice).
	if e.priced[i] {
		e.unpriceSubtree(i)
	}
	if e.priced[j] {
		e.unpriceSubtree(j)
	}
	e.assign[i], e.assign[j] = v, u
	// Reprice the union. priceSubtree(i) walks every assigned feeder of i,
	// so it reprices j too when j feeds i; the guard keeps the disjoint
	// and j-feeds-i cases from double-pricing.
	e.priceSubtree(i)
	if !e.priced[j] {
		e.priceSubtree(j)
	}
	return nil
}

// Unassign clears task i's machine, unpricing it and its priced prefix. A
// no-op when i is already unassigned.
func (e *Evaluator) Unassign(i app.TaskID) {
	if int(i) < 0 || int(i) >= len(e.assign) || e.assign[i] == platform.NoMachine {
		return
	}
	if e.priced[i] {
		e.unpriceSubtree(i)
	}
	e.assign[i] = platform.NoMachine
	e.nAssigned--
}

// Best returns the current maximum machine period and the smallest machine
// attaining it (platform.NoMachine while no task is priced), matching
// Evaluate's tie-break.
func (e *Evaluator) Best() (float64, platform.MachineID) {
	return e.led.best()
}

// Period returns the current maximum machine period.
func (e *Evaluator) Period() float64 {
	return e.led.max()
}

// Critical returns the machine attaining Period (NoMachine while empty).
func (e *Evaluator) Critical() platform.MachineID {
	_, u := e.Best()
	return u
}

// Mapping returns an independent snapshot of the current allocation.
func (e *Evaluator) Mapping() *Mapping { return FromSlice(e.assign) }

// ProductCounts returns a copy of the current x-values (0 for unpriced
// tasks), matching PartialProductCounts on the snapshot mapping.
func (e *Evaluator) ProductCounts() []float64 {
	return append([]float64(nil), e.x...)
}

// MachinePeriods returns a copy of the current per-machine periods.
func (e *Evaluator) MachinePeriods() []float64 {
	return e.led.values()
}

// Evaluation snapshots the incremental state as a full Evaluation. It
// errors when the mapping is incomplete, matching Evaluate.
func (e *Evaluator) Evaluation() (*Evaluation, error) {
	if !e.Complete() {
		return nil, fmt.Errorf("core: %w", ErrIncompleteMapping)
	}
	p, crit := e.Best()
	ev := &Evaluation{
		Period:         p,
		Critical:       crit,
		MachinePeriods: e.MachinePeriods(),
		ProductCounts:  e.ProductCounts(),
	}
	if ev.Period > 0 {
		ev.Throughput = 1 / ev.Period
	}
	return ev, nil
}

// --- internal machinery ---------------------------------------------------

// priceSubtree prices task i (if its downstream demand is known) and walks
// up the in-tree pricing every assigned predecessor whose x-value becomes
// computable. Tasks already priced cannot occur below an unpriced i, so the
// walk never re-prices.
func (e *Evaluator) priceSubtree(i app.TaskID) {
	d, ok := e.Demand(i)
	if !ok {
		return
	}
	e.priceTask(i, d)
	e.stack = e.stack[:0]
	e.stack = append(e.stack, i)
	for len(e.stack) > 0 {
		t := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		for _, p := range e.in.App.Predecessors(t) {
			if e.assign[p] == platform.NoMachine {
				continue // p's own prefix stays unpriced too
			}
			e.priceTask(p, e.x[t])
			e.stack = append(e.stack, p)
		}
	}
}

// unpriceSubtree removes task i and every priced task of its in-tree prefix
// from the machine sums. A priced predecessor implies a priced task (the
// pricing invariant), so the walk follows priced tasks only.
func (e *Evaluator) unpriceSubtree(i app.TaskID) {
	e.unpriceTask(i)
	e.stack = e.stack[:0]
	e.stack = append(e.stack, i)
	for len(e.stack) > 0 {
		t := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		for _, p := range e.in.App.Predecessors(t) {
			if !e.priced[p] {
				continue
			}
			e.unpriceTask(p)
			e.stack = append(e.stack, p)
		}
	}
}

func (e *Evaluator) priceTask(i app.TaskID, demand float64) {
	u := e.assign[i]
	xi := e.in.Failures.Inflation(i, u) * demand
	e.priced[i] = true
	e.x[i] = xi
	e.contrib[i] = xi * e.in.Platform.Time(i, u)
	e.led.charge(u, e.contrib[i])
}

func (e *Evaluator) unpriceTask(i app.TaskID) {
	u := e.assign[i]
	e.led.discharge(u, e.contrib[i])
	e.priced[i] = false
	e.x[i] = 0
	e.contrib[i] = 0
}
