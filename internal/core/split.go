package core

import (
	"fmt"
	"math"

	"microfab/internal/app"
	"microfab/internal/platform"
)

// SplitMapping is the paper's future-work extension: the instances of one
// task may be processed by several machines, dividing its workload.
// share[i][u] is the fraction of task i's processed products handled by
// machine u; each task's shares sum to 1.
//
// With blended failure rates the product count generalizes to
//
//	x[i] = demand / Σ_u share[i][u]·(1 − f[i][u])
//
// and machine u's period accumulates share[i][u]·x[i]·w[i][u].
type SplitMapping struct {
	share [][]float64
}

// NewSplitMapping returns an all-zero split mapping for n tasks over m
// machines.
func NewSplitMapping(n, m int) *SplitMapping {
	s := &SplitMapping{share: make([][]float64, n)}
	for i := range s.share {
		s.share[i] = make([]float64, m)
	}
	return s
}

// FromMapping lifts an integral mapping into the split representation.
func (m *Mapping) Split(numMachines int) *SplitMapping {
	s := NewSplitMapping(len(m.a), numMachines)
	for i, u := range m.a {
		if u != platform.NoMachine {
			s.share[i][u] = 1
		}
	}
	return s
}

// SetShare sets share[i][u].
func (s *SplitMapping) SetShare(i app.TaskID, u platform.MachineID, v float64) {
	s.share[i][u] = v
}

// Share returns share[i][u].
func (s *SplitMapping) Share(i app.TaskID, u platform.MachineID) float64 { return s.share[i][u] }

// Validate checks that every task's shares are nonnegative and sum to 1
// (within tol), and under the Specialized rule that no machine carries
// positive shares of two types.
func (s *SplitMapping) Validate(a *app.Application, rule Rule) error {
	const tol = 1e-9
	for i, row := range s.share {
		sum := 0.0
		for u, v := range row {
			if v < -tol {
				return fmt.Errorf("core: negative share %v for task %d on machine %d", v, i, u)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("core: task %d shares sum to %v, want 1", i, sum)
		}
	}
	if rule == Specialized {
		m := len(s.share[0])
		spec := make([]app.TypeID, m)
		for u := range spec {
			spec[u] = -1
		}
		for i, row := range s.share {
			ty := a.Type(app.TaskID(i))
			for u, v := range row {
				if v <= tol {
					continue
				}
				if spec[u] >= 0 && spec[u] != ty {
					return fmt.Errorf("core: machine %d carries shares of types %d and %d", u, spec[u], ty)
				}
				spec[u] = ty
			}
		}
	}
	return nil
}

// EvaluateSplit computes the period of a split mapping over the instance's
// in-tree.
func EvaluateSplit(in *Instance, s *SplitMapping) (*Evaluation, error) {
	n, m := in.N(), in.M()
	if len(s.share) != n || (n > 0 && len(s.share[0]) != m) {
		cols := 0
		if len(s.share) > 0 {
			cols = len(s.share[0])
		}
		return nil, fmt.Errorf("core: split mapping is %dx%d, instance is %dx%d", len(s.share), cols, n, m)
	}
	x := make([]float64, n)
	for _, i := range in.App.ReverseTopological() {
		demand := 1.0
		if succ := in.App.Successor(i); succ != app.NoTask {
			demand = x[succ]
		}
		surv := 0.0
		for u := 0; u < m; u++ {
			surv += s.share[i][u] * in.Failures.Survival(i, platform.MachineID(u))
		}
		if surv <= 0 {
			return nil, fmt.Errorf("core: task T%d has no productive share", int(i)+1)
		}
		x[i] = demand / surv
	}
	periods := make([]float64, m)
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		for u := 0; u < m; u++ {
			if s.share[i][u] == 0 {
				continue
			}
			periods[u] += s.share[i][u] * x[i] * in.Platform.Time(id, platform.MachineID(u))
		}
	}
	ev := &Evaluation{MachinePeriods: periods, ProductCounts: x, Critical: platform.NoMachine}
	for u, p := range periods {
		if p > ev.Period {
			ev.Period = p
			ev.Critical = platform.MachineID(u)
		}
	}
	if ev.Period > 0 {
		ev.Throughput = 1 / ev.Period
	}
	return ev, nil
}

// ReconfigEvaluate evaluates a general-rule mapping with a reconfiguration
// penalty: a machine running k > 1 distinct task types pays `reconfig` ms
// per type, per finished product, on top of its processing period (the
// machine cycles through its types once per output, reconfiguring between
// type runs). With reconfig = 0 this is exactly Evaluate — the paper's
// model, where general mappings are "not really useful because of the
// unaffordable reconfiguration costs".
func ReconfigEvaluate(in *Instance, m *Mapping, reconfig float64) (*Evaluation, error) {
	ev, err := Evaluate(in, m)
	if err != nil {
		return nil, err
	}
	if reconfig <= 0 {
		return ev, nil
	}
	types := make([]map[app.TypeID]bool, in.M())
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		u := m.Machine(id)
		if types[u] == nil {
			types[u] = map[app.TypeID]bool{}
		}
		types[u][in.App.Type(id)] = true
	}
	ev.Period = 0
	ev.Critical = platform.NoMachine
	for u := range ev.MachinePeriods {
		if k := len(types[u]); k > 1 {
			ev.MachinePeriods[u] += reconfig * float64(k)
		}
		if ev.MachinePeriods[u] > ev.Period {
			ev.Period = ev.MachinePeriods[u]
			ev.Critical = platform.MachineID(u)
		}
	}
	if ev.Period > 0 {
		ev.Throughput = 1 / ev.Period
	} else {
		ev.Throughput = 0
	}
	return ev, nil
}
