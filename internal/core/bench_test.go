// Benchmarks pitting the incremental Evaluator against from-scratch
// Evaluate on the mutation pattern that dominates every solver in this
// repository: remap one frontier task of an otherwise-complete mapping and
// read the new period. This is the per-node work of the exact DFS (at full
// depth), of the greedy candidate scans, and of any local-search move.
//
// Run with: go test -bench='EvaluateFull|EvaluatorIncremental' -benchmem ./internal/core
package core_test

import (
	"fmt"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// benchSetup draws an instance (chain or 3-branch in-tree) with a complete
// round-robin mapping and returns the frontier tasks (the sources, whose
// remapping reprices only themselves — the search-stack hot case).
func benchSetup(b *testing.B, shape string, n int) (*core.Instance, *core.Mapping, []app.TaskID) {
	b.Helper()
	pr := gen.Default(n, 5, 2+n/5)
	var in *core.Instance
	var err error
	switch shape {
	case "chain":
		in, err = gen.Chain(pr, gen.RNG(int64(n)))
	default:
		in, err = gen.InTree(pr, 3, gen.RNG(int64(n)))
	}
	if err != nil {
		b.Fatal(err)
	}
	mp := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		mp.Assign(app.TaskID(i), platform.MachineID(i%in.M()))
	}
	return in, mp, in.App.Sources()
}

func benchmarkEvaluateFull(b *testing.B, shape string, n int) {
	in, mp, frontier := benchSetup(b, shape, n)
	m := in.M()
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		i := frontier[k%len(frontier)]
		mp.Assign(i, platform.MachineID(k%m))
		ev, err := core.Evaluate(in, mp)
		if err != nil {
			b.Fatal(err)
		}
		_ = ev.Period
	}
}

func benchmarkEvaluatorIncremental(b *testing.B, shape string, n int) {
	in, mp, frontier := benchSetup(b, shape, n)
	m := in.M()
	ev, err := core.NewEvaluatorFrom(in, mp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		i := frontier[k%len(frontier)]
		if err := ev.Assign(i, platform.MachineID(k%m)); err != nil {
			b.Fatal(err)
		}
		p, _ := ev.Best()
		_ = p
	}
}

func BenchmarkEvaluateFullChain20(b *testing.B)  { benchmarkEvaluateFull(b, "chain", 20) }
func BenchmarkEvaluateFullChain50(b *testing.B)  { benchmarkEvaluateFull(b, "chain", 50) }
func BenchmarkEvaluateFullChain100(b *testing.B) { benchmarkEvaluateFull(b, "chain", 100) }

func BenchmarkEvaluateFullInTree20(b *testing.B)  { benchmarkEvaluateFull(b, "intree", 20) }
func BenchmarkEvaluateFullInTree50(b *testing.B)  { benchmarkEvaluateFull(b, "intree", 50) }
func BenchmarkEvaluateFullInTree100(b *testing.B) { benchmarkEvaluateFull(b, "intree", 100) }

func BenchmarkEvaluatorIncrementalChain20(b *testing.B) {
	benchmarkEvaluatorIncremental(b, "chain", 20)
}
func BenchmarkEvaluatorIncrementalChain50(b *testing.B) {
	benchmarkEvaluatorIncremental(b, "chain", 50)
}
func BenchmarkEvaluatorIncrementalChain100(b *testing.B) {
	benchmarkEvaluatorIncremental(b, "chain", 100)
}

func BenchmarkEvaluatorIncrementalInTree20(b *testing.B) {
	benchmarkEvaluatorIncremental(b, "intree", 20)
}
func BenchmarkEvaluatorIncrementalInTree50(b *testing.B) {
	benchmarkEvaluatorIncremental(b, "intree", 50)
}
func BenchmarkEvaluatorIncrementalInTree100(b *testing.B) {
	benchmarkEvaluatorIncremental(b, "intree", 100)
}

// benchSplitSetup draws an instance with a random complete split mapping
// plus a bank of precomputed replacement rows, so the benchmark loops
// measure pricing only, not RNG work.
func benchSplitSetup(b *testing.B, shape string, n, m int) (*core.Instance, *core.SplitMapping, [][]float64) {
	b.Helper()
	var in *core.Instance
	var err error
	if shape == "intree" {
		in, err = gen.InTree(gen.Default(n, 5, m), 8, gen.RNG(int64(n*m)))
	} else {
		in, err = gen.Chain(gen.Default(n, 5, m), gen.RNG(int64(n*m)))
	}
	if err != nil {
		b.Fatal(err)
	}
	rng := gen.RNG(int64(n + m))
	split := randomSplit(in, rng)
	rows := make([][]float64, 64)
	scratch := core.NewSplitMapping(in.N(), in.M())
	for k := range rows {
		setRandomRow(scratch, app.TaskID(k%in.N()), in.M(), rng)
		rows[k] = make([]float64, in.M())
		for u := 0; u < in.M(); u++ {
			rows[k][u] = scratch.Share(app.TaskID(k%in.N()), platform.MachineID(u))
		}
	}
	return in, split, rows
}

// BenchmarkSplitFullReprice is the pre-SplitEvaluator cost of one
// water-filling probe: mutate one task's share row, then re-walk the full
// n×m share matrix through EvaluateSplit.
func BenchmarkSplitFullReprice(b *testing.B) {
	for _, size := range []struct {
		shape string
		n, m  int
	}{{"chain", 50, 10}, {"chain", 100, 50}, {"intree", 100, 50}} {
		b.Run(fmt.Sprintf("%s_n=%d_m=%d", size.shape, size.n, size.m), func(b *testing.B) {
			in, split, rows := benchSplitSetup(b, size.shape, size.n, size.m)
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				i := app.TaskID(k % in.N())
				row := rows[k%len(rows)]
				for u := 0; u < in.M(); u++ {
					split.SetShare(i, platform.MachineID(u), row[u])
				}
				ev, err := core.EvaluateSplit(in, split)
				if err != nil {
					b.Fatal(err)
				}
				_ = ev.Period
			}
		})
	}
}

// BenchmarkSplitEvaluatorSetShares is the same probe through the
// incremental engine: SetShares reprices only the task and its in-tree
// prefix. Compare ns/op against BenchmarkSplitFullReprice (the acceptance
// bar is >= 5x).
func BenchmarkSplitEvaluatorSetShares(b *testing.B) {
	for _, size := range []struct {
		shape string
		n, m  int
	}{{"chain", 50, 10}, {"chain", 100, 50}, {"intree", 100, 50}} {
		b.Run(fmt.Sprintf("%s_n=%d_m=%d", size.shape, size.n, size.m), func(b *testing.B) {
			in, split, rows := benchSplitSetup(b, size.shape, size.n, size.m)
			e, err := core.NewSplitEvaluator(in, split)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				i := app.TaskID(k % in.N())
				if err := e.SetShares(i, rows[k%len(rows)]); err != nil {
					b.Fatal(err)
				}
				_ = e.Period()
			}
		})
	}
}

// BenchmarkEvaluatorPushPop measures the exact solver's per-node pattern in
// isolation: a full root-first push of every task followed by a full pop,
// i.e. 2n Evaluator operations per iteration.
func BenchmarkEvaluatorPushPop(b *testing.B) {
	for _, n := range []int{20, 50, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in, _, _ := benchSetup(b, "chain", n)
			ev := core.NewEvaluator(in)
			order := in.App.ReverseTopological()
			m := in.M()
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				for d, i := range order {
					_ = ev.Assign(i, platform.MachineID((d+k)%m))
				}
				for d := len(order) - 1; d >= 0; d-- {
					ev.Unassign(order[d])
				}
			}
		})
	}
}

// BenchmarkPricerPushPop is the same pattern through the pricing-only
// mode — the per-node cost the exact DFS actually pays after dropping the
// ledger. Compare ns/op against BenchmarkEvaluatorPushPop.
func BenchmarkPricerPushPop(b *testing.B) {
	for _, n := range []int{20, 50, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in, _, _ := benchSetup(b, "chain", n)
			pr := core.NewPricer(in)
			order := in.App.ReverseTopological()
			m := in.M()
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				for d, i := range order {
					_ = pr.Assign(i, platform.MachineID((d+k)%m))
				}
				for d := len(order) - 1; d >= 0; d-- {
					pr.Unassign(order[d])
				}
				_ = pr.Max()
			}
		})
	}
}

// benchSwapSetup draws a chain with a round-robin mapping and a cycle of
// task pairs to exchange. kind "adjacent" swaps (i, i+1) interior pairs —
// the local-search workhorse, where the two prefixes overlap almost
// completely — and "random" swaps arbitrary pairs (partial overlap).
func benchSwapSetup(b *testing.B, kind string, n int) (*core.Evaluator, [][2]app.TaskID) {
	b.Helper()
	in, _, _ := benchSetup(b, "chain", n)
	ev := core.NewEvaluator(in)
	for i := 0; i < n; i++ {
		_ = ev.Assign(app.TaskID(i), platform.MachineID(i%in.M()))
	}
	var pairs [][2]app.TaskID
	if kind == "adjacent" {
		for i := 0; i+1 < n; i++ {
			pairs = append(pairs, [2]app.TaskID{app.TaskID(i), app.TaskID(i + 1)})
		}
	} else {
		for k := 0; k < 64; k++ {
			i, j := (k*7)%n, (k*13+5)%n
			if i == j {
				j = (j + 1) % n
			}
			pairs = append(pairs, [2]app.TaskID{app.TaskID(i), app.TaskID(j)})
		}
	}
	return ev, pairs
}

// BenchmarkSwapKernel prices one swap probe (exchange, read the period,
// exchange back) through the native kernel. The acceptance bar of the
// pricing-core refactor: ≤ ~60% of BenchmarkSwapTwoAssign on the adjacent
// cases, where the shared prefix dominates.
func BenchmarkSwapKernel(b *testing.B) {
	for _, c := range []struct {
		kind string
		n    int
	}{{"adjacent", 50}, {"adjacent", 120}, {"random", 50}, {"random", 120}} {
		b.Run(fmt.Sprintf("%s_n=%d", c.kind, c.n), func(b *testing.B) {
			ev, pairs := benchSwapSetup(b, c.kind, c.n)
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				pr := pairs[k%len(pairs)]
				_ = ev.Swap(pr[0], pr[1])
				_ = ev.Period()
				_ = ev.Swap(pr[0], pr[1])
			}
		})
	}
}

// BenchmarkSwapTwoAssign prices the identical probe cycle as two Assign
// walks per exchange — the only way to swap before the kernel existed.
func BenchmarkSwapTwoAssign(b *testing.B) {
	for _, c := range []struct {
		kind string
		n    int
	}{{"adjacent", 50}, {"adjacent", 120}, {"random", 50}, {"random", 120}} {
		b.Run(fmt.Sprintf("%s_n=%d", c.kind, c.n), func(b *testing.B) {
			ev, pairs := benchSwapSetup(b, c.kind, c.n)
			b.ReportAllocs()
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				pr := pairs[k%len(pairs)]
				u, v := ev.Machine(pr[0]), ev.Machine(pr[1])
				_ = ev.Assign(pr[0], v)
				_ = ev.Assign(pr[1], u)
				_ = ev.Period()
				_ = ev.Assign(pr[0], u)
				_ = ev.Assign(pr[1], v)
			}
		})
	}
}
