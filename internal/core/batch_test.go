// Differential tests for the batch pricing kernels: Evaluator.TrialAll and
// Pricer.PriceAll must return, for every machine, exactly the bits of the
// corresponding scalar Trial call — not merely close. Bit-equality is what
// lets every consumer (exact child ordering, heuristics argmin, search
// scans, oto pruning) switch to the one-pass kernels without changing a
// single decision, so it is checked with ==, never a tolerance.
package core_test

import (
	"fmt"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// checkTrialAllBitEqual compares, for every task, the TrialAll row against
// m individual Trial calls: the ok flags must agree and every priced load
// must be bit-identical.
func checkTrialAllBitEqual(t testing.TB, in *core.Instance, ev *core.Evaluator, step string) {
	t.Helper()
	m := in.M()
	out := make([]float64, m)
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		okAll := ev.TrialAll(id, out)
		if _, okOne := ev.Trial(id, 0); okAll != okOne {
			t.Fatalf("%s: TrialAll(T%d) ok=%v, Trial ok=%v", step, i+1, okAll, okOne)
		}
		if !okAll {
			continue
		}
		for u := 0; u < m; u++ {
			want, _ := ev.Trial(id, platform.MachineID(u))
			if out[u] != want {
				t.Fatalf("%s: TrialAll(T%d)[M%d] = %v, Trial = %v (must be bit-equal)",
					step, i+1, u+1, out[u], want)
			}
		}
	}
}

// TestTrialAllDifferential drives an Evaluator through the same 54-instance
// random-mutation corpus as TestEvaluatorDifferential (chains and in-trees,
// all three rules) and checks the batch row against the scalar Trial after
// every step. The comparison is strict bit-equality at every partial state
// the mutation walk reaches, including states with unknown demands (both
// sides must report them) and the drained end state.
func TestTrialAllDifferential(t *testing.T) {
	const instances = 54
	const steps = 220
	for k := 0; k < instances; k++ {
		k := k
		t.Run(fmt.Sprintf("inst%02d", k), func(t *testing.T) {
			t.Parallel()
			rule := core.Rule(k % 3)
			pr := gen.Default(4+k%17, 2+k%3, 6+k%5)
			if rule == core.OneToOne {
				pr.N = 3 + k%8
				pr.M = pr.N + 2
				pr.P = 2
			}
			rng := gen.RNG(int64(1000 + k))
			var in *core.Instance
			var err error
			if k%2 == 0 {
				in, err = gen.Chain(pr, rng)
			} else {
				in, err = gen.InTree(pr, 2+k%2, rng)
			}
			if err != nil {
				t.Fatal(err)
			}
			ev := core.NewEvaluator(in)
			mp := core.NewMapping(in.N())
			checkTrialAllBitEqual(t, in, ev, "initial")
			for s := 0; s < steps; s++ {
				desc := mutate(in, mp, ev, rule, rng)
				checkTrialAllBitEqual(t, in, ev, fmt.Sprintf("step %d (%s)", s, desc))
			}
			for i := 0; i < in.N(); i++ {
				ev.Unassign(app.TaskID(i))
			}
			checkTrialAllBitEqual(t, in, ev, "drained")
		})
	}
}

// checkPriceAllBitEqual compares, for every task, PriceAll against m scalar
// Pricer.Trial calls (ok flags and bits), and PriceAllAt at the current
// demand against PriceAll.
func checkPriceAllBitEqual(t testing.TB, in *core.Instance, p *core.Pricer, step string) {
	t.Helper()
	m := in.M()
	out := make([]float64, m)
	at := make([]float64, m)
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		okAll := p.PriceAll(id, out)
		d, okD := p.Demand(id)
		if okAll != okD {
			t.Fatalf("%s: PriceAll(T%d) ok=%v, Demand ok=%v", step, i+1, okAll, okD)
		}
		if !okAll {
			continue
		}
		for u := 0; u < m; u++ {
			want, ok := p.Trial(id, platform.MachineID(u))
			if !ok {
				t.Fatalf("%s: Trial(T%d, M%d) demand unknown but PriceAll succeeded", step, i+1, u+1)
			}
			if out[u] != want {
				t.Fatalf("%s: PriceAll(T%d)[M%d] = %v, Trial = %v (must be bit-equal)",
					step, i+1, u+1, out[u], want)
			}
		}
		p.PriceAllAt(id, d, at)
		for u := 0; u < m; u++ {
			if at[u] != out[u] {
				t.Fatalf("%s: PriceAllAt(T%d, d=%v)[M%d] = %v, PriceAll = %v",
					step, i+1, d, u+1, at[u], out[u])
			}
		}
	}
}

// TestPriceAllDifferential exercises the Pricer batch kernel under the
// root-first/LIFO discipline the engine requires: repeated full push walks
// (reverse-topological, machines rotated per round) with a bit-equality
// check after every push, the Trial/Assign landing promise verified against
// the batch row, then a full LIFO pop walk checked the same way — the loads
// must come back to exact zeros.
func TestPriceAllDifferential(t *testing.T) {
	const instances = 30
	for k := 0; k < instances; k++ {
		k := k
		t.Run(fmt.Sprintf("inst%02d", k), func(t *testing.T) {
			t.Parallel()
			prm := gen.Default(4+k%14, 2+k%3, 5+k%4)
			rng := gen.RNG(int64(4000 + k))
			var in *core.Instance
			var err error
			if k%2 == 0 {
				in, err = gen.Chain(prm, rng)
			} else {
				in, err = gen.InTree(prm, 2+k%2, rng)
			}
			if err != nil {
				t.Fatal(err)
			}
			p := core.NewPricer(in)
			m := in.M()
			out := make([]float64, m)
			order := in.App.ReverseTopological()
			checkPriceAllBitEqual(t, in, p, "empty")
			for round := 0; round < 3; round++ {
				for d, i := range order {
					u := platform.MachineID((d + round + rng.Intn(m)) % m)
					if !p.PriceAll(i, out) {
						t.Fatalf("round %d push %d: demand of T%d unknown in root-first order", round, d, int(i)+1)
					}
					promised := out[u]
					if err := p.Assign(i, u); err != nil {
						t.Fatal(err)
					}
					if got := p.Load(u); got != promised {
						t.Fatalf("round %d push %d: PriceAll promised %v, Assign produced %v", round, d, promised, got)
					}
					checkPriceAllBitEqual(t, in, p, fmt.Sprintf("round %d push %d", round, d))
				}
				for d := len(order) - 1; d >= 0; d-- {
					p.Unassign(order[d])
					checkPriceAllBitEqual(t, in, p, fmt.Sprintf("round %d pop %d", round, d))
				}
				for u := 0; u < m; u++ {
					if got := p.Load(platform.MachineID(u)); got != 0 {
						t.Fatalf("round %d: popped load(M%d) = %v, want exactly 0", round, u+1, got)
					}
				}
			}
		})
	}
}

var benchSink float64

// BenchmarkTrialAll measures the batch kernel against the m-call scalar
// loop it replaces, on complete evaluators over chains with m machines.
// The acceptance bar for the batched refactor is batch >= 2x loop at m >= 8.
func BenchmarkTrialAll(b *testing.B) {
	for _, m := range []int{8, 16} {
		in, err := gen.Chain(gen.Default(24, 2, m), gen.RNG(7))
		if err != nil {
			b.Fatal(err)
		}
		ev := core.NewEvaluator(in)
		for d, i := range in.App.ReverseTopological() {
			if err := ev.Assign(i, platform.MachineID(d%m)); err != nil {
				b.Fatal(err)
			}
		}
		n := in.N()
		out := make([]float64, m)
		b.Run(fmt.Sprintf("m%d/batch", m), func(b *testing.B) {
			for bi := 0; bi < b.N; bi++ {
				for i := 0; i < n; i++ {
					ev.TrialAll(app.TaskID(i), out)
					benchSink += out[0]
				}
			}
		})
		b.Run(fmt.Sprintf("m%d/loop", m), func(b *testing.B) {
			for bi := 0; bi < b.N; bi++ {
				for i := 0; i < n; i++ {
					for u := 0; u < m; u++ {
						v, _ := ev.Trial(app.TaskID(i), platform.MachineID(u))
						benchSink += v
					}
				}
			}
		})
	}
}

// priceAllMultiMachineMajor is the machine-major sweep PriceAllMulti
// deliberately does not use: outer loop over machines with the load hoisted,
// inner loop striding the row-major inflation/time tables by m. Kept here as
// the benchmark's losing comparison leg — same cells, same bits, worse
// locality on every row longer than a cache line.
func priceAllMultiMachineMajor(p *core.Pricer, infl, tim []float64, tasks []app.TaskID, demands []float64, out []float64) {
	m := p.M()
	for u := 0; u < m; u++ {
		l := p.Load(platform.MachineID(u))
		for t, i := range tasks {
			at := int(i)*m + u
			out[t*m+u] = l + (demands[t]*infl[at])*tim[at]
		}
	}
}

// BenchmarkPriceAllMulti measures the fused multi-task landing kernel (the
// incremental exact bound's per-node rescan) against the loop of PriceAllAt
// calls it replaces and against the machine-major sweep it rejected, pricing
// the 12-task unplaced suffix of a mid-search partial assignment.
func BenchmarkPriceAllMulti(b *testing.B) {
	for _, m := range []int{8, 16} {
		in, err := gen.Chain(gen.Default(24, 2, m), gen.RNG(7))
		if err != nil {
			b.Fatal(err)
		}
		p := core.NewPricer(in)
		order := in.App.ReverseTopological()
		for d, i := range order[:len(order)/2] {
			if err := p.Assign(i, platform.MachineID(d%m)); err != nil {
				b.Fatal(err)
			}
		}
		tasks := append([]app.TaskID(nil), order[len(order)/2:]...)
		demands := make([]float64, len(tasks))
		for t := range demands {
			demands[t] = 1 + float64(t)/7
		}
		out := make([]float64, len(tasks)*m)
		b.Run(fmt.Sprintf("m%d/fused", m), func(b *testing.B) {
			for bi := 0; bi < b.N; bi++ {
				p.PriceAllMulti(tasks, demands, out)
				benchSink += out[0]
			}
		})
		b.Run(fmt.Sprintf("m%d/loop", m), func(b *testing.B) {
			for bi := 0; bi < b.N; bi++ {
				for t, i := range tasks {
					p.PriceAllAt(i, demands[t], out[t*m:(t+1)*m])
				}
				benchSink += out[0]
			}
		})
		infl, tim := core.InflationTable(in), core.TimeTable(in)
		b.Run(fmt.Sprintf("m%d/machine-major", m), func(b *testing.B) {
			for bi := 0; bi < b.N; bi++ {
				priceAllMultiMachineMajor(p, infl, tim, tasks, demands, out)
				benchSink += out[0]
			}
		})
	}
}

// BenchmarkPriceAll is the Pricer-side twin: one batch pass versus m Trial
// calls on a mid-search partial assignment.
func BenchmarkPriceAll(b *testing.B) {
	for _, m := range []int{8, 16} {
		in, err := gen.Chain(gen.Default(24, 2, m), gen.RNG(7))
		if err != nil {
			b.Fatal(err)
		}
		p := core.NewPricer(in)
		order := in.App.ReverseTopological()
		for d, i := range order[:len(order)/2] {
			if err := p.Assign(i, platform.MachineID(d%m)); err != nil {
				b.Fatal(err)
			}
		}
		next := order[len(order)/2]
		out := make([]float64, m)
		b.Run(fmt.Sprintf("m%d/batch", m), func(b *testing.B) {
			for bi := 0; bi < b.N; bi++ {
				p.PriceAll(next, out)
				benchSink += out[0]
			}
		})
		b.Run(fmt.Sprintf("m%d/loop", m), func(b *testing.B) {
			for bi := 0; bi < b.N; bi++ {
				for u := 0; u < m; u++ {
					v, _ := p.Trial(next, platform.MachineID(u))
					benchSink += v
				}
			}
		})
	}
}
