package core

import (
	"fmt"

	"microfab/internal/app"
	"microfab/internal/platform"
)

// Pricer is the pricing-only sibling of Evaluator, built for the one
// mutation pattern the exact branch and bound actually performs: root-first
// assignment with strict LIFO backtracking. Where Evaluator carries the
// machinery every consumer might need — compensated per-machine sums, the
// exact-zero reset, a lazily-flushed tournament tree for the maximum, and
// the in-tree prefix walks that let tasks be (un)assigned in any order — a
// Pricer keeps only a flat per-machine load array and a running maximum,
// both maintained by saving the previous value at Assign time and restoring
// it bit-exactly at Unassign time. Two consequences:
//
//   - every load (and the maximum) is a *pure function of the current
//     partial assignment*: the restore puts the exact prior bits back, so a
//     node reached by descending and a node reached by replaying its prefix
//     price identically. This is the property that makes the parallel root
//     split of internal/exact byte-identical for any worker count, and it is
//     the one thing the ledger-backed Evaluator cannot offer (a compensated
//     sum's last ulp depends on its charge/discharge history);
//   - Assign and Unassign are branch-free O(1): one multiply-add, two saves,
//     no ledger, no dirty list, no tree. The maximum is read in O(1) at any
//     node (Max), against the Evaluator's O(log m)-amortized flush.
//
// The price of the leanness is a usage discipline, checked where cheap and
// documented where not:
//
//   - root-first: Assign(i, u) requires i's successor to be assigned
//     already (or i to be the root), so that x[i] is final the moment i is
//     placed — exactly the reverse-topological order every solver in this
//     repository walks;
//   - LIFO: Unassign must undo the most recent not-yet-undone Assign of its
//     machine. Unassigning in exact reverse assignment order (a search
//     stack's natural pop order) always satisfies this. Violating it leaves
//     the restored load stale; the differential corpus in pricer_test.go
//     and the exact solver's cross-checks gate the discipline.
//
// A Pricer is not safe for concurrent use; give each goroutine its own
// (Clone, or a fresh NewPricer replayed with the worker's prefix).
type Pricer struct {
	in *Instance
	m  int

	assign []platform.MachineID
	x      []float64 // x[i] when assigned, 0 otherwise

	load      []float64 // per-machine load, pure function of the assignment
	savedLoad []float64 // load[a(i)] just before i's contribution
	savedMax  []float64 // the running maximum just before i's assignment
	max       float64

	// infl and tim cache F(i,u) = 1/(1-f[i][u]) and w[i][u] row-major,
	// shared with every engine over the instance: the failure matrix
	// recomputes the division on every Inflation call, which a hot loop
	// paying one per node can feel. Cached bits are identical to the
	// recomputed ones, so pricing is unchanged.
	infl []float64
	tim  []float64

	nAssigned int
}

// NewPricer returns a Pricer over the instance with every task unassigned.
func NewPricer(in *Instance) *Pricer {
	n, m := in.N(), in.M()
	infl, tim := in.tables()
	p := &Pricer{
		in:        in,
		m:         m,
		assign:    make([]platform.MachineID, n),
		x:         make([]float64, n),
		load:      make([]float64, m),
		savedLoad: make([]float64, n),
		savedMax:  make([]float64, n),
		infl:      infl,
		tim:       tim,
	}
	for i := range p.assign {
		p.assign[i] = platform.NoMachine
	}
	return p
}

// InflationTable returns F(i,u) = 1/(1-f[i][u]) for every couple, row-major
// (index i·m + u) — the cached form hot search loops read instead of
// re-dividing per call. The cached bits are exactly Failures.Inflation's.
// The slice is shared by every engine over the instance and must not be
// modified.
func InflationTable(in *Instance) []float64 {
	infl, _ := in.tables()
	return infl
}

// TimeTable returns w[i][u] for every couple, row-major (index i·m + u) —
// the structure-of-arrays form of Platform.Time the batch kernels walk.
// The slice is shared by every engine over the instance and must not be
// modified.
func TimeTable(in *Instance) []float64 {
	_, tim := in.tables()
	return tim
}

// Clone returns an independent Pricer with the same assignment path state.
// Mutating either copy never affects the other (the underlying Instance is
// immutable and stays shared).
func (p *Pricer) Clone() *Pricer {
	return &Pricer{
		in:        p.in,
		m:         p.m,
		assign:    append([]platform.MachineID(nil), p.assign...),
		x:         append([]float64(nil), p.x...),
		load:      append([]float64(nil), p.load...),
		savedLoad: append([]float64(nil), p.savedLoad...),
		savedMax:  append([]float64(nil), p.savedMax...),
		max:       p.max,
		infl:      p.infl, // read-only, shared
		tim:       p.tim,  // read-only, shared
		nAssigned: p.nAssigned,
	}
}

// Rebind repoints the Pricer at another instance of the same (n, m) shape
// and resets every task to unassigned, reusing all allocated state. It
// reports false — receiver untouched — when the shapes differ. Rebinding
// is what lets the serving layer keep per-(n, m) sync.Pools of Pricers:
// a pooled engine serves a stream of distinct same-shape instances without
// a single steady-state allocation.
func (p *Pricer) Rebind(in *Instance) bool {
	if in.N() != len(p.assign) || in.M() != p.m {
		return false
	}
	p.in = in
	p.infl, p.tim = in.tables()
	p.Reset()
	return true
}

// M returns the number of machines covered.
func (p *Pricer) M() int { return p.m }

// Reset returns the Pricer to the all-unassigned state.
func (p *Pricer) Reset() {
	for i := range p.assign {
		p.assign[i] = platform.NoMachine
		p.x[i] = 0
	}
	for u := range p.load {
		p.load[u] = 0
	}
	p.max = 0
	p.nAssigned = 0
}

// Len returns the number of tasks covered.
func (p *Pricer) Len() int { return len(p.assign) }

// Complete reports whether every task is assigned.
func (p *Pricer) Complete() bool { return p.nAssigned == len(p.assign) }

// Machine returns a(i), or platform.NoMachine when unassigned.
func (p *Pricer) Machine(i app.TaskID) platform.MachineID { return p.assign[i] }

// X returns the product count of task i (0 when unassigned). Under the
// root-first discipline an assigned task's x is always final, matching
// PartialProductCounts on the snapshot mapping.
func (p *Pricer) X(i app.TaskID) float64 { return p.x[i] }

// Load returns the current load of machine u.
func (p *Pricer) Load(u platform.MachineID) float64 { return p.load[u] }

// Loads returns a copy of the per-machine loads.
func (p *Pricer) Loads() []float64 { return append([]float64(nil), p.load...) }

// Max returns the current maximum machine load in O(1).
func (p *Pricer) Max() float64 { return p.max }

// Best returns the maximum machine load and the smallest machine attaining
// it (platform.NoMachine while every load is zero), matching Evaluator's
// tie-break. Unlike Max it scans the machines: callers inside a hot loop
// that only need the value should read Max.
func (p *Pricer) Best() (float64, platform.MachineID) {
	if p.max <= 0 {
		return 0, platform.NoMachine
	}
	for u, l := range p.load {
		if l == p.max {
			return p.max, platform.MachineID(u)
		}
	}
	return p.max, platform.NoMachine
}

// Demand returns the product count required downstream of task i —
// x[succ(i)], or 1 at the root — and whether it is known (the successor is
// assigned). Matches Evaluator.Demand.
func (p *Pricer) Demand(i app.TaskID) (float64, bool) {
	s := p.in.App.Successor(i)
	if s == app.NoTask {
		return 1, true
	}
	if p.assign[s] == platform.NoMachine {
		return 0, false
	}
	return p.x[s], true
}

// Trial returns the load machine u would reach if it also carried task i,
// without mutating anything. The second result is false when i's downstream
// demand is unknown (successor unassigned), in which case the load returned
// is meaningless. Assigning i to u right after a successful Trial lands u
// on exactly the returned bits.
func (p *Pricer) Trial(i app.TaskID, u platform.MachineID) (float64, bool) {
	d, ok := p.Demand(i)
	if !ok {
		return 0, false
	}
	xi := d * p.infl[int(i)*p.m+int(u)]
	return p.load[u] + xi*p.tim[int(i)*p.m+int(u)], true
}

// PriceAll writes, for every machine u, the load u would reach if it also
// carried task i — one pass over the structure-of-arrays rows instead of m
// Trial calls. out must have length M. It returns false (out untouched)
// when i's downstream demand is unknown. Each out[u] is bit-equal to the
// corresponding Trial(i, u).
func (p *Pricer) PriceAll(i app.TaskID, out []float64) bool {
	d, ok := p.Demand(i)
	if !ok {
		return false
	}
	p.PriceAllAt(i, d, out)
	return true
}

// PriceAllAt is PriceAll with an explicit downstream demand d, for callers
// (the exact solver's bound) that price hypothetical demands rather than
// the current one: out[u] = load[u] + (d·F(i,u))·w[i][u], the exact
// floating-point expression of Trial and Assign.
// A 4-wide manual unroll of this loop was tried and measured slower than
// the range form (BenchmarkPriceAll m16: ~14 ns/op scalar vs ~16 unrolled):
// ranging over inflRow already proves the bounds of every same-length row,
// so the unroll only added code. The scalar loop stays; the fused
// multi-task kernel below keeps the unroll because its longer trip counts
// amortize it.
func (p *Pricer) PriceAllAt(i app.TaskID, d float64, out []float64) {
	base := int(i) * p.m
	inflRow := p.infl[base : base+p.m]
	timRow := p.tim[base : base+p.m]
	load := p.load[:p.m]
	for u, f := range inflRow {
		out[u] = load[u] + (d*f)*timRow[u]
	}
}

// PriceAllMulti prices the landings of a whole slice of tasks in one fused
// pass: for every t and every machine u it writes
//
//	out[t·M + u] = load[u] + (demands[t]·F(tasks[t],u))·w[tasks[t]][u]
//
// bit-equal to len(tasks) successive PriceAllAt calls (the per-cell
// expression is identical and cells are independent, so the sweep order
// cannot change a single bit). demands must have len(tasks) entries and out
// len(tasks)·M. The exact solver's incremental bound is the intended
// caller: it re-prices the stale subset of unplaced tasks per node through
// one kernel call instead of one PriceAllAt call per task.
//
// The sweep is task-major — the inflation/time rows are row-major by task,
// so this order walks both tables contiguously while the m-length load row
// stays cache-hot across tasks; the machine-major order (load[u] hoisted,
// table columns strided by M) loses on every row longer than a cache line
// (see BenchmarkPriceAllMulti's machine-major comparison leg). The inner
// loop is 4-wide unrolled like the scalar kernels.
func (p *Pricer) PriceAllMulti(tasks []app.TaskID, demands []float64, out []float64) {
	m := p.m
	load := p.load[:m]
	for t, i := range tasks {
		d := demands[t]
		base := int(i) * m
		inflRow := p.infl[base : base+m]
		timRow := p.tim[base : base+m]
		row := out[t*m : t*m+m]
		u := 0
		for ; u+4 <= m; u += 4 {
			row[u] = load[u] + (d*inflRow[u])*timRow[u]
			row[u+1] = load[u+1] + (d*inflRow[u+1])*timRow[u+1]
			row[u+2] = load[u+2] + (d*inflRow[u+2])*timRow[u+2]
			row[u+3] = load[u+3] + (d*inflRow[u+3])*timRow[u+3]
		}
		for ; u < m; u++ {
			row[u] = load[u] + (d*inflRow[u])*timRow[u]
		}
	}
}

// Assign sets a(i) = u, pricing exactly task i (its feeders are unassigned
// under the root-first discipline) and saving the touched machine's load
// and the running maximum for the bit-exact restore in Unassign. It errors
// when i or u is out of range, when i is already assigned (the Pricer has
// no move semantics — Unassign first), or when i's successor is unassigned
// (root-first violation: x[i] would not be final).
func (p *Pricer) Assign(i app.TaskID, u platform.MachineID) error {
	if int(i) < 0 || int(i) >= len(p.assign) {
		return fmt.Errorf("core: task %d out of range [0,%d)", int(i), len(p.assign))
	}
	if int(u) < 0 || int(u) >= len(p.load) {
		return fmt.Errorf("core: machine %d out of range [0,%d)", int(u), len(p.load))
	}
	if p.assign[i] != platform.NoMachine {
		return fmt.Errorf("core: pricer: task %d already assigned (LIFO discipline: Unassign first)", int(i))
	}
	d := 1.0
	if s := p.in.App.Successor(i); s != app.NoTask {
		if p.assign[s] == platform.NoMachine {
			return fmt.Errorf("core: pricer: task %d assigned before its successor %d (root-first discipline)", int(i), int(s))
		}
		d = p.x[s]
	}
	xi := d * p.infl[int(i)*p.m+int(u)]
	p.savedLoad[i] = p.load[u]
	p.savedMax[i] = p.max
	nl := p.load[u] + xi*p.tim[int(i)*p.m+int(u)]
	p.load[u] = nl
	if nl > p.max {
		p.max = nl
	}
	p.x[i] = xi
	p.assign[i] = u
	p.nAssigned++
	return nil
}

// Unassign clears task i's machine, restoring its machine's load and the
// running maximum to the exact bits they held before i's Assign. A no-op
// when i is already unassigned. i must be the most recent not-yet-undone
// Assign (see the LIFO discipline above).
func (p *Pricer) Unassign(i app.TaskID) {
	if int(i) < 0 || int(i) >= len(p.assign) {
		return
	}
	u := p.assign[i]
	if u == platform.NoMachine {
		return
	}
	p.load[u] = p.savedLoad[i]
	p.max = p.savedMax[i]
	p.x[i] = 0
	p.assign[i] = platform.NoMachine
	p.nAssigned--
}

// Mapping returns an independent snapshot of the current allocation.
func (p *Pricer) Mapping() *Mapping { return FromSlice(p.assign) }
