package core_test

import (
	"math/rand"
	"testing"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/gen"
	"microfab/internal/platform"
)

// TestSwapKernelDifferential drives random swaps over chains and in-trees
// and cross-checks the native kernel against (a) an oracle evaluator
// applying the same move as two Assigns and (b) the from-scratch
// evaluation, after every step. The kernel and the oracle may differ in
// the last ulps of a compensated sum (different charge/discharge
// histories), hence the 1e-12 comparison rather than bit equality.
func TestSwapKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	var corpus []*core.Instance
	add := func(in *core.Instance, err error) {
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, in)
	}
	add(gen.Chain(gen.Default(10, 3, 4), gen.RNG(8000)))
	add(gen.Chain(gen.Default(25, 5, 8), gen.RNG(8001)))
	add(gen.InTree(gen.Default(12, 3, 5), 2, gen.RNG(8002)))
	add(gen.InTree(gen.Default(30, 4, 9), 4, gen.RNG(8003)))
	hf := gen.Default(20, 4, 6)
	hf.FMin, hf.FMax = 0, 0.10
	add(gen.Chain(hf, gen.RNG(8004)))

	for ci, in := range corpus {
		mp := core.NewMapping(in.N())
		for i := 0; i < in.N(); i++ {
			mp.Assign(app.TaskID(i), platform.MachineID(rng.Intn(in.M())))
		}
		kernel, err := core.NewEvaluatorFrom(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := core.NewEvaluatorFrom(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 200; step++ {
			i := app.TaskID(rng.Intn(in.N()))
			j := app.TaskID(rng.Intn(in.N()))
			u, v := mp.Machine(i), mp.Machine(j)
			if err := kernel.Swap(i, j); err != nil {
				t.Fatalf("inst%d step %d: Swap(T%d, T%d): %v", ci, step, int(i)+1, int(j)+1, err)
			}
			if err := oracle.Assign(i, v); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Assign(j, u); err != nil {
				t.Fatal(err)
			}
			mp.Assign(i, v)
			mp.Assign(j, u)
			for w := 0; w < in.M(); w++ {
				mw := platform.MachineID(w)
				if !close12(kernel.MachinePeriod(mw), oracle.MachinePeriod(mw)) {
					t.Fatalf("inst%d step %d swap(T%d,T%d): period(M%d) kernel %v, two-assign oracle %v",
						ci, step, int(i)+1, int(j)+1, w+1, kernel.MachinePeriod(mw), oracle.MachinePeriod(mw))
				}
			}
			checkAgainstReference(t, in, mp, kernel, "swap kernel")
		}
	}
}

// TestSwapKernelPartialMappings: the kernel must stay correct when the
// swapped tasks sit above unassigned regions (unknown demands) — the state
// any mid-construction search could hand it.
func TestSwapKernelPartialMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	in, err := gen.InTree(gen.Default(14, 3, 5), 3, gen.RNG(8100))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		mp := core.NewMapping(in.N())
		var assigned []app.TaskID
		for i := 0; i < in.N(); i++ {
			if rng.Intn(4) != 0 {
				mp.Assign(app.TaskID(i), platform.MachineID(rng.Intn(in.M())))
				assigned = append(assigned, app.TaskID(i))
			}
		}
		if len(assigned) < 2 {
			continue
		}
		ev, err := core.NewEvaluatorFrom(in, mp)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 30; step++ {
			i := assigned[rng.Intn(len(assigned))]
			j := assigned[rng.Intn(len(assigned))]
			u, v := mp.Machine(i), mp.Machine(j)
			if err := ev.Swap(i, j); err != nil {
				t.Fatal(err)
			}
			mp.Assign(i, v)
			mp.Assign(j, u)
			checkAgainstReference(t, in, mp, ev, "partial swap")
		}
	}
}

// TestSwapKernelEdges covers the no-op and error contracts: self-swap,
// same-machine swap, unassigned operands, out-of-range ids.
func TestSwapKernelEdges(t *testing.T) {
	in, err := gen.Chain(gen.Default(6, 2, 3), gen.RNG(8200))
	if err != nil {
		t.Fatal(err)
	}
	mp := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		mp.Assign(app.TaskID(i), platform.MachineID(i%in.M()))
	}
	ev, err := core.NewEvaluatorFrom(in, mp)
	if err != nil {
		t.Fatal(err)
	}
	before := ev.MachinePeriods()
	if err := ev.Swap(0, 0); err != nil {
		t.Fatalf("self-swap errored: %v", err)
	}
	if err := ev.Swap(0, app.TaskID(in.M())); err != nil {
		t.Fatalf("same-machine swap errored: %v", err)
	}
	after := ev.MachinePeriods()
	for u := range before {
		if before[u] != after[u] {
			t.Fatalf("no-op swaps moved period(M%d): %v -> %v", u+1, before[u], after[u])
		}
	}
	if err := ev.Swap(0, app.TaskID(in.N())); err == nil {
		t.Fatal("out-of-range swap accepted")
	}
	ev.Unassign(0)
	if err := ev.Swap(0, 1); err == nil {
		t.Fatal("swap with an unassigned operand accepted")
	}
	if err := ev.Relocate(0, 1); err == nil {
		t.Fatal("relocate of an unassigned task accepted")
	}
	if err := ev.Relocate(app.TaskID(-1), 0); err == nil {
		t.Fatal("out-of-range relocate accepted")
	}
}

// TestRelocateKernelMatchesAssign: Relocate is Assign with validation —
// same resulting state, bit for bit (same code path underneath).
func TestRelocateKernelMatchesAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(4444))
	in, err := gen.InTree(gen.Default(16, 4, 6), 2, gen.RNG(8300))
	if err != nil {
		t.Fatal(err)
	}
	mp := core.NewMapping(in.N())
	for i := 0; i < in.N(); i++ {
		mp.Assign(app.TaskID(i), platform.MachineID(rng.Intn(in.M())))
	}
	a, err := core.NewEvaluatorFrom(in, mp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewEvaluatorFrom(in, mp)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 150; step++ {
		i := app.TaskID(rng.Intn(in.N()))
		v := platform.MachineID(rng.Intn(in.M()))
		if err := a.Relocate(i, v); err != nil {
			t.Fatal(err)
		}
		if err := b.Assign(i, v); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < in.M(); u++ {
			mu := platform.MachineID(u)
			if a.MachinePeriod(mu) != b.MachinePeriod(mu) {
				t.Fatalf("step %d: Relocate and Assign diverged on M%d", step, u+1)
			}
		}
	}
}

// TestPriceAllMultiBitEqual pins the fused multi-task landing kernel to the
// scalar path it fuses: for any machine count (the 4-wide unroll's tails
// included), any partial assignment depth and any demand vector, every cell
// of PriceAllMulti must be bit-identical to the corresponding PriceAllAt
// row — the contract that lets the exact solver's incremental bound rescan
// through one kernel call without changing a single search decision.
func TestPriceAllMultiBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 9, 13, 16} {
		ntypes := 3
		if m < ntypes {
			ntypes = m // the generator rejects more types than machines
		}
		in, err := gen.Chain(gen.Default(12, ntypes, m), gen.RNG(int64(100+m)))
		if err != nil {
			t.Fatal(err)
		}
		p := core.NewPricer(in)
		order := in.App.ReverseTopological()
		for depth := 0; depth <= len(order); depth += 3 {
			// Replay a prefix of the search order, then price suffixes of
			// every length (empty included) at pseudo-random demands.
			p.Reset()
			for j := 0; j < depth; j++ {
				if err := p.Assign(order[j], platform.MachineID(j%m)); err != nil {
					t.Fatal(err)
				}
			}
			tasks := append([]app.TaskID(nil), order[depth:]...)
			demands := make([]float64, len(tasks))
			for i := range demands {
				demands[i] = 0.25 + 4*rng.Float64()
			}
			for cut := 0; cut <= len(tasks); cut++ {
				sub, dem := tasks[:cut], demands[:cut]
				got := make([]float64, cut*m)
				p.PriceAllMulti(sub, dem, got)
				want := make([]float64, m)
				for ti, i := range sub {
					p.PriceAllAt(i, dem[ti], want)
					for u := 0; u < m; u++ {
						if got[ti*m+u] != want[u] {
							t.Fatalf("m=%d depth=%d cut=%d: PriceAllMulti[%d,M%d]=%v, PriceAllAt=%v (must be bit-equal)",
								m, depth, cut, ti, u+1, got[ti*m+u], want[u])
						}
					}
				}
			}
		}
	}
}
