package core

import (
	"errors"
	"fmt"
	"math"

	"microfab/internal/app"
	"microfab/internal/platform"
)

// ErrIncompleteMapping tags evaluation failures caused by unassigned tasks,
// as opposed to genuine model errors (wrong mapping size, machine out of
// range). Callers distinguish the two with errors.Is; Period collapses both
// to +Inf for greedy comparisons, PeriodE surfaces them.
var ErrIncompleteMapping = errors.New("mapping is incomplete")

// ProductCounts computes x[i] for every task under the given complete
// mapping: the average number of products task Ti must start processing so
// that one finished product leaves the system.
//
// Recurrence (paper §4.1): for the root, x = F(root); otherwise
// x[i] = F(i) * x[succ(i)], with F(i) = 1/(1 - f[i][a(i)]). A join consumes
// one product from each predecessor per output, so the same recurrence holds
// on every branch of the in-tree.
//
// An unassigned task yields an error wrapping ErrIncompleteMapping; a
// mapping of the wrong size or referencing an unknown machine yields a
// plain (genuine) error.
func ProductCounts(in *Instance, m *Mapping) ([]float64, error) {
	n := in.N()
	if m.Len() != n {
		return nil, fmt.Errorf("core: mapping covers %d tasks, instance has %d", m.Len(), n)
	}
	x := make([]float64, n)
	for _, i := range in.App.ReverseTopological() {
		u := m.Machine(i)
		if u == platform.NoMachine {
			return nil, fmt.Errorf("core: task T%d is unassigned: %w", int(i)+1, ErrIncompleteMapping)
		}
		if int(u) < 0 || int(u) >= in.M() {
			return nil, fmt.Errorf("core: task T%d mapped to machine %d, platform has %d", int(i)+1, int(u), in.M())
		}
		demand := 1.0 // virtual successor of the root wants one product
		if s := in.App.Successor(i); s != app.NoTask {
			demand = x[s]
		}
		x[i] = in.Failures.Inflation(i, u) * demand
	}
	return x, nil
}

// PartialProductCounts computes x[i] for the assigned suffix of a mapping
// built root-first (as all the paper's heuristics do). Unassigned tasks get
// x = 0. A task is only given a count if its successor chain down to the
// root is fully assigned; heuristics assign in reverse topological order so
// this always holds for the tasks they have placed.
func PartialProductCounts(in *Instance, m *Mapping) []float64 {
	n := in.N()
	x := make([]float64, n)
	for _, i := range in.App.ReverseTopological() {
		u := m.Machine(i)
		if u == platform.NoMachine {
			continue
		}
		demand := 1.0
		if s := in.App.Successor(i); s != app.NoTask {
			if m.Machine(s) == platform.NoMachine {
				continue // successor not placed yet; cannot price this task
			}
			demand = x[s]
		}
		x[i] = in.Failures.Inflation(i, u) * demand
	}
	return x
}

// MachinePeriods returns period(Mu) for every machine: the time machine u
// spends to push one finished product out of the system,
// period(Mu) = sum over tasks i on u of x[i] * w[i][u]   (paper eq. (1)).
func MachinePeriods(in *Instance, m *Mapping) ([]float64, error) {
	x, err := ProductCounts(in, m)
	if err != nil {
		return nil, err
	}
	periods := make([]float64, in.M())
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		u := m.Machine(id)
		periods[u] += x[i] * in.Platform.Time(id, u)
	}
	return periods, nil
}

// Evaluation is the full objective breakdown of a mapping.
type Evaluation struct {
	// Period is max_u period(Mu) in ms; the inverse of the throughput.
	Period float64
	// Throughput is finished products per ms (1/Period).
	Throughput float64
	// Critical is the machine attaining Period.
	Critical platform.MachineID
	// MachinePeriods holds period(Mu) for every machine (0 if idle).
	MachinePeriods []float64
	// ProductCounts holds x[i] for every task.
	ProductCounts []float64
}

// Evaluate computes the period of a complete mapping. It does not check the
// mapping rule; use Mapping.CheckRule for that.
func Evaluate(in *Instance, m *Mapping) (*Evaluation, error) {
	x, err := ProductCounts(in, m)
	if err != nil {
		return nil, err
	}
	periods := make([]float64, in.M())
	for i := 0; i < in.N(); i++ {
		id := app.TaskID(i)
		u := m.Machine(id)
		periods[u] += x[i] * in.Platform.Time(id, u)
	}
	ev := &Evaluation{
		Period:         0,
		Critical:       platform.NoMachine,
		MachinePeriods: periods,
		ProductCounts:  x,
	}
	for u, p := range periods {
		if p > ev.Period {
			ev.Period = p
			ev.Critical = platform.MachineID(u)
		}
	}
	if ev.Period > 0 {
		ev.Throughput = 1 / ev.Period
	}
	return ev, nil
}

// Period is a convenience wrapper returning only the period (+Inf on any
// evaluation failure, so greedy searches can compare candidates safely).
// It cannot distinguish an incomplete mapping from a genuine evaluation
// error; callers that must react differently use PeriodE.
func Period(in *Instance, m *Mapping) float64 {
	p, err := PeriodE(in, m)
	if err != nil {
		return math.Inf(1)
	}
	return p
}

// PeriodE returns the period of a mapping, or the evaluation error:
// errors.Is(err, ErrIncompleteMapping) identifies the (often benign)
// unassigned-task case, any other error is a genuine model violation that
// callers should propagate rather than swallow as +Inf.
func PeriodE(in *Instance, m *Mapping) (float64, error) {
	ev, err := Evaluate(in, m)
	if err != nil {
		return math.Inf(1), err
	}
	return ev.Period, nil
}

// InputPlan describes how many raw products each source task must receive
// to expect xout finished products (paper §2: "we can compute the number of
// products needed as input of the system and guarantee the output").
type InputPlan struct {
	// PerSource[k] is the expected raw-product count for source k (same
	// order as app.Sources()).
	PerSource []float64
	// Total sums PerSource.
	Total float64
}

// PlanInputs returns the expected number of raw products to feed each source
// so that xout products leave the system on average.
func PlanInputs(in *Instance, m *Mapping, xout float64) (*InputPlan, error) {
	if xout <= 0 {
		return nil, fmt.Errorf("core: xout must be positive, got %v", xout)
	}
	x, err := ProductCounts(in, m)
	if err != nil {
		return nil, err
	}
	srcs := in.App.Sources()
	plan := &InputPlan{PerSource: make([]float64, len(srcs))}
	for k, s := range srcs {
		plan.PerSource[k] = xout * x[s]
		plan.Total += plan.PerSource[k]
	}
	return plan, nil
}

// LowerBoundPeriod returns a simple valid lower bound on the optimal period
// for any rule: every task must run somewhere at least once per output with
// its most favourable machine, and total work must fit on m machines.
//
// bound = max( max_i min_u x̲[i]·w[i][u] ,  (Σ_i min_u x̲[i]·w[i][u]) / m )
//
// where x̲[i] is the optimistic product count computed with each stage's
// best (lowest) failure rate along the path to the root.
func LowerBoundPeriod(in *Instance) float64 {
	n := in.N()
	// Optimistic x: use min_u f[j][u] on every stage below i.
	xmin := make([]float64, n)
	for _, i := range in.App.ReverseTopological() {
		demand := 1.0
		if s := in.App.Successor(i); s != app.NoTask {
			demand = xmin[s]
		}
		xmin[i] = demand / (1 - in.Failures.BestRate(i))
	}
	var total, worstSingle float64
	for i := 0; i < n; i++ {
		id := app.TaskID(i)
		best := math.Inf(1)
		for u := 0; u < in.M(); u++ {
			c := xmin[i] * in.Platform.Time(id, platform.MachineID(u))
			if c < best {
				best = c
			}
		}
		total += best
		if best > worstSingle {
			worstSingle = best
		}
	}
	avg := total / float64(in.M())
	if worstSingle > avg {
		return worstSingle
	}
	return avg
}
