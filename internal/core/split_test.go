package core

import (
	"math"
	"testing"

	"microfab/internal/app"
	"microfab/internal/failure"
	"microfab/internal/platform"
)

func TestSplitLiftMatchesIntegralEvaluation(t *testing.T) {
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(0, 0)
	m.Assign(1, 1)
	evInt, err := Evaluate(in, m)
	if err != nil {
		t.Fatal(err)
	}
	evSplit, err := EvaluateSplit(in, m.Split(in.M()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(evInt.Period-evSplit.Period) > 1e-9 {
		t.Fatalf("split lift period %v != integral %v", evSplit.Period, evInt.Period)
	}
	for i := range evInt.ProductCounts {
		if math.Abs(evInt.ProductCounts[i]-evSplit.ProductCounts[i]) > 1e-9 {
			t.Fatalf("x[%d] differs: %v vs %v", i, evInt.ProductCounts[i], evSplit.ProductCounts[i])
		}
	}
}

func TestSplitHalving(t *testing.T) {
	// One task, two identical machines, no failures: a 50/50 split halves
	// the period.
	a := app.MustChain([]app.TypeID{0})
	p, _ := platform.NewHomogeneous(1, 2, 100)
	f, _ := failure.NewUniform(1, 2, 0)
	in, err := NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSplitMapping(1, 2)
	s.SetShare(0, 0, 0.5)
	s.SetShare(0, 1, 0.5)
	if err := s.Validate(a, Specialized); err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateSplit(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Period-50) > 1e-9 {
		t.Fatalf("period = %v, want 50", ev.Period)
	}
}

func TestSplitValidate(t *testing.T) {
	a := app.MustChain([]app.TypeID{0, 1})
	s := NewSplitMapping(2, 2)
	s.SetShare(0, 0, 0.6) // sums to 0.6 only
	s.SetShare(1, 1, 1)
	if err := s.Validate(a, Specialized); err == nil {
		t.Fatal("share sum != 1 accepted")
	}
	s.SetShare(0, 1, 0.4) // M1 now carries type 0 (0.4) and type 1 (1.0)
	if err := s.Validate(a, Specialized); err == nil {
		t.Fatal("mixed types on one machine accepted under Specialized")
	}
	if err := s.Validate(a, GeneralRule); err != nil {
		t.Fatalf("general rule rejected a valid split: %v", err)
	}
	s2 := NewSplitMapping(1, 1)
	s2.SetShare(0, 0, -0.5)
	if err := s2.Validate(app.MustChain([]app.TypeID{0}), GeneralRule); err == nil {
		t.Fatal("negative share accepted")
	}
}

func TestSplitBlendedFailure(t *testing.T) {
	// One task split evenly over a perfect machine and a coin-flip
	// machine: survival = 0.5·1 + 0.5·0.5 = 0.75, x = 4/3.
	a := app.MustChain([]app.TypeID{0})
	p, _ := platform.NewHomogeneous(1, 2, 100)
	f, _ := failure.New([][]float64{{0, 0.5}})
	in, err := NewInstance(a, p, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSplitMapping(1, 2)
	s.SetShare(0, 0, 0.5)
	s.SetShare(0, 1, 0.5)
	ev, err := EvaluateSplit(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.ProductCounts[0]-4.0/3) > 1e-12 {
		t.Fatalf("x = %v, want 4/3", ev.ProductCounts[0])
	}
	// Each machine processes x/2 products at 100 ms.
	want := 4.0 / 3 / 2 * 100
	if math.Abs(ev.Period-want) > 1e-9 {
		t.Fatalf("period = %v, want %v", ev.Period, want)
	}
}

func TestReconfigEvaluate(t *testing.T) {
	// Two tasks of different types on one machine: general mapping.
	in := twoTaskInstance(t)
	m := NewMapping(2)
	m.Assign(0, 0)
	m.Assign(1, 0)
	base, err := ReconfigEvaluate(in, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(in, m)
	if err != nil {
		t.Fatal(err)
	}
	if base.Period != ev.Period {
		t.Fatalf("reconfig=0 period %v != plain %v", base.Period, ev.Period)
	}
	pen, err := ReconfigEvaluate(in, m, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Two types on M0: +50·2 = +100.
	if math.Abs(pen.Period-(ev.Period+100)) > 1e-9 {
		t.Fatalf("penalized period = %v, want %v", pen.Period, ev.Period+100)
	}
	// Specialized machines pay nothing.
	m2 := NewMapping(2)
	m2.Assign(0, 0)
	m2.Assign(1, 1)
	p2, err := ReconfigEvaluate(in, m2, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Evaluate(in, m2)
	if p2.Period != want.Period {
		t.Fatalf("specialized mapping penalized: %v vs %v", p2.Period, want.Period)
	}
}

func TestEvaluateSplitRejectsZeroShares(t *testing.T) {
	a := app.MustChain([]app.TypeID{0})
	p, _ := platform.NewHomogeneous(1, 2, 100)
	f, _ := failure.NewUniform(1, 2, 0)
	in, _ := NewInstance(a, p, f)
	s := NewSplitMapping(1, 2) // all-zero shares
	if _, err := EvaluateSplit(in, s); err == nil {
		t.Fatal("zero-share task evaluated")
	}
}
