// Package core implements the paper's central objects: the allocation of
// tasks to machines, the propagation of the average product counts x[i]
// through the application in-tree, the per-machine periods, and the three
// mapping rules (one-to-one, specialized, general).
//
// Everything downstream — heuristics, exact solvers, the MIP and the
// discrete-event simulator — evaluates candidate solutions through this
// package, so its formulas are the single source of truth for the objective.
package core

import (
	"errors"
	"fmt"
	"sync"

	"microfab/internal/app"
	"microfab/internal/failure"
	"microfab/internal/platform"
)

// Rule selects which allocation constraint applies (paper §4.2).
type Rule int

const (
	// OneToOne: a machine executes at most one task.
	OneToOne Rule = iota
	// Specialized: a machine is dedicated to at most one task *type*; it
	// may run several tasks of that type. The realistic rule: machines
	// need no reconfiguration between operations.
	Specialized
	// GeneralRule: no constraint on what a machine may run.
	GeneralRule
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case OneToOne:
		return "one-to-one"
	case Specialized:
		return "specialized"
	case GeneralRule:
		return "general"
	}
	return fmt.Sprintf("Rule(%d)", int(r))
}

// Instance bundles the three model ingredients every solver consumes.
//
// It also owns the shared structure-of-arrays tables behind the batch
// pricing kernels (Pricer.PriceAll, Evaluator.TrialAll): row-major copies
// of the inflation factors F(i,u) and the execution times w[i][u], built
// lazily on first use and shared read-only by every engine over the
// instance. The components are immutable after NewInstance, so the cached
// bits can never go stale.
type Instance struct {
	App      *app.Application
	Platform *platform.Platform
	Failures *failure.Matrix

	tablesOnce sync.Once
	infl       []float64 // row-major F(i,u) = 1/(1-f[i][u]), index i·m+u
	tim        []float64 // row-major w[i][u], index i·m+u
}

// tables returns the shared SoA rows (inflation, time), building them on
// first use. The returned slices are read-only.
func (in *Instance) tables() (infl, tim []float64) {
	in.tablesOnce.Do(func() {
		n, m := in.N(), in.M()
		fi := make([]float64, n*m)
		ti := make([]float64, n*m)
		for i := 0; i < n; i++ {
			row := in.Platform.Row(app.TaskID(i))
			for u := 0; u < m; u++ {
				fi[i*m+u] = in.Failures.Inflation(app.TaskID(i), platform.MachineID(u))
				ti[i*m+u] = row[u]
			}
		}
		in.infl, in.tim = fi, ti
	})
	return in.infl, in.tim
}

// NewInstance validates dimension agreement between the three parts and the
// typed-execution-time assumption, and returns the bundle.
func NewInstance(a *app.Application, p *platform.Platform, f *failure.Matrix) (*Instance, error) {
	if a == nil || p == nil || f == nil {
		return nil, errors.New("core: nil instance component")
	}
	if p.NumTasks() != a.NumTasks() {
		return nil, fmt.Errorf("core: platform has %d task rows, application has %d tasks", p.NumTasks(), a.NumTasks())
	}
	if f.NumTasks() != a.NumTasks() {
		return nil, fmt.Errorf("core: failure matrix has %d task rows, application has %d tasks", f.NumTasks(), a.NumTasks())
	}
	if f.NumMachines() != p.NumMachines() {
		return nil, fmt.Errorf("core: failure matrix has %d machines, platform has %d", f.NumMachines(), p.NumMachines())
	}
	if err := p.CheckTypedTimes(a); err != nil {
		return nil, err
	}
	return &Instance{App: a, Platform: p, Failures: f}, nil
}

// N returns the number of tasks.
func (in *Instance) N() int { return in.App.NumTasks() }

// M returns the number of machines.
func (in *Instance) M() int { return in.Platform.NumMachines() }

// P returns the number of task types.
func (in *Instance) P() int { return in.App.NumTypes() }

// Mapping is an allocation function a: tasks -> machines. Unassigned tasks
// hold platform.NoMachine.
type Mapping struct {
	a []platform.MachineID
}

// NewMapping returns a mapping of n tasks, all unassigned.
func NewMapping(n int) *Mapping {
	m := &Mapping{a: make([]platform.MachineID, n)}
	for i := range m.a {
		m.a[i] = platform.NoMachine
	}
	return m
}

// FromSlice wraps an allocation vector (copied).
func FromSlice(a []platform.MachineID) *Mapping {
	cp := make([]platform.MachineID, len(a))
	copy(cp, a)
	return &Mapping{a: cp}
}

// Assign sets a(i) = u.
func (m *Mapping) Assign(i app.TaskID, u platform.MachineID) { m.a[i] = u }

// Unassign clears task i's machine.
func (m *Mapping) Unassign(i app.TaskID) { m.a[i] = platform.NoMachine }

// Machine returns a(i), or platform.NoMachine if unassigned.
func (m *Mapping) Machine(i app.TaskID) platform.MachineID { return m.a[i] }

// Len returns the number of tasks covered.
func (m *Mapping) Len() int { return len(m.a) }

// Complete reports whether every task has a machine.
func (m *Mapping) Complete() bool {
	for _, u := range m.a {
		if u == platform.NoMachine {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (m *Mapping) Clone() *Mapping { return FromSlice(m.a) }

// Slice returns a copy of the allocation vector.
func (m *Mapping) Slice() []platform.MachineID {
	cp := make([]platform.MachineID, len(m.a))
	copy(cp, m.a)
	return cp
}

// TasksOn returns the tasks assigned to machine u, in increasing ID order.
func (m *Mapping) TasksOn(u platform.MachineID) []app.TaskID {
	var out []app.TaskID
	for i, v := range m.a {
		if v == u {
			out = append(out, app.TaskID(i))
		}
	}
	return out
}

// UsedMachines returns the set of machines with at least one task.
func (m *Mapping) UsedMachines() []platform.MachineID {
	seen := map[platform.MachineID]bool{}
	var out []platform.MachineID
	for _, u := range m.a {
		if u != platform.NoMachine && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}

// String renders "T1->M3 T2->M1 ...".
func (m *Mapping) String() string {
	s := ""
	for i, u := range m.a {
		if i > 0 {
			s += " "
		}
		if u == platform.NoMachine {
			s += fmt.Sprintf("T%d->?", i+1)
		} else {
			s += fmt.Sprintf("T%d->M%d", i+1, int(u)+1)
		}
	}
	return s
}

// CheckRule verifies that the (complete) mapping respects the rule for the
// given application; it returns a descriptive error on the first violation.
func (m *Mapping) CheckRule(a *app.Application, rule Rule) error {
	switch rule {
	case OneToOne:
		owner := map[platform.MachineID]app.TaskID{}
		for i, u := range m.a {
			if u == platform.NoMachine {
				continue
			}
			if prev, ok := owner[u]; ok {
				return fmt.Errorf("core: one-to-one violated: machine M%d runs both T%d and T%d", int(u)+1, int(prev)+1, i+1)
			}
			owner[u] = app.TaskID(i)
		}
	case Specialized:
		spec := map[platform.MachineID]app.TypeID{}
		for i, u := range m.a {
			if u == platform.NoMachine {
				continue
			}
			ty := a.Type(app.TaskID(i))
			if prev, ok := spec[u]; ok && prev != ty {
				return fmt.Errorf("core: specialization violated: machine M%d runs types %d and %d", int(u)+1, prev, ty)
			}
			spec[u] = ty
		}
	case GeneralRule:
		// no constraint
	default:
		return fmt.Errorf("core: unknown rule %v", rule)
	}
	return nil
}
