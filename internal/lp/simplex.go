package lp

import (
	"fmt"
	"math"
)

// Numerical tolerances of the simplex.
const (
	pivotTol = 1e-9 // entries below this never pivot
	costTol  = 1e-9 // reduced costs above -costTol count as optimal
	feasTol  = 1e-7 // phase-1 objective below this means feasible
)

// defaultIterLimit bounds total pivots; generous for the model sizes the
// MIP produces (hundreds of rows).
const defaultIterLimit = 200000

// Solve optimizes the model with the two-phase primal simplex.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveWithLimit(defaultIterLimit)
}

// SolveWithLimit is Solve with an explicit pivot cap. When the cap trips —
// including mid-phase-1, before a feasible basis exists — the returned
// solution carries Status IterLimit with a zero X vector, never a partial
// tableau read-out.
func (m *Model) SolveWithLimit(iterLimit int) (*Solution, error) {
	if m.err != nil {
		return nil, m.err
	}
	std, err := m.standardize()
	if err != nil {
		// Bound-infeasible (lo > hi) models are reported as Infeasible
		// rather than an error: the MIP prunes such nodes.
		return &Solution{Status: Infeasible, X: make([]float64, m.numVars)}, nil
	}
	t := newTableau(std)
	sol := t.run(iterLimit)
	return m.unstandardize(std, sol), nil
}

// unstandardize maps a tableau solution back to model space: x = lower + x'
// plus fixed-variable substitutions. Non-optimal solutions get a zero X.
func (m *Model) unstandardize(std *standard, sol *Solution) *Solution {
	if sol.Status != Optimal {
		sol.X = make([]float64, m.numVars)
		sol.Objective = 0
		return sol
	}
	x := make([]float64, m.numVars)
	for v := 0; v < m.numVars; v++ {
		if std.fixed[v] {
			x[v] = m.lower[v]
			continue
		}
		x[v] = m.lower[v] + sol.X[std.col[v]]
	}
	obj := 0.0
	for v := 0; v < m.numVars; v++ {
		obj += m.obj[v] * x[v]
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Iterations: sol.Iterations}
}

// standard holds the model in "min c x, A x {<=,=} b, 0 <= x (<= ub rows)"
// form after substitution of fixed variables and lower-bound shifting.
type standard struct {
	nVars  int // shifted structural variables
	obj    []float64
	rows   [][]Coef
	senses []Sense
	rhs    []float64
	// col maps model variable -> structural column (undefined when fixed).
	col   []int
	fixed []bool
}

// standardize substitutes fixed variables (lo == hi), shifts the remaining
// ones by their lower bound, and materializes finite upper bounds as <=
// rows. GE rows are converted to LE by negation, so the tableau only sees
// LE and EQ.
func (m *Model) standardize() (*standard, error) {
	s := &standard{
		col:   make([]int, m.numVars),
		fixed: make([]bool, m.numVars),
	}
	for v := 0; v < m.numVars; v++ {
		lo, hi := m.lower[v], m.upper[v]
		if lo > hi {
			return nil, fmt.Errorf("lp: variable %s has empty domain [%v,%v]", m.Name(v), lo, hi)
		}
		if lo == hi {
			s.fixed[v] = true
			continue
		}
		s.col[v] = s.nVars
		s.nVars++
	}
	s.obj = make([]float64, s.nVars)
	for v := 0; v < m.numVars; v++ {
		if !s.fixed[v] {
			s.obj[s.col[v]] = m.obj[v]
		}
	}
	for r, row := range m.rows {
		var coefs []Coef
		rhs := m.rhs[r]
		for _, c := range row {
			// Substituting x = lo + x' moves c·lo to the RHS for both
			// fixed and shifted variables.
			rhs -= c.Val * m.lower[c.Var]
			if s.fixed[c.Var] {
				continue
			}
			coefs = append(coefs, Coef{Var: s.col[c.Var], Val: c.Val})
		}
		sense := m.senses[r]
		if len(coefs) == 0 {
			// Fully substituted row: check it holds.
			ok := false
			switch sense {
			case LE:
				ok = 0 <= rhs+feasTol
			case GE:
				ok = 0 >= rhs-feasTol
			case EQ:
				ok = math.Abs(rhs) <= feasTol
			}
			if !ok {
				return nil, fmt.Errorf("lp: row %d infeasible after substitution", r)
			}
			continue
		}
		if sense == GE {
			for i := range coefs {
				coefs[i].Val = -coefs[i].Val
			}
			rhs = -rhs
			sense = LE
		}
		s.rows = append(s.rows, coefs)
		s.senses = append(s.senses, sense)
		s.rhs = append(s.rhs, rhs)
	}
	// Finite upper bounds become x' <= hi - lo rows.
	for v := 0; v < m.numVars; v++ {
		if s.fixed[v] || math.IsInf(m.upper[v], 1) {
			continue
		}
		s.rows = append(s.rows, []Coef{{Var: s.col[v], Val: 1}})
		s.senses = append(s.senses, LE)
		s.rhs = append(s.rhs, m.upper[v]-m.lower[v])
	}
	return s, nil
}

// tableau is the dense simplex tableau: a is nRows × (nCols+1) with the RHS
// in the last column; basis[i] is the basic column of row i.
type tableau struct {
	nRows, nCols int
	nStruct      int // structural columns (prefix of 0..nStruct-1)
	nArt         int
	artStart     int
	a            [][]float64
	basis        []int
	// phase2cost is the structural objective padded with zeros for slack
	// and artificial columns.
	phase2cost []float64
}

func newTableau(s *standard) *tableau {
	return buildTableau(s, nil)
}

// buildTableau assembles the tableau. With a non-nil Workspace the rows are
// carved out of the workspace's flat backing buffer (grown as needed), so
// repeated same-shape solves reuse one allocation.
func buildTableau(s *standard, w *Workspace) *tableau {
	nRows := len(s.rows)
	// Columns: structural, one slack per LE row, one artificial per row
	// that needs one (negative-RHS LE rows and EQ rows).
	nSlack := 0
	for _, sense := range s.senses {
		if sense == LE {
			nSlack++
		}
	}
	t := &tableau{nRows: nRows, nStruct: s.nVars}
	slackStart := s.nVars
	t.artStart = s.nVars + nSlack
	// Worst case: an artificial for every row.
	t.nCols = t.artStart + nRows
	width := t.nCols + 1
	if w != nil {
		need := nRows * width
		if cap(w.flat) < need {
			w.flat = make([]float64, need)
		}
		w.flat = w.flat[:need]
		for i := range w.flat {
			w.flat[i] = 0
		}
		if cap(w.rowsBuf) < nRows {
			w.rowsBuf = make([][]float64, nRows)
		}
		t.a = w.rowsBuf[:nRows]
		w.basisBuf = growInts(w.basisBuf, nRows)
		t.basis = w.basisBuf
	} else {
		t.a = make([][]float64, nRows)
		t.basis = make([]int, nRows)
	}

	slack := 0
	art := 0
	for r := 0; r < nRows; r++ {
		var row []float64
		if w != nil {
			row = w.flat[r*width : (r+1)*width]
		} else {
			row = make([]float64, width)
		}
		for _, c := range s.rows[r] {
			row[c.Var] += c.Val
		}
		rhs := s.rhs[r]
		var slackCol = -1
		if s.senses[r] == LE {
			slackCol = slackStart + slack
			row[slackCol] = 1
			slack++
		}
		if rhs < 0 {
			// Negate so every RHS is nonnegative.
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			row[t.nCols] = rhs
		} else {
			row[t.nCols] = rhs
		}
		// Pick the initial basic variable: the slack if its coefficient
		// is +1, otherwise an artificial.
		if slackCol >= 0 && row[slackCol] == 1 {
			t.basis[r] = slackCol
		} else {
			ac := t.artStart + art
			art++
			row[ac] = 1
			t.basis[r] = ac
		}
		t.a[r] = row
	}
	t.nArt = art
	// Trim unused artificial columns.
	used := t.artStart + art
	for r := range t.a {
		rhs := t.a[r][t.nCols]
		t.a[r] = append(t.a[r][:used], rhs)
	}
	t.nCols = used
	if w != nil {
		w.costBuf = growFloats(w.costBuf, t.nCols)
		t.phase2cost = w.costBuf
		for i := range t.phase2cost {
			t.phase2cost[i] = 0
		}
	} else {
		t.phase2cost = make([]float64, t.nCols)
	}
	copy(t.phase2cost, s.obj)
	return t
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// run performs phase 1 (if artificials exist) and phase 2, returning the
// solution in structural-column space.
func (t *tableau) run(iterLimit int) *Solution {
	iters := 0
	if t.nArt > 0 {
		// Phase 1: minimize the sum of artificials.
		cost := make([]float64, t.nCols)
		for j := t.artStart; j < t.nCols; j++ {
			cost[j] = 1
		}
		z := t.priceOut(cost)
		st, n := t.iterate(z, cost, iterLimit, true)
		iters += n
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: iters}
		}
		if -z[t.nCols] > feasTol { // phase-1 optimum is -z[rhs]
			return &Solution{Status: Infeasible, Iterations: iters}
		}
		t.evictArtificials()
	}
	// Phase 2 on the (possibly row-reduced) tableau, artificials banned.
	cost := make([]float64, t.nCols)
	copy(cost, t.phase2cost)
	z := t.priceOut(cost)
	st, n := t.iterate(z, cost, iterLimit-iters, false)
	iters += n
	if st != Optimal {
		return &Solution{Status: st, Iterations: iters}
	}
	return t.extract(z, iters)
}

// extract reads the optimal basic solution out of the tableau.
func (t *tableau) extract(z []float64, iters int) *Solution {
	x := make([]float64, t.nStruct)
	for r, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.a[r][t.nCols]
		}
	}
	return &Solution{Status: Optimal, Objective: -z[t.nCols], X: x, Iterations: iters}
}

// priceOut builds the reduced-cost row z (length nCols+1) for the given
// cost vector: z_j = c_j - Σ_basic c_B · row, with -objective in the RHS
// slot.
func (t *tableau) priceOut(cost []float64) []float64 {
	z := make([]float64, t.nCols+1)
	copy(z, cost)
	for r, b := range t.basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		row := t.a[r]
		for j := 0; j <= t.nCols; j++ {
			z[j] -= cb * row[j]
		}
	}
	return z
}

// iterate pivots until optimal/unbounded or the iteration cap. banArt bans
// artificial columns from entering (used in both phases; in phase 1 they
// are already basic or zero-reduced-cost and re-entering them is useless).
func (t *tableau) iterate(z, cost []float64, iterLimit int, phase1 bool) (Status, int) {
	_ = cost
	stall := 0
	lastObj := math.Inf(1)
	for iter := 0; ; iter++ {
		if iter >= iterLimit {
			return IterLimit, iter
		}
		bland := stall > 2*t.nRows+50
		enter := -1
		best := -costTol
		for j := 0; j < t.nCols; j++ {
			if !phase1 && j >= t.artStart {
				break // artificials never re-enter in phase 2
			}
			if z[j] < best {
				if bland {
					enter = j
					break
				}
				best = z[j]
				enter = j
			}
		}
		if enter < 0 {
			return Optimal, iter
		}
		// Ratio test (Bland ties on the smallest basis column).
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < t.nRows; r++ {
			arj := t.a[r][enter]
			if arj <= pivotTol {
				continue
			}
			ratio := t.a[r][t.nCols] / arj
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && (leave < 0 || t.basis[r] < t.basis[leave])) {
				bestRatio = ratio
				leave = r
			}
		}
		if leave < 0 {
			return Unbounded, iter
		}
		t.pivot(leave, enter, z)
		obj := -z[t.nCols]
		if obj < lastObj-1e-12 {
			stall = 0
			lastObj = obj
		} else {
			stall++
		}
	}
}

// pivot makes column c basic in row r, updating all rows and the cost row z.
func (t *tableau) pivot(r, c int, z []float64) {
	row := t.a[r]
	p := row[c]
	inv := 1 / p
	for j := 0; j <= t.nCols; j++ {
		row[j] *= inv
	}
	row[c] = 1 // exact
	for i := 0; i < t.nRows; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.nCols; j++ {
			ri[j] -= f * row[j]
		}
		ri[c] = 0
	}
	if f := z[c]; f != 0 {
		for j := 0; j <= t.nCols; j++ {
			z[j] -= f * row[j]
		}
		z[c] = 0
	}
	t.basis[r] = c
}

// evictArtificials removes basic artificials after phase 1 by pivoting on
// the largest-magnitude non-artificial column of their row — the stable
// choice under degeneracy, keeping the pivotTol discipline from amplifying
// round-off the way a first-over-threshold pick can — or deleting the row
// when every such entry is below pivotTol (redundant constraint). One
// scratch cost row is shared across all evictions.
func (t *tableau) evictArtificials() {
	var scratch []float64
	for r := 0; r < t.nRows; {
		if t.basis[r] < t.artStart {
			r++
			continue
		}
		best, bestAbs := -1, pivotTol
		for j := 0; j < t.artStart; j++ {
			if a := math.Abs(t.a[r][j]); a > bestAbs {
				best, bestAbs = j, a
			}
		}
		if best >= 0 {
			if scratch == nil {
				scratch = make([]float64, t.nCols+1)
			}
			t.pivot(r, best, scratch)
			r++
			continue
		}
		// Redundant row: drop it.
		t.a = append(t.a[:r], t.a[r+1:]...)
		t.basis = append(t.basis[:r], t.basis[r+1:]...)
		t.nRows--
	}
}
