package lp

import "math"

// realizeTol is the minimum pivot magnitude accepted while re-realizing a
// saved basis against a child model's (slightly different) matrix; stricter
// than pivotTol because a marginal pivot here poisons every later row.
const realizeTol = 1e-7

// Workspace solves a stream of same-shaped models with basis warm starts:
// after each Optimal solve it remembers the optimal basis, and the next
// solve of a model with the same tableau shape first re-realizes that basis
// against the new coefficients, then repairs it — with plain primal phase 2
// when the basis is still feasible, or a bounded dual-simplex run when only
// the reduced costs survived (the typical child node: a few RHS entries
// went negative). Either way a near-miss costs a handful of pivots instead
// of a fresh two-phase solve. Any trouble on the warm path — shape change,
// singular basis, dual infeasibility, stall — falls back to the ordinary
// cold solve, so results are exactly what Model.SolveWithLimit would
// return; a basis is only ever saved from an Optimal solve, never from a
// tripped iteration cap, so no stale tableau can seed a later solve.
//
// The exact solver's LP bound holds one Workspace per searcher: sibling
// nodes at one depth share a tableau shape, so the parent/previous-sibling
// basis is one short dual-simplex walk away. A Workspace is not safe for
// concurrent use.
type Workspace struct {
	// Tableau backing storage, reused across solves.
	flat     []float64
	rowsBuf  [][]float64
	basisBuf []int
	costBuf  []float64
	scratch  []float64

	// Saved basis of the last Optimal solve, keyed by tableau shape.
	saved                          []int
	savedRows, savedCols, savedArt int
	haveBasis                      bool

	// Warm-start effectiveness counters (Stats).
	solves, warmHits int
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Stats reports how many solves the workspace has run and how many were
// completed on the warm path (basis realized and repaired without a cold
// two-phase solve).
func (w *Workspace) Stats() (solves, warmHits int) { return w.solves, w.warmHits }

// Reset drops the saved basis (the counters and buffers are kept).
func (w *Workspace) Reset() { w.haveBasis = false }

// Solve optimizes the model with the default pivot cap, warm-starting from
// the previous Optimal basis when the tableau shape matches.
func (w *Workspace) Solve(m *Model) (*Solution, error) {
	return w.SolveWithLimit(m, defaultIterLimit)
}

// SolveWithLimit is Solve with an explicit pivot cap shared by the warm
// attempt and any cold fallback. The returned solution matches what
// Model.SolveWithLimit would produce (the warm path only changes which
// optimal basis is reached, within the solver's tolerances).
func (w *Workspace) SolveWithLimit(m *Model, iterLimit int) (*Solution, error) {
	if m.err != nil {
		return nil, m.err
	}
	w.solves++
	std, err := m.standardize()
	if err != nil {
		return &Solution{Status: Infeasible, X: make([]float64, m.numVars)}, nil
	}
	t := buildTableau(std, w)
	spent := 0
	if w.haveBasis && w.savedRows == t.nRows && w.savedCols == t.nCols && w.savedArt == t.artStart {
		sol, used, ok := w.warmRun(t, iterLimit)
		spent = used
		if ok {
			w.warmHits++
			w.note(t, sol)
			return m.unstandardize(std, sol), nil
		}
		// The warm attempt pivoted the tableau; rebuild before cold-solving.
		t = buildTableau(std, w)
	}
	sol := t.run(max(iterLimit-spent, 0))
	sol.Iterations += spent
	w.note(t, sol)
	return m.unstandardize(std, sol), nil
}

// note records the outcome: Optimal saves the basis for the next solve,
// anything else invalidates it (admissibility over speed — a cap-tripped or
// infeasible tableau must never seed a warm start).
func (w *Workspace) note(t *tableau, sol *Solution) {
	if sol.Status != Optimal {
		w.haveBasis = false
		return
	}
	w.saved = append(w.saved[:0], t.basis...)
	w.savedRows, w.savedCols, w.savedArt = t.nRows, t.nCols, t.artStart
	w.haveBasis = true
}

// warmRun tries to finish the solve from the saved basis. It returns the
// solution, the pivots spent, and whether the warm path completed; on false
// the tableau has been mutated and the caller must rebuild it.
func (w *Workspace) warmRun(t *tableau, iterLimit int) (*Solution, int, bool) {
	// An artificial in the saved basis (possible only for degenerate
	// equality systems) is not worth repairing here.
	for _, b := range w.saved {
		if b >= t.artStart {
			return nil, 0, false
		}
	}
	if len(w.scratch) < t.nCols+1 {
		w.scratch = make([]float64, t.nCols+1)
	}
	// Realize the saved basis against the new coefficients by Gaussian
	// pivoting, choosing for each basic column the largest remaining pivot
	// (rows may permute; the basis is a set). A pivot below realizeTol
	// means the saved basis is singular for this matrix: cold-solve.
	iters := 0
	for i, b := range w.saved {
		best, bestAbs := -1, realizeTol
		for r := i; r < t.nRows; r++ {
			if a := math.Abs(t.a[r][b]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return nil, iters, false
		}
		t.a[i], t.a[best] = t.a[best], t.a[i]
		t.basis[i], t.basis[best] = t.basis[best], t.basis[i]
		t.pivot(i, b, w.scratch)
		iters++
		if iters >= iterLimit {
			return nil, iters, false
		}
	}
	z := t.priceOut(t.phase2cost)

	primalFeasible := true
	for r := 0; r < t.nRows; r++ {
		if t.a[r][t.nCols] < -feasTol {
			primalFeasible = false
			break
		}
	}
	if !primalFeasible {
		// Dual simplex: valid only while the reduced costs stay
		// nonnegative. If realization broke dual feasibility the saved
		// basis bought nothing — cold-solve.
		for j := 0; j < t.artStart; j++ {
			if z[j] < -costTol {
				return nil, iters, false
			}
		}
		maxDual := 2*t.nRows + 50
		for dual := 0; ; dual++ {
			if dual >= maxDual || iters >= iterLimit {
				return nil, iters, false
			}
			leave, most := -1, -feasTol
			for r := 0; r < t.nRows; r++ {
				if rhs := t.a[r][t.nCols]; rhs < most {
					most, leave = rhs, r
				}
			}
			if leave < 0 {
				break // primal feasibility restored
			}
			enter, bestRatio := -1, math.Inf(1)
			row := t.a[leave]
			for j := 0; j < t.artStart; j++ {
				arj := row[j]
				if arj >= -pivotTol {
					continue
				}
				ratio := z[j] / -arj
				if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && (enter < 0 || j < enter)) {
					bestRatio, enter = ratio, j
				}
			}
			if enter < 0 {
				// Dual unbounded (primal infeasible) — let the cold
				// two-phase solve confirm rather than trusting a
				// realized-from-guess basis with a verdict.
				return nil, iters, false
			}
			t.pivot(leave, enter, z)
			iters++
		}
	}
	// Primal clean-up from the (now feasible) basis; usually 0-2 pivots.
	st, n := t.iterate(z, t.phase2cost, max(iterLimit-iters, 0), false)
	iters += n
	if st != Optimal {
		return nil, iters, false
	}
	return t.extract(z, iters), iters, true
}
