package lp

import (
	"math"
	"math/rand"
	"testing"
)

func requireStatus(t *testing.T, sol *Solution, want Status) {
	t.Helper()
	if sol.Status != want {
		t.Fatalf("status = %v, want %v", sol.Status, want)
	}
}

func TestSolveSimple2D(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6, x,y>=0  → min -(x+y), opt at (1.6,1.2) = 2.8
	m := NewModel(2)
	m.SetObj(0, -1)
	m.SetObj(1, -1)
	m.AddRow([]Coef{{0, 1}, {1, 2}}, LE, 4)
	m.AddRow([]Coef{{0, 3}, {1, 1}}, LE, 6)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Optimal)
	if math.Abs(sol.Objective-(-2.8)) > 1e-8 {
		t.Fatalf("objective = %v, want -2.8", sol.Objective)
	}
	if math.Abs(sol.X[0]-1.6) > 1e-8 || math.Abs(sol.X[1]-1.2) > 1e-8 {
		t.Fatalf("x = %v, want (1.6, 1.2)", sol.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// min x+y s.t. x+y=3, x-y>=1 → (2,1), obj 3.
	m := NewModel(2)
	m.SetObj(0, 1)
	m.SetObj(1, 1)
	m.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 3)
	m.AddRow([]Coef{{0, 1}, {1, -1}}, GE, 1)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Optimal)
	if math.Abs(sol.Objective-3) > 1e-8 {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
	if math.Abs(sol.X[0]+sol.X[1]-3) > 1e-8 {
		t.Fatalf("x+y = %v, want 3", sol.X[0]+sol.X[1])
	}
	if sol.X[0]-sol.X[1] < 1-1e-8 {
		t.Fatalf("x-y = %v, want >= 1", sol.X[0]-sol.X[1])
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := NewModel(1)
	m.AddRow([]Coef{{0, 1}}, GE, 5)
	m.AddRow([]Coef{{0, 1}}, LE, 1)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Infeasible)
}

func TestSolveUnbounded(t *testing.T) {
	m := NewModel(1)
	m.SetObj(0, -1) // min -x, x >= 0, no upper constraint
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Unbounded)
}

func TestSolveBounds(t *testing.T) {
	// min -x with x in [2, 7] → x=7.
	m := NewModel(1)
	m.SetObj(0, -1)
	m.SetBounds(0, 2, 7)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Optimal)
	if math.Abs(sol.X[0]-7) > 1e-8 {
		t.Fatalf("x = %v, want 7", sol.X[0])
	}
}

func TestSolveFixedVariableSubstitution(t *testing.T) {
	// x fixed at 2; min y s.t. y >= 10 - 3x → y = 4.
	m := NewModel(2)
	m.SetBounds(0, 2, 2)
	m.SetObj(1, 1)
	m.AddRow([]Coef{{1, 1}, {0, 3}}, GE, 10)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Optimal)
	if math.Abs(sol.X[0]-2) > 1e-12 || math.Abs(sol.X[1]-4) > 1e-8 {
		t.Fatalf("x = %v, want (2, 4)", sol.X)
	}
}

func TestSolveEmptyDomainIsInfeasible(t *testing.T) {
	m := NewModel(1)
	m.SetBounds(0, 3, 1)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Infeasible)
}

func TestSolveDegenerate(t *testing.T) {
	// A classically degenerate LP (multiple identical corners); Bland must
	// terminate. min -0.75x1 + 150x2 - 0.02x3 + 6x4 (Beale's cycling example).
	m := NewModel(4)
	m.SetObj(0, -0.75)
	m.SetObj(1, 150)
	m.SetObj(2, -0.02)
	m.SetObj(3, 6)
	m.AddRow([]Coef{{0, 0.25}, {1, -60}, {2, -1.0 / 25}, {3, 9}}, LE, 0)
	m.AddRow([]Coef{{0, 0.5}, {1, -90}, {2, -1.0 / 50}, {3, 3}}, LE, 0)
	m.AddRow([]Coef{{2, 1}}, LE, 1)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Optimal)
	if math.Abs(sol.Objective-(-0.05)) > 1e-8 {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
}

// vertexEnumerate brute-forces tiny LPs (n vars, all-LE rows, x>=0) by
// enumerating all basic solutions from row subsets; returns the best
// feasible objective, or +Inf when none.
func vertexEnumerate(obj []float64, rows [][]float64, rhs []float64) float64 {
	n := len(obj)
	var all [][]float64
	var allB []float64
	for i, r := range rows {
		all = append(all, r)
		allB = append(allB, rhs[i])
	}
	// Add axis planes x_i = 0.
	for i := 0; i < n; i++ {
		r := make([]float64, n)
		r[i] = 1
		all = append(all, r)
		allB = append(allB, 0)
	}
	feasible := func(x []float64) bool {
		for i, r := range rows {
			s := 0.0
			for j := range x {
				s += r[j] * x[j]
			}
			if s > rhs[i]+1e-7 {
				return false
			}
		}
		for _, v := range x {
			if v < -1e-7 {
				return false
			}
		}
		return true
	}
	best := math.Inf(1)
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			A := make([][]float64, n)
			b := make([]float64, n)
			for i, ri := range idx {
				A[i] = append([]float64(nil), all[ri]...)
				b[i] = allB[ri]
			}
			x, ok := gauss(A, b)
			if !ok || !feasible(x) {
				return
			}
			o := 0.0
			for j := range x {
				o += obj[j] * x[j]
			}
			if o < best {
				best = o
			}
			return
		}
		for i := start; i < len(all); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

func gauss(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		p := col
		for r := col; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-10 {
			return nil, false
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}

func TestSolveAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(2) // 2..3 vars
		k := 2 + rng.Intn(3) // 2..4 rows
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.Float64()*4 - 2
		}
		rows := make([][]float64, k)
		rhs := make([]float64, k)
		for i := range rows {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = rng.Float64() * 3
			}
			rhs[i] = 1 + rng.Float64()*5
		}
		// Bound the feasible region so the LP is never unbounded.
		box := make([]float64, n)
		for j := range box {
			box[j] = 1
		}
		rows = append(rows, box)
		rhs = append(rhs, 10)

		m := NewModel(n)
		for j := range obj {
			m.SetObj(j, obj[j])
		}
		for i := range rows {
			var cs []Coef
			for j, v := range rows[i] {
				cs = append(cs, Coef{j, v})
			}
			m.AddRow(cs, LE, rhs[i])
		}
		sol, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		requireStatus(t, sol, Optimal)
		want := vertexEnumerate(obj, rows, rhs)
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: simplex %v != vertex enumeration %v", trial, sol.Objective, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewModel(2)
	m.SetObj(0, 1)
	m.AddRow([]Coef{{0, 1}, {1, 1}}, GE, 2)
	c := m.Clone()
	c.SetBounds(0, 5, 5)
	if lo, _ := m.Bounds(0); lo != 0 {
		t.Fatalf("clone mutated parent bounds: lo=%v", lo)
	}
	if c.NumRows() != m.NumRows() {
		t.Fatalf("rows differ after clone")
	}
}

func TestAddRowMergesDuplicates(t *testing.T) {
	m := NewModel(1)
	m.SetObj(0, 1)
	m.AddRow([]Coef{{0, 1}, {0, 2}}, GE, 6) // 3x >= 6
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, Optimal)
	if math.Abs(sol.X[0]-2) > 1e-8 {
		t.Fatalf("x = %v, want 2", sol.X[0])
	}
}
