package lp

import (
	"math"
	"testing"
)

func TestIterationLimitStatus(t *testing.T) {
	// A non-trivial LP with a 1-pivot cap must report the limit.
	m := NewModel(3)
	m.SetObj(0, -1)
	m.SetObj(1, -2)
	m.SetObj(2, -1)
	m.AddRow([]Coef{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
	m.AddRow([]Coef{{0, 2}, {1, 1}}, LE, 8)
	m.AddRow([]Coef{{1, 1}, {2, 3}}, LE, 9)
	sol, err := m.SolveWithLimit(1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit && sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Status == Optimal {
		t.Skip("solved in one pivot; nothing to assert")
	}
}

func TestMatrixExport(t *testing.T) {
	m := NewModel(2)
	m.AddRow([]Coef{{0, 3}, {1, -1}}, LE, 5)
	m.AddRow([]Coef{{1, 2}}, GE, 1)
	mat := m.Matrix()
	r, c := mat.Dims()
	if r != 2 || c != 2 {
		t.Fatalf("dims (%d,%d)", r, c)
	}
	if mat.At(0, 0) != 3 || mat.At(0, 1) != -1 || mat.At(1, 1) != 2 {
		t.Fatal("matrix entries wrong")
	}
}

func TestNamesAndObjCoef(t *testing.T) {
	m := NewModel(2)
	if m.Name(0) != "x0" {
		t.Fatalf("default name %q", m.Name(0))
	}
	m.SetName(0, "K")
	if m.Name(0) != "K" {
		t.Fatal("SetName ignored")
	}
	m.SetObj(1, 4.5)
	if m.ObjCoef(1) != 4.5 || m.ObjCoef(0) != 0 {
		t.Fatal("ObjCoef wrong")
	}
}

func TestSenseStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("sense strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Fatal("status strings wrong")
	}
}

func TestAddRowPanicsOnBadVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewModel(1).AddRow([]Coef{{5, 1}}, LE, 0)
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows exercise the evictArtificials redundant-row
	// path.
	m := NewModel(2)
	m.SetObj(0, 1)
	m.SetObj(1, 1)
	m.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 4)
	m.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 4)
	m.AddRow([]Coef{{0, 2}, {1, 2}}, EQ, 8)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-8 {
		t.Fatalf("status %v obj %v", sol.Status, sol.Objective)
	}
}

func TestNegativeRHSRows(t *testing.T) {
	// -x <= -3  (i.e. x >= 3), minimize x.
	m := NewModel(1)
	m.SetObj(0, 1)
	m.AddRow([]Coef{{0, -1}}, LE, -3)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.X[0]-3) > 1e-8 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestFullySubstitutedRowChecks(t *testing.T) {
	// Every variable fixed: rows degenerate to constants; infeasible ones
	// must be caught.
	m := NewModel(1)
	m.SetBounds(0, 2, 2)
	m.AddRow([]Coef{{0, 1}}, EQ, 5) // 2 == 5: impossible
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
	ok := NewModel(1)
	ok.SetBounds(0, 2, 2)
	ok.AddRow([]Coef{{0, 1}}, LE, 5)
	sol2, err := ok.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Optimal || sol2.X[0] != 2 {
		t.Fatalf("status %v x %v", sol2.Status, sol2.X)
	}
}
