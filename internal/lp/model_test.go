package lp

import (
	"errors"
	"math"
	"testing"
)

func TestIterationLimitStatus(t *testing.T) {
	// A non-trivial LP with a 1-pivot cap must report the limit.
	m := NewModel(3)
	m.SetObj(0, -1)
	m.SetObj(1, -2)
	m.SetObj(2, -1)
	m.AddRow([]Coef{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
	m.AddRow([]Coef{{0, 2}, {1, 1}}, LE, 8)
	m.AddRow([]Coef{{1, 1}, {2, 3}}, LE, 9)
	sol, err := m.SolveWithLimit(1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit && sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Status == Optimal {
		t.Skip("solved in one pivot; nothing to assert")
	}
}

func TestMatrixExport(t *testing.T) {
	m := NewModel(2)
	m.AddRow([]Coef{{0, 3}, {1, -1}}, LE, 5)
	m.AddRow([]Coef{{1, 2}}, GE, 1)
	mat := m.Matrix()
	r, c := mat.Dims()
	if r != 2 || c != 2 {
		t.Fatalf("dims (%d,%d)", r, c)
	}
	if mat.At(0, 0) != 3 || mat.At(0, 1) != -1 || mat.At(1, 1) != 2 {
		t.Fatal("matrix entries wrong")
	}
}

func TestNamesAndObjCoef(t *testing.T) {
	m := NewModel(2)
	if m.Name(0) != "x0" {
		t.Fatalf("default name %q", m.Name(0))
	}
	m.SetName(0, "K")
	if m.Name(0) != "K" {
		t.Fatal("SetName ignored")
	}
	m.SetObj(1, 4.5)
	if m.ObjCoef(1) != 4.5 || m.ObjCoef(0) != 0 {
		t.Fatal("ObjCoef wrong")
	}
}

func TestSenseStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("sense strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Fatal("status strings wrong")
	}
}

func TestAddRowLatchesBadVar(t *testing.T) {
	// An out-of-range variable index must not panic (the model may be built
	// inside a long-lived daemon): AddRow drops the row, latches ErrBadVar,
	// and every solve entry point surfaces it.
	m := NewModel(1)
	if r := m.AddRow([]Coef{{5, 1}}, LE, 0); r != -1 {
		t.Fatalf("bad row accepted with index %d", r)
	}
	if !errors.Is(m.Err(), ErrBadVar) {
		t.Fatalf("Err() = %v, want ErrBadVar", m.Err())
	}
	if m.NumRows() != 0 {
		t.Fatalf("bad row retained: %d rows", m.NumRows())
	}
	if _, err := m.Solve(); !errors.Is(err, ErrBadVar) {
		t.Fatalf("Solve err = %v, want ErrBadVar", err)
	}
	if _, err := m.SolveWithLimit(10); !errors.Is(err, ErrBadVar) {
		t.Fatalf("SolveWithLimit err = %v, want ErrBadVar", err)
	}
	if _, err := NewWorkspace().Solve(m); !errors.Is(err, ErrBadVar) {
		t.Fatalf("Workspace.Solve err = %v, want ErrBadVar", err)
	}
	// The latch survives Clone and is cleared by Reset.
	if !errors.Is(m.Clone().Err(), ErrBadVar) {
		t.Fatal("Clone dropped the latched error")
	}
	m.Reset(2)
	if m.Err() != nil {
		t.Fatalf("Reset kept the latched error: %v", m.Err())
	}
	if r := m.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 3); r != 0 {
		t.Fatalf("row index after Reset = %d", r)
	}
	if sol, err := m.Solve(); err != nil || sol.Status != Optimal {
		t.Fatalf("post-Reset solve: %v %v", sol, err)
	}
	if r := m.AddRow([]Coef{{-1, 1}}, LE, 0); r != -1 || !errors.Is(m.Err(), ErrBadVar) {
		t.Fatal("negative index not latched")
	}
}

func TestModelReset(t *testing.T) {
	// Reset must give back a pristine model of the new size, recycling row
	// storage: building the same model repeatedly settles at zero
	// steady-state allocations.
	m := NewModel(3)
	m.SetObj(2, 7)
	m.SetBounds(1, -4, 4)
	m.SetName(0, "K")
	m.AddRow([]Coef{{0, 1}, {1, 1}}, LE, 2)
	m.Reset(2)
	if m.NumVars() != 2 || m.NumRows() != 0 {
		t.Fatalf("dims after Reset: %d vars %d rows", m.NumVars(), m.NumRows())
	}
	if m.ObjCoef(0) != 0 || m.ObjCoef(1) != 0 || m.Name(0) != "x0" {
		t.Fatal("objective or names survived Reset")
	}
	if lo, hi := m.Bounds(1); lo != 0 || !math.IsInf(hi, 1) {
		t.Fatalf("bounds after Reset: [%v,%v]", lo, hi)
	}

	build := func() {
		m.Reset(2)
		m.SetObj(0, 1)
		m.SetObj(1, 2)
		m.AddRow([]Coef{{0, 1}, {1, 1}}, GE, 2)
		m.AddRow([]Coef{{0, 1}}, LE, 5)
	}
	build() // warm the spare-row pool
	build()
	if n := testing.AllocsPerRun(20, build); n != 0 {
		t.Fatalf("rebuild allocates %v per cycle, want 0", n)
	}
	build()
	sol, err := m.Solve()
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("recycled model solve: %v %v", sol, err)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows exercise the evictArtificials redundant-row
	// path.
	m := NewModel(2)
	m.SetObj(0, 1)
	m.SetObj(1, 1)
	m.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 4)
	m.AddRow([]Coef{{0, 1}, {1, 1}}, EQ, 4)
	m.AddRow([]Coef{{0, 2}, {1, 2}}, EQ, 8)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-8 {
		t.Fatalf("status %v obj %v", sol.Status, sol.Objective)
	}
}

func TestNegativeRHSRows(t *testing.T) {
	// -x <= -3  (i.e. x >= 3), minimize x.
	m := NewModel(1)
	m.SetObj(0, 1)
	m.AddRow([]Coef{{0, -1}}, LE, -3)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.X[0]-3) > 1e-8 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestFullySubstitutedRowChecks(t *testing.T) {
	// Every variable fixed: rows degenerate to constants; infeasible ones
	// must be caught.
	m := NewModel(1)
	m.SetBounds(0, 2, 2)
	m.AddRow([]Coef{{0, 1}}, EQ, 5) // 2 == 5: impossible
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
	ok := NewModel(1)
	ok.SetBounds(0, 2, 2)
	ok.AddRow([]Coef{{0, 1}}, LE, 5)
	sol2, err := ok.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Optimal || sol2.X[0] != 2 {
		t.Fatalf("status %v x %v", sol2.Status, sol2.X)
	}
}
