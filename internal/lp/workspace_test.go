package lp

import (
	"math"
	"math/rand"
	"testing"
)

// boundLikeModel builds the shape the exact solver's LP bound emits: min T
// with per-task convexity rows (EQ), per-machine load rows (LE with -T),
// and optional capacity rows — coefficients and RHS jittered by rng so a
// stream of these models mimics sibling search nodes.
func boundLikeModel(rng *rand.Rand, n, m int, caps bool) *Model {
	md := NewModel(1 + n*m)
	md.SetObj(0, 1)
	yv := func(i, u int) int { return 1 + i*m + u }
	for i := 0; i < n; i++ {
		row := make([]Coef, 0, m)
		for u := 0; u < m; u++ {
			row = append(row, Coef{Var: yv(i, u), Val: 1})
		}
		md.AddRow(row, EQ, 1)
	}
	for u := 0; u < m; u++ {
		row := make([]Coef, 0, n+1)
		row = append(row, Coef{Var: 0, Val: -1})
		for i := 0; i < n; i++ {
			row = append(row, Coef{Var: yv(i, u), Val: 0.2 + rng.Float64()})
		}
		md.AddRow(row, LE, -rng.Float64()*2)
	}
	if caps {
		for u := 0; u < m; u++ {
			row := make([]Coef, 0, n)
			for i := 0; i < n; i++ {
				row = append(row, Coef{Var: yv(i, u), Val: 1})
			}
			md.AddRow(row, LE, 1+float64(rng.Intn(2)))
		}
	}
	return md
}

// TestWorkspaceMatchesColdSolve streams perturbed same-shape models through
// one Workspace and checks every solve against Model.Solve: same status,
// same objective. This is the correctness contract the exact solver's LP
// bound leans on — a warm start may land on a different optimal basis, but
// never a different optimum.
func TestWorkspaceMatchesColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w := NewWorkspace()
	for _, caps := range []bool{false, true} {
		w.Reset()
		for trial := 0; trial < 80; trial++ {
			md := boundLikeModel(rng, 4, 3, caps)
			warm, err := w.Solve(md)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := md.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("caps=%v trial %d: warm %v cold %v", caps, trial, warm.Status, cold.Status)
			}
			if cold.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-7*(1+math.Abs(cold.Objective)) {
				t.Fatalf("caps=%v trial %d: warm obj %v cold obj %v", caps, trial, warm.Objective, cold.Objective)
			}
		}
	}
	solves, hits := w.Stats()
	if solves == 0 || hits == 0 {
		t.Fatalf("warm path never exercised: %d solves, %d hits", solves, hits)
	}
}

// TestWorkspaceWarmHitRate pins that sibling-like model streams (identical
// shape, small RHS/cost drift) actually ride the warm path most of the
// time; a silent fall-through to cold solves would make the LP bound pay a
// full two-phase solve per node.
func TestWorkspaceWarmHitRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWorkspace()
	base := boundLikeModel(rng, 5, 3, false)
	if sol, err := w.Solve(base); err != nil || sol.Status != Optimal {
		t.Fatalf("seed solve: %v %v", sol, err)
	}
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		md := base.Clone()
		for u := 0; u < 3; u++ {
			// Drift the machine rows' RHS: the child node placed a task, so
			// loads grew a little.
			md.rhs[5+u] -= rng.Float64() * 0.3
		}
		sol, err := w.Solve(md)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
	}
	solves, hits := w.Stats()
	if hits*2 < trials {
		t.Fatalf("warm hits %d / %d solves: warm path not earning its keep", hits, solves)
	}
}

// TestWorkspaceShapeChangeFallsBack checks that a shape change between
// solves silently cold-starts instead of misapplying the saved basis.
func TestWorkspaceShapeChangeFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := NewWorkspace()
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(3)
		md := boundLikeModel(rng, n, m, trial%2 == 0)
		warm, err := w.Solve(md)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := md.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status ||
			(cold.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-7*(1+math.Abs(cold.Objective))) {
			t.Fatalf("trial %d (n=%d m=%d): warm %v/%v cold %v/%v",
				trial, n, m, warm.Status, warm.Objective, cold.Status, cold.Objective)
		}
	}
}

// TestWorkspaceIterLimitNeverSeedsBasis: a cap tripped mid-phase-1 must
// come back as IterLimit with a zero X, and must not leave a basis behind
// that a later solve warm-starts from.
func TestWorkspaceIterLimitNeverSeedsBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	w := NewWorkspace()
	md := boundLikeModel(rng, 5, 3, true)
	sol, err := w.SolveWithLimit(md, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Skipf("solved within one pivot (status %v); nothing to assert", sol.Status)
	}
	for _, x := range sol.X {
		if x != 0 {
			t.Fatalf("IterLimit leaked a partial tableau: X=%v", sol.X)
		}
	}
	if sol.Objective != 0 {
		t.Fatalf("IterLimit objective = %v, want 0", sol.Objective)
	}
	if w.haveBasis {
		t.Fatal("cap-tripped solve saved a basis")
	}
	// The very next solve must be a clean cold solve with the full limit.
	full, err := w.Solve(md)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := md.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != cold.Status || math.Abs(full.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("post-cap solve diverged: %v/%v vs %v/%v", full.Status, full.Objective, cold.Status, cold.Objective)
	}
}

// TestWorkspaceInfeasibleAndBoundErrors covers the degenerate entries: an
// infeasible model, and a bound-infeasible (lo > hi) model, through the
// workspace path.
func TestWorkspaceInfeasibleAndBoundErrors(t *testing.T) {
	w := NewWorkspace()
	m := NewModel(1)
	m.SetObj(0, 1)
	m.AddRow([]Coef{{0, 1}}, GE, 5)
	m.AddRow([]Coef{{0, 1}}, LE, 1)
	sol, err := w.Solve(m)
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("infeasible: %v %v", sol, err)
	}
	b := NewModel(1)
	b.SetBounds(0, 3, 1)
	sol, err = w.Solve(b)
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("bound-infeasible: %v %v", sol, err)
	}
}
