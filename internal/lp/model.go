// Package lp is a self-contained linear-programming solver: models with
// bounded variables and <=/==/>= rows, solved by a two-phase primal simplex
// over a dense tableau (Dantzig pricing with an automatic switch to Bland's
// rule to break degeneracy cycles).
//
// It substitutes for the commercial solver (CPLEX) the paper uses to obtain
// exact optima on small instances; the branch-and-bound layer lives in
// package mip.
package lp

import (
	"errors"
	"fmt"
	"math"

	"microfab/internal/sparse"
)

// ErrBadVar is latched by AddRow when a coefficient names a variable index
// outside [0, NumVars); Solve and SolveWithLimit surface it. Inside
// long-lived daemons (mfserve, mfworker) a malformed model must be a
// reported error, not a process kill.
var ErrBadVar = errors.New("lp: variable index out of range")

// Sense is a row relation.
type Sense int

const (
	// LE is ax <= b.
	LE Sense = iota
	// GE is ax >= b.
	GE
	// EQ is ax == b.
	EQ
)

// String renders the relation.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Coef is one nonzero of a row.
type Coef struct {
	Var int
	Val float64
}

// Model is a minimization LP: min c·x subject to rows and variable bounds.
// Build with NewModel, then AddRow/SetObj/SetBounds; Solve leaves the model
// unchanged, so a MIP search can solve many variants of one model.
type Model struct {
	numVars int
	obj     []float64
	lower   []float64
	upper   []float64 // +Inf when unbounded above
	names   []string

	rows   [][]Coef
	senses []Sense
	rhs    []float64

	// spare recycles retired []Coef backing arrays across Reset cycles so a
	// per-node model rebuild settles at zero row allocations.
	spare [][]Coef
	err   error // latched by AddRow, surfaced by Solve
}

// NewModel returns a model with numVars variables, objective 0 and default
// bounds [0, +Inf).
func NewModel(numVars int) *Model {
	m := &Model{
		numVars: numVars,
		obj:     make([]float64, numVars),
		lower:   make([]float64, numVars),
		upper:   make([]float64, numVars),
		names:   make([]string, numVars),
	}
	for i := range m.upper {
		m.upper[i] = math.Inf(1)
	}
	return m
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return m.numVars }

// NumRows returns the number of constraint rows.
func (m *Model) NumRows() int { return len(m.rows) }

// SetObj sets the objective coefficient of variable v.
func (m *Model) SetObj(v int, c float64) { m.obj[v] = c }

// ObjCoef returns the objective coefficient of variable v.
func (m *Model) ObjCoef(v int) float64 { return m.obj[v] }

// SetBounds sets [lo, hi] for variable v (hi may be +Inf).
func (m *Model) SetBounds(v int, lo, hi float64) {
	m.lower[v] = lo
	m.upper[v] = hi
}

// Bounds returns the bounds of variable v.
func (m *Model) Bounds(v int) (lo, hi float64) { return m.lower[v], m.upper[v] }

// SetName labels variable v for diagnostics.
func (m *Model) SetName(v int, name string) { m.names[v] = name }

// Name returns variable v's label (or "x<v>").
func (m *Model) Name(v int) string {
	if m.names[v] != "" {
		return m.names[v]
	}
	return fmt.Sprintf("x%d", v)
}

// AddRow appends a constraint; coefficients on the same variable are summed.
// A coefficient naming a variable outside [0, NumVars) latches ErrBadVar on
// the model (retrievable via Err, reported by Solve) and the row is dropped;
// AddRow then returns -1.
func (m *Model) AddRow(coefs []Coef, sense Sense, rhs float64) int {
	var cp []Coef
	if n := len(m.spare); n > 0 {
		cp = m.spare[n-1][:0]
		m.spare = m.spare[:n-1]
	} else {
		cp = make([]Coef, 0, len(coefs))
	}
	for _, c := range coefs {
		if c.Var < 0 || c.Var >= m.numVars {
			if m.err == nil {
				m.err = fmt.Errorf("%w: %d not in [0,%d) (row %d)", ErrBadVar, c.Var, m.numVars, len(m.rows))
			}
			m.spare = append(m.spare, cp)
			return -1
		}
		// Rows are short (a handful to a few dozen nonzeros); a linear
		// duplicate scan beats a per-call map allocation.
		dup := false
		for j := range cp {
			if cp[j].Var == c.Var {
				cp[j].Val += c.Val
				dup = true
				break
			}
		}
		if !dup {
			cp = append(cp, c)
		}
	}
	m.rows = append(m.rows, cp)
	m.senses = append(m.senses, sense)
	m.rhs = append(m.rhs, rhs)
	return len(m.rows) - 1
}

// Err returns the model error latched by AddRow, or nil.
func (m *Model) Err() error { return m.err }

// Reset re-initializes the model in place to numVars variables with
// objective 0, default bounds [0, +Inf) and no rows, recycling the row
// storage. Rebuilding one model per search node this way settles at zero
// steady-state allocations.
func (m *Model) Reset(numVars int) {
	if cap(m.obj) < numVars {
		m.obj = make([]float64, numVars)
		m.lower = make([]float64, numVars)
		m.upper = make([]float64, numVars)
		m.names = make([]string, numVars)
	}
	m.numVars = numVars
	m.obj = m.obj[:numVars]
	m.lower = m.lower[:numVars]
	m.upper = m.upper[:numVars]
	m.names = m.names[:numVars]
	for i := 0; i < numVars; i++ {
		m.obj[i] = 0
		m.lower[i] = 0
		m.upper[i] = math.Inf(1)
		m.names[i] = ""
	}
	m.spare = append(m.spare, m.rows...)
	m.rows = m.rows[:0]
	m.senses = m.senses[:0]
	m.rhs = m.rhs[:0]
	m.err = nil
}

// Clone returns a deep copy (bounds may then be tightened independently,
// which is how the MIP branches).
func (m *Model) Clone() *Model {
	c := &Model{
		numVars: m.numVars,
		obj:     append([]float64(nil), m.obj...),
		lower:   append([]float64(nil), m.lower...),
		upper:   append([]float64(nil), m.upper...),
		names:   append([]string(nil), m.names...),
		senses:  append([]Sense(nil), m.senses...),
		rhs:     append([]float64(nil), m.rhs...),
		err:     m.err,
	}
	c.rows = make([][]Coef, len(m.rows))
	for i, r := range m.rows {
		c.rows[i] = append([]Coef(nil), r...)
	}
	return c
}

// Matrix exports the row coefficients as a CSR matrix (diagnostics, tests).
func (m *Model) Matrix() *sparse.CSR {
	b := sparse.NewBuilder(len(m.rows), m.numVars)
	for r, row := range m.rows {
		for _, c := range row {
			b.Add(r, c.Var, c.Val)
		}
	}
	return b.Build()
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective decreases without bound.
	Unbounded
	// IterLimit: the iteration cap was hit before convergence.
	IterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the variable values in model space (bounds un-shifted).
	X []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Value returns X[v].
func (s *Solution) Value(v int) float64 { return s.X[v] }
