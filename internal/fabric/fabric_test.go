// In-process fabric harness: one coordinator and N workers over httptest
// transports, pinning the subsystem's contract — merged results are
// byte-identical to local single-process runs for any worker count, chunk
// size, failure history, or incumbent-exchange setting.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/experiments"
	"microfab/internal/gen"
	"microfab/internal/instance"
	"microfab/internal/platform"
)

// testCoord spins a coordinator behind an httptest server.
func testCoord(t *testing.T, cfg CoordConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(cfg)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// testWorker builds a worker with harness-speed knobs.
func testWorker(base, name string) *Worker {
	return &Worker{
		Base:           base,
		Name:           name,
		Poll:           5 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
		Backoff:        10 * time.Millisecond,
	}
}

// startWorkers runs n workers until the returned stop func is called.
func startWorkers(t *testing.T, base string, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := testWorker(base, fmt.Sprintf("w%d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

var campaignCfg = experiments.Config{Draws: 4, Thin: 3, Seed: 17, Workers: 1}

var campaignSpec = CampaignSpec{Figure: 5, Draws: 4, Seed: 17, Thin: 3}

// TestCampaignMergeDeterminism: the merged figure from 1, 2 and 4 workers
// over uneven chunks is deep-equal AND byte-identical (JSON) to a local
// single-process run.
func TestCampaignMergeDeterminism(t *testing.T) {
	local, err := experiments.Figure(campaignSpec.Figure, campaignCfg)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		_, srv := testCoord(t, CoordConfig{ChunkDraws: 3}) // 4 draws -> uneven [0,3)+[3,4)
		stop := startWorkers(t, srv.URL, workers)
		res, err := SubmitCampaign(context.Background(), srv.Client(), srv.URL, campaignSpec)
		stop()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res, local) {
			t.Fatalf("workers=%d: merged result differs from local run", workers)
		}
		remoteJSON, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(remoteJSON, localJSON) {
			t.Fatalf("workers=%d: merged JSON is not byte-identical to local", workers)
		}
		if experiments.Render(res) != experiments.Render(local) {
			t.Fatalf("workers=%d: rendered figure differs", workers)
		}
	}
}

// TestCampaignWorkerKilled: a worker dies mid-chunk (hard kill, no
// completion, no drain); its lease expires, the chunk is reassigned, and
// the merged figure is still byte-identical to the local run.
func TestCampaignWorkerKilled(t *testing.T) {
	local, err := experiments.Figure(campaignSpec.Figure, campaignCfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, srv := testCoord(t, CoordConfig{ChunkDraws: 1, LeaseTTL: 150 * time.Millisecond})

	// Victim worker: killed on its first lease, before reporting anything.
	vctx, vcancel := context.WithCancel(context.Background())
	defer vcancel()
	killed := make(chan struct{})
	var once sync.Once
	victim := testWorker(srv.URL, "victim")
	victim.OnLease = func(*Chunk) {
		once.Do(func() {
			vcancel()
			close(killed)
		})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = victim.Run(vctx)
	}()

	// Submit, then bring up the survivor only after the victim holds (and
	// abandons) a lease, so the reassignment path provably runs.
	type outcome struct {
		res *experiments.Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := SubmitCampaign(context.Background(), srv.Client(), srv.URL, campaignSpec)
		resCh <- outcome{res, err}
	}()
	select {
	case <-killed:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never leased a chunk")
	}
	wg.Wait()
	stop := startWorkers(t, srv.URL, 1)
	defer stop()

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !reflect.DeepEqual(out.res, local) {
		t.Fatal("merged result differs from local run after worker death")
	}
	a, _ := json.Marshal(out.res)
	b, _ := json.Marshal(local)
	if !bytes.Equal(a, b) {
		t.Fatal("merged JSON not byte-identical after worker death")
	}

	st := coord.status()
	if len(st.Jobs) != 1 {
		t.Fatalf("status: %d jobs, want 1", len(st.Jobs))
	}
	js := st.Jobs[0]
	if !js.Finished || js.Done != js.Chunks || js.Pending != 0 || js.Inflight != 0 {
		t.Fatalf("status: job not cleanly finished: %+v", js)
	}
	if js.Reassigned < 1 {
		t.Fatalf("status: no reassignment recorded after a worker death: %+v", js)
	}
}

// TestExactDistributedMatchesLocal: the distributed proof equals local
// exact.Solve — same period, mapping and proven flag — for 1, 2 and 4
// workers, incumbent exchange on and off.
func TestExactDistributedMatchesLocal(t *testing.T) {
	in, err := gen.Chain(gen.Default(12, 3, 5), gen.RNG(29))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := exact.Solve(in, exact.Options{Rule: core.Specialized, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Proven {
		t.Fatal("reference not proven")
	}
	file := instance.FromInstance(in, "fabric harness")

	for _, exchange := range []bool{true, false} {
		for _, workers := range []int{1, 2, 4} {
			_, srv := testCoord(t, CoordConfig{})
			stop := startWorkers(t, srv.URL, workers)
			res, err := SubmitExact(context.Background(), srv.Client(), srv.URL, ExactSpec{
				Instance:        *file,
				WarmStart:       true,
				Subtrees:        16,
				DisableExchange: !exchange,
			})
			stop()
			if err != nil {
				t.Fatalf("workers=%d exchange=%v: %v", workers, exchange, err)
			}
			if !res.Proven {
				t.Fatalf("workers=%d exchange=%v: not proven", workers, exchange)
			}
			if res.Period != ref.Period {
				t.Fatalf("workers=%d exchange=%v: period %v != %v", workers, exchange, res.Period, ref.Period)
			}
			if len(res.Assign) != in.N() {
				t.Fatalf("workers=%d exchange=%v: assign has %d tasks, want %d", workers, exchange, len(res.Assign), in.N())
			}
			for i, u := range res.Assign {
				if platform.MachineID(u) != ref.Mapping.Machine(app.TaskID(i)) {
					t.Fatalf("workers=%d exchange=%v: mapping diverges at task %d", workers, exchange, i)
				}
			}
			if res.Subtrees < 1 {
				t.Fatalf("workers=%d exchange=%v: no subtrees recorded", workers, exchange)
			}
		}
	}

	// Relaxation tiers off: the merged proof must still be byte-identical
	// to the local reference (the tiers only change node spend, never the
	// proven result).
	_, srv := testCoord(t, CoordConfig{})
	stop := startWorkers(t, srv.URL, 2)
	res, err := SubmitExact(context.Background(), srv.Client(), srv.URL, ExactSpec{
		Instance:  *file,
		WarmStart: true,
		Subtrees:  16,
		NoRelax:   true,
	})
	stop()
	if err != nil {
		t.Fatalf("no-relax: %v", err)
	}
	if !res.Proven || res.Period != ref.Period {
		t.Fatalf("no-relax: proven=%v period %v, want proven at %v", res.Proven, res.Period, ref.Period)
	}
	for i, u := range res.Assign {
		if platform.MachineID(u) != ref.Mapping.Machine(app.TaskID(i)) {
			t.Fatalf("no-relax: mapping diverges at task %d", i)
		}
	}

	// Incremental bound off: every participant recomputes the bound from
	// scratch, and the merged proof is still byte-identical to the local
	// reference (the two bound paths are bit-equal by construction).
	_, srv2 := testCoord(t, CoordConfig{})
	stop2 := startWorkers(t, srv2.URL, 2)
	res2, err := SubmitExact(context.Background(), srv2.Client(), srv2.URL, ExactSpec{
		Instance:   *file,
		WarmStart:  true,
		Subtrees:   16,
		NoIncBound: true,
	})
	stop2()
	if err != nil {
		t.Fatalf("no-inc-bound: %v", err)
	}
	if !res2.Proven || res2.Period != ref.Period {
		t.Fatalf("no-inc-bound: proven=%v period %v, want proven at %v", res2.Proven, res2.Period, ref.Period)
	}
	for i, u := range res2.Assign {
		if platform.MachineID(u) != ref.Mapping.Machine(app.TaskID(i)) {
			t.Fatalf("no-inc-bound: mapping diverges at task %d", i)
		}
	}
}

// TestWorkerDrain: a drained worker finishes and reports its current
// chunk, then Run returns nil without taking more work.
func TestWorkerDrain(t *testing.T) {
	_, srv := testCoord(t, CoordConfig{ChunkDraws: 1})
	w := testWorker(srv.URL, "drainer")
	w.OnLease = func(*Chunk) { w.Drain() } // drain the moment work arrives
	done := make(chan error, 1)

	resCh := make(chan error, 1)
	go func() {
		_, err := SubmitCampaign(context.Background(), srv.Client(), srv.URL, campaignSpec)
		resCh <- err
	}()
	go func() { done <- w.Run(context.Background()) }()
	if err := <-done; err != nil {
		t.Fatalf("drained Run returned %v, want nil", err)
	}
	// The drained worker completed exactly one chunk; a fresh fleet
	// finishes the job.
	stop := startWorkers(t, srv.URL, 2)
	defer stop()
	if err := <-resCh; err != nil {
		t.Fatal(err)
	}
}

// TestStatusAndErrors: /status reflects finished jobs and workers;
// /healthz answers; bad submissions come back as typed errors.
func TestStatusAndErrors(t *testing.T) {
	_, srv := testCoord(t, CoordConfig{})
	stop := startWorkers(t, srv.URL, 2)
	defer stop()
	if _, err := SubmitCampaign(context.Background(), srv.Client(), srv.URL, campaignSpec); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Jobs) != 1 || !st.Jobs[0].Finished || st.Jobs[0].Kind != KindCampaign {
		t.Fatalf("status: %+v", st.Jobs)
	}
	if len(st.Workers) == 0 {
		t.Fatal("status lists no workers")
	}

	hz, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hz.StatusCode, err)
	}
	hz.Body.Close()

	// Unknown figure: typed campaign-failed error, no hang.
	_, err = SubmitCampaign(context.Background(), srv.Client(), srv.URL, CampaignSpec{Figure: 999})
	if ae, ok := err.(*apiError); !ok || ae.Code != "campaign-failed" {
		t.Fatalf("bad figure: got %v, want campaign-failed", err)
	}
	// Unknown rule: typed exact-failed error.
	in, err2 := gen.Chain(gen.Default(4, 2, 2), gen.RNG(1))
	if err2 != nil {
		t.Fatal(err2)
	}
	_, err = SubmitExact(context.Background(), srv.Client(), srv.URL, ExactSpec{
		Instance: *instance.FromInstance(in, ""),
		Rule:     "nonsense",
	})
	if ae, ok := err.(*apiError); !ok || ae.Code != "exact-failed" {
		t.Fatalf("bad rule: got %v, want exact-failed", err)
	}
	// Unknown job id: typed 404.
	jr, err := srv.Client().Get(srv.URL + "/job/12345")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", jr.StatusCode)
	}
}

// TestSubmitterHangupCancelsJob: a submitter that abandons its blocking
// call cancels the job — pending chunks drop and heartbeats tell workers
// to stop, so the fabric does not burn cycles for a dead client.
func TestSubmitterHangupCancelsJob(t *testing.T) {
	coord, srv := testCoord(t, CoordConfig{ChunkDraws: 1})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := SubmitCampaign(ctx, srv.Client(), srv.URL, campaignSpec)
		errCh <- err
	}()
	// Hang up before any worker exists.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("abandoned submit returned no error")
	}
	// A worker arriving later must find nothing to lease.
	stop := startWorkers(t, srv.URL, 1)
	defer stop()
	time.Sleep(50 * time.Millisecond)
	st := coord.status()
	if len(st.Jobs) != 1 || !st.Jobs[0].Finished || st.Jobs[0].Pending != 0 {
		t.Fatalf("cancelled job not drained: %+v", st.Jobs)
	}
}
