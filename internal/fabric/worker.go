package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/experiments"
)

// Worker is one fabric worker: it polls the coordinator for leases, runs
// chunks locally, heartbeats while computing, and reports completions.
// Configure the exported fields before Run; the zero values are usable
// defaults apart from Base and Name.
type Worker struct {
	// Base is the coordinator's base URL, e.g. "http://host:9090".
	Base string
	// Name identifies this worker in leases and /status.
	Name string
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Poll is the idle re-poll interval when no work is pending
	// (default 100ms).
	Poll time.Duration
	// HeartbeatEvery is the in-chunk heartbeat period (default 2s; keep
	// it well under the coordinator's lease TTL).
	HeartbeatEvery time.Duration
	// Retries bounds re-attempts of one request after a transport error
	// (default 4); Backoff is the initial delay, doubling each retry
	// (default 50ms). Typed coordinator errors are never retried.
	Retries int
	Backoff time.Duration
	// OnLease, when non-nil, observes every leased chunk before it runs
	// (test hook: the harness uses it to kill a worker mid-chunk).
	OnLease func(*Chunk)

	draining atomic.Bool

	mu    sync.Mutex
	specs map[int64]*JobResponse // per-job payload cache (exact instances)
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 100 * time.Millisecond
}

func (w *Worker) heartbeatEvery() time.Duration {
	if w.HeartbeatEvery > 0 {
		return w.HeartbeatEvery
	}
	return 2 * time.Second
}

func (w *Worker) retries() int {
	if w.Retries > 0 {
		return w.Retries
	}
	return 4
}

func (w *Worker) backoff() time.Duration {
	if w.Backoff > 0 {
		return w.Backoff
	}
	return 50 * time.Millisecond
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// Drain stops the worker gracefully: the current chunk finishes and is
// reported, no further lease is taken, and Run returns nil. This is the
// SIGTERM path — a drained worker never strands a lease for the TTL.
func (w *Worker) Drain() {
	w.draining.Store(true)
}

// Run leases and computes chunks until ctx ends (hard kill: the current
// chunk is abandoned unreported and its lease expires on the coordinator)
// or Drain is called (graceful: the current chunk completes first).
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.draining.Load() {
			return nil
		}
		ck, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("lease: %w", err)
		}
		if ck == nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.poll()):
			}
			continue
		}
		if w.OnLease != nil {
			w.OnLease(ck)
		}
		w.runChunk(ctx, ck)
	}
}

func (w *Worker) lease(ctx context.Context) (*Chunk, error) {
	var resp LeaseResponse
	if err := w.postJSON(ctx, "/lease", LeaseRequest{Worker: w.Name}, &resp); err != nil {
		return nil, err
	}
	return resp.Chunk, nil
}

// runChunk computes one chunk under a heartbeat loop. The heartbeat
// extends the lease, streams the local incumbent up, and injects the
// fabric-wide best down into the running search; a Cancel answer (the job
// finished or was abandoned) cancels the chunk context.
func (w *Worker) runChunk(ctx context.Context, ck *Chunk) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// localBest holds this chunk's best-found period as float bits
	// (exact chunks only; +Inf until OnImprove fires).
	var localBest atomic.Uint64
	localBest.Store(math.Float64bits(math.Inf(1)))
	// inject is SolveSubtree's bound-injection lever, published by the
	// BoundInjector hook once the search starts.
	var injectMu sync.Mutex
	var inject func(float64)
	// cancelled distinguishes a coordinator-side cancel (skip the
	// completion: the job is gone) from normal completion.
	var cancelled atomic.Bool

	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(w.heartbeatEvery())
		defer tick.Stop()
		for {
			select {
			case <-cctx.Done():
				return
			case <-tick.C:
			}
			req := HeartbeatRequest{Worker: w.Name, Job: ck.Job, Chunk: ck.ID}
			if ck.Kind == KindExact {
				if b := math.Float64frombits(localBest.Load()); !math.IsInf(b, 1) {
					req.Best = &b
				}
			}
			var resp HeartbeatResponse
			// Single attempt per beat: a lost heartbeat costs nothing a
			// later beat cannot recover.
			if err := w.postOnce(cctx, "/heartbeat", req, &resp); err != nil {
				continue
			}
			if resp.Cancel {
				cancelled.Store(true)
				cancel()
				return
			}
			if resp.Best != nil {
				injectMu.Lock()
				if inject != nil {
					inject(*resp.Best)
				}
				injectMu.Unlock()
			}
		}
	}()

	creq := CompleteRequest{Worker: w.Name, Job: ck.Job, Chunk: ck.ID}
	switch ck.Kind {
	case KindCampaign:
		if ck.Spec == nil {
			creq.Error = "campaign chunk without a spec"
			break
		}
		draws, err := experiments.RunDraws(cctx, ck.Spec.Figure, ck.Spec.Config(), ck.X, ck.D0, ck.D1)
		if err != nil {
			creq.Error = err.Error()
		} else {
			creq.Draws = draws
		}
	case KindExact:
		spec, err := w.jobSpec(cctx, ck.Job)
		if err != nil {
			creq.Error = fmt.Sprintf("fetch job spec: %v", err)
			break
		}
		out, err := w.runSubtree(cctx, spec, ck, &localBest, &injectMu, &inject)
		if err != nil {
			creq.Error = err.Error()
		} else {
			creq.Subtree = out
		}
	default:
		creq.Error = fmt.Sprintf("unknown chunk kind %q", ck.Kind)
	}

	cancel()
	<-hbDone
	if ctx.Err() != nil || cancelled.Load() {
		// Hard kill or coordinator cancel: abandon without completing.
		// The lease expires and the chunk re-runs elsewhere, identically.
		return
	}
	var cresp CompleteResponse
	_ = w.postJSON(ctx, "/complete", creq, &cresp)
}

// runSubtree solves one exact subtree, wiring the exchange: the lease-time
// best (if any) and every heartbeat-delivered best inject as strict
// pruning bounds, and local improvements stream up via localBest.
func (w *Worker) runSubtree(ctx context.Context, spec *ExactSpec, ck *Chunk,
	localBest *atomic.Uint64, injectMu *sync.Mutex, inject *func(float64)) (*exact.SubtreeOutcome, error) {
	rule, err := spec.rule()
	if err != nil {
		return nil, err
	}
	in, err := spec.Instance.ToInstance()
	if err != nil {
		return nil, err
	}
	opts := exact.Options{
		Rule:                    rule,
		Ctx:                     ctx,
		MaxNodes:                spec.MaxNodes,
		WarmStart:               spec.WarmStart,
		DisableAssignBound:      spec.NoRelax,
		DisableLPBound:          spec.NoRelax,
		DisableIncrementalBound: spec.NoIncBound,
	}
	if !spec.DisableExchange {
		opts.OnImprove = func(p float64, _ *core.Mapping) {
			for {
				cur := localBest.Load()
				if p >= math.Float64frombits(cur) {
					return
				}
				if localBest.CompareAndSwap(cur, math.Float64bits(p)) {
					return
				}
			}
		}
		opts.BoundInjector = func(fn func(float64)) {
			injectMu.Lock()
			*inject = fn
			injectMu.Unlock()
			if ck.Best != nil {
				fn(*ck.Best)
			}
		}
	}
	return exact.SolveSubtree(in, opts, ck.Prefix)
}

// jobSpec fetches and caches GET /job/{id} — exact jobs ship the instance
// once per (worker, job), not once per chunk.
func (w *Worker) jobSpec(ctx context.Context, job int64) (*ExactSpec, error) {
	w.mu.Lock()
	cached := w.specs[job]
	w.mu.Unlock()
	if cached == nil {
		var resp JobResponse
		if err := w.getJSON(ctx, fmt.Sprintf("/job/%d", job), &resp); err != nil {
			return nil, err
		}
		w.mu.Lock()
		if w.specs == nil {
			w.specs = make(map[int64]*JobResponse)
		}
		w.specs[job] = &resp
		cached = &resp
		w.mu.Unlock()
	}
	if cached.Exact == nil {
		return nil, fmt.Errorf("job %d has no exact spec", job)
	}
	return cached.Exact, nil
}

// ---- transport ----

// apiError is a typed coordinator refusal (a 4xx/5xx with an
// ErrorResponse body). Only 5xx refusals are retried.
type apiError struct {
	Status int
	Code   string
	Detail string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("%s (%d): %s", e.Code, e.Status, e.Detail)
}

func retryable(err error) bool {
	if ae, ok := err.(*apiError); ok {
		return ae.Status >= 500
	}
	// Everything else at this layer is a transport failure (dial,
	// timeout, broken pipe) — transient by assumption.
	return true
}

// postJSON posts with bounded exponential backoff on transient errors.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	backoff := w.backoff()
	var last error
	for attempt := 0; attempt <= w.retries(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		err := w.postOnce(ctx, path, in, out)
		if err == nil {
			return nil
		}
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
		last = err
	}
	return last
}

func (w *Worker) postOnce(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	backoff := w.backoff()
	var last error
	for attempt := 0; attempt <= w.retries(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Base+path, nil)
		if err != nil {
			return err
		}
		err = w.do(req, out)
		if err == nil {
			return nil
		}
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
		last = err
	}
	return last
}

func (w *Worker) do(req *http.Request, out any) error {
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ae := &apiError{Status: resp.StatusCode, Code: "http-error"}
		var er ErrorResponse
		if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); rerr == nil {
			if json.Unmarshal(b, &er) == nil && er.Error != "" {
				ae.Code, ae.Detail = er.Error, er.Detail
			} else {
				ae.Detail = string(b)
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
