package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/experiments"
	"microfab/internal/platform"
)

// CoordConfig tunes the coordinator's scheduling. The zero value is usable.
type CoordConfig struct {
	// LeaseTTL is how long a chunk stays leased without a heartbeat before
	// it is re-queued for another worker (default 10s). Heartbeats and
	// completions both extend liveness.
	LeaseTTL time.Duration
	// ChunkDraws is the draw-range width of one campaign chunk
	// (default 8). Smaller chunks spread better and re-do less work after
	// a worker death; the merged figure is identical for any width.
	ChunkDraws int
	// Subtrees is the default exact frontier width when the spec leaves
	// it zero (default 32).
	Subtrees int
}

func (c CoordConfig) withDefaults() CoordConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.ChunkDraws <= 0 {
		c.ChunkDraws = 8
	}
	if c.Subtrees <= 0 {
		c.Subtrees = 32
	}
	return c
}

// chunkState is one chunk's scheduling record.
type chunkState struct {
	chunk  Chunk
	done   bool
	leased bool
	owner  string
	expiry time.Time
}

// job is one submitted workload: its immutable chunk set plus the mutable
// scheduling and merge state, all guarded by the coordinator mutex.
type job struct {
	id   int64
	kind string

	// Campaign state: the result matrix chunks fill in.
	spec *CampaignSpec
	plan experiments.Plan
	out  [][]experiments.DrawResult

	// Exact state: the frontier and its subtree reports.
	ex      *ExactSpec
	front   *exact.FrontierInfo
	reports []*exact.SubtreeOutcome

	chunks     map[int64]*chunkState
	pending    []int64 // FIFO of unleased chunk IDs
	remaining  int
	reassigned int
	duplicates int

	// best is the job-wide incumbent period (+Inf until a worker improves
	// on the warm start); traj records its strict improvements.
	best float64
	traj []IncumbentPoint

	done      chan struct{} // closed exactly once, when finished
	notified  bool
	failed    string
	cancelled bool
}

func (j *job) finishedLocked() bool {
	return j.remaining == 0 || j.failed != "" || j.cancelled
}

// workerInfo is one worker's liveness record.
type workerInfo struct {
	lastSeen time.Time
	chunk    int64
}

// Coordinator schedules chunks over leases and merges their results.
// Create with NewCoordinator, serve Handler(), submit blocking jobs with
// SubmitCampaignJob / SubmitExactJob (which the /campaign and /exact
// endpoints wrap).
type Coordinator struct {
	cfg   CoordConfig
	start time.Time

	mu        sync.Mutex
	nextJob   int64
	nextChunk int64
	jobs      map[int64]*job
	order     []int64 // job submission order, for FIFO leasing and /status
	workers   map[string]*workerInfo
}

// NewCoordinator builds a coordinator with cfg (zero value = defaults).
func NewCoordinator(cfg CoordConfig) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		start:   time.Now(),
		jobs:    make(map[int64]*job),
		workers: make(map[string]*workerInfo),
	}
}

func (c *Coordinator) elapsedMs(t time.Time) float64 {
	return float64(t.Sub(c.start)) / float64(time.Millisecond)
}

func (c *Coordinator) touchLocked(name string, now time.Time, chunk int64) {
	if name == "" {
		return
	}
	w := c.workers[name]
	if w == nil {
		w = &workerInfo{chunk: -1}
		c.workers[name] = w
	}
	w.lastSeen = now
	if chunk != 0 {
		w.chunk = chunk
	}
}

func (c *Coordinator) finishLocked(j *job) {
	if !j.notified {
		j.notified = true
		close(j.done)
	}
}

func (c *Coordinator) failLocked(j *job, msg string) {
	if j.failed == "" {
		j.failed = msg
	}
	j.pending = nil
	c.finishLocked(j)
}

// reapLocked re-queues every expired lease of j (lazy expiry: no
// background goroutine — the next lease request does the sweep).
func (c *Coordinator) reapLocked(j *job, now time.Time) {
	for _, cs := range j.chunks {
		if cs.leased && !cs.done && now.After(cs.expiry) {
			cs.leased = false
			cs.owner = ""
			j.reassigned++
			j.pending = append(j.pending, cs.chunk.ID)
		}
	}
}

// lease hands the requesting worker the oldest pending chunk of the oldest
// unfinished job, or nil when nothing is pending right now.
func (c *Coordinator) lease(worker string) *Chunk {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.touchLocked(worker, now, -1)
	for _, id := range c.order {
		j := c.jobs[id]
		if j.finishedLocked() {
			continue
		}
		c.reapLocked(j, now)
		for len(j.pending) > 0 {
			cid := j.pending[0]
			j.pending = j.pending[1:]
			cs := j.chunks[cid]
			if cs.done || cs.leased {
				continue
			}
			cs.leased = true
			cs.owner = worker
			cs.expiry = now.Add(c.cfg.LeaseTTL)
			ck := cs.chunk
			if j.kind == KindExact && !j.ex.DisableExchange && !math.IsInf(j.best, 1) {
				b := j.best
				ck.Best = &b
			}
			c.touchLocked(worker, now, ck.ID)
			return &ck
		}
	}
	return nil
}

// improveLocked lowers j's incumbent and extends the trajectory.
func (c *Coordinator) improveLocked(j *job, p float64, now time.Time) {
	if p < j.best {
		j.best = p
		j.traj = append(j.traj, IncumbentPoint{AtMs: c.elapsedMs(now), Period: p})
	}
}

// complete stores a chunk's payload. Chunk results are pure functions of
// the chunk ID, so a duplicate completion (a reassigned chunk's loser) is
// bit-identical to the accepted one and is counted, not merged.
func (c *Coordinator) complete(req *CompleteRequest) (*CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.touchLocked(req.Worker, now, -1)
	j, ok := c.jobs[req.Job]
	if !ok {
		return &CompleteResponse{OK: true, Duplicate: true}, nil
	}
	cs, ok := j.chunks[req.Chunk]
	if !ok {
		return nil, fmt.Errorf("unknown chunk %d of job %d", req.Chunk, req.Job)
	}
	if cs.done || j.finishedLocked() {
		j.duplicates++
		return &CompleteResponse{OK: true, Duplicate: true}, nil
	}
	if req.Error != "" {
		// A deterministic chunk failure: re-running a pure function of
		// the chunk ID elsewhere would fail identically, so the job fails.
		c.failLocked(j, fmt.Sprintf("chunk %d: %s", req.Chunk, req.Error))
		return &CompleteResponse{OK: true}, nil
	}
	switch j.kind {
	case KindCampaign:
		if want := cs.chunk.D1 - cs.chunk.D0; len(req.Draws) != want {
			return nil, fmt.Errorf("chunk %d: %d draws reported, want %d", req.Chunk, len(req.Draws), want)
		}
		copy(j.out[cs.chunk.XI][cs.chunk.D0:cs.chunk.D1], req.Draws)
	case KindExact:
		if req.Subtree == nil {
			return nil, fmt.Errorf("chunk %d: exact completion without a subtree report", req.Chunk)
		}
		if req.Subtree.WarmPeriod != j.front.WarmPeriod {
			// The worker derived a different warm start than the
			// coordinator: the processes disagree on the instance and a
			// merge would be silently wrong.
			c.failLocked(j, fmt.Sprintf("chunk %d: warm-start mismatch (worker %v, coordinator %v)",
				req.Chunk, req.Subtree.WarmPeriod, j.front.WarmPeriod))
			return &CompleteResponse{OK: true}, nil
		}
		j.reports[cs.chunk.XI] = req.Subtree
		if req.Subtree.Found {
			c.improveLocked(j, req.Subtree.Period, now)
		}
	}
	cs.done = true
	cs.leased = false
	cs.owner = ""
	j.remaining--
	if j.remaining == 0 {
		c.finishLocked(j)
	}
	return &CompleteResponse{OK: true}, nil
}

// heartbeat extends the caller's lease and runs the incumbent exchange:
// the worker's best-found period comes up, the job-wide best goes down.
func (c *Coordinator) heartbeat(req *HeartbeatRequest) *HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.touchLocked(req.Worker, now, req.Chunk)
	j, ok := c.jobs[req.Job]
	if !ok || j.finishedLocked() {
		return &HeartbeatResponse{Cancel: true}
	}
	cs, ok := j.chunks[req.Chunk]
	if !ok || cs.done {
		return &HeartbeatResponse{Cancel: true}
	}
	if cs.leased && cs.owner == req.Worker {
		cs.expiry = now.Add(c.cfg.LeaseTTL)
	}
	resp := &HeartbeatResponse{}
	if j.kind == KindExact && !j.ex.DisableExchange {
		if req.Best != nil {
			c.improveLocked(j, *req.Best, now)
		}
		if !math.IsInf(j.best, 1) {
			b := j.best
			resp.Best = &b
		}
	}
	return resp
}

// addJobLocked registers j's chunks and queues them FIFO.
func (c *Coordinator) addJobLocked(j *job, chunks []Chunk) {
	c.nextJob++
	j.id = c.nextJob
	j.best = math.Inf(1)
	j.done = make(chan struct{})
	j.chunks = make(map[int64]*chunkState, len(chunks))
	j.remaining = len(chunks)
	for i := range chunks {
		c.nextChunk++
		chunks[i].ID = c.nextChunk
		chunks[i].Job = j.id
		chunks[i].Kind = j.kind
		j.chunks[chunks[i].ID] = &chunkState{chunk: chunks[i]}
		j.pending = append(j.pending, chunks[i].ID)
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
}

// cancelJob marks a job abandoned (its submitter hung up): pending work is
// dropped and heartbeats answer Cancel. Already-computed chunks stay —
// they cost nothing to keep and /status still shows them.
func (c *Coordinator) cancelJob(j *job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j.cancelled = true
	j.pending = nil
	c.finishLocked(j)
}

// SubmitCampaignJob shards spec's figure campaign into (point, draw-range)
// chunks, waits for the fleet to fill the matrix, and assembles the figure
// through the same reduction a local run uses. Blocks until done, a chunk
// fails deterministically, or ctx ends.
func (c *Coordinator) SubmitCampaignJob(ctx context.Context, spec CampaignSpec) (*experiments.Result, error) {
	cfg := spec.Config()
	plan, err := experiments.FigurePlan(spec.Figure, cfg)
	if err != nil {
		return nil, err
	}
	out := make([][]experiments.DrawResult, len(plan.Xs))
	var chunks []Chunk
	for xi, x := range plan.Xs {
		out[xi] = make([]experiments.DrawResult, plan.Draws)
		for d0 := 0; d0 < plan.Draws; d0 += c.cfg.ChunkDraws {
			d1 := d0 + c.cfg.ChunkDraws
			if d1 > plan.Draws {
				d1 = plan.Draws
			}
			sp := spec
			chunks = append(chunks, Chunk{Spec: &sp, X: x, XI: xi, D0: d0, D1: d1})
		}
	}
	j := &job{kind: KindCampaign, spec: &spec, plan: plan, out: out}
	c.mu.Lock()
	c.addJobLocked(j, chunks)
	c.mu.Unlock()

	select {
	case <-j.done:
	case <-ctx.Done():
		c.cancelJob(j)
		return nil, ctx.Err()
	}
	c.mu.Lock()
	failed := j.failed
	c.mu.Unlock()
	if failed != "" {
		return nil, errors.New(failed)
	}
	return experiments.Assemble(spec.Figure, cfg, out)
}

// SubmitExactJob enumerates spec's root frontier locally, leases one chunk
// per subtree prefix, and reduces the reports in frontier order — warm
// start first, then the first strict-improvement chain — so the proof is
// byte-identical to a local exact.Solve for any worker count, chunk
// placement, or exchange setting. Blocks until done or ctx ends.
func (c *Coordinator) SubmitExactJob(ctx context.Context, spec ExactSpec) (*ExactResult, error) {
	rule, err := spec.rule()
	if err != nil {
		return nil, err
	}
	in, err := spec.Instance.ToInstance()
	if err != nil {
		return nil, err
	}
	opts := exact.Options{
		Rule: rule, MaxNodes: spec.MaxNodes, WarmStart: spec.WarmStart,
		DisableAssignBound: spec.NoRelax, DisableLPBound: spec.NoRelax,
		DisableIncrementalBound: spec.NoIncBound,
	}
	target := spec.Subtrees
	if target <= 0 {
		target = c.cfg.Subtrees
	}
	front, err := exact.Frontier(in, opts, target)
	if err != nil {
		return nil, err
	}
	if front.Stopped {
		return nil, errors.New("frontier enumeration exhausted the node budget; raise maxNodes")
	}
	if len(front.Prefixes) == 0 {
		// Every completion pruned against the warm start during
		// enumeration: the warm start is the proven answer.
		if front.WarmAssign == nil {
			return nil, errors.New("no feasible mapping under the rule")
		}
		return &ExactResult{
			Assign: front.WarmAssign,
			Period: repriced(in, front.WarmAssign),
			Proven: true,
			Nodes:  front.Nodes,
		}, nil
	}

	chunks := make([]Chunk, len(front.Prefixes))
	for i, prefix := range front.Prefixes {
		chunks[i] = Chunk{XI: i, Prefix: prefix, WarmPeriod: front.WarmPeriod}
	}
	sp := spec
	j := &job{kind: KindExact, ex: &sp, front: front, reports: make([]*exact.SubtreeOutcome, len(front.Prefixes))}
	c.mu.Lock()
	c.addJobLocked(j, chunks)
	c.mu.Unlock()

	select {
	case <-j.done:
	case <-ctx.Done():
		c.cancelJob(j)
		return nil, ctx.Err()
	}
	c.mu.Lock()
	failed := j.failed
	reports := j.reports
	c.mu.Unlock()
	if failed != "" {
		return nil, errors.New(failed)
	}

	// The same reduction solveParallel runs: warm start first, strict
	// improvements in frontier order. Non-winning reports may differ
	// run-to-run under exchange (their pruning saw different bounds at
	// different times) — the winner never does.
	bestPeriod := math.Inf(1)
	bestAssign := front.WarmAssign
	if bestAssign != nil {
		bestPeriod = front.WarmPeriod
	}
	proven := true
	nodes := front.Nodes
	for _, o := range reports {
		nodes += o.Nodes
		if o.Stopped {
			proven = false
		}
		if o.Found && o.Period < bestPeriod {
			bestPeriod, bestAssign = o.Period, o.Assign
		}
	}
	if bestAssign == nil {
		return nil, errors.New("no feasible mapping under the rule")
	}
	return &ExactResult{
		Assign:   bestAssign,
		Period:   repriced(in, bestAssign),
		Proven:   proven,
		Nodes:    nodes,
		Subtrees: len(front.Prefixes),
	}, nil
}

// repriced normalises a winning assignment through core.Period, exactly
// like a local Result does, so search-internal pricer values never leak.
func repriced(in *core.Instance, assign []int) float64 {
	mp := core.NewMapping(in.N())
	for i, u := range assign {
		mp.Assign(app.TaskID(i), platform.MachineID(u))
	}
	return core.Period(in, mp)
}

// status snapshots the fabric for GET /status.
func (c *Coordinator) status() *StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	resp := &StatusResponse{UptimeMs: c.elapsedMs(now)}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := c.workers[name]
		resp.Workers = append(resp.Workers, WorkerStatus{
			Name:       name,
			LastSeenMs: float64(now.Sub(w.lastSeen)) / float64(time.Millisecond),
			Chunk:      w.chunk,
		})
	}
	for _, id := range c.order {
		j := c.jobs[id]
		js := JobStatus{
			ID:         j.id,
			Kind:       j.kind,
			Chunks:     len(j.chunks),
			Reassigned: j.reassigned,
			Duplicates: j.duplicates,
			Finished:   j.finishedLocked(),
			Incumbent:  append([]IncumbentPoint(nil), j.traj...),
		}
		if j.spec != nil {
			js.Figure = j.spec.Figure
		}
		for _, cs := range j.chunks {
			switch {
			case cs.done:
				js.Done++
			case cs.leased:
				js.Inflight++
			}
		}
		// Pending reflects the actual queue (a cancelled job's queue is
		// drained even though its chunks are neither done nor leased).
		for _, cid := range j.pending {
			if cs := j.chunks[cid]; !cs.done && !cs.leased {
				js.Pending++
			}
		}
		resp.Jobs = append(resp.Jobs, js)
	}
	return resp
}

// ---- HTTP surface ----

// Handler serves the fabric protocol. Mount it at the server root.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/complete", c.handleComplete)
	mux.HandleFunc("/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/campaign", c.handleCampaign)
	mux.HandleFunc("/exact", c.handleExact)
	mux.HandleFunc("/job/", c.handleJob)
	mux.HandleFunc("/status", c.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, ErrorResponse{Error: code, Detail: detail})
}

// decode parses a POST body into v with the serve daemon's conventions:
// bounded size, strict JSON.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method-not-allowed", "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad-json", err.Error())
		return false
	}
	return true
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Chunk: c.lease(req.Worker)})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := c.complete(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-completion", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, c.heartbeat(&req))
}

func (c *Coordinator) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if !decode(w, r, &spec) {
		return
	}
	res, err := c.SubmitCampaignJob(r.Context(), spec)
	if err != nil {
		if r.Context().Err() != nil {
			return // client hung up; nobody is reading
		}
		writeErr(w, http.StatusUnprocessableEntity, "campaign-failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleExact(w http.ResponseWriter, r *http.Request) {
	var spec ExactSpec
	if !decode(w, r, &spec) {
		return
	}
	res, err := c.SubmitExactJob(r.Context(), spec)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, "exact-failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method-not-allowed", "GET only")
		return
	}
	id, err := strconv.ParseInt(strings.TrimPrefix(r.URL.Path, "/job/"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-job-id", err.Error())
		return
	}
	c.mu.Lock()
	j, ok := c.jobs[id]
	var resp JobResponse
	if ok {
		resp.Kind = j.kind
		resp.Exact = j.ex
	}
	c.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown-job", fmt.Sprintf("job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method-not-allowed", "GET only")
		return
	}
	writeJSON(w, http.StatusOK, c.status())
}
