// Package fabric is the distributed solve fabric: a coordinator process
// (cmd/mfcoord) that splits shardable workloads into chunks and a fleet of
// worker processes (cmd/mfworker) that lease, compute and report them over
// HTTP/JSON. Two workloads shard today:
//
//   - campaign scale-out: a figure campaign's (point, draw) grid splits
//     into (point, draw-range) chunks. Every draw derives its RNG streams
//     from (seed, figure, point, draw) via gen.DeriveRNG, so its values
//     are placement-independent, and the coordinator assembles chunk
//     payloads back into the item matrix and reduces it with the exact
//     code path a local run uses (internal/experiments.Assemble) — the
//     merged figure is byte-identical to a single-process run for any
//     worker count, chunk size or failure history;
//   - exact scale-out: the branch and bound's root frontier (enumerated
//     once on the coordinator via exact.Frontier) leases one subtree
//     prefix per chunk. Workers re-derive the same warm start, explore
//     their subtree with exact.SolveSubtree, and adopt the fabric-wide
//     best incumbent as a strict pruning bound through the periodic
//     heartbeat exchange (exact.Options.BoundInjector) — node counts
//     shrink, proofs stay byte-identical, exchange on or off.
//
// Failure semantics: chunks are leased, not assigned. A worker that stops
// heartbeating loses its lease after the TTL and the chunk is re-leased to
// the next worker that asks; because every chunk's payload is a pure
// function of its ID, a late duplicate completion is bit-identical to the
// accepted one, so the coordinator keeps the first and counts the rest —
// no chunk is lost or double-merged. Transport errors on the worker side
// are retried with bounded exponential backoff; SIGTERM drains a worker
// (finish and report the current chunk, lease no more).
package fabric

import (
	"fmt"
	"time"

	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/experiments"
	"microfab/internal/instance"
)

// Job kinds.
const (
	KindCampaign = "campaign"
	KindExact    = "exact"
)

// CampaignSpec is the serializable form of one figure campaign — the
// subset of experiments.Config a remote worker needs to reproduce a draw
// bit-exactly, plus the figure number. POST it to /campaign.
type CampaignSpec struct {
	Figure         int    `json:"figure"`
	Draws          int    `json:"draws,omitempty"`
	Seed           int64  `json:"seed,omitempty"`
	Thin           int    `json:"thin,omitempty"`
	MIPTimeLimitMs int64  `json:"mipTimeLimitMs,omitempty"`
	MIPMaxNodes    int    `json:"mipMaxNodes,omitempty"`
	ExactWorkers   int    `json:"exactWorkers,omitempty"`
	ExactNoRelax   bool   `json:"exactNoRelax,omitempty"`
	ExactNoIncB    bool   `json:"exactNoIncBound,omitempty"`
	Polish         string `json:"polish,omitempty"`
	PolishBudget   int    `json:"polishBudget,omitempty"`
}

// Config converts the spec into the experiments configuration every
// participant (coordinator planning, worker computing, merge reducing)
// derives identically. Workers is deliberately absent: each process picks
// its own local parallelism without touching the result.
func (s CampaignSpec) Config() experiments.Config {
	return experiments.Config{
		Draws:           s.Draws,
		Seed:            s.Seed,
		Thin:            s.Thin,
		MIPTimeLimit:    time.Duration(s.MIPTimeLimitMs) * time.Millisecond,
		MIPMaxNodes:     s.MIPMaxNodes,
		ExactWorkers:    s.ExactWorkers,
		ExactNoRelax:    s.ExactNoRelax,
		ExactNoIncBound: s.ExactNoIncB,
		Polish:          s.Polish,
		PolishBudget:    s.PolishBudget,
	}
}

// ExactSpec is one distributed exact solve. POST it to /exact.
type ExactSpec struct {
	Instance instance.File `json:"instance"`
	// Rule is "specialized" (default, ""), "one-to-one" or "general".
	Rule string `json:"rule,omitempty"`
	// MaxNodes budgets each subtree (and the frontier enumeration)
	// separately; 0 = the exact package default.
	MaxNodes int64 `json:"maxNodes,omitempty"`
	// WarmStart seeds every participant's identical H4w warm incumbent.
	WarmStart bool `json:"warmStart,omitempty"`
	// Subtrees targets the frontier width (0 = 32).
	Subtrees int `json:"subtrees,omitempty"`
	// DisableExchange turns the periodic incumbent broadcast off: workers
	// prune only against their self-derived warm start. Results are
	// byte-identical either way; exchange only saves nodes.
	DisableExchange bool `json:"disableExchange,omitempty"`
	// NoRelax disables the relaxation bound tiers (bottleneck assignment
	// + LP) on every participant. Proven merges are byte-identical either
	// way; the tiers only change how many nodes the proof costs.
	NoRelax bool `json:"noRelax,omitempty"`
	// NoIncBound forces every participant's bound onto the from-scratch
	// per-node recomputation instead of the delta-maintained cache. The
	// two paths are bit-identical, so proven merges never change; the
	// flag exists for ablation and cross-checking.
	NoIncBound bool `json:"noIncBound,omitempty"`
}

// Rules maps the spec's rule name (shared with the serve daemon's
// conventions) to the core rule.
func (s ExactSpec) rule() (core.Rule, error) {
	switch s.Rule {
	case "", "specialized":
		return core.Specialized, nil
	case "one-to-one", "oto":
		return core.OneToOne, nil
	case "general":
		return core.GeneralRule, nil
	}
	return 0, fmt.Errorf("unknown rule %q (have specialized, one-to-one, general)", s.Rule)
}

// ExactResult is the merged outcome of a distributed exact solve.
type ExactResult struct {
	Assign []int   `json:"assign"`
	Period float64 `json:"period"`
	Proven bool    `json:"proven"`
	// Nodes sums the frontier enumeration and every subtree.
	Nodes int64 `json:"nodes"`
	// Subtrees is the frontier width the solve was sharded into.
	Subtrees int `json:"subtrees"`
}

// Chunk is one leased unit of work. Campaign chunks are self-contained
// (the spec rides along); exact chunks carry only the prefix — workers
// fetch and cache the job's instance once via GET /job/{id}.
type Chunk struct {
	ID   int64  `json:"id"`
	Job  int64  `json:"job"`
	Kind string `json:"kind"`

	// Campaign chunk: draws [D0, D1) of the point at x-axis value X
	// (index XI of the plan's grid).
	Spec *CampaignSpec `json:"spec,omitempty"`
	X    int           `json:"x,omitempty"`
	XI   int           `json:"xi,omitempty"`
	D0   int           `json:"d0,omitempty"`
	D1   int           `json:"d1,omitempty"`

	// Exact chunk: subtree Prefix (index XI of the frontier), the warm
	// period every process must re-derive, and — when incumbent exchange
	// is on — the fabric-wide best period at lease time, injected as the
	// initial strict pruning bound.
	Prefix     []int    `json:"prefix,omitempty"`
	WarmPeriod float64  `json:"warmPeriod,omitempty"`
	Best       *float64 `json:"best,omitempty"`
}

// LeaseRequest asks the coordinator for a chunk.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse hands a chunk out, or nothing when no work is pending
// (poll again after a beat).
type LeaseResponse struct {
	Chunk *Chunk `json:"chunk,omitempty"`
}

// CompleteRequest reports a finished chunk. Error carries a deterministic
// chunk failure (the job fails — retrying a pure function is pointless);
// transport failures are retried client-side instead.
type CompleteRequest struct {
	Worker  string                   `json:"worker"`
	Job     int64                    `json:"job"`
	Chunk   int64                    `json:"chunk"`
	Draws   []experiments.DrawResult `json:"draws,omitempty"`
	Subtree *exact.SubtreeOutcome    `json:"subtree,omitempty"`
	Error   string                   `json:"error,omitempty"`
}

// CompleteResponse acknowledges a completion. Duplicate marks a result the
// coordinator already had (a reassigned chunk's first finisher won).
type CompleteResponse struct {
	OK        bool `json:"ok"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// HeartbeatRequest keeps a lease alive and, for exact chunks, carries the
// worker's best-found period up for the exchange.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Job    int64    `json:"job"`
	Chunk  int64    `json:"chunk"`
	Best   *float64 `json:"best,omitempty"`
}

// HeartbeatResponse answers with the fabric-wide best period (exchange on)
// and tells the worker to abandon the chunk when the job is gone.
type HeartbeatResponse struct {
	Best   *float64 `json:"best,omitempty"`
	Cancel bool     `json:"cancel,omitempty"`
}

// JobResponse is GET /job/{id}: the payload workers cache per job.
type JobResponse struct {
	Kind  string     `json:"kind"`
	Exact *ExactSpec `json:"exact,omitempty"`
}

// IncumbentPoint is one step of a job's incumbent trajectory.
type IncumbentPoint struct {
	AtMs   float64 `json:"atMs"`
	Period float64 `json:"period"`
}

// WorkerStatus is one worker's liveness row in /status.
type WorkerStatus struct {
	Name       string  `json:"name"`
	LastSeenMs float64 `json:"lastSeenMs"`
	Chunk      int64   `json:"chunk"` // -1 when idle
}

// JobStatus is one job's scheduling state in /status.
type JobStatus struct {
	ID         int64            `json:"id"`
	Kind       string           `json:"kind"`
	Figure     int              `json:"figure,omitempty"`
	Chunks     int              `json:"chunks"`
	Done       int              `json:"done"`
	Inflight   int              `json:"inflight"`
	Pending    int              `json:"pending"`
	Reassigned int              `json:"reassigned"`
	Duplicates int              `json:"duplicates"`
	Finished   bool             `json:"finished"`
	Incumbent  []IncumbentPoint `json:"incumbent,omitempty"`
}

// StatusResponse is GET /status.
type StatusResponse struct {
	UptimeMs float64        `json:"uptimeMs"`
	Workers  []WorkerStatus `json:"workers"`
	Jobs     []JobStatus    `json:"jobs"`
}

// ErrorResponse mirrors the serve daemon's typed transport errors: a
// stable machine-readable code plus human detail.
type ErrorResponse struct {
	Error  string `json:"error"`
	Detail string `json:"detail,omitempty"`
}
