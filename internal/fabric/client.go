package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"microfab/internal/experiments"
)

// SubmitCampaign posts one campaign to a coordinator and blocks for the
// merged figure — the call mfexp -coord makes. Deliberately single-shot:
// retrying a blocking submit would enqueue the whole job again.
func SubmitCampaign(ctx context.Context, client *http.Client, base string, spec CampaignSpec) (*experiments.Result, error) {
	var res experiments.Result
	if err := submit(ctx, client, base+"/campaign", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SubmitExact posts one distributed exact solve and blocks for the merged
// proof.
func SubmitExact(ctx context.Context, client *http.Client, base string, spec ExactSpec) (*ExactResult, error) {
	var res ExactResult
	if err := submit(ctx, client, base+"/exact", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

func submit(ctx context.Context, client *http.Client, url string, in, out any) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); rerr == nil && json.Unmarshal(b, &er) == nil && er.Error != "" {
			return &apiError{Status: resp.StatusCode, Code: er.Error, Detail: er.Detail}
		}
		return fmt.Errorf("coordinator: HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
